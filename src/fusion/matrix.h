#ifndef MARLIN_FUSION_MATRIX_H_
#define MARLIN_FUSION_MATRIX_H_

/// \file matrix.h
/// \brief Small fixed-size matrix algebra for tracking filters.
///
/// Tracking needs nothing beyond 4×4: hand-rolled dense operations keep the
/// dependency surface zero and the code transparent.

#include <array>
#include <cmath>
#include <cstddef>

namespace marlin {

/// \brief Dense row-major R×C matrix of doubles.
template <size_t R, size_t C>
struct Matrix {
  std::array<double, R * C> m{};

  double& operator()(size_t r, size_t c) { return m[r * C + c]; }
  double operator()(size_t r, size_t c) const { return m[r * C + c]; }

  static Matrix Zero() { return Matrix{}; }

  static Matrix Identity() {
    static_assert(R == C, "identity requires square matrix");
    Matrix out;
    for (size_t i = 0; i < R; ++i) out(i, i) = 1.0;
    return out;
  }

  Matrix operator+(const Matrix& o) const {
    Matrix out;
    for (size_t i = 0; i < R * C; ++i) out.m[i] = m[i] + o.m[i];
    return out;
  }
  Matrix operator-(const Matrix& o) const {
    Matrix out;
    for (size_t i = 0; i < R * C; ++i) out.m[i] = m[i] - o.m[i];
    return out;
  }
  Matrix operator*(double k) const {
    Matrix out;
    for (size_t i = 0; i < R * C; ++i) out.m[i] = m[i] * k;
    return out;
  }

  template <size_t C2>
  Matrix<R, C2> operator*(const Matrix<C, C2>& o) const {
    Matrix<R, C2> out;
    for (size_t i = 0; i < R; ++i) {
      for (size_t k = 0; k < C; ++k) {
        const double a = (*this)(i, k);
        if (a == 0.0) continue;
        for (size_t j = 0; j < C2; ++j) {
          out(i, j) += a * o(k, j);
        }
      }
    }
    return out;
  }

  Matrix<C, R> Transpose() const {
    Matrix<C, R> out;
    for (size_t i = 0; i < R; ++i) {
      for (size_t j = 0; j < C; ++j) out(j, i) = (*this)(i, j);
    }
    return out;
  }

  double Trace() const {
    static_assert(R == C);
    double t = 0.0;
    for (size_t i = 0; i < R; ++i) t += (*this)(i, i);
    return t;
  }
};

using Mat2 = Matrix<2, 2>;
using Mat4 = Matrix<4, 4>;
using Vec2 = Matrix<2, 1>;
using Vec4 = Matrix<4, 1>;

/// \brief 2×2 inverse; returns false when (near-)singular.
inline bool Invert2x2(const Mat2& a, Mat2* out) {
  const double det = a(0, 0) * a(1, 1) - a(0, 1) * a(1, 0);
  if (std::abs(det) < 1e-12) return false;
  const double inv = 1.0 / det;
  (*out)(0, 0) = a(1, 1) * inv;
  (*out)(0, 1) = -a(0, 1) * inv;
  (*out)(1, 0) = -a(1, 0) * inv;
  (*out)(1, 1) = a(0, 0) * inv;
  return true;
}

/// \brief 4×4 inverse via Gauss–Jordan with partial pivoting; false when
/// singular.
bool Invert4x4(const Mat4& a, Mat4* out);

}  // namespace marlin

#endif  // MARLIN_FUSION_MATRIX_H_
