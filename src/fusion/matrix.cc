#include "fusion/matrix.h"

#include <algorithm>

namespace marlin {

bool Invert4x4(const Mat4& a, Mat4* out) {
  // Gauss–Jordan on [A | I] with partial pivoting.
  double aug[4][8];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      aug[i][j] = a(i, j);
      aug[i][j + 4] = (i == j) ? 1.0 : 0.0;
    }
  }
  for (int col = 0; col < 4; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r) {
      if (std::abs(aug[r][col]) > std::abs(aug[pivot][col])) pivot = r;
    }
    if (std::abs(aug[pivot][col]) < 1e-12) return false;
    if (pivot != col) std::swap(aug[pivot], aug[col]);
    const double inv = 1.0 / aug[col][col];
    for (int j = 0; j < 8; ++j) aug[col][j] *= inv;
    for (int r = 0; r < 4; ++r) {
      if (r == col) continue;
      const double f = aug[r][col];
      if (f == 0.0) continue;
      for (int j = 0; j < 8; ++j) aug[r][j] -= f * aug[col][j];
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) (*out)(i, j) = aug[i][j + 4];
  }
  return true;
}

}  // namespace marlin
