#include "fusion/kalman.h"

#include <algorithm>
#include <cmath>

namespace marlin {

void KalmanCv::Init(const PositionMeasurement& z, double velocity_sigma) {
  x_ = Vec4::Zero();
  x_(0, 0) = z.position.east;
  x_(1, 0) = z.position.north;
  P_ = Mat4::Zero();
  P_(0, 0) = z.sigma_m * z.sigma_m;
  P_(1, 1) = z.sigma_m * z.sigma_m;
  P_(2, 2) = velocity_sigma * velocity_sigma;
  P_(3, 3) = velocity_sigma * velocity_sigma;
  time_ = z.t;
  initialized_ = true;
}

void KalmanCv::PredictInternal(double dt_s) {
  if (dt_s <= 0.0) return;
  Mat4 F = Mat4::Identity();
  F(0, 2) = dt_s;
  F(1, 3) = dt_s;
  // Piecewise-white-acceleration process noise.
  const double dt2 = dt_s * dt_s;
  const double dt3 = dt2 * dt_s;
  Mat4 Q = Mat4::Zero();
  Q(0, 0) = Q(1, 1) = q_ * dt3 / 3.0;
  Q(0, 2) = Q(2, 0) = q_ * dt2 / 2.0;
  Q(1, 3) = Q(3, 1) = q_ * dt2 / 2.0;
  Q(2, 2) = Q(3, 3) = q_ * dt_s;
  x_ = F * x_;
  P_ = F * P_ * F.Transpose() + Q;
}

void KalmanCv::Predict(Timestamp t) {
  if (!initialized_ || t <= time_) return;
  PredictInternal(static_cast<double>(t - time_) / kMillisPerSecond);
  time_ = t;
}

double KalmanCv::MahalanobisSq(const PositionMeasurement& z) const {
  // Innovation against the *current* (already predicted) state.
  const double ie = z.position.east - x_(0, 0);
  const double in = z.position.north - x_(1, 0);
  Mat2 S;
  S(0, 0) = P_(0, 0) + z.sigma_m * z.sigma_m;
  S(0, 1) = P_(0, 1);
  S(1, 0) = P_(1, 0);
  S(1, 1) = P_(1, 1) + z.sigma_m * z.sigma_m;
  Mat2 S_inv;
  if (!Invert2x2(S, &S_inv)) return 1e18;
  return ie * (S_inv(0, 0) * ie + S_inv(0, 1) * in) +
         in * (S_inv(1, 0) * ie + S_inv(1, 1) * in);
}

void KalmanCv::Update(const PositionMeasurement& z) {
  if (!initialized_) {
    Init(z);
    return;
  }
  Predict(z.t);
  // H = [I2 | 0]; S = HPH' + R ; K = PH'S^-1.
  Mat2 S;
  S(0, 0) = P_(0, 0) + z.sigma_m * z.sigma_m;
  S(0, 1) = P_(0, 1);
  S(1, 0) = P_(1, 0);
  S(1, 1) = P_(1, 1) + z.sigma_m * z.sigma_m;
  Mat2 S_inv;
  if (!Invert2x2(S, &S_inv)) return;

  // K (4×2) = P H^T S^-1; H^T selects the first two columns of P.
  Matrix<4, 2> PHt;
  for (int i = 0; i < 4; ++i) {
    PHt(i, 0) = P_(i, 0);
    PHt(i, 1) = P_(i, 1);
  }
  const Matrix<4, 2> K = PHt * S_inv;

  const double ie = z.position.east - x_(0, 0);
  const double in = z.position.north - x_(1, 0);
  for (int i = 0; i < 4; ++i) {
    x_(i, 0) += K(i, 0) * ie + K(i, 1) * in;
  }
  // P = (I - K H) P ; KH affects the first two columns.
  Mat4 KH = Mat4::Zero();
  for (int i = 0; i < 4; ++i) {
    KH(i, 0) = K(i, 0);
    KH(i, 1) = K(i, 1);
  }
  P_ = (Mat4::Identity() - KH) * P_;
  time_ = z.t;
}

void KalmanCv::SetState(const Vec4& x, const Mat4& P, Timestamp t) {
  x_ = x;
  P_ = P;
  time_ = t;
  initialized_ = true;
}

FusedEstimate CovarianceIntersection(const Vec4& xa, const Mat4& Pa,
                                     const Vec4& xb, const Mat4& Pb) {
  FusedEstimate best;
  Mat4 Pa_inv, Pb_inv;
  if (!Invert4x4(Pa, &Pa_inv) || !Invert4x4(Pb, &Pb_inv)) return best;

  double best_trace = 1e300;
  for (int i = 0; i <= 20; ++i) {
    const double w = i / 20.0;
    const Mat4 info = Pa_inv * w + Pb_inv * (1.0 - w);
    Mat4 P;
    if (!Invert4x4(info, &P)) continue;
    const double tr = P.Trace();
    // On trace ties (e.g. identical covariances) prefer the balanced weight,
    // which also yields the symmetric fused state.
    const bool better =
        tr < best_trace - 1e-9 ||
        (tr < best_trace + 1e-9 &&
         std::abs(w - 0.5) < std::abs(best.omega - 0.5));
    if (better) {
      best_trace = tr;
      best.P = P;
      best.omega = w;
      const Vec4 combined = (Pa_inv * w) * xa + (Pb_inv * (1.0 - w)) * xb;
      best.x = P * combined;
      best.valid = true;
    }
  }
  return best;
}

}  // namespace marlin
