#ifndef MARLIN_FUSION_ASSIGNMENT_H_
#define MARLIN_FUSION_ASSIGNMENT_H_

/// \file assignment.h
/// \brief Optimal assignment (Hungarian algorithm) for global-nearest-
/// neighbour data association (paper §2.4: associating contacts to tracks).

#include <vector>

namespace marlin {

/// \brief Result of an assignment: `row_to_col[i]` is the column matched to
/// row i, or -1 when row i is unassigned (cost above the gate / padding).
struct AssignmentResult {
  std::vector<int> row_to_col;
  double total_cost = 0.0;
};

/// \brief Solves min-cost assignment on a rectangular cost matrix.
///
/// `cost[i][j]` is the cost of pairing row i with column j. Pairs whose cost
/// is ≥ `forbidden_cost` are never matched (treated as gated out). O(n³)
/// Hungarian (Kuhn–Munkres with potentials).
AssignmentResult SolveAssignment(const std::vector<std::vector<double>>& cost,
                                 double forbidden_cost = 1e12);

}  // namespace marlin

#endif  // MARLIN_FUSION_ASSIGNMENT_H_
