#include "fusion/tracker.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "fusion/assignment.h"

namespace marlin {

MultiTargetTracker::MultiTargetTracker(const GeoPoint& origin,
                                       const Options& options)
    : projection_(origin), options_(options) {}

std::vector<uint64_t> MultiTargetTracker::ProcessScan(
    const std::vector<Contact>& contacts, Timestamp scan_time) {
  std::vector<uint64_t> updated;

  // 1. Predict all live tracks to scan time.
  std::vector<int> live;
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].status == TrackStatus::kDead) continue;
    tracks_[i].filter.Predict(scan_time);
    live.push_back(static_cast<int>(i));
  }

  // 2. Build the gated cost matrix (rows = contacts, cols = live tracks).
  const double kForbidden = 1e12;
  std::vector<PositionMeasurement> measurements(contacts.size());
  std::vector<std::vector<double>> cost(
      contacts.size(), std::vector<double>(live.size(), kForbidden));
  for (size_t c = 0; c < contacts.size(); ++c) {
    measurements[c].t = scan_time;
    measurements[c].position = projection_.Project(contacts[c].position);
    measurements[c].sigma_m = contacts[c].sigma_m;
    for (size_t t = 0; t < live.size(); ++t) {
      Track& track = tracks_[live[t]];
      // Identity shortcut: an AIS contact with the track's MMSI is always
      // admissible for that track and inadmissible for other identified
      // tracks (identity is a hard constraint, §2.4 semantic alignment).
      if (contacts[c].mmsi != 0 && track.mmsi != 0) {
        if (contacts[c].mmsi != track.mmsi) continue;
        const double d2 = track.filter.MahalanobisSq(measurements[c]);
        cost[c][t] = std::min(d2, options_.gate_mahalanobis_sq * 0.99);
        continue;
      }
      const double d2 = track.filter.MahalanobisSq(measurements[c]);
      if (d2 < options_.gate_mahalanobis_sq) cost[c][t] = d2;
    }
  }

  // 3. Optimal assignment.
  const AssignmentResult assignment = SolveAssignment(cost, kForbidden);

  // 4. Update matched tracks, spawn tracks for unmatched contacts.
  std::vector<bool> track_hit(live.size(), false);
  for (size_t c = 0; c < contacts.size(); ++c) {
    const int t = assignment.row_to_col.empty() ? -1 : assignment.row_to_col[c];
    if (t >= 0) {
      Track& track = tracks_[live[t]];
      track.filter.Update(measurements[c]);
      track.last_update = scan_time;
      ++track.hits;
      track.consecutive_misses = 0;
      track.sensors_seen |= 1u << static_cast<int>(contacts[c].sensor);
      if (contacts[c].mmsi != 0) track.mmsi = contacts[c].mmsi;
      track_hit[t] = true;
      if (track.status == TrackStatus::kTentative &&
          track.hits >= options_.confirm_hits) {
        track.status = TrackStatus::kConfirmed;
      } else if (track.status == TrackStatus::kCoasted) {
        track.status = TrackStatus::kConfirmed;
      }
      updated.push_back(track.id);
    } else {
      Track fresh;
      fresh.id = next_id_++;
      fresh.status = TrackStatus::kTentative;
      fresh.filter = KalmanCv(options_.process_noise);
      fresh.filter.Init(measurements[c]);
      fresh.mmsi = contacts[c].mmsi;
      fresh.last_update = scan_time;
      fresh.created = scan_time;
      fresh.hits = 1;
      fresh.sensors_seen = 1u << static_cast<int>(contacts[c].sensor);
      updated.push_back(fresh.id);
      tracks_.push_back(std::move(fresh));
    }
  }

  // 5. Miss handling for unmatched tracks.
  for (size_t t = 0; t < live.size(); ++t) {
    if (track_hit[t]) continue;
    Track& track = tracks_[live[t]];
    ++track.consecutive_misses;
    if (track.status == TrackStatus::kTentative) {
      // Tentative tracks must confirm within the window.
      const int age_scans = track.hits + track.consecutive_misses;
      if (age_scans >= options_.confirm_window &&
          track.hits < options_.confirm_hits) {
        track.status = TrackStatus::kDead;
      } else if (track.consecutive_misses >= options_.max_misses) {
        track.status = TrackStatus::kDead;
      }
    } else if (track.status == TrackStatus::kConfirmed) {
      if (track.consecutive_misses >= options_.max_misses) {
        track.status = TrackStatus::kCoasted;
      }
    }
  }

  PruneDead(scan_time);
  return updated;
}

void MultiTargetTracker::PruneDead(Timestamp now) {
  for (Track& track : tracks_) {
    if (track.status == TrackStatus::kCoasted &&
        now - track.last_update > options_.max_coast_ms) {
      track.status = TrackStatus::kDead;
    }
  }
  tracks_.erase(
      std::remove_if(tracks_.begin(), tracks_.end(),
                     [](const Track& t) {
                       return t.status == TrackStatus::kDead;
                     }),
      tracks_.end());
}

std::vector<const Track*> MultiTargetTracker::LiveTracks() const {
  std::vector<const Track*> out;
  for (const Track& t : tracks_) {
    if (t.status != TrackStatus::kDead) out.push_back(&t);
  }
  return out;
}

std::vector<const Track*> MultiTargetTracker::ConfirmedTracks() const {
  std::vector<const Track*> out;
  for (const Track& t : tracks_) {
    if (t.status == TrackStatus::kConfirmed ||
        t.status == TrackStatus::kCoasted) {
      out.push_back(&t);
    }
  }
  return out;
}

const Track* MultiTargetTracker::Find(uint64_t id) const {
  for (const Track& t : tracks_) {
    if (t.id == id && t.status != TrackStatus::kDead) return &t;
  }
  return nullptr;
}

GeoPoint MultiTargetTracker::TrackPosition(const Track& track) const {
  return projection_.Unproject(track.filter.PositionEstimate());
}

MotionState MultiTargetTracker::TrackMotion(const Track& track) const {
  MotionState out;
  out.position = TrackPosition(track);
  const EnuPoint v = track.filter.VelocityEstimate();
  out.speed_mps = v.Norm();
  out.course_deg = NormalizeDegrees(RadToDeg(std::atan2(v.east, v.north)));
  return out;
}

}  // namespace marlin
