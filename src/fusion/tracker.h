#ifndef MARLIN_FUSION_TRACKER_H_
#define MARLIN_FUSION_TRACKER_H_

/// \file tracker.h
/// \brief Multi-target tracker: gating + GNN association + M/N lifecycle.
///
/// Consumes sensor contacts (radar plots and/or AIS fixes projected into a
/// common ENU frame — "alignment of data in space and time", §2.4) and
/// maintains fused vessel tracks that survive per-sensor dropouts.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "fusion/kalman.h"
#include "geo/geodesy.h"
#include "geo/kinematics.h"

namespace marlin {

/// \brief Origin of a contact.
enum class SensorKind : uint8_t { kAis = 0, kRadar = 1, kSar = 2 };

/// \brief One sensor detection handed to the tracker.
struct Contact {
  Timestamp t = kInvalidTimestamp;
  GeoPoint position;
  double sigma_m = 50.0;         ///< 1-σ position accuracy
  SensorKind sensor = SensorKind::kRadar;
  uint32_t mmsi = 0;             ///< 0 when the sensor has no identity (radar)
};

/// \brief Track lifecycle states.
enum class TrackStatus : uint8_t {
  kTentative = 0,  ///< newborn, not yet confirmed
  kConfirmed = 1,  ///< M-of-N satisfied
  kCoasted = 2,    ///< confirmed but currently unsupported by detections
  kDead = 3,       ///< dropped
};

/// \brief One maintained track.
struct Track {
  uint64_t id = 0;
  TrackStatus status = TrackStatus::kTentative;
  KalmanCv filter;
  uint32_t mmsi = 0;          ///< identity if any associated contact had one
  Timestamp last_update = kInvalidTimestamp;
  Timestamp created = kInvalidTimestamp;
  int hits = 0;
  int consecutive_misses = 0;
  uint32_t sensors_seen = 0;  ///< bitmask of SensorKind contributions
};

/// \brief GNN tracker over a local ENU frame.
class MultiTargetTracker {
 public:
  struct Options {
    /// Gate on squared Mahalanobis distance (χ²(2 dof) 99% ≈ 9.21).
    double gate_mahalanobis_sq = 9.21;
    /// Confirm a tentative track after this many hits...
    int confirm_hits = 3;
    /// ...within this many update opportunities.
    int confirm_window = 5;
    /// Kill after this many consecutive missed scans.
    int max_misses = 5;
    /// Kill coasted tracks after this much unsupported time.
    DurationMs max_coast_ms = 5 * kMillisPerMinute;
    /// Process noise intensity for new filters (m²/s³).
    double process_noise = 0.5;
  };

  /// \brief `origin` anchors the shared ENU frame for all contacts.
  MultiTargetTracker(const GeoPoint& origin, const Options& options);
  explicit MultiTargetTracker(const GeoPoint& origin)
      : MultiTargetTracker(origin, Options()) {}

  /// \brief Processes one scan of contacts taken at (approximately) the same
  /// time. Returns ids of tracks updated this scan.
  std::vector<uint64_t> ProcessScan(const std::vector<Contact>& contacts,
                                    Timestamp scan_time);

  /// \brief All live (non-dead) tracks.
  std::vector<const Track*> LiveTracks() const;

  /// \brief Confirmed tracks only.
  std::vector<const Track*> ConfirmedTracks() const;

  /// \brief Track by id, nullptr when absent/dead.
  const Track* Find(uint64_t id) const;

  /// \brief Geographic position estimate of a track.
  GeoPoint TrackPosition(const Track& track) const;

  /// \brief Speed (m/s) and course (deg true) of a track.
  MotionState TrackMotion(const Track& track) const;

  const LocalProjection& projection() const { return projection_; }

 private:
  void PruneDead(Timestamp now);

  LocalProjection projection_;
  Options options_;
  std::vector<Track> tracks_;
  uint64_t next_id_ = 1;
};

}  // namespace marlin

#endif  // MARLIN_FUSION_TRACKER_H_
