#include "fusion/assignment.h"

#include <algorithm>
#include <limits>

namespace marlin {

AssignmentResult SolveAssignment(const std::vector<std::vector<double>>& cost,
                                 double forbidden_cost) {
  AssignmentResult result;
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) return result;
  const int cols = static_cast<int>(cost[0].size());
  result.row_to_col.assign(rows, -1);
  if (cols == 0) return result;

  // Square the matrix by padding with forbidden cost; padded pairs are
  // stripped from the result.
  const int n = std::max(rows, cols);
  const double kPad = forbidden_cost;
  auto at = [&](int r, int c) -> double {
    if (r < rows && c < cols) return std::min(cost[r][c], kPad);
    return kPad;
  };

  // Kuhn–Munkres with row/column potentials (the classic O(n³) "e-maxx"
  // formulation, 1-indexed internals).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (int j = 1; j <= n; ++j) {
    const int i = p[j];
    if (i >= 1 && i <= rows && j <= cols) {
      if (cost[i - 1][j - 1] < forbidden_cost) {
        result.row_to_col[i - 1] = j - 1;
        result.total_cost += cost[i - 1][j - 1];
      }
    }
  }
  return result;
}

}  // namespace marlin
