#ifndef MARLIN_FUSION_KALMAN_H_
#define MARLIN_FUSION_KALMAN_H_

/// \file kalman.h
/// \brief Constant-velocity Kalman filter in a local ENU plane — the
/// low-level track estimator of the fusion stack (paper §2.4).

#include "common/time.h"
#include "fusion/matrix.h"
#include "geo/geodesy.h"
#include "geo/point.h"

namespace marlin {

/// \brief A position measurement in ENU metres with isotropic noise.
struct PositionMeasurement {
  Timestamp t = kInvalidTimestamp;
  EnuPoint position;
  double sigma_m = 10.0;  ///< 1-σ position noise (AIS ≈ 10 m, radar ≈ 50–200 m)
};

/// \brief 2-D constant-velocity Kalman filter (state: e, n, ve, vn).
class KalmanCv {
 public:
  /// \brief `process_noise_accel` is the white-acceleration intensity q
  /// (m²/s³); larger values track manoeuvres at the cost of noise.
  explicit KalmanCv(double process_noise_accel = 0.5)
      : q_(process_noise_accel) {}

  /// \brief Initializes from the first measurement (velocity unknown, large
  /// velocity variance).
  void Init(const PositionMeasurement& z, double velocity_sigma = 10.0);

  /// \brief Propagates the state to time `t` (no-op backwards in time).
  void Predict(Timestamp t);

  /// \brief Fuses a measurement (must call Predict(z.t) first or pass the
  /// same t; handled internally for convenience).
  void Update(const PositionMeasurement& z);

  /// \brief Squared Mahalanobis distance of a measurement against the
  /// predicted innovation — the gating statistic.
  double MahalanobisSq(const PositionMeasurement& z) const;

  bool initialized() const { return initialized_; }
  Timestamp time() const { return time_; }
  EnuPoint PositionEstimate() const { return {x_(0, 0), x_(1, 0)}; }
  /// \brief Velocity estimate (east, north) in m/s.
  EnuPoint VelocityEstimate() const { return {x_(2, 0), x_(3, 0)}; }
  const Mat4& Covariance() const { return P_; }
  const Vec4& State() const { return x_; }

  /// \brief Overwrites state+covariance (used by track-to-track fusion).
  void SetState(const Vec4& x, const Mat4& P, Timestamp t);

 private:
  void PredictInternal(double dt_s);

  double q_;
  Vec4 x_ = Vec4::Zero();
  Mat4 P_ = Mat4::Zero();
  Timestamp time_ = kInvalidTimestamp;
  bool initialized_ = false;
};

/// \brief Covariance-intersection fusion of two CV estimates.
///
/// Consistent under unknown cross-correlation — the safe choice for fusing
/// AIS-born and radar-born tracks that may share process history. The
/// weight ω minimizing the fused trace is found by scalar search.
struct FusedEstimate {
  Vec4 x = Vec4::Zero();
  Mat4 P = Mat4::Zero();
  double omega = 0.5;
  bool valid = false;
};

FusedEstimate CovarianceIntersection(const Vec4& xa, const Mat4& Pa,
                                     const Vec4& xb, const Mat4& Pb);

}  // namespace marlin

#endif  // MARLIN_FUSION_KALMAN_H_
