#ifndef MARLIN_VA_DENSITY_H_
#define MARLIN_VA_DENSITY_H_

/// \file density.h
/// \brief Multi-resolution spatial density aggregation — the "situation
/// overview … at desired scales and levels of detail" of §3.2, and the data
/// product behind the paper's Figure 1.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geo/geometry.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief A lat/lon histogram over a bounded region.
class DensityGrid {
 public:
  /// \brief Covers `bounds` with cells of `cell_deg` pitch.
  DensityGrid(const BoundingBox& bounds, double cell_deg);

  /// \brief Adds one observation (ignored outside the bounds).
  void Add(const GeoPoint& p, double weight = 1.0);

  /// \brief Adds every sample of a trajectory.
  void AddTrajectory(const Trajectory& trajectory);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double cell_deg() const { return cell_deg_; }
  const BoundingBox& bounds() const { return bounds_; }

  double At(int row, int col) const { return cells_[row * cols_ + col]; }
  double MaxValue() const;
  double TotalWeight() const { return total_; }
  uint64_t NonEmptyCells() const;

  /// \brief Aggregates into a coarser grid (factor ≥ 2) — zoom-out.
  DensityGrid Coarsen(int factor) const;

  /// \brief Re-bins a sub-region at a finer pitch from source points —
  /// drill-down is a fresh aggregation, so the caller re-adds data; this
  /// helper just constructs the target grid.
  static DensityGrid DrillDown(const BoundingBox& region, double cell_deg) {
    return DensityGrid(region, cell_deg);
  }

  /// \brief CSV export: row,col,lat,lon,value for non-empty cells.
  std::string ToCsv() const;

  /// \brief Writes a log-scaled heat map as a binary PPM image.
  Status WritePpm(const std::string& path) const;

  /// \brief ASCII art rendering (log-scaled ramp " .:-=+*#%@").
  std::string ToAscii(int max_cols = 100) const;

 private:
  BoundingBox bounds_;
  double cell_deg_;
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> cells_;
  double total_ = 0.0;
};

/// \brief Per-hour-of-day event histogram (temporal VA view).
class TemporalHistogram {
 public:
  void Add(Timestamp t) { ++buckets_[static_cast<int>((t / kMillisPerHour) % 24)]; }
  uint64_t At(int hour) const { return buckets_[hour]; }
  uint64_t Total() const;
  /// \brief Peak-hour index.
  int PeakHour() const;

 private:
  uint64_t buckets_[24] = {0};
};

}  // namespace marlin

#endif  // MARLIN_VA_DENSITY_H_
