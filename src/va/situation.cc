#include "va/situation.h"

#include <algorithm>

#include "common/time.h"

namespace marlin {

void SituationOverview::RecordEvents(const std::vector<DetectedEvent>& events) {
  for (const DetectedEvent& ev : events) {
    if (ev.severity >= options_.min_alert_severity) {
      alert_history_.push_back(ev);
    }
  }
}

SituationSnapshot SituationOverview::Snapshot(Timestamp t) const {
  SituationSnapshot snap;
  snap.at = t;

  double coverage_sum = 0.0;
  size_t coverage_n = 0;
  for (uint32_t mmsi : store_->Vessels()) {
    const auto latest = store_->Latest(mmsi);
    if (!latest.has_value()) continue;
    const bool fresh = t - latest->t <= options_.freshness_ms;
    if (fresh) {
      ++snap.active_vessels;
      for (const GeoZone* z : zones_->ZonesAt(latest->position)) {
        ++snap.vessels_per_zone_type[ZoneTypeName(z->type)];
      }
    } else if (latest->t <= t) {
      ++snap.dark_vessels;
    }
    if (coverage_ != nullptr) {
      coverage_sum += coverage_->Coverage(mmsi, t - kMillisPerHour, t);
      ++coverage_n;
    }
  }
  snap.mean_coverage = coverage_n == 0 ? 0.0 : coverage_sum / coverage_n;

  for (const DetectedEvent& ev : alert_history_) {
    if (ev.detected_at <= t &&
        t - ev.detected_at <= options_.alert_retention_ms) {
      snap.active_alerts.push_back(ev);
    }
  }
  std::sort(snap.active_alerts.begin(), snap.active_alerts.end(),
            [](const DetectedEvent& a, const DetectedEvent& b) {
              return a.severity > b.severity;
            });
  return snap;
}

std::string SituationOverview::Render(const SituationSnapshot& snap,
                                      const ZoneDatabase* zones) {
  std::string out;
  out += "=== Situation overview @ " + FormatTimestamp(snap.at) + " ===\n";
  out += "active vessels: " + std::to_string(snap.active_vessels) +
         "   dark: " + std::to_string(snap.dark_vessels) +
         "   mean 1h coverage: " +
         std::to_string(static_cast<int>(snap.mean_coverage * 100)) + "%\n";
  out += "by zone type:";
  for (const auto& [type, n] : snap.vessels_per_zone_type) {
    out += "  " + type + "=" + std::to_string(n);
  }
  out += "\nalerts (" + std::to_string(snap.active_alerts.size()) + "):\n";
  for (const DetectedEvent& ev : snap.active_alerts) {
    out += "  [" + std::to_string(static_cast<int>(ev.severity * 100)) +
           "] " + EventTypeName(ev.type) + " vessel " +
           std::to_string(ev.vessel_a);
    if (ev.vessel_b != 0) out += " & " + std::to_string(ev.vessel_b);
    if (ev.zone_id != 0 && zones != nullptr) {
      const GeoZone* z = zones->Find(ev.zone_id);
      if (z != nullptr) out += " in " + z->name;
    }
    out += " at " + ev.where.ToString() + "\n";
  }
  return out;
}

}  // namespace marlin
