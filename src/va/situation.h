#ifndef MARLIN_VA_SITUATION_H_
#define MARLIN_VA_SITUATION_H_

/// \file situation.h
/// \brief Situation overview snapshots for operators (§3.2: "building
/// situation overview and situation monitoring, capable of computing an
/// overall operational picture … Monitoring needs to provide alarms and
/// explanations if observations significantly deviate from models").

#include <map>
#include <string>
#include <vector>

#include "ais/types.h"
#include "context/zones.h"
#include "core/events.h"
#include "storage/trajectory_store.h"
#include "uncertainty/openworld.h"

namespace marlin {

/// \brief One rendered overview at a time instant.
struct SituationSnapshot {
  Timestamp at = 0;
  size_t active_vessels = 0;          ///< reported within the freshness window
  size_t dark_vessels = 0;            ///< known but currently silent
  std::map<std::string, size_t> vessels_per_zone_type;
  std::vector<DetectedEvent> active_alerts;
  double mean_coverage = 0.0;         ///< mean per-vessel coverage fraction
};

/// \brief Builds operator snapshots from the live store + event history.
class SituationOverview {
 public:
  struct Options {
    DurationMs freshness_ms = 15 * kMillisPerMinute;
    DurationMs alert_retention_ms = 2 * kMillisPerHour;
    double min_alert_severity = 0.5;
  };

  SituationOverview(const TrajectoryStore* store, const ZoneDatabase* zones,
                    const CoverageModel* coverage, const Options& options)
      : store_(store), zones_(zones), coverage_(coverage), options_(options) {}
  SituationOverview(const TrajectoryStore* store, const ZoneDatabase* zones,
                    const CoverageModel* coverage)
      : SituationOverview(store, zones, coverage, Options()) {}

  /// \brief Records detected events for alert retention.
  void RecordEvents(const std::vector<DetectedEvent>& events);

  /// \brief Computes the snapshot at time `t`.
  SituationSnapshot Snapshot(Timestamp t) const;

  /// \brief Renders a snapshot as a terminal-friendly block of text.
  static std::string Render(const SituationSnapshot& snapshot,
                            const ZoneDatabase* zones);

 private:
  const TrajectoryStore* store_;
  const ZoneDatabase* zones_;
  const CoverageModel* coverage_;
  Options options_;
  std::vector<DetectedEvent> alert_history_;
};

}  // namespace marlin

#endif  // MARLIN_VA_SITUATION_H_
