#ifndef MARLIN_VA_FLOWS_H_
#define MARLIN_VA_FLOWS_H_

/// \file flows.h
/// \brief Origin–destination flow aggregation between zones (§3.2:
/// "building situation overview … an overall operational picture of
/// mobility at desired scales").

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "context/zones.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief One aggregated flow edge.
struct FlowEdge {
  uint32_t from_zone = 0;
  uint32_t to_zone = 0;
  uint64_t count = 0;
};

/// \brief Builds zone-to-zone movement counts from trajectories.
///
/// A "visit" is a maximal run of samples inside one zone of the tracked
/// type; consecutive visits of one vessel form a flow edge.
class FlowMatrix {
 public:
  FlowMatrix(const ZoneDatabase* zones, ZoneType tracked_type)
      : zones_(zones), tracked_type_(tracked_type) {}

  /// \brief Accumulates one vessel's trajectory.
  void AddTrajectory(const Trajectory& trajectory);

  /// \brief All edges with count > 0, heaviest first.
  std::vector<FlowEdge> Edges() const;

  /// \brief Count for a specific pair.
  uint64_t Count(uint32_t from_zone, uint32_t to_zone) const;

  /// \brief CSV "from,to,from_name,to_name,count".
  std::string ToCsv() const;

 private:
  const ZoneDatabase* zones_;
  ZoneType tracked_type_;
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> counts_;
};

}  // namespace marlin

#endif  // MARLIN_VA_FLOWS_H_
