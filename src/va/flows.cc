#include "va/flows.h"

#include <algorithm>

namespace marlin {

void FlowMatrix::AddTrajectory(const Trajectory& trajectory) {
  // Sequence of distinct tracked-type zone visits along the trajectory.
  std::vector<uint32_t> visits;
  uint32_t current = UINT32_MAX;
  for (const TrajectoryPoint& p : trajectory.points) {
    uint32_t zone_here = UINT32_MAX;
    for (const GeoZone* z : zones_->ZonesAt(p.position, tracked_type_)) {
      zone_here = z->id;
      break;
    }
    if (zone_here != UINT32_MAX && zone_here != current) {
      visits.push_back(zone_here);
    }
    if (zone_here != UINT32_MAX) current = zone_here;
  }
  for (size_t i = 1; i < visits.size(); ++i) {
    if (visits[i - 1] != visits[i]) {
      ++counts_[{visits[i - 1], visits[i]}];
    }
  }
}

std::vector<FlowEdge> FlowMatrix::Edges() const {
  std::vector<FlowEdge> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    out.push_back(FlowEdge{key.first, key.second, count});
  }
  std::sort(out.begin(), out.end(), [](const FlowEdge& a, const FlowEdge& b) {
    return a.count > b.count;
  });
  return out;
}

uint64_t FlowMatrix::Count(uint32_t from_zone, uint32_t to_zone) const {
  auto it = counts_.find({from_zone, to_zone});
  return it == counts_.end() ? 0 : it->second;
}

std::string FlowMatrix::ToCsv() const {
  std::string out = "from,to,from_name,to_name,count\n";
  for (const FlowEdge& e : Edges()) {
    const GeoZone* from = zones_->Find(e.from_zone);
    const GeoZone* to = zones_->Find(e.to_zone);
    out += std::to_string(e.from_zone) + "," + std::to_string(e.to_zone) +
           "," + (from != nullptr ? from->name : "?") + "," +
           (to != nullptr ? to->name : "?") + "," + std::to_string(e.count) +
           "\n";
  }
  return out;
}

}  // namespace marlin
