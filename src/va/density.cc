#include "va/density.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace marlin {

DensityGrid::DensityGrid(const BoundingBox& bounds, double cell_deg)
    : bounds_(bounds), cell_deg_(cell_deg) {
  rows_ = std::max(
      1, static_cast<int>(std::ceil((bounds.max_lat - bounds.min_lat) /
                                    cell_deg)));
  cols_ = std::max(
      1, static_cast<int>(std::ceil((bounds.max_lon - bounds.min_lon) /
                                    cell_deg)));
  cells_.assign(static_cast<size_t>(rows_) * cols_, 0.0);
}

void DensityGrid::Add(const GeoPoint& p, double weight) {
  if (!bounds_.Contains(p)) return;
  int row = static_cast<int>((p.lat - bounds_.min_lat) / cell_deg_);
  int col = static_cast<int>((p.lon - bounds_.min_lon) / cell_deg_);
  row = std::clamp(row, 0, rows_ - 1);
  col = std::clamp(col, 0, cols_ - 1);
  cells_[static_cast<size_t>(row) * cols_ + col] += weight;
  total_ += weight;
}

void DensityGrid::AddTrajectory(const Trajectory& trajectory) {
  for (const TrajectoryPoint& p : trajectory.points) Add(p.position);
}

double DensityGrid::MaxValue() const {
  double max = 0.0;
  for (double v : cells_) max = std::max(max, v);
  return max;
}

uint64_t DensityGrid::NonEmptyCells() const {
  uint64_t n = 0;
  for (double v : cells_) {
    if (v > 0.0) ++n;
  }
  return n;
}

DensityGrid DensityGrid::Coarsen(int factor) const {
  DensityGrid out(bounds_, cell_deg_ * factor);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const double v = At(r, c);
      if (v <= 0.0) continue;
      const int cr = std::min(out.rows_ - 1, r / factor);
      const int cc = std::min(out.cols_ - 1, c / factor);
      out.cells_[static_cast<size_t>(cr) * out.cols_ + cc] += v;
      out.total_ += v;
    }
  }
  return out;
}

std::string DensityGrid::ToCsv() const {
  std::string out = "row,col,lat,lon,value\n";
  char line[128];
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const double v = At(r, c);
      if (v <= 0.0) continue;
      const double lat = bounds_.min_lat + (r + 0.5) * cell_deg_;
      const double lon = bounds_.min_lon + (c + 0.5) * cell_deg_;
      std::snprintf(line, sizeof(line), "%d,%d,%.5f,%.5f,%.3f\n", r, c, lat,
                    lon, v);
      out += line;
    }
  }
  return out;
}

Status DensityGrid::WritePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);
  out << "P6\n" << cols_ << " " << rows_ << "\n255\n";
  const double max = std::max(1.0, MaxValue());
  const double log_max = std::log1p(max);
  for (int r = rows_ - 1; r >= 0; --r) {  // north at the top
    for (int c = 0; c < cols_; ++c) {
      const double v = At(r, c);
      const double intensity = v <= 0.0 ? 0.0 : std::log1p(v) / log_max;
      // Blue-to-yellow-to-white ramp on dark sea.
      unsigned char rgb[3];
      if (intensity <= 0.0) {
        rgb[0] = 8;
        rgb[1] = 12;
        rgb[2] = 40;
      } else {
        const double t = intensity;
        rgb[0] = static_cast<unsigned char>(40 + 215 * t);
        rgb[1] = static_cast<unsigned char>(40 + 195 * t * t);
        rgb[2] = static_cast<unsigned char>(90 + 80 * (1.0 - t));
      }
      out.write(reinterpret_cast<const char*>(rgb), 3);
    }
  }
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

std::string DensityGrid::ToAscii(int max_cols) const {
  static const char kRamp[] = " .:-=+*#%@";
  const int step = std::max(1, (cols_ + max_cols - 1) / max_cols);
  const double max = std::max(1.0, MaxValue());
  const double log_max = std::log1p(max);
  std::string out;
  for (int r = rows_ - 1; r >= 0; r -= step) {
    for (int c = 0; c < cols_; c += step) {
      // Aggregate the step×step block.
      double v = 0.0;
      for (int dr = 0; dr < step && r - dr >= 0; ++dr) {
        for (int dc = 0; dc < step && c + dc < cols_; ++dc) {
          v += At(r - dr, c + dc);
        }
      }
      const double intensity = v <= 0.0 ? 0.0 : std::log1p(v) / log_max;
      const int idx = std::min(
          9, static_cast<int>(intensity * 9.999));
      out.push_back(kRamp[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

uint64_t TemporalHistogram::Total() const {
  uint64_t total = 0;
  for (uint64_t b : buckets_) total += b;
  return total;
}

int TemporalHistogram::PeakHour() const {
  int best = 0;
  for (int h = 1; h < 24; ++h) {
    if (buckets_[h] > buckets_[best]) best = h;
  }
  return best;
}

}  // namespace marlin
