#include "rdf/annotator.h"

#include <algorithm>

#include "rdf/vocabulary.h"

namespace marlin {

std::string TrajectoryAnnotator::VesselIri(uint32_t mmsi) {
  return "dtc:vessel/" + std::to_string(mmsi);
}

std::string TrajectoryAnnotator::TrajectoryIri(uint32_t mmsi) {
  return "dtc:trajectory/" + std::to_string(mmsi);
}

size_t TrajectoryAnnotator::Annotate(const Trajectory& trajectory) {
  if (trajectory.Empty()) return 0;
  TermDictionary* dict = store_->dictionary();
  size_t emitted = 0;
  auto add = [&](TermId s, TermId p, TermId o) {
    store_->Add(s, p, o);
    ++emitted;
  };

  const TermId type = dict->Iri(vocab::kType);
  const TermId vessel = dict->Iri(VesselIri(trajectory.mmsi));
  const TermId traj = dict->Iri(TrajectoryIri(trajectory.mmsi));
  add(vessel, type, dict->Iri(vocab::kVessel));
  add(vessel, dict->Iri(vocab::kMmsi),
      dict->IntLiteral(static_cast<int64_t>(trajectory.mmsi)));
  add(vessel, dict->Iri(vocab::kHasTrajectory), traj);
  add(traj, type, dict->Iri(vocab::kTrajectory));

  const TermId has_segment = dict->Iri(vocab::kHasSegment);
  const TermId next_segment = dict->Iri(vocab::kNextSegment);
  const TermId has_position = dict->Iri(vocab::kHasPosition);
  const TermId lat = dict->Iri(vocab::kLat);
  const TermId lon = dict->Iri(vocab::kLon);
  const TermId time = dict->Iri(vocab::kTime);
  const TermId speed = dict->Iri(vocab::kSpeed);
  const TermId course = dict->Iri(vocab::kCourse);
  const TermId start_time = dict->Iri(vocab::kStartTime);
  const TermId end_time = dict->Iri(vocab::kEndTime);
  const TermId segment_class = dict->Iri(vocab::kSegment);
  const TermId position_class = dict->Iri(vocab::kPosition);

  const std::string base = TrajectoryIri(trajectory.mmsi);
  const int per_segment = std::max(1, options_.points_per_segment);
  TermId prev_segment = kInvalidTermId;
  for (size_t i = 0; i < trajectory.points.size();
       i += static_cast<size_t>(per_segment)) {
    const size_t seg_index = i / per_segment;
    const size_t seg_end =
        std::min(trajectory.points.size(), i + per_segment);
    const TermId seg =
        dict->Iri(base + "/seg/" + std::to_string(seg_index));
    add(traj, has_segment, seg);
    add(seg, type, segment_class);
    add(seg, start_time,
        dict->IntLiteral(trajectory.points[i].t));
    add(seg, end_time, dict->IntLiteral(trajectory.points[seg_end - 1].t));
    if (prev_segment != kInvalidTermId) {
      add(prev_segment, next_segment, seg);
    }
    prev_segment = seg;
    for (size_t j = i; j < seg_end; ++j) {
      const TrajectoryPoint& p = trajectory.points[j];
      const TermId pos = dict->Iri(base + "/pos/" + std::to_string(j));
      add(seg, has_position, pos);
      add(pos, type, position_class);
      add(pos, lat, dict->DoubleLiteral(p.position.lat));
      add(pos, lon, dict->DoubleLiteral(p.position.lon));
      add(pos, time, dict->IntLiteral(p.t));
      add(pos, speed, dict->DoubleLiteral(p.sog_mps));
      add(pos, course, dict->DoubleLiteral(p.cog_deg));
    }
  }
  return emitted;
}

void TrajectoryAnnotator::LinkZone(uint32_t mmsi, const std::string& zone_iri) {
  TermDictionary* dict = store_->dictionary();
  store_->Add(dict->Iri(VesselIri(mmsi)), dict->Iri(vocab::kWithinZone),
              dict->Iri(zone_iri));
}

std::vector<TrajectoryPoint> QueryTrajectoryFromRdf(const TripleStore& store,
                                                    uint32_t mmsi,
                                                    Timestamp t0,
                                                    Timestamp t1) {
  std::vector<TrajectoryPoint> out;
  TermDictionary* dict = store.dictionary();
  const TermId vessel =
      dict->Find(TermKind::kIri, TrajectoryAnnotator::VesselIri(mmsi));
  if (vessel == kInvalidTermId) return out;

  // BGP: ?vessel hasTrajectory ?t . ?t hasSegment ?seg .
  //      ?seg hasPosition ?pos . ?pos timestamp ?time .
  //      ?pos lat ?lat . ?pos lon ?lon . ?pos speed ?v . ?pos course ?c
  // Vars: 0=?t 1=?seg 2=?pos 3=?time 4=?lat 5=?lon 6=?v 7=?c
  auto iri = [&](const char* name) -> int64_t {
    const TermId id = dict->Find(TermKind::kIri, name);
    return static_cast<int64_t>(id);
  };
  using TP = TriplePattern;
  std::vector<TriplePattern> bgp = {
      {static_cast<int64_t>(vessel), iri(vocab::kHasTrajectory), TP::Var(0)},
      {TP::Var(0), iri(vocab::kHasSegment), TP::Var(1)},
      {TP::Var(1), iri(vocab::kHasPosition), TP::Var(2)},
      {TP::Var(2), iri(vocab::kTime), TP::Var(3)},
      {TP::Var(2), iri(vocab::kLat), TP::Var(4)},
      {TP::Var(2), iri(vocab::kLon), TP::Var(5)},
      {TP::Var(2), iri(vocab::kSpeed), TP::Var(6)},
      {TP::Var(2), iri(vocab::kCourse), TP::Var(7)},
  };
  for (const Binding& row : store.Query(bgp, 8)) {
    TrajectoryPoint p;
    p.t = static_cast<Timestamp>(dict->NumericValue(row[3]));
    if (p.t < t0 || p.t > t1) continue;  // FILTER applied post-join
    p.position.lat = dict->NumericValue(row[4]);
    p.position.lon = dict->NumericValue(row[5]);
    p.sog_mps = static_cast<float>(dict->NumericValue(row[6]));
    p.cog_deg = static_cast<float>(dict->NumericValue(row[7]));
    out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace marlin
