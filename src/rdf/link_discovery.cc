#include "rdf/link_discovery.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"
#include "geo/geodesy.h"

namespace marlin {

namespace {

double CompareOne(const LinkEntity& a, const LinkEntity& b,
                  const LinkComparison& cmp) {
  switch (cmp.metric) {
    case LinkMetric::kExact: {
      auto ia = a.strings.find(cmp.source_property);
      auto ib = b.strings.find(cmp.target_property);
      if (ia == a.strings.end() || ib == b.strings.end()) return 0.0;
      return ToUpper(ia->second) == ToUpper(ib->second) ? 1.0 : 0.0;
    }
    case LinkMetric::kLevenshtein: {
      auto ia = a.strings.find(cmp.source_property);
      auto ib = b.strings.find(cmp.target_property);
      if (ia == a.strings.end() || ib == b.strings.end()) return 0.0;
      return LevenshteinSimilarity(ToUpper(ia->second), ToUpper(ib->second));
    }
    case LinkMetric::kTokenJaccard: {
      auto ia = a.strings.find(cmp.source_property);
      auto ib = b.strings.find(cmp.target_property);
      if (ia == a.strings.end() || ib == b.strings.end()) return 0.0;
      return TokenJaccard(ia->second, ib->second);
    }
    case LinkMetric::kNumericAbs: {
      auto ia = a.numbers.find(cmp.source_property);
      auto ib = b.numbers.find(cmp.target_property);
      if (ia == a.numbers.end() || ib == b.numbers.end()) return 0.0;
      const double diff = std::abs(ia->second - ib->second);
      return 1.0 - std::min(1.0, diff / std::max(1e-12, cmp.tolerance));
    }
    case LinkMetric::kGeoDistance: {
      auto ia = a.points.find(cmp.source_property);
      auto ib = b.points.find(cmp.target_property);
      if (ia == a.points.end() || ib == b.points.end()) return 0.0;
      const double d = HaversineDistance(ia->second, ib->second);
      return 1.0 - std::min(1.0, d / std::max(1e-12, cmp.tolerance));
    }
  }
  return 0.0;
}

std::string BlockKey(const LinkEntity& e, const LinkSpec& spec) {
  auto it = e.strings.find(spec.blocking_property);
  if (it == e.strings.end()) return "";
  const std::string upper = ToUpper(Trim(it->second));
  return upper.substr(0,
                      std::min<size_t>(upper.size(),
                                       static_cast<size_t>(spec.blocking_prefix)));
}

}  // namespace

double ScorePair(const LinkEntity& a, const LinkEntity& b,
                 const LinkSpec& spec) {
  double total_weight = 0.0;
  double score = 0.0;
  for (const auto& cmp : spec.comparisons) {
    score += cmp.weight * CompareOne(a, b, cmp);
    total_weight += cmp.weight;
  }
  return total_weight == 0.0 ? 0.0 : score / total_weight;
}

std::vector<Link> DiscoverLinks(const std::vector<LinkEntity>& source,
                                const std::vector<LinkEntity>& target,
                                const LinkSpec& spec, LinkStats* stats) {
  std::vector<Link> links;
  LinkStats local;
  local.total_pairs =
      static_cast<uint64_t>(source.size()) * target.size();

  auto evaluate = [&](const LinkEntity& s, const LinkEntity& t) {
    ++local.candidate_pairs;
    const double score = ScorePair(s, t, spec);
    if (score >= spec.threshold) {
      links.push_back(Link{s.id, t.id, score});
      ++local.links;
    }
  };

  if (spec.blocking_property.empty()) {
    for (const auto& s : source) {
      for (const auto& t : target) evaluate(s, t);
    }
  } else {
    std::unordered_map<std::string, std::vector<const LinkEntity*>> blocks;
    for (const auto& t : target) {
      blocks[BlockKey(t, spec)].push_back(&t);
    }
    for (const auto& s : source) {
      auto it = blocks.find(BlockKey(s, spec));
      if (it == blocks.end()) continue;
      for (const LinkEntity* t : it->second) evaluate(s, *t);
    }
  }
  std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
    return a.score > b.score;
  });
  if (stats != nullptr) *stats = local;
  return links;
}

}  // namespace marlin
