#include "rdf/dictionary.h"

#include <cstdio>
#include <cstdlib>

namespace marlin {

TermId TermDictionary::DoubleLiteral(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return Intern(TermKind::kDouble, buf);
}

TermId TermDictionary::Find(TermKind kind, std::string_view lexical) const {
  auto it = index_.find(MakeKey(kind, lexical));
  return it == index_.end() ? kInvalidTermId : it->second;
}

double TermDictionary::NumericValue(TermId id) const {
  const Entry& e = terms_[id];
  if (e.kind != TermKind::kInt && e.kind != TermKind::kDouble) return 0.0;
  return std::strtod(e.lexical.c_str(), nullptr);
}

TermId TermDictionary::Intern(TermKind kind, std::string_view lexical) {
  const std::string key = MakeKey(kind, lexical);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(Entry{kind, std::string(lexical)});
  index_.emplace(key, id);
  approx_bytes_ += 2 * lexical.size() + sizeof(Entry) + 32;
  return id;
}

}  // namespace marlin
