#ifndef MARLIN_RDF_DICTIONARY_H_
#define MARLIN_RDF_DICTIONARY_H_

/// \file dictionary.h
/// \brief Term dictionary: RDF terms ⇄ dense 32-bit ids.
///
/// Dictionary encoding is what makes triple indexes compact and joins
/// integer comparisons — the standard design of TriAD/Trinity-class engines
/// the paper cites (§2.3).

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace marlin {

/// Dense identifier of an interned RDF term.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = 0xFFFFFFFFu;

/// \brief Kinds of RDF terms MARLIN distinguishes.
enum class TermKind : uint8_t {
  kIri = 0,
  kString = 1,
  kInt = 2,
  kDouble = 3,
};

/// \brief Interns terms and resolves ids back to their lexical form.
class TermDictionary {
 public:
  /// \brief Interns an IRI (e.g. "dtc:Vessel").
  TermId Iri(std::string_view iri) { return Intern(TermKind::kIri, iri); }

  /// \brief Interns a string literal.
  TermId Literal(std::string_view value) {
    return Intern(TermKind::kString, value);
  }

  /// \brief Interns an integer literal.
  TermId IntLiteral(int64_t value) {
    return Intern(TermKind::kInt, std::to_string(value));
  }

  /// \brief Interns a double literal (canonical %.9g form).
  TermId DoubleLiteral(double value);

  /// \brief Looks up an already-interned term; kInvalidTermId when absent.
  TermId Find(TermKind kind, std::string_view lexical) const;

  /// \brief Lexical form of `id`.
  const std::string& Lexical(TermId id) const { return terms_[id].lexical; }

  /// \brief Kind of `id`.
  TermKind Kind(TermId id) const { return terms_[id].kind; }

  /// \brief Numeric value of an int/double literal (0.0 otherwise).
  double NumericValue(TermId id) const;

  size_t size() const { return terms_.size(); }

  /// \brief Approximate dictionary memory footprint (bytes).
  size_t ApproximateBytes() const { return approx_bytes_; }

 private:
  struct Entry {
    TermKind kind;
    std::string lexical;
  };

  TermId Intern(TermKind kind, std::string_view lexical);

  static std::string MakeKey(TermKind kind, std::string_view lexical) {
    std::string key;
    key.push_back(static_cast<char>(kind));
    key.append(lexical);
    return key;
  }

  std::vector<Entry> terms_;
  std::unordered_map<std::string, TermId> index_;
  size_t approx_bytes_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_RDF_DICTIONARY_H_
