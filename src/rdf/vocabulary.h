#ifndef MARLIN_RDF_VOCABULARY_H_
#define MARLIN_RDF_VOCABULARY_H_

/// \file vocabulary.h
/// \brief datAcron-flavoured maritime vocabulary (paper §2.5).
///
/// A compact ontology in the spirit of the datAcron ontology and the
/// Simple Event Model [41]: vessels, semantic trajectories with segments,
/// events, and contextual links. Namespaces: `dtc:` (domain), `sem:`
/// (events), `geo:` (positions).

namespace marlin {
namespace vocab {

// Classes
inline constexpr const char* kVessel = "dtc:Vessel";
inline constexpr const char* kTrajectory = "dtc:Trajectory";
inline constexpr const char* kSegment = "dtc:TrajectorySegment";
inline constexpr const char* kPosition = "geo:Position";
inline constexpr const char* kEvent = "sem:Event";
inline constexpr const char* kZone = "dtc:Zone";
inline constexpr const char* kWeatherCondition = "dtc:WeatherCondition";

// Core properties
inline constexpr const char* kType = "rdf:type";
inline constexpr const char* kHasTrajectory = "dtc:hasTrajectory";
inline constexpr const char* kHasSegment = "dtc:hasSegment";
inline constexpr const char* kHasPosition = "dtc:hasPosition";
inline constexpr const char* kNextSegment = "dtc:nextSegment";
inline constexpr const char* kMmsi = "dtc:mmsi";
inline constexpr const char* kName = "dtc:name";
inline constexpr const char* kShipType = "dtc:shipType";
inline constexpr const char* kFlag = "dtc:flag";

// Position/segment attributes
inline constexpr const char* kLat = "geo:lat";
inline constexpr const char* kLon = "geo:lon";
inline constexpr const char* kTime = "dtc:timestamp";
inline constexpr const char* kSpeed = "dtc:speedMps";
inline constexpr const char* kCourse = "dtc:courseDeg";
inline constexpr const char* kStartTime = "dtc:startTime";
inline constexpr const char* kEndTime = "dtc:endTime";

// Event & context links
inline constexpr const char* kEventType = "sem:eventType";
inline constexpr const char* kInvolves = "sem:involves";
inline constexpr const char* kOccursAt = "sem:occursAt";
inline constexpr const char* kWithinZone = "dtc:withinZone";
inline constexpr const char* kWeatherAt = "dtc:weatherAt";
inline constexpr const char* kSameAs = "owl:sameAs";

}  // namespace vocab
}  // namespace marlin

#endif  // MARLIN_RDF_VOCABULARY_H_
