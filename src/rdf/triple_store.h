#ifndef MARLIN_RDF_TRIPLE_STORE_H_
#define MARLIN_RDF_TRIPLE_STORE_H_

/// \file triple_store.h
/// \brief Dictionary-encoded in-memory triple store with SPO/POS/OSP
/// indexes and basic-graph-pattern evaluation.
///
/// This is the "generic RDF store" side of experiment E4: a competent triple
/// store (sorted permutation indexes, merge-based pattern scans) that is
/// nevertheless structurally mismatched with trajectory workloads, as the
/// paper argues in §2.3/§2.5.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdf/dictionary.h"

namespace marlin {

/// \brief One dictionary-encoded triple.
struct Triple {
  TermId s = 0;
  TermId p = 0;
  TermId o = 0;

  bool operator==(const Triple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
};

/// \brief A triple pattern: each position is a bound term or a variable.
///
/// Variables are negative ints (-1, -2, ...); bindings are shared across
/// patterns in a BGP by variable id.
struct TriplePattern {
  int64_t s = -1;
  int64_t p = -1;
  int64_t o = -1;

  static constexpr int64_t Var(int n) { return -1 - n; }
  static bool IsVar(int64_t x) { return x < 0; }
  static int VarIndex(int64_t x) { return static_cast<int>(-1 - x); }
};

/// \brief A solution row: variable index → TermId.
using Binding = std::vector<TermId>;

/// \brief In-memory triple store.
class TripleStore {
 public:
  explicit TripleStore(TermDictionary* dict) : dict_(dict) {}

  /// \brief Adds a triple (duplicates are tolerated and deduped on commit).
  void Add(TermId s, TermId p, TermId o);

  /// \brief Convenience: interns terms then adds.
  void Add(std::string_view s_iri, std::string_view p_iri, TermId o);

  /// \brief Sorts/dedupes indexes. Called automatically by queries.
  void Commit();

  /// \brief All triples matching a single pattern with optional constants.
  /// Pass std::nullopt for wildcards.
  std::vector<Triple> Match(std::optional<TermId> s, std::optional<TermId> p,
                            std::optional<TermId> o) const;

  /// \brief Evaluates a basic graph pattern (conjunctive query) by index
  /// nested-loop join, most-selective-first. Returns bindings for
  /// `num_vars` variables.
  std::vector<Binding> Query(const std::vector<TriplePattern>& bgp,
                             int num_vars) const;

  size_t size() const { return spo_.size(); }
  TermDictionary* dictionary() const { return dict_; }

  /// \brief Approximate index memory footprint (bytes), excluding dictionary.
  size_t ApproximateBytes() const { return spo_.size() * 3 * sizeof(Triple); }

 private:
  enum class Order { kSpo, kPos, kOsp };

  /// Returns matches for a pattern with the given constants; chooses the
  /// best permutation index.
  void MatchInto(std::optional<TermId> s, std::optional<TermId> p,
                 std::optional<TermId> o, std::vector<Triple>* out) const;

  void EnsureCommitted() const;

  TermDictionary* dict_;
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable bool dirty_ = false;
};

}  // namespace marlin

#endif  // MARLIN_RDF_TRIPLE_STORE_H_
