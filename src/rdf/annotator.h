#ifndef MARLIN_RDF_ANNOTATOR_H_
#define MARLIN_RDF_ANNOTATOR_H_

/// \file annotator.h
/// \brief Semantic-trajectory annotation: maps trajectories into the
/// vocabulary.h graph shape (paper §2.2 "computation of semantic
/// trajectories", citing Parent et al. [34]).

#include <string>

#include "rdf/triple_store.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief Writes trajectory data as RDF triples.
///
/// Graph shape per vessel:
///   <vessel/M> rdf:type dtc:Vessel ; dtc:mmsi M ; dtc:hasTrajectory <traj/M>
///   <traj/M> dtc:hasSegment <seg/M/i> ; segments chain via dtc:nextSegment
///   <seg/M/i> dtc:hasPosition <pos/M/i/j> ; dtc:startTime ; dtc:endTime
///   <pos/M/i/j> geo:lat ; geo:lon ; dtc:timestamp ; dtc:speedMps
class TrajectoryAnnotator {
 public:
  struct Options {
    /// Samples per trajectory segment resource.
    int points_per_segment = 32;
  };

  explicit TrajectoryAnnotator(TripleStore* store)
      : TrajectoryAnnotator(store, Options()) {}
  TrajectoryAnnotator(TripleStore* store, const Options& options)
      : store_(store), options_(options) {}

  /// \brief Adds the full graph for `trajectory`. Returns the number of
  /// triples emitted.
  size_t Annotate(const Trajectory& trajectory);

  /// \brief Links a vessel to a zone resource (contextual enrichment edge).
  void LinkZone(uint32_t mmsi, const std::string& zone_iri);

  /// \brief The IRI of a vessel resource.
  static std::string VesselIri(uint32_t mmsi);
  /// \brief The IRI of a trajectory resource.
  static std::string TrajectoryIri(uint32_t mmsi);

 private:
  TripleStore* store_;
  Options options_;
};

/// \brief Retrieves the positions of one vessel in a time window from the
/// triple store — the query shape experiment E4 measures against the
/// trajectory-native store.
std::vector<TrajectoryPoint> QueryTrajectoryFromRdf(const TripleStore& store,
                                                    uint32_t mmsi,
                                                    Timestamp t0, Timestamp t1);

}  // namespace marlin

#endif  // MARLIN_RDF_ANNOTATOR_H_
