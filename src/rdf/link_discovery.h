#ifndef MARLIN_RDF_LINK_DISCOVERY_H_
#define MARLIN_RDF_LINK_DISCOVERY_H_

/// \file link_discovery.h
/// \brief Silk-style link discovery between entity collections (paper §2.2,
/// citing Ngonga Ngomo [32] and Silk [39]).
///
/// Links records describing the same real-world vessel across sources
/// (e.g. the MarineTraffic-like vs Lloyd's-like registries of §4) using
/// weighted similarity over string / numeric / spatial properties, with
/// hash blocking to avoid the quadratic comparison space.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "geo/point.h"

namespace marlin {

/// \brief A property bag describing one entity to be linked.
struct LinkEntity {
  std::string id;
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  std::map<std::string, GeoPoint> points;
};

/// \brief Similarity metric kinds for one property comparison.
enum class LinkMetric : uint8_t {
  kExact,         ///< 1 if equal strings, else 0
  kLevenshtein,   ///< normalized edit similarity
  kTokenJaccard,  ///< whitespace token set Jaccard
  kNumericAbs,    ///< 1 - min(1, |a-b| / tolerance)
  kGeoDistance,   ///< 1 - min(1, haversine(a,b) / tolerance_m)
};

/// \brief One weighted comparison in a link specification.
struct LinkComparison {
  std::string source_property;
  std::string target_property;
  LinkMetric metric = LinkMetric::kExact;
  double weight = 1.0;
  double tolerance = 1.0;  ///< metric-dependent scale (units or metres)
};

/// \brief A link specification: comparisons + acceptance threshold.
struct LinkSpec {
  std::vector<LinkComparison> comparisons;
  double threshold = 0.8;          ///< accept when weighted score ≥ threshold
  std::string blocking_property;   ///< string property used for hash blocking
                                   ///< (empty = full cross product)
  int blocking_prefix = 3;         ///< block key = uppercase prefix length
};

/// \brief A discovered link with its score.
struct Link {
  std::string source_id;
  std::string target_id;
  double score = 0.0;
};

/// \brief Statistics of one discovery run.
struct LinkStats {
  uint64_t candidate_pairs = 0;  ///< pairs actually compared
  uint64_t total_pairs = 0;      ///< |source| × |target|
  uint64_t links = 0;
};

/// \brief Runs link discovery between two entity collections.
std::vector<Link> DiscoverLinks(const std::vector<LinkEntity>& source,
                                const std::vector<LinkEntity>& target,
                                const LinkSpec& spec,
                                LinkStats* stats = nullptr);

/// \brief Scores a single entity pair under `spec` (exposed for tests).
double ScorePair(const LinkEntity& a, const LinkEntity& b,
                 const LinkSpec& spec);

}  // namespace marlin

#endif  // MARLIN_RDF_LINK_DISCOVERY_H_
