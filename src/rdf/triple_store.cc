#include "rdf/triple_store.h"

#include <algorithm>
#include <limits>

namespace marlin {

namespace {

struct SpoLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct PosLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OspLess {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

}  // namespace

void TripleStore::Add(TermId s, TermId p, TermId o) {
  spo_.push_back(Triple{s, p, o});
  dirty_ = true;
}

void TripleStore::Add(std::string_view s_iri, std::string_view p_iri,
                      TermId o) {
  Add(dict_->Iri(s_iri), dict_->Iri(p_iri), o);
}

void TripleStore::Commit() { EnsureCommitted(); }

void TripleStore::EnsureCommitted() const {
  if (!dirty_) return;
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());
  dirty_ = false;
}

void TripleStore::MatchInto(std::optional<TermId> s, std::optional<TermId> p,
                            std::optional<TermId> o,
                            std::vector<Triple>* out) const {
  EnsureCommitted();
  const TermId kMax = std::numeric_limits<TermId>::max();

  if (s.has_value()) {
    // SPO index: prefix (s) or (s,p).
    Triple lo{*s, p.value_or(0), 0};
    Triple hi{*s, p.value_or(kMax), kMax};
    auto begin = std::lower_bound(spo_.begin(), spo_.end(), lo, SpoLess());
    auto end = std::upper_bound(spo_.begin(), spo_.end(), hi, SpoLess());
    for (auto it = begin; it != end; ++it) {
      if (o.has_value() && it->o != *o) continue;
      out->push_back(*it);
    }
    return;
  }
  if (p.has_value()) {
    // POS index: prefix (p) or (p,o).
    Triple lo{0, *p, o.value_or(0)};
    Triple hi{kMax, *p, o.value_or(kMax)};
    auto begin = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess());
    auto end = std::upper_bound(pos_.begin(), pos_.end(), hi, PosLess());
    for (auto it = begin; it != end; ++it) out->push_back(*it);
    return;
  }
  if (o.has_value()) {
    // OSP index: prefix (o).
    Triple lo{0, 0, *o};
    Triple hi{kMax, kMax, *o};
    auto begin = std::lower_bound(osp_.begin(), osp_.end(), lo, OspLess());
    auto end = std::upper_bound(osp_.begin(), osp_.end(), hi, OspLess());
    for (auto it = begin; it != end; ++it) out->push_back(*it);
    return;
  }
  out->insert(out->end(), spo_.begin(), spo_.end());
}

std::vector<Triple> TripleStore::Match(std::optional<TermId> s,
                                       std::optional<TermId> p,
                                       std::optional<TermId> o) const {
  std::vector<Triple> out;
  MatchInto(s, p, o, &out);
  return out;
}

std::vector<Binding> TripleStore::Query(const std::vector<TriplePattern>& bgp,
                                        int num_vars) const {
  EnsureCommitted();
  std::vector<Binding> solutions;
  solutions.push_back(Binding(num_vars, kInvalidTermId));

  // Greedy most-selective-first: at each step pick the unused pattern with
  // the most bound positions under current bindings (static approximation:
  // count constants + already-bound vars of the first solution row).
  std::vector<bool> used(bgp.size(), false);

  for (size_t step = 0; step < bgp.size(); ++step) {
    // Rank patterns by number of bound positions.
    int best = -1;
    int best_bound = -1;
    for (size_t i = 0; i < bgp.size(); ++i) {
      if (used[i]) continue;
      int bound = 0;
      auto is_bound = [&](int64_t term) {
        if (!TriplePattern::IsVar(term)) return true;
        const int v = TriplePattern::VarIndex(term);
        return !solutions.empty() && solutions[0][v] != kInvalidTermId;
      };
      if (is_bound(bgp[i].s)) ++bound;
      if (is_bound(bgp[i].p)) ++bound;
      if (is_bound(bgp[i].o)) ++bound;
      if (bound > best_bound) {
        best_bound = bound;
        best = static_cast<int>(i);
      }
    }
    used[best] = true;
    const TriplePattern& pat = bgp[best];

    std::vector<Binding> next;
    for (const Binding& row : solutions) {
      auto resolve = [&](int64_t term) -> std::optional<TermId> {
        if (!TriplePattern::IsVar(term)) {
          return static_cast<TermId>(term);
        }
        const TermId bound_value = row[TriplePattern::VarIndex(term)];
        if (bound_value != kInvalidTermId) return bound_value;
        return std::nullopt;
      };
      const auto s = resolve(pat.s);
      const auto p = resolve(pat.p);
      const auto o = resolve(pat.o);
      std::vector<Triple> matches;
      MatchInto(s, p, o, &matches);
      for (const Triple& t : matches) {
        Binding extended = row;
        bool consistent = true;
        auto bind = [&](int64_t term, TermId value) {
          if (!TriplePattern::IsVar(term)) return;
          TermId& slot = extended[TriplePattern::VarIndex(term)];
          if (slot == kInvalidTermId) {
            slot = value;
          } else if (slot != value) {
            consistent = false;
          }
        };
        bind(pat.s, t.s);
        bind(pat.p, t.p);
        bind(pat.o, t.o);
        if (consistent) next.push_back(std::move(extended));
      }
    }
    solutions = std::move(next);
    if (solutions.empty()) return solutions;
  }
  return solutions;
}

}  // namespace marlin
