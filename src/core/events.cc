#include "core/events.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "geo/geodesy.h"
#include "geo/kinematics.h"

namespace marlin {

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kZoneEntry:
      return "zone-entry";
    case EventType::kZoneExit:
      return "zone-exit";
    case EventType::kStop:
      return "stop";
    case EventType::kMove:
      return "move";
    case EventType::kDarkPeriod:
      return "dark-period";
    case EventType::kSpeedViolation:
      return "speed-violation";
    case EventType::kRendezvous:
      return "rendezvous";
    case EventType::kLoitering:
      return "loitering";
    case EventType::kIdentitySpoof:
      return "identity-spoof";
    case EventType::kTeleportSpoof:
      return "teleport-spoof";
    case EventType::kCollisionRisk:
      return "collision-risk";
    case EventType::kIllegalFishing:
      return "illegal-fishing";
  }
  return "unknown";
}

bool CanonicalEventLess(const DetectedEvent& a, const DetectedEvent& b) {
  return std::tie(a.detected_at, a.vessel_a, a.vessel_b, a.type, a.start,
                  a.end, a.zone_id, a.severity) <
         std::tie(b.detected_at, b.vessel_a, b.vessel_b, b.type, b.start,
                  b.end, b.zone_id, b.severity);
}

void ResequenceEvents(std::vector<DetectedEvent>* events) {
  std::stable_sort(events->begin(), events->end(), CanonicalEventLess);
}

// --- VesselEventEngine ------------------------------------------------------

VesselEventEngine::VesselEventEngine(const ZoneDatabase* zones,
                                     const Options& options)
    : zones_(zones), options_(options) {}

void VesselEventEngine::SetVesselInfo(Mmsi mmsi, int ship_type) {
  vessels_[mmsi].ship_type = ship_type;
}

PairObservation VesselEventEngine::Ingest(const ReconstructedPoint& rp,
                                          std::vector<DetectedEvent>* out) {
  ++stats_.points_in;
  VesselState& vessel = vessels_[rp.mmsi];

  // Dark period: the reconstruction layer hands us the gap length.
  if (rp.gap_before_ms > options_.dark_threshold_ms && vessel.has_last) {
    DetectedEvent ev;
    ev.type = EventType::kDarkPeriod;
    ev.start = rp.point.t - rp.gap_before_ms;
    ev.end = rp.point.t;
    ev.vessel_a = rp.mmsi;
    ev.where = vessel.last.position;
    ev.severity = std::min(1.0, rp.gap_before_ms /
                                    static_cast<double>(2 * kMillisPerHour));
    ev.detected_at = rp.point.t;
    out->push_back(ev);
    ++stats_.events_out;
    vessel.window.clear();  // a gap invalidates the loiter window
  }

  CheckZones(rp, &vessel, out);
  CheckStopMove(rp, &vessel, out);
  CheckIllegalFishing(rp, &vessel, out);
  CheckLoitering(rp, &vessel, out);

  vessel.last = rp.point;
  vessel.has_last = true;

  return PairObservation{rp.mmsi, rp.point, vessel.in_port_area};
}

void VesselEventEngine::CheckZones(const ReconstructedPoint& rp,
                                   VesselState* vessel,
                                   std::vector<DetectedEvent>* out) {
  std::set<uint32_t> current;
  bool in_port_area = false;
  for (const GeoZone* z : zones_->ZonesAt(rp.point.position)) {
    current.insert(z->id);
    if (z->type == ZoneType::kPort || z->type == ZoneType::kAnchorage) {
      in_port_area = true;
    }
    // Speed limits: alert once per zone visit.
    if (z->speed_limit_knots > 0.0 &&
        rp.point.sog_mps > z->speed_limit_knots * 0.5144 * 1.15 &&
        vessel->speed_alerted.find(z->id) == vessel->speed_alerted.end()) {
      vessel->speed_alerted.insert(z->id);
      DetectedEvent ev;
      ev.type = EventType::kSpeedViolation;
      ev.start = ev.end = ev.detected_at = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = z->id;
      ev.severity = 0.4;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
  // Entries.
  for (uint32_t id : current) {
    if (vessel->zones.find(id) == vessel->zones.end()) {
      DetectedEvent ev;
      ev.type = EventType::kZoneEntry;
      ev.start = ev.end = ev.detected_at = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = id;
      const GeoZone* z = zones_->Find(id);
      ev.severity =
          (z != nullptr && (z->type == ZoneType::kProtectedArea ||
                            z->type == ZoneType::kRestricted))
              ? 0.7
              : 0.2;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
  // Exits.
  for (uint32_t id : vessel->zones) {
    if (current.find(id) == current.end()) {
      DetectedEvent ev;
      ev.type = EventType::kZoneExit;
      ev.start = ev.end = ev.detected_at = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = id;
      ev.severity = 0.1;
      out->push_back(ev);
      ++stats_.events_out;
      vessel->speed_alerted.erase(id);
      vessel->fishing_since.erase(id);
      vessel->fishing_alerted.erase(id);
    }
  }
  vessel->zones = std::move(current);
  vessel->in_port_area = in_port_area;
}

void VesselEventEngine::CheckStopMove(const ReconstructedPoint& rp,
                                      VesselState* vessel,
                                      std::vector<DetectedEvent>* out) {
  const bool now_stopped = rp.point.sog_mps < options_.stop_speed_mps;
  if (vessel->has_last && now_stopped != vessel->stopped) {
    DetectedEvent ev;
    ev.type = now_stopped ? EventType::kStop : EventType::kMove;
    ev.start = ev.end = ev.detected_at = rp.point.t;
    ev.vessel_a = rp.mmsi;
    ev.where = rp.point.position;
    ev.severity = 0.1;
    out->push_back(ev);
    ++stats_.events_out;
  }
  vessel->stopped = now_stopped;
}

void VesselEventEngine::CheckLoitering(const ReconstructedPoint& rp,
                                       VesselState* vessel,
                                       std::vector<DetectedEvent>* out) {
  const Timestamp t = rp.point.t;
  auto& window = vessel->window;
  window.push_back(rp.point);
  while (!window.empty() &&
         t - window.front().t > options_.loiter_min_duration) {
    window.pop_front();
  }
  if (vessel->in_port_area) {
    return;  // moored in harbour is normal, not loitering
  }
  if (window.size() < 4) return;
  if (t - window.front().t < options_.loiter_min_duration * 9 / 10) return;
  if (vessel->last_loiter_alert != kInvalidTimestamp &&
      t - vessel->last_loiter_alert < options_.loiter_realert_ms) {
    return;
  }
  // Confinement test: window bounding box must fit inside the radius, and
  // mean speed must be low.
  BoundingBox box = BoundingBox::Empty();
  double speed_sum = 0.0;
  for (const auto& p : window) {
    box.Extend(p.position);
    speed_sum += p.sog_mps;
  }
  const double diag = HaversineDistance(GeoPoint(box.min_lat, box.min_lon),
                                        GeoPoint(box.max_lat, box.max_lon));
  const double mean_speed = speed_sum / static_cast<double>(window.size());
  if (diag <= 2.0 * options_.loiter_radius_m &&
      mean_speed <= options_.loiter_max_speed_mps) {
    vessel->last_loiter_alert = t;
    DetectedEvent ev;
    ev.type = EventType::kLoitering;
    ev.start = window.front().t;
    ev.end = t;
    ev.vessel_a = rp.mmsi;
    ev.where = box.Center();
    ev.severity = 0.6;
    ev.detected_at = t;
    out->push_back(ev);
    ++stats_.events_out;
  }
}

void VesselEventEngine::CheckIllegalFishing(const ReconstructedPoint& rp,
                                            VesselState* vessel,
                                            std::vector<DetectedEvent>* out) {
  const bool fishing_speed =
      rp.point.sog_mps >= options_.fishing_speed_lo_mps &&
      rp.point.sog_mps <= options_.fishing_speed_hi_mps;
  const bool is_fishing_vessel =
      ShipTypeToCategory(vessel->ship_type) == ShipCategory::kFishing;
  for (uint32_t zone_id : vessel->zones) {
    const GeoZone* z = zones_->Find(zone_id);
    if (z == nullptr || !z->fishing_prohibited) continue;
    if (!fishing_speed || !is_fishing_vessel) {
      vessel->fishing_since.erase(zone_id);
      continue;
    }
    auto [it, inserted] =
        vessel->fishing_since.emplace(zone_id, rp.point.t);
    if (!inserted &&
        rp.point.t - it->second >= options_.fishing_min_duration &&
        vessel->fishing_alerted.find(zone_id) ==
            vessel->fishing_alerted.end()) {
      vessel->fishing_alerted.insert(zone_id);
      DetectedEvent ev;
      ev.type = EventType::kIllegalFishing;
      ev.start = it->second;
      ev.end = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = zone_id;
      ev.severity = 0.85;
      ev.detected_at = rp.point.t;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
}

void VesselEventEngine::IngestRejection(const RejectedReport& rejection,
                                        std::vector<DetectedEvent>* out) {
  if (rejection.reason != RejectedReport::Reason::kImpossibleJump) return;
  VesselState& vessel = vessels_[rejection.mmsi];
  auto& jumps = vessel.jump_times;
  jumps.push_back(rejection.t);
  while (!jumps.empty() &&
         rejection.t - jumps.front() > options_.identity_conflict_window) {
    jumps.pop_front();
  }
  const bool persistent =
      static_cast<int>(jumps.size()) >= options_.identity_conflict_count;
  // Rate-limit spoof alerts to one per conflict window.
  if (vessel.last_spoof_alert != kInvalidTimestamp &&
      rejection.t - vessel.last_spoof_alert <
          options_.identity_conflict_window) {
    return;
  }
  DetectedEvent ev;
  ev.type =
      persistent ? EventType::kIdentitySpoof : EventType::kTeleportSpoof;
  ev.start = ev.end = ev.detected_at = rejection.t;
  ev.vessel_a = rejection.mmsi;
  ev.where = rejection.reported;
  ev.severity = persistent ? 0.95 : 0.7;
  if (persistent || jumps.size() == 1) {
    vessel.last_spoof_alert =
        persistent ? rejection.t : vessel.last_spoof_alert;
    out->push_back(ev);
    ++stats_.events_out;
  }
}

// --- PairEventEngine --------------------------------------------------------

PairEventEngine::PairEventEngine(const Options& options)
    : options_(options), live_(0.1) {}

void PairEventEngine::Ingest(const PairObservation& obs,
                             std::vector<DetectedEvent>* out) {
  ++stats_.points_in;
  // Update the live picture before the pair scans so self-lookups see fresh
  // data (same ordering the unified engine used).
  live_.Upsert(obs.mmsi, obs.point.position);
  VesselState& vessel = vessels_[obs.mmsi];
  vessel.last = obs.point;
  vessel.has_last = true;
  vessel.in_port_area = obs.in_port_area;

  CheckRendezvous(obs, out);
  CheckCollision(obs, out);
}

void PairEventEngine::CheckRendezvous(const PairObservation& obs,
                                      std::vector<DetectedEvent>* out) {
  const Timestamp t = obs.point.t;
  const bool eligible =
      obs.point.sog_mps <= options_.rendezvous_max_speed_mps &&
      !obs.in_port_area;
  if (!eligible) return;
  for (const auto& [other_id, dist] :
       live_.QueryRadius(obs.point.position, options_.rendezvous_distance_m)) {
    const Mmsi other = static_cast<Mmsi>(other_id);
    if (other == obs.mmsi) continue;
    auto other_it = vessels_.find(other);
    if (other_it == vessels_.end() || !other_it->second.has_last) continue;
    const VesselState& partner = other_it->second;
    if (partner.last.sog_mps > options_.rendezvous_max_speed_mps) continue;
    if (partner.in_port_area) continue;
    // Partner must be current (not a stale last-position).
    if (t - partner.last.t > 5 * kMillisPerMinute) continue;

    PairState& pair = rendezvous_pairs_[MakePair(obs.mmsi, other)];
    if (pair.since == 0 || t - pair.last_seen > 5 * kMillisPerMinute) {
      pair.since = t;
      pair.reported = false;
    }
    pair.last_seen = t;
    pair.where = obs.point.position;
    if (!pair.reported && t - pair.since >= options_.rendezvous_min_duration) {
      // The `reported` latch flips in every replica that tracks this pair;
      // only the owner replica (emit filter) appends the event.
      pair.reported = true;
      if (MayEmit(obs.mmsi, other)) {
        DetectedEvent ev;
        ev.type = EventType::kRendezvous;
        ev.start = pair.since;
        ev.end = t;
        ev.vessel_a = std::min(obs.mmsi, other);
        ev.vessel_b = std::max(obs.mmsi, other);
        ev.where = pair.where;
        ev.severity = 0.8;
        ev.detected_at = t;
        out->push_back(ev);
        ++stats_.events_out;
      }
    }
  }
}

void PairEventEngine::CheckCollision(const PairObservation& obs,
                                     std::vector<DetectedEvent>* out) {
  if (obs.point.sog_mps < options_.collision_min_speed_mps) return;
  const Timestamp t = obs.point.t;
  MotionState self;
  self.position = obs.point.position;
  self.speed_mps = obs.point.sog_mps;
  self.course_deg = obs.point.cog_deg;

  for (const auto& [other_id, dist] :
       live_.QueryRadius(obs.point.position, options_.collision_scan_radius_m)) {
    const Mmsi other = static_cast<Mmsi>(other_id);
    if (other == obs.mmsi) continue;
    auto other_it = vessels_.find(other);
    if (other_it == vessels_.end() || !other_it->second.has_last) continue;
    const VesselState& partner = other_it->second;
    if (t - partner.last.t > 3 * kMillisPerMinute) continue;
    if (partner.last.sog_mps < options_.collision_min_speed_mps) continue;

    const PairKey key = MakePair(obs.mmsi, other);
    auto alert_it = collision_alerts_.find(key);
    if (alert_it != collision_alerts_.end() &&
        t - alert_it->second < options_.collision_realert_ms) {
      continue;
    }

    MotionState target;
    target.position = partner.last.position;
    target.speed_mps = partner.last.sog_mps;
    target.course_deg = partner.last.cog_deg;
    const CpaResult cpa = ComputeCpa(self, target);
    if (cpa.converging && cpa.distance_m < options_.cpa_threshold_m &&
        cpa.tcpa_s < options_.tcpa_horizon_s) {
      // The re-alert clock advances in every replica; only the owner emits.
      collision_alerts_[key] = t;
      if (MayEmit(obs.mmsi, other)) {
        DetectedEvent ev;
        ev.type = EventType::kCollisionRisk;
        ev.start = ev.detected_at = t;
        ev.end = t + static_cast<DurationMs>(cpa.tcpa_s * kMillisPerSecond);
        ev.vessel_a = std::min(obs.mmsi, other);
        ev.vessel_b = std::max(obs.mmsi, other);
        ev.where = obs.point.position;
        ev.severity = 0.9;
        out->push_back(ev);
        ++stats_.events_out;
      }
    }
  }
}

void PairEventEngine::CloseWindow(std::vector<PairObservation>* pairs,
                                  bool flush,
                                  std::vector<DetectedEvent>* events) {
  std::sort(pairs->begin(), pairs->end(), ObservationLess);
  for (const PairObservation& obs : *pairs) Ingest(obs, events);
  pairs->clear();
  if (flush) Flush(events);
  ResequenceEvents(events);
}

void PairEventEngine::Flush(std::vector<DetectedEvent>* out) {
  // Close rendezvous pairs that accumulated enough dwell but never crossed
  // the reporting threshold before the stream ended.
  for (auto& [key, pair] : rendezvous_pairs_) {
    if (!pair.reported &&
        pair.last_seen - pair.since >= options_.rendezvous_min_duration) {
      pair.reported = true;
      if (!MayEmit(key.first, key.second)) continue;
      DetectedEvent ev;
      ev.type = EventType::kRendezvous;
      ev.start = pair.since;
      ev.end = pair.last_seen;
      ev.vessel_a = key.first;
      ev.vessel_b = key.second;
      ev.where = pair.where;
      ev.severity = 0.8;
      ev.detected_at = pair.last_seen;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
}

// --- Grid-parallel state transplant ----------------------------------------

void PairEventEngine::ExportVessels(std::vector<VesselSnapshot>* out) const {
  out->reserve(out->size() + vessels_.size());
  for (const auto& [mmsi, state] : vessels_) {
    // Entries are only ever created by Ingest, which sets `last`
    // immediately, so every exported snapshot carries a real position.
    out->push_back(VesselSnapshot{mmsi, state.last, state.in_port_area});
  }
}

bool PairEventEngine::GetVessel(Mmsi mmsi, VesselSnapshot* out) const {
  auto it = vessels_.find(mmsi);
  if (it == vessels_.end() || !it->second.has_last) return false;
  *out = VesselSnapshot{mmsi, it->second.last, it->second.in_port_area};
  return true;
}

void PairEventEngine::ExportRendezvous(
    std::vector<RendezvousSnapshot>* out) const {
  out->reserve(out->size() + rendezvous_pairs_.size());
  for (const auto& [key, pair] : rendezvous_pairs_) {
    out->push_back(RendezvousSnapshot{key.first, key.second, pair.since,
                                      pair.last_seen, pair.where,
                                      pair.reported});
  }
}

void PairEventEngine::ExportCollisions(
    std::vector<CollisionSnapshot>* out) const {
  out->reserve(out->size() + collision_alerts_.size());
  for (const auto& [key, last_alert] : collision_alerts_) {
    out->push_back(CollisionSnapshot{key.first, key.second, last_alert});
  }
}

void PairEventEngine::RestoreVessel(const VesselSnapshot& snapshot) {
  VesselState& state = vessels_[snapshot.mmsi];
  state.last = snapshot.last;
  state.has_last = true;
  state.in_port_area = snapshot.in_port_area;
  live_.Upsert(snapshot.mmsi, snapshot.last.position);
}

void PairEventEngine::RestoreRendezvous(const RendezvousSnapshot& snapshot) {
  PairState& pair = rendezvous_pairs_[MakePair(snapshot.a, snapshot.b)];
  pair.since = snapshot.since;
  pair.last_seen = snapshot.last_seen;
  pair.where = snapshot.where;
  pair.reported = snapshot.reported;
}

void PairEventEngine::RestoreCollision(const CollisionSnapshot& snapshot) {
  collision_alerts_[MakePair(snapshot.a, snapshot.b)] = snapshot.last_alert;
}

}  // namespace marlin
