#include "core/events.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "geo/geodesy.h"
#include "geo/kinematics.h"

namespace marlin {

namespace {

// Sorted-small-vector set operations for the per-vessel id sets (zone
// membership, per-zone alert latches). The sets hold a handful of ids, so a
// binary search over contiguous memory beats a node-based std::set and the
// inserts stay allocation-free at steady state.
bool SortedContains(const std::vector<uint32_t>& v, uint32_t id) {
  return std::binary_search(v.begin(), v.end(), id);
}

void SortedInsert(std::vector<uint32_t>* v, uint32_t id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it == v->end() || *it != id) v->insert(it, id);
}

void SortedErase(std::vector<uint32_t>* v, uint32_t id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it != v->end() && *it == id) v->erase(it);
}

void EraseFishingSince(std::vector<std::pair<uint32_t, Timestamp>>* v,
                       uint32_t zone_id) {
  for (auto it = v->begin(); it != v->end(); ++it) {
    if (it->first == zone_id) {
      v->erase(it);
      return;
    }
  }
}

}  // namespace

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kZoneEntry:
      return "zone-entry";
    case EventType::kZoneExit:
      return "zone-exit";
    case EventType::kStop:
      return "stop";
    case EventType::kMove:
      return "move";
    case EventType::kDarkPeriod:
      return "dark-period";
    case EventType::kSpeedViolation:
      return "speed-violation";
    case EventType::kRendezvous:
      return "rendezvous";
    case EventType::kLoitering:
      return "loitering";
    case EventType::kIdentitySpoof:
      return "identity-spoof";
    case EventType::kTeleportSpoof:
      return "teleport-spoof";
    case EventType::kCollisionRisk:
      return "collision-risk";
    case EventType::kIllegalFishing:
      return "illegal-fishing";
    case EventType::kBehaviorChange:
      return "behavior-change";
    case EventType::kKinematicIntegrity:
      return "kinematic-integrity";
    case EventType::kMmsiConflict:
      return "mmsi-conflict";
  }
  return "unknown";
}

bool CanonicalEventLess(const DetectedEvent& a, const DetectedEvent& b) {
  return std::tie(a.detected_at, a.vessel_a, a.vessel_b, a.type, a.start,
                  a.end, a.zone_id, a.severity) <
         std::tie(b.detected_at, b.vessel_a, b.vessel_b, b.type, b.start,
                  b.end, b.zone_id, b.severity);
}

void ResequenceEvents(std::vector<DetectedEvent>* events) {
  std::stable_sort(events->begin(), events->end(), CanonicalEventLess);
}

// --- VesselEventEngine ------------------------------------------------------

VesselEventEngine::VesselEventEngine(const ZoneDatabase* zones,
                                     const Options& options)
    : zones_(zones), options_(options) {}

void VesselEventEngine::SetVesselInfo(Mmsi mmsi, int ship_type) {
  vessels_[mmsi].ship_type = ship_type;
}

PairObservation VesselEventEngine::Ingest(const ReconstructedPoint& rp,
                                          std::vector<DetectedEvent>* out) {
  ++stats_.points_in;
  VesselState& vessel = vessels_[rp.mmsi];

  // Dark period: the reconstruction layer hands us the gap length.
  if (rp.gap_before_ms > options_.dark_threshold_ms && vessel.has_last) {
    DetectedEvent ev;
    ev.type = EventType::kDarkPeriod;
    ev.start = rp.point.t - rp.gap_before_ms;
    ev.end = rp.point.t;
    ev.vessel_a = rp.mmsi;
    ev.where = vessel.last.position;
    ev.severity = std::min(1.0, rp.gap_before_ms /
                                    static_cast<double>(2 * kMillisPerHour));
    ev.detected_at = rp.point.t;
    out->push_back(ev);
    ++stats_.events_out;
    vessel.window.clear();  // a gap invalidates the loiter window
  }

  CheckZones(rp, &vessel, out);
  CheckStopMove(rp, &vessel, out);
  CheckIllegalFishing(rp, &vessel, out);
  CheckLoitering(rp, &vessel, out);

  vessel.last = rp.point;
  vessel.has_last = true;

  return PairObservation{rp.mmsi, rp.point, vessel.in_port_area};
}

void VesselEventEngine::CheckZones(const ReconstructedPoint& rp,
                                   VesselState* vessel,
                                   std::vector<DetectedEvent>* out) {
  zones_->ZonesAtInto(rp.point.position, &zones_at_scratch_);
  zone_ids_scratch_.clear();
  bool in_port_area = false;
  for (const GeoZone* z : zones_at_scratch_) {
    zone_ids_scratch_.push_back(z->id);
    if (z->type == ZoneType::kPort || z->type == ZoneType::kAnchorage) {
      in_port_area = true;
    }
    // Speed limits: alert once per zone visit. A missing SOG cannot violate
    // a limit (NaN comparisons are false anyway; the gate documents it).
    if (z->speed_limit_knots > 0.0 && rp.point.HasSpeed() &&
        rp.point.sog_mps > z->speed_limit_knots * 0.5144 * 1.15 &&
        !SortedContains(vessel->speed_alerted, z->id)) {
      SortedInsert(&vessel->speed_alerted, z->id);
      DetectedEvent ev;
      ev.type = EventType::kSpeedViolation;
      ev.start = ev.end = ev.detected_at = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = z->id;
      ev.severity = 0.4;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
  std::sort(zone_ids_scratch_.begin(), zone_ids_scratch_.end());
  zone_ids_scratch_.erase(
      std::unique(zone_ids_scratch_.begin(), zone_ids_scratch_.end()),
      zone_ids_scratch_.end());
  // Entries, in ascending zone-id order (the emission order the canonical
  // re-sequencing ties depend on — previously the std::set order).
  for (uint32_t id : zone_ids_scratch_) {
    if (!SortedContains(vessel->zones, id)) {
      DetectedEvent ev;
      ev.type = EventType::kZoneEntry;
      ev.start = ev.end = ev.detected_at = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = id;
      const GeoZone* z = zones_->Find(id);
      ev.severity =
          (z != nullptr && (z->type == ZoneType::kProtectedArea ||
                            z->type == ZoneType::kRestricted))
              ? 0.7
              : 0.2;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
  // Exits, ascending likewise.
  for (uint32_t id : vessel->zones) {
    if (!SortedContains(zone_ids_scratch_, id)) {
      DetectedEvent ev;
      ev.type = EventType::kZoneExit;
      ev.start = ev.end = ev.detected_at = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = id;
      ev.severity = 0.1;
      out->push_back(ev);
      ++stats_.events_out;
      SortedErase(&vessel->speed_alerted, id);
      EraseFishingSince(&vessel->fishing_since, id);
      SortedErase(&vessel->fishing_alerted, id);
    }
  }
  vessel->zones.assign(zone_ids_scratch_.begin(), zone_ids_scratch_.end());
  vessel->in_port_area = in_port_area;
}

void VesselEventEngine::CheckStopMove(const ReconstructedPoint& rp,
                                      VesselState* vessel,
                                      std::vector<DetectedEvent>* out) {
  // A point without speed neither confirms nor denies a transition; the
  // previous state carries over (sentinel SOG used to read as "stopped").
  if (!rp.point.HasSpeed()) return;
  const bool now_stopped = rp.point.sog_mps < options_.stop_speed_mps;
  if (vessel->has_last && now_stopped != vessel->stopped) {
    DetectedEvent ev;
    ev.type = now_stopped ? EventType::kStop : EventType::kMove;
    ev.start = ev.end = ev.detected_at = rp.point.t;
    ev.vessel_a = rp.mmsi;
    ev.where = rp.point.position;
    ev.severity = 0.1;
    out->push_back(ev);
    ++stats_.events_out;
  }
  vessel->stopped = now_stopped;
}

void VesselEventEngine::CheckLoitering(const ReconstructedPoint& rp,
                                       VesselState* vessel,
                                       std::vector<DetectedEvent>* out) {
  const Timestamp t = rp.point.t;
  auto& window = vessel->window;
  window.push_back(rp.point);
  while (!window.empty() &&
         t - window.front().t > options_.loiter_min_duration) {
    window.pop_front();
  }
  if (vessel->in_port_area) {
    return;  // moored in harbour is normal, not loitering
  }
  if (window.size() < 4) return;
  if (t - window.front().t < options_.loiter_min_duration * 9 / 10) return;
  if (vessel->last_loiter_alert != kInvalidTimestamp &&
      t - vessel->last_loiter_alert < options_.loiter_realert_ms) {
    return;
  }
  // Confinement test: window bounding box must fit inside the radius, and
  // mean speed must be low.
  BoundingBox box = BoundingBox::Empty();
  double speed_sum = 0.0;
  size_t speed_count = 0;
  for (size_t i = 0; i < window.size(); ++i) {
    const TrajectoryPoint& p = window[i];
    box.Extend(p.position);
    if (p.HasSpeed()) {
      speed_sum += p.sog_mps;
      ++speed_count;
    }
  }
  // Mean speed over the *available* samples only — one sentinel SOG used to
  // poison the whole window with NaN. No speed evidence at all ⇒ no alert.
  if (speed_count == 0) return;
  const double diag = HaversineDistance(GeoPoint(box.min_lat, box.min_lon),
                                        GeoPoint(box.max_lat, box.max_lon));
  const double mean_speed = speed_sum / static_cast<double>(speed_count);
  if (diag <= 2.0 * options_.loiter_radius_m &&
      mean_speed <= options_.loiter_max_speed_mps) {
    vessel->last_loiter_alert = t;
    DetectedEvent ev;
    ev.type = EventType::kLoitering;
    ev.start = window.front().t;
    ev.end = t;
    ev.vessel_a = rp.mmsi;
    ev.where = box.Center();
    ev.severity = 0.6;
    ev.detected_at = t;
    out->push_back(ev);
    ++stats_.events_out;
  }
}

void VesselEventEngine::CheckIllegalFishing(const ReconstructedPoint& rp,
                                            VesselState* vessel,
                                            std::vector<DetectedEvent>* out) {
  const bool fishing_speed =
      rp.point.HasSpeed() &&
      rp.point.sog_mps >= options_.fishing_speed_lo_mps &&
      rp.point.sog_mps <= options_.fishing_speed_hi_mps;
  const bool is_fishing_vessel =
      ShipTypeToCategory(vessel->ship_type) == ShipCategory::kFishing;
  for (uint32_t zone_id : vessel->zones) {
    const GeoZone* z = zones_->Find(zone_id);
    if (z == nullptr || !z->fishing_prohibited) continue;
    if (!fishing_speed || !is_fishing_vessel) {
      EraseFishingSince(&vessel->fishing_since, zone_id);
      continue;
    }
    Timestamp since = kInvalidTimestamp;
    for (const auto& [id, t0] : vessel->fishing_since) {
      if (id == zone_id) {
        since = t0;
        break;
      }
    }
    if (since == kInvalidTimestamp) {
      vessel->fishing_since.emplace_back(zone_id, rp.point.t);
      continue;
    }
    if (rp.point.t - since >= options_.fishing_min_duration &&
        !SortedContains(vessel->fishing_alerted, zone_id)) {
      SortedInsert(&vessel->fishing_alerted, zone_id);
      DetectedEvent ev;
      ev.type = EventType::kIllegalFishing;
      ev.start = since;
      ev.end = rp.point.t;
      ev.vessel_a = rp.mmsi;
      ev.where = rp.point.position;
      ev.zone_id = zone_id;
      ev.severity = 0.85;
      ev.detected_at = rp.point.t;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
}

void VesselEventEngine::IngestRejection(const RejectedReport& rejection,
                                        std::vector<DetectedEvent>* out) {
  if (rejection.reason != RejectedReport::Reason::kImpossibleJump) return;
  VesselState& vessel = vessels_[rejection.mmsi];
  auto& jumps = vessel.jump_times;
  jumps.push_back(rejection.t);
  while (!jumps.empty() &&
         rejection.t - jumps.front() > options_.identity_conflict_window) {
    jumps.pop_front();
  }
  const bool persistent =
      static_cast<int>(jumps.size()) >= options_.identity_conflict_count;
  // Rate-limit spoof alerts to one per conflict window.
  if (vessel.last_spoof_alert != kInvalidTimestamp &&
      rejection.t - vessel.last_spoof_alert <
          options_.identity_conflict_window) {
    return;
  }
  DetectedEvent ev;
  ev.type =
      persistent ? EventType::kIdentitySpoof : EventType::kTeleportSpoof;
  ev.start = ev.end = ev.detected_at = rejection.t;
  ev.vessel_a = rejection.mmsi;
  ev.where = rejection.reported;
  ev.severity = persistent ? 0.95 : 0.7;
  if (persistent || jumps.size() == 1) {
    vessel.last_spoof_alert =
        persistent ? rejection.t : vessel.last_spoof_alert;
    out->push_back(ev);
    ++stats_.events_out;
  }
}

// --- PairEventEngine --------------------------------------------------------

PairEventEngine::PairEventEngine(const Options& options)
    : options_(options), live_(0.1) {}

void PairEventEngine::Ingest(const PairObservation& obs,
                             std::vector<DetectedEvent>* out) {
  ++stats_.points_in;
  // Update the live picture before the pair scans so self-lookups see fresh
  // data (same ordering the unified engine used).
  live_.Upsert(obs.mmsi, obs.point.position);
  VesselState& vessel = vessels_[obs.mmsi];
  vessel.last = obs.point;
  vessel.has_last = true;
  vessel.in_port_area = obs.in_port_area;

  CheckRendezvous(obs, out);
  CheckCollision(obs, out);
}

void PairEventEngine::CheckRendezvous(const PairObservation& obs,
                                      std::vector<DetectedEvent>* out) {
  const Timestamp t = obs.point.t;
  // "Slow" needs an actual speed — a vessel hiding its SOG must not be
  // mistaken for a drifting one.
  const bool eligible = obs.point.HasSpeed() &&
                        obs.point.sog_mps <= options_.rendezvous_max_speed_mps &&
                        !obs.in_port_area;
  if (!eligible) return;
  live_.QueryRadiusInto(obs.point.position, options_.rendezvous_distance_m,
                        &radius_scratch_);
  for (const auto& [other_id, dist] : radius_scratch_) {
    const Mmsi other = static_cast<Mmsi>(other_id);
    if (other == obs.mmsi) continue;
    const VesselState* partner = vessels_.Find(other);
    if (partner == nullptr || !partner->has_last) continue;
    if (!partner->last.HasSpeed() ||
        partner->last.sog_mps > options_.rendezvous_max_speed_mps) {
      continue;
    }
    if (partner->in_port_area) continue;
    // Partner must be current (not a stale last-position).
    if (t - partner->last.t > 5 * kMillisPerMinute) continue;

    PairState& pair = rendezvous_pairs_[PackPair(obs.mmsi, other)];
    if (pair.since == 0 || t - pair.last_seen > 5 * kMillisPerMinute) {
      pair.since = t;
      pair.reported = false;
    }
    pair.last_seen = t;
    pair.where = obs.point.position;
    if (!pair.reported && t - pair.since >= options_.rendezvous_min_duration) {
      // The `reported` latch flips in every replica that tracks this pair;
      // only the owner replica (emit filter) appends the event.
      pair.reported = true;
      if (MayEmit(obs.mmsi, other)) {
        DetectedEvent ev;
        ev.type = EventType::kRendezvous;
        ev.start = pair.since;
        ev.end = t;
        ev.vessel_a = std::min(obs.mmsi, other);
        ev.vessel_b = std::max(obs.mmsi, other);
        ev.where = pair.where;
        ev.severity = 0.8;
        ev.detected_at = t;
        out->push_back(ev);
        ++stats_.events_out;
      }
    }
  }
}

void PairEventEngine::CheckCollision(const PairObservation& obs,
                                     std::vector<DetectedEvent>* out) {
  // CPA needs a full motion state. The old `sog < min` gate silently
  // INVERTED for sentinel speeds: NaN compares false, fell through, and
  // poisoned the CPA solution.
  if (!obs.point.HasSpeed() || !obs.point.HasCourse() ||
      obs.point.sog_mps < options_.collision_min_speed_mps) {
    return;
  }
  const Timestamp t = obs.point.t;
  MotionState self;
  self.position = obs.point.position;
  self.speed_mps = obs.point.sog_mps;
  self.course_deg = obs.point.cog_deg;

  live_.QueryRadiusInto(obs.point.position, options_.collision_scan_radius_m,
                        &radius_scratch_);
  for (const auto& [other_id, dist] : radius_scratch_) {
    const Mmsi other = static_cast<Mmsi>(other_id);
    if (other == obs.mmsi) continue;
    const VesselState* partner = vessels_.Find(other);
    if (partner == nullptr || !partner->has_last) continue;
    if (t - partner->last.t > 3 * kMillisPerMinute) continue;
    if (!partner->last.HasSpeed() || !partner->last.HasCourse() ||
        partner->last.sog_mps < options_.collision_min_speed_mps) {
      continue;
    }

    const uint64_t key = PackPair(obs.mmsi, other);
    const Timestamp* last_alert = collision_alerts_.Find(key);
    if (last_alert != nullptr &&
        t - *last_alert < options_.collision_realert_ms) {
      continue;
    }

    MotionState target;
    target.position = partner->last.position;
    target.speed_mps = partner->last.sog_mps;
    target.course_deg = partner->last.cog_deg;
    const CpaResult cpa = ComputeCpa(self, target);
    if (cpa.converging && cpa.distance_m < options_.cpa_threshold_m &&
        cpa.tcpa_s < options_.tcpa_horizon_s) {
      // The re-alert clock advances in every replica; only the owner emits.
      collision_alerts_[key] = t;
      if (MayEmit(obs.mmsi, other)) {
        DetectedEvent ev;
        ev.type = EventType::kCollisionRisk;
        ev.start = ev.detected_at = t;
        ev.end = t + static_cast<DurationMs>(cpa.tcpa_s * kMillisPerSecond);
        ev.vessel_a = std::min(obs.mmsi, other);
        ev.vessel_b = std::max(obs.mmsi, other);
        ev.where = obs.point.position;
        ev.severity = 0.9;
        out->push_back(ev);
        ++stats_.events_out;
      }
    }
  }
}

void PairEventEngine::CloseWindow(std::vector<PairObservation>* pairs,
                                  bool flush,
                                  std::vector<DetectedEvent>* events) {
  std::sort(pairs->begin(), pairs->end(), ObservationLess);
  const Timestamp window_max_t =
      pairs->empty() ? kInvalidTimestamp : pairs->back().point.t;
  for (const PairObservation& obs : *pairs) Ingest(obs, events);
  pairs->clear();
  if (flush) Flush(events);
  ResequenceEvents(events);
  PruneAfterWindow(window_max_t);
}

void PairEventEngine::Flush(std::vector<DetectedEvent>* out) {
  // Close rendezvous pairs that accumulated enough dwell but never crossed
  // the reporting threshold before the stream ended — in ascending (a, b)
  // order, the explicit deterministic walk over the flat table.
  key_scratch_.clear();
  rendezvous_pairs_.ForEach(
      [this](uint64_t key, const PairState&) { key_scratch_.push_back(key); });
  std::sort(key_scratch_.begin(), key_scratch_.end());
  for (uint64_t key : key_scratch_) {
    PairState& pair = *rendezvous_pairs_.Find(key);
    if (!pair.reported &&
        pair.last_seen - pair.since >= options_.rendezvous_min_duration) {
      pair.reported = true;
      if (!MayEmit(PairLo(key), PairHi(key))) continue;
      DetectedEvent ev;
      ev.type = EventType::kRendezvous;
      ev.start = pair.since;
      ev.end = pair.last_seen;
      ev.vessel_a = PairLo(key);
      ev.vessel_b = PairHi(key);
      ev.where = pair.where;
      ev.severity = 0.8;
      ev.detected_at = pair.last_seen;
      out->push_back(ev);
      ++stats_.events_out;
    }
  }
}

void PairEventEngine::Clear() {
  vessels_.Clear();
  rendezvous_pairs_.Clear();
  collision_alerts_.Clear();
  live_.Clear();
  stats_ = Stats{};
  emit_filter_ = nullptr;
  prune_watermark_ = kInvalidTimestamp;
}

size_t PairEventEngine::PruneAfterWindow(Timestamp window_max_t) {
  const DurationMs age = options_.pair_state_prune_age_ms;
  if (age <= 0 || window_max_t == kInvalidTimestamp) return 0;
  if (prune_watermark_ == kInvalidTimestamp ||
      window_max_t > prune_watermark_) {
    prune_watermark_ = window_max_t;
  }
  const Timestamp now = prune_watermark_;
  size_t pruned = 0;

  // Rendezvous dwell states: prunable once stale, unless an unreported
  // above-threshold dwell is still waiting for its Flush emission.
  key_scratch_.clear();
  rendezvous_pairs_.ForEach([this, now, age](uint64_t key,
                                             const PairState& pair) {
    if (now - pair.last_seen > age &&
        (pair.reported ||
         pair.last_seen - pair.since < options_.rendezvous_min_duration)) {
      key_scratch_.push_back(key);
    }
  });
  for (uint64_t key : key_scratch_) pruned += rendezvous_pairs_.Erase(key);

  // Collision re-alert clocks: inert once both the re-alert window and the
  // prune horizon have passed.
  key_scratch_.clear();
  collision_alerts_.ForEach([this, now, age](uint64_t key,
                                             const Timestamp& last_alert) {
    if (now - last_alert > age &&
        now - last_alert > options_.collision_realert_ms) {
      key_scratch_.push_back(key);
    }
  });
  for (uint64_t key : key_scratch_) pruned += collision_alerts_.Erase(key);

  // Vessels past every partner-freshness horizon: the pair rules already
  // ignore them (stale-partner checks), and a returning vessel's state is
  // fully rewritten by its first observation.
  key_scratch_.clear();
  vessels_.ForEach([this, now, age](Mmsi mmsi, const VesselState& vessel) {
    if (now - vessel.last.t > age) key_scratch_.push_back(mmsi);
  });
  for (uint64_t key : key_scratch_) {
    const Mmsi mmsi = static_cast<Mmsi>(key);
    pruned += vessels_.Erase(mmsi);
    live_.Remove(mmsi);
  }
  return pruned;
}

// --- Grid-parallel state transplant ----------------------------------------

void PairEventEngine::ExportVessels(std::vector<VesselSnapshot>* out) {
  key_scratch_.clear();
  vessels_.ForEach(
      [this](Mmsi mmsi, const VesselState&) { key_scratch_.push_back(mmsi); });
  std::sort(key_scratch_.begin(), key_scratch_.end());
  out->reserve(out->size() + key_scratch_.size());
  for (uint64_t key : key_scratch_) {
    const Mmsi mmsi = static_cast<Mmsi>(key);
    const VesselState& state = *vessels_.Find(mmsi);
    // Entries are only ever created by Ingest, which sets `last`
    // immediately, so every exported snapshot carries a real position.
    out->push_back(VesselSnapshot{mmsi, state.last, state.in_port_area});
  }
}

bool PairEventEngine::GetVessel(Mmsi mmsi, VesselSnapshot* out) const {
  const VesselState* state = vessels_.Find(mmsi);
  if (state == nullptr || !state->has_last) return false;
  *out = VesselSnapshot{mmsi, state->last, state->in_port_area};
  return true;
}

void PairEventEngine::ExportRendezvous(
    std::vector<RendezvousSnapshot>* out) {
  key_scratch_.clear();
  rendezvous_pairs_.ForEach(
      [this](uint64_t key, const PairState&) { key_scratch_.push_back(key); });
  std::sort(key_scratch_.begin(), key_scratch_.end());
  out->reserve(out->size() + key_scratch_.size());
  for (uint64_t key : key_scratch_) {
    const PairState& pair = *rendezvous_pairs_.Find(key);
    out->push_back(RendezvousSnapshot{PairLo(key), PairHi(key), pair.since,
                                      pair.last_seen, pair.where,
                                      pair.reported});
  }
}

void PairEventEngine::ExportCollisions(
    std::vector<CollisionSnapshot>* out) {
  key_scratch_.clear();
  collision_alerts_.ForEach(
      [this](uint64_t key, const Timestamp&) { key_scratch_.push_back(key); });
  std::sort(key_scratch_.begin(), key_scratch_.end());
  out->reserve(out->size() + key_scratch_.size());
  for (uint64_t key : key_scratch_) {
    out->push_back(CollisionSnapshot{PairLo(key), PairHi(key),
                                     *collision_alerts_.Find(key)});
  }
}

void PairEventEngine::RestoreVessel(const VesselSnapshot& snapshot) {
  VesselState& state = vessels_[snapshot.mmsi];
  state.last = snapshot.last;
  state.has_last = true;
  state.in_port_area = snapshot.in_port_area;
  live_.Upsert(snapshot.mmsi, snapshot.last.position);
}

void PairEventEngine::RestoreRendezvous(const RendezvousSnapshot& snapshot) {
  PairState& pair = rendezvous_pairs_[PackPair(snapshot.a, snapshot.b)];
  pair.since = snapshot.since;
  pair.last_seen = snapshot.last_seen;
  pair.where = snapshot.where;
  pair.reported = snapshot.reported;
}

void PairEventEngine::RestoreCollision(const CollisionSnapshot& snapshot) {
  collision_alerts_[PackPair(snapshot.a, snapshot.b)] = snapshot.last_alert;
}

}  // namespace marlin
