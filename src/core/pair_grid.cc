#include "core/pair_grid.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <latch>

#include "common/fault.h"
#include "common/flat_hash.h"
#include "common/units.h"

namespace marlin {

namespace {

/// Degrees → metres scale of the live picture's grid math (GridIndex).
double MetresPerDegree() { return DegToRad(1.0) * kEarthRadiusMetres; }

}  // namespace

/// All shared, read-only context of one window's grid execution: the
/// vessel → cell assignment, the materialized-cell set, and the halo
/// geometry. Built by the coordinator, read concurrently by cell tasks.
/// One instance lives in the partitioner and is `Clear()`ed per window —
/// its flat tables keep their capacity, so steady windows plan without
/// allocating.
struct GridPairPartitioner::WindowPlan {
  double pitch_deg = 0.1;
  int rings_row = 1;
  int rings_col = 1;
  FlatHashMap<Mmsi, int64_t> vessel_cell;
  FlatHashSet<int64_t> materialized;  ///< cells with ≥ 1 owned obs

  void Clear() {
    vessel_cell.Clear();
    materialized.Clear();
    rings_row = rings_col = 1;
  }

  /// The live picture's own cell scheme (GridIndex::KeyOnPitch) — in
  /// particular no antimeridian wrap, matching its scan behaviour exactly.
  int64_t CellFor(const GeoPoint& p) const {
    return GridIndex::KeyOnPitch(p, pitch_deg);
  }

  bool WithinHalo(int64_t cell, int64_t other) const {
    return std::abs(GridIndex::CellRow(cell) - GridIndex::CellRow(other)) <=
               rings_row &&
           std::abs(GridIndex::CellCol(cell) - GridIndex::CellCol(other)) <=
               rings_col;
  }

  /// The deterministic min-cell ownership rule: of the two vessels' cells,
  /// the smallest key that is materialized owns the pair — exactly one cell
  /// emits a cross-boundary pair's events and writes its state back. Pairs
  /// with no materialized cell had no observation from either vessel this
  /// window and therefore no owner (nothing to emit or write); the same
  /// holds for a pair whose vessel was pruned from the authoritative state
  /// (it has no cell at all).
  int64_t OwnerCell(Mmsi a, Mmsi b) const {
    const int64_t* ca = vessel_cell.Find(a);
    const int64_t* cb = vessel_cell.Find(b);
    if (ca == nullptr || cb == nullptr) return INT64_MIN;
    const bool ma = materialized.Contains(*ca);
    const bool mb = materialized.Contains(*cb);
    if (ma && mb) return std::min(*ca, *cb);
    if (ma) return *ca;
    if (mb) return *cb;
    return INT64_MIN;
  }
};

/// One cell's unit of work: inputs are fully written by the coordinator
/// before the task is queued; outputs are fully written by the runner
/// before `done` counts down (the latch orders both handoffs). Tasks are
/// pooled by the coordinator; `Reset()` keeps every vector's capacity.
struct GridPairPartitioner::CellTask {
  int64_t cell = 0;
  const WindowPlan* plan = nullptr;
  std::vector<const PairObservation*> observations;  ///< canonical order
  std::vector<PairEventEngine::VesselSnapshot> vessels;
  std::vector<PairEventEngine::RendezvousSnapshot> rendezvous;
  std::vector<PairEventEngine::CollisionSnapshot> collisions;
  std::vector<Mmsi> owned_observed;  ///< deduped, first-observation order
  size_t owned_count = 0;            ///< owned observations (skew metric)

  std::vector<DetectedEvent> events;
  std::vector<PairEventEngine::VesselSnapshot> vessels_out;
  std::vector<PairEventEngine::RendezvousSnapshot> rendezvous_out;
  std::vector<PairEventEngine::CollisionSnapshot> collisions_out;
  // Runner-side export scratch, reused across windows like the rest.
  std::vector<PairEventEngine::RendezvousSnapshot> rendezvous_scratch;
  std::vector<PairEventEngine::CollisionSnapshot> collisions_scratch;
  std::latch* done = nullptr;
  /// Set by the runner when the task threw; the coordinator then discards
  /// the whole window's replica output (the authoritative engine is still
  /// untouched pre-merge) and re-closes it sequentially.
  bool failed = false;

  void Reset() {
    cell = 0;
    plan = nullptr;
    observations.clear();
    vessels.clear();
    rendezvous.clear();
    collisions.clear();
    owned_observed.clear();
    owned_count = 0;
    events.clear();
    vessels_out.clear();
    rendezvous_out.clear();
    collisions_out.clear();
    rendezvous_scratch.clear();
    collisions_scratch.clear();
    done = nullptr;
    failed = false;
  }
};

/// Coordinator-side per-window scratch, reused across windows.
struct GridPairPartitioner::Scratch {
  std::vector<PairEventEngine::VesselSnapshot> known;
  std::vector<PairEventEngine::RendezvousSnapshot> rendezvous;
  std::vector<PairEventEngine::CollisionSnapshot> collisions;
  FlatHashMap<Mmsi, GeoPoint> anchor;
  FlatHashSet<Mmsi> seen_observed;
  FlatHashMap<int64_t, CellTask*> task_index;
  std::vector<int64_t> cells;      ///< materialized cells, ascending
  std::vector<CellTask*> tasks;    ///< active tasks, ascending cell order
};

GridPairPartitioner::GridPairPartitioner(const EventRuleOptions& rules,
                                         const Options& options)
    : rules_(rules),
      options_(options),
      interaction_radius_m_(std::max(rules.rendezvous_distance_m,
                                     rules.collision_scan_radius_m)),
      cell_size_m_(options.cell_size_m > 0.0 ? options.cell_size_m
                                             : interaction_radius_m_),
      plan_(std::make_unique<WindowPlan>()),
      scratch_(std::make_unique<Scratch>()) {
  if (options_.pair_threads > 1) {
    channels_.reserve(options_.pair_threads);
    workers_.reserve(options_.pair_threads);
    for (size_t i = 0; i < options_.pair_threads; ++i) {
      channels_.push_back(std::make_unique<StageChannel<CellTask*>>(
          options_.fabric, /*capacity=*/64));
    }
    for (size_t i = 0; i < options_.pair_threads; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

GridPairPartitioner::~GridPairPartitioner() {
  for (auto& channel : channels_) channel->Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void GridPairPartitioner::WorkerLoop(size_t worker) {
  StageChannel<CellTask*>& channel = *channels_[worker];
  while (auto task = channel.Pop()) RunTask(*task);
}

std::unique_ptr<PairEventEngine> GridPairPartitioner::AcquireReplica() {
  {
    std::lock_guard<std::mutex> lock(replica_mutex_);
    if (!replica_pool_.empty()) {
      std::unique_ptr<PairEventEngine> replica =
          std::move(replica_pool_.back());
      replica_pool_.pop_back();
      return replica;
    }
  }
  return std::make_unique<PairEventEngine>(rules_);
}

void GridPairPartitioner::ReleaseReplica(
    std::unique_ptr<PairEventEngine> replica) {
  replica->Clear();  // capacity retained — the point of the pool
  std::lock_guard<std::mutex> lock(replica_mutex_);
  replica_pool_.push_back(std::move(replica));
}

void GridPairPartitioner::RunTask(CellTask* task) {
  try {
    MARLIN_FAULT_POINT("pair.cell_task");
    std::unique_ptr<PairEventEngine> replica = AcquireReplica();
    for (const auto& snapshot : task->vessels) {
      replica->RestoreVessel(snapshot);
    }
    for (const auto& snapshot : task->rendezvous) {
      replica->RestoreRendezvous(snapshot);
    }
    for (const auto& snapshot : task->collisions) {
      replica->RestoreCollision(snapshot);
    }
    const WindowPlan* plan = task->plan;
    const int64_t cell = task->cell;
    replica->SetEmitFilter([plan, cell](Mmsi a, Mmsi b) {
      return plan->OwnerCell(a, b) == cell;
    });
    for (const PairObservation* obs : task->observations) {
      replica->Ingest(*obs, &task->events);
    }
    // Write-back: the final state of this cell's observed vessels and of
    // the pairs it owns. Non-owner replicas computed identical state for
    // shared pairs (they replayed the same observation subsequence); one
    // writer is enough, and pairs touched only between halo vessels are
    // discarded.
    task->vessels_out.reserve(task->owned_observed.size());
    for (Mmsi mmsi : task->owned_observed) {
      PairEventEngine::VesselSnapshot snapshot;
      if (replica->GetVessel(mmsi, &snapshot)) {
        task->vessels_out.push_back(snapshot);
      }
    }
    task->rendezvous_scratch.clear();
    replica->ExportRendezvous(&task->rendezvous_scratch);
    for (const auto& snapshot : task->rendezvous_scratch) {
      if (plan->OwnerCell(snapshot.a, snapshot.b) == cell) {
        task->rendezvous_out.push_back(snapshot);
      }
    }
    task->collisions_scratch.clear();
    replica->ExportCollisions(&task->collisions_scratch);
    for (const auto& snapshot : task->collisions_scratch) {
      if (plan->OwnerCell(snapshot.a, snapshot.b) == cell) {
        task->collisions_out.push_back(snapshot);
      }
    }
    ReleaseReplica(std::move(replica));
  } catch (...) {
    // A dirty replica dies with the exception rather than re-entering the
    // pool; the count-down below still runs so the coordinator never hangs.
    task->failed = true;
  }
  task->done->count_down();
}

bool GridPairPartitioner::TryParallelWindow(
    PairEventEngine* engine, const std::vector<PairObservation>& observations,
    std::vector<DetectedEvent>* events) {
  WindowPlan& plan = *plan_;
  Scratch& scratch = *scratch_;
  plan.Clear();
  plan.pitch_deg = cell_size_m_ / MetresPerDegree();

  // --- Assignment: every vessel the engine knows anchors at its position
  // entering the window; vessels first seen this window anchor at their
  // first observation. All of a vessel's observations route to its one
  // anchor cell, keeping its stream whole.
  scratch.known.clear();
  engine->ExportVessels(&scratch.known);
  plan.vessel_cell.Reserve(scratch.known.size() + 16);
  scratch.anchor.Clear();
  scratch.anchor.Reserve(scratch.known.size() + 16);
  for (const auto& snapshot : scratch.known) {
    if (!snapshot.last.position.IsValid()) return false;
    scratch.anchor[snapshot.mmsi] = snapshot.last.position;
    plan.vessel_cell[snapshot.mmsi] = plan.CellFor(snapshot.last.position);
  }

  // Drift: how far any vessel's in-window observations stray from its
  // anchor, per axis. The halo widens by twice the worst drift so a scan
  // from a drifted vessel can still reach a drifted partner.
  double drift_lat_deg = 0.0;
  double drift_lon_deg = 0.0;
  double max_abs_lat = 0.0;
  for (const PairObservation& obs : observations) {
    const GeoPoint& p = obs.point.position;
    if (!p.IsValid()) return false;
    auto [anchor_p, inserted] = scratch.anchor.TryEmplace(obs.mmsi);
    if (inserted) {
      *anchor_p = p;
      plan.vessel_cell[obs.mmsi] = plan.CellFor(p);
    } else {
      drift_lat_deg =
          std::max(drift_lat_deg, std::abs(p.lat - anchor_p->lat));
      drift_lon_deg =
          std::max(drift_lon_deg, std::abs(p.lon - anchor_p->lon));
    }
    max_abs_lat = std::max(max_abs_lat, std::abs(p.lat));
  }

  // --- Halo width. The margins are GridIndex::QueryRadius's own bounding
  // box (shared helper — the two can never diverge), taken at the window's
  // worst-case scan latitude: a partner the global engine's scan could
  // return is within `lat_margin` / `lon_margin` degrees of the scanning
  // observation, whose own anchor is at most one drift away — so anchors
  // of interacting vessels differ by at most margin + 2·drift degrees per
  // axis, which `ceil` converts to a cell-ring bound (padded against FP
  // rounding).
  double lat_margin_deg = 0.0;
  double lon_margin_deg = 0.0;
  GridIndex::RadiusMargins(interaction_radius_m_, max_abs_lat,
                           &lat_margin_deg, &lon_margin_deg);
  constexpr double kPadDeg = 1e-6;  // ~0.1 m of slack
  plan.rings_row = static_cast<int>(std::ceil(
      (lat_margin_deg + 2.0 * drift_lat_deg + kPadDeg) / plan.pitch_deg));
  plan.rings_col = static_cast<int>(std::ceil(
      (lon_margin_deg + 2.0 * drift_lon_deg + kPadDeg) / plan.pitch_deg));
  if (plan.rings_row > options_.max_halo_rings ||
      plan.rings_col > options_.max_halo_rings) {
    // Drift defeated the grid (e.g. an antimeridian crossing, which is a
    // ~360° lon jump in this unwrapped space): close sequentially.
    return false;
  }

  for (const PairObservation& obs : observations) {
    plan.materialized.Insert(*plan.vessel_cell.Find(obs.mmsi));
  }
  if (plan.materialized.size() < 2) return false;  // nothing to spread

  // --- Bind pooled per-cell tasks, in deterministic ascending cell order.
  scratch.cells.clear();
  plan.materialized.ForEach(
      [&scratch](int64_t cell) { scratch.cells.push_back(cell); });
  std::sort(scratch.cells.begin(), scratch.cells.end());
  while (task_pool_.size() < scratch.cells.size()) {
    task_pool_.push_back(std::make_unique<CellTask>());
  }
  scratch.tasks.clear();
  scratch.task_index.Clear();
  scratch.task_index.Reserve(scratch.cells.size());
  for (size_t i = 0; i < scratch.cells.size(); ++i) {
    CellTask* task = task_pool_[i].get();
    task->Reset();
    task->cell = scratch.cells[i];
    task->plan = &plan;
    scratch.tasks.push_back(task);
    scratch.task_index[task->cell] = task;
  }

  // Applies `fn` to every materialized task whose cell lies in the given
  // row/col box: enumerate the box when it is smaller than the task set
  // (the common case — the box is the halo neighbourhood, a few cells),
  // scan the tasks otherwise. Both strategies visit the identical set, so
  // routing cost is O(items × min(box, cells)) instead of O(items × cells).
  const auto for_each_task_in_box = [&scratch](int32_t row_lo, int32_t row_hi,
                                               int32_t col_lo, int32_t col_hi,
                                               auto&& fn) {
    if (row_lo > row_hi || col_lo > col_hi) return;
    const int64_t box = (static_cast<int64_t>(row_hi) - row_lo + 1) *
                        (static_cast<int64_t>(col_hi) - col_lo + 1);
    if (box <= static_cast<int64_t>(scratch.tasks.size())) {
      for (int32_t row = row_lo; row <= row_hi; ++row) {
        for (int32_t col = col_lo; col <= col_hi; ++col) {
          CellTask* const* task =
              scratch.task_index.Find(GridIndex::PackCell(row, col));
          if (task != nullptr) fn(**task);
        }
      }
    } else {
      for (CellTask* task : scratch.tasks) {
        const int32_t row = GridIndex::CellRow(task->cell);
        const int32_t col = GridIndex::CellCol(task->cell);
        if (row >= row_lo && row <= row_hi && col >= col_lo &&
            col <= col_hi) {
          fn(*task);
        }
      }
    }
  };
  // The tasks within the halo of one home cell.
  const auto for_each_halo_task = [&](int64_t home, auto&& fn) {
    for_each_task_in_box(GridIndex::CellRow(home) - plan.rings_row,
                         GridIndex::CellRow(home) + plan.rings_row,
                         GridIndex::CellCol(home) - plan.rings_col,
                         GridIndex::CellCol(home) + plan.rings_col, fn);
  };
  // The tasks within the halo of *both* of a pair's cells (box
  // intersection — empty when the cells are too far apart to interact).
  const auto for_each_pair_task = [&](int64_t ca, int64_t cb, auto&& fn) {
    for_each_task_in_box(
        std::max(GridIndex::CellRow(ca), GridIndex::CellRow(cb)) -
            plan.rings_row,
        std::min(GridIndex::CellRow(ca), GridIndex::CellRow(cb)) +
            plan.rings_row,
        std::max(GridIndex::CellCol(ca), GridIndex::CellCol(cb)) -
            plan.rings_col,
        std::min(GridIndex::CellCol(ca), GridIndex::CellCol(cb)) +
            plan.rings_col,
        fn);
  };

  uint64_t halo_count = 0;
  scratch.seen_observed.Clear();
  for (const PairObservation& obs : observations) {
    const int64_t home = *plan.vessel_cell.Find(obs.mmsi);
    for_each_halo_task(home, [&](CellTask& task) {
      task.observations.push_back(&obs);
      if (task.cell == home) {
        ++task.owned_count;
      } else {
        ++halo_count;
      }
    });
    if (scratch.seen_observed.Insert(obs.mmsi)) {
      (*scratch.task_index.Find(home))->owned_observed.push_back(obs.mmsi);
    }
  }
  for (const auto& snapshot : scratch.known) {
    for_each_halo_task(
        *plan.vessel_cell.Find(snapshot.mmsi),
        [&](CellTask& task) { task.vessels.push_back(snapshot); });
  }
  scratch.rendezvous.clear();
  engine->ExportRendezvous(&scratch.rendezvous);
  for (const auto& snapshot : scratch.rendezvous) {
    const int64_t* ca = plan.vessel_cell.Find(snapshot.a);
    const int64_t* cb = plan.vessel_cell.Find(snapshot.b);
    // A pair one of whose vessels was pruned has no cell: no replica can
    // touch it this window (the vessel is absent from every live picture),
    // so it stays, untouched, in the authoritative engine.
    if (ca == nullptr || cb == nullptr) continue;
    for_each_pair_task(*ca, *cb, [&](CellTask& task) {
      task.rendezvous.push_back(snapshot);
    });
  }
  scratch.collisions.clear();
  engine->ExportCollisions(&scratch.collisions);
  for (const auto& snapshot : scratch.collisions) {
    const int64_t* ca = plan.vessel_cell.Find(snapshot.a);
    const int64_t* cb = plan.vessel_cell.Find(snapshot.b);
    if (ca == nullptr || cb == nullptr) continue;
    for_each_pair_task(*ca, *cb, [&](CellTask& task) {
      task.collisions.push_back(snapshot);
    });
  }

  // --- Dispatch: deal the cell tasks round-robin over W workers plus a
  // coordinator-inline slice (runner W). Worker tasks are pushed first so
  // the pool is busy while the coordinator works its own share; a full
  // channel blocks the push, which is safe — workers always drain. ---
  std::latch done(static_cast<ptrdiff_t>(scratch.tasks.size()));
  const size_t runners = channels_.size() + 1;
  for (size_t i = 0; i < scratch.tasks.size(); ++i) {
    scratch.tasks[i]->done = &done;
    const size_t runner = i % runners;
    if (runner < channels_.size()) channels_[runner]->Push(scratch.tasks[i]);
  }
  for (size_t i = channels_.size(); i < scratch.tasks.size(); i += runners) {
    RunTask(scratch.tasks[i]);
  }
  done.wait();

  // Supervision: any failed cell aborts the whole parallel close *before*
  // the merge touches the authoritative engine. The engine is thus exactly
  // as it was at window start, and the sequential fallback in CloseWindow
  // (equivalence-proven against this path) reproduces the fault-free
  // output byte-for-byte.
  for (const CellTask* task : scratch.tasks) {
    if (task->failed) {
      ++stats_.recovered_windows;
      return false;
    }
  }

  // --- Merge: transplant owned state back, concatenate events in cell
  // order (the canonical re-sequence follows in CloseWindow). ---
  uint64_t emitted = 0;
  size_t heaviest = 0;
  size_t heaviest_total = 0;
  for (CellTask* task : scratch.tasks) {
    for (const auto& snapshot : task->vessels_out) {
      engine->RestoreVessel(snapshot);
    }
    for (const auto& snapshot : task->rendezvous_out) {
      engine->RestoreRendezvous(snapshot);
    }
    for (const auto& snapshot : task->collisions_out) {
      engine->RestoreCollision(snapshot);
    }
    emitted += task->events.size();
    events->insert(events->end(),
                   std::make_move_iterator(task->events.begin()),
                   std::make_move_iterator(task->events.end()));
    heaviest = std::max(heaviest, task->owned_count);
    heaviest_total = std::max(heaviest_total, task->observations.size());
  }
  engine->AccumulateStats(observations.size(), emitted);

  stats_.halo_observations += halo_count;
  stats_.cells += scratch.tasks.size();
  stats_.max_cells_per_window =
      std::max(stats_.max_cells_per_window, scratch.tasks.size());
  stats_.max_cell_observations =
      std::max(stats_.max_cell_observations, heaviest_total);
  stats_.max_halo_rings = std::max(
      stats_.max_halo_rings, std::max(plan.rings_row, plan.rings_col));
  stats_.max_cell_share =
      std::max(stats_.max_cell_share,
               static_cast<double>(heaviest) /
                   static_cast<double>(observations.size()));
  return true;
}

void GridPairPartitioner::CloseWindow(PairEventEngine* engine,
                                      std::vector<PairObservation>* pairs,
                                      bool flush,
                                      std::vector<DetectedEvent>* events) {
  std::sort(pairs->begin(), pairs->end(), PairEventEngine::ObservationLess);
  const Timestamp window_max_t =
      pairs->empty() ? kInvalidTimestamp : pairs->back().point.t;
  ++stats_.windows;
  stats_.observations += pairs->size();
  bool parallel_done = false;
  if (!workers_.empty() && !pairs->empty()) {
    parallel_done = TryParallelWindow(engine, *pairs, events);
  }
  if (parallel_done) {
    ++stats_.parallel_windows;
  } else {
    ++stats_.sequential_windows;
    for (const PairObservation& obs : *pairs) engine->Ingest(obs, events);
  }
  pairs->clear();
  if (flush) engine->Flush(events);
  ResequenceEvents(events);
  // The same windowed prune the sequential close performs — identical
  // watermark, identical state either way (core/events.h).
  engine->PruneAfterWindow(window_max_t);
}

}  // namespace marlin
