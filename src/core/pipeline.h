#ifndef MARLIN_CORE_PIPELINE_H_
#define MARLIN_CORE_PIPELINE_H_

/// \file pipeline.h
/// \brief The integrated maritime information infrastructure of Figure 2:
/// NMEA streams → decoding → trajectory reconstruction → synopses →
/// enrichment → event recognition → live picture & alerts, with per-stage
/// metrics.
///
/// One `MaritimePipeline` instance is the single-threaded reference
/// implementation — the system under test in the end-to-end experiments
/// (E1, E5, F2) and the object the examples drive. Its sharded counterpart
/// (`ShardedPipeline`, core/sharded_pipeline.h) runs the same stages across
/// N worker threads and reproduces this pipeline's event stream exactly.
///
/// Processing is *windowed*: single-vessel stages run per input line, while
/// the vessel-pair rules (rendezvous, collision risk) and event
/// re-sequencing run once per window over the canonically
/// (event-time, MMSI)-ordered point stream. A window closes after
/// `PipelineConfig::window_lines` input lines or `window_time_ms` of ingest
/// time, whichever comes first. Windowing is what makes the event stream
/// independent of how the work is partitioned — the sharded pipeline uses
/// the same boundaries.

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "ais/codec.h"
#include "ais/validation.h"
#include "core/anomaly.h"
#include "core/integrity.h"
#include "context/registry.h"
#include "context/weather.h"
#include "context/zones.h"
#include "core/enrichment.h"
#include "core/events.h"
#include "core/pair_grid.h"
#include "core/reconstruction.h"
#include "core/shard.h"
#include "core/supervisor.h"
#include "core/synopses.h"
#include "storage/trajectory_store.h"
#include "stream/dead_letter.h"
#include "stream/event.h"
#include "stream/frame.h"
#include "stream/net_stats.h"
#include "stream/rate.h"
#include "stream/spsc_ring.h"
#include "uncertainty/openworld.h"

namespace marlin {

/// \brief Pipeline configuration: which context sources to join and the
/// per-stage options.
struct PipelineConfig {
  TrajectoryReconstructor::Options reconstruction;
  SynopsisEngine::Options synopses;
  EventEngine::Options events;
  TrajectoryStore::Options store;
  CoverageModel::Options coverage;
  /// Historical serving tier (storage/archive.h): per-shard queryable
  /// archives cut at window boundaries, served to `QueryEngine` readers via
  /// epoch snapshots. Disabled by default — enabling it adds one staging
  /// copy per clean point to the ingest path and an epoch close per window.
  ArchiveOptions archive;
  /// Online anomaly & integrity stage (core/integrity.h, core/anomaly.h):
  /// raw reports are integrity-scored before reconstruction and the clean
  /// point stream feeds a per-vessel behaviour-change detector. Off by
  /// default: enabling it adds events (kKinematicIntegrity, kMmsiConflict,
  /// kBehaviorChange) to the stream, so pre-stage baselines stay
  /// byte-identical unless opted in.
  bool enable_anomaly = false;
  IntegrityScorer::Options integrity;
  BehaviorChangeDetector::Options anomaly;
  /// Store full-rate trajectories (true) or synopses only (false) — the
  /// in-situ trade-off of E12.
  bool store_full_rate = true;
  bool enable_quality_assessment = true;
  /// Run the contextual-join side-stage at all. Off skips the stage
  /// entirely (the bench baseline for the enrichment-on/off axis).
  bool enable_enrichment = true;
  /// Enrichment side-stage input queue depth, per shard. The stage never
  /// blocks ingest: overflow evicts the oldest queued point and counts it
  /// in `PipelineMetrics::enrichment_stage.queue_dropped`.
  size_t enrichment_queue_depth = 1024;
  /// Capacity of the per-shard enriched drain buffer used when no sink is
  /// registered; overflow evicts the oldest buffered point (counted).
  size_t enriched_output_capacity = 8192;
  /// Pair-rule / re-sequencing window, in input lines. Smaller windows
  /// lower pair-event latency; larger windows amortise the merge. Must be
  /// identical between a sequential pipeline and a sharded pipeline whose
  /// outputs are being compared (as must `window_time_ms`).
  size_t window_lines = 4096;
  /// Ingest-time cap on a window: the window also closes once the newest
  /// line arrived this long after the window's first line. Keeps alert
  /// latency bounded on low-rate feeds, where filling `window_lines` could
  /// take arbitrarily long. 0 disables the time trigger.
  DurationMs window_time_ms = kMillisPerMinute;
  /// Grid-cell worker count for the vessel-pair stage (rendezvous /
  /// collision) in `ShardedPipeline`. 0 sizes the pool to the host
  /// topology (`std::thread::hardware_concurrency`); 1 keeps the pair
  /// stage sequential on the coordinator. The emitted event stream is
  /// byte-identical either way (see core/pair_grid.h). `MaritimePipeline`
  /// is the single-threaded reference and ignores this.
  size_t pair_threads = 1;
  /// Grid pitch in metres for the parallel pair stage; 0 sizes cells to the
  /// max pair-interaction radius (`events.collision_scan_radius_m`).
  double pair_cell_size_m = 0.0;
  /// Inter-stage hand-off fabric for `ShardedPipeline`: true runs every
  /// single-producer hop (coordinator → shard, shard → enrichment
  /// side-stage, pair coordinator → cell worker) on the lock-free
  /// `SpscRing`; false swaps all of them back to the mutex+condvar
  /// `BoundedQueue` reference arm (stream/channel.h). Output is identical
  /// either way — the fabric only changes hand-off cost.
  bool lock_free_fabric = true;
  /// Fault tolerance for `ShardedPipeline` workers (core/supervisor.h):
  /// crash containment, replay-based restart, restart budget, degraded
  /// counted-drop mode. `MaritimePipeline` is single-threaded and has no
  /// workers to supervise; it still surfaces the dead-letter and
  /// data-at-risk half of `PipelineMetrics::health`.
  SupervisionOptions supervision;
  /// Retained-payload capacity of the dead-letter quarantine queue.
  size_t dead_letter_capacity = 1024;
  /// Key multi-fragment reassembly per source/connection id (the
  /// `Event::source_id` of each line becomes an `AivdmAssembler` group
  /// salt). Off by default: a single merged feed — including the scenario
  /// generator, which delivers the *same* transmission through several
  /// receivers — must keep one reassembly namespace. The network front
  /// door turns it on so two TCP connections interleaving fragments with
  /// colliding (sequential-id, channel, count) keys cannot
  /// cross-contaminate each other's groups.
  bool fragment_group_by_source = false;
};

/// \brief Resolves a thread/shard-count knob where 0 means "size to the
/// host topology". `hardware_concurrency` may itself report 0 (unknown);
/// floor at 1 so callers always get a runnable count.
inline size_t ResolveTopologyCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// \brief Window-close predicate shared by the sequential and sharded
/// pipelines: a window holding `line_count` lines, the first of which
/// arrived at `first_ingest` and the newest at `newest_ingest`, must close
/// when either the line budget or the ingest-time budget is exhausted.
/// Depends only on the input stream, so every pipeline draws identical
/// window boundaries — a prerequisite for determinism across shard counts.
inline bool WindowMustClose(const PipelineConfig& config, size_t line_count,
                            Timestamp first_ingest, Timestamp newest_ingest) {
  if (line_count >= std::max<size_t>(1, config.window_lines)) return true;
  return config.window_time_ms > 0 &&
         newest_ingest - first_ingest >= config.window_time_ms;
}

/// \brief The position report borne by a decoded message, if any — the one
/// classification both pipelines must agree on (handles the Class B
/// extended report's embedded position). Null for non-position messages.
inline const PositionReport* PositionReportOf(const AisMessage& msg) {
  if (const auto* pr = std::get_if<PositionReport>(&msg)) return pr;
  if (const auto* eb = std::get_if<ExtendedClassBReport>(&msg)) {
    return &eb->position_report;
  }
  return nullptr;
}

/// Events at or above this severity increment the alert counter and fire
/// the pipeline's OnAlert callback.
inline constexpr double kAlertSeverityThreshold = 0.5;

/// \brief Counts and dispatches the alerts in a finalized event window —
/// the single alert path both pipelines share.
inline void FireAlerts(const std::vector<DetectedEvent>& events,
                       uint64_t* alert_count,
                       const std::function<void(const DetectedEvent&)>& cb) {
  for (const DetectedEvent& ev : events) {
    if (ev.severity >= kAlertSeverityThreshold) {
      ++*alert_count;
      if (cb) cb(ev);
    }
  }
}

/// \brief Per-stage pipeline metrics (the Figure-2 instrumentation).
struct PipelineMetrics {
  AisDecoder::Stats decoder;
  TrajectoryReconstructor::Stats reconstruction;
  SynopsisEngine::Stats synopses;
  EventEngine::Stats events;
  EnrichmentEngine::Stats enrichment;
  /// Enrichment side-stage health: queue depth high-water mark, counted
  /// drops (backpressure made visible, never a stall), submit→delivery
  /// latency, and the per-source (zones / weather / registry) share of the
  /// join work.
  SideStageStats enrichment_stage;
  /// Pair-stage grid health: parallel vs fallback windows, cell occupancy,
  /// halo traffic, skew. All zero when the pair stage runs sequentially.
  PairStageStats pair_stage;
  /// Coordinator → shard-worker hop: command-queue depth high-water,
  /// producer/consumer waits, pop batch-size histogram — merged across the
  /// per-shard channels. Zero in the single-threaded pipeline.
  QueueHopStats shard_hop;
  /// Pair coordinator → cell-worker hop, merged across the per-worker
  /// channels. Zero when the pair stage runs sequentially.
  QueueHopStats pair_hop;
  /// Anomaly & integrity stage counters (integrity scorer + behaviour-change
  /// detector), merged across shards. All zero when
  /// `PipelineConfig::enable_anomaly` is false.
  AnomalyStageStats anomaly;
  QualityAssessor::Report quality;
  /// Historical serving tier counters (blocks cut, epochs published, LSM
  /// flush/compaction activity), merged across shard archives. All zero when
  /// `PipelineConfig::archive.enabled` is false.
  ArchiveStats archive;
  uint64_t alerts = 0;
  RateMeter ingest_rate;
  LatencyReservoir end_to_end_latency;  ///< event time → processed
  /// Fault-tolerance roll-up: worker failures/restarts/degradations,
  /// dead-letter ledger, and data-at-risk counters (core/supervisor.h).
  PipelineHealth health;
  /// Network front-door roll-up (per-connection ingest counters), recorded
  /// by the driver via `RecordNetIngest`. All zero when ingest is
  /// in-process.
  NetIngestStats net_ingest;
};

/// \brief The integrated system (single-threaded reference).
class MaritimePipeline {
 public:
  /// \brief Context sources may be null; the corresponding enrichment is
  /// skipped.
  MaritimePipeline(const PipelineConfig& config, const ZoneDatabase* zones,
                   const WeatherProvider* weather,
                   const VesselRegistry* registry_a,
                   const VesselRegistry* registry_b);

  /// \brief Alert callback: invoked for events with severity ≥ 0.5.
  void OnAlert(std::function<void(const DetectedEvent&)> callback) {
    alert_callback_ = std::move(callback);
  }

  /// \brief Subscribes to the enriched output stream (§2.2's contextually
  /// rich stream). The sequential pipeline runs the stage synchronously, so
  /// the sink fires on the caller thread, in processing order. Install
  /// before the first ingest call.
  void SetEnrichedSink(EnrichedSink sink) {
    core_.SetEnrichedSink(std::move(sink));
  }

  /// \brief Batched alternative to a sink: moves the enriched points
  /// buffered since the last drain (delivery order) into `out`.
  size_t DrainEnriched(std::vector<EnrichedPoint>* out) {
    return core_.DrainEnriched(out);
  }

  /// \brief Drains the buffered enriched points in canonical
  /// (event-time, MMSI) order — the coordinator-side merged view of §2.2's
  /// contextually rich stream. Appends to `out`; returns how many. The
  /// sharded pipeline's `DrainEnrichedOrdered` produces the identical
  /// sequence for the same input, shard count notwithstanding.
  size_t DrainEnrichedOrdered(std::vector<EnrichedPoint>* out);

  /// \brief Enrichment delivery barrier. A no-op here (the stage is
  /// synchronous); `Finish` calls it so both pipelines share the contract
  /// that after Finish every clean point has been delivered or counted
  /// dropped.
  void FlushEnrichment() { core_.FlushEnrichment(); }

  /// \brief Feeds one NMEA line with its ingest timestamp. Returns the
  /// events finalized by this line — single-vessel events surface when the
  /// current window closes (every `window_lines` lines or at `Finish`),
  /// together with the window's pair events, re-sequenced canonically.
  /// `source_id` is the feed/connection id; it becomes the reassembly salt
  /// when `PipelineConfig::fragment_group_by_source` is on (otherwise it is
  /// ignored, the historical behaviour).
  std::vector<DetectedEvent> IngestNmea(const std::string& line,
                                        Timestamp ingest_time,
                                        uint64_t source_id = 0);

  /// \brief Batched ingest: feeds a span of pre-timestamped lines (arrival
  /// order) and returns all events finalized along the way. Windows carry
  /// over between calls; `Finish` closes the last partial window.
  std::vector<DetectedEvent> IngestBatch(
      std::span<const Event<std::string>> nmea);

  /// \brief Framed-transport ingest: feeds already de-armored AIS payloads
  /// (the `kPacked` wire-frame kind — assembly and six-bit unarmoring
  /// happened sender-side). One record advances the window exactly like one
  /// NMEA line; undecodable payloads are counted into the dead-letter
  /// ledger (`kBadPayload`, counted-only — the raw bytes stayed with the
  /// sender). Interleaves freely with `IngestNmea`/`IngestBatch`.
  std::vector<DetectedEvent> IngestPackedBatch(
      std::span<const Event<PackedRecord>> packed);

  /// \brief Records a network front-door stats snapshot (replacing the
  /// previous one) for surfacing through `metrics().net_ingest`.
  void RecordNetIngest(const NetIngestStats& stats) {
    metrics_.net_ingest = stats;
  }

  /// \brief Convenience: runs a whole pre-generated stream (arrival order)
  /// and finishes it.
  std::vector<DetectedEvent> Run(const std::vector<Event<std::string>>& nmea);

  /// \brief Flushes reorder buffers, closes open pattern states, and closes
  /// the current window.
  std::vector<DetectedEvent> Finish();

  /// \brief Moves the retained dead-letter records (rejected raw lines, in
  /// rejection order) into `out`; returns how many. Counters survive the
  /// drain in `metrics().health.dead_letter`.
  size_t DrainDeadLetters(std::vector<DeadLetter>* out) {
    return dead_letters_.Drain(out);
  }

  const TrajectoryStore& store() const { return core_.store(); }
  const CoverageModel& coverage() const { return core_.coverage(); }
  /// \brief The historical archive (single partition here); null when
  /// `PipelineConfig::archive` is disabled. Hand `{archive()}` to a
  /// `QueryEngine` for the sequential serving reference.
  const ShardArchive* archive() const { return core_.archive(); }
  const PipelineMetrics& metrics() const { return metrics_; }
  const std::vector<CriticalPoint>& synopsis_log() const {
    return core_.synopsis_log();
  }

 private:
  void ProcessDecoded(const AisMessage& msg, Timestamp ingest_time);
  /// Runs the pair stage over the window's observations, re-sequences the
  /// window's events, fires alerts, refreshes metric snapshots.
  std::vector<DetectedEvent> CloseWindow(bool flush_pairs);
  void RefreshMetrics();

  PipelineConfig config_;
  AisDecoder decoder_;
  QualityAssessor quality_;
  PipelineShardCore core_;
  PairEventEngine pair_events_;
  DeadLetterQueue dead_letters_;
  PipelineMetrics metrics_;
  std::vector<DetectedEvent> window_events_;
  std::vector<PairObservation> window_pairs_;
  size_t window_line_count_ = 0;
  Timestamp window_first_ingest_ = kInvalidTimestamp;
  Timestamp last_ingest_ = kInvalidTimestamp;  ///< newest line's ingest time
  std::function<void(const DetectedEvent&)> alert_callback_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_PIPELINE_H_
