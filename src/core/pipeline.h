#ifndef MARLIN_CORE_PIPELINE_H_
#define MARLIN_CORE_PIPELINE_H_

/// \file pipeline.h
/// \brief The integrated maritime information infrastructure of Figure 2:
/// NMEA streams → decoding → trajectory reconstruction → synopses →
/// enrichment → event recognition → live picture & alerts, with per-stage
/// metrics.
///
/// One `MaritimePipeline` instance is the system under test in the
/// end-to-end experiments (E1, E5, F2) and the object the examples drive.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ais/codec.h"
#include "ais/validation.h"
#include "context/registry.h"
#include "context/weather.h"
#include "context/zones.h"
#include "core/enrichment.h"
#include "core/events.h"
#include "core/reconstruction.h"
#include "core/synopses.h"
#include "storage/trajectory_store.h"
#include "stream/event.h"
#include "stream/rate.h"
#include "uncertainty/openworld.h"

namespace marlin {

/// \brief Pipeline configuration: which context sources to join and the
/// per-stage options.
struct PipelineConfig {
  TrajectoryReconstructor::Options reconstruction;
  SynopsisEngine::Options synopses;
  EventEngine::Options events;
  TrajectoryStore::Options store;
  CoverageModel::Options coverage;
  /// Store full-rate trajectories (true) or synopses only (false) — the
  /// in-situ trade-off of E12.
  bool store_full_rate = true;
  bool enable_quality_assessment = true;
};

/// \brief Per-stage pipeline metrics (the Figure-2 instrumentation).
struct PipelineMetrics {
  AisDecoder::Stats decoder;
  TrajectoryReconstructor::Stats reconstruction;
  SynopsisEngine::Stats synopses;
  EventEngine::Stats events;
  EnrichmentEngine::Stats enrichment;
  QualityAssessor::Report quality;
  uint64_t alerts = 0;
  RateMeter ingest_rate;
  LatencyReservoir end_to_end_latency;  ///< event time → processed
};

/// \brief The integrated system.
class MaritimePipeline {
 public:
  /// \brief Context sources may be null; the corresponding enrichment is
  /// skipped.
  MaritimePipeline(const PipelineConfig& config, const ZoneDatabase* zones,
                   const WeatherProvider* weather,
                   const VesselRegistry* registry_a,
                   const VesselRegistry* registry_b);

  /// \brief Alert callback: invoked for events with severity ≥ 0.5.
  void OnAlert(std::function<void(const DetectedEvent&)> callback) {
    alert_callback_ = std::move(callback);
  }

  /// \brief Feeds one NMEA line with its ingest timestamp. Returns the
  /// events detected as a consequence of this line.
  std::vector<DetectedEvent> IngestNmea(const std::string& line,
                                        Timestamp ingest_time);

  /// \brief Convenience: runs a whole pre-generated stream (arrival order).
  std::vector<DetectedEvent> Run(const std::vector<Event<std::string>>& nmea);

  /// \brief Flushes reorder buffers and closes open pattern states.
  std::vector<DetectedEvent> Finish();

  const TrajectoryStore& store() const { return store_; }
  const CoverageModel& coverage() const { return coverage_; }
  const PipelineMetrics& metrics() const { return metrics_; }
  const std::vector<CriticalPoint>& synopsis_log() const {
    return synopsis_log_;
  }

 private:
  void ProcessPoint(const ReconstructedPoint& rp,
                    std::vector<DetectedEvent>* out);

  PipelineConfig config_;
  AisDecoder decoder_;
  TrajectoryReconstructor reconstructor_;
  SynopsisEngine synopses_;
  EventEngine events_;
  SourceQualityModel source_quality_;
  EnrichmentEngine enrichment_;
  TrajectoryStore store_;
  CoverageModel coverage_;
  QualityAssessor quality_;
  PipelineMetrics metrics_;
  std::vector<CriticalPoint> synopsis_log_;
  std::function<void(const DetectedEvent&)> alert_callback_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_PIPELINE_H_
