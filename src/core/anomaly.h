#ifndef MARLIN_CORE_ANOMALY_H_
#define MARLIN_CORE_ANOMALY_H_

/// \file anomaly.h
/// \brief Online per-vessel behaviour-change detection over the
/// reconstruction output — the paper's "outlier recognition … in real-time"
/// (§3.1) on the *temporal* axis, complementing the spatial
/// patterns-of-life model (core/patterns.h, which needs an offline training
/// pass) with a detector that learns each vessel's own kinematic regime as
/// it streams.
///
/// Mechanism: sliding feature windows of speed and turn rate are summarised
/// by Welford accumulators; when a window closes, its summary is compared
/// against the previous window's by a normalised mean-shift divergence
///   d = Σ_f (μ_cur − μ_prev)² / (σ²_cur + σ²_prev + ε),
/// and d is judged against an *adaptive* threshold — the running mean and
/// deviation of the vessel's own past divergences (a vessel that manoeuvres
/// all day raises its own bar; a steady cargo ship keeps a hair trigger).
///
/// Sentinel-correct by construction: features are accumulated only from
/// available fields (missing SOG/COG/ROT contribute nothing, never 0.0),
/// and the upstream integrity scorer quarantines a vessel's window state
/// via `Poison` when its reports fail integrity, so spoofed data cannot
/// train the reference window.
///
/// Determinism: state is keyed per MMSI only and points arrive in
/// event-time order per vessel (reconstruction output), so the emitted
/// event stream is invariant under MMSI-sharding.

#include <cstdint>
#include <map>
#include <vector>

#include "core/events.h"
#include "core/integrity.h"
#include "core/reconstruction.h"

namespace marlin {

/// \brief Behaviour-change detector thresholds.
struct AnomalyOptions {
  /// Points per feature window.
  int window_points = 16;
  /// Divergence must exceed (mean + threshold_z · std) of the vessel's own
  /// past divergence scores.
  double threshold_z = 3.0;
  /// Closed windows needed before the adaptive threshold is trusted.
  int min_history_windows = 4;
  /// Absolute divergence floor: below this no alert fires regardless of how
  /// quiet the history is.
  double min_divergence = 2.0;
  /// Points discarded after a `Poison` call before accumulation resumes.
  int quarantine_points = 32;
  /// Per-vessel rate limit between behaviour-change events.
  DurationMs realert_ms = 30 * kMillisPerMinute;
};

/// \brief Mergeable counters for the whole anomaly & integrity stage (the
/// integrity half rides along so the pipelines merge one struct).
struct AnomalyStageStats {
  IntegrityStats integrity;
  uint64_t points_in = 0;
  uint64_t points_quarantined = 0;
  uint64_t windows_closed = 0;
  uint64_t changes_flagged = 0;
  uint64_t events_out = 0;

  void Merge(const AnomalyStageStats& other) {
    integrity.Merge(other.integrity);
    points_in += other.points_in;
    points_quarantined += other.points_quarantined;
    windows_closed += other.windows_closed;
    changes_flagged += other.changes_flagged;
    events_out += other.events_out;
  }
};

/// \brief Streaming per-vessel behaviour-change detector. (The name
/// `AnomalyDetector` is taken by the patterns-of-life scorer.)
class BehaviorChangeDetector {
 public:
  using Options = AnomalyOptions;

  BehaviorChangeDetector() : BehaviorChangeDetector(Options()) {}
  explicit BehaviorChangeDetector(const Options& options)
      : options_(options) {}

  /// \brief Consumes one reconstructed point (per-vessel event-time order);
  /// appends behaviour-change events to `out`.
  void Ingest(const ReconstructedPoint& rp, std::vector<DetectedEvent>* out);

  /// \brief Quarantines a vessel after an upstream integrity failure: the
  /// open window and derived-feature state are dropped and the next
  /// `quarantine_points` points are discarded, so poisoned kinematics never
  /// enter the reference window. The divergence history survives — the
  /// vessel's learned threshold is not the attacker's to reset.
  void Poison(Mmsi mmsi);

  /// \brief Detector-side counters (integrity sub-struct untouched; the
  /// shard core merges the scorer's stats in).
  const AnomalyStageStats& stats() const { return stats_; }

 private:
  /// Welford accumulator (numerically stable streaming mean/variance).
  struct Welford {
    uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;

    void Add(double x) {
      ++count;
      const double delta = x - mean;
      mean += delta / static_cast<double>(count);
      m2 += delta * (x - mean);
    }
    double Variance() const {
      return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
    }
    void Reset() { *this = Welford{}; }
  };

  /// Closed-window summary of one feature.
  struct FeatureSummary {
    uint64_t count = 0;
    double mean = 0.0;
    double variance = 0.0;
  };

  static constexpr int kFeatures = 2;  ///< speed, turn rate

  struct VesselState {
    Welford window[kFeatures];
    int window_points = 0;             ///< points since the window opened
    Timestamp window_start_t = kInvalidTimestamp;
    FeatureSummary prev[kFeatures];
    bool has_prev = false;
    Welford score_history;             ///< past divergence scores
    // Derived turn rate from consecutive course fixes (fallback when the
    // report carried no ROT).
    float last_cog_deg = 0.0f;
    Timestamp last_cog_t = kInvalidTimestamp;
    int quarantine_remaining = 0;
    Timestamp last_alert = kInvalidTimestamp;
  };

  void CloseWindow(Mmsi mmsi, const ReconstructedPoint& rp,
                   VesselState* vessel, std::vector<DetectedEvent>* out);

  Options options_;
  std::map<Mmsi, VesselState> vessels_;  ///< deterministic iteration
  AnomalyStageStats stats_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_ANOMALY_H_
