#ifndef MARLIN_CORE_INTEGRITY_H_
#define MARLIN_CORE_INTEGRITY_H_

/// \file integrity.h
/// \brief Upstream kinematic-integrity scoring of raw position reports —
/// the paper's "possibly conflicting vessel positions" (§3.1) and "sources'
/// quality" (§4) concerns, applied *before* observations reach the
/// detectors. A report whose reported kinematics contradict its own
/// position history (implied vs reported SOG, physically impossible
/// reported turn rates, colocated-in-time but irreconcilable-in-space
/// fixes) is flagged and quarantined so spoofed or corrupted data cannot
/// train the downstream behaviour models.
///
/// The scorer is keyed per MMSI only and consumes reports in arrival
/// order, which every pipeline arrangement preserves per vessel (a vessel
/// lives on exactly one shard) — its event output is therefore invariant
/// under sharding, the same argument the reconstruction stage makes.
///
/// The scorer owns a private `SourceQualityModel` (it must not share the
/// enrichment engine's instance: that one belongs to the enrichment
/// side-stage's worker thread, while this scorer runs on the ingest
/// thread) and records every verdict into it, so integrity outcomes feed
/// the uncertainty layer's Beta-posterior source reliability.

#include <cstdint>
#include <map>
#include <vector>

#include "ais/types.h"
#include "common/ring_buffer.h"
#include "core/events.h"
#include "core/reconstruction.h"
#include "uncertainty/source_quality.h"

namespace marlin {

/// \brief Thresholds for the integrity checks.
struct IntegrityOptions {
  /// Physical speed cap for position-to-position implied speed. Kept above
  /// the reconstruction stage's jump cutoff so the two stages agree on what
  /// "impossible" means (≈ 117 knots).
  double max_speed_mps = 60.0;
  /// Reported rates of turn beyond this are physically implausible for any
  /// vessel even though the ITU encoding reaches ±708 deg/min.
  double max_turn_rate_deg_min = 360.0;
  /// Below this inter-report gap the implied-speed checks are skipped:
  /// position noise dominates the numerator at tiny baselines.
  DurationMs min_dt_ms = 2000;
  /// Two fixes closer than `min_dt_ms` in time but farther apart than this
  /// are evidence of two transmitters sharing the MMSI.
  double colocation_distance_m = 500.0;
  /// Reported-vs-implied SOG mismatch tolerance: absolute floor plus a
  /// relative share of the larger of the two speeds.
  double sog_tolerance_mps = 5.0;
  double sog_tolerance_rel = 0.5;
  /// Consecutive mismatching reports required before a kinematic-integrity
  /// event fires (transient GPS noise does not produce streaks).
  int sog_mismatch_streak = 3;
  /// Irreconcilable-position conflicts inside the window needed for an
  /// MMSI-conflict (spoofing) event.
  int conflict_count = 3;
  DurationMs conflict_window_ms = 30 * kMillisPerMinute;
  /// Per-vessel rate limit between integrity events of the same class.
  DurationMs realert_ms = 10 * kMillisPerMinute;
};

/// \brief Mergeable integrity-stage counters.
struct IntegrityStats {
  uint64_t reports_checked = 0;
  uint64_t kinematic_flags = 0;  ///< reported SOG contradicts positions
  uint64_t turn_rate_flags = 0;  ///< reported ROT physically impossible
  uint64_t time_flags = 0;       ///< colocated in time, irreconcilable in space
  uint64_t spoof_flags = 0;      ///< conflict evidence (spoofing window hits)
  uint64_t events_out = 0;

  void Merge(const IntegrityStats& other) {
    reports_checked += other.reports_checked;
    kinematic_flags += other.kinematic_flags;
    turn_rate_flags += other.turn_rate_flags;
    time_flags += other.time_flags;
    spoof_flags += other.spoof_flags;
    events_out += other.events_out;
  }
};

/// \brief Pre-reconstruction integrity scorer. Single-threaded; state keyed
/// per MMSI only.
class IntegrityScorer {
 public:
  using Options = IntegrityOptions;
  using Stats = IntegrityStats;

  IntegrityScorer() : IntegrityScorer(Options()) {}
  explicit IntegrityScorer(const Options& options) : options_(options) {}

  /// \brief Assesses one raw report (arrival order). Appends any integrity
  /// events to `out`; returns false when the report failed a check — the
  /// caller should quarantine the vessel's downstream detector state.
  bool Assess(const PositionReport& report, std::vector<DetectedEvent>* out);

  const Stats& stats() const { return stats_; }

  /// \brief Beta-posterior reliability of the AIS feed given the verdicts
  /// recorded so far (uncertainty/source_quality.h).
  double SourceReliability() const {
    return source_quality_.Reliability(kSourceName);
  }
  const SourceQualityModel& source_quality() const { return source_quality_; }

 private:
  static constexpr const char* kSourceName = "ais";

  struct VesselState {
    Timestamp last_t = kInvalidTimestamp;  ///< resolved event time
    GeoPoint last_pos;
    RingBuffer<Timestamp> conflict_times;  ///< sliding spoof-evidence window
    int sog_mismatch_streak = 0;
    Timestamp last_kinematic_alert = kInvalidTimestamp;
    Timestamp last_conflict_alert = kInvalidTimestamp;
  };

  void EmitEvent(EventType type, const PositionReport& report,
                 Timestamp event_time, double severity,
                 std::vector<DetectedEvent>* out);

  Options options_;
  // std::map: deterministic iteration, matching the reconstruction stage's
  // choice for per-vessel state.
  std::map<Mmsi, VesselState> vessels_;
  SourceQualityModel source_quality_;
  Stats stats_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_INTEGRITY_H_
