#include "core/synopses.h"

#include <cmath>

#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

namespace {

/// Dead-reckoning residual of sample `p` against critical point `from`,
/// degrading gracefully with kinematics availability: full DR needs speed
/// and course; speed alone still bounds the along-track distance (annulus
/// test); neither reduces to a stationarity assumption. With both fields
/// available this is exactly the classic Destination-based prediction, so
/// fully-populated streams compress identically to before.
double DeadReckoningError(const TrajectoryPoint& from,
                          const TrajectoryPoint& p, double dt_s) {
  if (from.HasSpeed() && from.HasCourse()) {
    const GeoPoint predicted =
        Destination(from.position, from.cog_deg, from.sog_mps * dt_s);
    return HaversineDistance(predicted, p.position);
  }
  const double dist = HaversineDistance(from.position, p.position);
  if (from.HasSpeed()) return std::abs(dist - from.sog_mps * dt_s);
  return dist;
}

}  // namespace

const char* CriticalPointTypeName(CriticalPointType t) {
  switch (t) {
    case CriticalPointType::kSegmentStart:
      return "segment-start";
    case CriticalPointType::kSegmentEnd:
      return "segment-end";
    case CriticalPointType::kStop:
      return "stop";
    case CriticalPointType::kRestart:
      return "restart";
    case CriticalPointType::kTurn:
      return "turn";
    case CriticalPointType::kSpeedChange:
      return "speed-change";
    case CriticalPointType::kDeviation:
      return "deviation";
    case CriticalPointType::kHeartbeat:
      return "heartbeat";
  }
  return "unknown";
}

void SynopsisEngine::Emit(Mmsi mmsi, const TrajectoryPoint& p,
                          CriticalPointType type, VesselState* vessel,
                          std::vector<CriticalPoint>* out) {
  out->push_back(CriticalPoint{mmsi, p, type});
  vessel->last_emitted = p;
  vessel->has_last_emitted = true;
  ++stats_.points_out;
}

void SynopsisEngine::Ingest(const ReconstructedPoint& rp,
                            std::vector<CriticalPoint>* out) {
  ++stats_.points_in;
  VesselState& vessel = vessels_[rp.mmsi];
  const TrajectoryPoint& p = rp.point;

  if (!vessel.has_last_emitted) {
    Emit(rp.mmsi, p, CriticalPointType::kSegmentStart, &vessel, out);
    vessel.stopped = p.HasSpeed() && p.sog_mps < options_.stop_speed_mps;
    vessel.prev = p;
    vessel.has_prev = true;
    return;
  }

  if (rp.starts_segment) {
    // Close the previous segment at its last known sample, then open a new
    // one here — gap boundaries are always critical.
    if (vessel.has_prev && vessel.prev.t != vessel.last_emitted.t) {
      Emit(rp.mmsi, vessel.prev, CriticalPointType::kSegmentEnd, &vessel, out);
    }
    Emit(rp.mmsi, p, CriticalPointType::kSegmentStart, &vessel, out);
    vessel.stopped = p.HasSpeed() && p.sog_mps < options_.stop_speed_mps;
    vessel.prev = p;
    return;
  }

  const TrajectoryPoint& last = vessel.last_emitted;

  // Stop / restart transitions. A sample without speed can neither confirm
  // nor deny a transition: the state simply carries over.
  if (p.HasSpeed()) {
    const bool now_stopped = p.sog_mps < options_.stop_speed_mps;
    if (now_stopped != vessel.stopped) {
      Emit(rp.mmsi, p,
           now_stopped ? CriticalPointType::kStop
                       : CriticalPointType::kRestart,
           &vessel, out);
      vessel.stopped = now_stopped;
      vessel.prev = p;
      return;
    }
  }

  // Turn — needs a course on both ends of the comparison.
  if (!vessel.stopped && p.HasCourse() && last.HasCourse() &&
      std::abs(AngleDifference(p.cog_deg, last.cog_deg)) >
          options_.turn_threshold_deg) {
    Emit(rp.mmsi, p, CriticalPointType::kTurn, &vessel, out);
    vessel.prev = p;
    return;
  }

  // Speed change (relative to last emitted) — needs a speed on both ends.
  if (p.HasSpeed() && last.HasSpeed()) {
    const double base_speed = std::max(0.5, static_cast<double>(last.sog_mps));
    if (std::abs(p.sog_mps - last.sog_mps) / base_speed >
        options_.speed_change_rel) {
      Emit(rp.mmsi, p, CriticalPointType::kSpeedChange, &vessel, out);
      vessel.prev = p;
      return;
    }
  }

  // Dead-reckoning deviation: where would we place this sample by
  // interpolating the synopsis? If the DR prediction from the last critical
  // point misses by more than the bound, the *previous* raw point is the
  // last one the bound still covered — emit it (retrospective emission keeps
  // the error bound tight without emitting the noisy current point twice).
  const double dt_s =
      static_cast<double>(p.t - last.t) / kMillisPerSecond;
  if (DeadReckoningError(last, p, dt_s) > options_.deviation_threshold_m) {
    if (vessel.has_prev && vessel.prev.t > last.t) {
      Emit(rp.mmsi, vessel.prev, CriticalPointType::kDeviation, &vessel, out);
      // Re-check the current point against the newly emitted one.
      const double dt2_s =
          static_cast<double>(p.t - vessel.last_emitted.t) / kMillisPerSecond;
      if (DeadReckoningError(vessel.last_emitted, p, dt2_s) >
          options_.deviation_threshold_m) {
        Emit(rp.mmsi, p, CriticalPointType::kDeviation, &vessel, out);
      }
    } else {
      Emit(rp.mmsi, p, CriticalPointType::kDeviation, &vessel, out);
    }
    vessel.prev = p;
    return;
  }

  // Heartbeat.
  if (p.t - last.t >= options_.heartbeat_ms) {
    Emit(rp.mmsi, p, CriticalPointType::kHeartbeat, &vessel, out);
  }
  vessel.prev = p;
}

std::vector<CriticalPoint> SynopsisEngine::CompressTrajectory(
    const Trajectory& trajectory) {
  std::vector<CriticalPoint> out;
  for (const TrajectoryPoint& p : trajectory.points) {
    ReconstructedPoint rp;
    rp.mmsi = trajectory.mmsi;
    rp.point = p;
    rp.starts_segment = false;
    Ingest(rp, &out);
  }
  // Always close the trajectory with its final point so reconstruction can
  // interpolate to the end.
  if (!trajectory.points.empty()) {
    VesselState& vessel = vessels_[trajectory.mmsi];
    if (vessel.last_emitted.t != trajectory.points.back().t) {
      Emit(trajectory.mmsi, trajectory.points.back(),
           CriticalPointType::kSegmentEnd, &vessel, &out);
    }
  }
  return out;
}

Trajectory ReconstructFromSynopsis(
    Mmsi mmsi, const std::vector<CriticalPoint>& synopsis) {
  Trajectory out;
  out.mmsi = mmsi;
  for (const CriticalPoint& cp : synopsis) {
    if (cp.mmsi == mmsi) out.points.push_back(cp.point);
  }
  return out;
}

}  // namespace marlin
