#include "core/reconstruction.h"

#include <cmath>

#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

Timestamp ResolveEventTime(int utc_second, Timestamp received_at,
                           DurationMs max_age_ms) {
  if (utc_second < 0 || utc_second > 59) return received_at;
  // Candidate minute boundaries around the receive time; pick the candidate
  // with the right seconds value closest to (and not after) received_at,
  // allowing small clock skew forward.
  const Timestamp rx_minute = received_at - (received_at % kMillisPerMinute);
  for (Timestamp minute = rx_minute + kMillisPerMinute;
       minute >= received_at - max_age_ms - kMillisPerMinute;
       minute -= kMillisPerMinute) {
    const Timestamp candidate = minute + utc_second * kMillisPerSecond;
    if (candidate <= received_at + 2 * kMillisPerSecond &&
        candidate >= received_at - max_age_ms) {
      return candidate;
    }
  }
  return received_at;
}

TrajectoryReconstructor::TrajectoryReconstructor(const Options& options)
    : options_(options),
      reorder_options_(ReorderBuffer<PositionReport>::Options{
          options.reorder_delay_ms, /*emit_late_events=*/false}) {}

void TrajectoryReconstructor::Ingest(const PositionReport& report,
                                     std::vector<ReconstructedPoint>* out,
                                     std::vector<RejectedReport>* rejected) {
  ++stats_.reports_in;
  if (!report.HasPosition() || report.received_at == kInvalidTimestamp) {
    ++stats_.invalid;
    if (rejected != nullptr) {
      rejected->push_back(RejectedReport{RejectedReport::Reason::kInvalid,
                                         report.mmsi, report.received_at,
                                         report.position, 0.0});
    }
    return;
  }
  const Timestamp event_time =
      ResolveEventTime(report.utc_second, report.received_at);
  VesselState& vessel =
      vessels_.try_emplace(report.mmsi, reorder_options_).first->second;
  const uint64_t dropped_before = vessel.reorder.stats().dropped_late;
  std::vector<Event<PositionReport>> released;
  vessel.reorder.Push(
      Event<PositionReport>(event_time, report.received_at, 0, report),
      &released);
  stats_.late_dropped += vessel.reorder.stats().dropped_late - dropped_before;
  for (const auto& ev : released) {
    Process(ev.payload, ev.event_time, out, rejected);
  }
}

void TrajectoryReconstructor::Flush(std::vector<ReconstructedPoint>* out,
                                    std::vector<RejectedReport>* rejected) {
  // MMSI order: deterministic regardless of ingest interleaving.
  for (auto& [mmsi, vessel] : vessels_) {
    std::vector<Event<PositionReport>> released;
    vessel.reorder.Flush(&released);
    for (const auto& ev : released) {
      Process(ev.payload, ev.event_time, out, rejected);
    }
  }
}

void TrajectoryReconstructor::Process(const PositionReport& report,
                                      Timestamp event_time,
                                      std::vector<ReconstructedPoint>* out,
                                      std::vector<RejectedReport>* rejected) {
  VesselState& vessel =
      vessels_.try_emplace(report.mmsi, reorder_options_).first->second;

  if (vessel.last_t != kInvalidTimestamp) {
    const DurationMs dt = event_time - vessel.last_t;
    if (dt <= 0 || dt < options_.duplicate_window_ms) {
      // Same instant (multi-receiver duplicate) or stale after reordering.
      const bool dup = std::abs(dt) < options_.duplicate_window_ms;
      if (dup) {
        ++stats_.duplicates;
      } else {
        ++stats_.stale;
      }
      if (rejected != nullptr) {
        rejected->push_back(RejectedReport{
            dup ? RejectedReport::Reason::kDuplicate
                : RejectedReport::Reason::kStale,
            report.mmsi, event_time, report.position, 0.0});
      }
      return;
    }
    const double dist = HaversineDistance(vessel.last_pos, report.position);
    const double implied =
        dist / (static_cast<double>(dt) / kMillisPerSecond);
    if (implied > options_.max_speed_mps) {
      ++stats_.outliers;
      if (rejected != nullptr) {
        rejected->push_back(RejectedReport{
            RejectedReport::Reason::kImpossibleJump, report.mmsi, event_time,
            report.position, implied});
      }
      return;
    }
  }

  ReconstructedPoint rp;
  rp.mmsi = report.mmsi;
  rp.point.t = event_time;
  rp.point.position = report.position;
  // ITU "not available" sentinels stay unavailable. Collapsing them to 0.0
  // would make a vessel with missing kinematics indistinguishable from one
  // that is stopped and heading due north — every downstream detector would
  // inherit the lie.
  rp.point.sog_mps = report.HasSpeed()
                         ? static_cast<float>(KnotsToMps(report.sog_knots))
                         : TrajectoryPoint::Unavailable();
  rp.point.cog_deg = report.HasCourse()
                         ? static_cast<float>(report.cog_deg)
                         : TrajectoryPoint::Unavailable();
  rp.turn_rate_deg_min = report.HasTurnRate()
                             ? static_cast<float>(report.TurnRateDegPerMin())
                             : TrajectoryPoint::Unavailable();
  if (vessel.last_t == kInvalidTimestamp) {
    rp.starts_segment = true;
    ++stats_.segments_started;
  } else {
    const DurationMs gap = event_time - vessel.last_t;
    if (gap > options_.gap_threshold_ms) {
      rp.starts_segment = true;
      rp.gap_before_ms = gap;
      ++stats_.segments_started;
    }
  }
  vessel.last_t = event_time;
  vessel.last_pos = report.position;
  ++stats_.points_out;
  if (out != nullptr) out->push_back(rp);
}

}  // namespace marlin
