#include "core/query_engine.h"

#include <algorithm>
#include <map>

#include "stream/event.h"
#include "stream/merge.h"

namespace marlin {

namespace {

/// Full-payload tie-break so the within-partition sort is a total order:
/// (t, mmsi) is unique per partition by construction (one point per vessel
/// per timestamp survives reconstruction), but a total comparator keeps the
/// determinism proof independent of that invariant.
bool RowLess(const QueryRow& a, const QueryRow& b) {
  if (a.t != b.t) return a.t < b.t;
  if (a.mmsi != b.mmsi) return a.mmsi < b.mmsi;
  if (a.position.lat != b.position.lat) return a.position.lat < b.position.lat;
  if (a.position.lon != b.position.lon) return a.position.lon < b.position.lon;
  // Kinematics tie-break on bit patterns: a numeric `<` over NaN payloads
  // (unavailable kinematics) violates strict weak ordering and is UB for
  // std::sort. Both fields are non-negative when available, so bit order
  // coincides with numeric order there.
  const auto sog_a = std::bit_cast<uint32_t>(a.sog_mps);
  const auto sog_b = std::bit_cast<uint32_t>(b.sog_mps);
  if (sog_a != sog_b) return sog_a < sog_b;
  return std::bit_cast<uint32_t>(a.cog_deg) <
         std::bit_cast<uint32_t>(b.cog_deg);
}

struct MergeLess {
  bool operator()(const Event<QueryRow>& a, const Event<QueryRow>& b) const {
    return RowLess(a.payload, b.payload);
  }
};

/// Resamples the merged raw rows at a fixed cadence: per-vessel linear
/// interpolation between archived fixes via `Trajectory::At`, grid anchored
/// at the spec's t0 when finite (so different queries over the same data
/// share sample instants), else at each track's own start.
void Resample(const QuerySpec& spec, std::vector<QueryRow>* rows) {
  // std::map: deterministic vessel order for the rebuild below.
  std::map<Mmsi, Trajectory> tracks;
  for (const QueryRow& row : *rows) {
    Trajectory& traj = tracks[row.mmsi];
    traj.mmsi = row.mmsi;
    traj.points.push_back(
        TrajectoryPoint{row.t, row.position, row.sog_mps, row.cog_deg});
  }
  rows->clear();
  for (const auto& [mmsi, traj] : tracks) {
    const Timestamp start = traj.StartTime();
    const Timestamp end = std::min(spec.t1, traj.EndTime());
    Timestamp anchor = spec.t0 != kInvalidTimestamp ? spec.t0 : start;
    if (anchor < start) {
      // First grid instant at or after the track start (no extrapolation).
      const Timestamp steps = (start - anchor + spec.resample_ms - 1) /
                              spec.resample_ms;
      anchor += steps * spec.resample_ms;
    }
    for (Timestamp t = anchor; t <= end; t += spec.resample_ms) {
      const TrajectoryPoint p = traj.At(t);
      rows->push_back(QueryRow{t, mmsi, p.position, p.sog_mps, p.cog_deg});
    }
  }
  std::sort(rows->begin(), rows->end(), RowLess);
}

}  // namespace

QueryEngine::QueryEngine(std::vector<const ShardArchive*> partitions)
    : QueryEngine(std::move(partitions), Options()) {}

QueryEngine::QueryEngine(std::vector<const ShardArchive*> partitions,
                         const Options& options)
    : options_(options),
      channel_(QueueFabric::kMutex, options.queue_capacity) {
  for (const ShardArchive* p : partitions) {
    if (p != nullptr) partitions_.push_back(p);
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  channel_.Close();
  for (std::thread& w : workers_) w.join();
}

void QueryEngine::WorkerLoop() {
  while (auto task = channel_.Pop()) {
    ScanPartition(*task->snapshot, *task->spec, task->rows, task->stats);
    task->done->count_down();
  }
}

void QueryEngine::ScanPartition(const ShardArchive::PartitionSnapshot& snapshot,
                                const ResolvedSpec& resolved,
                                std::vector<QueryRow>* rows,
                                QueryStats* stats) {
  const QuerySpec& spec = *resolved.spec;
  stats->partitions = 1;
  stats->blocks_total = snapshot.blocks.size();

  // Candidate selection over the indexed prefix: interval-tree stab for the
  // time range, intersected with the R-tree hit set when a region filter is
  // present. Entry ids are block indexes, so sorted sets intersect directly.
  std::vector<uint64_t> candidates;
  if (snapshot.indexed > 0) {
    candidates = snapshot.intervals->Overlapping(spec.t0, spec.t1);
    std::sort(candidates.begin(), candidates.end());
    stats->blocks_skipped_time += snapshot.indexed - candidates.size();
    if (spec.region.has_value()) {
      std::vector<uint64_t> in_region = snapshot.rtree->Query(*spec.region);
      std::sort(in_region.begin(), in_region.end());
      std::vector<uint64_t> both;
      both.reserve(std::min(candidates.size(), in_region.size()));
      std::set_intersection(candidates.begin(), candidates.end(),
                            in_region.begin(), in_region.end(),
                            std::back_inserter(both));
      stats->blocks_skipped_region += candidates.size() - both.size();
      candidates = std::move(both);
    }
  }
  // Unindexed tail: the same pruning against each block's own metadata.
  for (size_t i = snapshot.indexed; i < snapshot.blocks.size(); ++i) {
    const PositionBlock& block = *snapshot.blocks[i];
    if (block.t1 < spec.t0 || block.t0 > spec.t1) {
      ++stats->blocks_skipped_time;
      continue;
    }
    if (spec.region.has_value() && !spec.region->Intersects(block.bounds)) {
      ++stats->blocks_skipped_region;
      continue;
    }
    candidates.push_back(i);
  }

  std::vector<TrajectoryPoint> scratch;
  for (const uint64_t id : candidates) {
    const PositionBlock& block = *snapshot.blocks[id];
    if (!resolved.vessels_sorted.empty() &&
        !std::binary_search(resolved.vessels_sorted.begin(),
                            resolved.vessels_sorted.end(), block.mmsi)) {
      ++stats->blocks_skipped_vessel;
      continue;
    }
    ++stats->blocks_scanned;
    scratch.clear();
    if (!DecodePositionBlock(block.data, block.count, block.mmsi, block.t0,
                             &scratch)
             .ok()) {
      continue;  // corrupt block: served-tier reads degrade, never throw
    }
    stats->points_decoded += scratch.size();
    for (const TrajectoryPoint& p : scratch) {
      if (p.t < spec.t0 || p.t > spec.t1) continue;
      if (spec.region.has_value() && !spec.region->Contains(p.position)) {
        continue;
      }
      rows->push_back(
          QueryRow{p.t, block.mmsi, p.position, p.sog_mps, p.cog_deg});
    }
  }
  // Canonical partition order; the coordinator merge preserves it globally.
  std::sort(rows->begin(), rows->end(), RowLess);
}

QueryResult QueryEngine::Execute(const QuerySpec& spec) const {
  QueryResult result;
  if (spec.t1 < spec.t0 || partitions_.empty()) return result;

  ResolvedSpec resolved;
  resolved.spec = &spec;
  resolved.vessels_sorted = spec.vessels;
  std::sort(resolved.vessels_sorted.begin(), resolved.vessels_sorted.end());

  // Pin every partition's current epoch snapshot for the whole query —
  // ingest can keep publishing new epochs underneath; we read a consistent
  // cut and never block it.
  std::vector<std::shared_ptr<const ShardArchive::PartitionSnapshot>> snaps;
  snaps.reserve(partitions_.size());
  for (const ShardArchive* p : partitions_) snaps.push_back(p->snapshot());

  std::vector<std::vector<QueryRow>> partition_rows(snaps.size());
  std::vector<QueryStats> partition_stats(snaps.size());
  if (options_.num_workers == 0) {
    for (size_t i = 0; i < snaps.size(); ++i) {
      ScanPartition(*snaps[i], resolved, &partition_rows[i],
                    &partition_stats[i]);
    }
  } else {
    std::latch done(static_cast<ptrdiff_t>(snaps.size()));
    for (size_t i = 0; i < snaps.size(); ++i) {
      Task task{snaps[i].get(), &resolved, &partition_rows[i],
                &partition_stats[i], &done};
      if (!channel_.Push(std::move(task))) {
        // Channel closed (destruction race): scan inline so the latch and
        // the result stay correct.
        ScanPartition(*snaps[i], resolved, &partition_rows[i],
                      &partition_stats[i]);
        done.count_down();
      }
    }
    done.wait();
  }

  // K-way merge of the sorted partition streams in canonical order.
  std::vector<StreamMerger<QueryRow, MergeLess>::Source> sources;
  std::vector<std::vector<Event<QueryRow>>> wrapped(partition_rows.size());
  sources.reserve(partition_rows.size());
  for (size_t i = 0; i < partition_rows.size(); ++i) {
    wrapped[i].reserve(partition_rows[i].size());
    for (QueryRow& row : partition_rows[i]) {
      Event<QueryRow> ev;
      ev.event_time = row.t;
      ev.payload = std::move(row);
      wrapped[i].push_back(std::move(ev));
    }
    sources.push_back(VectorSource<QueryRow>(std::move(wrapped[i])));
  }
  StreamMerger<QueryRow, MergeLess> merger(std::move(sources));
  size_t total = 0;
  for (const auto& pr : partition_rows) total += pr.size();
  result.rows.reserve(total);
  while (auto ev = merger.Next()) {
    result.rows.push_back(std::move(ev->payload));
  }

  for (const QueryStats& ps : partition_stats) result.stats.Merge(ps);
  if (spec.resample_ms > 0) Resample(spec, &result.rows);
  result.stats.rows = result.rows.size();
  return result;
}

}  // namespace marlin
