#ifndef MARLIN_CORE_QUERY_ENGINE_H_
#define MARLIN_CORE_QUERY_ENGINE_H_

/// \file query_engine.h
/// \brief Coordinator query layer of the historical serving tier: fans a
/// `QuerySpec` out over the per-shard archive partitions, merges the
/// per-partition results in canonical (event-time, MMSI) order, and
/// optionally resamples tracks at a fixed cadence — the AISdb-style query
/// surface (time-range × region × vessel-set × resample) the paper's
/// integration challenge calls for (PAPERS.md).
///
/// Concurrency model: partitions publish immutable epoch snapshots
/// (`ShardArchive::snapshot()`, a shared_ptr copy), so query execution
/// holds no lock while scanning — N readers run against live ingest
/// without stalling it. Fan-out rides the same
/// `StageChannel` fabric as the pipeline's other hops, deliberately on the
/// mutex `BoundedQueue` arm: the query hop is many-producer (every reader
/// thread enqueues) and many-consumer (the worker pool), which is exactly
/// the MPMC case the fallback arm exists for — the SPSC ring's contract
/// does not hold here.
///
/// Determinism: rows are totally ordered by (event time, MMSI, payload) and
/// every vessel lives in exactly one partition, so the merged stream is
/// byte-identical no matter how the archive was partitioned — the same
/// `QuerySpec` over a sequential single-archive world and an N-shard world
/// returns identical bytes in identical order. tests/query_serving_test.cc
/// holds the proof battery.

#include <bit>
#include <cstdint>
#include <latch>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "ais/types.h"
#include "common/time.h"
#include "geo/geometry.h"
#include "storage/archive.h"
#include "stream/channel.h"

namespace marlin {

/// \brief One historical query: time range × region × vessel set, with
/// optional fixed-cadence resampling of the matched tracks.
struct QuerySpec {
  /// Inclusive event-time range. Defaults cover everything.
  Timestamp t0 = kInvalidTimestamp;
  Timestamp t1 = kMaxTimestamp;
  /// Spatial filter: only points inside the box (blocks are pre-pruned via
  /// the R-tree / block bounds). nullopt = no spatial filter.
  std::optional<BoundingBox> region;
  /// Vessel-set filter; empty = all vessels.
  std::vector<Mmsi> vessels;
  /// > 0 resamples each matched vessel's track at this cadence (linear
  /// interpolation between archived fixes, no extrapolation past the ends),
  /// anchored at `t0` when finite, else at the track start. 0 returns the
  /// raw archived points.
  DurationMs resample_ms = 0;
};

/// \brief One output row: an archived (or resampled) position fix.
struct QueryRow {
  Timestamp t = 0;
  Mmsi mmsi = 0;
  GeoPoint position;
  float sog_mps = 0.0f;
  float cog_deg = 0.0f;

  /// Kinematics are compared as bit patterns: the archive stores raw float
  /// bits, the "not available" state is one canonical quiet NaN, and
  /// `NaN == NaN` is false numerically — value comparison would make every
  /// row with unavailable kinematics unequal to itself.
  friend bool operator==(const QueryRow& a, const QueryRow& b) {
    return a.t == b.t && a.mmsi == b.mmsi &&
           a.position.lat == b.position.lat &&
           a.position.lon == b.position.lon &&
           std::bit_cast<uint32_t>(a.sog_mps) ==
               std::bit_cast<uint32_t>(b.sog_mps) &&
           std::bit_cast<uint32_t>(a.cog_deg) ==
               std::bit_cast<uint32_t>(b.cog_deg);
  }
};

/// \brief Mergeable per-query counters: how much work the indexes saved.
struct QueryStats {
  uint64_t partitions = 0;
  uint64_t blocks_total = 0;          ///< blocks visible across partitions
  uint64_t blocks_scanned = 0;        ///< blocks actually decoded
  uint64_t blocks_skipped_time = 0;   ///< pruned by interval index / t0-t1 meta
  uint64_t blocks_skipped_region = 0; ///< pruned by R-tree / bounds meta
  uint64_t blocks_skipped_vessel = 0; ///< pruned by the vessel-set filter
  uint64_t points_decoded = 0;
  uint64_t rows = 0;                  ///< rows returned (after resampling)

  void Merge(const QueryStats& o) {
    partitions += o.partitions;
    blocks_total += o.blocks_total;
    blocks_scanned += o.blocks_scanned;
    blocks_skipped_time += o.blocks_skipped_time;
    blocks_skipped_region += o.blocks_skipped_region;
    blocks_skipped_vessel += o.blocks_skipped_vessel;
    points_decoded += o.points_decoded;
    rows += o.rows;
  }
};

/// \brief A completed query: rows in canonical (event-time, MMSI) order.
struct QueryResult {
  std::vector<QueryRow> rows;
  QueryStats stats;
};

/// \brief The coordinator fan-out/merge engine. Thread-safe: any number of
/// reader threads may call `Execute` concurrently while ingest runs.
class QueryEngine {
 public:
  struct Options {
    /// Fan-out worker pool size. 0 scans the partitions inline on the
    /// calling reader thread (no pool, no channel hop) — the sequential
    /// reference arm.
    size_t num_workers = 0;
    /// Fan-out channel capacity (tasks, not queries).
    size_t queue_capacity = 64;
  };

  /// \brief `partitions` must outlive the engine (they are the pipeline's
  /// shard archives; null entries are ignored).
  explicit QueryEngine(std::vector<const ShardArchive*> partitions);
  QueryEngine(std::vector<const ShardArchive*> partitions,
              const Options& options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// \brief Runs one query against the partitions' current epoch snapshots.
  QueryResult Execute(const QuerySpec& spec) const;

  /// \brief Fan-out channel health (zeros when num_workers == 0).
  QueueHopStats hop_stats() const { return channel_.stats(); }

  size_t num_partitions() const { return partitions_.size(); }

 private:
  /// Spec with the vessel set pre-sorted for binary search.
  struct ResolvedSpec {
    const QuerySpec* spec = nullptr;
    std::vector<Mmsi> vessels_sorted;
  };

  struct Task {
    const ShardArchive::PartitionSnapshot* snapshot = nullptr;
    const ResolvedSpec* spec = nullptr;
    std::vector<QueryRow>* rows = nullptr;
    QueryStats* stats = nullptr;
    std::latch* done = nullptr;
  };

  static void ScanPartition(const ShardArchive::PartitionSnapshot& snapshot,
                            const ResolvedSpec& resolved,
                            std::vector<QueryRow>* rows, QueryStats* stats);
  void WorkerLoop();

  std::vector<const ShardArchive*> partitions_;
  Options options_;
  /// MPMC fan-out hop (mutex arm by design; see file comment).
  mutable StageChannel<Task> channel_;
  std::vector<std::thread> workers_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_QUERY_ENGINE_H_
