#include "core/sharded_pipeline.h"

#include <algorithm>

#include "stream/merge.h"

namespace marlin {

namespace {

GridPairPartitioner::Options GridPairOptions(const PipelineConfig& config) {
  GridPairPartitioner::Options options;
  options.pair_threads = ResolveTopologyCount(config.pair_threads);
  options.cell_size_m = config.pair_cell_size_m;
  options.fabric = config.lock_free_fabric ? QueueFabric::kSpscRing
                                           : QueueFabric::kMutex;
  return options;
}

}  // namespace

ShardedPipeline::ShardedPipeline(const PipelineConfig& config,
                                 const Options& options,
                                 const ZoneDatabase* zones,
                                 const WeatherProvider* weather,
                                 const VesselRegistry* registry_a,
                                 const VesselRegistry* registry_b)
    : config_(config),
      options_(options),
      router_(ResolveTopologyCount(options.num_shards)),
      pair_events_(config.events),
      pair_grid_(config.events, GridPairOptions(config)) {
  // Shards writing the legacy single LSM archive concurrently would race;
  // strip it. The serving tier's per-shard archives (config_.archive) take
  // its place: each shard core owns partition "shard_<i>".
  config_.store.archive = nullptr;
  const size_t n = router_.num_shards();
  // Capacity 1 cannot deadlock (workers always drain), it just serialises
  // the coordinator against the slowest shard; honor the caller's choice
  // (the ring fabric rounds up to its power-of-two floor of 2).
  const size_t capacity = std::max<size_t>(1, options_.queue_capacity);
  const QueueFabric fabric = config_.lock_free_fabric ? QueueFabric::kSpscRing
                                                      : QueueFabric::kMutex;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(fabric, capacity);
    shard->core = std::make_unique<PipelineShardCore>(
        config_, /*async_enrichment=*/true, zones, weather, registry_a,
        registry_b, /*shard_index=*/i);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
}

ShardedPipeline::~ShardedPipeline() {
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void ShardedPipeline::WorkerLoop(Shard* shard) {
  std::vector<Command> batch;
  while (shard->queue.PopBatch(&batch, 8) > 0) {
    for (Command& cmd : batch) {
      if (auto* parse = std::get_if<ParseTask>(&cmd)) {
        for (size_t j = 0; j < parse->count; ++j) {
          parse->out[j] = AisDecoder::Parse(parse->lines[j].payload,
                                            parse->lines[j].ingest_time);
        }
        parse->done->count_down();
      } else {
        ShardTask& task = std::get<ShardTask>(cmd);
        if (task.messages == nullptr) {
          shard->core->Flush(task.flush_ingest_time, task.events, task.pairs);
        } else {
          for (const RoutedMessage& m : *task.messages) {
            if (const auto* pr = std::get_if<PositionReport>(&m.payload)) {
              shard->core->ProcessPosition(*pr, m.ingest_time, task.events,
                                           task.pairs);
            } else {
              shard->core->ProcessStatic(
                  std::get<StaticVoyageData>(m.payload));
            }
          }
        }
        // Epoch close rides the worker thread (the archive's writer) and
        // precedes the latch, so once the coordinator observes the window
        // done, the new snapshot is published — readers joining after a
        // merged window always see that window's blocks.
        if (task.close_epoch) (void)shard->core->CloseArchiveEpoch();
        task.done->count_down();
      }
    }
    batch.clear();
  }
}

void ShardedPipeline::ParseWindow(std::span<const Event<std::string>> lines,
                                  Window* window) {
  const size_t n = lines.size();
  const size_t shard_count = shards_.size();
  window->parsed.resize(n);
  const size_t chunk = (n + shard_count - 1) / shard_count;
  size_t tasks = 0;
  for (size_t s = 0; s < shard_count && s * chunk < n; ++s) ++tasks;
  std::latch parse_done(static_cast<ptrdiff_t>(tasks));
  for (size_t s = 0; s < tasks; ++s) {
    const size_t begin = s * chunk;
    const size_t count = std::min(chunk, n - begin);
    shards_[s]->queue.Push(Command(ParseTask{lines.data() + begin,
                                             window->parsed.data() + begin,
                                             count, &parse_done}));
  }
  // The decoder overrides receiver time from TAG blocks; the stream-level
  // ingest timestamps (rate meter, end-to-end latency) use the original
  // arrival time, so keep it per line.
  window->ingest_times.resize(n);
  for (size_t i = 0; i < n; ++i) window->ingest_times[i] = lines[i].ingest_time;
  parse_done.wait();
}

std::unique_ptr<ShardedPipeline::Window> ShardedPipeline::AcquireWindow() {
  if (!window_pool_.empty()) {
    std::unique_ptr<Window> window = std::move(window_pool_.back());
    window_pool_.pop_back();
    return window;
  }
  return std::make_unique<Window>();
}

void ShardedPipeline::ReleaseWindow(std::unique_ptr<Window> window) {
  window->Reset();
  window_pool_.push_back(std::move(window));
}

void ShardedPipeline::AssembleAndRoute(Window* window) {
  const size_t shard_count = shards_.size();
  // Size the per-shard slots; the inner vectors are empty already — fresh
  // windows start empty and pooled ones were cleared by Window::Reset
  // (which keeps their capacity).
  window->routed.resize(shard_count);
  window->events.resize(shard_count);
  window->pairs.resize(shard_count);

  // Assembly is stateful across the whole stream (fragment groups can span
  // windows) and therefore runs here, in arrival order.
  for (size_t i = 0; i < window->parsed.size(); ++i) {
    std::optional<AisMessage> msg = decoder_.Assemble(window->parsed[i]);
    if (!msg.has_value()) continue;
    if (config_.enable_quality_assessment) quality_.Observe(*msg);
    const Timestamp ingest_time = window->ingest_times[i];

    if (const auto* sv = std::get_if<StaticVoyageData>(&*msg)) {
      window->routed[router_.ShardFor(sv->mmsi)].push_back(
          RoutedMessage{ingest_time, *sv});
      continue;
    }
    const PositionReport* pr = PositionReportOf(*msg);
    if (pr == nullptr) continue;
    metrics_.ingest_rate.Observe(ingest_time);
    window->routed[router_.ShardFor(pr->mmsi)].push_back(
        RoutedMessage{ingest_time, *pr});
  }
}

void ShardedPipeline::DispatchShardTasks(Window* window, bool close_epoch) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->queue.Push(Command(
        ShardTask{&window->routed[s], &window->events[s], &window->pairs[s],
                  window->shards_done.get(), kInvalidTimestamp, close_epoch}));
  }
}

void ShardedPipeline::DispatchWindow(Window* window) {
  AssembleAndRoute(window);
  window->shards_done =
      std::make_unique<std::latch>(static_cast<ptrdiff_t>(shards_.size()));
  DispatchShardTasks(window);
}

void ShardedPipeline::MergeWindow(Window* window, bool flush_pairs,
                                  std::vector<DetectedEvent>* out) {
  window->shards_done->wait();

  size_t event_count = 0, pair_count = 0;
  for (const auto& shard_events : window->events) {
    event_count += shard_events.size();
  }
  for (const auto& shard_pairs : window->pairs) {
    pair_count += shard_pairs.size();
  }
  std::vector<DetectedEvent> events;
  std::vector<PairObservation> pairs;
  events.reserve(event_count);
  pairs.reserve(pair_count);
  for (auto& shard_events : window->events) {
    events.insert(events.end(),
                  std::make_move_iterator(shard_events.begin()),
                  std::make_move_iterator(shard_events.end()));
  }
  for (auto& shard_pairs : window->pairs) {
    pairs.insert(pairs.end(), std::make_move_iterator(shard_pairs.begin()),
                 std::make_move_iterator(shard_pairs.end()));
  }

  // Same canonical window close the sequential pipeline performs — the
  // partitioner fans the pair scans out across grid cells when configured,
  // with byte-identical output (core/pair_grid.h).
  pair_grid_.CloseWindow(&pair_events_, &pairs, flush_pairs, &events);
  FireAlerts(events, &metrics_.alerts, alert_callback_);
  // Metrics are NOT refreshed here: when this window is merged the shards
  // may already be processing the next one, and their stats are only safe
  // to read at a quiescent point (end of IngestBatch / Finish).
  if (out->empty()) {
    *out = std::move(events);
  } else {
    out->insert(out->end(), std::make_move_iterator(events.begin()),
                std::make_move_iterator(events.end()));
  }
}

void ShardedPipeline::RefreshMetrics() {
  metrics_.decoder = decoder_.stats();
  metrics_.quality = quality_.report();
  metrics_.reconstruction = {};
  metrics_.synopses = {};
  metrics_.events = {};
  metrics_.enrichment = {};
  metrics_.enrichment_stage = {};
  metrics_.anomaly = {};
  metrics_.end_to_end_latency = LatencyReservoir();
  for (const auto& shard : shards_) {
    metrics_.reconstruction.Merge(shard->core->reconstruction_stats());
    metrics_.synopses.Merge(shard->core->synopses_stats());
    metrics_.events.Merge(shard->core->vessel_event_stats());
    metrics_.anomaly.Merge(shard->core->anomaly_stage_stats());
    // Engine counters and stage counters are snapshotted under their own
    // locks, so this is safe even while enrichment workers lag behind the
    // merged windows; Finish flushes the stages first, making the final
    // refresh complete.
    metrics_.enrichment.Merge(shard->core->enrichment_stats());
    metrics_.enrichment_stage.Merge(shard->core->enrichment_stage_stats());
    metrics_.end_to_end_latency.Merge(shard->core->end_to_end_latency());
  }
  metrics_.events.events_out += pair_events_.stats().events_out;
  metrics_.archive = {};
  for (const auto& shard : shards_) {
    if (shard->core->archive() != nullptr) {
      metrics_.archive.Merge(shard->core->archive()->stats());
    }
  }
  metrics_.pair_stage = pair_grid_.stats();
  metrics_.shard_hop = {};
  for (const auto& shard : shards_) {
    metrics_.shard_hop.Merge(shard->queue.stats());
  }
  metrics_.pair_hop = pair_grid_.hop_stats();
}

std::vector<DetectedEvent> ShardedPipeline::IngestBatch(
    std::span<const Event<std::string>> nmea) {
  std::vector<DetectedEvent> all;
  std::unique_ptr<Window> in_flight;
  size_t consumed = 0;
  // Arrival order: the newest line is the span's last (same value the
  // sequential pipeline tracks per IngestNmea call).
  if (!nmea.empty()) last_ingest_ = nmea.back().ingest_time;

  // Walk the span cutting windows exactly where the sequential pipeline
  // would (WindowMustClose over line count + ingest time). The coordinator
  // merges window k-1 (pair stage + re-sequencing) while the shards
  // process window k.
  while (consumed < nmea.size()) {
    const Timestamp first_ingest = pending_lines_.empty()
                                       ? nmea[consumed].ingest_time
                                       : pending_lines_.front().ingest_time;
    size_t count = pending_lines_.size();
    size_t end = consumed;  // one past the window's last line, once closed
    bool closed = false;
    while (end < nmea.size()) {
      ++count;
      const Timestamp newest = nmea[end].ingest_time;
      ++end;
      if (WindowMustClose(config_, count, first_ingest, newest)) {
        closed = true;
        break;
      }
    }
    if (!closed) break;  // span exhausted with the window still open

    std::unique_ptr<Window> window = AcquireWindow();
    if (pending_lines_.empty()) {
      ParseWindow(nmea.subspan(consumed, end - consumed), window.get());
      DispatchWindow(window.get());
    } else {
      pending_lines_.insert(pending_lines_.end(), nmea.begin() + consumed,
                            nmea.begin() + end);
      ParseWindow(std::span<const Event<std::string>>(pending_lines_),
                  window.get());
      // Parsed sentences are zero-copy views into the line buffers, so the
      // pending lines must stay alive until the window is assembled and
      // routed (DispatchWindow) — only then may they be dropped.
      DispatchWindow(window.get());
      pending_lines_.clear();
    }
    consumed = end;
    if (in_flight) {
      MergeWindow(in_flight.get(), /*flush_pairs=*/false, &all);
      ReleaseWindow(std::move(in_flight));
    }
    in_flight = std::move(window);
  }
  if (in_flight) {
    MergeWindow(in_flight.get(), /*flush_pairs=*/false, &all);
    ReleaseWindow(std::move(in_flight));
  }
  RefreshMetrics();  // quiescent: every dispatched window has been merged

  // Stash the open window's tail for the next batch / Finish.
  pending_lines_.insert(pending_lines_.end(), nmea.begin() + consumed,
                        nmea.end());
  return all;
}

std::vector<DetectedEvent> ShardedPipeline::Run(
    const std::vector<Event<std::string>>& nmea) {
  std::vector<DetectedEvent> all = IngestBatch(nmea);
  auto tail = Finish();
  all.insert(all.end(), tail.begin(), tail.end());
  return all;
}

std::vector<DetectedEvent> ShardedPipeline::Finish() {
  const size_t shard_count = shards_.size();
  Window window;
  const bool has_lines = !pending_lines_.empty();
  if (has_lines) {
    ParseWindow(std::span<const Event<std::string>>(pending_lines_), &window);
  }
  AssembleAndRoute(&window);
  // Each shard gets its window task (if any lines remain) plus a flush task,
  // queued back-to-back so both write the shard's slots in order.
  const size_t tasks_per_shard = has_lines ? 2 : 1;
  window.shards_done = std::make_unique<std::latch>(
      static_cast<ptrdiff_t>(shard_count * tasks_per_shard));
  if (has_lines) {
    // Tail lines + flush are ONE window: the flush task below closes the
    // archive epoch for both, matching the sequential pipeline's single
    // Finish-time window close.
    DispatchShardTasks(&window, /*close_epoch=*/false);
    pending_lines_.clear();
  }
  for (size_t s = 0; s < shard_count; ++s) {
    shards_[s]->queue.Push(Command(ShardTask{nullptr, &window.events[s],
                                             &window.pairs[s],
                                             window.shards_done.get(),
                                             last_ingest_}));
  }
  std::vector<DetectedEvent> all;
  MergeWindow(&window, /*flush_pairs=*/true, &all);
  // Shard workers are quiescent now; drain the enrichment side-stages so
  // the enriched stream (and its counters) are complete before the final
  // metric refresh.
  FlushEnrichment();
  RefreshMetrics();
  return all;
}

void ShardedPipeline::SetEnrichedSink(EnrichedSink sink) {
  for (auto& shard : shards_) shard->core->SetEnrichedSink(sink);
}

size_t ShardedPipeline::DrainEnriched(std::vector<EnrichedPoint>* out) {
  size_t n = 0;
  for (auto& shard : shards_) n += shard->core->DrainEnriched(out);
  return n;
}

size_t ShardedPipeline::DrainEnrichedOrdered(std::vector<EnrichedPoint>* out) {
  struct EnrichedLess {
    bool operator()(const Event<EnrichedPoint>& a,
                    const Event<EnrichedPoint>& b) const {
      if (a.payload.base.point.t != b.payload.base.point.t) {
        return a.payload.base.point.t < b.payload.base.point.t;
      }
      return a.payload.base.mmsi < b.payload.base.mmsi;
    }
  };
  // Per-shard drains are each sorted locally (delivery order interleaves
  // vessels), then k-way merged — reconstruction emits one point per
  // (vessel, timestamp), and vessels never span shards, so (t, MMSI) is a
  // total order over the merged stream.
  std::vector<StreamMerger<EnrichedPoint, EnrichedLess>::Source> sources;
  sources.reserve(shards_.size());
  size_t n = 0;
  for (auto& shard : shards_) {
    std::vector<EnrichedPoint> drained;
    shard->core->DrainEnriched(&drained);
    n += drained.size();
    std::vector<Event<EnrichedPoint>> wrapped;
    wrapped.reserve(drained.size());
    for (EnrichedPoint& p : drained) {
      wrapped.emplace_back(p.base.point.t, std::move(p));
    }
    std::stable_sort(wrapped.begin(), wrapped.end(), EnrichedLess{});
    sources.push_back(VectorSource<EnrichedPoint>(std::move(wrapped)));
  }
  StreamMerger<EnrichedPoint, EnrichedLess> merger(std::move(sources));
  out->reserve(out->size() + n);
  while (auto ev = merger.Next()) out->push_back(std::move(ev->payload));
  return n;
}

void ShardedPipeline::FlushEnrichment() {
  for (auto& shard : shards_) shard->core->FlushEnrichment();
}

std::vector<const ShardArchive*> ShardedPipeline::archive_view() const {
  std::vector<const ShardArchive*> partitions;
  partitions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    partitions.push_back(shard->core->archive());
  }
  return partitions;
}

PartitionedTrajectoryView ShardedPipeline::store_view() const {
  std::vector<const TrajectoryStore*> partitions;
  partitions.reserve(shards_.size());
  for (const auto& shard : shards_) partitions.push_back(&shard->core->store());
  return PartitionedTrajectoryView(std::move(partitions));
}

CoverageModel ShardedPipeline::MergedCoverage() const {
  CoverageModel merged(config_.coverage);
  for (const auto& shard : shards_) merged.Merge(shard->core->coverage());
  return merged;
}

std::vector<CriticalPoint> ShardedPipeline::MergedSynopsisLog() const {
  std::vector<CriticalPoint> merged;
  for (const auto& shard : shards_) {
    const auto& log = shard->core->synopsis_log();
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const CriticalPoint& a, const CriticalPoint& b) {
                     if (a.point.t != b.point.t) return a.point.t < b.point.t;
                     if (a.mmsi != b.mmsi) return a.mmsi < b.mmsi;
                     return static_cast<int>(a.type) < static_cast<int>(b.type);
                   });
  return merged;
}

}  // namespace marlin
