#include "core/sharded_pipeline.h"

#include <algorithm>

#include "common/fault.h"
#include "stream/merge.h"

namespace marlin {

namespace {

GridPairPartitioner::Options GridPairOptions(const PipelineConfig& config) {
  GridPairPartitioner::Options options;
  options.pair_threads = ResolveTopologyCount(config.pair_threads);
  options.cell_size_m = config.pair_cell_size_m;
  options.fabric = config.lock_free_fabric ? QueueFabric::kSpscRing
                                           : QueueFabric::kMutex;
  return options;
}

}  // namespace

ShardedPipeline::ShardedPipeline(const PipelineConfig& config,
                                 const Options& options,
                                 const ZoneDatabase* zones,
                                 const WeatherProvider* weather,
                                 const VesselRegistry* registry_a,
                                 const VesselRegistry* registry_b)
    : config_(config),
      options_(options),
      router_(ResolveTopologyCount(options.num_shards)),
      zones_(zones),
      weather_(weather),
      registry_a_(registry_a),
      registry_b_(registry_b),
      pair_events_(config.events),
      pair_grid_(config.events, GridPairOptions(config)),
      dead_letters_(config.dead_letter_capacity) {
  // Shards writing the legacy single LSM archive concurrently would race;
  // strip it. The serving tier's per-shard archives (config_.archive) take
  // its place: each shard core owns partition "shard_<i>".
  config_.store.archive = nullptr;
  rebuild_config_ = config_;
  rebuild_config_.archive.recover_on_open = false;
  const size_t n = router_.num_shards();
  // Capacity 1 cannot deadlock (workers always drain), it just serialises
  // the coordinator against the slowest shard; honor the caller's choice
  // (the ring fabric rounds up to its power-of-two floor of 2).
  const size_t capacity = std::max<size_t>(1, options_.queue_capacity);
  const QueueFabric fabric = config_.lock_free_fabric ? QueueFabric::kSpscRing
                                                      : QueueFabric::kMutex;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(
        i, fabric, capacity, config_.supervision.replay_max_messages);
    shard->core = std::make_unique<PipelineShardCore>(
        config_, /*async_enrichment=*/true, zones, weather, registry_a,
        registry_b, /*shard_index=*/i);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
}

ShardedPipeline::~ShardedPipeline() {
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void ShardedPipeline::WorkerLoop(Shard* shard) {
  std::vector<Command> batch;
  while (shard->queue.PopBatch(&batch, 8) > 0) {
    for (Command& cmd : batch) {
      if (auto* parse = std::get_if<ParseTask>(&cmd)) {
        ExecuteParseTask(shard, parse);
      } else {
        ExecuteShardTask(shard, std::get<ShardTask>(cmd));
      }
    }
    batch.clear();
  }
}

void ShardedPipeline::ExecuteParseTask(Shard* shard, ParseTask* parse) {
  size_t j = 0;
  try {
    for (; j < parse->count; ++j) {
      MARLIN_FAULT_POINT("shard.worker.parse");
      parse->out[j] = AisDecoder::Parse(
          parse->lines[j].payload, parse->lines[j].ingest_time,
          config_.fragment_group_by_source ? parse->lines[j].source_id : 0);
    }
  } catch (...) {
    // Parsing is stateless, so containment is the whole recovery: the
    // unparsed slots stay rejected (`!ok`) and surface downstream as
    // counted bad sentences + dead letters — data loss, but attributed.
    for (; j < parse->count; ++j) parse->out[j] = ParsedLine{};
    if (config_.supervision.enabled) {
      ++shard->sup.stats.failures;
      ++shard->sup.stats.failures_by_site["shard.worker.parse"];
    }
  }
  parse->done->count_down();
}

void ShardedPipeline::RunShardTask(Shard* shard, const ShardTask& task) {
  if (task.messages == nullptr) {
    MARLIN_FAULT_POINT("shard.worker.flush");
    shard->core->Flush(task.flush_ingest_time, task.events, task.pairs);
  } else {
    for (const RoutedMessage& m : *task.messages) {
      MARLIN_FAULT_POINT("shard.worker.message");
      if (const auto* pr = std::get_if<PositionReport>(&m.payload)) {
        shard->core->ProcessPosition(*pr, m.ingest_time, task.events,
                                     task.pairs);
      } else {
        shard->core->ProcessStatic(std::get<StaticVoyageData>(m.payload));
      }
    }
  }
  // Epoch close rides the worker thread (the archive's writer) and
  // precedes the latch, so once the coordinator observes the window
  // done, the new snapshot is published — readers joining after a
  // merged window always see that window's blocks.
  if (task.close_epoch) {
    MARLIN_FAULT_POINT("shard.worker.close_epoch");
    (void)shard->core->CloseArchiveEpoch();
  }
}

void ShardedPipeline::ExecuteShardTask(Shard* shard, ShardTask& task) {
  if (!config_.supervision.enabled) {
    // Pre-supervision behavior exactly: no buffering, no containment.
    RunShardTask(shard, task);
    task.done->count_down();
    return;
  }
  ShardSupervisor& sup = shard->sup;
  if (sup.degraded) {
    const size_t n = task.messages != nullptr ? task.messages->size() : 0;
    if (n > 0) {
      sup.stats.degraded_dropped_messages += n;
      dead_letters_.PushCount(DeadLetterReason::kDegradedDrop, n);
    }
    task.events->clear();
    task.pairs->clear();
    task.done->count_down();
    return;
  }
  // Buffer the raw input BEFORE executing: a mid-task crash leaves the core
  // half-advanced, so recovery must rebuild from scratch and replay the
  // full history *including* this task.
  sup.replay.Append(WindowRecord{
      task.window_seq, task.messages == nullptr, task.flush_ingest_time,
      task.close_epoch,
      task.messages != nullptr ? *task.messages
                               : std::vector<RoutedMessage>{}});
  bool replayed = false;
  while (true) {
    std::string failure_site;
    try {
      if (!replayed) {
        RunShardTask(shard, task);
      } else {
        ReplayShardHistory(shard, task);
      }
      break;
    } catch (const FaultInjectedError& e) {
      failure_site = e.site();
    } catch (const std::exception& e) {
      failure_site = e.what();
    } catch (...) {
      failure_site = "unknown";
    }
    ++sup.stats.failures;
    ++sup.stats.failures_by_site[failure_site];
    if (sup.stats.restarts >= config_.supervision.restart_budget ||
        sup.replay.truncated()) {
      EnterDegradedMode(shard, task);
      break;
    }
    ++sup.stats.restarts;
    RebuildShardCore(shard);
    replayed = true;
  }
  task.done->count_down();
}

void ShardedPipeline::RebuildShardCore(Shard* shard) {
  ShardSupervisor& sup = shard->sup;
  // Harvest what the dying core can still account for: points whose
  // enrichment was suppressed by earlier replays, plus enriched output that
  // was delivered to the drain buffer but never drained by the user (a
  // registered sink already received everything, so the drain is empty
  // then). Both are data at risk, not silently lost.
  sup.stats.enrichment_suppressed += shard->core->enrichment_suppressed_count();
  shard->core->FlushEnrichment();
  std::vector<EnrichedPoint> orphaned;
  shard->core->DrainEnriched(&orphaned);
  sup.stats.enrichment_suppressed += orphaned.size();
  // Destroy before constructing: the replacement reopens the same archive
  // partition, and two live LSM stores on one directory would fight over
  // the WAL.
  shard->core.reset();
  shard->core = std::make_unique<PipelineShardCore>(
      rebuild_config_, /*async_enrichment=*/true, zones_, weather_,
      registry_a_, registry_b_, shard->index);
  if (enriched_sink_) shard->core->SetEnrichedSink(enriched_sink_);
}

void ShardedPipeline::ReplayShardHistory(Shard* shard, ShardTask& task) {
  ShardSupervisor& sup = shard->sup;
  // Replayed points were already submitted to the (previous core's)
  // enrichment stage once; re-submitting would duplicate downstream
  // deliveries, so they skip the stage and are counted instead.
  shard->core->SetEnrichmentSuppressed(true);
  // The current task's slots may hold output from the failed attempt; its
  // replayed records regenerate them in full. (Finish's tail + flush tasks
  // share slots AND a seq, so clearing once here is also correct when the
  // flush half crashes after the tail half succeeded.)
  task.events->clear();
  task.pairs->clear();
  std::vector<DetectedEvent> stale_events;
  std::vector<PairObservation> stale_pairs;
  for (const WindowRecord& record : sup.replay.windows()) {
    const bool current = record.seq == task.window_seq;
    std::vector<DetectedEvent>* events =
        current ? task.events : &stale_events;
    std::vector<PairObservation>* pairs = current ? task.pairs : &stale_pairs;
    if (record.is_flush) {
      shard->core->Flush(record.flush_ingest_time, events, pairs);
    } else {
      for (const RoutedMessage& m : record.messages) {
        if (const auto* pr = std::get_if<PositionReport>(&m.payload)) {
          shard->core->ProcessPosition(*pr, m.ingest_time, events, pairs);
        } else {
          shard->core->ProcessStatic(std::get<StaticVoyageData>(m.payload));
        }
      }
    }
    if (record.close_epoch) (void)shard->core->CloseArchiveEpoch();
    ++sup.stats.windows_replayed;
    sup.stats.messages_replayed += record.messages.size();
    // Older windows' events/pairs were already merged and emitted once;
    // the replica output exists only to advance the core's state.
    stale_events.clear();
    stale_pairs.clear();
  }
  shard->core->SetEnrichmentSuppressed(false);
}

void ShardedPipeline::EnterDegradedMode(Shard* shard, ShardTask& task) {
  ShardSupervisor& sup = shard->sup;
  sup.degraded = true;
  ++sup.stats.degraded_workers;
  sup.replay.Clear();
  task.events->clear();
  task.pairs->clear();
  const size_t n = task.messages != nullptr ? task.messages->size() : 0;
  if (n > 0) {
    sup.stats.degraded_dropped_messages += n;
    dead_letters_.PushCount(DeadLetterReason::kDegradedDrop, n);
  }
}

void ShardedPipeline::ParseWindow(std::span<const Event<std::string>> lines,
                                  Window* window) {
  const size_t n = lines.size();
  const size_t shard_count = shards_.size();
  window->parsed.resize(n);
  const size_t chunk = (n + shard_count - 1) / shard_count;
  size_t tasks = 0;
  for (size_t s = 0; s < shard_count && s * chunk < n; ++s) ++tasks;
  std::latch parse_done(static_cast<ptrdiff_t>(tasks));
  for (size_t s = 0; s < tasks; ++s) {
    const size_t begin = s * chunk;
    const size_t count = std::min(chunk, n - begin);
    shards_[s]->queue.Push(Command(ParseTask{lines.data() + begin,
                                             window->parsed.data() + begin,
                                             count, &parse_done}));
  }
  // The decoder overrides receiver time from TAG blocks; the stream-level
  // ingest timestamps (rate meter, end-to-end latency) use the original
  // arrival time, so keep it per line.
  window->ingest_times.resize(n);
  for (size_t i = 0; i < n; ++i) window->ingest_times[i] = lines[i].ingest_time;
  parse_done.wait();
}

std::unique_ptr<ShardedPipeline::Window> ShardedPipeline::AcquireWindow() {
  if (!window_pool_.empty()) {
    std::unique_ptr<Window> window = std::move(window_pool_.back());
    window_pool_.pop_back();
    return window;
  }
  return std::make_unique<Window>();
}

void ShardedPipeline::ReleaseWindow(std::unique_ptr<Window> window) {
  window->Reset();
  window_pool_.push_back(std::move(window));
}

void ShardedPipeline::AssembleAndRoute(
    Window* window, std::span<const Event<std::string>> lines) {
  const size_t shard_count = shards_.size();
  // Size the per-shard slots; the inner vectors are empty already — fresh
  // windows start empty and pooled ones were cleared by Window::Reset
  // (which keeps their capacity).
  window->routed.resize(shard_count);
  window->events.resize(shard_count);
  window->pairs.resize(shard_count);

  // Assembly is stateful across the whole stream (fragment groups can span
  // windows) and therefore runs here, in arrival order. Rejected lines are
  // dead-lettered from the raw window at the same index, with the same
  // classification — and therefore the same ledger — as the sequential
  // pipeline's ingest path.
  for (size_t i = 0; i < window->parsed.size(); ++i) {
    const ParsedLine& parsed = window->parsed[i];
    const Timestamp ingest_time = window->ingest_times[i];
    if (!parsed.ok) {
      dead_letters_.Push(DeadLetterReason::kBadSentence, lines[i].payload,
                         ingest_time);
    }
    const uint64_t bad_payloads_before = decoder_.stats().bad_payloads;
    std::optional<AisMessage> msg = decoder_.Assemble(parsed);
    if (parsed.ok && decoder_.stats().bad_payloads > bad_payloads_before) {
      dead_letters_.Push(DeadLetterReason::kBadPayload, lines[i].payload,
                         ingest_time);
    }
    if (!msg.has_value()) continue;
    if (config_.enable_quality_assessment) quality_.Observe(*msg);

    if (const auto* sv = std::get_if<StaticVoyageData>(&*msg)) {
      window->routed[router_.ShardFor(sv->mmsi)].push_back(
          RoutedMessage{ingest_time, *sv});
      continue;
    }
    const PositionReport* pr = PositionReportOf(*msg);
    if (pr == nullptr) continue;
    metrics_.ingest_rate.Observe(ingest_time);
    window->routed[router_.ShardFor(pr->mmsi)].push_back(
        RoutedMessage{ingest_time, *pr});
  }
}

void ShardedPipeline::DispatchShardTasks(Window* window, uint64_t window_seq,
                                         bool close_epoch) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->queue.Push(Command(
        ShardTask{&window->routed[s], &window->events[s], &window->pairs[s],
                  window->shards_done.get(), kInvalidTimestamp, close_epoch,
                  window_seq}));
  }
}

void ShardedPipeline::DispatchWindow(Window* window,
                                     std::span<const Event<std::string>> lines) {
  AssembleAndRoute(window, lines);
  window->shards_done =
      std::make_unique<std::latch>(static_cast<ptrdiff_t>(shards_.size()));
  DispatchShardTasks(window, ++next_window_seq_);
}

void ShardedPipeline::MergeWindow(Window* window, bool flush_pairs,
                                  std::vector<DetectedEvent>* out) {
  window->shards_done->wait();

  size_t event_count = 0, pair_count = 0;
  for (const auto& shard_events : window->events) {
    event_count += shard_events.size();
  }
  for (const auto& shard_pairs : window->pairs) {
    pair_count += shard_pairs.size();
  }
  std::vector<DetectedEvent> events;
  std::vector<PairObservation> pairs;
  events.reserve(event_count);
  pairs.reserve(pair_count);
  for (auto& shard_events : window->events) {
    events.insert(events.end(),
                  std::make_move_iterator(shard_events.begin()),
                  std::make_move_iterator(shard_events.end()));
  }
  for (auto& shard_pairs : window->pairs) {
    pairs.insert(pairs.end(), std::make_move_iterator(shard_pairs.begin()),
                 std::make_move_iterator(shard_pairs.end()));
  }

  // Same canonical window close the sequential pipeline performs — the
  // partitioner fans the pair scans out across grid cells when configured,
  // with byte-identical output (core/pair_grid.h).
  pair_grid_.CloseWindow(&pair_events_, &pairs, flush_pairs, &events);
  FireAlerts(events, &metrics_.alerts, alert_callback_);
  // Metrics are NOT refreshed here: when this window is merged the shards
  // may already be processing the next one, and their stats are only safe
  // to read at a quiescent point (end of IngestBatch / Finish).
  if (out->empty()) {
    *out = std::move(events);
  } else {
    out->insert(out->end(), std::make_move_iterator(events.begin()),
                std::make_move_iterator(events.end()));
  }
}

void ShardedPipeline::RefreshMetrics() {
  metrics_.decoder = decoder_.stats();
  metrics_.quality = quality_.report();
  metrics_.reconstruction = {};
  metrics_.synopses = {};
  metrics_.events = {};
  metrics_.enrichment = {};
  metrics_.enrichment_stage = {};
  metrics_.anomaly = {};
  metrics_.end_to_end_latency = LatencyReservoir();
  for (const auto& shard : shards_) {
    metrics_.reconstruction.Merge(shard->core->reconstruction_stats());
    metrics_.synopses.Merge(shard->core->synopses_stats());
    metrics_.events.Merge(shard->core->vessel_event_stats());
    metrics_.anomaly.Merge(shard->core->anomaly_stage_stats());
    // Engine counters and stage counters are snapshotted under their own
    // locks, so this is safe even while enrichment workers lag behind the
    // merged windows; Finish flushes the stages first, making the final
    // refresh complete.
    metrics_.enrichment.Merge(shard->core->enrichment_stats());
    metrics_.enrichment_stage.Merge(shard->core->enrichment_stage_stats());
    metrics_.end_to_end_latency.Merge(shard->core->end_to_end_latency());
  }
  metrics_.events.events_out += pair_events_.stats().events_out;
  metrics_.archive = {};
  for (const auto& shard : shards_) {
    if (shard->core->archive() != nullptr) {
      metrics_.archive.Merge(shard->core->archive()->stats());
    }
  }
  metrics_.pair_stage = pair_grid_.stats();
  metrics_.shard_hop = {};
  for (const auto& shard : shards_) {
    metrics_.shard_hop.Merge(shard->queue.stats());
  }
  metrics_.pair_hop = pair_grid_.hop_stats();
  // Health roll-up. Supervisor stats are worker-owned; this runs at the
  // same quiescent points as the per-core merges above.
  metrics_.health = PipelineHealth{};
  for (const auto& shard : shards_) {
    metrics_.health.supervisor.Merge(shard->sup.stats);
    metrics_.health.supervisor.enrichment_suppressed +=
        shard->core->enrichment_suppressed_count();
  }
  metrics_.health.supervisor.pair_windows_recovered =
      pair_grid_.stats().recovered_windows;
  metrics_.health.dead_letter = dead_letters_.stats();
  metrics_.health.enrichment_transform_failures =
      metrics_.enrichment_stage.transform_failed;
  metrics_.health.archive_put_failures = metrics_.archive.put_failures;
  metrics_.health.archive_points_at_risk = metrics_.archive.points_at_risk;
}

std::vector<DetectedEvent> ShardedPipeline::IngestBatch(
    std::span<const Event<std::string>> nmea) {
  std::vector<DetectedEvent> all;
  std::unique_ptr<Window> in_flight;
  size_t consumed = 0;
  // Arrival order: the newest line is the span's last (same value the
  // sequential pipeline tracks per IngestNmea call).
  if (!nmea.empty()) last_ingest_ = nmea.back().ingest_time;

  // Walk the span cutting windows exactly where the sequential pipeline
  // would (WindowMustClose over line count + ingest time). The coordinator
  // merges window k-1 (pair stage + re-sequencing) while the shards
  // process window k.
  while (consumed < nmea.size()) {
    const Timestamp first_ingest = pending_lines_.empty()
                                       ? nmea[consumed].ingest_time
                                       : pending_lines_.front().ingest_time;
    size_t count = pending_lines_.size();
    size_t end = consumed;  // one past the window's last line, once closed
    bool closed = false;
    while (end < nmea.size()) {
      ++count;
      const Timestamp newest = nmea[end].ingest_time;
      ++end;
      if (WindowMustClose(config_, count, first_ingest, newest)) {
        closed = true;
        break;
      }
    }
    if (!closed) break;  // span exhausted with the window still open

    std::unique_ptr<Window> window = AcquireWindow();
    if (pending_lines_.empty()) {
      const auto window_lines = nmea.subspan(consumed, end - consumed);
      ParseWindow(window_lines, window.get());
      DispatchWindow(window.get(), window_lines);
    } else {
      pending_lines_.insert(pending_lines_.end(), nmea.begin() + consumed,
                            nmea.begin() + end);
      const auto window_lines =
          std::span<const Event<std::string>>(pending_lines_);
      ParseWindow(window_lines, window.get());
      // Parsed sentences are zero-copy views into the line buffers, so the
      // pending lines must stay alive until the window is assembled and
      // routed (DispatchWindow) — only then may they be dropped.
      DispatchWindow(window.get(), window_lines);
      pending_lines_.clear();
    }
    consumed = end;
    if (in_flight) {
      MergeWindow(in_flight.get(), /*flush_pairs=*/false, &all);
      ReleaseWindow(std::move(in_flight));
    }
    in_flight = std::move(window);
  }
  if (in_flight) {
    MergeWindow(in_flight.get(), /*flush_pairs=*/false, &all);
    ReleaseWindow(std::move(in_flight));
  }
  RefreshMetrics();  // quiescent: every dispatched window has been merged

  // Stash the open window's tail for the next batch / Finish.
  pending_lines_.insert(pending_lines_.end(), nmea.begin() + consumed,
                        nmea.end());
  return all;
}

std::vector<DetectedEvent> ShardedPipeline::Run(
    const std::vector<Event<std::string>>& nmea) {
  std::vector<DetectedEvent> all = IngestBatch(nmea);
  auto tail = Finish();
  all.insert(all.end(), tail.begin(), tail.end());
  return all;
}

std::vector<DetectedEvent> ShardedPipeline::Finish() {
  const size_t shard_count = shards_.size();
  Window window;
  const bool has_lines = !pending_lines_.empty();
  if (has_lines) {
    ParseWindow(std::span<const Event<std::string>>(pending_lines_), &window);
  }
  AssembleAndRoute(&window,
                   std::span<const Event<std::string>>(pending_lines_));
  // Each shard gets its window task (if any lines remain) plus a flush task,
  // queued back-to-back so both write the shard's slots in order. The two
  // tasks share one window sequence — they are one window, and a supervised
  // replay must route both records' output into the shared slots.
  const uint64_t window_seq = ++next_window_seq_;
  const size_t tasks_per_shard = has_lines ? 2 : 1;
  window.shards_done = std::make_unique<std::latch>(
      static_cast<ptrdiff_t>(shard_count * tasks_per_shard));
  if (has_lines) {
    // Tail lines + flush are ONE window: the flush task below closes the
    // archive epoch for both, matching the sequential pipeline's single
    // Finish-time window close.
    DispatchShardTasks(&window, window_seq, /*close_epoch=*/false);
    pending_lines_.clear();
  }
  for (size_t s = 0; s < shard_count; ++s) {
    shards_[s]->queue.Push(Command(
        ShardTask{nullptr, &window.events[s], &window.pairs[s],
                  window.shards_done.get(), last_ingest_,
                  /*close_epoch=*/true, window_seq}));
  }
  std::vector<DetectedEvent> all;
  MergeWindow(&window, /*flush_pairs=*/true, &all);
  // Shard workers are quiescent now; drain the enrichment side-stages so
  // the enriched stream (and its counters) are complete before the final
  // metric refresh.
  FlushEnrichment();
  RefreshMetrics();
  return all;
}

void ShardedPipeline::SetEnrichedSink(EnrichedSink sink) {
  enriched_sink_ = std::move(sink);  // kept: rebuilt cores re-install it
  for (auto& shard : shards_) shard->core->SetEnrichedSink(enriched_sink_);
}

size_t ShardedPipeline::DrainEnriched(std::vector<EnrichedPoint>* out) {
  size_t n = 0;
  for (auto& shard : shards_) n += shard->core->DrainEnriched(out);
  return n;
}

size_t ShardedPipeline::DrainEnrichedOrdered(std::vector<EnrichedPoint>* out) {
  struct EnrichedLess {
    bool operator()(const Event<EnrichedPoint>& a,
                    const Event<EnrichedPoint>& b) const {
      if (a.payload.base.point.t != b.payload.base.point.t) {
        return a.payload.base.point.t < b.payload.base.point.t;
      }
      return a.payload.base.mmsi < b.payload.base.mmsi;
    }
  };
  // Per-shard drains are each sorted locally (delivery order interleaves
  // vessels), then k-way merged — reconstruction emits one point per
  // (vessel, timestamp), and vessels never span shards, so (t, MMSI) is a
  // total order over the merged stream.
  std::vector<StreamMerger<EnrichedPoint, EnrichedLess>::Source> sources;
  sources.reserve(shards_.size());
  size_t n = 0;
  for (auto& shard : shards_) {
    std::vector<EnrichedPoint> drained;
    shard->core->DrainEnriched(&drained);
    n += drained.size();
    std::vector<Event<EnrichedPoint>> wrapped;
    wrapped.reserve(drained.size());
    for (EnrichedPoint& p : drained) {
      wrapped.emplace_back(p.base.point.t, std::move(p));
    }
    std::stable_sort(wrapped.begin(), wrapped.end(), EnrichedLess{});
    sources.push_back(VectorSource<EnrichedPoint>(std::move(wrapped)));
  }
  StreamMerger<EnrichedPoint, EnrichedLess> merger(std::move(sources));
  out->reserve(out->size() + n);
  while (auto ev = merger.Next()) out->push_back(std::move(ev->payload));
  return n;
}

void ShardedPipeline::FlushEnrichment() {
  for (auto& shard : shards_) shard->core->FlushEnrichment();
}

std::vector<const ShardArchive*> ShardedPipeline::archive_view() const {
  std::vector<const ShardArchive*> partitions;
  partitions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    partitions.push_back(shard->core->archive());
  }
  return partitions;
}

PartitionedTrajectoryView ShardedPipeline::store_view() const {
  std::vector<const TrajectoryStore*> partitions;
  partitions.reserve(shards_.size());
  for (const auto& shard : shards_) partitions.push_back(&shard->core->store());
  return PartitionedTrajectoryView(std::move(partitions));
}

CoverageModel ShardedPipeline::MergedCoverage() const {
  CoverageModel merged(config_.coverage);
  for (const auto& shard : shards_) merged.Merge(shard->core->coverage());
  return merged;
}

std::vector<CriticalPoint> ShardedPipeline::MergedSynopsisLog() const {
  std::vector<CriticalPoint> merged;
  for (const auto& shard : shards_) {
    const auto& log = shard->core->synopsis_log();
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const CriticalPoint& a, const CriticalPoint& b) {
                     if (a.point.t != b.point.t) return a.point.t < b.point.t;
                     if (a.mmsi != b.mmsi) return a.mmsi < b.mmsi;
                     return static_cast<int>(a.type) < static_cast<int>(b.type);
                   });
  return merged;
}

}  // namespace marlin
