#ifndef MARLIN_CORE_SHARD_H_
#define MARLIN_CORE_SHARD_H_

/// \file shard.h
/// \brief The per-MMSI stateful half of the Figure-2 pipeline, factored out
/// of `MaritimePipeline` so it can run once (sequential reference) or N
/// times (one instance per shard of a `ShardedPipeline`).
///
/// Every stage whose state is keyed by vessel lives here: trajectory
/// reconstruction, synopses, single-vessel event rules, enrichment, the
/// store partition, and the coverage model. Message decoding (stateful
/// across the *whole* stream) and vessel-pair rules (global live picture)
/// stay with the pipeline coordinator.
///
/// A shard core is strictly single-threaded on its ingest path: determinism
/// of the sharded pipeline rests on each vessel's reports flowing through
/// exactly one core in arrival order. The one exception is *enrichment*,
/// which runs as an `AsyncSideStage` off the hot path: clean points are
/// handed to a per-core worker through a bounded drop-oldest queue, so a
/// slow context source (weather service, registry) can never stall ingest.
/// The sequential pipeline runs the same stage synchronously, which keeps
/// the 1-shard == sequential determinism guarantee intact for enriched
/// output.

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "ais/types.h"
#include "context/registry.h"
#include "context/weather.h"
#include "context/zones.h"
#include "core/anomaly.h"
#include "core/enrichment.h"
#include "core/events.h"
#include "core/integrity.h"
#include "core/reconstruction.h"
#include "core/synopses.h"
#include "storage/archive.h"
#include "storage/trajectory_store.h"
#include "stream/rate.h"
#include "stream/side_stage.h"
#include "uncertainty/openworld.h"

namespace marlin {

struct PipelineConfig;  // core/pipeline.h

/// \brief Consumer callback for the enriched output stream. In the sharded
/// pipeline it is invoked on the enrichment worker threads (one per shard)
/// and must be thread-safe; per-vessel event-time order is preserved either
/// way, because every vessel lives on exactly one FIFO stage.
using EnrichedSink = std::function<void(const EnrichedPoint&)>;

/// \brief One shard's worth of per-vessel pipeline state.
class PipelineShardCore {
 public:
  /// \brief Context sources may be null; the corresponding enrichment is
  /// skipped. `config` must outlive the core. `async_enrichment` selects
  /// whether the enrichment side-stage runs on its own worker (sharded
  /// pipeline) or inline on the caller thread (sequential reference).
  /// `shard_index` names this core's partition of the historical archive
  /// (directory suffix "shard_<i>"); the sequential pipeline is index 0.
  PipelineShardCore(const PipelineConfig& config, bool async_enrichment,
                    const ZoneDatabase* zones, const WeatherProvider* weather,
                    const VesselRegistry* registry_a,
                    const VesselRegistry* registry_b, size_t shard_index = 0);

  // Self-referential (config reference, enrichment_ points at
  // source_quality_): copying or moving would leave dangling internals.
  PipelineShardCore(const PipelineShardCore&) = delete;
  PipelineShardCore& operator=(const PipelineShardCore&) = delete;

  /// \brief Registers static & voyage data (ship type → event rules).
  void ProcessStatic(const StaticVoyageData& sv);

  /// \brief Runs one position report through reconstruction → synopses →
  /// store → enrichment → vessel event rules. Vessel events are appended to
  /// `events`; one `PairObservation` per clean point is appended to `pairs`
  /// for the downstream pair-rule stage.
  void ProcessPosition(const PositionReport& report, Timestamp ingest_time,
                       std::vector<DetectedEvent>* events,
                       std::vector<PairObservation>* pairs);

  /// \brief Flushes reorder buffers at end of stream. `ingest_time` is the
  /// stream's last observed ingest timestamp: flushed points enter the
  /// latency reservoir against it, so end-of-stream points are measured the
  /// same way streamed ones are (kInvalidTimestamp skips the observation).
  void Flush(Timestamp ingest_time, std::vector<DetectedEvent>* events,
             std::vector<PairObservation>* pairs);

  /// \brief Registers the enriched-output consumer. Install before the
  /// first ProcessPosition; with async enrichment it runs on the stage
  /// worker thread.
  void SetEnrichedSink(EnrichedSink sink) {
    enrichment_stage_.SetSink(std::move(sink));
  }

  /// \brief Moves buffered enriched points (delivery order) into `out`;
  /// returns how many. Only meaningful when no sink is registered.
  size_t DrainEnriched(std::vector<EnrichedPoint>* out) {
    return enrichment_stage_.Drain(out);
  }

  /// \brief Barrier: returns once every submitted point has been enriched
  /// (delivered to the sink / drain buffer) or counted as dropped.
  void FlushEnrichment() { enrichment_stage_.Flush(); }

  /// \brief While set, clean points skip the enrichment side-stage and are
  /// counted instead. The supervisor sets this during a restart's history
  /// replay: re-submitting replayed points would emit duplicate enriched
  /// output downstream (the original submissions already left the stage),
  /// so they are suppressed and surface in `PipelineHealth` as data at
  /// risk. Writer thread only.
  void SetEnrichmentSuppressed(bool suppressed) {
    enrichment_suppressed_ = suppressed;
  }
  uint64_t enrichment_suppressed_count() const {
    return enrichment_suppressed_count_;
  }

  /// \brief Closes the historical archive's current epoch: cuts the staged
  /// points into position blocks, persists them, and publishes a new read
  /// snapshot. Called by both pipelines at every window close, so epoch
  /// boundaries equal window boundaries — the serving tier's determinism
  /// hinges on that alignment. No-op without an archive.
  Status CloseArchiveEpoch() {
    return archive_ != nullptr ? archive_->CloseEpoch() : Status::OK();
  }

  /// \brief This shard's archive partition; null when archiving is off.
  const ShardArchive* archive() const { return archive_.get(); }

  const TrajectoryStore& store() const { return store_; }
  const CoverageModel& coverage() const { return coverage_; }
  const std::vector<CriticalPoint>& synopsis_log() const {
    return synopsis_log_;
  }
  const TrajectoryReconstructor::Stats& reconstruction_stats() const {
    return reconstructor_.stats();
  }
  const SynopsisEngine::Stats& synopses_stats() const {
    return synopses_.stats();
  }
  const VesselEventEngine::Stats& vessel_event_stats() const {
    return vessel_events_.stats();
  }
  /// \brief Combined anomaly & integrity stage counters (zeros when the
  /// stage is disabled). Mergeable across shards.
  AnomalyStageStats anomaly_stage_stats() const {
    AnomalyStageStats stats = anomaly_.stats();
    stats.integrity = integrity_.stats();
    stats.events_out += integrity_.stats().events_out;
    return stats;
  }
  /// \brief Snapshot of the enrichment join counters. The engine itself is
  /// touched only by the stage transform; the transform publishes a copy of
  /// the counters after each point, so reading here never waits on a slow
  /// context lookup in progress.
  EnrichmentEngine::Stats enrichment_stats() const {
    std::lock_guard<std::mutex> lock(enrichment_mutex_);
    return enrichment_stats_snapshot_;
  }
  /// \brief Snapshot of the side-stage counters (queue drops, depth,
  /// submit→delivery latency).
  SideStageStats enrichment_stage_stats() const {
    return enrichment_stage_.stats();
  }
  const LatencyReservoir& end_to_end_latency() const { return latency_; }

 private:
  void ProcessPoint(const ReconstructedPoint& rp,
                    std::vector<DetectedEvent>* events,
                    std::vector<PairObservation>* pairs);

  const PipelineConfig& config_;
  TrajectoryReconstructor reconstructor_;
  SynopsisEngine synopses_;
  VesselEventEngine vessel_events_;
  /// Anomaly & integrity stage (PipelineConfig::enable_anomaly): the
  /// integrity scorer sees raw reports before reconstruction; the
  /// behaviour-change detector consumes reconstruction output downstream
  /// of the synopsis stage. Both are keyed per MMSI only — the sharding
  /// invariance argument of every other stage in this core.
  IntegrityScorer integrity_;
  BehaviorChangeDetector anomaly_;
  SourceQualityModel source_quality_;
  /// Engine + quality model belong to the stage transform alone (the
  /// worker thread in async mode, the producer thread in sync mode); the
  /// mutex guards only the published counter snapshot below, so readers
  /// never block behind a slow context lookup.
  mutable std::mutex enrichment_mutex_;
  EnrichmentEngine enrichment_;
  EnrichmentEngine::Stats enrichment_stats_snapshot_;
  AsyncSideStage<ReconstructedPoint, EnrichedPoint> enrichment_stage_;
  TrajectoryStore store_;
  /// Historical serving-tier partition (null when PipelineConfig::archive is
  /// disabled). Written only by this core's worker thread; read via its
  /// lock-free snapshots by the query layer.
  std::unique_ptr<ShardArchive> archive_;
  CoverageModel coverage_;
  LatencyReservoir latency_;  ///< event time → processed
  // Supervisor replay support (see SetEnrichmentSuppressed).
  bool enrichment_suppressed_ = false;
  uint64_t enrichment_suppressed_count_ = 0;
  std::vector<CriticalPoint> synopsis_log_;
  // Scratch buffers reused across calls to avoid per-report allocation.
  std::vector<ReconstructedPoint> points_scratch_;
  std::vector<RejectedReport> rejections_scratch_;
  std::vector<CriticalPoint> critical_scratch_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_SHARD_H_
