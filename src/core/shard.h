#ifndef MARLIN_CORE_SHARD_H_
#define MARLIN_CORE_SHARD_H_

/// \file shard.h
/// \brief The per-MMSI stateful half of the Figure-2 pipeline, factored out
/// of `MaritimePipeline` so it can run once (sequential reference) or N
/// times (one instance per shard of a `ShardedPipeline`).
///
/// Every stage whose state is keyed by vessel lives here: trajectory
/// reconstruction, synopses, single-vessel event rules, enrichment, the
/// store partition, and the coverage model. Message decoding (stateful
/// across the *whole* stream) and vessel-pair rules (global live picture)
/// stay with the pipeline coordinator.
///
/// A shard core is strictly single-threaded: determinism of the sharded
/// pipeline rests on each vessel's reports flowing through exactly one core
/// in arrival order.

#include <vector>

#include "ais/types.h"
#include "context/registry.h"
#include "context/weather.h"
#include "context/zones.h"
#include "core/enrichment.h"
#include "core/events.h"
#include "core/reconstruction.h"
#include "core/synopses.h"
#include "storage/trajectory_store.h"
#include "stream/rate.h"
#include "uncertainty/openworld.h"

namespace marlin {

struct PipelineConfig;  // core/pipeline.h

/// \brief One shard's worth of per-vessel pipeline state.
class PipelineShardCore {
 public:
  /// \brief Context sources may be null; the corresponding enrichment is
  /// skipped. `config` must outlive the core.
  PipelineShardCore(const PipelineConfig& config, const ZoneDatabase* zones,
                    const WeatherProvider* weather,
                    const VesselRegistry* registry_a,
                    const VesselRegistry* registry_b);

  // Self-referential (config reference, enrichment_ points at
  // source_quality_): copying or moving would leave dangling internals.
  PipelineShardCore(const PipelineShardCore&) = delete;
  PipelineShardCore& operator=(const PipelineShardCore&) = delete;

  /// \brief Registers static & voyage data (ship type → event rules).
  void ProcessStatic(const StaticVoyageData& sv);

  /// \brief Runs one position report through reconstruction → synopses →
  /// store → enrichment → vessel event rules. Vessel events are appended to
  /// `events`; one `PairObservation` per clean point is appended to `pairs`
  /// for the downstream pair-rule stage.
  void ProcessPosition(const PositionReport& report, Timestamp ingest_time,
                       std::vector<DetectedEvent>* events,
                       std::vector<PairObservation>* pairs);

  /// \brief Flushes reorder buffers at end of stream.
  void Flush(std::vector<DetectedEvent>* events,
             std::vector<PairObservation>* pairs);

  const TrajectoryStore& store() const { return store_; }
  const CoverageModel& coverage() const { return coverage_; }
  const std::vector<CriticalPoint>& synopsis_log() const {
    return synopsis_log_;
  }
  const TrajectoryReconstructor::Stats& reconstruction_stats() const {
    return reconstructor_.stats();
  }
  const SynopsisEngine::Stats& synopses_stats() const {
    return synopses_.stats();
  }
  const VesselEventEngine::Stats& vessel_event_stats() const {
    return vessel_events_.stats();
  }
  const EnrichmentEngine::Stats& enrichment_stats() const {
    return enrichment_.stats();
  }
  const LatencyReservoir& end_to_end_latency() const { return latency_; }

 private:
  void ProcessPoint(const ReconstructedPoint& rp,
                    std::vector<DetectedEvent>* events,
                    std::vector<PairObservation>* pairs);

  const PipelineConfig& config_;
  TrajectoryReconstructor reconstructor_;
  SynopsisEngine synopses_;
  VesselEventEngine vessel_events_;
  SourceQualityModel source_quality_;
  EnrichmentEngine enrichment_;
  TrajectoryStore store_;
  CoverageModel coverage_;
  LatencyReservoir latency_;  ///< event time → processed
  std::vector<CriticalPoint> synopsis_log_;
  // Scratch buffers reused across calls to avoid per-report allocation.
  std::vector<ReconstructedPoint> points_scratch_;
  std::vector<RejectedReport> rejections_scratch_;
  std::vector<CriticalPoint> critical_scratch_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_SHARD_H_
