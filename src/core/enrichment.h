#ifndef MARLIN_CORE_ENRICHMENT_H_
#define MARLIN_CORE_ENRICHMENT_H_

/// \file enrichment.h
/// \brief Streaming semantic enrichment: joins the position stream with
/// contextual sources — zones, weather, registries (paper §2.2: "integration
/// of streaming data … with contextual information (e.g., weather data) …
/// producing output streams that provide semantically and contextually rich
/// information").

#include <optional>
#include <string>
#include <vector>

#include "ais/types.h"
#include "context/registry.h"
#include "context/weather.h"
#include "context/zones.h"
#include "core/reconstruction.h"

namespace marlin {

/// \brief A reconstructed point with its contextual annotations.
struct EnrichedPoint {
  ReconstructedPoint base;
  std::vector<uint32_t> zone_ids;
  WeatherSample weather;
  ShipCategory category = ShipCategory::kUnknown;
  std::string vessel_name;
  bool registry_conflict = false;  ///< registries disagreed on this vessel
};

/// \brief Joins each point against zones, weather, and resolved registries.
class EnrichmentEngine {
 public:
  struct Stats {
    uint64_t points = 0;
    uint64_t zone_hits = 0;
    uint64_t registry_hits = 0;
    uint64_t registry_conflicts = 0;

    /// \brief Accumulates another engine's counters (per-shard merge).
    void Merge(const Stats& other) {
      points += other.points;
      zone_hits += other.zone_hits;
      registry_hits += other.registry_hits;
      registry_conflicts += other.registry_conflicts;
    }
  };

  /// \brief Wall-clock cost of each context join in one `Enrich` call. A
  /// source that was not consulted (null provider) leaves its `ran` flag
  /// false — the attribution layer must not credit it with a zero-cost
  /// call.
  struct SourceTimings {
    uint64_t zones_us = 0;
    uint64_t weather_us = 0;
    uint64_t registry_us = 0;
    bool zones_ran = false;
    bool weather_ran = false;
    bool registry_ran = false;
  };

  /// \brief Any of the context sources may be null (skipped).
  EnrichmentEngine(const ZoneDatabase* zones, const WeatherProvider* weather,
                   const VesselRegistry* registry_a,
                   const VesselRegistry* registry_b,
                   SourceQualityModel* quality)
      : zones_(zones),
        weather_(weather),
        registry_a_(registry_a),
        registry_b_(registry_b),
        resolver_(quality) {}

  /// \brief Annotates one point. When `timings` is non-null, each join's
  /// wall-clock cost is measured into it (per-source latency attribution).
  EnrichedPoint Enrich(const ReconstructedPoint& rp,
                       SourceTimings* timings = nullptr);

  const Stats& stats() const { return stats_; }

 private:
  const ZoneDatabase* zones_;
  const WeatherProvider* weather_;
  const VesselRegistry* registry_a_;
  const VesselRegistry* registry_b_;
  RegistryResolver resolver_;
  Stats stats_;
  std::vector<const GeoZone*> zones_scratch_;  ///< per-point join scratch
};

}  // namespace marlin

#endif  // MARLIN_CORE_ENRICHMENT_H_
