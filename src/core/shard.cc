#include "core/shard.h"

#include "core/pipeline.h"

namespace marlin {

PipelineShardCore::PipelineShardCore(const PipelineConfig& config,
                                     const ZoneDatabase* zones,
                                     const WeatherProvider* weather,
                                     const VesselRegistry* registry_a,
                                     const VesselRegistry* registry_b)
    : config_(config),
      reconstructor_(config.reconstruction),
      synopses_(config.synopses),
      vessel_events_(zones, config.events),
      enrichment_(zones, weather, registry_a, registry_b, &source_quality_),
      store_(config.store),
      coverage_(config.coverage) {}

void PipelineShardCore::ProcessStatic(const StaticVoyageData& sv) {
  vessel_events_.SetVesselInfo(sv.mmsi, sv.ship_type);
}

void PipelineShardCore::ProcessPosition(const PositionReport& report,
                                        Timestamp ingest_time,
                                        std::vector<DetectedEvent>* events,
                                        std::vector<PairObservation>* pairs) {
  points_scratch_.clear();
  rejections_scratch_.clear();
  reconstructor_.Ingest(report, &points_scratch_, &rejections_scratch_);
  for (const RejectedReport& rej : rejections_scratch_) {
    vessel_events_.IngestRejection(rej, events);
  }
  for (const ReconstructedPoint& rp : points_scratch_) {
    ProcessPoint(rp, events, pairs);
    latency_.Observe(ingest_time - rp.point.t);
  }
}

void PipelineShardCore::ProcessPoint(const ReconstructedPoint& rp,
                                     std::vector<DetectedEvent>* events,
                                     std::vector<PairObservation>* pairs) {
  coverage_.Observe(rp.mmsi, rp.point.t);

  // Synopsis stage.
  critical_scratch_.clear();
  synopses_.Ingest(rp, &critical_scratch_);
  for (const CriticalPoint& cp : critical_scratch_) {
    synopsis_log_.push_back(cp);
  }

  // Storage stage: full rate, or synopsis-only (in-situ mode).
  if (config_.store_full_rate) {
    (void)store_.Append(rp.mmsi, rp.point);
  } else {
    for (const CriticalPoint& cp : critical_scratch_) {
      (void)store_.Append(cp.mmsi, cp.point);
    }
  }

  // Enrichment + single-vessel event recognition.
  (void)enrichment_.Enrich(rp);
  pairs->push_back(vessel_events_.Ingest(rp, events));
}

void PipelineShardCore::Flush(std::vector<DetectedEvent>* events,
                              std::vector<PairObservation>* pairs) {
  points_scratch_.clear();
  rejections_scratch_.clear();
  reconstructor_.Flush(&points_scratch_, &rejections_scratch_);
  for (const RejectedReport& rej : rejections_scratch_) {
    vessel_events_.IngestRejection(rej, events);
  }
  for (const ReconstructedPoint& rp : points_scratch_) {
    ProcessPoint(rp, events, pairs);
  }
}

}  // namespace marlin
