#include "core/shard.h"

#include <string>
#include <utility>

#include "common/fault.h"
#include "core/pipeline.h"

namespace marlin {

namespace {

AsyncSideStage<ReconstructedPoint, EnrichedPoint>::Options EnrichmentOptions(
    const PipelineConfig& config, bool async) {
  AsyncSideStage<ReconstructedPoint, EnrichedPoint>::Options options;
  // A disabled stage never receives a Submit; keep it synchronous so no
  // idle worker thread is spawned per shard.
  options.async = async && config.enable_enrichment;
  options.queue_depth = config.enrichment_queue_depth;
  options.output_capacity = config.enriched_output_capacity;
  options.fabric = config.lock_free_fabric ? QueueFabric::kSpscRing
                                           : QueueFabric::kMutex;
  return options;
}

}  // namespace

PipelineShardCore::PipelineShardCore(const PipelineConfig& config,
                                     bool async_enrichment,
                                     const ZoneDatabase* zones,
                                     const WeatherProvider* weather,
                                     const VesselRegistry* registry_a,
                                     const VesselRegistry* registry_b,
                                     size_t shard_index)
    : config_(config),
      reconstructor_(config.reconstruction),
      synopses_(config.synopses),
      vessel_events_(zones, config.events),
      integrity_(config.integrity),
      anomaly_(config.anomaly),
      enrichment_(zones, weather, registry_a, registry_b, &source_quality_),
      enrichment_stage_(EnrichmentOptions(config, async_enrichment),
                        [this](const ReconstructedPoint& rp) {
                          MARLIN_FAULT_POINT("enrichment.transform");
                          EnrichmentEngine::SourceTimings timings;
                          EnrichedPoint out = enrichment_.Enrich(rp, &timings);
                          // Per-source attribution (PR 2 follow-on): which
                          // context join is eating the stage's budget —
                          // batched so the point pays one stats lock.
                          std::pair<const char*, uint64_t> attributed[3];
                          size_t n = 0;
                          if (timings.zones_ran) {
                            attributed[n++] = {"zones", timings.zones_us};
                          }
                          if (timings.weather_ran) {
                            attributed[n++] = {"weather", timings.weather_us};
                          }
                          if (timings.registry_ran) {
                            attributed[n++] = {"registry",
                                               timings.registry_us};
                          }
                          enrichment_stage_.AttributeSources({attributed, n});
                          std::lock_guard<std::mutex> lock(enrichment_mutex_);
                          enrichment_stats_snapshot_ = enrichment_.stats();
                          return out;
                        }),
      store_(config.store),
      coverage_(config.coverage) {
  if (config.archive.enabled) {
    std::string dir = config.archive.directory;
    if (!dir.empty()) dir += "/shard_" + std::to_string(shard_index);
    archive_ = std::make_unique<ShardArchive>(config.archive, std::move(dir));
  }
}

void PipelineShardCore::ProcessStatic(const StaticVoyageData& sv) {
  vessel_events_.SetVesselInfo(sv.mmsi, sv.ship_type);
}

void PipelineShardCore::ProcessPosition(const PositionReport& report,
                                        Timestamp ingest_time,
                                        std::vector<DetectedEvent>* events,
                                        std::vector<PairObservation>* pairs) {
  // Integrity gate: raw reports are scored *before* reconstruction. A
  // failed report still flows on (reconstruction's own outlier rejection
  // decides what survives — the two stages must not disagree about the
  // clean-point stream), but the vessel's behaviour-change window is
  // quarantined so flagged kinematics never train the reference model.
  if (config_.enable_anomaly && !integrity_.Assess(report, events)) {
    anomaly_.Poison(report.mmsi);
  }
  points_scratch_.clear();
  rejections_scratch_.clear();
  reconstructor_.Ingest(report, &points_scratch_, &rejections_scratch_);
  for (const RejectedReport& rej : rejections_scratch_) {
    vessel_events_.IngestRejection(rej, events);
  }
  for (const ReconstructedPoint& rp : points_scratch_) {
    ProcessPoint(rp, events, pairs);
    latency_.Observe(ingest_time - rp.point.t);
  }
}

void PipelineShardCore::ProcessPoint(const ReconstructedPoint& rp,
                                     std::vector<DetectedEvent>* events,
                                     std::vector<PairObservation>* pairs) {
  coverage_.Observe(rp.mmsi, rp.point.t);

  // Synopsis stage.
  critical_scratch_.clear();
  synopses_.Ingest(rp, &critical_scratch_);
  for (const CriticalPoint& cp : critical_scratch_) {
    synopsis_log_.push_back(cp);
  }

  // Storage stage: full rate, or synopsis-only (in-situ mode).
  if (config_.store_full_rate) {
    (void)store_.Append(rp.mmsi, rp.point);
  } else {
    for (const CriticalPoint& cp : critical_scratch_) {
      (void)store_.Append(cp.mmsi, cp.point);
    }
  }

  // Historical archive staging: a pooled vector push per clean point, cut
  // into blocks at window close. Same clean points every arrangement, so
  // archives are partition-invariant.
  if (archive_ != nullptr) archive_->Stage(rp.mmsi, rp.point);

  // Enrichment side-stage (never blocks: drop-oldest backpressure) +
  // single-vessel event recognition.
  if (config_.enable_enrichment) {
    if (enrichment_suppressed_) {
      ++enrichment_suppressed_count_;
    } else {
      enrichment_stage_.Submit(rp);
    }
  }
  pairs->push_back(vessel_events_.Ingest(rp, events));

  // Behaviour-change detection over the clean point stream.
  if (config_.enable_anomaly) anomaly_.Ingest(rp, events);
}

void PipelineShardCore::Flush(Timestamp ingest_time,
                              std::vector<DetectedEvent>* events,
                              std::vector<PairObservation>* pairs) {
  points_scratch_.clear();
  rejections_scratch_.clear();
  reconstructor_.Flush(&points_scratch_, &rejections_scratch_);
  for (const RejectedReport& rej : rejections_scratch_) {
    vessel_events_.IngestRejection(rej, events);
  }
  for (const ReconstructedPoint& rp : points_scratch_) {
    ProcessPoint(rp, events, pairs);
    if (ingest_time != kInvalidTimestamp) {
      latency_.Observe(ingest_time - rp.point.t);
    }
  }
}

}  // namespace marlin
