#include "core/pipeline.h"

#include <algorithm>

namespace marlin {

MaritimePipeline::MaritimePipeline(const PipelineConfig& config,
                                   const ZoneDatabase* zones,
                                   const WeatherProvider* weather,
                                   const VesselRegistry* registry_a,
                                   const VesselRegistry* registry_b)
    : config_(config),
      core_(config_, /*async_enrichment=*/false, zones, weather, registry_a,
            registry_b),
      pair_events_(config.events),
      dead_letters_(config.dead_letter_capacity) {}

std::vector<DetectedEvent> MaritimePipeline::IngestNmea(
    const std::string& line, Timestamp ingest_time, uint64_t source_id) {
  if (window_line_count_ == 0) window_first_ingest_ = ingest_time;
  last_ingest_ = ingest_time;
  // Parse + Assemble is Decode split in two (documented equivalent in
  // ais/codec.h); the split exposes the reject reason so rejected raw lines
  // can be dead-lettered with the same classification — and therefore the
  // same payload stream — as the sharded pipeline's parse stage.
  const ParsedLine parsed = AisDecoder::Parse(
      line, ingest_time, config_.fragment_group_by_source ? source_id : 0);
  if (!parsed.ok) {
    dead_letters_.Push(DeadLetterReason::kBadSentence, line, ingest_time);
  }
  const uint64_t bad_payloads_before = decoder_.stats().bad_payloads;
  std::optional<AisMessage> msg = decoder_.Assemble(parsed);
  if (parsed.ok && decoder_.stats().bad_payloads > bad_payloads_before) {
    dead_letters_.Push(DeadLetterReason::kBadPayload, line, ingest_time);
  }
  if (msg.has_value()) {
    if (config_.enable_quality_assessment) quality_.Observe(*msg);
    ProcessDecoded(*msg, ingest_time);
  }
  ++window_line_count_;
  if (WindowMustClose(config_, window_line_count_, window_first_ingest_,
                      ingest_time)) {
    return CloseWindow(/*flush_pairs=*/false);
  }
  return {};
}

void MaritimePipeline::ProcessDecoded(const AisMessage& msg,
                                      Timestamp ingest_time) {
  if (const auto* sv = std::get_if<StaticVoyageData>(&msg)) {
    core_.ProcessStatic(*sv);
    return;
  }
  const PositionReport* pr = PositionReportOf(msg);
  if (pr == nullptr) return;

  metrics_.ingest_rate.Observe(ingest_time);
  core_.ProcessPosition(*pr, ingest_time, &window_events_, &window_pairs_);
}

std::vector<DetectedEvent> MaritimePipeline::CloseWindow(bool flush_pairs) {
  // Serving tier: window close is epoch close — the staged points become
  // immutable position blocks and a fresh read snapshot. Archive write
  // failures degrade durability, not the live pipeline.
  (void)core_.CloseArchiveEpoch();
  pair_events_.CloseWindow(&window_pairs_, flush_pairs, &window_events_);
  FireAlerts(window_events_, &metrics_.alerts, alert_callback_);
  RefreshMetrics();
  window_line_count_ = 0;
  window_first_ingest_ = kInvalidTimestamp;
  return std::exchange(window_events_, {});
}

void MaritimePipeline::RefreshMetrics() {
  metrics_.decoder = decoder_.stats();
  metrics_.reconstruction = core_.reconstruction_stats();
  metrics_.synopses = core_.synopses_stats();
  metrics_.events = core_.vessel_event_stats();
  metrics_.events.events_out += pair_events_.stats().events_out;
  metrics_.anomaly = core_.anomaly_stage_stats();
  metrics_.enrichment = core_.enrichment_stats();
  metrics_.enrichment_stage = core_.enrichment_stage_stats();
  metrics_.quality = quality_.report();
  if (core_.archive() != nullptr) metrics_.archive = core_.archive()->stats();
  metrics_.end_to_end_latency = core_.end_to_end_latency();
  // Health roll-up. No supervised workers here (single-threaded reference):
  // the supervisor half stays zero, the data-at-risk half is live.
  metrics_.health.supervisor = SupervisorStats{};
  metrics_.health.dead_letter = dead_letters_.stats();
  metrics_.health.enrichment_transform_failures =
      metrics_.enrichment_stage.transform_failed;
  metrics_.health.archive_put_failures = metrics_.archive.put_failures;
  metrics_.health.archive_points_at_risk = metrics_.archive.points_at_risk;
}

size_t MaritimePipeline::DrainEnrichedOrdered(std::vector<EnrichedPoint>* out) {
  const size_t base = out->size();
  core_.DrainEnriched(out);
  std::stable_sort(out->begin() + static_cast<ptrdiff_t>(base), out->end(),
                   [](const EnrichedPoint& a, const EnrichedPoint& b) {
                     if (a.base.point.t != b.base.point.t) {
                       return a.base.point.t < b.base.point.t;
                     }
                     return a.base.mmsi < b.base.mmsi;
                   });
  return out->size() - base;
}

std::vector<DetectedEvent> MaritimePipeline::IngestBatch(
    std::span<const Event<std::string>> nmea) {
  std::vector<DetectedEvent> all;
  for (const auto& ev : nmea) {
    auto detected = IngestNmea(ev.payload, ev.ingest_time, ev.source_id);
    all.insert(all.end(), detected.begin(), detected.end());
  }
  return all;
}

std::vector<DetectedEvent> MaritimePipeline::IngestPackedBatch(
    std::span<const Event<PackedRecord>> packed) {
  std::vector<DetectedEvent> all;
  for (const auto& ev : packed) {
    if (window_line_count_ == 0) window_first_ingest_ = ev.ingest_time;
    last_ingest_ = ev.ingest_time;
    const uint64_t bad_before = decoder_.stats().bad_payloads;
    std::optional<AisMessage> msg =
        decoder_.DecodePacked(ev.payload.bits, ev.payload.received_at);
    if (decoder_.stats().bad_payloads > bad_before) {
      // The raw bytes stayed with the sender; count without retention.
      dead_letters_.PushCount(DeadLetterReason::kBadPayload, 1);
    }
    if (msg.has_value()) {
      if (config_.enable_quality_assessment) quality_.Observe(*msg);
      ProcessDecoded(*msg, ev.ingest_time);
    }
    ++window_line_count_;
    if (WindowMustClose(config_, window_line_count_, window_first_ingest_,
                        ev.ingest_time)) {
      auto detected = CloseWindow(/*flush_pairs=*/false);
      all.insert(all.end(), detected.begin(), detected.end());
    }
  }
  return all;
}

std::vector<DetectedEvent> MaritimePipeline::Run(
    const std::vector<Event<std::string>>& nmea) {
  std::vector<DetectedEvent> all = IngestBatch(nmea);
  auto tail = Finish();
  all.insert(all.end(), tail.begin(), tail.end());
  return all;
}

std::vector<DetectedEvent> MaritimePipeline::Finish() {
  core_.Flush(last_ingest_, &window_events_, &window_pairs_);
  core_.FlushEnrichment();  // delivery-completeness barrier (no-op inline)
  return CloseWindow(/*flush_pairs=*/true);
}

}  // namespace marlin
