#include "core/pipeline.h"

namespace marlin {

MaritimePipeline::MaritimePipeline(const PipelineConfig& config,
                                   const ZoneDatabase* zones,
                                   const WeatherProvider* weather,
                                   const VesselRegistry* registry_a,
                                   const VesselRegistry* registry_b)
    : config_(config),
      reconstructor_(config.reconstruction),
      synopses_(config.synopses),
      events_(zones, config.events),
      enrichment_(zones, weather, registry_a, registry_b, &source_quality_),
      store_(config.store),
      coverage_(config.coverage) {}

std::vector<DetectedEvent> MaritimePipeline::IngestNmea(
    const std::string& line, Timestamp ingest_time) {
  std::vector<DetectedEvent> detected;
  std::optional<AisMessage> msg = decoder_.Decode(line, ingest_time);
  if (!msg.has_value()) return detected;

  if (config_.enable_quality_assessment) quality_.Observe(*msg);

  if (const auto* sv = std::get_if<StaticVoyageData>(&*msg)) {
    events_.SetVesselInfo(sv->mmsi, sv->ship_type);
    return detected;
  }

  const PositionReport* pr = std::get_if<PositionReport>(&*msg);
  const ExtendedClassBReport* eb = std::get_if<ExtendedClassBReport>(&*msg);
  if (pr == nullptr && eb != nullptr) pr = &eb->position_report;
  if (pr == nullptr) return detected;

  metrics_.ingest_rate.Observe(ingest_time);

  std::vector<ReconstructedPoint> points;
  std::vector<RejectedReport> rejections;
  reconstructor_.Ingest(*pr, &points, &rejections);
  for (const RejectedReport& rej : rejections) {
    events_.IngestRejection(rej, &detected);
  }
  for (const ReconstructedPoint& rp : points) {
    ProcessPoint(rp, &detected);
    metrics_.end_to_end_latency.Observe(ingest_time - rp.point.t);
  }

  for (const DetectedEvent& ev : detected) {
    if (ev.severity >= 0.5) {
      ++metrics_.alerts;
      if (alert_callback_) alert_callback_(ev);
    }
  }
  // Refresh stat snapshots.
  metrics_.decoder = decoder_.stats();
  metrics_.reconstruction = reconstructor_.stats();
  metrics_.synopses = synopses_.stats();
  metrics_.events = events_.stats();
  metrics_.enrichment = enrichment_.stats();
  metrics_.quality = quality_.report();
  return detected;
}

void MaritimePipeline::ProcessPoint(const ReconstructedPoint& rp,
                                    std::vector<DetectedEvent>* out) {
  coverage_.Observe(rp.mmsi, rp.point.t);

  // Synopsis stage.
  std::vector<CriticalPoint> critical;
  synopses_.Ingest(rp, &critical);
  for (const CriticalPoint& cp : critical) synopsis_log_.push_back(cp);

  // Storage stage: full rate, or synopsis-only (in-situ mode).
  if (config_.store_full_rate) {
    (void)store_.Append(rp.mmsi, rp.point);
  } else {
    for (const CriticalPoint& cp : critical) {
      (void)store_.Append(cp.mmsi, cp.point);
    }
  }

  // Enrichment + event recognition.
  (void)enrichment_.Enrich(rp);
  events_.Ingest(rp, out);
}

std::vector<DetectedEvent> MaritimePipeline::Run(
    const std::vector<Event<std::string>>& nmea) {
  std::vector<DetectedEvent> all;
  for (const auto& ev : nmea) {
    auto detected = IngestNmea(ev.payload, ev.ingest_time);
    all.insert(all.end(), detected.begin(), detected.end());
  }
  auto tail = Finish();
  all.insert(all.end(), tail.begin(), tail.end());
  return all;
}

std::vector<DetectedEvent> MaritimePipeline::Finish() {
  std::vector<DetectedEvent> detected;
  std::vector<ReconstructedPoint> points;
  std::vector<RejectedReport> rejections;
  reconstructor_.Flush(&points, &rejections);
  for (const RejectedReport& rej : rejections) {
    events_.IngestRejection(rej, &detected);
  }
  for (const ReconstructedPoint& rp : points) {
    ProcessPoint(rp, &detected);
  }
  events_.Flush(&detected);
  for (const DetectedEvent& ev : detected) {
    if (ev.severity >= 0.5) {
      ++metrics_.alerts;
      if (alert_callback_) alert_callback_(ev);
    }
  }
  metrics_.decoder = decoder_.stats();
  metrics_.reconstruction = reconstructor_.stats();
  metrics_.synopses = synopses_.stats();
  metrics_.events = events_.stats();
  metrics_.enrichment = enrichment_.stats();
  metrics_.quality = quality_.report();
  return detected;
}

}  // namespace marlin
