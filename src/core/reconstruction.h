#ifndef MARLIN_CORE_RECONSTRUCTION_H_
#define MARLIN_CORE_RECONSTRUCTION_H_

/// \file reconstruction.h
/// \brief Real-time vessel trajectory reconstruction from noisy, delayed,
/// duplicated and conflicting position streams (paper §3.1: "real-time
/// reconstruction of vessel trajectories, supported by real-time analysis of
/// multiple and voluminous streams of data on possibly conflicting vessel
/// positions").
///
/// Responsibilities:
///  * event-time recovery: AIS position reports carry only a UTC-second
///    field; full timestamps are reconstructed against receiver time,
///  * watermark-driven reordering of interleaved terrestrial/satellite
///    deliveries,
///  * duplicate suppression (multi-receiver and processing dupes),
///  * kinematic outlier rejection (impossible jumps — also the raw material
///    for spoofing detection downstream),
///  * gap segmentation (dark-period boundaries).

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "ais/types.h"
#include "storage/trajectory.h"
#include "stream/event.h"
#include "stream/reorder.h"

namespace marlin {

/// \brief Recovers the full event time of a report from its UTC-second field
/// and the receiver timestamp: the instant with matching seconds value
/// closest to (and at most `max_age_ms` before) `received_at`.
/// Falls back to `received_at` when the seconds field is unavailable (60+).
Timestamp ResolveEventTime(int utc_second, Timestamp received_at,
                           DurationMs max_age_ms = 10 * kMillisPerMinute);

/// \brief One rejected report with the reason (fed to spoof detection).
struct RejectedReport {
  enum class Reason : uint8_t {
    kDuplicate = 0,
    kStale,          ///< older than the per-vessel frontier after reordering
    kImpossibleJump, ///< implied speed above the physical cap
    kInvalid,        ///< no usable position/time
  };
  Reason reason;
  Mmsi mmsi = 0;
  Timestamp t = 0;
  GeoPoint reported;
  double implied_speed_mps = 0.0;
};

/// \brief A reconstruction output sample with segmentation flags.
struct ReconstructedPoint {
  Mmsi mmsi = 0;
  TrajectoryPoint point;
  /// Reported rate of turn in deg/min (ITU ROT_AIS decoding), NaN when the
  /// report carried a ROT sentinel. Rides alongside the archived point —
  /// it feeds the anomaly stage's turn-rate feature, not storage.
  float turn_rate_deg_min = TrajectoryPoint::Unavailable();
  bool starts_segment = false;    ///< first point after a gap (or ever)
  DurationMs gap_before_ms = 0;   ///< length of the preceding gap, if any

  bool HasTurnRate() const { return !std::isnan(turn_rate_deg_min); }
};

/// \brief Streaming trajectory reconstructor.
///
/// Reordering is watermarked *per vessel*: each MMSI owns its own reorder
/// buffer, so one vessel's slow satellite deliveries never force another
/// vessel's reports to be classified late. This also makes reconstruction
/// output invariant under MMSI-sharding — a sharded pipeline produces
/// exactly the per-vessel streams the sequential pipeline does, whatever
/// the partitioning.
class TrajectoryReconstructor {
 public:
  struct Options {
    /// Watermark delay for the reorder stage (covers satellite latency).
    DurationMs reorder_delay_ms = 2 * kMillisPerMinute;
    /// Gap threshold: silence longer than this starts a new segment.
    DurationMs gap_threshold_ms = 10 * kMillisPerMinute;
    /// Physical speed cap for jump rejection (≈ 97 knots).
    double max_speed_mps = 50.0;
    /// Two reports of one vessel closer than this in time are duplicates.
    DurationMs duplicate_window_ms = 500;
  };

  struct Stats {
    uint64_t reports_in = 0;
    uint64_t points_out = 0;
    uint64_t duplicates = 0;
    uint64_t stale = 0;
    uint64_t outliers = 0;
    uint64_t invalid = 0;
    uint64_t late_dropped = 0;
    uint64_t segments_started = 0;

    /// \brief Accumulates another reconstructor's counters (per-shard merge).
    void Merge(const Stats& other) {
      reports_in += other.reports_in;
      points_out += other.points_out;
      duplicates += other.duplicates;
      stale += other.stale;
      outliers += other.outliers;
      invalid += other.invalid;
      late_dropped += other.late_dropped;
      segments_started += other.segments_started;
    }
  };

  TrajectoryReconstructor() : TrajectoryReconstructor(Options()) {}
  explicit TrajectoryReconstructor(const Options& options);

  /// \brief Ingests one decoded position report (any arrival order).
  /// Clean points and rejections are appended to the output vectors
  /// (either may be null if the caller does not care).
  void Ingest(const PositionReport& report,
              std::vector<ReconstructedPoint>* out,
              std::vector<RejectedReport>* rejected);

  /// \brief Flushes the reorder buffer at end of stream.
  void Flush(std::vector<ReconstructedPoint>* out,
             std::vector<RejectedReport>* rejected);

  const Stats& stats() const { return stats_; }

 private:
  struct VesselState {
    explicit VesselState(const ReorderBuffer<PositionReport>::Options& opts)
        : reorder(opts) {}
    ReorderBuffer<PositionReport> reorder;
    Timestamp last_t = kInvalidTimestamp;
    GeoPoint last_pos;
  };

  /// Processes one event-time-ordered report.
  void Process(const PositionReport& report, Timestamp event_time,
               std::vector<ReconstructedPoint>* out,
               std::vector<RejectedReport>* rejected);

  Options options_;
  ReorderBuffer<PositionReport>::Options reorder_options_;
  std::map<Mmsi, VesselState> vessels_;
  Stats stats_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_RECONSTRUCTION_H_
