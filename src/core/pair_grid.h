#ifndef MARLIN_CORE_PAIR_GRID_H_
#define MARLIN_CORE_PAIR_GRID_H_

/// \file pair_grid.h
/// \brief Grid-cell sharded execution of the vessel-pair event stage.
///
/// PR 1 parallelized every vessel-keyed stage; the pair rules (rendezvous,
/// collision risk) stayed sequential on the coordinator because they need
/// the *global* live picture — the last Amdahl term of ROADMAP.md. But pair
/// interactions are spatially local: no rule looks farther than the max
/// interaction radius (`collision_scan_radius_m`). `GridPairPartitioner`
/// exploits that locality to run each closed window's pair scans across a
/// worker pool without changing a single emitted byte:
///
///  1. **Bucketing.** Every vessel the authoritative `PairEventEngine`
///     knows (plus vessels first observed this window) is assigned to a
///     uniform lat/lon grid cell sized by the interaction radius, keyed by
///     its position entering the window. All of a vessel's observations in
///     the window route to that one cell, keeping its stream whole.
///  2. **Halo exchange.** Each materialized cell (≥ 1 owned observation)
///     also receives the observation streams and state snapshots of
///     vessels assigned within a halo of neighbouring cells — one ring
///     when cells match the radius and vessels barely move, widened
///     deterministically by the window's observed per-vessel drift so a
///     partner can never be missed. Both margins mirror the bounding-box
///     prefilter of `GridIndex::QueryRadius` exactly, so a cell replica's
///     radius scans return the same partner sets the global engine's
///     would.
///  3. **Replica lockstep.** Each cell task runs a pooled `PairEventEngine`
///     replica (cleared between windows — flat-table capacity retained, so
///     steady windows rebuild no maps) seeded with the relevant
///     vessel/pair state, and processes
///     its (owned + halo) observations in the canonical (event-time, MMSI)
///     order. Replicas perform *every* state transition; an emit filter
///     restricts event output to the pair's **owner cell** — the minimum
///     materialized cell key of the two vessels' cells — so every
///     cross-boundary pair is spoken for by exactly one cell.
///  4. **Write-back & merge.** The owner cell's final state for its
///     observed vessels and owned pairs is transplanted back into the
///     authoritative engine (non-owner replicas computed identical state
///     and are discarded); per-cell event streams are concatenated in cell
///     order and re-sequenced through the same canonical order the
///     sequential close uses.
///
/// Windows whose geometry defeats the grid (a single materialized cell,
/// antimeridian-crossing drift blowing the halo past `max_halo_rings`, or
/// invalid positions) fall back to the sequential close — the decision is a
/// pure function of the window input, so the output stays byte-identical
/// to `PairEventEngine::CloseWindow` for every cell-size/thread
/// configuration. tests/pair_grid_test.cc replays scenario worlds through
/// both paths and asserts exact equality.

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/events.h"
#include "stream/channel.h"

namespace marlin {

/// \brief Pair-stage instrumentation: how well the grid spreads the pair
/// work (occupancy) and how lopsided the cells are (skew). Mergeable.
struct PairStageStats {
  uint64_t windows = 0;             ///< windows closed through the stage
  uint64_t parallel_windows = 0;    ///< windows that took the grid path
  uint64_t sequential_windows = 0;  ///< fallbacks (incl. pool-less runs)
  uint64_t observations = 0;        ///< pair observations ingested
  uint64_t halo_observations = 0;   ///< halo copies shipped to non-owner cells
  uint64_t cells = 0;               ///< materialized cells over all windows
  size_t max_cells_per_window = 0;  ///< occupancy high-water mark
  size_t max_cell_observations = 0;  ///< heaviest single cell task
  int max_halo_rings = 0;           ///< widest halo a window needed
  /// Skew: worst observed share of one window's observations landing in a
  /// single cell (1.0 = everything in one cell, 1/cells = perfectly even).
  double max_cell_share = 0.0;
  /// Parallel windows in which a cell task failed (threw) and the window
  /// was recovered by discarding all replica output and re-closing through
  /// the sequential path — the authoritative engine is only ever mutated in
  /// the merge phase, so a pre-merge abort leaves it pristine and the
  /// fallback's output is byte-identical to a fault-free close.
  uint64_t recovered_windows = 0;

  double MeanCellsPerWindow() const {
    return parallel_windows == 0
               ? 0.0
               : static_cast<double>(cells) /
                     static_cast<double>(parallel_windows);
  }

  void Merge(const PairStageStats& other) {
    windows += other.windows;
    parallel_windows += other.parallel_windows;
    sequential_windows += other.sequential_windows;
    observations += other.observations;
    halo_observations += other.halo_observations;
    cells += other.cells;
    max_cells_per_window =
        std::max(max_cells_per_window, other.max_cells_per_window);
    max_cell_observations =
        std::max(max_cell_observations, other.max_cell_observations);
    max_halo_rings = std::max(max_halo_rings, other.max_halo_rings);
    max_cell_share = std::max(max_cell_share, other.max_cell_share);
    recovered_windows += other.recovered_windows;
  }
};

/// \brief Spatially sharded window closer for the pair-event stage.
///
/// Owns a pool of `pair_threads` workers, each fed through its own
/// `StageChannel` (the coordinator is every channel's sole producer and
/// each worker its sole consumer, so the lock-free SPSC fabric applies);
/// cell tasks are dealt round-robin across the workers plus a
/// coordinator-inline slice. `CloseWindow` is the drop-in parallel
/// equivalent of `PairEventEngine::CloseWindow` on the authoritative
/// engine.
class GridPairPartitioner {
 public:
  struct Options {
    /// Worker count for the cell pool. ≤ 1 disables the pool: every window
    /// closes sequentially (still through this class, same stats).
    size_t pair_threads = 0;
    /// Grid pitch in metres; 0 sizes cells to the max interaction radius
    /// (one-cell halos when vessels move little within a window).
    double cell_size_m = 0.0;
    /// Fallback threshold: when the drift-widened halo would exceed this
    /// many rings per axis (vessels teleporting across the window, e.g. an
    /// antimeridian crossing), the window closes sequentially instead.
    int max_halo_rings = 8;
    /// Hand-off fabric for the per-worker task channels.
    QueueFabric fabric = QueueFabric::kSpscRing;
  };

  /// \brief `rules` must equal the authoritative engine's options — cell
  /// replicas are constructed from them.
  GridPairPartitioner(const EventRuleOptions& rules, const Options& options);
  ~GridPairPartitioner();

  GridPairPartitioner(const GridPairPartitioner&) = delete;
  GridPairPartitioner& operator=(const GridPairPartitioner&) = delete;

  /// \brief Closes one window on `engine`: exactly the sort → ingest →
  /// clear → flush → re-sequence sequence of `PairEventEngine::CloseWindow`,
  /// with the ingest fan-out across grid cells when the pool is enabled and
  /// the window's geometry permits. After return, `engine`'s state, stats,
  /// and the appended `events` are byte-identical to a sequential close.
  void CloseWindow(PairEventEngine* engine,
                   std::vector<PairObservation>* pairs, bool flush,
                   std::vector<DetectedEvent>* events);

  /// \brief True when the worker pool exists (pair_threads > 1).
  bool parallel() const { return !workers_.empty(); }

  const PairStageStats& stats() const { return stats_; }

  /// \brief Coordinator → cell-worker hop counters, merged across the
  /// per-worker channels (all zero when the pool is disabled).
  QueueHopStats hop_stats() const {
    QueueHopStats merged;
    for (const auto& channel : channels_) merged.Merge(channel->stats());
    return merged;
  }

 private:
  struct WindowPlan;
  struct CellTask;
  struct Scratch;

  /// Attempts the grid path; false = caller must close sequentially.
  bool TryParallelWindow(PairEventEngine* engine,
                         const std::vector<PairObservation>& observations,
                         std::vector<DetectedEvent>* events);

  /// Runs one cell task to completion (worker thread or coordinator),
  /// on a pooled replica engine.
  void RunTask(CellTask* task);

  /// Drains `channels_[worker]` until close (one worker thread each).
  void WorkerLoop(size_t worker);

  /// Replica pool: engines are expensive to build (flat tables + live
  /// picture) and windows arrive continuously, so cell tasks borrow a
  /// cleared engine instead of constructing one. Capacity of the cleared
  /// state is retained, so a warmed replica re-runs a window of similar
  /// shape without touching the heap.
  std::unique_ptr<PairEventEngine> AcquireReplica();
  void ReleaseReplica(std::unique_ptr<PairEventEngine> replica);

  const EventRuleOptions rules_;
  const Options options_;
  const double interaction_radius_m_;
  const double cell_size_m_;
  /// One task channel per worker (SPSC: coordinator pushes, that worker
  /// pops). Round-robin dealing replaces work-stealing from a shared
  /// queue; cell tasks within a window are close in cost (skew is tracked
  /// and bounded by the grid), so static assignment balances well and the
  /// hand-off needs no lock.
  std::vector<std::unique_ptr<StageChannel<CellTask*>>> channels_;
  std::vector<std::thread> workers_;
  PairStageStats stats_;

  std::mutex replica_mutex_;
  std::vector<std::unique_ptr<PairEventEngine>> replica_pool_;
  // Coordinator-owned pools, reused across windows (CloseWindow is always
  // called from one thread; workers only ever touch the tasks handed to
  // them between queue push and latch count-down).
  std::vector<std::unique_ptr<CellTask>> task_pool_;
  std::unique_ptr<WindowPlan> plan_;
  std::unique_ptr<Scratch> scratch_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_PAIR_GRID_H_
