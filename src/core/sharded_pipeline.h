#ifndef MARLIN_CORE_SHARDED_PIPELINE_H_
#define MARLIN_CORE_SHARDED_PIPELINE_H_

/// \file sharded_pipeline.h
/// \brief Multi-threaded, per-MMSI-sharded variant of the Figure-2 pipeline.
///
/// Stage graph (N = number of shards):
///
///   NMEA lines (arrival order, windows of `window_lines`)
///        │ parse: stateless, chunked across the N shard workers
///        ▼
///   coordinator: fragment reassembly + bit decode (stateful, in order)
///        │ route by splitmix64(MMSI) % N
///        ▼
///   N × PipelineShardCore (reconstruction → synopses → store partition →
///        single-vessel event rules), one thread each, fed through a
///        StageChannel (lock-free SpscRing by default — the coordinator is
///        each command queue's only producer — or the mutex BoundedQueue
///        reference arm when `PipelineConfig::lock_free_fabric` is off) —
///        each core also feeds an async enrichment side-stage (own worker
///        + bounded lossy channel) whose output surfaces through
///        SetEnrichedSink / DrainEnriched
///        │ merge: pair observations sorted by (event time, MMSI)
///        ▼
///   coordinator: pair stage (rendezvous / collision) — sequential
///        PairEventEngine, or grid-cell sharded across a
///        GridPairPartitioner worker pool when `PipelineConfig::
///        pair_threads` > 1 (halo exchange + min-cell ownership keep the
///        output byte-identical) — + canonical event re-sequencing +
///        alerts + metric merge
///
/// Determinism: every vessel's reports flow through exactly one
/// single-threaded shard core in arrival order, reconstruction watermarks
/// are per-vessel, the pair stage consumes a canonically ordered stream
/// with window boundaries fixed by input line count, and merged events are
/// re-sequenced with a total order. Consequently a `ShardedPipeline` with
/// one shard reproduces `MaritimePipeline`'s event stream *exactly*, and
/// N shards produce the same events for any N — for every pair-stage
/// cell-size/thread configuration (core/pair_grid.h).
///
/// Fault tolerance (core/supervisor.h): each shard worker runs under a
/// supervisor. A throwing task is caught and attributed; the shard core is
/// rebuilt from scratch and the raw routed windows buffered in a bounded
/// per-shard `ReplayBuffer` are replayed in order, which reproduces the
/// fault-free event stream exactly (every stage in the core is a
/// deterministic function of its input batches). A restart budget — or a
/// truncated replay history — degrades the worker to counted-drop mode
/// instead of wedging the coordinator. Rejected raw lines (parse/decode)
/// and degraded drops land in a dead-letter quarantine queue shared with
/// the sequential pipeline, so the reject ledgers of both pipelines match
/// line for line.

#include <functional>
#include <latch>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/pair_grid.h"
#include "core/pipeline.h"
#include "core/shard.h"
#include "core/supervisor.h"
#include "storage/trajectory_store.h"
#include "stream/channel.h"
#include "stream/dead_letter.h"
#include "stream/shard_router.h"

namespace marlin {

/// \brief The sharded integrated system.
class ShardedPipeline {
 public:
  struct Options {
    /// Worker (= shard) count. 0 sizes the pool to the host topology
    /// (`std::thread::hardware_concurrency`, floor 1).
    size_t num_shards = 1;
    /// Command-queue depth per shard. The coordinator keeps at most one
    /// window in flight plus the next window's parse task, so ≥ 2 avoids
    /// push-side blocking; 1 is safe but lock-steps the coordinator with
    /// the slowest shard.
    size_t queue_capacity = 4;
  };

  /// \brief Context sources may be null. The legacy single-store LSM
  /// archive option (`TrajectoryStore::Options::archive`) is stripped from
  /// the shard configs — partitions would race on one archive. The serving
  /// tier replaces it: with `PipelineConfig::archive.enabled`, every shard
  /// owns its own `ShardArchive` partition (directory suffix "shard_<i>")
  /// whose epochs close at the shared window boundaries, so N-shard
  /// archives are block-identical to the sequential pipeline's.
  ShardedPipeline(const PipelineConfig& config, const Options& options,
                  const ZoneDatabase* zones, const WeatherProvider* weather,
                  const VesselRegistry* registry_a,
                  const VesselRegistry* registry_b);
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// \brief Alert callback: invoked on the coordinator thread for events
  /// with severity ≥ 0.5.
  void OnAlert(std::function<void(const DetectedEvent&)> callback) {
    alert_callback_ = std::move(callback);
  }

  /// \brief Subscribes to the enriched output stream. The sink is invoked
  /// concurrently from the N enrichment workers and must be thread-safe;
  /// per-vessel event-time order is preserved (each vessel lives on one
  /// FIFO side-stage). Install before the first ingest call.
  void SetEnrichedSink(EnrichedSink sink);

  /// \brief Batched alternative to a sink: appends each shard's buffered
  /// enriched points (shard index order, per-shard delivery order) to
  /// `out`; returns how many. With one shard and no drops
  /// (`metrics().enrichment_stage.dropped() == 0`) this is byte-identical
  /// to the sequential pipeline's drain; under backpressure the async
  /// stage thins the stream where the synchronous one cannot. Call between
  /// ingest calls.
  size_t DrainEnriched(std::vector<EnrichedPoint>* out);

  /// \brief Coordinator-side merged view of the enriched stream: drains
  /// every shard's buffer and k-way-merges (stream/merge.h) into canonical
  /// (event-time, MMSI) order. With no drops this equals the sequential
  /// pipeline's `DrainEnrichedOrdered` output for any shard count. Appends
  /// to `out`; returns how many. Call between ingest calls.
  size_t DrainEnrichedOrdered(std::vector<EnrichedPoint>* out);

  /// \brief Enrichment delivery barrier: blocks until every point
  /// submitted so far has been enriched (sink/drain buffer) or counted as
  /// dropped. `Finish` runs it before its final metric refresh, so after
  /// Finish the enriched stream is complete. Call between ingest calls.
  void FlushEnrichment();

  /// \brief Moves the retained dead-letter records (rejected raw lines and
  /// degraded-drop markers) into `out`; returns how many. Counters survive
  /// the drain in `metrics().health.dead_letter`. Call between ingest
  /// calls.
  size_t DrainDeadLetters(std::vector<DeadLetter>* out) {
    return dead_letters_.Drain(out);
  }

  /// \brief Batched ingest (arrival order). Returns all events finalized by
  /// the windows this batch completed; partial windows carry over to the
  /// next call (closed by `Finish`).
  std::vector<DetectedEvent> IngestBatch(
      std::span<const Event<std::string>> nmea);

  /// \brief Convenience: runs a whole stream and finishes it.
  std::vector<DetectedEvent> Run(const std::vector<Event<std::string>>& nmea);

  /// \brief Records a network front-door stats snapshot (replacing the
  /// previous one) for surfacing through `metrics().net_ingest`. Call
  /// between ingest calls.
  void RecordNetIngest(const NetIngestStats& stats) {
    metrics_.net_ingest = stats;
  }

  /// \brief Flushes shard reorder buffers, closes open pair states and the
  /// current window.
  std::vector<DetectedEvent> Finish();

  size_t num_shards() const { return shards_.size(); }

  /// \brief Merged per-stage metrics. Refreshed at the end of every
  /// IngestBatch / Finish call (shard stats are only safe to read when the
  /// workers are quiescent, so mid-batch window closes do not refresh).
  const PipelineMetrics& metrics() const { return metrics_; }

  /// \brief Read-only view over the per-shard store partitions. Valid while
  /// the pipeline is alive and quiescent (between ingest calls).
  PartitionedTrajectoryView store_view() const;

  /// \brief Coverage model merged across shards (copy).
  CoverageModel MergedCoverage() const;

  /// \brief Synopsis log merged across shards, ordered by (time, MMSI).
  std::vector<CriticalPoint> MergedSynopsisLog() const;

  /// \brief Partition introspection (e.g. per-shard store sizes).
  const PipelineShardCore& shard_core(size_t i) const {
    return *shards_[i]->core;
  }

  /// \brief The per-shard archive partitions, shard index order — the input
  /// to a `QueryEngine`. Entries are null when `PipelineConfig::archive` is
  /// disabled. Snapshots are safe to read while ingest runs; valid while
  /// the pipeline is alive.
  std::vector<const ShardArchive*> archive_view() const;

 private:
  /// One decoded message routed to a shard, tagged with its ingest time.
  struct RoutedMessage {
    Timestamp ingest_time = kInvalidTimestamp;
    std::variant<PositionReport, StaticVoyageData> payload;
  };

  /// Parallel parse of a chunk of the window's lines into pre-sized slots.
  struct ParseTask {
    const Event<std::string>* lines = nullptr;
    ParsedLine* out = nullptr;
    size_t count = 0;
    std::latch* done = nullptr;
  };

  /// One window's routed work for one shard (outputs owned by the window).
  struct ShardTask {
    std::vector<RoutedMessage>* messages = nullptr;  ///< null for flush
    std::vector<DetectedEvent>* events = nullptr;
    std::vector<PairObservation>* pairs = nullptr;
    std::latch* done = nullptr;
    /// Flush tasks only: the stream's last ingest time, so end-of-stream
    /// points are latency-measured like streamed ones.
    Timestamp flush_ingest_time = kInvalidTimestamp;
    /// Close the shard's archive epoch after this task. True for window and
    /// flush tasks; false for `Finish`'s tail-lines task, whose lines and
    /// flush form ONE window — exactly one epoch, as in the sequential
    /// pipeline.
    bool close_epoch = true;
    /// Coordinator-assigned window sequence. `Finish`'s tail + flush tasks
    /// share one sequence (they are one window); the supervisor routes
    /// replayed output by it.
    uint64_t window_seq = 0;
  };

  /// One ShardTask's raw input, buffered for supervised replay. The
  /// messages are copied at execution time (the window's slices are
  /// recycled once merged), everything else mirrors the task.
  struct WindowRecord {
    uint64_t seq = 0;
    bool is_flush = false;
    Timestamp flush_ingest_time = kInvalidTimestamp;
    bool close_epoch = true;
    std::vector<RoutedMessage> messages;
  };

  /// Per-shard supervision state. Owned by the worker thread; the
  /// coordinator reads `stats` only at quiescent points (RefreshMetrics
  /// runs with every dispatched window merged, i.e. after the latch).
  struct ShardSupervisor {
    explicit ShardSupervisor(size_t replay_max) : replay(replay_max) {}
    ReplayBuffer<WindowRecord> replay;
    SupervisorStats stats;
    bool degraded = false;
  };

  using Command = std::variant<ParseTask, ShardTask>;

  /// All coordinator-side state of one in-flight window. Windows are
  /// pooled: `Reset` clears every vector but keeps its capacity, so a
  /// steady stream reuses two windows' buffers instead of reallocating
  /// per window.
  struct Window {
    std::vector<ParsedLine> parsed;
    std::vector<Timestamp> ingest_times;  ///< original per-line ingest time
    std::vector<std::vector<RoutedMessage>> routed;      // per shard
    std::vector<std::vector<DetectedEvent>> events;      // per shard
    std::vector<std::vector<PairObservation>> pairs;     // per shard
    std::unique_ptr<std::latch> shards_done;

    void Reset() {
      parsed.clear();
      ingest_times.clear();
      for (auto& r : routed) r.clear();
      for (auto& e : events) e.clear();
      for (auto& p : pairs) p.clear();
      shards_done.reset();
    }
  };

  struct Shard {
    Shard(size_t shard_index, QueueFabric fabric, size_t queue_capacity,
          size_t replay_max)
        : index(shard_index), queue(fabric, queue_capacity), sup(replay_max) {}
    const size_t index;  ///< names the archive partition on rebuild
    std::unique_ptr<PipelineShardCore> core;
    /// Command hop. The coordinator is the only producer and the shard
    /// worker the only consumer, so the SPSC contract holds.
    StageChannel<Command> queue;
    ShardSupervisor sup;  ///< worker-thread state (stats read when quiescent)
    std::thread thread;
  };

  void WorkerLoop(Shard* shard);
  /// Parse chunk with crash containment (parsing is stateless: a failure
  /// leaves the remaining slots rejected-and-counted, no restart needed).
  void ExecuteParseTask(Shard* shard, ParseTask* parse);
  /// Supervised ShardTask execution: run, and on failure restart-replay or
  /// degrade per the supervision options. Always counts the latch down.
  void ExecuteShardTask(Shard* shard, ShardTask& task);
  /// The raw (unsupervised) task body — fault-site instrumented.
  void RunShardTask(Shard* shard, const ShardTask& task);
  /// Rebuilds the shard's core from scratch (same partition directories;
  /// the archive reopens without self-recovery — replay republishes it).
  void RebuildShardCore(Shard* shard);
  /// Replays the buffered history on a freshly rebuilt core. Records with
  /// the current task's seq regenerate the task's output slots; older
  /// windows' outputs were already merged and are discarded.
  void ReplayShardHistory(Shard* shard, ShardTask& task);
  /// Flips the worker to counted-drop mode and drops the current task.
  void EnterDegradedMode(Shard* shard, ShardTask& task);
  /// Window pool (coordinator thread only).
  std::unique_ptr<Window> AcquireWindow();
  void ReleaseWindow(std::unique_ptr<Window> window);
  /// Parses `lines` across the shard workers (blocking) into `window`.
  void ParseWindow(std::span<const Event<std::string>> lines, Window* window);
  /// Assembles parsed lines (stateful, arrival order) and routes the decoded
  /// messages into the window's per-shard slices. `lines` is the raw window
  /// (same span ParseWindow consumed): rejected lines are dead-lettered from
  /// it with the same classification the sequential pipeline applies.
  void AssembleAndRoute(Window* window,
                        std::span<const Event<std::string>> lines);
  /// Enqueues one ShardTask per shard for the window (non-blocking).
  void DispatchShardTasks(Window* window, uint64_t window_seq,
                          bool close_epoch = true);
  /// AssembleAndRoute + latch setup + DispatchShardTasks.
  void DispatchWindow(Window* window,
                      std::span<const Event<std::string>> lines);
  /// Waits for the window's shards, runs the pair stage, re-sequences,
  /// fires alerts, appends finalized events to `out`.
  void MergeWindow(Window* window, bool flush_pairs,
                   std::vector<DetectedEvent>* out);
  void RefreshMetrics();

  PipelineConfig config_;
  /// Restart configuration: `config_` with archive self-recovery disabled —
  /// a rebuilt core's archive is republished by the replay itself, block
  /// for block (its LSM keys are content-addressed, so re-puts are
  /// idempotent); opening with recovery would double-load the durable
  /// blocks. Outlives the shard cores that reference it.
  PipelineConfig rebuild_config_;
  Options options_;
  ShardRouter router_;
  /// Context sources, retained so a supervised restart can rebuild a core.
  const ZoneDatabase* zones_ = nullptr;
  const WeatherProvider* weather_ = nullptr;
  const VesselRegistry* registry_a_ = nullptr;
  const VesselRegistry* registry_b_ = nullptr;
  EnrichedSink enriched_sink_;  ///< re-installed on rebuilt cores
  std::vector<std::unique_ptr<Shard>> shards_;
  AisDecoder decoder_;          ///< assembly half runs on the coordinator
  QualityAssessor quality_;
  PairEventEngine pair_events_;  ///< authoritative pair-rule state
  /// Closes pair windows on `pair_events_` — grid-cell parallel when
  /// `config.pair_threads` > 1, sequential otherwise; identical output.
  GridPairPartitioner pair_grid_;
  /// Rejected raw lines + degraded-drop markers. Pushed from the
  /// coordinator (decode rejects) and the shard workers (degraded drops) —
  /// the queue is internally locked.
  DeadLetterQueue dead_letters_;
  PipelineMetrics metrics_;
  std::function<void(const DetectedEvent&)> alert_callback_;

  /// Lines accumulated toward the current (partial) window.
  std::vector<Event<std::string>> pending_lines_;
  /// Recycled Window objects (at most two are ever in flight).
  std::vector<std::unique_ptr<Window>> window_pool_;
  Timestamp last_ingest_ = kInvalidTimestamp;  ///< newest line's ingest time
  uint64_t next_window_seq_ = 0;  ///< coordinator-assigned ShardTask seqs
};

}  // namespace marlin

#endif  // MARLIN_CORE_SHARDED_PIPELINE_H_
