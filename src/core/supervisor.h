#ifndef MARLIN_CORE_SUPERVISOR_H_
#define MARLIN_CORE_SUPERVISOR_H_

/// \file supervisor.h
/// \brief Worker supervision: failure accounting, bounded replay state, and
/// the pipeline-wide health snapshot.
///
/// The sharded pipeline's worker threads (shard cores, pair cells, side
/// stages) execute under a supervisor discipline instead of letting an
/// exception tear the thread (and with it the coordinator's latch) down:
///
///   * A failing shard worker is caught, attributed
///     (`SupervisorStats::failures_by_site`), and restarted: its
///     `PipelineShardCore` is rebuilt from scratch and the raw routed
///     batches buffered in a bounded per-shard `ReplayBuffer` are replayed
///     in order. Reconstruction, synopses, event detection and the archive
///     are all deterministic functions of the input batches, so the rebuilt
///     core is byte-identical to one that never crashed — the
///     supervised-restart equivalence test holds the pipeline to exactly
///     that.
///   * A restart budget caps retries. A worker that keeps dying (or whose
///     replay history was truncated by the buffer bound, making a
///     deterministic rebuild impossible) degrades to counted-drop mode:
///     subsequent batches are dropped *and counted* into the dead-letter
///     ledger rather than wedging or crashing the coordinator.
///   * Pair-cell tasks and side-stage transforms fail softer: a failed
///     parallel pair window falls back to the sequential path (which is
///     equivalence-tested against it anyway), and a throwing enrichment
///     transform drops only that item, counted.
///
/// `PipelineHealth` is the operator-facing roll-up of all of it, exposed on
/// both pipelines via `PipelineMetrics::health`.

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "stream/dead_letter.h"

namespace marlin {

/// \brief Supervision knobs, embedded in `PipelineConfig`.
struct SupervisionOptions {
  /// Master switch. Off restores the pre-supervision worker loops exactly
  /// (no replay buffering, failures propagate as before).
  bool enabled = true;
  /// Restarts allowed per worker before it degrades to counted-drop mode.
  size_t restart_budget = 3;
  /// Replay-buffer bound, in buffered routed messages per shard. The buffer
  /// always retains the in-flight window; beyond the bound the oldest
  /// complete windows are evicted, after which a failure can no longer be
  /// repaired by replay (full-history determinism is lost) and the worker
  /// degrades instead.
  size_t replay_max_messages = 1 << 16;
};

/// \brief Mergeable supervision counters (part of `PipelineHealth`).
struct SupervisorStats {
  uint64_t failures = 0;           ///< worker exceptions caught
  uint64_t restarts = 0;           ///< cores rebuilt + replayed
  uint64_t windows_replayed = 0;   ///< buffered windows re-processed
  uint64_t messages_replayed = 0;  ///< buffered messages re-processed
  uint64_t degraded_workers = 0;   ///< workers in counted-drop mode
  uint64_t degraded_dropped_messages = 0;  ///< messages dropped while degraded
  /// Enrichment submissions suppressed during replay (replayed points would
  /// otherwise double-enrich; counted as data at risk, not re-enriched).
  uint64_t enrichment_suppressed = 0;
  /// Parallel pair windows that failed and were recovered by falling back
  /// to the (equivalent) sequential path.
  uint64_t pair_windows_recovered = 0;
  /// Failure attribution: injected faults report their site name, real
  /// exceptions their what(). std::map for deterministic iteration.
  std::map<std::string, uint64_t> failures_by_site;

  void Merge(const SupervisorStats& o) {
    failures += o.failures;
    restarts += o.restarts;
    windows_replayed += o.windows_replayed;
    messages_replayed += o.messages_replayed;
    degraded_workers += o.degraded_workers;
    degraded_dropped_messages += o.degraded_dropped_messages;
    enrichment_suppressed += o.enrichment_suppressed;
    pair_windows_recovered += o.pair_windows_recovered;
    for (const auto& [site, n] : o.failures_by_site) {
      failures_by_site[site] += n;
    }
  }
};

/// \brief Operator-facing roll-up of the fault-tolerance layer, refreshed at
/// the same quiescent points as the rest of `PipelineMetrics`.
struct PipelineHealth {
  SupervisorStats supervisor;
  DeadLetterStats dead_letter;
  uint64_t enrichment_transform_failures = 0;  ///< side-stage items lost
  uint64_t archive_put_failures = 0;           ///< blocks not durable
  uint64_t archive_points_at_risk = 0;         ///< points in those blocks

  /// Records that left the healthy path in any form. Dead-letter `total()`
  /// already folds in degraded drops and parse rejects (they are pushed
  /// there), so nothing is double-counted.
  uint64_t DataAtRisk() const {
    return dead_letter.total() + enrichment_transform_failures +
           archive_points_at_risk;
  }
};

/// \brief Bounded FIFO of per-window raw input, the fuel for a supervised
/// restart. Owned by its worker thread — no locking.
///
/// `Record` supplies `uint64_t seq` (coordinator-assigned window sequence;
/// the two records of a Finish window share one) and a `messages` vector.
template <typename Record>
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t max_messages) : max_messages_(max_messages) {}

  /// \brief Appends the record, then evicts oldest windows past the bound.
  /// Records carrying the just-appended seq are never evicted: the
  /// in-flight window must stay replayable for the restart that is about to
  /// consume it.
  void Append(Record record) {
    total_ += record.messages.size();
    const uint64_t seq = record.seq;
    windows_.push_back(std::move(record));
    while (total_ > max_messages_ && windows_.size() > 1 &&
           windows_.front().seq != seq) {
      total_ -= windows_.front().messages.size();
      windows_.pop_front();
      truncated_ = true;
    }
  }

  const std::deque<Record>& windows() const { return windows_; }

  /// \brief True once any window has been evicted: a rebuild can no longer
  /// replay full history, so the next failure degrades instead. Sticky
  /// until `Clear`.
  bool truncated() const { return truncated_; }

  size_t total_messages() const { return total_; }

  void Clear() {
    windows_.clear();
    total_ = 0;
    truncated_ = false;
  }

 private:
  size_t max_messages_;
  size_t total_ = 0;
  bool truncated_ = false;
  std::deque<Record> windows_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_SUPERVISOR_H_
