#ifndef MARLIN_CORE_PATTERNS_H_
#define MARLIN_CORE_PATTERNS_H_

/// \file patterns.h
/// \brief Patterns-of-life normalcy model and anomaly scoring (paper §4:
/// "an explicit consideration of context provides an understanding of
/// normalcy as a reference for anomaly detection (i.e., pattern-of-life)").
///
/// The model is a spatial grid × 8 heading sectors histogram with per-cell
/// speed statistics, trained on historical trajectories. Scoring measures
/// how surprising a (position, course, speed) observation is under the
/// model; the anomaly detector thresholds the score.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/trajectory.h"

namespace marlin {

/// \brief Grid × heading normalcy histogram.
class PatternsOfLife {
 public:
  struct Options {
    double cell_deg = 0.1;
    /// Laplace smoothing mass for unseen cells.
    double smoothing = 0.5;
  };

  PatternsOfLife() : PatternsOfLife(Options()) {}
  explicit PatternsOfLife(const Options& options) : options_(options) {}

  /// \brief Accumulates one trajectory into the model.
  void Train(const Trajectory& trajectory);

  /// \brief Accumulates a single observation.
  void TrainPoint(const TrajectoryPoint& point);

  /// \brief Finishes training (computes totals); cheap, idempotent.
  void Finalize();

  /// \brief Anomaly score in [0, 1]: combines spatial rarity, heading
  /// rarity within the cell, and speed deviation from the cell mean.
  /// Higher = more anomalous.
  double Score(const TrajectoryPoint& point) const;

  /// \brief Observation density of the cell containing `p`
  /// (counts; 0 = never visited).
  uint64_t CellCount(const GeoPoint& p) const;

  uint64_t TotalObservations() const { return total_; }
  size_t CellsUsed() const { return cells_.size(); }

 private:
  struct CellStats {
    uint64_t count = 0;
    uint64_t heading[8] = {0};
    double speed_sum = 0.0;
    double speed_sq_sum = 0.0;
  };

  int64_t KeyFor(const GeoPoint& p) const;
  static int HeadingBucket(double cog_deg);

  Options options_;
  std::unordered_map<int64_t, CellStats> cells_;
  uint64_t total_ = 0;
  double max_cell_count_ = 0.0;
};

/// \brief Thresholding detector over the normalcy model.
class AnomalyDetector {
 public:
  struct Options {
    double threshold = 0.75;
    /// Alerts for one vessel are spaced at least this far apart.
    DurationMs realert_ms = 30 * kMillisPerMinute;
  };

  struct Alert {
    uint32_t mmsi = 0;
    TrajectoryPoint point;
    double score = 0.0;
  };

  AnomalyDetector(const PatternsOfLife* model, const Options& options)
      : model_(model), options_(options) {}
  explicit AnomalyDetector(const PatternsOfLife* model)
      : AnomalyDetector(model, Options()) {}

  /// \brief Scores one observation; returns an alert when above threshold
  /// (subject to per-vessel rate limiting).
  std::optional<Alert> Observe(uint32_t mmsi, const TrajectoryPoint& point);

 private:
  const PatternsOfLife* model_;
  Options options_;
  std::unordered_map<uint32_t, Timestamp> last_alert_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_PATTERNS_H_
