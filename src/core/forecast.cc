#include "core/forecast.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

GeoPoint DeadReckoningForecaster::Predict(
    const std::vector<TrajectoryPoint>& recent, double horizon_s) const {
  const TrajectoryPoint& last = recent.back();
  // No kinematics ⇒ persistence: the last fix is the best (only) guess.
  if (!last.HasSpeed() || !last.HasCourse()) return last.position;
  return Destination(last.position, last.cog_deg, last.sog_mps * horizon_s);
}

GeoPoint ConstantTurnForecaster::Predict(
    const std::vector<TrajectoryPoint>& recent, double horizon_s) const {
  const TrajectoryPoint& last = recent.back();
  if (!last.HasSpeed() || !last.HasCourse()) return last.position;
  if (recent.size() < 2) {
    return Destination(last.position, last.cog_deg, last.sog_mps * horizon_s);
  }
  // Fit a mean turn rate over the trailing window.
  const int n = std::min<int>(window_, static_cast<int>(recent.size()));
  const TrajectoryPoint& first = recent[recent.size() - n];
  const double dt_s =
      static_cast<double>(last.t - first.t) / kMillisPerSecond;
  double turn_rate = 0.0;  // deg/s
  if (dt_s > 1.0 && first.HasCourse()) {
    turn_rate = AngleDifference(last.cog_deg, first.cog_deg) / dt_s;
    // Clamp to plausible ship dynamics (±3 deg/s is already violent).
    turn_rate = std::clamp(turn_rate, -3.0, 3.0);
  }
  // Integrate in fixed steps.
  GeoPoint pos = last.position;
  double course = last.cog_deg;
  double remaining = horizon_s;
  const double step = 30.0;
  while (remaining > 0.0) {
    const double dt = std::min(step, remaining);
    pos = Destination(pos, course, last.sog_mps * dt);
    course = NormalizeDegrees(course + turn_rate * dt);
    remaining -= dt;
  }
  return pos;
}

int64_t FlowFieldForecaster::KeyFor(const GeoPoint& p) const {
  const int32_t row =
      static_cast<int32_t>(std::floor((p.lat + 90.0) / options_.cell_deg));
  const int32_t col =
      static_cast<int32_t>(std::floor((p.lon + 180.0) / options_.cell_deg));
  return (static_cast<int64_t>(row) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(col));
}

int FlowFieldForecaster::SectorFor(double cog_deg) {
  return static_cast<int>(NormalizeDegrees(cog_deg) / 45.0) % 8;
}

void FlowFieldForecaster::Train(const Trajectory& trajectory) {
  for (const TrajectoryPoint& p : trajectory.points) {
    // Unavailable kinematics carry no flow either (NaN would otherwise
    // slip past the `< 0.5` cut and corrupt the cell sums).
    if (!p.HasSpeed() || !p.HasCourse()) continue;
    if (p.sog_mps < 0.5) continue;  // stationary samples carry no flow
    FlowSector& sector =
        cells_[KeyFor(p.position)].sectors[SectorFor(p.cog_deg)];
    const double theta = DegToRad(p.cog_deg);
    sector.east_sum += std::sin(theta);
    sector.north_sum += std::cos(theta);
    sector.speed_sum += p.sog_mps;
    ++sector.count;
  }
}

GeoPoint FlowFieldForecaster::Predict(
    const std::vector<TrajectoryPoint>& recent, double horizon_s) const {
  const TrajectoryPoint& last = recent.back();
  GeoPoint pos = last.position;
  if (!last.HasSpeed() || !last.HasCourse()) return pos;
  double course = last.cog_deg;
  // The vessel keeps its own speed: the flow field contributes *geometry*
  // (where lanes bend), not kinematics — blending toward the historical
  // mean speed was measured to add ~1.5 m/s of bias on straight legs.
  const double speed = last.sog_mps;
  // Moored/drifting vessels have no meaningful course; never steer them.
  if (speed < 0.5) return pos;
  double remaining = horizon_s;
  while (remaining > 0.0) {
    const double dt = std::min(options_.step_s, remaining);
    auto it = cells_.find(KeyFor(pos));
    if (it != cells_.end()) {
      // Combine the vessel's own heading sector with its two neighbours —
      // the traffic stream it belongs to — ignoring opposing-lane sectors.
      const int sector = SectorFor(course);
      double east = 0.0, north = 0.0;
      uint32_t count = 0;
      for (int ds : {-1, 0, 1}) {
        const FlowSector& s = it->second.sectors[(sector + ds + 8) % 8];
        east += s.east_sum;
        north += s.north_sum;
        count += s.count;
      }
      if (count >= options_.min_observations) {
        const double flow_course =
            NormalizeDegrees(RadToDeg(std::atan2(east, north)));
        const double diff = AngleDifference(flow_course, course);
        if (std::abs(diff) < 100.0) {
          course = NormalizeDegrees(course + options_.blend * diff);
        }
      }
    }
    pos = Destination(pos, course, speed * dt);
    remaining -= dt;
  }
  return pos;
}

std::vector<ForecastSample> EvaluateForecaster(
    const Forecaster& forecaster, const Trajectory& truth,
    const std::vector<double>& horizons_s, int warmup, int stride) {
  std::vector<ForecastSample> out;
  const auto& pts = truth.points;
  if (static_cast<int>(pts.size()) <= warmup) return out;
  for (size_t i = warmup; i < pts.size(); i += stride) {
    std::vector<TrajectoryPoint> recent(pts.begin(),
                                        pts.begin() + static_cast<long>(i) + 1);
    // Hand the predictor a bounded history window.
    if (recent.size() > 30) {
      recent.erase(recent.begin(),
                   recent.end() - 30);
    }
    for (double h : horizons_s) {
      const Timestamp target = pts[i].t + static_cast<Timestamp>(h * 1000);
      if (target > truth.EndTime()) continue;
      const TrajectoryPoint actual = truth.At(target);
      const GeoPoint predicted = forecaster.Predict(recent, h);
      out.push_back(
          ForecastSample{h, HaversineDistance(predicted, actual.position)});
    }
  }
  return out;
}

}  // namespace marlin
