#ifndef MARLIN_CORE_EVENTS_H_
#define MARLIN_CORE_EVENTS_H_

/// \file events.h
/// \brief Complex event recognition over reconstructed vessel streams
/// (paper §3.1: "algorithms for complex event (and outlier) recognition and
/// prediction in real-time, dealing with heterogeneous, fluctuating and
/// noisy voluminous data streams").
///
/// Low-level events (zone transitions, stops, dark-period boundaries) are
/// derived per point; high-level events (rendezvous, loitering, spoofing,
/// collision risk, illegal fishing) are stateful patterns over vessels and
/// vessel pairs, contextualized by the zone database — the paper's
/// "explicit consideration of context … as a reference for anomaly
/// detection" (§4).
///
/// The detector is split along the sharding axis of the pipeline:
///  * `VesselEventEngine` holds every rule whose state is keyed by a single
///    MMSI (zones, stop/move, dark periods, loitering, fishing, spoofing).
///    One instance per pipeline shard scales linearly.
///  * `PairEventEngine` holds the vessel-pair rules (rendezvous, collision
///    risk) that need the *global* live picture. It consumes the compact
///    `PairObservation` stream the vessel engines emit, canonically ordered
///    by (event time, MMSI), downstream of the shard merge.
/// `EventEngine` composes the two for single-threaded callers and preserves
/// the original per-point behaviour exactly.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ais/types.h"
#include "common/flat_hash.h"
#include "common/ring_buffer.h"
#include "context/zones.h"
#include "core/reconstruction.h"
#include "storage/grid_index.h"

namespace marlin {

/// \brief Detected event classes.
enum class EventType : uint8_t {
  kZoneEntry = 0,
  kZoneExit,
  kStop,
  kMove,
  kDarkPeriod,      ///< reporting gap beyond the dark threshold
  kSpeedViolation,  ///< above a zone's speed limit
  kRendezvous,      ///< two slow vessels in close proximity at sea
  kLoitering,       ///< one vessel confined & slow at sea
  kIdentitySpoof,   ///< persistent conflicting reports under one MMSI
  kTeleportSpoof,   ///< isolated impossible position jump
  kCollisionRisk,   ///< CPA/TCPA below thresholds
  kIllegalFishing,  ///< fishing-speed pattern inside a prohibited zone
  kBehaviorChange,  ///< abrupt shift of a vessel's kinematic regime
  kKinematicIntegrity,  ///< reported kinematics contradict positions
  kMmsiConflict,    ///< one MMSI reporting from irreconcilable positions
};

const char* EventTypeName(EventType t);

/// \brief One detected event.
struct DetectedEvent {
  EventType type = EventType::kZoneEntry;
  Timestamp start = 0;
  Timestamp end = 0;          ///< == start for instantaneous events
  Mmsi vessel_a = 0;
  Mmsi vessel_b = 0;          ///< second participant (rendezvous/collision)
  GeoPoint where;
  uint32_t zone_id = 0;       ///< zone involved, if any
  double severity = 0.5;      ///< 0..1 operator triage hint
  Timestamp detected_at = 0;  ///< event-time when the detector fired
};

/// \brief Strict-weak order used to re-sequence events merged from pipeline
/// shards into one canonical, partition-independent stream.
bool CanonicalEventLess(const DetectedEvent& a, const DetectedEvent& b);

/// \brief Stable-sorts `events` into the canonical order. Events of one
/// vessel keep their detection order (same shard ⇒ stable); cross-vessel
/// ties are broken by vessel ids.
void ResequenceEvents(std::vector<DetectedEvent>* events);

/// \brief The per-point digest a vessel engine hands to the pair engine:
/// everything the pair rules need, nothing they can recompute.
struct PairObservation {
  Mmsi mmsi = 0;
  TrajectoryPoint point;
  bool in_port_area = false;  ///< inside a port/anchorage zone at this point
};

/// \brief Shared rule thresholds (vessel and pair rules).
struct EventRuleOptions {
  // Rendezvous
  double rendezvous_distance_m = 500.0;
  double rendezvous_max_speed_mps = 1.5;
  DurationMs rendezvous_min_duration = 10 * kMillisPerMinute;
  // Loitering
  double loiter_radius_m = 2500.0;
  double loiter_max_speed_mps = 1.5;
  DurationMs loiter_min_duration = 45 * kMillisPerMinute;
  DurationMs loiter_realert_ms = 2 * kMillisPerHour;
  // Dark periods
  DurationMs dark_threshold_ms = 15 * kMillisPerMinute;
  // Spoofing
  int identity_conflict_count = 3;
  DurationMs identity_conflict_window = 30 * kMillisPerMinute;
  // Collision risk
  double cpa_threshold_m = 300.0;
  double tcpa_horizon_s = 900.0;
  double collision_min_speed_mps = 2.0;
  double collision_scan_radius_m = 10000.0;
  DurationMs collision_realert_ms = 10 * kMillisPerMinute;
  // Illegal fishing
  double fishing_speed_lo_mps = 0.8;
  double fishing_speed_hi_mps = 3.5;
  DurationMs fishing_min_duration = 20 * kMillisPerMinute;
  // Stops
  double stop_speed_mps = 0.5;
  // Windowed pruning of stale pair-rule state (vessels unseen past the
  // horizon, inert rendezvous/collision entries). Keeps the per-window
  // state export of the grid pair stage O(active pairs) instead of
  // O(everything ever seen). The horizon must comfortably exceed both the
  // partner-freshness windows of the pair rules (5 minutes) and the worst
  // cross-window event-time regression of the feed (satellite deliveries:
  // up to 15 minutes) — pruning is behaviour-neutral under that assumption
  // because expired state is reconstructed identically on next contact.
  // 0 disables pruning.
  DurationMs pair_state_prune_age_ms = 60 * kMillisPerMinute;
};

/// \brief Counters shared by all event engines.
struct EventEngineStats {
  uint64_t points_in = 0;
  uint64_t events_out = 0;

  /// \brief Accumulates another engine's counters (per-shard merge).
  void Merge(const EventEngineStats& other) {
    points_in += other.points_in;
    events_out += other.events_out;
  }
};

/// \brief Single-vessel rules: shardable by MMSI.
class VesselEventEngine {
 public:
  using Options = EventRuleOptions;
  using Stats = EventEngineStats;

  VesselEventEngine(const ZoneDatabase* zones, const Options& options);
  explicit VesselEventEngine(const ZoneDatabase* zones)
      : VesselEventEngine(zones, Options()) {}

  /// \brief Registers static vessel info (ship type from type-5 messages);
  /// enables category-sensitive rules (illegal fishing).
  void SetVesselInfo(Mmsi mmsi, int ship_type);

  /// \brief Consumes one clean point; appends detected events. Returns the
  /// observation the pair rules need for this point.
  PairObservation Ingest(const ReconstructedPoint& rp,
                         std::vector<DetectedEvent>* out);

  /// \brief Consumes a rejected report (spoofing evidence).
  void IngestRejection(const RejectedReport& rejection,
                       std::vector<DetectedEvent>* out);

  const Stats& stats() const { return stats_; }

 private:
  /// Flat per-vessel state: the id sets are small sorted vectors (zone
  /// membership is a handful of ids), the sliding windows are ring buffers,
  /// and the whole struct lives by value in an open-addressing table — no
  /// node allocations anywhere on the per-point path.
  struct VesselState {
    TrajectoryPoint last;
    bool has_last = false;
    std::vector<uint32_t> zones;  ///< sorted ascending (emission order)
    bool stopped = false;
    bool in_port_area = false;
    // Loitering window
    RingBuffer<TrajectoryPoint> window;
    Timestamp last_loiter_alert = kInvalidTimestamp;
    // Illegal fishing accumulation per prohibited zone (tiny: linear scan)
    std::vector<std::pair<uint32_t, Timestamp>> fishing_since;
    std::vector<uint32_t> fishing_alerted;  ///< sorted ascending
    // Speed-violation rate limit per zone visit
    std::vector<uint32_t> speed_alerted;    ///< sorted ascending
    // Spoof jump history
    RingBuffer<Timestamp> jump_times;
    Timestamp last_spoof_alert = kInvalidTimestamp;
    int ship_type = 0;
  };

  void CheckZones(const ReconstructedPoint& rp, VesselState* vessel,
                  std::vector<DetectedEvent>* out);
  void CheckStopMove(const ReconstructedPoint& rp, VesselState* vessel,
                     std::vector<DetectedEvent>* out);
  void CheckLoitering(const ReconstructedPoint& rp, VesselState* vessel,
                      std::vector<DetectedEvent>* out);
  void CheckIllegalFishing(const ReconstructedPoint& rp, VesselState* vessel,
                           std::vector<DetectedEvent>* out);

  const ZoneDatabase* zones_;
  Options options_;
  FlatHashMap<Mmsi, VesselState> vessels_;
  Stats stats_;
  // Per-point scratch, reused across Ingest calls.
  std::vector<const GeoZone*> zones_at_scratch_;
  std::vector<uint32_t> zone_ids_scratch_;
};

/// \brief Vessel-pair rules (rendezvous, collision risk) over the global
/// live picture. Consumes the canonical `PairObservation` stream; a single
/// instance sits downstream of the shard merge.
///
/// The engine is also the unit of *spatial* parallelism: the grid pair
/// stage (`GridPairPartitioner`, core/pair_grid.h) runs one replica engine
/// per grid cell, seeded from the authoritative engine through the
/// snapshot/restore API below, and gates which replica may emit a given
/// pair's events through `SetEmitFilter`. All state transitions happen in
/// every replica that sees the pair — only the owner speaks — so replicas
/// stay in lockstep with what a single sequential engine would compute.
class PairEventEngine {
 public:
  using Options = EventRuleOptions;
  using Stats = EventEngineStats;

  explicit PairEventEngine(const Options& options);
  PairEventEngine() : PairEventEngine(Options()) {}

  /// \brief The canonical (event-time, MMSI) order of the pair-observation
  /// stream. Every window closer (sequential engine, sharded coordinator,
  /// grid partitioner) must sort with exactly this comparator.
  static bool ObservationLess(const PairObservation& a,
                              const PairObservation& b) {
    if (a.point.t != b.point.t) return a.point.t < b.point.t;
    return a.mmsi < b.mmsi;
  }

  /// \brief Consumes one observation; appends detected pair events.
  void Ingest(const PairObservation& obs, std::vector<DetectedEvent>* out);

  /// \brief Closes one processing window: sorts `pairs` into the canonical
  /// (event-time, MMSI) order, ingests them (clearing the vector), flushes
  /// open pair states when `flush` is set, and re-sequences `events`
  /// canonically. The sequential pipeline closes its windows here; the
  /// sharded pipeline closes them through `GridPairPartitioner::CloseWindow`,
  /// which performs these exact steps (proven equivalent by
  /// tests/pair_grid_test.cc) — the determinism guarantee depends on the
  /// two paths never diverging.
  void CloseWindow(std::vector<PairObservation>* pairs, bool flush,
                   std::vector<DetectedEvent>* events);

  /// \brief Closes open pair states at end of stream.
  void Flush(std::vector<DetectedEvent>* out);

  const Stats& stats() const { return stats_; }

  // --- Grid-parallel support (core/pair_grid.h) -----------------------------

  /// \brief Portable copy of one vessel's pair-rule state.
  struct VesselSnapshot {
    Mmsi mmsi = 0;
    TrajectoryPoint last;
    bool in_port_area = false;
  };

  /// \brief Portable copy of one rendezvous pair's dwell state (a < b).
  struct RendezvousSnapshot {
    Mmsi a = 0;
    Mmsi b = 0;
    Timestamp since = 0;
    Timestamp last_seen = 0;
    GeoPoint where;
    bool reported = false;
  };

  /// \brief Portable copy of one pair's collision re-alert clock (a < b).
  struct CollisionSnapshot {
    Mmsi a = 0;
    Mmsi b = 0;
    Timestamp last_alert = 0;
  };

  /// \brief Emission gate for cell replicas: when set, a pair event (and its
  /// `events_out` count) is produced only if the filter approves the
  /// unordered vessel pair. Every state transition — dwell accumulation,
  /// `reported` latching, re-alert clocks — still occurs, so a non-owner
  /// replica tracks exactly the state the owner does.
  void SetEmitFilter(std::function<bool(Mmsi, Mmsi)> filter) {
    emit_filter_ = std::move(filter);
  }

  /// \brief Copies every per-vessel state, ascending MMSI. Non-const:
  /// the sorted walk uses the engine's key scratch (the engine, like every
  /// stage, is single-threaded by contract).
  void ExportVessels(std::vector<VesselSnapshot>* out);

  /// \brief Copies one vessel's state; false when unknown.
  bool GetVessel(Mmsi mmsi, VesselSnapshot* out) const;

  /// \brief Copies every rendezvous pair state, ascending (a, b).
  void ExportRendezvous(std::vector<RendezvousSnapshot>* out);

  /// \brief Copies every collision re-alert clock, ascending (a, b).
  void ExportCollisions(std::vector<CollisionSnapshot>* out);

  /// \brief Installs (or overwrites) one vessel's state, including its
  /// entry in the live picture index.
  void RestoreVessel(const VesselSnapshot& snapshot);

  /// \brief Installs (or overwrites) one rendezvous pair state.
  void RestoreRendezvous(const RendezvousSnapshot& snapshot);

  /// \brief Installs (or overwrites) one collision re-alert clock.
  void RestoreCollision(const CollisionSnapshot& snapshot);

  /// \brief Advances the engine counters on behalf of work executed in cell
  /// replicas (the partitioner ingests observations and emits events outside
  /// this instance but the merged totals belong to it).
  void AccumulateStats(uint64_t points_in, uint64_t events_out) {
    stats_.points_in += points_in;
    stats_.events_out += events_out;
  }

  /// \brief Resets every vessel/pair state, the live picture, the emit
  /// filter, and the counters, keeping allocated capacity — the contract
  /// the grid pair stage's replica pool relies on to reuse engines across
  /// windows without per-window map rebuilds.
  void Clear();

  /// \brief Windowed pruning of stale state (see
  /// `EventRuleOptions::pair_state_prune_age_ms`). `window_max_t` is the
  /// newest event time of the window just closed; both window-close paths
  /// (sequential `CloseWindow`, grid `GridPairPartitioner::CloseWindow`)
  /// call this with the identical value, so the authoritative state — and
  /// with it the byte-identity guarantee — never diverges. Entries are
  /// prunable only when their disappearance is unobservable: vessels past
  /// every partner-freshness horizon, reported or sub-threshold rendezvous
  /// dwell (both reconstructed from scratch on next contact), and expired
  /// collision re-alert clocks. Returns the number of entries removed.
  size_t PruneAfterWindow(Timestamp window_max_t);

 private:
  struct VesselState {
    TrajectoryPoint last;
    bool has_last = false;
    bool in_port_area = false;
  };

  struct PairState {
    Timestamp since = 0;
    Timestamp last_seen = 0;
    GeoPoint where;
    bool reported = false;
  };

  /// Unordered pair key, packed (min << 32 | max) for the flat tables.
  static uint64_t PackPair(Mmsi a, Mmsi b) {
    const Mmsi lo = a < b ? a : b;
    const Mmsi hi = a < b ? b : a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }
  static Mmsi PairLo(uint64_t key) { return static_cast<Mmsi>(key >> 32); }
  static Mmsi PairHi(uint64_t key) {
    return static_cast<Mmsi>(key & 0xFFFFFFFFull);
  }

  bool MayEmit(Mmsi a, Mmsi b) const {
    return !emit_filter_ || emit_filter_(a, b);
  }

  void CheckRendezvous(const PairObservation& obs,
                       std::vector<DetectedEvent>* out);
  void CheckCollision(const PairObservation& obs,
                      std::vector<DetectedEvent>* out);

  Options options_;
  // Open-addressing flat tables: iteration order is slot order, so every
  // consumer whose *output* depends on order (Flush emission, the Export*
  // snapshot walks) collects keys into `key_scratch_` and sorts — the
  // explicit deterministic order the sharding equivalence proofs rest on.
  FlatHashMap<Mmsi, VesselState> vessels_;
  FlatHashMap<uint64_t, PairState> rendezvous_pairs_;
  FlatHashMap<uint64_t, Timestamp> collision_alerts_;
  GridIndex live_;
  Stats stats_;
  std::function<bool(Mmsi, Mmsi)> emit_filter_;  ///< null = always emit
  Timestamp prune_watermark_ = kInvalidTimestamp;
  std::vector<uint64_t> key_scratch_;  ///< sorted-walk scratch
  std::vector<std::pair<uint64_t, double>> radius_scratch_;  ///< scan scratch
};

/// \brief Streaming complex-event detector: the single-threaded composition
/// of the vessel and pair engines (each point flows through both in order).
class EventEngine {
 public:
  using Options = EventRuleOptions;
  using Stats = EventEngineStats;

  EventEngine(const ZoneDatabase* zones, const Options& options)
      : vessel_rules_(zones, options), pair_rules_(options) {}
  explicit EventEngine(const ZoneDatabase* zones)
      : EventEngine(zones, Options()) {}

  /// \brief Registers static vessel info (ship type from type-5 messages).
  void SetVesselInfo(Mmsi mmsi, int ship_type) {
    vessel_rules_.SetVesselInfo(mmsi, ship_type);
  }

  /// \brief Consumes one clean point; appends detected events.
  void Ingest(const ReconstructedPoint& rp, std::vector<DetectedEvent>* out) {
    pair_rules_.Ingest(vessel_rules_.Ingest(rp, out), out);
  }

  /// \brief Consumes a rejected report (spoofing evidence).
  void IngestRejection(const RejectedReport& rejection,
                       std::vector<DetectedEvent>* out) {
    vessel_rules_.IngestRejection(rejection, out);
  }

  /// \brief Closes open pair/duration states at end of stream.
  void Flush(std::vector<DetectedEvent>* out) { pair_rules_.Flush(out); }

  const Stats& stats() const {
    stats_ = vessel_rules_.stats();
    stats_.events_out += pair_rules_.stats().events_out;
    return stats_;
  }

 private:
  VesselEventEngine vessel_rules_;
  PairEventEngine pair_rules_;
  mutable Stats stats_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_EVENTS_H_
