#ifndef MARLIN_CORE_EVENTS_H_
#define MARLIN_CORE_EVENTS_H_

/// \file events.h
/// \brief Complex event recognition over reconstructed vessel streams
/// (paper §3.1: "algorithms for complex event (and outlier) recognition and
/// prediction in real-time, dealing with heterogeneous, fluctuating and
/// noisy voluminous data streams").
///
/// Low-level events (zone transitions, stops, dark-period boundaries) are
/// derived per point; high-level events (rendezvous, loitering, spoofing,
/// collision risk, illegal fishing) are stateful patterns over vessels and
/// vessel pairs, contextualized by the zone database — the paper's
/// "explicit consideration of context … as a reference for anomaly
/// detection" (§4).

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ais/types.h"
#include "context/zones.h"
#include "core/reconstruction.h"
#include "storage/grid_index.h"

namespace marlin {

/// \brief Detected event classes.
enum class EventType : uint8_t {
  kZoneEntry = 0,
  kZoneExit,
  kStop,
  kMove,
  kDarkPeriod,      ///< reporting gap beyond the dark threshold
  kSpeedViolation,  ///< above a zone's speed limit
  kRendezvous,      ///< two slow vessels in close proximity at sea
  kLoitering,       ///< one vessel confined & slow at sea
  kIdentitySpoof,   ///< persistent conflicting reports under one MMSI
  kTeleportSpoof,   ///< isolated impossible position jump
  kCollisionRisk,   ///< CPA/TCPA below thresholds
  kIllegalFishing,  ///< fishing-speed pattern inside a prohibited zone
};

const char* EventTypeName(EventType t);

/// \brief One detected event.
struct DetectedEvent {
  EventType type = EventType::kZoneEntry;
  Timestamp start = 0;
  Timestamp end = 0;          ///< == start for instantaneous events
  Mmsi vessel_a = 0;
  Mmsi vessel_b = 0;          ///< second participant (rendezvous/collision)
  GeoPoint where;
  uint32_t zone_id = 0;       ///< zone involved, if any
  double severity = 0.5;      ///< 0..1 operator triage hint
  Timestamp detected_at = 0;  ///< event-time when the detector fired
};

/// \brief Streaming complex-event detector.
class EventEngine {
 public:
  struct Options {
    // Rendezvous
    double rendezvous_distance_m = 500.0;
    double rendezvous_max_speed_mps = 1.5;
    DurationMs rendezvous_min_duration = 10 * kMillisPerMinute;
    // Loitering
    double loiter_radius_m = 2500.0;
    double loiter_max_speed_mps = 1.5;
    DurationMs loiter_min_duration = 45 * kMillisPerMinute;
    DurationMs loiter_realert_ms = 2 * kMillisPerHour;
    // Dark periods
    DurationMs dark_threshold_ms = 15 * kMillisPerMinute;
    // Spoofing
    int identity_conflict_count = 3;
    DurationMs identity_conflict_window = 30 * kMillisPerMinute;
    // Collision risk
    double cpa_threshold_m = 300.0;
    double tcpa_horizon_s = 900.0;
    double collision_min_speed_mps = 2.0;
    double collision_scan_radius_m = 10000.0;
    DurationMs collision_realert_ms = 10 * kMillisPerMinute;
    // Illegal fishing
    double fishing_speed_lo_mps = 0.8;
    double fishing_speed_hi_mps = 3.5;
    DurationMs fishing_min_duration = 20 * kMillisPerMinute;
    // Stops
    double stop_speed_mps = 0.5;
  };

  struct Stats {
    uint64_t points_in = 0;
    uint64_t events_out = 0;
  };

  EventEngine(const ZoneDatabase* zones, const Options& options);
  explicit EventEngine(const ZoneDatabase* zones)
      : EventEngine(zones, Options()) {}

  /// \brief Registers static vessel info (ship type from type-5 messages);
  /// enables category-sensitive rules (illegal fishing).
  void SetVesselInfo(Mmsi mmsi, int ship_type);

  /// \brief Consumes one clean point; appends detected events.
  void Ingest(const ReconstructedPoint& rp, std::vector<DetectedEvent>* out);

  /// \brief Consumes a rejected report (spoofing evidence).
  void IngestRejection(const RejectedReport& rejection,
                       std::vector<DetectedEvent>* out);

  /// \brief Closes open pair/duration states at end of stream.
  void Flush(std::vector<DetectedEvent>* out);

  const Stats& stats() const { return stats_; }

 private:
  struct VesselState {
    TrajectoryPoint last;
    bool has_last = false;
    std::set<uint32_t> zones;
    bool stopped = false;
    bool in_port_area = false;
    // Loitering window
    std::deque<TrajectoryPoint> window;
    Timestamp last_loiter_alert = kInvalidTimestamp;
    // Illegal fishing accumulation per prohibited zone
    std::map<uint32_t, Timestamp> fishing_since;
    std::set<uint32_t> fishing_alerted;
    // Speed-violation rate limit per zone visit
    std::set<uint32_t> speed_alerted;
    // Spoof jump history
    std::deque<Timestamp> jump_times;
    Timestamp last_spoof_alert = kInvalidTimestamp;
    int ship_type = 0;
  };

  struct PairState {
    Timestamp since = 0;
    Timestamp last_seen = 0;
    GeoPoint where;
    bool reported = false;
  };

  using PairKey = std::pair<Mmsi, Mmsi>;
  static PairKey MakePair(Mmsi a, Mmsi b) {
    return a < b ? PairKey{a, b} : PairKey{b, a};
  }

  void CheckZones(const ReconstructedPoint& rp, VesselState* vessel,
                  std::vector<DetectedEvent>* out);
  void CheckStopMove(const ReconstructedPoint& rp, VesselState* vessel,
                     std::vector<DetectedEvent>* out);
  void CheckRendezvous(const ReconstructedPoint& rp, VesselState* vessel,
                       std::vector<DetectedEvent>* out);
  void CheckLoitering(const ReconstructedPoint& rp, VesselState* vessel,
                      std::vector<DetectedEvent>* out);
  void CheckCollision(const ReconstructedPoint& rp, VesselState* vessel,
                      std::vector<DetectedEvent>* out);
  void CheckIllegalFishing(const ReconstructedPoint& rp, VesselState* vessel,
                           std::vector<DetectedEvent>* out);

  const ZoneDatabase* zones_;
  Options options_;
  std::map<Mmsi, VesselState> vessels_;
  std::map<PairKey, PairState> rendezvous_pairs_;
  std::map<PairKey, Timestamp> collision_alerts_;
  GridIndex live_;
  Stats stats_;
};

}  // namespace marlin

#endif  // MARLIN_CORE_EVENTS_H_
