#include "core/patterns.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace marlin {

int64_t PatternsOfLife::KeyFor(const GeoPoint& p) const {
  const int32_t row =
      static_cast<int32_t>(std::floor((p.lat + 90.0) / options_.cell_deg));
  const int32_t col =
      static_cast<int32_t>(std::floor((p.lon + 180.0) / options_.cell_deg));
  return (static_cast<int64_t>(row) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(col));
}

int PatternsOfLife::HeadingBucket(double cog_deg) {
  const double norm = NormalizeDegrees(cog_deg);
  return static_cast<int>(norm / 45.0) % 8;
}

void PatternsOfLife::Train(const Trajectory& trajectory) {
  for (const TrajectoryPoint& p : trajectory.points) TrainPoint(p);
}

void PatternsOfLife::TrainPoint(const TrajectoryPoint& point) {
  // Samples with unavailable kinematics would corrupt the cell model:
  // HeadingBucket(NaN) is UB (float→int cast) and the speed sums go NaN.
  if (!point.HasSpeed() || !point.HasCourse()) return;
  CellStats& cell = cells_[KeyFor(point.position)];
  ++cell.count;
  ++cell.heading[HeadingBucket(point.cog_deg)];
  cell.speed_sum += point.sog_mps;
  cell.speed_sq_sum += static_cast<double>(point.sog_mps) * point.sog_mps;
  ++total_;
}

void PatternsOfLife::Finalize() {
  max_cell_count_ = 0.0;
  for (const auto& [key, cell] : cells_) {
    max_cell_count_ =
        std::max(max_cell_count_, static_cast<double>(cell.count));
  }
}

uint64_t PatternsOfLife::CellCount(const GeoPoint& p) const {
  auto it = cells_.find(KeyFor(p));
  return it == cells_.end() ? 0 : it->second.count;
}

double PatternsOfLife::Score(const TrajectoryPoint& point) const {
  auto it = cells_.find(KeyFor(point.position));
  if (it == cells_.end() || total_ == 0) {
    return 1.0;  // never-visited water: maximally surprising
  }
  const CellStats& cell = it->second;

  // Spatial rarity: log-scaled visit count vs. the busiest cell.
  const double density =
      std::log1p(static_cast<double>(cell.count)) /
      std::log1p(std::max(1.0, max_cell_count_));
  const double spatial_rarity = 1.0 - std::min(1.0, density);

  // Heading rarity within the cell. An unavailable course contributes no
  // surprise (and HeadingBucket(NaN) would be UB).
  double heading_rarity = 0.0;
  if (point.HasCourse()) {
    const int bucket = HeadingBucket(point.cog_deg);
    const double heading_p =
        (cell.heading[bucket] + options_.smoothing) /
        (cell.count + 8.0 * options_.smoothing);
    heading_rarity = 1.0 - std::min(1.0, heading_p * 8.0 / 3.0);
  }

  // Speed deviation: z-score against cell statistics; neutral when the
  // sample carries no speed.
  double speed_surprise = 0.0;
  if (point.HasSpeed()) {
    const double mean = cell.speed_sum / cell.count;
    const double var = std::max(
        0.25, cell.speed_sq_sum / cell.count - mean * mean);
    const double z = std::abs(point.sog_mps - mean) / std::sqrt(var);
    speed_surprise = std::min(1.0, z / 4.0);
  }

  return std::clamp(
      0.45 * spatial_rarity + 0.25 * heading_rarity + 0.30 * speed_surprise,
      0.0, 1.0);
}

std::optional<AnomalyDetector::Alert> AnomalyDetector::Observe(
    uint32_t mmsi, const TrajectoryPoint& point) {
  const double score = model_->Score(point);
  if (score < options_.threshold) return std::nullopt;
  auto it = last_alert_.find(mmsi);
  if (it != last_alert_.end() &&
      point.t - it->second < options_.realert_ms) {
    return std::nullopt;
  }
  last_alert_[mmsi] = point.t;
  return Alert{mmsi, point, score};
}

}  // namespace marlin
