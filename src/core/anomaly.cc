#include "core/anomaly.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

void BehaviorChangeDetector::Ingest(const ReconstructedPoint& rp,
                                    std::vector<DetectedEvent>* out) {
  ++stats_.points_in;
  VesselState& vessel = vessels_[rp.mmsi];

  if (vessel.quarantine_remaining > 0) {
    --vessel.quarantine_remaining;
    ++stats_.points_quarantined;
    return;
  }

  // A gap boundary is a regime boundary by definition: comparing the window
  // before a dark period against the one after it would flag every
  // reacquisition. Start fresh instead.
  if (rp.starts_segment && vessel.window_points > 0) {
    for (Welford& w : vessel.window) w.Reset();
    vessel.window_points = 0;
    vessel.window_start_t = kInvalidTimestamp;
    vessel.has_prev = false;
    vessel.last_cog_t = kInvalidTimestamp;
  }

  const TrajectoryPoint& p = rp.point;
  if (vessel.window_points == 0) vessel.window_start_t = p.t;
  ++vessel.window_points;

  // Feature 0: speed over ground — only when the report carried one.
  if (p.HasSpeed()) vessel.window[0].Add(p.sog_mps);

  // Feature 1: turn rate — the reported ROT when available, else derived
  // from consecutive course fixes. Both paths skip cleanly when the fields
  // are sentinels.
  if (rp.HasTurnRate()) {
    vessel.window[1].Add(rp.turn_rate_deg_min);
  } else if (p.HasCourse()) {
    if (vessel.last_cog_t != kInvalidTimestamp && p.t > vessel.last_cog_t) {
      const double dt_min = static_cast<double>(p.t - vessel.last_cog_t) /
                            static_cast<double>(kMillisPerMinute);
      vessel.window[1].Add(
          AngleDifference(p.cog_deg, vessel.last_cog_deg) / dt_min);
    }
    vessel.last_cog_deg = p.cog_deg;
    vessel.last_cog_t = p.t;
  }

  if (vessel.window_points >= options_.window_points) {
    CloseWindow(rp.mmsi, rp, &vessel, out);
  }
}

void BehaviorChangeDetector::CloseWindow(Mmsi mmsi,
                                         const ReconstructedPoint& rp,
                                         VesselState* vessel,
                                         std::vector<DetectedEvent>* out) {
  ++stats_.windows_closed;

  FeatureSummary current[kFeatures];
  for (int f = 0; f < kFeatures; ++f) {
    current[f] = FeatureSummary{vessel->window[f].count,
                                vessel->window[f].mean,
                                vessel->window[f].Variance()};
  }

  if (vessel->has_prev) {
    // Normalised mean-shift divergence over the features both windows have
    // evidence for. A feature absent from either window (all-sentinel
    // stretch) contributes nothing — never a fabricated zero.
    constexpr double kEps = 1e-3;
    double divergence = 0.0;
    int compared = 0;
    for (int f = 0; f < kFeatures; ++f) {
      if (current[f].count < 2 || vessel->prev[f].count < 2) continue;
      const double delta = current[f].mean - vessel->prev[f].mean;
      divergence +=
          delta * delta /
          (current[f].variance + vessel->prev[f].variance + kEps);
      ++compared;
    }

    if (compared > 0) {
      const Welford& history = vessel->score_history;
      if (static_cast<int>(history.count) >= options_.min_history_windows) {
        const double threshold =
            std::max(options_.min_divergence,
                     history.mean + options_.threshold_z *
                                        std::sqrt(history.Variance()));
        if (divergence > threshold &&
            (vessel->last_alert == kInvalidTimestamp ||
             rp.point.t - vessel->last_alert >= options_.realert_ms)) {
          vessel->last_alert = rp.point.t;
          ++stats_.changes_flagged;
          DetectedEvent ev;
          ev.type = EventType::kBehaviorChange;
          ev.start = vessel->window_start_t;
          ev.end = rp.point.t;
          ev.vessel_a = mmsi;
          ev.where = rp.point.position;
          ev.severity =
              std::min(0.95, 0.6 + 0.05 * (divergence / threshold));
          ev.detected_at = rp.point.t;
          out->push_back(ev);
          ++stats_.events_out;
        }
      }
      vessel->score_history.Add(divergence);
    }
  }

  for (int f = 0; f < kFeatures; ++f) {
    vessel->prev[f] = current[f];
    vessel->window[f].Reset();
  }
  vessel->has_prev = true;
  vessel->window_points = 0;
  vessel->window_start_t = kInvalidTimestamp;
}

void BehaviorChangeDetector::Poison(Mmsi mmsi) {
  VesselState& vessel = vessels_[mmsi];
  for (Welford& w : vessel.window) w.Reset();
  vessel.window_points = 0;
  vessel.window_start_t = kInvalidTimestamp;
  vessel.has_prev = false;
  vessel.last_cog_t = kInvalidTimestamp;
  vessel.quarantine_remaining = options_.quarantine_points;
}

}  // namespace marlin
