#include "core/integrity.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

void IntegrityScorer::EmitEvent(EventType type, const PositionReport& report,
                                Timestamp event_time, double severity,
                                std::vector<DetectedEvent>* out) {
  if (out == nullptr) return;
  DetectedEvent ev;
  ev.type = type;
  ev.start = ev.end = ev.detected_at = event_time;
  ev.vessel_a = report.mmsi;
  ev.where = report.position;
  ev.severity = severity;
  out->push_back(ev);
  ++stats_.events_out;
}

bool IntegrityScorer::Assess(const PositionReport& report,
                             std::vector<DetectedEvent>* out) {
  // Reports without a usable position/time are the reconstruction stage's
  // problem (it rejects them as invalid); there is nothing to score.
  if (!report.HasPosition() || report.received_at == kInvalidTimestamp) {
    return true;
  }
  ++stats_.reports_checked;
  const Timestamp event_time =
      ResolveEventTime(report.utc_second, report.received_at);
  VesselState& vessel = vessels_[report.mmsi];
  bool ok = true;

  // Reported rate of turn beyond ship physics: the field is corrupt or
  // fabricated regardless of what the positions say.
  if (report.HasTurnRate() &&
      std::abs(report.TurnRateDegPerMin()) > options_.max_turn_rate_deg_min) {
    ++stats_.turn_rate_flags;
    ok = false;
    if (vessel.last_kinematic_alert == kInvalidTimestamp ||
        event_time - vessel.last_kinematic_alert >= options_.realert_ms) {
      vessel.last_kinematic_alert = event_time;
      EmitEvent(EventType::kKinematicIntegrity, report, event_time, 0.6, out);
    }
  }

  if (vessel.last_t != kInvalidTimestamp) {
    const DurationMs dt = event_time - vessel.last_t;
    const double dist = HaversineDistance(vessel.last_pos, report.position);
    bool conflict = false;

    if (dt >= 0 && dt < options_.min_dt_ms) {
      // Colocated in time: two fixes this close together cannot be far
      // apart in space unless two transmitters share the identity.
      if (dist > options_.colocation_distance_m) {
        ++stats_.time_flags;
        conflict = true;
      }
    } else if (dt >= options_.min_dt_ms) {
      const double implied = dist / (static_cast<double>(dt) / 1000.0);
      if (implied > options_.max_speed_mps) {
        // Irreconcilable positions under one MMSI.
        conflict = true;
      } else if (report.HasSpeed()) {
        // The movement is physically possible — does the *reported* SOG
        // agree with it? A transponder replaying a stale track, or feeding
        // fabricated kinematics, disagrees persistently.
        const double reported = KnotsToMps(report.sog_knots);
        const double tolerance =
            std::max(options_.sog_tolerance_mps,
                     options_.sog_tolerance_rel * std::max(implied, reported));
        if (std::abs(implied - reported) > tolerance) {
          ++vessel.sog_mismatch_streak;
          if (vessel.sog_mismatch_streak >= options_.sog_mismatch_streak) {
            ++stats_.kinematic_flags;
            ok = false;
            if (vessel.last_kinematic_alert == kInvalidTimestamp ||
                event_time - vessel.last_kinematic_alert >=
                    options_.realert_ms) {
              vessel.last_kinematic_alert = event_time;
              EmitEvent(EventType::kKinematicIntegrity, report, event_time,
                        0.65, out);
            }
          }
        } else {
          vessel.sog_mismatch_streak = 0;
        }
      }
    }
    // Negative dt (event-time regression after resolution) is the reorder
    // stage's business, not integrity evidence: satellite deliveries
    // legitimately regress.

    if (conflict) {
      ++stats_.spoof_flags;
      ok = false;
      auto& window = vessel.conflict_times;
      window.push_back(event_time);
      while (!window.empty() &&
             event_time - window.front() > options_.conflict_window_ms) {
        window.pop_front();
      }
      if (static_cast<int>(window.size()) >= options_.conflict_count &&
          (vessel.last_conflict_alert == kInvalidTimestamp ||
           event_time - vessel.last_conflict_alert >= options_.realert_ms)) {
        vessel.last_conflict_alert = event_time;
        EmitEvent(EventType::kMmsiConflict, report, event_time, 0.9, out);
      }
    }
  }

  // The frontier advances on every scored report — including flagged ones:
  // under a spoofing duel each camp conflicts with the other's last fix,
  // which is exactly the alternating evidence the window accumulates.
  vessel.last_t = event_time;
  vessel.last_pos = report.position;

  source_quality_.Record(kSourceName, ok);
  return ok;
}

}  // namespace marlin
