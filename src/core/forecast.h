#ifndef MARLIN_CORE_FORECAST_H_
#define MARLIN_CORE_FORECAST_H_

/// \file forecast.h
/// \brief Trajectory prediction at multiple time scales (paper §3.1:
/// "algorithms for the prediction of anticipated vessel trajectories at
/// different time scale, which is fundamental to achieve early warning
/// maritime monitoring").
///
/// Three predictors, from baseline to route-aware:
///  * dead reckoning — constant speed & course,
///  * constant turn — extrapolates the recent turn rate,
///  * flow-field — follows a motion field learned from historical traffic
///    (a compact stand-in for route-network prediction: lanes emerge as
///    high-confidence flow cells).

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "storage/trajectory.h"

namespace marlin {

/// \brief Common predictor interface.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// \brief Predicts the position `horizon_s` seconds after the last sample
  /// of `recent` (recent samples oldest→newest; at least one required).
  virtual GeoPoint Predict(const std::vector<TrajectoryPoint>& recent,
                           double horizon_s) const = 0;

  virtual const char* name() const = 0;
};

/// \brief Constant speed & course baseline.
class DeadReckoningForecaster : public Forecaster {
 public:
  GeoPoint Predict(const std::vector<TrajectoryPoint>& recent,
                   double horizon_s) const override;
  const char* name() const override { return "dead-reckoning"; }
};

/// \brief Constant-turn-rate extrapolation from the last few samples.
class ConstantTurnForecaster : public Forecaster {
 public:
  /// \brief `window` = number of trailing samples used to fit the turn rate.
  explicit ConstantTurnForecaster(int window = 5) : window_(window) {}

  GeoPoint Predict(const std::vector<TrajectoryPoint>& recent,
                   double horizon_s) const override;
  const char* name() const override { return "constant-turn"; }

 private:
  int window_;
};

/// \brief Motion flow field learned from historical trajectories.
///
/// Each grid cell holds eight heading-sector accumulators of the mean
/// velocity of traffic through it. Heading resolution is what makes the
/// field usable on real sea lanes, which are bidirectional: a single
/// per-cell mean would average opposing streams into nonsense. Prediction
/// integrates the field: at each step the vessel's course relaxes toward
/// the flow of its own traffic stream, capturing lane curvature that dead
/// reckoning misses.
class FlowFieldForecaster : public Forecaster {
 public:
  struct Options {
    double cell_deg = 0.05;
    double step_s = 20.0;        ///< integration step
    double blend = 0.5;          ///< per-step course relaxation toward flow
    uint32_t min_observations = 5;  ///< sectors below this are ignored
  };

  FlowFieldForecaster() : FlowFieldForecaster(Options()) {}
  explicit FlowFieldForecaster(const Options& options) : options_(options) {}

  /// \brief Accumulates historical traffic.
  void Train(const Trajectory& trajectory);

  GeoPoint Predict(const std::vector<TrajectoryPoint>& recent,
                   double horizon_s) const override;
  const char* name() const override { return "flow-field"; }

  size_t CellsUsed() const { return cells_.size(); }

 private:
  struct FlowSector {
    double east_sum = 0.0;
    double north_sum = 0.0;
    double speed_sum = 0.0;
    uint32_t count = 0;
  };
  struct FlowCell {
    FlowSector sectors[8];
  };

  int64_t KeyFor(const GeoPoint& p) const;
  static int SectorFor(double cog_deg);

  Options options_;
  std::unordered_map<int64_t, FlowCell> cells_;
};

/// \brief Forecast-error measurement for experiment E9.
struct ForecastSample {
  double horizon_s = 0.0;
  double error_m = 0.0;
};

/// \brief Evaluates a forecaster against ground truth: at each evaluation
/// point, predict `horizon_s` ahead and measure the great-circle error.
/// `warmup` = number of leading samples handed to the predictor as history.
std::vector<ForecastSample> EvaluateForecaster(
    const Forecaster& forecaster, const Trajectory& truth,
    const std::vector<double>& horizons_s, int warmup = 10,
    int stride = 10);

}  // namespace marlin

#endif  // MARLIN_CORE_FORECAST_H_
