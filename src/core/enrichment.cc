#include "core/enrichment.h"

#include <chrono>

namespace marlin {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t MicrosSince(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - start)
          .count());
}

}  // namespace

EnrichedPoint EnrichmentEngine::Enrich(const ReconstructedPoint& rp,
                                       SourceTimings* timings) {
  EnrichedPoint out;
  out.base = rp;
  ++stats_.points;

  if (zones_ != nullptr) {
    const auto start = timings != nullptr ? SteadyClock::now()
                                          : SteadyClock::time_point();
    zones_->ZonesAtInto(rp.point.position, &zones_scratch_);
    for (const GeoZone* z : zones_scratch_) {
      out.zone_ids.push_back(z->id);
    }
    if (!out.zone_ids.empty()) ++stats_.zone_hits;
    if (timings != nullptr) {
      timings->zones_ran = true;
      timings->zones_us = MicrosSince(start);
    }
  }
  if (weather_ != nullptr) {
    const auto start = timings != nullptr ? SteadyClock::now()
                                          : SteadyClock::time_point();
    out.weather = weather_->At(rp.point.position, rp.point.t);
    if (timings != nullptr) {
      timings->weather_ran = true;
      timings->weather_us = MicrosSince(start);
    }
  }
  // Only the registry_a_ branches below consult a registry; skip the clock
  // read entirely when none is configured.
  const bool time_registry = timings != nullptr && registry_a_ != nullptr;
  const auto registry_start =
      time_registry ? SteadyClock::now() : SteadyClock::time_point();
  bool registry_ran = false;
  if (registry_a_ != nullptr && registry_b_ != nullptr) {
    registry_ran = true;
    const auto resolved = resolver_.Resolve(*registry_a_, *registry_b_, rp.mmsi);
    if (resolved.has_value()) {
      ++stats_.registry_hits;
      out.category = ShipTypeToCategory(resolved->record.ship_type);
      out.vessel_name = resolved->record.name;
      out.registry_conflict = !resolved->conflicting_fields.empty();
      if (out.registry_conflict) ++stats_.registry_conflicts;
    }
  } else if (registry_a_ != nullptr) {
    registry_ran = true;
    const auto rec = registry_a_->Lookup(rp.mmsi);
    if (rec.has_value()) {
      ++stats_.registry_hits;
      out.category = ShipTypeToCategory(rec->ship_type);
      out.vessel_name = rec->name;
    }
  }
  if (timings != nullptr && registry_ran) {
    timings->registry_ran = true;
    timings->registry_us = MicrosSince(registry_start);
  }
  return out;
}

}  // namespace marlin
