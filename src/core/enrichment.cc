#include "core/enrichment.h"

namespace marlin {

EnrichedPoint EnrichmentEngine::Enrich(const ReconstructedPoint& rp) {
  EnrichedPoint out;
  out.base = rp;
  ++stats_.points;

  if (zones_ != nullptr) {
    for (const GeoZone* z : zones_->ZonesAt(rp.point.position)) {
      out.zone_ids.push_back(z->id);
    }
    if (!out.zone_ids.empty()) ++stats_.zone_hits;
  }
  if (weather_ != nullptr) {
    out.weather = weather_->At(rp.point.position, rp.point.t);
  }
  if (registry_a_ != nullptr && registry_b_ != nullptr) {
    const auto resolved = resolver_.Resolve(*registry_a_, *registry_b_, rp.mmsi);
    if (resolved.has_value()) {
      ++stats_.registry_hits;
      out.category = ShipTypeToCategory(resolved->record.ship_type);
      out.vessel_name = resolved->record.name;
      out.registry_conflict = !resolved->conflicting_fields.empty();
      if (out.registry_conflict) ++stats_.registry_conflicts;
    }
  } else if (registry_a_ != nullptr) {
    const auto rec = registry_a_->Lookup(rp.mmsi);
    if (rec.has_value()) {
      ++stats_.registry_hits;
      out.category = ShipTypeToCategory(rec->ship_type);
      out.vessel_name = rec->name;
    }
  }
  return out;
}

}  // namespace marlin
