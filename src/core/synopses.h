#ifndef MARLIN_CORE_SYNOPSES_H_
#define MARLIN_CORE_SYNOPSES_H_

/// \file synopses.h
/// \brief Online trajectory synopses: critical-point compression of vessel
/// streams (paper §2.1: "state of the art techniques have achieved a
/// compression ratio of 95 % over AIS vessel traces. The challenge here is
/// to address high levels of data compression without compromising the
/// accuracy of the prediction / detection components").
///
/// The datAcron-style synopsis keeps only *critical points*: segment
/// starts/ends (gaps), stops/restarts, significant turns, significant speed
/// changes, and points whose omission would exceed a dead-reckoning error
/// bound. Everything else is reconstructible by interpolation within the
/// bound.

#include <cstdint>
#include <map>
#include <vector>

#include "ais/types.h"
#include "core/reconstruction.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief Why a point was kept in the synopsis.
enum class CriticalPointType : uint8_t {
  kSegmentStart = 0,
  kSegmentEnd,     ///< emitted retrospectively when a gap opens
  kStop,           ///< speed dropped below the stop threshold
  kRestart,        ///< speed rose above the stop threshold
  kTurn,           ///< course changed beyond the turn threshold
  kSpeedChange,    ///< speed changed beyond the relative threshold
  kDeviation,      ///< dead-reckoning error bound exceeded
  kHeartbeat,      ///< periodic keep-alive (bounds reconstruction gaps)
};

const char* CriticalPointTypeName(CriticalPointType t);

/// \brief One synopsis sample.
struct CriticalPoint {
  Mmsi mmsi = 0;
  TrajectoryPoint point;
  CriticalPointType type = CriticalPointType::kSegmentStart;
};

/// \brief Streaming synopsis engine (one instance serves all vessels).
class SynopsisEngine {
 public:
  struct Options {
    double turn_threshold_deg = 8.0;
    double speed_change_rel = 0.25;       ///< relative SOG change
    double stop_speed_mps = 0.6;          ///< ≈ 1.2 knots
    double deviation_threshold_m = 50.0;  ///< dead-reckoning error bound
    DurationMs heartbeat_ms = 15 * kMillisPerMinute;
  };

  struct Stats {
    uint64_t points_in = 0;
    uint64_t points_out = 0;

    /// \brief Accumulates another engine's counters (per-shard merge).
    void Merge(const Stats& other) {
      points_in += other.points_in;
      points_out += other.points_out;
    }

    double CompressionRatio() const {
      return points_in == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(points_out) /
                             static_cast<double>(points_in);
    }
  };

  SynopsisEngine() : SynopsisEngine(Options()) {}
  explicit SynopsisEngine(const Options& options) : options_(options) {}

  /// \brief Consumes one reconstructed point; emits zero or more critical
  /// points (a deviation may retro-emit the previous point).
  void Ingest(const ReconstructedPoint& rp, std::vector<CriticalPoint>* out);

  /// \brief Compresses a whole trajectory offline (batch convenience used
  /// by E2 and tests).
  std::vector<CriticalPoint> CompressTrajectory(const Trajectory& trajectory);

  const Stats& stats() const { return stats_; }

 private:
  struct VesselState {
    bool has_last_emitted = false;
    TrajectoryPoint last_emitted;   ///< last critical point
    bool stopped = false;
    bool has_prev = false;
    TrajectoryPoint prev;           ///< previous raw point (for retro-emit)
  };

  void Emit(Mmsi mmsi, const TrajectoryPoint& p, CriticalPointType type,
            VesselState* vessel, std::vector<CriticalPoint>* out);

  Options options_;
  std::map<Mmsi, VesselState> vessels_;
  Stats stats_;
};

/// \brief Rebuilds an approximate trajectory from a synopsis (linear
/// interpolation between critical points) — used to measure SED error.
Trajectory ReconstructFromSynopsis(Mmsi mmsi,
                                   const std::vector<CriticalPoint>& synopsis);

}  // namespace marlin

#endif  // MARLIN_CORE_SYNOPSES_H_
