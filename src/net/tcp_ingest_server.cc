#include "net/tcp_ingest_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace marlin {

namespace {

std::string PeerString(const struct sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

Timestamp WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TcpIngestServer::TcpIngestServer(TcpIngestOptions options)
    : options_(std::move(options)),
      dead_letters_(options_.dead_letter_capacity) {}

TcpIngestServer::~TcpIngestServer() { Stop(); }

Timestamp TcpIngestServer::NowIngest() const {
  return options_.clock ? options_.clock() : WallClockMs();
}

Status TcpIngestServer::Start() {
  if (started_) return Status::Invalid("server already started");
  Status st = loop_.Init();
  if (!st.ok()) return st;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::Invalid("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  struct sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  st = loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAccept(); });
  if (!st.ok()) return st;

  started_ = true;
  loop_thread_ = std::thread([this] { loop_.Run(); });
  return Status::OK();
}

void TcpIngestServer::Stop() {
  if (!started_) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  started_ = false;
  loop_.Stop();
  loop_thread_.join();
  // Loop thread is gone; run end-of-stream accounting for stragglers so
  // partially received data is dead-lettered, never silently dropped.
  std::vector<Connection*> open;
  open.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) open.push_back(conn.get());
  for (Connection* conn : open) {
    ConsumeBytes(conn, std::string_view(), /*eof=*/true);
    CloseConnection(conn);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TcpIngestServer::OnAccept() {
  for (;;) {
    struct sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<struct sockaddr*>(&peer),
                  &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    auto conn = std::make_unique<Connection>(options_);
    conn->fd = fd;
    conn->id = next_connection_id_++;
    conn->peer = PeerString(peer);
    Connection* raw = conn.get();
    connections_[fd] = std::move(conn);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++totals_.connections_accepted;
      ++totals_.connections_open;
      ConnectionIngestStats cs;
      cs.connection_id = raw->id;
      cs.peer = raw->peer;
      cs.open = true;
      open_connections_[raw->id] = std::move(cs);
    }
    quiesce_cv_.notify_all();
    loop_.Add(fd, EPOLLIN | EPOLLRDHUP,
              [this, raw](uint32_t events) { OnConnectionReadable(raw, events); });
  }
}

void TcpIngestServer::OnConnectionReadable(Connection* conn, uint32_t events) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      ConsumeBytes(conn, std::string_view(buf, static_cast<size_t>(n)),
                   /*eof=*/false);
      continue;
    }
    if (n == 0) {  // orderly shutdown: flush partials into the ledger
      ConsumeBytes(conn, std::string_view(), /*eof=*/true);
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ConsumeBytes(conn, std::string_view(), /*eof=*/true);
    CloseConnection(conn);
    return;
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    ConsumeBytes(conn, std::string_view(), /*eof=*/true);
    CloseConnection(conn);
  }
}

void TcpIngestServer::ConsumeBytes(Connection* conn, std::string_view chunk,
                                   bool eof) {
  conn->bytes_in += chunk.size();
  const Timestamp now = NowIngest();

  std::vector<Event<std::string>> lines;
  std::vector<Event<PackedRecord>> packed;
  std::vector<std::string> bad_lines;
  std::vector<FrameDecoder::Fault> faults;

  if (options_.mode == WireMode::kLines) {
    std::vector<std::string> complete;
    conn->lines.Feed(chunk, &complete, &bad_lines);
    if (eof) conn->lines.Finish(&bad_lines);
    lines.reserve(complete.size());
    for (std::string& line : complete) {
      // Raw lines carry no envelope: arrival is both event and ingest time,
      // and the connection id is the fragment-isolation source.
      lines.emplace_back(now, now, conn->id, std::move(line));
    }
  } else {
    conn->frames.Feed(chunk);
    DecodedFrame frame;
    while (conn->frames.Next(&frame)) {
      if (frame.kind == FrameKind::kLine) {
        lines.push_back(std::move(frame.line));
      } else {
        packed.push_back(std::move(frame.packed));
      }
    }
    if (eof) conn->frames.Finish();
    faults = conn->frames.TakeFaults();
  }

  conn->delivered_lines += lines.size();
  conn->delivered_frames += packed.size() +
                            (options_.mode == WireMode::kFrames ? lines.size()
                                                                : 0);
  conn->bad_lines += bad_lines.size();
  conn->bad_frames += faults.size();

  for (const std::string& bad : bad_lines) {
    dead_letters_.Push(DeadLetterReason::kBadSentence, bad, now);
  }
  for (const FrameDecoder::Fault& fault : faults) {
    dead_letters_.PushCount(fault.reason, 1);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (Event<std::string>& ev : lines) line_buffer_.push_back(std::move(ev));
  for (Event<PackedRecord>& ev : packed) {
    packed_buffer_.push_back(std::move(ev));
  }
  // Roll-up byte/line totals are derived from the per-connection counters
  // in stats(); only the connection lifecycle counters live in totals_.
  auto it = open_connections_.find(conn->id);
  if (it != open_connections_.end()) {
    it->second.bytes_in = conn->bytes_in;
    it->second.lines = conn->delivered_lines;
    it->second.frames = conn->delivered_frames;
    it->second.bad_lines = conn->bad_lines;
    it->second.bad_frames = conn->bad_frames;
  }
}

void TcpIngestServer::CloseConnection(Connection* conn) {
  const int fd = conn->fd;
  loop_.Remove(fd);
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_connections_.find(conn->id);
    if (it != open_connections_.end()) {
      it->second.open = false;
      closed_connections_.push_back(std::move(it->second));
      open_connections_.erase(it);
    }
    if (totals_.connections_open > 0) --totals_.connections_open;
  }
  quiesce_cv_.notify_all();
  connections_.erase(fd);  // destroys *conn
}

size_t TcpIngestServer::DrainLines(std::vector<Event<std::string>>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t n = line_buffer_.size();
  out->reserve(out->size() + n);
  for (Event<std::string>& ev : line_buffer_) out->push_back(std::move(ev));
  line_buffer_.clear();
  return n;
}

size_t TcpIngestServer::DrainPacked(std::vector<Event<PackedRecord>>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t n = packed_buffer_.size();
  out->reserve(out->size() + n);
  for (Event<PackedRecord>& ev : packed_buffer_) {
    out->push_back(std::move(ev));
  }
  packed_buffer_.clear();
  return n;
}

NetIngestStats TcpIngestServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  NetIngestStats out;
  out.connections_accepted = totals_.connections_accepted;
  out.connections_open = totals_.connections_open;
  out.connections.reserve(open_connections_.size() +
                          closed_connections_.size());
  for (const auto& [id, cs] : open_connections_) {
    out.connections.push_back(cs);
  }
  for (const ConnectionIngestStats& cs : closed_connections_) {
    out.connections.push_back(cs);
  }
  for (const ConnectionIngestStats& cs : out.connections) {
    out.bytes_in += cs.bytes_in;
    out.lines += cs.lines;
    out.frames += cs.frames;
    out.bad_lines += cs.bad_lines;
    out.bad_frames += cs.bad_frames;
  }
  return out;
}

bool TcpIngestServer::WaitForConnectionsClosed(uint64_t min_accepted,
                                               DurationMs timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return quiesce_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        return totals_.connections_accepted >= min_accepted &&
               totals_.connections_open == 0;
      });
}

}  // namespace marlin
