#ifndef MARLIN_NET_EPOLL_LOOP_H_
#define MARLIN_NET_EPOLL_LOOP_H_

/// \file epoll_loop.h
/// \brief Minimal single-threaded epoll event loop — the reactor under the
/// ingest servers (live AIS feeds are line-oriented TCP/UDP; paper §1:
/// heterogeneous live feeds are the system's front door).
///
/// One thread owns the loop: handlers are registered before `Run` or from
/// inside a handler (the accept path registering a new connection), and
/// they execute on the loop thread. The only cross-thread entry point is
/// `Stop`, which is async-signal-style safe via an eventfd doorbell —
/// `Run` returns after the current dispatch round.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/status.h"

namespace marlin {

/// \brief Level-triggered epoll reactor. Single loop thread; `Stop` may be
/// called from any thread.
class EpollLoop {
 public:
  /// Invoked on the loop thread with the ready `EPOLL*` event mask.
  using Handler = std::function<void(uint32_t events)>;

  EpollLoop() = default;
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// \brief Creates the epoll instance and the wake-up eventfd.
  Status Init();

  bool initialized() const { return epoll_fd_ >= 0; }

  /// \brief Registers `fd` for `events` (level-triggered). The handler is
  /// retained until `Remove(fd)`.
  Status Add(int fd, uint32_t events, Handler handler);

  /// \brief Deregisters `fd`. Safe to call from inside its own handler
  /// (dispatch holds a reference for the duration of the call).
  void Remove(int fd);

  /// \brief Dispatches ready handlers until `Stop`.
  void Run();

  /// \brief One epoll_wait + dispatch round. Returns the number of events
  /// dispatched, 0 on timeout, -1 once stopped.
  int PollOnce(int timeout_ms);

  /// \brief Requests loop exit (thread-safe, idempotent).
  void Stop();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  /// shared_ptr so a handler can Remove itself mid-dispatch while the
  /// in-flight call keeps its callable alive.
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;
};

}  // namespace marlin

#endif  // MARLIN_NET_EPOLL_LOOP_H_
