#include "net/epoll_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>

namespace marlin {

EpollLoop::~EpollLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EpollLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") + strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + strerror(errno));
  }
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           strerror(errno));
  }
  return Status::OK();
}

Status EpollLoop::Add(int fd, uint32_t events, Handler handler) {
  struct epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(add): ") + strerror(errno));
  }
  handlers_[fd] = std::make_shared<Handler>(std::move(handler));
  return Status::OK();
}

void EpollLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EpollLoop::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (PollOnce(-1) < 0) break;
  }
}

int EpollLoop::PollOnce(int timeout_ms) {
  if (stop_.load(std::memory_order_acquire)) return -1;
  std::array<struct epoll_event, 64> events;
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    return errno == EINTR ? 0 : -1;
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      uint64_t token = 0;
      while (::read(wake_fd_, &token, sizeof(token)) > 0) {
      }
      continue;
    }
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by an earlier handler
    const std::shared_ptr<Handler> handler = it->second;
    (*handler)(events[i].events);
    ++dispatched;
  }
  return stop_.load(std::memory_order_acquire) ? -1 : dispatched;
}

void EpollLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

}  // namespace marlin
