#ifndef MARLIN_NET_TCP_INGEST_SERVER_H_
#define MARLIN_NET_TCP_INGEST_SERVER_H_

/// \file tcp_ingest_server.h
/// \brief epoll-based TCP ingest server: the network front door for
/// line-oriented AIS feeds and for the framed PackedBits transport
/// (stream/frame.h).
///
/// One loop thread accepts connections and reads whatever the kernel has;
/// per-connection reassembly (LineReassembler in `kLines` mode,
/// FrameDecoder in `kFrames` mode) turns the arbitrary chunk stream back
/// into records. Complete records land in internal drain buffers that the
/// pipeline driver pulls between `IngestBatch` calls — the server never
/// calls into the pipeline, so ingest cadence (and therefore window
/// boundaries) stays under the driver's deterministic control.
///
/// Malformed input follows the counted-not-silent invariant: oversized or
/// EOF-truncated lines and corrupt/oversized frames become dead letters
/// with exact reason codes (`kBadSentence`, `kFrameCorrupt`,
/// `kFrameOversized`), drainable via `DrainDeadLetters`.
///
/// Fragment isolation: every record carries the connection id as its
/// `Event::source_id` (raw-line mode), so a pipeline running with
/// `fragment_group_by_source` keys multi-fragment reassembly per
/// connection — two feeds interleaving fragments with colliding
/// (sequential-id, channel, count) keys cannot cross-contaminate. Framed
/// mode ships the sender's envelope verbatim instead.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "net/epoll_loop.h"
#include "net/line_reassembler.h"
#include "stream/dead_letter.h"
#include "stream/event.h"
#include "stream/frame.h"
#include "stream/net_stats.h"

namespace marlin {

/// \brief What the bytes on a connection encode.
enum class WireMode {
  kLines,   ///< newline-delimited NMEA sentences (standard AIS feed)
  kFrames,  ///< length-prefixed CRC frames (stream/frame.h)
};

struct TcpIngestOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via `port()`
  WireMode mode = WireMode::kLines;
  LineReassembler::Options line;            ///< kLines reassembly knobs
  size_t max_frame_payload = kMaxFramePayload;  ///< kFrames length cap
  size_t dead_letter_capacity = 1024;
  /// Ingest clock for raw-line mode (frames carry their own envelope).
  /// Defaults to wall-clock milliseconds; tests inject a deterministic one.
  std::function<Timestamp()> clock;
};

/// \brief Loopback-capable TCP line/frame server on its own epoll thread.
class TcpIngestServer {
 public:
  explicit TcpIngestServer(TcpIngestOptions options);
  ~TcpIngestServer();

  TcpIngestServer(const TcpIngestServer&) = delete;
  TcpIngestServer& operator=(const TcpIngestServer&) = delete;

  /// \brief Binds, listens, and spawns the loop thread.
  Status Start();

  /// \brief Stops the loop, closes every connection (running their
  /// end-of-stream accounting), joins the thread. Idempotent.
  void Stop();

  /// \brief The bound port (after `Start`), for ephemeral-port tests.
  uint16_t port() const { return port_; }

  /// \brief Moves buffered line events (arrival order) into `out`; returns
  /// how many. Raw-line mode stamps `event_time = ingest_time = clock()`
  /// and `source_id = connection id`; framed `kLine` records carry the
  /// sender's envelope verbatim.
  size_t DrainLines(std::vector<Event<std::string>>* out);

  /// \brief Moves buffered `kPacked` frame records into `out`.
  size_t DrainPacked(std::vector<Event<PackedRecord>>* out);

  /// \brief Moves retained dead letters (transport faults) into `out`.
  size_t DrainDeadLetters(std::vector<DeadLetter>* out) {
    return dead_letters_.Drain(out);
  }

  const DeadLetterQueue& dead_letters() const { return dead_letters_; }

  /// \brief Roll-up + per-connection counters (open and closed).
  NetIngestStats stats() const;

  /// \brief Blocks until at least `min_accepted` connections have been
  /// accepted and none remain open (every byte read and accounted), or the
  /// timeout expires. The replay drivers' quiescence barrier.
  bool WaitForConnectionsClosed(uint64_t min_accepted, DurationMs timeout_ms);

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string peer;
    LineReassembler lines;
    FrameDecoder frames;
    uint64_t delivered_lines = 0;
    uint64_t delivered_frames = 0;
    uint64_t bad_lines = 0;
    uint64_t bad_frames = 0;
    uint64_t bytes_in = 0;

    explicit Connection(const TcpIngestOptions& options)
        : lines(options.line), frames(options.max_frame_payload) {}
  };

  void OnAccept();
  void OnConnectionReadable(Connection* conn, uint32_t events);
  /// Runs reassembly over one read chunk (or end-of-stream when `eof`).
  void ConsumeBytes(Connection* conn, std::string_view chunk, bool eof);
  void CloseConnection(Connection* conn);
  Timestamp NowIngest() const;

  const TcpIngestOptions options_;
  EpollLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_connection_id_ = 1;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  DeadLetterQueue dead_letters_;

  mutable std::mutex mutex_;  ///< guards buffers + stats below
  std::condition_variable quiesce_cv_;
  std::vector<Event<std::string>> line_buffer_;
  std::vector<Event<PackedRecord>> packed_buffer_;
  NetIngestStats totals_;  ///< roll-up counters (connections vector unused)
  std::vector<ConnectionIngestStats> closed_connections_;
  std::unordered_map<uint64_t, ConnectionIngestStats> open_connections_;
  bool started_ = false;
};

}  // namespace marlin

#endif  // MARLIN_NET_TCP_INGEST_SERVER_H_
