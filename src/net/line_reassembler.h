#ifndef MARLIN_NET_LINE_REASSEMBLER_H_
#define MARLIN_NET_LINE_REASSEMBLER_H_

/// \file line_reassembler.h
/// \brief Reassembles newline-delimited NMEA sentences from an arbitrary
/// TCP chunk stream.
///
/// TCP delivers a byte stream, not lines: a sentence may straddle any read
/// boundary — mid-payload, mid-checksum, even between the `\r` and the
/// `\n`. This reassembler is boundary-oblivious by construction: it splits
/// on `\n` only and strips exactly one trailing `\r` afterwards, so every
/// split pattern of the same bytes yields the same sentence sequence.
///
/// Robustness contract (the unbounded-buffering bugfix):
///  * A line longer than `max_line_bytes` with no terminator is *not*
///    buffered indefinitely. The held prefix is surfaced once as a bad
///    line (for the caller to dead-letter as `bad_sentence`) and the rest
///    of that line is discarded up to its newline.
///  * Blank lines (keep-alives some feeds emit) are counted and skipped.
///  * `Finish` (connection EOF) turns a non-empty partial into one bad
///    line: data arrived that never became a sentence, so it is counted,
///    never silently dropped.
///
/// Single-threaded: one connection owns one reassembler.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace marlin {

class LineReassembler {
 public:
  struct Options {
    /// Longest sentence accepted. An NMEA sentence is ≤ 82 characters; TAG
    /// blocks add tens more. Anything past this cap is a protocol
    /// violation, not a longer line.
    size_t max_line_bytes = 1024;
  };

  struct Stats {
    uint64_t bytes_in = 0;
    uint64_t lines = 0;        ///< complete lines delivered
    uint64_t blank_lines = 0;  ///< empty lines counted and skipped
    uint64_t bad_lines = 0;    ///< oversized / EOF-truncated lines
  };

  LineReassembler() = default;
  explicit LineReassembler(const Options& options) : options_(options) {}

  /// \brief Feeds one received chunk; complete lines (terminator stripped)
  /// are appended to `*lines`, oversized/garbage prefixes to `*bad_lines`.
  /// Returns the number of complete lines appended.
  size_t Feed(std::string_view chunk, std::vector<std::string>* lines,
              std::vector<std::string>* bad_lines) {
    stats_.bytes_in += chunk.size();
    size_t delivered = 0;
    size_t start = 0;
    while (start < chunk.size()) {
      const size_t nl = chunk.find('\n', start);
      if (nl == std::string_view::npos) {
        Absorb(chunk.substr(start), bad_lines);
        break;
      }
      std::string_view rest = chunk.substr(start, nl - start);
      if (discarding_) {
        // Tail of a line whose oversized prefix was already surfaced; the
        // newline ends the discard region.
        discarding_ = false;
      } else {
        partial_.append(rest);
        if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
        if (partial_.empty()) {
          ++stats_.blank_lines;
        } else if (partial_.size() > options_.max_line_bytes) {
          // Grew past the cap only by the bytes completing it in this
          // chunk — still one oversized sentence.
          ++stats_.bad_lines;
          bad_lines->push_back(std::move(partial_));
        } else {
          ++stats_.lines;
          lines->push_back(std::move(partial_));
          ++delivered;
        }
        partial_.clear();
      }
      start = nl + 1;
    }
    return delivered;
  }

  /// \brief End-of-stream: a non-empty partial line becomes one bad line.
  void Finish(std::vector<std::string>* bad_lines) {
    if (discarding_) {
      discarding_ = false;
    } else if (!partial_.empty()) {
      ++stats_.bad_lines;
      bad_lines->push_back(std::move(partial_));
      partial_.clear();
    }
  }

  const Stats& stats() const { return stats_; }

  /// \brief Bytes currently buffered awaiting a terminator.
  size_t pending_bytes() const { return partial_.size(); }

 private:
  /// Buffers an unterminated tail, surfacing it as one bad line the moment
  /// it exceeds the cap (and discarding the rest of that line).
  void Absorb(std::string_view tail, std::vector<std::string>* bad_lines) {
    if (discarding_) return;
    partial_.append(tail);
    if (partial_.size() > options_.max_line_bytes) {
      ++stats_.bad_lines;
      partial_.resize(options_.max_line_bytes);
      bad_lines->push_back(std::move(partial_));
      partial_.clear();
      discarding_ = true;
    }
  }

  Options options_;
  std::string partial_;
  bool discarding_ = false;
  Stats stats_;
};

}  // namespace marlin

#endif  // MARLIN_NET_LINE_REASSEMBLER_H_
