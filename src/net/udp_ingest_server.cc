#include "net/udp_ingest_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace marlin {

namespace {

std::string PeerString(const struct sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

Timestamp WallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

UdpIngestServer::UdpIngestServer(UdpIngestOptions options)
    : options_(std::move(options)),
      dead_letters_(options_.dead_letter_capacity) {}

UdpIngestServer::~UdpIngestServer() { Stop(); }

Timestamp UdpIngestServer::NowIngest() const {
  return options_.clock ? options_.clock() : WallClockMs();
}

Status UdpIngestServer::Start() {
  if (started_) return Status::Invalid("server already started");
  Status st = loop_.Init();
  if (!st.ok()) return st;

  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::Invalid("bad bind address: " + options_.bind_address);
  }
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  struct sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  st = loop_.Add(fd_, EPOLLIN, [this](uint32_t) { OnReadable(); });
  if (!st.ok()) return st;

  started_ = true;
  loop_thread_ = std::thread([this] { loop_.Run(); });
  return Status::OK();
}

void UdpIngestServer::Stop() {
  if (!started_) {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    return;
  }
  started_ = false;
  loop_.Stop();
  loop_thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void UdpIngestServer::OnReadable() {
  char buf[64 * 1024];
  for (;;) {
    struct sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof(buf), 0,
                   reinterpret_cast<struct sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    const std::string peer_key = PeerString(peer);
    uint64_t peer_id;
    auto id_it = peer_ids_.find(peer_key);
    if (id_it != peer_ids_.end()) {
      peer_id = id_it->second;
    } else {
      peer_id = next_peer_id_++;
      peer_ids_[peer_key] = peer_id;
    }

    // Each datagram is self-contained: fresh reassembler pass, and any
    // unterminated tail is the sender's bug, dead-lettered right here.
    LineReassembler reassembler(options_.line);
    std::vector<std::string> complete;
    std::vector<std::string> bad;
    reassembler.Feed(std::string_view(buf, static_cast<size_t>(n)),
                     &complete, &bad);
    reassembler.Finish(&bad);

    const Timestamp now = NowIngest();
    for (const std::string& b : bad) {
      dead_letters_.Push(DeadLetterReason::kBadSentence, b, now);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++datagrams_;
    for (std::string& line : complete) {
      line_buffer_.emplace_back(now, now, peer_id, std::move(line));
    }
    ConnectionIngestStats& cs = peers_[peer_id];
    if (cs.connection_id == 0) {
      cs.connection_id = peer_id;
      cs.peer = peer_key;
      cs.open = true;
    }
    cs.bytes_in += static_cast<uint64_t>(n);
    cs.lines += reassembler.stats().lines;
    cs.bad_lines += reassembler.stats().bad_lines;
    datagram_cv_.notify_all();
  }
}

size_t UdpIngestServer::DrainLines(std::vector<Event<std::string>>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t n = line_buffer_.size();
  out->reserve(out->size() + n);
  for (Event<std::string>& ev : line_buffer_) out->push_back(std::move(ev));
  line_buffer_.clear();
  return n;
}

NetIngestStats UdpIngestServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  NetIngestStats out;
  out.datagrams = datagrams_;
  out.connections.reserve(peers_.size());
  for (const auto& [id, cs] : peers_) {
    out.connections.push_back(cs);
    out.bytes_in += cs.bytes_in;
    out.lines += cs.lines;
    out.bad_lines += cs.bad_lines;
  }
  out.connections_accepted = peers_.size();
  return out;
}

bool UdpIngestServer::WaitForDatagrams(uint64_t min_datagrams,
                                       DurationMs timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return datagram_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [&] { return datagrams_ >= min_datagrams; });
}

}  // namespace marlin
