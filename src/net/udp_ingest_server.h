#ifndef MARLIN_NET_UDP_INGEST_SERVER_H_
#define MARLIN_NET_UDP_INGEST_SERVER_H_

/// \file udp_ingest_server.h
/// \brief UDP datagram ingest: the push-feed flavour many AIS aggregators
/// use (each datagram carries one or a few complete NMEA sentences).
///
/// Unlike TCP there is no byte stream to reassemble across reads — a
/// datagram is a self-contained unit, so each one runs through a fresh
/// `LineReassembler` pass (`Feed` + `Finish`): a sentence split across two
/// datagrams is a sender bug and the trailing fragment is dead-lettered as
/// `bad_sentence`, not stitched to the next datagram.
///
/// Each distinct peer address is a logical connection: it gets a stable
/// source id so `fragment_group_by_source` isolates multi-fragment
/// reassembly per sender, exactly as TCP connections do.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "net/epoll_loop.h"
#include "net/line_reassembler.h"
#include "stream/dead_letter.h"
#include "stream/event.h"
#include "stream/net_stats.h"

namespace marlin {

struct UdpIngestOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via `port()`
  LineReassembler::Options line;
  size_t dead_letter_capacity = 1024;
  std::function<Timestamp()> clock;  ///< defaults to wall-clock ms
};

/// \brief Datagram line server on its own epoll thread.
class UdpIngestServer {
 public:
  explicit UdpIngestServer(UdpIngestOptions options);
  ~UdpIngestServer();

  UdpIngestServer(const UdpIngestServer&) = delete;
  UdpIngestServer& operator=(const UdpIngestServer&) = delete;

  Status Start();
  void Stop();  ///< idempotent

  uint16_t port() const { return port_; }

  /// \brief Moves buffered line events into `out`; `source_id` is the
  /// per-peer logical connection id.
  size_t DrainLines(std::vector<Event<std::string>>* out);

  size_t DrainDeadLetters(std::vector<DeadLetter>* out) {
    return dead_letters_.Drain(out);
  }

  NetIngestStats stats() const;

  /// \brief Blocks until at least `min_datagrams` datagrams have been
  /// received, or the timeout expires.
  bool WaitForDatagrams(uint64_t min_datagrams, DurationMs timeout_ms);

 private:
  void OnReadable();
  Timestamp NowIngest() const;

  const UdpIngestOptions options_;
  EpollLoop loop_;
  std::thread loop_thread_;
  int fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_peer_id_ = 1;
  std::unordered_map<std::string, uint64_t> peer_ids_;  ///< "addr:port" → id
  DeadLetterQueue dead_letters_;

  mutable std::mutex mutex_;
  std::condition_variable datagram_cv_;
  std::vector<Event<std::string>> line_buffer_;
  uint64_t datagrams_ = 0;
  std::unordered_map<uint64_t, ConnectionIngestStats> peers_;
  bool started_ = false;
};

}  // namespace marlin

#endif  // MARLIN_NET_UDP_INGEST_SERVER_H_
