#ifndef MARLIN_STREAM_SPSC_RING_H_
#define MARLIN_STREAM_SPSC_RING_H_

/// \file spsc_ring.h
/// \brief Cache-line-aware lock-free single-producer/single-consumer ring —
/// the hot-hop fabric between pipeline stages (paper §2.1: in-situ stream
/// processing must be communication efficient; after the decode path went
/// allocation-free, the mutex+condvar hand-off was the dominant remaining
/// per-item cost).
///
/// Every hot hop in the sharded pipeline is single-producer/single-consumer:
/// the coordinator is the only thread pushing a shard worker's commands, a
/// shard core is the only thread feeding its enrichment side-stage, and the
/// pair-stage coordinator is the only thread filling each cell worker's
/// task ring. That restriction buys a wait-free fast path: one atomic store
/// publishes an item, one atomic store consumes it, no lock, no syscall, no
/// shared line bounced between the two sides.
///
/// Mechanical sympathy:
///  * The producer half (`tail_` + its cached view of `head_`) and the
///    consumer half (`head_` + its cached view of `tail_`) live on separate
///    `alignas(64)` cache lines, so the producer's publish never invalidates
///    the line the consumer spins on and vice versa.
///  * Each side batches its view of the opposite index: the producer only
///    re-reads `head_` when its cached copy says the ring is full, the
///    consumer only re-reads `tail_` when its cached copy says the ring is
///    empty — in steady state an N-item burst costs one cross-core line
///    transfer instead of N.
///  * `PopBatch` drains runs of items per index update and `PushBatch`
///    publishes runs per index update, so hand-off traffic moves in
///    cache-line multiples rather than item by item.
///  * Wake-ups are batched and gated: a side parks on a C++20 atomic
///    doorbell only after spinning, and the opposite side rings the bell
///    only when a waiter has registered — an uncontended push/pop performs
///    zero notifies (`BoundedQueue` notified a condvar on every operation).
///
/// Close/drain protocol (identical to `BoundedQueue`): after `Close()`,
/// pushes are rejected and pops drain the remaining items then report
/// end-of-stream (`std::nullopt` / 0).
///
/// The blocking slow paths use the eventcount pattern: a waiter registers
/// (`*_waiters_`), re-checks the condition, then waits on the doorbell's
/// value; a publisher stores its index and rings the doorbell only when
/// the waiter count is non-zero. The Dekker-style StoreLoad ordering that
/// makes the lost-wake-up interleaving impossible is paid asymmetrically
/// (common/asymmetric_barrier.h): the waiter issues a `membarrier` syscall
/// between registering and re-checking, so the publisher's fast path is a
/// plain release store plus a relaxed waiter-count load — no fence, no
/// `xchg`. Where membarrier is unavailable (non-Linux, TSan) both sides
/// fall back to the symmetric protocol: the index store, waiter-count
/// load, registration, and re-check are all seq_cst, so they fall in one
/// total order and either the publisher observes the registered waiter or
/// the waiter's re-check observes the published index.

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/asymmetric_barrier.h"
#include "common/cache_line.h"

namespace marlin {

/// \brief Per-hop queue instrumentation, shared by every fabric arm
/// (lock-free ring and mutex queue alike). Mergeable across shards.
struct QueueHopStats {
  uint64_t pushed = 0;       ///< items accepted by the hop
  uint64_t popped = 0;       ///< items delivered by the hop
  uint64_t push_waits = 0;   ///< producer found the hop full (spun/blocked)
  uint64_t pop_waits = 0;    ///< consumer found the hop empty (spun/blocked)
  uint64_t notifies = 0;     ///< wake-ups actually issued (batched & gated)
  size_t depth_high_water = 0;  ///< deepest observed backlog
  /// Pop-batch size histogram: how many items each consumer wake-up
  /// actually carried. Buckets: 1, 2–3, 4–7, 8–15, ≥16.
  static constexpr size_t kBatchBuckets = 5;
  uint64_t batch_hist[kBatchBuckets] = {};

  static size_t BatchBucket(size_t n) {
    if (n <= 1) return 0;
    if (n <= 3) return 1;
    if (n <= 7) return 2;
    if (n <= 15) return 3;
    return 4;
  }

  uint64_t batches() const {
    uint64_t total = 0;
    for (uint64_t b : batch_hist) total += b;
    return total;
  }

  double MeanBatch() const {
    const uint64_t n = batches();
    return n == 0 ? 0.0
                  : static_cast<double>(popped) / static_cast<double>(n);
  }

  void Merge(const QueueHopStats& other) {
    pushed += other.pushed;
    popped += other.popped;
    push_waits += other.push_waits;
    pop_waits += other.pop_waits;
    notifies += other.notifies;
    depth_high_water = std::max(depth_high_water, other.depth_high_water);
    for (size_t i = 0; i < kBatchBuckets; ++i) {
      batch_hist[i] += other.batch_hist[i];
    }
  }
};

/// \brief Bounded lock-free SPSC ring with blocking push/pop and close().
///
/// Exactly one thread may call the producer surface (`Push`, `TryPush`,
/// `PushBatch`) and exactly one thread the consumer surface (`Pop`,
/// `PopBatch`). `Close` may be called from any thread, but must be ordered
/// after the producer's final push (the usual owner-teardown protocol:
/// producers quiesce, owner closes, consumer drains) — a push racing Close
/// may be either rejected or delivered, whereas the mutex queue serializes
/// the two. Every pipeline hop already follows that protocol.
template <typename T>
class SpscRing {
 public:
  /// \brief Capacity is rounded up to a power of two (minimum 2) so index
  /// arithmetic is a mask, never a divide.
  explicit SpscRing(size_t min_capacity)
      : buf_(std::bit_ceil(std::max<size_t>(2, min_capacity))),
        mask_(buf_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return buf_.size(); }

  /// \brief Approximate backlog (exact when both sides are quiescent).
  size_t size() const {
    const uint64_t t = tail_.load(std::memory_order_acquire);
    const uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(t - h);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// \brief Blocks until space is available; returns false if closed.
  bool Push(T item) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (!WaitNotFull(t)) return false;
    buf_[t & mask_] = std::move(item);
    Publish(t + 1);
    return true;
  }

  /// \brief Non-blocking push; returns false when full or closed (the item
  /// is left untouched on failure so the caller can count or retry it).
  bool TryPush(T& item) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ >= buf_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ >= buf_.size()) {
        BumpRelaxed(&push_waits_);
        return false;
      }
    }
    if (closed_.load(std::memory_order_acquire)) return false;
    buf_[t & mask_] = std::move(item);
    Publish(t + 1);
    return true;
  }

  /// \brief Blocking batch push: publishes all `n` items with one index
  /// store per free-space run (typically one for the whole batch). Returns
  /// the number of items actually pushed — short only when the ring closes
  /// mid-batch.
  size_t PushBatch(T* items, size_t n) {
    size_t pushed = 0;
    uint64_t t = tail_.load(std::memory_order_relaxed);
    while (pushed < n) {
      if (!WaitNotFull(t)) break;
      // The free-space run visible right now; publish it in one store.
      const size_t room =
          static_cast<size_t>(buf_.size() - (t - cached_head_));
      const size_t take = std::min(room, n - pushed);
      for (size_t i = 0; i < take; ++i) {
        buf_[(t + i) & mask_] = std::move(items[pushed + i]);
      }
      t += take;
      pushed += take;
      Publish(t);
    }
    return pushed;
  }

  /// \brief Blocks until an item arrives; std::nullopt once closed+drained.
  std::optional<T> Pop() {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (!WaitNotEmpty(h)) return std::nullopt;
    MaxRelaxed(&depth_high_water_, static_cast<size_t>(cached_tail_ - h));
    T item = std::move(buf_[h & mask_]);
    Consume(h + 1);
    ObserveBatch(1);
    return item;
  }

  /// \brief Blocking batch pop: waits for at least one item (or close),
  /// then drains up to `max_items` with one index store. Returns the number
  /// of items appended to `out`; 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (!WaitNotEmpty(h)) return 0;
    size_t avail = static_cast<size_t>(cached_tail_ - h);
    if (avail < max_items) {
      // The cached view would cut the batch short; one extra cross-line
      // read picks up anything published since and keeps batches maximal.
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<size_t>(cached_tail_ - h);
    }
    MaxRelaxed(&depth_high_water_, avail);
    const size_t take = std::min(avail, max_items);
    out->reserve(out->size() + take);
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(buf_[(h + i) & mask_]));
    }
    Consume(h + take);
    ObserveBatch(take);
    return take;
  }

  /// \brief Marks end-of-stream; wakes both sides.
  void Close() {
    closed_.store(true, std::memory_order_seq_cst);
    // Parked waiters sleep on the doorbells, not on the indices; bump both
    // so their value-changed re-check observes the close.
    pop_doorbell_.fetch_add(1, std::memory_order_release);
    pop_doorbell_.notify_all();
    push_doorbell_.fetch_add(1, std::memory_order_release);
    push_doorbell_.notify_all();
  }

  /// \brief Snapshot of the hop counters (relaxed reads; safe while both
  /// sides run, exact at quiescent points).
  QueueHopStats stats() const {
    QueueHopStats s;
    s.pushed = tail_.load(std::memory_order_acquire);
    s.popped = head_.load(std::memory_order_acquire);
    s.push_waits = push_waits_.load(std::memory_order_relaxed);
    s.pop_waits = pop_waits_.load(std::memory_order_relaxed);
    s.notifies = notifies_.load(std::memory_order_relaxed);
    s.depth_high_water = depth_high_water_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < QueueHopStats::kBatchBuckets; ++i) {
      s.batch_hist[i] = batch_hist_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  /// Spin budget before a side parks on its doorbell. Short on purpose: the
  /// hops this ring serves hand off window-sized batches, so a busy peer
  /// publishes within a few hundred cycles and an idle peer should sleep,
  /// not burn a core (the CI host has one).
  static constexpr int kSpinIters = 128;

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  /// Producer slow path: returns true with `cached_head_` refreshed so that
  /// `tail - cached_head_ < capacity`; false when the ring is closed.
  bool WaitNotFull(uint64_t tail) {
    if (tail - cached_head_ < buf_.size()) {
      return !closed_.load(std::memory_order_acquire);
    }
    cached_head_ = head_.load(std::memory_order_acquire);
    if (tail - cached_head_ < buf_.size()) {
      return !closed_.load(std::memory_order_acquire);
    }
    BumpRelaxed(&push_waits_);
    // A full ring is by definition the deepest backlog (rare path, so the
    // cross-line store is paid only when the producer is stalled anyway).
    MaxRelaxed(&depth_high_water_, buf_.size());
    while (true) {
      for (int i = 0; i < kSpinIters; ++i) {
        cached_head_ = head_.load(std::memory_order_acquire);
        if (tail - cached_head_ < buf_.size()) {
          return !closed_.load(std::memory_order_acquire);
        }
        if (closed_.load(std::memory_order_acquire)) return false;
        CpuRelax();
      }
      // Park: register, barrier, re-check, wait on the doorbell value. The
      // heavy barrier (or the seq_cst pairing with Consume() in fallback
      // mode) prevents a lost wake-up.
      push_waiters_.fetch_add(1, std::memory_order_seq_cst);
      AsymmetricHeavyBarrier();
      const uint32_t bell = push_doorbell_.load(std::memory_order_seq_cst);
      cached_head_ = head_.load(std::memory_order_seq_cst);
      if (tail - cached_head_ >= buf_.size() &&
          !closed_.load(std::memory_order_seq_cst)) {
        push_doorbell_.wait(bell, std::memory_order_acquire);
      }
      push_waiters_.fetch_sub(1, std::memory_order_relaxed);
      if (tail - cached_head_ < buf_.size()) {
        return !closed_.load(std::memory_order_acquire);
      }
      if (closed_.load(std::memory_order_acquire)) return false;
    }
  }

  /// Consumer slow path: returns true with `cached_tail_` refreshed so that
  /// `cached_tail_ > head`; false when closed and drained.
  bool WaitNotEmpty(uint64_t head) {
    if (cached_tail_ != head) return true;
    cached_tail_ = tail_.load(std::memory_order_acquire);
    if (cached_tail_ != head) return true;
    BumpRelaxed(&pop_waits_);
    while (true) {
      for (int i = 0; i < kSpinIters; ++i) {
        cached_tail_ = tail_.load(std::memory_order_acquire);
        if (cached_tail_ != head) return true;
        if (closed_.load(std::memory_order_acquire)) {
          // Close() precedes any post-close state; one more tail read
          // decides drained-vs-racing-push definitively.
          cached_tail_ = tail_.load(std::memory_order_acquire);
          return cached_tail_ != head;
        }
        CpuRelax();
      }
      pop_waiters_.fetch_add(1, std::memory_order_seq_cst);
      AsymmetricHeavyBarrier();
      const uint32_t bell = pop_doorbell_.load(std::memory_order_seq_cst);
      cached_tail_ = tail_.load(std::memory_order_seq_cst);
      if (cached_tail_ == head &&
          !closed_.load(std::memory_order_seq_cst)) {
        pop_doorbell_.wait(bell, std::memory_order_acquire);
      }
      pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
      if (cached_tail_ != head) return true;
      if (closed_.load(std::memory_order_acquire)) {
        cached_tail_ = tail_.load(std::memory_order_acquire);
        return cached_tail_ != head;
      }
    }
  }

  /// Stats-only max (a racing larger value may win; exact at quiescence).
  static void MaxRelaxed(std::atomic<size_t>* a, size_t v) {
    if (v > a->load(std::memory_order_relaxed)) {
      a->store(v, std::memory_order_relaxed);
    }
  }

  /// Publishes the new tail and rings the consumer's doorbell iff a waiter
  /// registered — the batched-wake-up contract.
  void Publish(uint64_t new_tail) {
    if (light_barrier_) {
      // Waiters pay the StoreLoad barrier (membarrier in the park path).
      tail_.store(new_tail, std::memory_order_release);
      if (pop_waiters_.load(std::memory_order_relaxed) == 0) return;
    } else {
      // Symmetric fallback: seq_cst store + load pair with the park path.
      tail_.store(new_tail, std::memory_order_seq_cst);
      if (pop_waiters_.load(std::memory_order_seq_cst) == 0) return;
    }
    pop_doorbell_.fetch_add(1, std::memory_order_release);
    pop_doorbell_.notify_all();
    BumpRelaxed(&notifies_);
  }

  /// Publishes the new head and rings the producer's doorbell iff a waiter
  /// registered.
  void Consume(uint64_t new_head) {
    if (light_barrier_) {
      head_.store(new_head, std::memory_order_release);
      if (push_waiters_.load(std::memory_order_relaxed) == 0) return;
    } else {
      head_.store(new_head, std::memory_order_seq_cst);
      if (push_waiters_.load(std::memory_order_seq_cst) == 0) return;
    }
    push_doorbell_.fetch_add(1, std::memory_order_release);
    push_doorbell_.notify_all();
    BumpRelaxed(&notifies_);
  }

  void ObserveBatch(size_t n) {
    BumpRelaxed(&batch_hist_[QueueHopStats::BatchBucket(n)]);
  }

  /// Stats counters are single-writer, so a plain load+store increment
  /// avoids the full barrier a `lock xadd` would put on the fast path.
  static void BumpRelaxed(std::atomic<uint64_t>* a) {
    a->store(a->load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }

  // --- Consumer half: owned by the popping thread. `head_` is written
  // here only; the producer reads it rarely (cache-miss amortized through
  // `cached_head_`). ---
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;  ///< consumer's last observed tail
  std::atomic<uint64_t> pop_waits_{0};
  std::atomic<size_t> depth_high_water_{0};
  std::atomic<uint64_t> batch_hist_[QueueHopStats::kBatchBuckets] = {};

  // --- Producer half. ---
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;  ///< producer's last observed head
  std::atomic<uint64_t> push_waits_{0};

  // --- Shared cold state: touched on the park/close paths only. ---
  alignas(kCacheLineBytes) std::atomic<bool> closed_{false};
  std::atomic<uint32_t> push_waiters_{0};
  std::atomic<uint32_t> pop_waiters_{0};
  std::atomic<uint32_t> push_doorbell_{0};
  std::atomic<uint32_t> pop_doorbell_{0};
  std::atomic<uint64_t> notifies_{0};

  std::vector<T> buf_;
  const size_t mask_;
  /// True when membarrier lets the publish fast path skip its barrier
  /// (read-only after construction, shared by both sides).
  const bool light_barrier_ = AsymmetricBarrierSupported();
};

}  // namespace marlin

#endif  // MARLIN_STREAM_SPSC_RING_H_
