#ifndef MARLIN_STREAM_CHANNEL_H_
#define MARLIN_STREAM_CHANNEL_H_

/// \file channel.h
/// \brief The queue-concept seam between pipeline stages: one hand-off
/// surface, two interchangeable fabrics.
///
/// Every hot hop in the sharded pipeline (coordinator → shard worker,
/// shard core → enrichment side-stage, pair coordinator → cell worker) is
/// single-producer/single-consumer, so the default fabric is the lock-free
/// `SpscRing`. The mutex+condvar `BoundedQueue` remains behind the same
/// surface as the MPMC-capable fallback and the frozen reference arm —
/// `PipelineConfig::lock_free_fabric = false` swaps every hop back, which
/// is how the equivalence battery and the queue-hop benchmark compare the
/// two with zero other differences.
///
/// The channel also owns the per-hop instrumentation (`QueueHopStats`) so
/// both arms are measured identically: the ring reports its own counters,
/// the mutex arm is counted here around the queue calls.

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "stream/lossy_ring.h"
#include "stream/queue.h"
#include "stream/spsc_ring.h"

namespace marlin {

/// \brief Which hand-off implementation a channel runs on.
enum class QueueFabric {
  kSpscRing,  ///< lock-free ring (default; hops are single-producer)
  kMutex,     ///< BoundedQueue — MPMC fallback and frozen reference arm
};

/// \brief One inter-stage hop: blocking bounded FIFO with close/drain
/// end-of-stream semantics, backed by the selected fabric.
///
/// The SPSC contract (one pushing thread, one popping thread at a time)
/// must hold when constructed with `kSpscRing`; `kMutex` lifts it.
///
/// A channel constructed with `lossy = true` is an overload-shedding hop:
/// its producer is expected to call `PushLossy`, and on the ring fabric the
/// backend is `SpscLossyRing` so both arms evict the *oldest* queued item
/// under overload (the mutex arm always did via `PushEvictOldest`). On a
/// lossy channel `Push` never blocks either — it is `PushLossy` with the
/// eviction count folded into the hop stats.
template <typename T>
class StageChannel {
 public:
  StageChannel(QueueFabric fabric, size_t capacity, bool lossy = false) {
    if (fabric == QueueFabric::kSpscRing) {
      if (lossy) {
        lossy_ring_ = std::make_unique<SpscLossyRing<T>>(capacity);
      } else {
        ring_ = std::make_unique<SpscRing<T>>(capacity);
      }
    } else {
      queue_ = std::make_unique<BoundedQueue<T>>(std::max<size_t>(1, capacity));
    }
  }

  QueueFabric fabric() const {
    return queue_ ? QueueFabric::kMutex : QueueFabric::kSpscRing;
  }

  size_t capacity() const {
    if (ring_) return ring_->capacity();
    if (lossy_ring_) return lossy_ring_->capacity();
    return queue_->capacity();
  }

  size_t size() const {
    if (ring_) return ring_->size();
    if (lossy_ring_) return lossy_ring_->size();
    return queue_->size();
  }

  /// \brief Blocks until space is available; returns false if closed. On a
  /// lossy ring channel this never blocks — it evicts the oldest instead
  /// (the eviction is visible in the hop stats, not to the caller; use
  /// `PushLossy` when the caller accounts for drops).
  bool Push(T item) {
    if (ring_) return ring_->Push(std::move(item));
    if (lossy_ring_) {
      size_t evicted = 0;
      return lossy_ring_->PushEvictOldest(std::move(item), &evicted);
    }
    size_t depth = 0;
    bool blocked = false;
    if (!queue_->Push(std::move(item), &depth, &blocked)) return false;
    mutex_stats_.pushed.fetch_add(1, std::memory_order_relaxed);
    if (blocked) mutex_stats_.push_waits.fetch_add(1, std::memory_order_relaxed);
    mutex_stats_.ObserveDepth(depth);
    return true;
  }

  /// \brief Lossy push for latency-critical producers: never blocks.
  /// Returns false only when the channel is closed (the item is rejected
  /// and `*dropped` is 0). `*dropped` counts items lost making room.
  ///
  /// Overload semantics are *evict-oldest on every fabric*: the new item
  /// always enters and the oldest queued items are evicted and counted
  /// (mutex arm — `BoundedQueue::PushEvictOldest`; lossy ring arm —
  /// `SpscLossyRing::PushEvictOldest`). Both arms therefore shed the exact
  /// same item set under the same load, preserving FIFO order of the
  /// survivors and the `accepted == delivered + dropped` completeness
  /// invariant. A channel constructed without `lossy` on the ring fabric
  /// has no evicting backend and falls back to drop-newest (`TryPush` +
  /// count) — construct lossy channels with `lossy = true`.
  bool PushLossy(T item, size_t* dropped) {
    *dropped = 0;
    if (lossy_ring_) return lossy_ring_->PushEvictOldest(std::move(item), dropped);
    if (ring_) {
      if (ring_->TryPush(item)) return true;
      if (ring_->closed()) return false;
      *dropped = 1;
      return true;
    }
    size_t depth = 0;
    if (!queue_->PushEvictOldest(std::move(item), dropped, &depth)) {
      return false;
    }
    mutex_stats_.pushed.fetch_add(1, std::memory_order_relaxed);
    mutex_stats_.ObserveDepth(depth);
    return true;
  }

  /// \brief Blocks until an item arrives; std::nullopt once closed+drained.
  std::optional<T> Pop() {
    if (ring_) return ring_->Pop();
    if (lossy_ring_) return lossy_ring_->Pop();
    std::optional<T> item = queue_->Pop();
    if (item.has_value()) {
      mutex_stats_.popped.fetch_add(1, std::memory_order_relaxed);
      mutex_stats_.batch_hist[0].fetch_add(1, std::memory_order_relaxed);
    }
    return item;
  }

  /// \brief Blocking batch pop; 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    if (ring_) return ring_->PopBatch(out, max_items);
    if (lossy_ring_) return lossy_ring_->PopBatch(out, max_items);
    const size_t n = queue_->PopBatch(out, max_items);
    if (n > 0) {
      mutex_stats_.popped.fetch_add(n, std::memory_order_relaxed);
      mutex_stats_.batch_hist[QueueHopStats::BatchBucket(n)].fetch_add(
          1, std::memory_order_relaxed);
    }
    return n;
  }

  /// \brief Marks end-of-stream; wakes all waiters.
  void Close() {
    if (ring_) {
      ring_->Close();
    } else if (lossy_ring_) {
      lossy_ring_->Close();
    } else {
      queue_->Close();
    }
  }

  bool closed() const {
    if (ring_) return ring_->closed();
    if (lossy_ring_) return lossy_ring_->closed();
    return queue_->closed();
  }

  /// \brief Snapshot of the hop counters (safe while both sides run).
  QueueHopStats stats() const {
    if (ring_) return ring_->stats();
    if (lossy_ring_) return lossy_ring_->stats();
    QueueHopStats s;
    s.pushed = mutex_stats_.pushed.load(std::memory_order_relaxed);
    s.popped = mutex_stats_.popped.load(std::memory_order_relaxed);
    s.push_waits = mutex_stats_.push_waits.load(std::memory_order_relaxed);
    s.depth_high_water =
        mutex_stats_.depth_high_water.load(std::memory_order_relaxed);
    for (size_t i = 0; i < QueueHopStats::kBatchBuckets; ++i) {
      s.batch_hist[i] =
          mutex_stats_.batch_hist[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  /// Counters for the mutex arm (the ring keeps its own). Atomics because
  /// BoundedQueue permits multiple producers/consumers.
  struct MutexStats {
    std::atomic<uint64_t> pushed{0};
    std::atomic<uint64_t> popped{0};
    std::atomic<uint64_t> push_waits{0};
    std::atomic<size_t> depth_high_water{0};
    std::atomic<uint64_t> batch_hist[QueueHopStats::kBatchBuckets] = {};

    void ObserveDepth(size_t depth) {
      if (depth > depth_high_water.load(std::memory_order_relaxed)) {
        depth_high_water.store(depth, std::memory_order_relaxed);
      }
    }
  };

  std::unique_ptr<SpscRing<T>> ring_;
  std::unique_ptr<SpscLossyRing<T>> lossy_ring_;
  std::unique_ptr<BoundedQueue<T>> queue_;
  MutexStats mutex_stats_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_CHANNEL_H_
