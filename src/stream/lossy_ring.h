#ifndef MARLIN_STREAM_LOSSY_RING_H_
#define MARLIN_STREAM_LOSSY_RING_H_

/// \file lossy_ring.h
/// \brief Lock-free SPSC ring whose overload policy is *evict-oldest* — the
/// lossy arm of the fabric seam, unified with `BoundedQueue::PushEvictOldest`.
///
/// `SpscRing` cannot evict under overload: the head slot belongs to the
/// consumer, so its lossy path (`TryPush` + count) necessarily dropped the
/// *incoming* item. That made the two fabric arms shed different load —
/// drop-newest on the ring, drop-oldest on the mutex queue — so a saturated
/// enrichment stage kept a *stale* prefix of the stream on one fabric and
/// the *freshest* suffix on the other. This ring closes that divergence:
/// both arms now keep the newest items and evict the oldest.
///
/// Design: a Vyukov-style bounded queue specialised to one producer. Every
/// cell carries a sequence number that encodes its lap state:
///   * `seq == index`       — free for the producer's push at `index`
///   * `seq == index + 1`   — published, waiting for a consume at `index`
///   * `seq == index + cap` — consumed, free for the next lap
/// The producer owns `tail_` exclusively (plain push, no CAS on the fast
/// path). `head_` is shared: the consumer CASes it forward to claim an item,
/// and the producer CASes it forward to *evict* the oldest published item
/// when the ring is full — the one overload case. The CAS arbitration means
/// an eviction and a concurrent consume of the same slot cannot both win,
/// so items are delivered exactly once or counted exactly once, preserving
/// the `accepted == delivered + dropped` completeness invariant.
///
/// Close/drain protocol matches `SpscRing`: after `Close()`, pushes are
/// rejected and pops drain the remaining items then report end-of-stream.
/// The consumer parks on a doorbell after spinning; the producer rings it
/// only when a waiter registered. The park protocol runs seq_cst on both
/// sides (this ring serves the lossy side-stage hop, not the router hot
/// path, so it skips `SpscRing`'s asymmetric-membarrier optimisation).

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/cache_line.h"
#include "stream/spsc_ring.h"

namespace marlin {

/// \brief Bounded lock-free SPSC ring with evict-oldest overload semantics.
///
/// Exactly one thread may call the producer surface (`PushEvictOldest`) and
/// exactly one thread the consumer surface (`Pop`, `PopBatch`). `Close` may
/// be called from any thread once the producer has quiesced.
template <typename T>
class SpscLossyRing {
 public:
  /// \brief Capacity is rounded up to a power of two (minimum 2), matching
  /// `SpscRing` so the two fabrics agree on effective depth.
  explicit SpscLossyRing(size_t min_capacity)
      : cells_(std::bit_ceil(std::max<size_t>(2, min_capacity))),
        mask_(cells_.size() - 1) {
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  SpscLossyRing(const SpscLossyRing&) = delete;
  SpscLossyRing& operator=(const SpscLossyRing&) = delete;

  size_t capacity() const { return cells_.size(); }

  /// \brief Approximate backlog (exact when both sides are quiescent).
  size_t size() const {
    const uint64_t t = tail_.load(std::memory_order_acquire);
    const uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(t > h ? t - h : 0);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// \brief Never blocks: a full ring evicts the *oldest* queued item to
  /// make room (each eviction counted into `*evicted`). Returns false only
  /// when the ring is closed — the item is rejected and `*evicted` is 0.
  bool PushEvictOldest(T item, size_t* evicted) {
    *evicted = 0;
    if (closed_.load(std::memory_order_acquire)) return false;
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[t & mask_];
    while (cell.seq.load(std::memory_order_acquire) != t) {
      // The slot still holds lap t-capacity. Either the ring is genuinely
      // full (evict the head) or the consumer claimed the slot and is about
      // to free it (spin briefly).
      uint64_t h = head_.load(std::memory_order_relaxed);
      if (t - h >= cells_.size()) {
        if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
          // Won the oldest published item against the consumer; discard it
          // and recycle its slot.
          Cell& victim = cells_[h & mask_];
          T discarded = std::move(victim.item);
          (void)discarded;
          victim.seq.store(h + cells_.size(), std::memory_order_release);
          ++*evicted;
          BumpRelaxed(&push_overflows_);
        }
      } else {
        CpuRelax();  // consumer mid-consume of the slot we need
      }
      if (closed_.load(std::memory_order_acquire)) return false;
    }
    cell.item = std::move(item);
    cell.seq.store(t + 1, std::memory_order_release);
    MaxRelaxed(&depth_high_water_,
               static_cast<size_t>(t + 1 - head_.load(std::memory_order_relaxed)));
    tail_.store(t + 1, std::memory_order_seq_cst);
    if (pop_waiters_.load(std::memory_order_seq_cst) != 0) {
      pop_doorbell_.fetch_add(1, std::memory_order_release);
      pop_doorbell_.notify_all();
      BumpRelaxed(&notifies_);
    }
    return true;
  }

  /// \brief Blocks until an item arrives; std::nullopt once closed+drained.
  std::optional<T> Pop() {
    std::vector<T> one;
    if (PopClaim(&one, 1) == 0) return std::nullopt;
    return std::move(one.front());
  }

  /// \brief Blocking batch pop: waits for at least one item (or close),
  /// then drains up to `max_items`. Returns the number appended to `out`;
  /// 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    return PopClaim(out, max_items);
  }

  /// \brief Marks end-of-stream; wakes the parked consumer.
  void Close() {
    closed_.store(true, std::memory_order_seq_cst);
    pop_doorbell_.fetch_add(1, std::memory_order_release);
    pop_doorbell_.notify_all();
  }

  /// \brief Snapshot of the hop counters. `pushed` counts accepted items,
  /// `popped` delivered items; evictions appear in `push_waits` (the
  /// overload indicator of this fabric) and never in `popped`.
  QueueHopStats stats() const {
    QueueHopStats s;
    s.pushed = tail_.load(std::memory_order_acquire);
    s.popped = popped_.load(std::memory_order_relaxed);
    s.push_waits = push_overflows_.load(std::memory_order_relaxed);
    s.pop_waits = pop_waits_.load(std::memory_order_relaxed);
    s.notifies = notifies_.load(std::memory_order_relaxed);
    s.depth_high_water = depth_high_water_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < QueueHopStats::kBatchBuckets; ++i) {
      s.batch_hist[i] = batch_hist_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T item{};
  };

  static constexpr int kSpinIters = 128;

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  /// Consumer: claim up to `max_items` published items via one head CAS.
  /// Retries when the producer's evictor wins the CAS.
  size_t PopClaim(std::vector<T>* out, size_t max_items) {
    if (max_items == 0) return 0;
    while (true) {
      uint64_t h = head_.load(std::memory_order_relaxed);
      const uint64_t t = tail_.load(std::memory_order_acquire);
      if (t != h) {
        // Cells [h, t) are published (the producer publishes each cell's
        // seq before advancing tail). Claim a run with one CAS; losing the
        // race to the evictor just means retrying from the new head.
        const size_t take =
            std::min(static_cast<size_t>(t - h), max_items);
        if (!head_.compare_exchange_strong(h, h + take,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
          continue;
        }
        out->reserve(out->size() + take);
        for (size_t i = 0; i < take; ++i) {
          Cell& cell = cells_[(h + i) & mask_];
          // The claim CAS ordered us after the publish; the per-cell check
          // is a pure invariant guard on the lap encoding.
          while (cell.seq.load(std::memory_order_acquire) != h + i + 1) {
            CpuRelax();
          }
          out->push_back(std::move(cell.item));
          cell.seq.store(h + i + cells_.size(), std::memory_order_release);
        }
        popped_.fetch_add(take, std::memory_order_relaxed);
        BumpRelaxed(&batch_hist_[QueueHopStats::BatchBucket(take)]);
        return take;
      }
      if (closed_.load(std::memory_order_seq_cst)) {
        // Close() precedes post-close state; one more tail read decides
        // drained-vs-racing-push definitively.
        if (tail_.load(std::memory_order_seq_cst) != h) continue;
        return 0;
      }
      BumpRelaxed(&pop_waits_);
      if (!WaitNotEmpty(h)) return 0;
    }
  }

  /// Parks until tail moves past `head` or the ring closes. Returns false
  /// only when closed-and-drained.
  bool WaitNotEmpty(uint64_t head) {
    while (true) {
      for (int i = 0; i < kSpinIters; ++i) {
        if (tail_.load(std::memory_order_acquire) != head) return true;
        if (closed_.load(std::memory_order_acquire)) {
          return tail_.load(std::memory_order_seq_cst) != head;
        }
        CpuRelax();
      }
      pop_waiters_.fetch_add(1, std::memory_order_seq_cst);
      const uint32_t bell = pop_doorbell_.load(std::memory_order_seq_cst);
      if (tail_.load(std::memory_order_seq_cst) == head &&
          !closed_.load(std::memory_order_seq_cst)) {
        pop_doorbell_.wait(bell, std::memory_order_acquire);
      }
      pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
      if (tail_.load(std::memory_order_acquire) != head) return true;
      if (closed_.load(std::memory_order_acquire)) {
        return tail_.load(std::memory_order_seq_cst) != head;
      }
    }
  }

  static void MaxRelaxed(std::atomic<size_t>* a, size_t v) {
    if (v > a->load(std::memory_order_relaxed)) {
      a->store(v, std::memory_order_relaxed);
    }
  }

  static void BumpRelaxed(std::atomic<uint64_t>* a) {
    a->store(a->load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }

  // Shared claim index: consumer CASes to consume, producer CASes to evict.
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> popped_{0};
  std::atomic<uint64_t> pop_waits_{0};
  std::atomic<uint64_t> batch_hist_[QueueHopStats::kBatchBuckets] = {};

  // Producer half: tail_ written by the producer only.
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> push_overflows_{0};
  std::atomic<size_t> depth_high_water_{0};

  // Cold state: park/close paths only.
  alignas(kCacheLineBytes) std::atomic<bool> closed_{false};
  std::atomic<uint32_t> pop_waiters_{0};
  std::atomic<uint32_t> pop_doorbell_{0};
  std::atomic<uint64_t> notifies_{0};

  std::vector<Cell> cells_;
  const size_t mask_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_LOSSY_RING_H_
