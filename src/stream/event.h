#ifndef MARLIN_STREAM_EVENT_H_
#define MARLIN_STREAM_EVENT_H_

/// \file event.h
/// \brief Timestamped stream element and stream-wide control signals.

#include <cstdint>
#include <utility>

#include "common/time.h"

namespace marlin {

/// \brief One element of an event-time stream.
///
/// `event_time` is when the fact happened (e.g., the position fix);
/// `ingest_time` is when the system first saw it. Their difference is the
/// stream latency the paper worries about for satellite AIS (§1, §2.5).
template <typename T>
struct Event {
  Timestamp event_time = kInvalidTimestamp;
  Timestamp ingest_time = kInvalidTimestamp;
  uint64_t source_id = 0;  ///< which feed produced it (terrestrial, satellite, radar...)
  T payload;

  Event() = default;
  Event(Timestamp et, T value) : event_time(et), payload(std::move(value)) {}
  Event(Timestamp et, Timestamp it, uint64_t src, T value)
      : event_time(et), ingest_time(it), source_id(src),
        payload(std::move(value)) {}

  /// \brief Ingest-to-event latency; 0 when ingest time is unknown.
  DurationMs Latency() const {
    return ingest_time == kInvalidTimestamp ? 0 : ingest_time - event_time;
  }
};

/// \brief Ordering by event time (stable tiebreak on source).
template <typename T>
struct EventTimeLess {
  bool operator()(const Event<T>& a, const Event<T>& b) const {
    if (a.event_time != b.event_time) return a.event_time < b.event_time;
    return a.source_id < b.source_id;
  }
};

}  // namespace marlin

#endif  // MARLIN_STREAM_EVENT_H_
