#ifndef MARLIN_STREAM_RATE_H_
#define MARLIN_STREAM_RATE_H_

/// \file rate.h
/// \brief Stream throughput / latency instrumentation for pipeline metrics.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/time.h"

namespace marlin {

/// \brief Counts events and derives rates over the observed event-time span.
class RateMeter {
 public:
  void Observe(Timestamp event_time) {
    ++count_;
    // Out-of-order streams (satellite deliveries) can observe an earlier
    // event after a later one; the span must be the min/max envelope, not
    // the first/latest *arrival*, or EventsPerSecond overestimates.
    if (first_ == kInvalidTimestamp || event_time < first_) {
      first_ = event_time;
    }
    if (last_ == kInvalidTimestamp || event_time > last_) last_ = event_time;
  }

  uint64_t count() const { return count_; }
  Timestamp first_event() const { return first_; }
  Timestamp last_event() const { return last_; }

  /// \brief Folds another meter into this one (per-shard merge): counts sum,
  /// the observed span becomes the union of the two spans.
  void Merge(const RateMeter& other) {
    count_ += other.count_;
    if (other.first_ != kInvalidTimestamp &&
        (first_ == kInvalidTimestamp || other.first_ < first_)) {
      first_ = other.first_;
    }
    if (other.last_ != kInvalidTimestamp) last_ = std::max(last_, other.last_);
  }

  /// \brief Events per second over the observed event-time span.
  double EventsPerSecond() const {
    if (count_ < 2 || last_ <= first_) return 0.0;
    return static_cast<double>(count_) /
           (static_cast<double>(last_ - first_) / kMillisPerSecond);
  }

 private:
  uint64_t count_ = 0;
  Timestamp first_ = kInvalidTimestamp;
  Timestamp last_ = kInvalidTimestamp;
};

/// \brief Fixed-capacity reservoir for latency quantiles.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = 4096)
      : capacity_(std::max<size_t>(1, capacity)) {
    samples_.reserve(capacity_);
  }

  void Observe(DurationMs latency) {
    ++count_;
    sum_ += static_cast<double>(latency);
    if (samples_.size() < capacity_) {
      samples_.push_back(latency);
    } else {
      // Deterministic ring replacement keeps the reservoir spread across
      // the stream without an RNG dependency. An explicit cursor (rather
      // than count_ % capacity_) stays valid after Merge rewrites the
      // sample set — count_ jumps by the other side's total there, which
      // would leave the replacement phase arbitrary.
      samples_[next_replace_] = latency;
      next_replace_ = (next_replace_ + 1) % capacity_;
    }
  }

  uint64_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// \brief Folds another reservoir into this one (per-shard merge). Counts
  /// and sums are exact; the retained sample sets are combined and, when
  /// over capacity, thinned systematically so both sides stay represented
  /// proportionally — quantiles stay approximate, as with any reservoir.
  /// The merged set may come from a reservoir of a *different* capacity, so
  /// the replacement cursor is recomputed: subsequent Observe calls resume
  /// a well-defined ring over the thinned set instead of indexing with a
  /// count that just jumped by the other side's total.
  void Merge(const LatencyReservoir& other) {
    sum_ += other.sum_;
    count_ += other.count_;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    if (samples_.size() > capacity_) {
      std::vector<DurationMs> thinned;
      thinned.reserve(capacity_);
      const double stride =
          static_cast<double>(samples_.size()) / static_cast<double>(capacity_);
      for (size_t i = 0; i < capacity_; ++i) {
        thinned.push_back(
            samples_[static_cast<size_t>(static_cast<double>(i) * stride)]);
      }
      samples_ = std::move(thinned);
    }
    next_replace_ = 0;
  }

  /// \brief q-quantile (0..1) of the retained samples.
  DurationMs Quantile(double q) const {
    if (samples_.empty()) return 0;
    std::vector<DurationMs> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    return sorted[idx];
  }

 private:
  size_t capacity_;
  std::vector<DurationMs> samples_;
  size_t next_replace_ = 0;  ///< ring cursor, valid while samples_ is full
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_RATE_H_
