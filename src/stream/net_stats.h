#ifndef MARLIN_STREAM_NET_STATS_H_
#define MARLIN_STREAM_NET_STATS_H_

/// \file net_stats.h
/// \brief Network front-door instrumentation: per-connection and roll-up
/// counters for the ingest servers (src/net/), surfaced through
/// `PipelineMetrics::net_ingest` so feed health sits next to the per-stage
/// pipeline metrics it feeds.
///
/// Lives in stream/ (not net/) so the core pipeline can carry the stats
/// type without linking the socket layer.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace marlin {

/// \brief One ingest connection's counters (a TCP connection, or one UDP
/// peer address treated as a logical connection).
struct ConnectionIngestStats {
  uint64_t connection_id = 0;  ///< the fragment-isolation / source-id salt
  std::string peer;            ///< "addr:port" of the remote end
  bool open = false;
  uint64_t bytes_in = 0;
  uint64_t lines = 0;        ///< complete lines delivered (raw-line mode)
  uint64_t frames = 0;       ///< complete CRC-clean frames delivered
  uint64_t bad_lines = 0;    ///< oversized/unterminated lines dead-lettered
  uint64_t bad_frames = 0;   ///< corrupt/oversized frame faults
};

/// \brief Mergeable roll-up across servers (TCP + UDP) and connections.
struct NetIngestStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t bytes_in = 0;
  uint64_t lines = 0;
  uint64_t frames = 0;
  uint64_t datagrams = 0;
  uint64_t bad_lines = 0;
  uint64_t bad_frames = 0;
  /// Per-connection breakdown (bounded by the server's connection cap).
  std::vector<ConnectionIngestStats> connections;

  void Merge(const NetIngestStats& o) {
    connections_accepted += o.connections_accepted;
    connections_open += o.connections_open;
    bytes_in += o.bytes_in;
    lines += o.lines;
    frames += o.frames;
    datagrams += o.datagrams;
    bad_lines += o.bad_lines;
    bad_frames += o.bad_frames;
    connections.insert(connections.end(), o.connections.begin(),
                       o.connections.end());
  }
};

}  // namespace marlin

#endif  // MARLIN_STREAM_NET_STATS_H_
