#ifndef MARLIN_STREAM_REORDER_H_
#define MARLIN_STREAM_REORDER_H_

/// \file reorder.h
/// \brief Watermark-driven reorder buffer: ingests out-of-order events and
/// releases them in event-time order.

#include <queue>
#include <vector>

#include "stream/event.h"
#include "stream/watermark.h"

namespace marlin {

/// \brief Buffers events until the watermark passes, then emits them sorted
/// by event time. Events older than the watermark at ingest are counted as
/// late and either dropped or emitted immediately (configurable).
template <typename T>
class ReorderBuffer {
 public:
  struct Options {
    DurationMs max_delay_ms = 5 * kMillisPerSecond;
    bool emit_late_events = false;  ///< false = drop late arrivals
  };

  struct Stats {
    uint64_t in = 0;
    uint64_t out = 0;
    uint64_t late = 0;
    uint64_t dropped_late = 0;
  };

  ReorderBuffer() : ReorderBuffer(Options()) {}
  explicit ReorderBuffer(const Options& options)
      : options_(options), watermark_(options.max_delay_ms) {}

  /// \brief Adds an event; appends any now-releasable events to `out`.
  void Push(Event<T> event, std::vector<Event<T>>* out) {
    ++stats_.in;
    if (watermark_.IsLate(event.event_time)) {
      ++stats_.late;
      if (options_.emit_late_events) {
        out->push_back(std::move(event));
        ++stats_.out;
      } else {
        ++stats_.dropped_late;
      }
      return;
    }
    watermark_.Observe(event.event_time);
    heap_.push(std::move(event));
    Release(out);
  }

  /// \brief Flushes everything still buffered (end of stream).
  void Flush(std::vector<Event<T>>* out) {
    while (!heap_.empty()) {
      out->push_back(heap_.top());
      heap_.pop();
      ++stats_.out;
    }
  }

  Timestamp CurrentWatermark() const { return watermark_.Current(); }
  size_t buffered() const { return heap_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Greater {
    bool operator()(const Event<T>& a, const Event<T>& b) const {
      return EventTimeLess<T>()(b, a);
    }
  };

  void Release(std::vector<Event<T>>* out) {
    const Timestamp wm = watermark_.Current();
    while (!heap_.empty() && heap_.top().event_time <= wm) {
      out->push_back(heap_.top());
      heap_.pop();
      ++stats_.out;
    }
  }

  Options options_;
  WatermarkGenerator watermark_;
  std::priority_queue<Event<T>, std::vector<Event<T>>, Greater> heap_;
  Stats stats_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_REORDER_H_
