#ifndef MARLIN_STREAM_SHARD_ROUTER_H_
#define MARLIN_STREAM_SHARD_ROUTER_H_

/// \file shard_router.h
/// \brief Key → shard assignment for partitioned stream processing.
///
/// MMSIs are structured (3-digit country prefix + operator block), so a
/// plain modulo would skew shard load for fleets clustered under a few
/// MIDs. A 64-bit finalizer (splitmix64) whitens the key first; the mapping
/// is a pure function, so any router instance — on any thread, in any
/// process — routes a key identically.

#include <cstddef>
#include <cstdint>

namespace marlin {

/// \brief splitmix64 finalizer — a fast, well-distributed 64-bit mixer.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Deterministic hash partitioner over a fixed shard count.
class ShardRouter {
 public:
  explicit ShardRouter(size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// \brief Shard index for a key (stable across runs and machines).
  size_t ShardFor(uint64_t key) const {
    return static_cast<size_t>(SplitMix64(key) % num_shards_);
  }

 private:
  size_t num_shards_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_SHARD_ROUTER_H_
