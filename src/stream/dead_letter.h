#ifndef MARLIN_STREAM_DEAD_LETTER_H_
#define MARLIN_STREAM_DEAD_LETTER_H_

/// \file dead_letter.h
/// \brief Dead-letter quarantine: every record the pipeline rejects or
/// drops is either retained with its raw payload or at minimum *counted*,
/// never silently discarded — the counted-not-silent invariant of the
/// fault-tolerance layer (and the production trimming ROADMAP direction 1
/// calls for before shards go remote).
///
/// Two intake paths:
///   * `Push` retains the raw rejected line/frame with a reason code, up to
///     `capacity` entries; overflow evicts the oldest retained payload but
///     keeps its count (data at risk never disappears from the ledger, only
///     its bytes do).
///   * `PushCount` records drops whose payload is already gone (e.g. a
///     degraded shard dropping routed messages wholesale) — counted only.
///
/// Both pipelines expose `DrainDeadLetters` for operators to pull the
/// retained payloads, and surface the counters through
/// `PipelineMetrics::health`. Thread-safe: the decode reject path runs on
/// the coordinator while degraded shard workers count drops concurrently.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace marlin {

/// \brief Why a record was dead-lettered.
enum class DeadLetterReason : uint8_t {
  kBadSentence = 0,   ///< NMEA frame failed parse/checksum
  kBadPayload = 1,    ///< sentence parsed but the AIS payload was undecodable
  kDegradedDrop = 2,  ///< dropped by a shard in counted-drop (degraded) mode
  kWorkerFailure = 3, ///< lost to a worker failure past the restart budget
  kFrameCorrupt = 4,  ///< wire frame failed magic/CRC/structure checks
  kFrameOversized = 5,  ///< wire frame declared a payload beyond the cap
};
inline constexpr size_t kDeadLetterReasonCount = 6;

inline const char* DeadLetterReasonName(DeadLetterReason reason) {
  switch (reason) {
    case DeadLetterReason::kBadSentence: return "bad_sentence";
    case DeadLetterReason::kBadPayload: return "bad_payload";
    case DeadLetterReason::kDegradedDrop: return "degraded_drop";
    case DeadLetterReason::kWorkerFailure: return "worker_failure";
    case DeadLetterReason::kFrameCorrupt: return "frame_corrupt";
    case DeadLetterReason::kFrameOversized: return "frame_oversized";
  }
  return "unknown";
}

/// \brief One retained rejected record.
struct DeadLetter {
  Timestamp ingest_time = kInvalidTimestamp;
  DeadLetterReason reason = DeadLetterReason::kBadSentence;
  std::string payload;  ///< the raw line/frame as received
};

/// \brief Mergeable dead-letter counters (part of `PipelineHealth`).
struct DeadLetterStats {
  uint64_t enqueued = 0;      ///< records retained with payload (ever)
  uint64_t counted_only = 0;  ///< records counted without payload retention
  uint64_t evicted = 0;       ///< retained payloads lost to capacity
  size_t depth = 0;           ///< currently retained (undrained) records
  uint64_t by_reason[kDeadLetterReasonCount] = {};

  /// Every record that left the healthy path, payload retained or not.
  uint64_t total() const { return enqueued + counted_only; }

  void Merge(const DeadLetterStats& o) {
    enqueued += o.enqueued;
    counted_only += o.counted_only;
    evicted += o.evicted;
    depth += o.depth;
    for (size_t i = 0; i < kDeadLetterReasonCount; ++i) {
      by_reason[i] += o.by_reason[i];
    }
  }
};

/// \brief Bounded, drainable, thread-safe quarantine queue.
class DeadLetterQueue {
 public:
  explicit DeadLetterQueue(size_t capacity = 1024)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// \brief Retains one rejected record (evicting the oldest at capacity).
  void Push(DeadLetterReason reason, std::string_view payload,
            Timestamp ingest_time) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (queue_.size() >= capacity_) {
      queue_.pop_front();
      ++stats_.evicted;
    }
    queue_.push_back(DeadLetter{ingest_time, reason, std::string(payload)});
    ++stats_.enqueued;
    ++stats_.by_reason[static_cast<size_t>(reason)];
  }

  /// \brief Counts `n` dropped records whose payloads are already gone.
  void PushCount(DeadLetterReason reason, uint64_t n) {
    if (n == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.counted_only += n;
    stats_.by_reason[static_cast<size_t>(reason)] += n;
  }

  /// \brief Moves all retained records (oldest first) into `out`; returns
  /// how many.
  size_t Drain(std::vector<DeadLetter>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t n = queue_.size();
    out->reserve(out->size() + n);
    for (DeadLetter& dl : queue_) out->push_back(std::move(dl));
    queue_.clear();
    return n;
  }

  DeadLetterStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    DeadLetterStats s = stats_;
    s.depth = queue_.size();
    return s;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<DeadLetter> queue_;
  DeadLetterStats stats_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_DEAD_LETTER_H_
