#ifndef MARLIN_STREAM_SIDE_STAGE_H_
#define MARLIN_STREAM_SIDE_STAGE_H_

/// \file side_stage.h
/// \brief Asynchronous side-stage: a worker fed off the hot path through a
/// bounded lossy channel (paper §2.2: joining streams with contextual
/// sources must not stall ingest when those sources are slow).
///
/// A side-stage receives items from exactly one producer (`Submit`), applies
/// a transform on its own thread, and delivers the results either to a
/// registered sink or to a bounded drain buffer. Backpressure is *lossy by
/// design*: when the transform cannot keep up the *oldest* queued item is
/// evicted and counted — the producer never blocks and the stage keeps the
/// freshest data. Both channel fabrics (stream/channel.h, constructed with
/// `lossy = true`) implement the same evict-oldest policy, so the two arms
/// shed identical item sets under identical load. `Flush` is the
/// end-of-stream barrier: after it returns, every submitted item has been
/// either delivered or counted as dropped, so
/// `submitted == processed + queue_dropped` is the completeness invariant.
///
/// Ordering: the channel is FIFO and the worker is single, so delivery
/// order is submission order (minus evicted items — drops thin the stream
/// but never reorder it). A synchronous mode (`Options::async = false`)
/// runs the transform inline on the producer thread with identical
/// accounting, giving a deterministic single-threaded reference for the
/// async stage.
///
/// Fault isolation: a transform that throws loses only that item — counted
/// in `transform_failed`, never tearing down the worker thread — so the
/// completeness invariant generalises to
/// `submitted == processed + queue_dropped + transform_failed`.

#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "stream/channel.h"
#include "stream/rate.h"

namespace marlin {

/// \brief Wall-clock share of the transform attributed to one named
/// upstream source — which context join (zones vs weather vs registry, for
/// the enrichment stage) is actually eating the stage's budget.
struct SourceLatency {
  uint64_t calls = 0;     ///< attributed transform invocations
  uint64_t total_us = 0;  ///< summed wall-clock microseconds
  uint64_t max_us = 0;    ///< slowest single call

  double MeanUs() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(total_us) /
                            static_cast<double>(calls);
  }

  void Merge(const SourceLatency& other) {
    calls += other.calls;
    total_us += other.total_us;
    max_us = std::max(max_us, other.max_us);
  }
};

/// \brief Side-stage instrumentation. Mergeable across shards.
struct SideStageStats {
  uint64_t submitted = 0;       ///< items handed to Submit
  uint64_t processed = 0;       ///< items transformed and delivered
  uint64_t queue_dropped = 0;   ///< evicted unprocessed (input backpressure)
  uint64_t output_dropped = 0;  ///< delivered but evicted from drain buffer
  uint64_t transform_failed = 0;  ///< transform threw; item lost, counted
  size_t max_queue_depth = 0;   ///< high-water mark of the input queue
  /// Producer → worker hop counters (waits, batch-size histogram; its
  /// depth high-water equals `max_queue_depth`). Zero in sync mode.
  QueueHopStats hop;
  LatencyReservoir latency{512};  ///< submit → delivered, wall-clock ms
  /// Per-source attribution, filled by the transform through
  /// `AsyncSideStage::AttributeSource`. Empty when the transform does not
  /// attribute.
  std::map<std::string, SourceLatency> source_latency;

  uint64_t dropped() const { return queue_dropped + output_dropped; }

  void Merge(const SideStageStats& other) {
    submitted += other.submitted;
    processed += other.processed;
    queue_dropped += other.queue_dropped;
    output_dropped += other.output_dropped;
    transform_failed += other.transform_failed;
    max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
    hop.Merge(other.hop);
    latency.Merge(other.latency);
    for (const auto& [name, source] : other.source_latency) {
      source_latency[name].Merge(source);
    }
  }
};

/// \brief Single-producer async side-stage over a transform `In -> Out`.
template <typename In, typename Out>
class AsyncSideStage {
 public:
  struct Options {
    /// Run the transform on a dedicated worker (true) or inline on the
    /// producer thread (false — the sequential reference mode).
    bool async = true;
    /// Input channel depth; overflow evicts the oldest queued item on
    /// either fabric (see the file comment).
    size_t queue_depth = 1024;
    /// Drain-buffer capacity when no sink is registered; overflow evicts
    /// the oldest buffered output.
    size_t output_capacity = 8192;
    /// Worker pops up to this many items per channel acquisition.
    size_t max_batch = 64;
    /// Hand-off fabric for the input channel (the Submit caller is the
    /// stage's single producer, so the SPSC contract holds).
    QueueFabric fabric = QueueFabric::kSpscRing;
  };

  using Transform = std::function<Out(const In&)>;
  using Sink = std::function<void(const Out&)>;

  AsyncSideStage(const Options& options, Transform transform)
      : options_(options),
        transform_(std::move(transform)),
        channel_(options.fabric, std::max<size_t>(1, options.queue_depth),
                 /*lossy=*/true) {
    if (options_.async) worker_ = std::thread([this] { WorkerLoop(); });
  }

  ~AsyncSideStage() {
    channel_.Close();  // worker drains the remaining items, then exits
    if (worker_.joinable()) worker_.join();
  }

  AsyncSideStage(const AsyncSideStage&) = delete;
  AsyncSideStage& operator=(const AsyncSideStage&) = delete;

  /// \brief Registers the consumer callback. Must be installed before the
  /// first Submit; in async mode it runs on the worker thread.
  void SetSink(Sink sink) { sink_ = std::move(sink); }

  /// \brief Hands one item to the stage. Never blocks: a full channel
  /// evicts an item (counted in `queue_dropped`). Single producer.
  /// Counter note: `submitted` is published after the push, so a stats
  /// snapshot taken while the producer runs may transiently read
  /// `processed > submitted`; the `submitted == processed + queue_dropped`
  /// invariant holds at every quiescent point (Flush).
  void Submit(const In& item) {
    const TimePoint now = Clock::now();
    if (!options_.async) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.submitted;
      }
      std::optional<Out> out;
      try {
        out.emplace(transform_(item));
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.transform_failed;
        complete_cv_.notify_all();
        return;
      }
      Deliver(std::move(*out), now);
      return;
    }
    size_t evicted = 0;
    const bool pushed = channel_.PushLossy(Item{item, now}, &evicted);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    if (!pushed) ++evicted;  // closed: account the rejected item itself
    stats_.queue_dropped += evicted;
    if (evicted > 0) complete_cv_.notify_all();
  }

  /// \brief Moves the buffered outputs (delivery order) into `out`;
  /// returns how many. Only meaningful without a sink.
  size_t Drain(std::vector<Out>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t n = output_.size();
    out->reserve(out->size() + n);
    for (Out& o : output_) out->push_back(std::move(o));
    output_.clear();
    return n;
  }

  /// \brief End-of-stream barrier: blocks until every submitted item has
  /// been delivered or dropped. Call from a quiescent producer (no
  /// concurrent Submit).
  void Flush() {
    std::unique_lock<std::mutex> lock(mutex_);
    complete_cv_.wait(lock, [this] {
      return stats_.processed + stats_.queue_dropped +
                 stats_.transform_failed >=
             stats_.submitted;
    });
  }

  /// \brief Attributes `micros` of transform wall-clock to the named
  /// upstream source. Call from inside the transform — it runs on the
  /// worker thread in async mode, the producer thread in sync mode; either
  /// way the stats lock serialises the update.
  void AttributeSource(const std::string& name, uint64_t micros) {
    const std::pair<const char*, uint64_t> one[] = {{name.c_str(), micros}};
    AttributeSources(one);
  }

  /// \brief Batched attribution: one stats-lock acquisition for all of a
  /// transform invocation's sources (the per-point hot path).
  void AttributeSources(
      std::span<const std::pair<const char*, uint64_t>> sources) {
    if (sources.empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, micros] : sources) {
      SourceLatency& source = stats_.source_latency[name];
      ++source.calls;
      source.total_us += micros;
      source.max_us = std::max(source.max_us, micros);
    }
  }

  /// \brief Snapshot of the stage counters (safe while the worker runs).
  SideStageStats stats() const {
    QueueHopStats hop;
    if (options_.async) hop = channel_.stats();
    std::lock_guard<std::mutex> lock(mutex_);
    SideStageStats s = stats_;
    s.hop = hop;
    s.max_queue_depth = std::max(s.max_queue_depth, hop.depth_high_water);
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  struct Item {
    In payload;
    TimePoint submitted_at;
  };

  void WorkerLoop() {
    std::vector<Item> batch;
    std::vector<std::pair<Out, DurationMs>> done;
    while (channel_.PopBatch(&batch, std::max<size_t>(1, options_.max_batch)) >
           0) {
      // Transform (and sink delivery) run without the stats lock; the
      // bookkeeping for the whole batch is one lock acquisition.
      uint64_t failed = 0;
      for (Item& item : batch) {
        std::optional<Out> out;
        try {
          out.emplace(transform_(item.payload));
        } catch (...) {
          // Lose only this item; the worker (and the rest of the batch)
          // carries on.
          ++failed;
          continue;
        }
        const DurationMs latency_ms = MillisSince(item.submitted_at);
        if (sink_) sink_(*out);
        done.emplace_back(std::move(*out), latency_ms);
      }
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& [out, latency_ms] : done) {
        ++stats_.processed;
        stats_.latency.Observe(latency_ms);
        if (!sink_) PushOutput(std::move(out));
      }
      stats_.transform_failed += failed;
      done.clear();
      batch.clear();
      complete_cv_.notify_all();
    }
  }

  void Deliver(Out out, TimePoint submitted_at) {
    const DurationMs latency_ms = MillisSince(submitted_at);
    if (sink_) sink_(out);  // user code runs outside the stats lock
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.processed;
    stats_.latency.Observe(latency_ms);
    if (!sink_) PushOutput(std::move(out));
    complete_cv_.notify_all();
  }

  static DurationMs MillisSince(TimePoint start) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start)
        .count();
  }

  /// Caller holds mutex_.
  void PushOutput(Out out) {
    while (output_.size() >= std::max<size_t>(1, options_.output_capacity)) {
      output_.pop_front();
      ++stats_.output_dropped;
    }
    output_.push_back(std::move(out));
  }

  const Options options_;
  const Transform transform_;
  Sink sink_;  ///< written before the first Submit, read by the worker
  StageChannel<Item> channel_;
  std::thread worker_;
  mutable std::mutex mutex_;
  std::condition_variable complete_cv_;
  std::deque<Out> output_;  ///< drain buffer (sink-less mode)
  SideStageStats stats_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_SIDE_STAGE_H_
