#ifndef MARLIN_STREAM_FRAME_H_
#define MARLIN_STREAM_FRAME_H_

/// \file frame.h
/// \brief Length-prefixed, CRC-framed wire format for shipping stream
/// records between processes — the frame format the PackedBits refactor
/// was explicitly designed to leave behind: de-armored 64-bit payload
/// words travel once per hop instead of being re-armored into six-bit
/// ASCII at every boundary.
///
/// Wire layout (all multi-byte fields little-endian):
///
///   offset 0  magic      0x4D 0xA7          (2 bytes)
///   offset 2  version    0x01               (1 byte)
///   offset 3  kind       FrameKind          (1 byte)
///   offset 4  length     u32 payload bytes  (4 bytes)
///   offset 8  payload    `length` bytes
///   offset 8+length  crc32c u32 over bytes [2, 8+length)
///
/// Two frame kinds:
///  * `kLine` — a full `Event<std::string>` (event/ingest timestamps,
///    source id, raw NMEA line). Carrying the event envelope — not just the
///    line — is what makes loopback replay byte-identical to in-process
///    `IngestBatch`: the receiver re-ingests with the original timestamps.
///  * `kPacked` — a de-armored AIS payload as `PackedBits` words plus its
///    receive timestamp: the post-assembly, pre-decode representation, so
///    a hop never pays six-bit re-armoring or NMEA re-parse.
///
/// `FrameDecoder` is an incremental, resynchronising parser with the
/// *untouched-or-complete* property: a frame is surfaced only when every
/// byte of it has arrived and its CRC verifies; a truncated tail stays
/// buffered (or becomes exactly one dead-letter fault at end-of-stream),
/// and corrupt bytes are skipped to the next magic with exactly one
/// counted fault per corrupt region — mirroring the counted-not-silent
/// invariant of the dead-letter layer.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/packed_bits.h"
#include "common/time.h"
#include "storage/coding.h"
#include "stream/dead_letter.h"
#include "stream/event.h"

namespace marlin {

/// \brief What a frame's payload encodes.
enum class FrameKind : uint8_t {
  kLine = 1,    ///< Event<std::string>: raw NMEA line + event envelope
  kPacked = 2,  ///< de-armored PackedBits AIS payload + event envelope
};

inline constexpr uint8_t kFrameMagic0 = 0x4D;  // 'M'
inline constexpr uint8_t kFrameMagic1 = 0xA7;
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr size_t kFrameTrailerBytes = 4;
inline constexpr size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;
/// Payload cap: an AIS sentence is ≤ 82 chars and a 5-fragment payload
/// de-armors to < 1 KiB, so 64 KiB leaves generous headroom while bounding
/// what a hostile length field can make the decoder buffer.
inline constexpr size_t kMaxFramePayload = 64 * 1024;

/// \brief A de-armored AIS payload with its receive timestamp — the unit a
/// `kPacked` frame ships (post-assembly, pre-decode).
struct PackedRecord {
  Timestamp received_at = kInvalidTimestamp;
  PackedBits bits;

  friend bool operator==(const PackedRecord& a, const PackedRecord& b) {
    return a.received_at == b.received_at && a.bits == b.bits;
  }
};

/// \brief One successfully decoded frame; `kind` selects the active member.
struct DecodedFrame {
  FrameKind kind = FrameKind::kLine;
  Event<std::string> line;     ///< valid when kind == kLine
  Event<PackedRecord> packed;  ///< valid when kind == kPacked
};

namespace frame_internal {

inline void AppendU32LE(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  std::swap(b[0], b[3]);
  std::swap(b[1], b[2]);
#endif
  out->append(b, 4);
}

inline void AppendU64LE(std::string* out, uint64_t v) { PutFixed64LE(out, v); }

inline uint32_t ReadU32LE(std::string_view src, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, src.data() + offset, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

inline uint64_t ReadU64LE(std::string_view src, size_t offset) {
  return GetFixed64LE(src, offset);
}

/// Envelope prefix shared by both payload kinds.
inline void AppendEnvelope(std::string* out, Timestamp event_time,
                           Timestamp ingest_time, uint64_t source_id) {
  AppendU64LE(out, static_cast<uint64_t>(event_time));
  AppendU64LE(out, static_cast<uint64_t>(ingest_time));
  AppendU64LE(out, source_id);
}

inline constexpr size_t kEnvelopeBytes = 24;

/// Seals `out` as a frame: the payload was appended after a placeholder
/// header starting at `frame_start`; patch the length and append the CRC.
inline void SealFrame(std::string* out, size_t frame_start) {
  const size_t payload_len = out->size() - frame_start - kFrameHeaderBytes;
  uint32_t len32 = static_cast<uint32_t>(payload_len);
  char lenb[4];
  std::memcpy(lenb, &len32, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  std::swap(lenb[0], lenb[3]);
  std::swap(lenb[1], lenb[2]);
#endif
  out->replace(frame_start + 4, 4, lenb, 4);
  const uint32_t crc = Crc32c(out->data() + frame_start + 2,
                              out->size() - frame_start - 2);
  AppendU32LE(out, crc);
}

inline void BeginFrame(std::string* out, FrameKind kind) {
  out->push_back(static_cast<char>(kFrameMagic0));
  out->push_back(static_cast<char>(kFrameMagic1));
  out->push_back(static_cast<char>(kFrameVersion));
  out->push_back(static_cast<char>(kind));
  out->append(4, '\0');  // length placeholder, patched by SealFrame
}

}  // namespace frame_internal

/// \brief Appends one `kLine` frame carrying the full event envelope.
inline void AppendLineFrame(const Event<std::string>& ev, std::string* out) {
  const size_t start = out->size();
  frame_internal::BeginFrame(out, FrameKind::kLine);
  frame_internal::AppendEnvelope(out, ev.event_time, ev.ingest_time,
                                 ev.source_id);
  out->append(ev.payload);
  frame_internal::SealFrame(out, start);
}

/// \brief Appends one `kPacked` frame: envelope, receive timestamp, bit
/// count, then the de-armored words verbatim.
inline void AppendPackedFrame(const Event<PackedRecord>& ev,
                              std::string* out) {
  const size_t start = out->size();
  frame_internal::BeginFrame(out, FrameKind::kPacked);
  frame_internal::AppendEnvelope(out, ev.event_time, ev.ingest_time,
                                 ev.source_id);
  frame_internal::AppendU64LE(
      out, static_cast<uint64_t>(ev.payload.received_at));
  frame_internal::AppendU32LE(
      out, static_cast<uint32_t>(ev.payload.bits.size_bits()));
  for (size_t i = 0; i < ev.payload.bits.word_count(); ++i) {
    frame_internal::AppendU64LE(out, ev.payload.bits.word(i));
  }
  frame_internal::SealFrame(out, start);
}

/// \brief Decoder-side counters (per connection; mergeable by addition).
struct FrameDecoderStats {
  uint64_t bytes_in = 0;        ///< bytes fed
  uint64_t frames = 0;          ///< complete, CRC-clean frames surfaced
  uint64_t corrupt = 0;         ///< kFrameCorrupt faults emitted
  uint64_t oversized = 0;       ///< kFrameOversized faults emitted
  uint64_t bytes_skipped = 0;   ///< bytes discarded while resynchronising
};

/// \brief Incremental frame parser over an arbitrary byte-chunk stream.
///
/// Feed bytes as they arrive (any split, including mid-header and
/// mid-CRC); pull complete frames with `Next`. Faults (one per corrupt
/// region / oversized frame / truncated tail) accumulate with exact
/// dead-letter reason codes for the caller to forward into a
/// `DeadLetterQueue`. Single-threaded: one connection owns one decoder.
class FrameDecoder {
 public:
  struct Fault {
    DeadLetterReason reason = DeadLetterReason::kFrameCorrupt;
    uint64_t bytes = 0;  ///< corrupt bytes this fault accounts for
  };

  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// \brief Buffers one received chunk.
  void Feed(std::string_view bytes) {
    stats_.bytes_in += bytes.size();
    buf_.append(bytes);
    Compact();
  }

  /// \brief Surfaces the next complete frame, if one is fully buffered.
  /// Returns false when more bytes are needed (buffered prefix untouched).
  bool Next(DecodedFrame* out) {
    while (true) {
      SkipToMagic();
      if (buf_.size() - pos_ < kFrameHeaderBytes) return false;
      const std::string_view view(buf_);
      if (static_cast<uint8_t>(view[pos_ + 2]) != kFrameVersion) {
        SkipBytes(2);  // past the magic; rescan
        continue;
      }
      const uint32_t len = frame_internal::ReadU32LE(view, pos_ + 4);
      if (len > max_payload_) {
        // The length field is untrustworthy, so resync by scanning rather
        // than seeking `len` bytes ahead on its say-so. The whole region up
        // to the next valid frame becomes one kFrameOversized fault.
        open_reason_ = DeadLetterReason::kFrameOversized;
        SkipBytes(kFrameHeaderBytes);
        continue;
      }
      const size_t total = kFrameOverheadBytes + len;
      if (buf_.size() - pos_ < total) return false;
      const uint32_t want = frame_internal::ReadU32LE(
          view, pos_ + kFrameHeaderBytes + len);
      const uint32_t got =
          Crc32c(buf_.data() + pos_ + 2, kFrameHeaderBytes - 2 + len);
      if (want != got) {
        // A complete frame with a bad CRC: consume it whole (the length
        // field participated in the CRC of a plausible frame) and close
        // the region as one fault.
        SkipBytes(total);
        FlushSkipRegion();
        continue;
      }
      // CRC-clean: any garbage skipped getting here is one closed region.
      FlushSkipRegion();
      const std::string_view payload = view.substr(pos_ + kFrameHeaderBytes,
                                                   len);
      const auto kind = static_cast<FrameKind>(view[pos_ + 3]);
      if (ParsePayload(kind, payload, out)) {
        pos_ += total;
        ++stats_.frames;
        return true;
      }
      // Structurally invalid payload inside a CRC-clean frame (unknown
      // kind, short envelope, word-count mismatch): one fault, consume it.
      ++stats_.corrupt;
      faults_.push_back(Fault{DeadLetterReason::kFrameCorrupt, total});
      pos_ += total;
    }
  }

  /// \brief End-of-stream: any buffered partial frame or open skip region
  /// becomes exactly one kFrameCorrupt fault.
  void Finish() {
    skipped_ += buf_.size() - pos_;
    stats_.bytes_skipped += buf_.size() - pos_;
    pos_ = buf_.size();
    FlushSkipRegion();
    Compact();
  }

  /// \brief Moves out the accumulated faults (oldest first).
  std::vector<Fault> TakeFaults() {
    std::vector<Fault> out;
    out.swap(faults_);
    return out;
  }

  const FrameDecoderStats& stats() const { return stats_; }

  /// \brief Bytes currently buffered awaiting completion.
  size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  /// Advances pos_ to the next magic (or to where a partial magic could
  /// begin at the buffer tail), accounting skipped bytes to the open region.
  void SkipToMagic() {
    const size_t n = buf_.size();
    while (pos_ < n) {
      if (static_cast<uint8_t>(buf_[pos_]) == kFrameMagic0) {
        if (pos_ + 1 >= n) return;  // maybe a split magic; wait for more
        if (static_cast<uint8_t>(buf_[pos_ + 1]) == kFrameMagic1) return;
      }
      SkipBytes(1);
    }
  }

  void SkipBytes(size_t n) {
    n = std::min(n, buf_.size() - pos_);
    pos_ += n;
    skipped_ += n;
    stats_.bytes_skipped += n;
  }

  /// Emits the pending skipped-byte region (if any) as exactly one fault,
  /// with the region's reason (oversized when an over-cap length field
  /// started it, corrupt otherwise).
  void FlushSkipRegion() {
    if (skipped_ == 0) return;
    if (open_reason_ == DeadLetterReason::kFrameOversized) {
      ++stats_.oversized;
    } else {
      ++stats_.corrupt;
    }
    faults_.push_back(Fault{open_reason_, skipped_});
    skipped_ = 0;
    open_reason_ = DeadLetterReason::kFrameCorrupt;
  }

  bool ParsePayload(FrameKind kind, std::string_view payload,
                    DecodedFrame* out) {
    using frame_internal::ReadU32LE;
    using frame_internal::ReadU64LE;
    if (payload.size() < frame_internal::kEnvelopeBytes) return false;
    const auto event_time = static_cast<Timestamp>(ReadU64LE(payload, 0));
    const auto ingest_time = static_cast<Timestamp>(ReadU64LE(payload, 8));
    const uint64_t source_id = ReadU64LE(payload, 16);
    if (kind == FrameKind::kLine) {
      out->kind = FrameKind::kLine;
      out->line = Event<std::string>(
          event_time, ingest_time, source_id,
          std::string(payload.substr(frame_internal::kEnvelopeBytes)));
      return true;
    }
    if (kind != FrameKind::kPacked) return false;
    if (payload.size() < frame_internal::kEnvelopeBytes + 12) return false;
    const auto received_at = static_cast<Timestamp>(
        ReadU64LE(payload, frame_internal::kEnvelopeBytes));
    const uint32_t bit_count =
        ReadU32LE(payload, frame_internal::kEnvelopeBytes + 8);
    const size_t words = (static_cast<size_t>(bit_count) + 63) / 64;
    if (payload.size() !=
        frame_internal::kEnvelopeBytes + 12 + 8 * words) {
      return false;
    }
    PackedRecord record;
    record.received_at = received_at;
    record.bits.ReserveBits(bit_count);
    size_t off = frame_internal::kEnvelopeBytes + 12;
    uint32_t remaining = bit_count;
    for (size_t i = 0; i < words; ++i, off += 8) {
      const uint64_t w = ReadU64LE(payload, off);
      const int width = remaining >= 64 ? 64 : static_cast<int>(remaining);
      // Words store bits MSB-first; a partial tail word keeps them in the
      // high bits. Reject set bits below the tail (the tail-zero invariant
      // PackedBits maintains) so decode is bijective with encode.
      if (width < 64) {
        if (width == 0) return false;
        if ((w & ((uint64_t{1} << (64 - width)) - 1)) != 0) return false;
        record.bits.AppendBits(w >> (64 - width), width);
      } else {
        record.bits.AppendBits(w, 64);
      }
      remaining -= static_cast<uint32_t>(width);
    }
    out->kind = FrameKind::kPacked;
    out->packed = Event<PackedRecord>(event_time, ingest_time, source_id,
                                      std::move(record));
    return true;
  }

  /// Reclaims consumed prefix bytes once they dominate the buffer.
  void Compact() {
    if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  const size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;        ///< parse cursor into buf_
  uint64_t skipped_ = 0;  ///< bytes in the currently open skip region
  DeadLetterReason open_reason_ = DeadLetterReason::kFrameCorrupt;
  std::vector<Fault> faults_;
  FrameDecoderStats stats_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_FRAME_H_
