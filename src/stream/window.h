#ifndef MARLIN_STREAM_WINDOW_H_
#define MARLIN_STREAM_WINDOW_H_

/// \file window.h
/// \brief Keyed event-time window aggregation (tumbling and sliding).
///
/// Windows close when the watermark passes their end — the standard
/// event-time discipline the paper's "cross-streaming integration" (§2.2)
/// requires for correct joins of delayed satellite data.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/time.h"
#include "stream/event.h"

namespace marlin {

/// \brief A closed window's result for one key.
template <typename K, typename A>
struct WindowResult {
  K key;
  Timestamp window_start = 0;
  Timestamp window_end = 0;  ///< exclusive
  A aggregate;
};

/// \brief Keyed tumbling-window aggregator.
///
/// `A` is the accumulator type; `fold` merges one event payload into it.
/// Windows are aligned to multiples of `size_ms`.
template <typename K, typename T, typename A>
class TumblingWindow {
 public:
  using Fold = std::function<void(A*, const T&, Timestamp)>;

  TumblingWindow(DurationMs size_ms, Fold fold)
      : size_ms_(size_ms), fold_(std::move(fold)) {}

  /// \brief Adds an event for `key`.
  void Add(const K& key, const Event<T>& event) {
    const Timestamp start = AlignDown(event.event_time);
    auto& acc = windows_[{start, key}];
    fold_(&acc, event.payload, event.event_time);
  }

  /// \brief Closes all windows ending at or before `watermark`; appends
  /// results in (time, key) order.
  void AdvanceWatermark(Timestamp watermark,
                        std::vector<WindowResult<K, A>>* out) {
    auto it = windows_.begin();
    while (it != windows_.end()) {
      const Timestamp end = it->first.first + size_ms_;
      if (end <= watermark) {
        out->push_back(WindowResult<K, A>{it->first.second, it->first.first,
                                          end, std::move(it->second)});
        it = windows_.erase(it);
      } else {
        break;  // map is ordered by window start; later windows are open
      }
    }
  }

  /// \brief Closes everything (end of stream).
  void Close(std::vector<WindowResult<K, A>>* out) {
    AdvanceWatermark(kMaxTimestamp, out);
  }

  size_t open_windows() const { return windows_.size(); }

 private:
  Timestamp AlignDown(Timestamp t) const {
    Timestamp start = t - (t % size_ms_);
    if (t < 0 && t % size_ms_ != 0) start -= size_ms_;
    return start;
  }

  DurationMs size_ms_;
  Fold fold_;
  // Key: (window start, key) — ordered so watermark advance stops early.
  std::map<std::pair<Timestamp, K>, A> windows_;
};

/// \brief Keyed sliding-window aggregator (size + slide step).
///
/// An event enters every window whose span covers it; implemented by
/// assigning to size/slide overlapping tumbling panes.
template <typename K, typename T, typename A>
class SlidingWindow {
 public:
  using Fold = std::function<void(A*, const T&, Timestamp)>;

  SlidingWindow(DurationMs size_ms, DurationMs slide_ms, Fold fold)
      : size_ms_(size_ms), slide_ms_(slide_ms), fold_(std::move(fold)) {}

  void Add(const K& key, const Event<T>& event) {
    // The windows covering time t start at AlignDown(t), AlignDown(t)-slide,
    // ..., down to t - size + 1.
    const Timestamp first =
        AlignDown(event.event_time);
    for (Timestamp start = first;
         start > event.event_time - size_ms_ && start + size_ms_ > event.event_time;
         start -= slide_ms_) {
      auto& acc = windows_[{start, key}];
      fold_(&acc, event.payload, event.event_time);
    }
  }

  void AdvanceWatermark(Timestamp watermark,
                        std::vector<WindowResult<K, A>>* out) {
    auto it = windows_.begin();
    while (it != windows_.end()) {
      const Timestamp end = it->first.first + size_ms_;
      if (end <= watermark) {
        out->push_back(WindowResult<K, A>{it->first.second, it->first.first,
                                          end, std::move(it->second)});
        it = windows_.erase(it);
      } else {
        ++it;  // sliding panes are not fully ordered by end; scan all
      }
    }
  }

  void Close(std::vector<WindowResult<K, A>>* out) {
    AdvanceWatermark(kMaxTimestamp, out);
  }

  size_t open_windows() const { return windows_.size(); }

 private:
  Timestamp AlignDown(Timestamp t) const {
    Timestamp start = t - (t % slide_ms_);
    if (t < 0 && t % slide_ms_ != 0) start -= slide_ms_;
    return start;
  }

  DurationMs size_ms_;
  DurationMs slide_ms_;
  Fold fold_;
  std::map<std::pair<Timestamp, K>, A> windows_;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_WINDOW_H_
