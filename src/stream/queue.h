#ifndef MARLIN_STREAM_QUEUE_H_
#define MARLIN_STREAM_QUEUE_H_

/// \file queue.h
/// \brief Bounded blocking MPMC queue — the backpressure boundary between
/// pipeline stages (paper §2.1: in-situ processing must be communication
/// efficient; a bounded queue is where that pressure becomes visible).
///
/// Since the lock-free SPSC fabric (stream/spsc_ring.h) took over the
/// single-producer hot hops, this queue is the MPMC-capable fallback and
/// the frozen reference arm behind the `StageChannel` seam
/// (stream/channel.h).
///
/// Condition variables are always notified *after* the mutex is released:
/// notifying under the lock makes the woken thread immediately block on
/// the very mutex the notifier still holds (hurry-up-and-wait), adding a
/// futex round-trip per hand-off on contended hops.

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace marlin {

/// \brief Thread-safe bounded queue with blocking push/pop and close().
///
/// After Close(), pushes are rejected and pops drain the remaining items
/// then return std::nullopt — the conventional end-of-stream protocol.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// \brief Blocks until space is available; returns false if closed.
  /// `*depth_after` (when non-null) receives the queue size after the push
  /// and `*blocked` whether the producer had to wait — the hop
  /// instrumentation reads both without a second lock acquisition.
  bool Push(T item, size_t* depth_after = nullptr, bool* blocked = nullptr) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (blocked != nullptr) {
        *blocked = items_.size() >= capacity_ && !closed_;
      }
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
      if (depth_after != nullptr) *depth_after = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// \brief Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// \brief Lossy push for latency-critical producers: never blocks. When
  /// the queue is full the oldest queued item is evicted to make room — the
  /// backpressure policy of side-stages that must not stall the hot path.
  /// `*evicted` receives the number of items discarded (0 or 1);
  /// `*depth_after`, when non-null, the queue size after the push (saves
  /// the producer a separate size() lock when tracking high-water marks).
  /// Returns false only when the queue is closed (the item is rejected,
  /// nothing is evicted).
  bool PushEvictOldest(T item, size_t* evicted, size_t* depth_after = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      *evicted = 0;
      if (closed_) return false;
      // The emptiness check makes capacity 0 safe (degenerates to a
      // size-1 always-evict slot rather than popping an empty deque).
      while (!items_.empty() && items_.size() >= capacity_) {
        items_.pop_front();
        ++*evicted;
      }
      items_.push_back(std::move(item));
      if (depth_after != nullptr) *depth_after = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// \brief Blocks until an item arrives; std::nullopt once closed & drained.
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// \brief Blocking batch pop: waits for at least one item (or close),
  /// then drains up to `max_items` in one lock acquisition. Returns the
  /// number of items appended to `out`; 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      out->reserve(out->size() + std::min(items_.size(), max_items));
      while (!items_.empty() && n < max_items) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// \brief Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// \brief Marks end-of-stream; wakes all waiters.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_QUEUE_H_
