#ifndef MARLIN_STREAM_MERGE_H_
#define MARLIN_STREAM_MERGE_H_

/// \file merge.h
/// \brief K-way event-time merge of independently ordered sources.
///
/// The paper's core integration problem (§2.2): terrestrial AIS, satellite
/// AIS, radar and context feeds arrive as separate streams that must be
/// consumed as one event-time-ordered stream. Each source is assumed
/// internally ordered (or pre-passed through a ReorderBuffer); the merger
/// emits the global minimum head across non-exhausted sources.

#include <functional>
#include <optional>
#include <vector>

#include "stream/event.h"

namespace marlin {

/// \brief Pull-based k-way merge over source cursors.
///
/// A source is a callable `std::optional<Event<T>>()` returning the next
/// event or nullopt at end of stream. With the handful of feeds a maritime
/// system integrates, a linear head scan beats heap bookkeeping.
///
/// `Less` is a strict weak order over `Event<T>`; the default merges by
/// (event time, source id). Consumers that need the pipeline's canonical
/// (event time, MMSI) order — the query fan-out and the merged enriched
/// stream — supply a comparator that reaches into the payload.
template <typename T, typename Less = EventTimeLess<T>>
class StreamMerger {
 public:
  using Source = std::function<std::optional<Event<T>>()>;

  explicit StreamMerger(std::vector<Source> sources, Less less = Less())
      : less_(std::move(less)) {
    cursors_.reserve(sources.size());
    for (auto& s : sources) {
      Cursor c;
      c.source = std::move(s);
      c.head = c.source();
      cursors_.push_back(std::move(c));
    }
  }

  /// \brief Next event in global event-time order; nullopt when all sources
  /// are exhausted.
  std::optional<Event<T>> Next() {
    int best = -1;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (!cursors_[i].head.has_value()) continue;
      if (best < 0 || less_(*cursors_[i].head, *cursors_[best].head)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return std::nullopt;
    Event<T> out = std::move(*cursors_[best].head);
    cursors_[best].head = cursors_[best].source();
    return out;
  }

  /// \brief Drains everything into a vector (testing convenience).
  std::vector<Event<T>> DrainAll() {
    std::vector<Event<T>> out;
    while (auto e = Next()) out.push_back(std::move(*e));
    return out;
  }

 private:
  struct Cursor {
    Source source;
    std::optional<Event<T>> head;
  };

  Less less_;
  std::vector<Cursor> cursors_;
};

/// \brief Adapts a vector of events into a StreamMerger source.
template <typename T>
typename StreamMerger<T>::Source VectorSource(std::vector<Event<T>> events) {
  auto state = std::make_shared<std::pair<std::vector<Event<T>>, size_t>>(
      std::move(events), 0);
  return [state]() -> std::optional<Event<T>> {
    if (state->second >= state->first.size()) return std::nullopt;
    return std::move(state->first[state->second++]);
  };
}

}  // namespace marlin

#endif  // MARLIN_STREAM_MERGE_H_
