#ifndef MARLIN_STREAM_WATERMARK_H_
#define MARLIN_STREAM_WATERMARK_H_

/// \file watermark.h
/// \brief Event-time progress tracking for out-of-order streams.
///
/// Satellite AIS arrives minutes late and interleaved with terrestrial
/// receptions (paper §1, §2.5: "data sparseness, latency"). Watermarks bound
/// how long downstream operators wait before declaring event-time t complete.

#include <algorithm>

#include "common/time.h"

namespace marlin {

/// \brief Classic bounded-out-of-orderness watermark generator.
///
/// The watermark is `max_event_time_seen - max_delay`; events at or below the
/// current watermark are late.
class WatermarkGenerator {
 public:
  explicit WatermarkGenerator(DurationMs max_delay_ms)
      : max_delay_ms_(max_delay_ms) {}

  /// \brief Accounts for an observed event time.
  void Observe(Timestamp event_time) {
    max_seen_ = std::max(max_seen_, event_time);
  }

  /// \brief Current watermark: all events ≤ this time are considered
  /// complete. kMinTimestamp before any observation.
  Timestamp Current() const {
    if (max_seen_ == kInvalidTimestamp) return kMinTimestamp;
    return max_seen_ - max_delay_ms_;
  }

  /// \brief True iff an event at `event_time` would be late now.
  bool IsLate(Timestamp event_time) const {
    return event_time <= Current() && max_seen_ != kInvalidTimestamp;
  }

  DurationMs max_delay() const { return max_delay_ms_; }

 private:
  DurationMs max_delay_ms_;
  Timestamp max_seen_ = kInvalidTimestamp;
};

}  // namespace marlin

#endif  // MARLIN_STREAM_WATERMARK_H_
