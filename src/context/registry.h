#ifndef MARLIN_CONTEXT_REGISTRY_H_
#define MARLIN_CONTEXT_REGISTRY_H_

/// \file registry.h
/// \brief Vessel registries and quality-aware conflict resolution.
///
/// Paper §4: "ship information from the MarineTraffic database may conflict
/// with that from Lloyd's: the length may differ slightly, or the flag may
/// be different due to a lack of update in one source. In this regard,
/// additional knowledge on sources' quality may help solving the issue."

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "uncertainty/source_quality.h"

namespace marlin {

/// \brief One registry record for a vessel.
struct RegistryRecord {
  uint32_t mmsi = 0;
  uint32_t imo = 0;
  std::string name;
  std::string flag;       ///< ISO country code
  std::string call_sign;
  int length_m = 0;
  int beam_m = 0;
  int ship_type = 0;      ///< ITU 2-digit code
};

/// \brief A named registry source (e.g. "marinetraffic", "lloyds").
class VesselRegistry {
 public:
  explicit VesselRegistry(std::string source_name)
      : source_(std::move(source_name)) {}

  void Upsert(const RegistryRecord& record) { records_[record.mmsi] = record; }

  std::optional<RegistryRecord> Lookup(uint32_t mmsi) const {
    auto it = records_.find(mmsi);
    if (it == records_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& source() const { return source_; }
  size_t size() const { return records_.size(); }
  const std::map<uint32_t, RegistryRecord>& records() const { return records_; }

 private:
  std::string source_;
  std::map<uint32_t, RegistryRecord> records_;
};

/// \brief Result of resolving one vessel across registries.
struct ResolvedRecord {
  RegistryRecord record;
  /// Fields on which the sources disagreed ("flag", "length_m", ...).
  std::vector<std::string> conflicting_fields;
  /// Which source won each conflicting field.
  std::map<std::string, std::string> chosen_source;
};

/// \brief Resolves conflicts between two registries using per-source
/// reliability: for each conflicting field the more reliable source wins;
/// agreements reinforce both sources in the quality model.
class RegistryResolver {
 public:
  explicit RegistryResolver(SourceQualityModel* quality) : quality_(quality) {}

  /// \brief Resolves one vessel. Missing-in-one-source records pass through
  /// without conflict.
  std::optional<ResolvedRecord> Resolve(const VesselRegistry& a,
                                        const VesselRegistry& b,
                                        uint32_t mmsi) const;

 private:
  SourceQualityModel* quality_;
};

}  // namespace marlin

#endif  // MARLIN_CONTEXT_REGISTRY_H_
