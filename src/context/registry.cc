#include "context/registry.h"

namespace marlin {

std::optional<ResolvedRecord> RegistryResolver::Resolve(
    const VesselRegistry& a, const VesselRegistry& b, uint32_t mmsi) const {
  const auto ra = a.Lookup(mmsi);
  const auto rb = b.Lookup(mmsi);
  if (!ra.has_value() && !rb.has_value()) return std::nullopt;
  if (!rb.has_value()) return ResolvedRecord{*ra, {}, {}};
  if (!ra.has_value()) return ResolvedRecord{*rb, {}, {}};

  ResolvedRecord out;
  out.record = *ra;
  const double rel_a = quality_->Reliability(a.source());
  const double rel_b = quality_->Reliability(b.source());
  const bool prefer_a = rel_a >= rel_b;

  auto resolve_field = [&](const std::string& field, auto& dst,
                           const auto& va, const auto& vb) {
    if (va == vb) {
      dst = va;
      return;
    }
    out.conflicting_fields.push_back(field);
    if (prefer_a) {
      dst = va;
      out.chosen_source[field] = a.source();
    } else {
      dst = vb;
      out.chosen_source[field] = b.source();
    }
  };

  resolve_field("imo", out.record.imo, ra->imo, rb->imo);
  resolve_field("name", out.record.name, ra->name, rb->name);
  resolve_field("flag", out.record.flag, ra->flag, rb->flag);
  resolve_field("call_sign", out.record.call_sign, ra->call_sign,
                rb->call_sign);
  resolve_field("length_m", out.record.length_m, ra->length_m, rb->length_m);
  resolve_field("beam_m", out.record.beam_m, ra->beam_m, rb->beam_m);
  resolve_field("ship_type", out.record.ship_type, ra->ship_type,
                rb->ship_type);
  return out;
}

}  // namespace marlin
