#ifndef MARLIN_CONTEXT_WEATHER_H_
#define MARLIN_CONTEXT_WEATHER_H_

/// \file weather.h
/// \brief Procedural weather provider — the coarse-resolution environmental
/// feed of §2.5 ("meteorologic data have spatial resolution of few
/// kilometres … provided with hourly … means").
///
/// The field is deterministic value noise over a (lat, lon, hour) lattice:
/// smooth in space and time, reproducible from a seed. Its *resolution
/// mismatch* with AIS (kilometres & hours vs. metres & seconds) is the
/// property experiments and enrichment care about, not meteorological
/// realism.

#include "common/time.h"
#include "geo/point.h"

namespace marlin {

/// \brief Weather sample at a position and time.
struct WeatherSample {
  double wind_speed_mps = 0.0;
  double wind_dir_deg = 0.0;    ///< direction the wind blows FROM
  double wave_height_m = 0.0;
  double current_speed_mps = 0.0;
  double current_dir_deg = 0.0;
};

/// \brief Deterministic gridded weather source.
class WeatherProvider {
 public:
  struct Options {
    double grid_deg = 0.5;          ///< spatial lattice pitch (≈ 55 km N-S)
    DurationMs time_step_ms = kMillisPerHour;  ///< temporal lattice pitch
    double max_wind_mps = 22.0;
    double max_wave_m = 6.0;
    double max_current_mps = 1.5;
  };

  explicit WeatherProvider(uint64_t seed) : WeatherProvider(seed, Options()) {}
  WeatherProvider(uint64_t seed, const Options& options)
      : seed_(seed), options_(options) {}
  virtual ~WeatherProvider() = default;

  /// \brief Trilinear-interpolated sample at (p, t). Virtual so tests and
  /// benches can model slow upstream sources (the enrichment side-stage's
  /// backpressure scenarios).
  virtual WeatherSample At(const GeoPoint& p, Timestamp t) const;

  /// \brief Native resolution of the source (for enrichment metadata).
  double grid_deg() const { return options_.grid_deg; }
  DurationMs time_step_ms() const { return options_.time_step_ms; }

 private:
  /// Hash-derived uniform [0,1) at an integer lattice point, per channel.
  double LatticeValue(int64_t ix, int64_t iy, int64_t it, int channel) const;
  /// Smooth interpolation of a channel at continuous coordinates.
  double Field(double x, double y, double ts, int channel) const;

  uint64_t seed_;
  Options options_;
};

}  // namespace marlin

#endif  // MARLIN_CONTEXT_WEATHER_H_
