#include "context/zones.h"

namespace marlin {

const char* ZoneTypeName(ZoneType t) {
  switch (t) {
    case ZoneType::kPort:
      return "port";
    case ZoneType::kAnchorage:
      return "anchorage";
    case ZoneType::kEez:
      return "eez";
    case ZoneType::kProtectedArea:
      return "protected-area";
    case ZoneType::kShippingLane:
      return "shipping-lane";
    case ZoneType::kFishingGround:
      return "fishing-ground";
    case ZoneType::kRestricted:
      return "restricted";
  }
  return "unknown";
}

uint32_t ZoneDatabase::Add(GeoZone zone) {
  zone.id = static_cast<uint32_t>(zones_.size());
  zones_.push_back(std::move(zone));
  index_dirty_ = true;
  return zones_.back().id;
}

void ZoneDatabase::Build() const {
  if (!index_dirty_) return;
  std::vector<RTreeEntry> entries;
  entries.reserve(zones_.size());
  for (const GeoZone& z : zones_) {
    entries.push_back(RTreeEntry{z.polygon.bounds(), z.id});
  }
  index_ = RTree(std::move(entries));
  index_dirty_ = false;
}

void ZoneDatabase::ZonesAtInto(const GeoPoint& p,
                               std::vector<const GeoZone*>* out) const {
  Build();
  out->clear();
  const BoundingBox probe(p.lat, p.lon, p.lat, p.lon);
  index_.Visit(probe, [&](const RTreeEntry& e) {
    const GeoZone& z = zones_[e.id];
    if (z.polygon.Contains(p)) out->push_back(&z);
    return true;
  });
}

std::vector<const GeoZone*> ZoneDatabase::ZonesAt(const GeoPoint& p) const {
  std::vector<const GeoZone*> out;
  ZonesAtInto(p, &out);
  return out;
}

std::vector<const GeoZone*> ZoneDatabase::ZonesAt(const GeoPoint& p,
                                                  ZoneType type) const {
  std::vector<const GeoZone*> out;
  for (const GeoZone* z : ZonesAt(p)) {
    if (z->type == type) out.push_back(z);
  }
  return out;
}

std::vector<const GeoZone*> ZoneDatabase::ZonesIn(const BoundingBox& box) const {
  Build();
  std::vector<const GeoZone*> out;
  index_.Visit(box, [&](const RTreeEntry& e) {
    out.push_back(&zones_[e.id]);
    return true;
  });
  return out;
}

const GeoZone* ZoneDatabase::Find(uint32_t id) const {
  if (id >= zones_.size()) return nullptr;
  return &zones_[id];
}

}  // namespace marlin
