#ifndef MARLIN_CONTEXT_ZONES_H_
#define MARLIN_CONTEXT_ZONES_H_

/// \file zones.h
/// \brief Geographic zone database: the institutional context (navigation
/// rules, protected areas, EEZs) the paper lists among the sources an MSA
/// must correlate (§2, §2.5).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/geometry.h"
#include "storage/rtree.h"

namespace marlin {

/// \brief Kinds of maritime zones.
enum class ZoneType : uint8_t {
  kPort = 0,
  kAnchorage,
  kEez,
  kProtectedArea,
  kShippingLane,
  kFishingGround,
  kRestricted,
};

const char* ZoneTypeName(ZoneType t);

/// \brief One named zone with optional regulation attributes.
struct GeoZone {
  uint32_t id = 0;
  std::string name;
  ZoneType type = ZoneType::kPort;
  Polygon polygon;
  double speed_limit_knots = 0.0;  ///< 0 = no limit
  bool fishing_prohibited = false;

  /// \brief IRI used when the zone appears in the RDF graph.
  std::string Iri() const { return "dtc:zone/" + std::to_string(id); }
};

/// \brief Spatially indexed zone collection.
class ZoneDatabase {
 public:
  /// \brief Adds a zone; returns its assigned id.
  uint32_t Add(GeoZone zone);

  /// \brief Finalizes the spatial index (cheap; called lazily by queries).
  void Build() const;

  /// \brief All zones containing `p`.
  std::vector<const GeoZone*> ZonesAt(const GeoPoint& p) const;

  /// \brief Allocation-free variant for per-message callers: clears and
  /// refills `*out` with the zones containing `p` (same order as
  /// `ZonesAt`), retaining its capacity — the same scratch contract as
  /// `GridIndex::QueryRadiusInto`.
  void ZonesAtInto(const GeoPoint& p,
                   std::vector<const GeoZone*>* out) const;

  /// \brief Zones of a given type containing `p`.
  std::vector<const GeoZone*> ZonesAt(const GeoPoint& p, ZoneType type) const;

  /// \brief Zones whose bounds intersect `box`.
  std::vector<const GeoZone*> ZonesIn(const BoundingBox& box) const;

  /// \brief Zone by id; nullptr when unknown.
  const GeoZone* Find(uint32_t id) const;

  size_t size() const { return zones_.size(); }
  const std::vector<GeoZone>& zones() const { return zones_; }

 private:
  std::vector<GeoZone> zones_;
  mutable RTree index_;
  mutable bool index_dirty_ = true;
};

}  // namespace marlin

#endif  // MARLIN_CONTEXT_ZONES_H_
