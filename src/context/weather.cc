#include "context/weather.h"

#include <cmath>

namespace marlin {

namespace {

/// SplitMix64-style avalanche of a composite lattice key.
uint64_t HashKey(uint64_t seed, int64_t ix, int64_t iy, int64_t it,
                 int channel) {
  uint64_t x = seed;
  x ^= static_cast<uint64_t>(ix) * 0x9E3779B97F4A7C15ull;
  x ^= static_cast<uint64_t>(iy) * 0xC2B2AE3D27D4EB4Full;
  x ^= static_cast<uint64_t>(it) * 0x165667B19E3779F9ull;
  x ^= static_cast<uint64_t>(channel) * 0x27D4EB2F165667C5ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double SmoothStep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

double WeatherProvider::LatticeValue(int64_t ix, int64_t iy, int64_t it,
                                     int channel) const {
  const uint64_t h = HashKey(seed_, ix, iy, it, channel);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double WeatherProvider::Field(double x, double y, double ts,
                              int channel) const {
  const int64_t ix = static_cast<int64_t>(std::floor(x));
  const int64_t iy = static_cast<int64_t>(std::floor(y));
  const int64_t it = static_cast<int64_t>(std::floor(ts));
  const double fx = SmoothStep(x - std::floor(x));
  const double fy = SmoothStep(y - std::floor(y));
  const double ft = SmoothStep(ts - std::floor(ts));

  double acc = 0.0;
  for (int dt = 0; dt <= 1; ++dt) {
    const double wt = dt == 0 ? 1.0 - ft : ft;
    for (int dy = 0; dy <= 1; ++dy) {
      const double wy = dy == 0 ? 1.0 - fy : fy;
      for (int dx = 0; dx <= 1; ++dx) {
        const double wx = dx == 0 ? 1.0 - fx : fx;
        acc += wt * wy * wx *
               LatticeValue(ix + dx, iy + dy, it + dt, channel);
      }
    }
  }
  return acc;
}

WeatherSample WeatherProvider::At(const GeoPoint& p, Timestamp t) const {
  const double x = (p.lon + 180.0) / options_.grid_deg;
  const double y = (p.lat + 90.0) / options_.grid_deg;
  const double ts =
      static_cast<double>(t) / static_cast<double>(options_.time_step_ms);

  WeatherSample s;
  s.wind_speed_mps = options_.max_wind_mps * Field(x, y, ts, 0);
  s.wind_dir_deg = 360.0 * Field(x, y, ts, 1);
  // Waves follow the wind with a smaller independent component.
  s.wave_height_m = options_.max_wave_m *
                    (0.7 * s.wind_speed_mps / options_.max_wind_mps +
                     0.3 * Field(x, y, ts, 2));
  s.current_speed_mps = options_.max_current_mps * Field(x, y, ts, 3);
  s.current_dir_deg = 360.0 * Field(x, y, ts, 4);
  return s;
}

}  // namespace marlin
