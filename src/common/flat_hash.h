#ifndef MARLIN_COMMON_FLAT_HASH_H_
#define MARLIN_COMMON_FLAT_HASH_H_

/// \file flat_hash.h
/// \brief Open-addressing flat hash containers for hot-path state.
///
/// The streaming engines key per-vessel and per-pair state by small integer
/// ids at message rate. Node-based `std::map`/`std::unordered_map` pay one
/// heap allocation per entry plus pointer-chasing per lookup; this map keeps
/// keys and values in two flat arrays with linear probing and backward-shift
/// deletion, so steady-state lookups/inserts touch contiguous memory and
/// allocate only on growth.
///
/// Deliberate design constraints (checked by the engines that use it):
///  * Keys are trivially copyable (integral ids, packed pair keys).
///  * Values are default-constructible and movable; a freshly inserted slot
///    is reset to `V{}`.
///  * Iteration order is the probe-slot order — **unordered and dependent on
///    insertion history**. Callers whose *output* depends on order (event
///    emission, state export) must collect keys and sort explicitly; see
///    `PairEventEngine::ExportVessels` for the pattern.
///  * `Clear()` keeps the allocated capacity (the pooling contract used by
///    the pair-stage replica pool).

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/cache_line.h"

namespace marlin {

/// \brief splitmix64 finalizer: the avalanche mix used everywhere the code
/// needs a cheap, high-quality integer hash (shard routing uses the same
/// family, stream/shard_router.h).
inline uint64_t FlatHashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// \brief Open-addressing hash map, linear probing, backward-shift erase.
///
/// The control block (three vector headers + size) is line-aligned and
/// fills exactly one 64-byte line on LP64: per-shard tables that sit next
/// to each other in engine state never share a line, so one shard's
/// insert (which rewrites `size_` and possibly the vector headers) cannot
/// invalidate the line a neighbouring shard's lookups are probing through.
template <typename K, typename V>
class alignas(kCacheLineBytes) FlatHashMap {
 public:
  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// \brief Removes every entry; capacity (and therefore steady-state
  /// allocation-freedom) is retained.
  void Clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), uint8_t{0});
    size_ = 0;
  }

  /// \brief Pre-sizes the table for `n` entries without rehashing later.
  void Reserve(size_t n) {
    size_t cap = 8;
    while (cap * 3 < n * 4 + 4) cap <<= 1;  // keep load factor < 0.75
    if (cap > used_.size()) Rehash(cap);
  }

  /// \brief Pointer to the value for `key`, or nullptr.
  V* Find(const K& key) {
    if (used_.empty()) return nullptr;
    size_t i = FindSlot(key);
    return i == kNotFound ? nullptr : &vals_[i];
  }
  const V* Find(const K& key) const {
    if (used_.empty()) return nullptr;
    size_t i = FindSlot(key);
    return i == kNotFound ? nullptr : &vals_[i];
  }

  /// \brief Inserts `key` when absent, preparing the slot's value with
  /// `reset` (which receives whatever stale value the recycled slot holds —
  /// a container caller can `clear()` it to keep its capacity, the pooling
  /// contract). Returns {value pointer, inserted}. The pointer is
  /// invalidated by the next mutating call (growth or backward-shift may
  /// move slots).
  template <typename ResetFn>
  std::pair<V*, bool> TryEmplaceWith(const K& key, ResetFn&& reset) {
    // Probe before any growth: a lookup hit must never rehash (callers may
    // hold value pointers across hit-only accesses).
    if (!used_.empty()) {
      const size_t mask = used_.size() - 1;
      size_t i = HomeOf(key);
      while (used_[i]) {
        if (keys_[i] == key) return {&vals_[i], false};
        i = (i + 1) & mask;
      }
      if ((size_ + 1) * 4 <= used_.size() * 3) {
        return {InsertAt(i, key, reset), true};
      }
    }
    Rehash(used_.empty() ? 8 : used_.size() * 2);
    const size_t mask = used_.size() - 1;
    size_t i = HomeOf(key);
    while (used_[i]) i = (i + 1) & mask;
    return {InsertAt(i, key, reset), true};
  }

  /// \brief Inserts `key` with a default-fresh value when absent.
  std::pair<V*, bool> TryEmplace(const K& key) {
    return TryEmplaceWith(key, [](V& value) { value = V{}; });
  }

  /// \brief `std::map`-style access: default-constructs missing entries.
  V& operator[](const K& key) { return *TryEmplace(key).first; }

  /// \brief Erases `key`; false when absent. Backward-shift deletion keeps
  /// probe chains intact without tombstones.
  bool Erase(const K& key) {
    if (used_.empty()) return false;
    size_t i = FindSlot(key);
    if (i == kNotFound) return false;
    const size_t mask = used_.size() - 1;
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (!used_[j]) break;
      const size_t home = HomeOf(keys_[j]);
      // Element j may shift into the hole only if its home does not lie
      // cyclically inside (hole, j] — otherwise the move would break its
      // own probe chain.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        keys_[hole] = keys_[j];
        vals_[hole] = std::move(vals_[j]);
        hole = j;
      }
    }
    used_[hole] = 0;
    --size_;
    return true;
  }

  /// \brief Applies `fn(key, value)` to every entry, in slot order (see the
  /// header comment: NOT a deterministic order for output purposes).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) fn(keys_[i], vals_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) fn(keys_[i], vals_[i]);
    }
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  size_t HomeOf(const K& key) const {
    return static_cast<size_t>(FlatHashMix(static_cast<uint64_t>(key))) &
           (used_.size() - 1);
  }

  size_t FindSlot(const K& key) const {
    const size_t mask = used_.size() - 1;
    size_t i = HomeOf(key);
    while (used_[i]) {
      if (keys_[i] == key) return i;
      i = (i + 1) & mask;
    }
    return kNotFound;
  }

  template <typename ResetFn>
  V* InsertAt(size_t i, const K& key, ResetFn&& reset) {
    used_[i] = 1;
    keys_[i] = key;
    reset(vals_[i]);
    ++size_;
    return &vals_[i];
  }

  void Rehash(size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0);
    std::vector<uint8_t> old_used = std::move(used_);
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    used_.assign(new_cap, 0);
    keys_.resize(new_cap);
    vals_.resize(new_cap);
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_used.size(); ++i) {
      if (!old_used[i]) continue;
      size_t j = HomeOf(old_keys[i]);
      while (used_[j]) j = (j + 1) & mask;
      used_[j] = 1;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
    }
  }

  // Hottest first: every lookup reads the `used_` header and `size_`
  // drives the load-factor check — one line covers the whole block.
  std::vector<uint8_t> used_;
  size_t size_ = 0;
  std::vector<K> keys_;
  std::vector<V> vals_;
};
static_assert(sizeof(FlatHashMap<uint64_t, uint64_t>) <= 2 * kCacheLineBytes,
              "FlatHashMap control block should stay within two lines");

/// \brief Flat hash set over the same table machinery.
template <typename K>
class FlatHashSet {
 public:
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.Clear(); }
  void Reserve(size_t n) { map_.Reserve(n); }

  /// \brief True when `key` was newly inserted.
  bool Insert(const K& key) { return map_.TryEmplace(key).second; }
  bool Contains(const K& key) const { return map_.Find(key) != nullptr; }
  bool Erase(const K& key) { return map_.Erase(key); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](const K& key, const Empty&) { fn(key); });
  }

 private:
  struct Empty {};
  FlatHashMap<K, Empty> map_;
};

}  // namespace marlin

#endif  // MARLIN_COMMON_FLAT_HASH_H_
