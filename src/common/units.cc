#include "common/units.h"

#include <cmath>

namespace marlin {

double NormalizeDegrees(double deg) {
  double d = std::fmod(deg, 360.0);
  if (d < 0) d += 360.0;
  return d;
}

double NormalizeLongitude(double lon) {
  double d = std::fmod(lon + 180.0, 360.0);
  if (d < 0) d += 360.0;
  return d - 180.0;
}

double AngleDifference(double a, double b) {
  double d = std::fmod(a - b, 360.0);
  if (d >= 180.0) d -= 360.0;
  if (d < -180.0) d += 360.0;
  return d;
}

}  // namespace marlin
