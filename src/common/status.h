#ifndef MARLIN_COMMON_STATUS_H_
#define MARLIN_COMMON_STATUS_H_

/// \file status.h
/// \brief Arrow/RocksDB-style error propagation without exceptions.
///
/// All fallible operations in MARLIN return either a `Status` (no payload) or
/// a `Result<T>` (payload or error). Library code never throws across API
/// boundaries.

#include <memory>
#include <string>
#include <utility>

namespace marlin {

/// \brief Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kIOError = 7,
  kCapacityExceeded = 8,
  kTimedOut = 9,
  kCancelled = 10,
  kUnknown = 11,
};

/// \brief Human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus message.
///
/// The OK state is represented by a null internal pointer so that returning
/// success is free of allocation, following the RocksDB/Arrow pattern.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // nullptr means OK
};

}  // namespace marlin

/// \brief Propagates a non-OK Status to the caller.
#define MARLIN_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::marlin::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// \brief Evaluates a Result<T> expression and either assigns its value to
/// `lhs` or propagates the error status.
#define MARLIN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie();

#define MARLIN_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define MARLIN_ASSIGN_OR_RETURN_CONCAT(x, y) MARLIN_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define MARLIN_ASSIGN_OR_RETURN(lhs, rexpr) \
  MARLIN_ASSIGN_OR_RETURN_IMPL(             \
      MARLIN_ASSIGN_OR_RETURN_CONCAT(_marlin_result_, __LINE__), lhs, rexpr)

#endif  // MARLIN_COMMON_STATUS_H_
