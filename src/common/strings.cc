#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <set>

namespace marlin {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseHexByte(std::string_view s, unsigned int* out) {
  size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  unsigned int value = 0;
  int digits = 0;
  for (; i < s.size() && digits < 2; ++i, ++digits) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    unsigned int nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else {
      break;
    }
    value = value * 16 + nibble;
  }
  if (digits == 0) return false;
  *out = value;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not available in all libstdc++ configs;
  // strtod on a bounded copy is portable and equally strict here.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  const double dist = static_cast<double>(prev[m]);
  const double denom = static_cast<double>(std::max(n, m));
  return 1.0 - dist / denom;
}

double TokenJaccard(std::string_view a, std::string_view b) {
  auto tokens = [](std::string_view s) {
    std::set<std::string> t;
    std::string cur;
    for (char c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!cur.empty()) t.insert(ToUpper(cur));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) t.insert(ToUpper(cur));
    return t;
  };
  const auto ta = tokens(a);
  const auto tb = tokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  const size_t uni = ta.size() + tb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace marlin
