#ifndef MARLIN_COMMON_FAULT_H_
#define MARLIN_COMMON_FAULT_H_

/// \file fault.h
/// \brief Deterministic fault injection: named sites, seeded plans.
///
/// Production code marks the places where the outside world can fail —
/// a WAL append, a run-file rename, a worker's per-message step — with a
/// *fault point*:
///
///     MARLIN_FAULT_POINT("archive.close_epoch");             // may throw
///     if (auto a = FaultInjector::HitIo("lsm.wal.append")) …  // IO result
///
/// With no plan armed a site costs one relaxed atomic load (the bench gate
/// `BM_DecodeMicro` / `BM_QueueHop` proves the hooks are free). Tests arm a
/// `FaultPlan` — a set of fire-on-Nth-hit rules — and the Nth execution of
/// the named site throws `FaultInjectedError`, reports an IO error / short
/// write to its caller, or sleeps. Hit counting is global and
/// mutex-serialized, so a plan fires exactly once (or on every matching
/// hit with `repeat`) no matter how many threads race through the site;
/// under a fixed thread interleaving the whole failure schedule is a pure
/// function of the plan, which is what lets the torture suites in
/// tests/fault_test.cc and tests/robustness_test.cc sweep "crash at every
/// site" deterministically.
///
/// The injector is process-global by design: the sites live deep inside
/// `LsmStore` / `ShardArchive` / the pipeline worker loops and threading a
/// handle through every constructor would bloat each hot-path signature
/// for a test-only facility. Tests arm/disarm through `ScopedFaultPlan`
/// so a failing assertion can never leak an armed plan into the next test.

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace marlin {

/// \brief What a fault site does when its rule fires.
enum class FaultAction : uint8_t {
  kThrow,       ///< throw FaultInjectedError (worker-crash simulation)
  kIoError,     ///< IO sites: report failure, write nothing
  kShortWrite,  ///< IO sites: leave a torn partial write, then report failure
  kDelay,       ///< sleep delay_ms (slow-IO / stall simulation)
};

/// \brief One rule: the `hit`-th execution of `site` performs `action`
/// (and, with `repeat`, every execution from then on).
struct FaultRule {
  std::string site;
  uint64_t hit = 1;  ///< 1-based hit index that triggers the rule
  bool repeat = false;
  FaultAction action = FaultAction::kThrow;
  uint32_t delay_ms = 0;  ///< kDelay only
};

/// \brief A set of rules, built fluently: `FaultPlan().Fail("lsm.wal.append",
/// 3, FaultAction::kIoError)`.
class FaultPlan {
 public:
  FaultPlan& Fail(std::string site, uint64_t hit = 1,
                  FaultAction action = FaultAction::kThrow) {
    rules_.push_back(FaultRule{std::move(site), hit, false, action, 0});
    return *this;
  }

  FaultPlan& FailRepeatedly(std::string site, uint64_t first_hit = 1,
                            FaultAction action = FaultAction::kThrow) {
    rules_.push_back(FaultRule{std::move(site), first_hit, true, action, 0});
    return *this;
  }

  FaultPlan& Delay(std::string site, uint64_t hit, uint32_t delay_ms) {
    rules_.push_back(
        FaultRule{std::move(site), hit, false, FaultAction::kDelay, delay_ms});
    return *this;
  }

  /// \brief Seeded single-fault plan: picks one of `sites` and a hit index
  /// in [1, max_hit] deterministically from `seed` (splitmix64). Sweeping
  /// seeds sweeps (site, timing) pairs reproducibly.
  static FaultPlan Seeded(uint64_t seed,
                          const std::vector<std::string>& sites,
                          FaultAction action, uint64_t max_hit);

  const std::vector<FaultRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

 private:
  std::vector<FaultRule> rules_;
};

/// \brief Thrown by `kThrow` rules; carries the site so supervisors can
/// attribute the failure (`WorkerFailure{site, count}`).
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(std::string site)
      : std::runtime_error("injected fault: " + site),
        site_(std::move(site)) {}

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// \brief The process-global injector. All methods are thread-safe.
class FaultInjector {
 public:
  /// \brief Fast-path guard: false (one relaxed load) when no plan is armed.
  static bool armed() { return armed_.load(std::memory_order_relaxed); }

  /// \brief Installs `plan` and resets all hit counters.
  static void Arm(FaultPlan plan);

  /// \brief Removes the plan; sites return to no-ops.
  static void Disarm();

  /// \brief Executes the site for non-IO code: counts the hit, then throws
  /// `FaultInjectedError` or sleeps if a rule fires. kIoError/kShortWrite
  /// rules on a non-IO site also throw — the closest thing to a crash the
  /// site can express. Call only when `armed()` (the macro does).
  static void Hit(std::string_view site);

  /// \brief Executes the site for IO code: counts the hit and returns the
  /// firing rule's action — kIoError / kShortWrite for the caller to turn
  /// into a Status (and, for short writes, a deliberately torn write).
  /// kThrow rules throw; kDelay sleeps and returns nullopt like a miss.
  static std::optional<FaultAction> HitIo(std::string_view site);

  /// \brief How often `site` has executed since the last Arm.
  static uint64_t HitCount(std::string_view site);

  /// \brief Total rules fired since the last Arm.
  static uint64_t FiredCount();

 private:
  static std::atomic<bool> armed_;
};

/// \brief `MARLIN_FAULT_POINT("name")` — a throw/delay site. Zero-cost when
/// nothing is armed.
#define MARLIN_FAULT_POINT(site)                        \
  do {                                                  \
    if (::marlin::FaultInjector::armed()) {             \
      ::marlin::FaultInjector::Hit(site);               \
    }                                                   \
  } while (false)

/// \brief RAII arm/disarm, so a throwing test body can't leak a plan.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { FaultInjector::Arm(std::move(plan)); }
  ~ScopedFaultPlan() { FaultInjector::Disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace marlin

#endif  // MARLIN_COMMON_FAULT_H_
