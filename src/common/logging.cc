#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace marlin {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Logging::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logging::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logging::Emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace marlin
