#ifndef MARLIN_COMMON_RESULT_H_
#define MARLIN_COMMON_RESULT_H_

/// \file result.h
/// \brief `Result<T>`: value-or-Status, modelled on arrow::Result.

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace marlin {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// Typical use:
/// \code
///   Result<Trajectory> r = store.Get(mmsi);
///   if (!r.ok()) return r.status();
///   UseTrajectory(*r);
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Aborts in debug builds if `st` is OK,
  /// because an OK Result must carry a value.
  Result(Status st) : repr_(std::move(st)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// \brief True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Borrow the value. Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// \brief Move the value out. Precondition: ok().
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value, or `alternative` if this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace marlin

#endif  // MARLIN_COMMON_RESULT_H_
