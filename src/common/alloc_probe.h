#ifndef MARLIN_COMMON_ALLOC_PROBE_H_
#define MARLIN_COMMON_ALLOC_PROBE_H_

/// \file alloc_probe.h
/// \brief Opt-in heap-allocation counter for allocation-freedom proofs.
///
/// The ingest hot path claims steady-state zero allocations per line; a
/// claim like that bit-rots silently unless a counter watches it. A binary
/// that wants the counter places `MARLIN_INSTALL_ALLOC_PROBE()` at namespace
/// scope in exactly one translation unit — that replaces the global
/// `operator new`/`delete` with malloc/free wrappers that bump a
/// thread-local counter — and brackets the measured region with
/// `AllocProbe::ThreadCount()` reads. Binaries that never install the probe
/// are completely unaffected (the header alone overrides nothing), which is
/// why this is a macro and not a library: linking the replacement into
/// `marlin_common` would silently re-route allocation for every target.
///
/// The counter is thread-local: a measured single-threaded loop is not
/// polluted by background threads (benchmark harness, enrichment workers).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace marlin {

struct AllocProbe {
  /// \brief Allocations performed by the *calling thread* since start,
  /// counted only in binaries that install the probe (otherwise frozen).
  static uint64_t& ThreadCount() {
    thread_local uint64_t count = 0;
    return count;
  }
};

}  // namespace marlin

#define MARLIN_INSTALL_ALLOC_PROBE()                                         \
  void* operator new(std::size_t size) {                                     \
    ++::marlin::AllocProbe::ThreadCount();                                   \
    if (void* p = std::malloc(size ? size : 1)) return p;                    \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new[](std::size_t size) {                                   \
    ++::marlin::AllocProbe::ThreadCount();                                   \
    if (void* p = std::malloc(size ? size : 1)) return p;                    \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new(std::size_t size, std::align_val_t align) {             \
    ++::marlin::AllocProbe::ThreadCount();                                   \
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),        \
                                     size ? size : 1)) {                     \
      return p;                                                              \
    }                                                                        \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new[](std::size_t size, std::align_val_t align) {           \
    ++::marlin::AllocProbe::ThreadCount();                                   \
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),        \
                                     size ? size : 1)) {                     \
      return p;                                                              \
    }                                                                        \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void operator delete(void* p) noexcept { std::free(p); }                   \
  void operator delete[](void* p) noexcept { std::free(p); }                 \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }      \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }    \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); } \
  void operator delete[](void* p, std::align_val_t) noexcept {               \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {    \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {  \
    std::free(p);                                                            \
  }

#endif  // MARLIN_COMMON_ALLOC_PROBE_H_
