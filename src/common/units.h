#ifndef MARLIN_COMMON_UNITS_H_
#define MARLIN_COMMON_UNITS_H_

/// \file units.h
/// \brief Nautical unit conversions used throughout the library.
///
/// Internal convention: positions in decimal degrees (WGS-84), distances in
/// metres, speeds in metres/second, angles in degrees true (0 = North,
/// clockwise). AIS wire formats use knots and tenths — conversions live here.

namespace marlin {

inline constexpr double kPi = 3.14159265358979323846;

/// Metres per nautical mile (exact by definition).
inline constexpr double kMetresPerNauticalMile = 1852.0;

/// Mean Earth radius in metres (IUGG mean radius R1, adequate for AIS-scale
/// geodesy; see DESIGN.md §5).
inline constexpr double kEarthRadiusMetres = 6371008.8;

/// \brief Degrees → radians.
constexpr double DegToRad(double deg) { return deg * kPi / 180.0; }
/// \brief Radians → degrees.
constexpr double RadToDeg(double rad) { return rad * 180.0 / kPi; }

/// \brief Knots → metres per second.
constexpr double KnotsToMps(double knots) {
  return knots * kMetresPerNauticalMile / 3600.0;
}
/// \brief Metres per second → knots.
constexpr double MpsToKnots(double mps) {
  return mps * 3600.0 / kMetresPerNauticalMile;
}

/// \brief Nautical miles → metres.
constexpr double NmToMetres(double nm) { return nm * kMetresPerNauticalMile; }
/// \brief Metres → nautical miles.
constexpr double MetresToNm(double m) { return m / kMetresPerNauticalMile; }

/// \brief Normalizes an angle in degrees to [0, 360).
double NormalizeDegrees(double deg);

/// \brief Normalizes a longitude to [-180, 180).
double NormalizeLongitude(double lon);

/// \brief Smallest signed angular difference a−b in degrees, in [-180, 180).
double AngleDifference(double a, double b);

}  // namespace marlin

#endif  // MARLIN_COMMON_UNITS_H_
