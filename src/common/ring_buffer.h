#ifndef MARLIN_COMMON_RING_BUFFER_H_
#define MARLIN_COMMON_RING_BUFFER_H_

/// \file ring_buffer.h
/// \brief Fixed-layout FIFO window for per-vessel sliding state.
///
/// The event rules keep short sliding windows per vessel (loiter window,
/// spoof-jump history). `std::deque` allocates and frees a chunk every ~64
/// elements as the window slides; this ring keeps one power-of-two buffer
/// that only grows, so a steady-state slide performs zero allocations.

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/cache_line.h"

namespace marlin {

/// The control block (vector header + head + size) is line-aligned: the
/// per-vessel windows live as values inside per-shard flat tables, and the
/// alignment keeps one vessel's slide (head/size rewrites) from dirtying
/// the line a neighbouring slot's reads go through.
template <typename T>
class alignas(kCacheLineBytes) RingBuffer {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// \brief Element `i` positions behind the front (0 = oldest).
  T& operator[](size_t i) {
    assert(i < size_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == buf_.size()) Grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = value;
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  /// \brief Drops all elements; capacity is retained.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void Grow() {
    const size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (size_t i = 0; i < size_; ++i) next[i] = (*this)[i];
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_COMMON_RING_BUFFER_H_
