#ifndef MARLIN_COMMON_ASYMMETRIC_BARRIER_H_
#define MARLIN_COMMON_ASYMMETRIC_BARRIER_H_

/// \file asymmetric_barrier.h
/// \brief Asymmetric Dekker barrier: free on the fast (light) side, one
/// syscall on the rare (heavy) side.
///
/// The classic gated-wake-up handshake needs a StoreLoad barrier on both
/// sides: the publisher stores an index then loads the waiter count, the
/// waiter stores its registration then loads the index. Paying that
/// barrier symmetrically puts a seq_cst store (an `xchg`, ~10x a plain
/// store) on every queue operation even though waiters are rare.
///
/// `sys_membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)` makes the exchange
/// asymmetric: the heavy side's call IPIs every core running this process
/// and serializes their store buffers. If the light side's waiter-count
/// load executed before the IPI, its earlier index store is forced visible
/// before the heavy side's re-check; if it executes after, it sees the
/// registration. Either way the lost-wake-up interleaving is impossible,
/// and the light side runs a plain release store + relaxed load.
///
/// When the kernel lacks membarrier (or under TSan, which does not model
/// IPI serialization), `AsymmetricBarrierSupported()` reports false and
/// callers must keep the symmetric seq_cst protocol; `HeavyBarrier()`
/// degrades to a seq_cst fence so slow paths can call it unconditionally.

#include <atomic>

#if defined(__SANITIZE_THREAD__)
#define MARLIN_ASYMMETRIC_BARRIER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MARLIN_ASYMMETRIC_BARRIER_TSAN 1
#endif
#endif

#if defined(__linux__) && !defined(MARLIN_ASYMMETRIC_BARRIER_TSAN)
#include <linux/membarrier.h>
#include <sys/syscall.h>
#include <unistd.h>
#define MARLIN_HAS_MEMBARRIER 1
#endif

namespace marlin {

/// \brief True once the process is registered for expedited membarrier.
/// Probed and registered on first call; the result never changes after.
inline bool AsymmetricBarrierSupported() {
#if defined(MARLIN_HAS_MEMBARRIER)
  static const bool supported = [] {
    const long cmds = syscall(__NR_membarrier, MEMBARRIER_CMD_QUERY, 0, 0);
    if (cmds < 0 || !(cmds & MEMBARRIER_CMD_PRIVATE_EXPEDITED) ||
        !(cmds & MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED)) {
      return false;
    }
    return syscall(__NR_membarrier, MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED,
                   0, 0) == 0;
  }();
  return supported;
#else
  return false;
#endif
}

/// \brief The heavy side of the barrier (call between registering as a
/// waiter and re-checking the condition). ~100ns — slow paths only.
inline void AsymmetricHeavyBarrier() {
#if defined(MARLIN_HAS_MEMBARRIER)
  if (AsymmetricBarrierSupported()) {
    syscall(__NR_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0, 0);
    return;
  }
#endif
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

}  // namespace marlin

#endif  // MARLIN_COMMON_ASYMMETRIC_BARRIER_H_
