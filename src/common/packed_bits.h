#ifndef MARLIN_COMMON_PACKED_BITS_H_
#define MARLIN_COMMON_PACKED_BITS_H_

/// \file packed_bits.h
/// \brief Bit-packed payload words: a 64-bit-word bit buffer plus
/// shift/mask field readers and writers.
///
/// The AIS decode hot path historically represented a de-armored payload as
/// a `std::vector<uint8_t>` holding one *byte per bit* and extracted fields
/// one bit at a time. `PackedBits` stores the same stream packed MSB-first
/// into 64-bit words, so a field of width w costs one or two shift/mask
/// operations instead of w loads — the decode multiplier ROADMAP names
/// after the zero-copy parse. The layer is generic (nothing AIS-specific
/// except the 6-bit string alphabet helpers, which live here so both the
/// packed and the frozen byte-per-bit implementations share one table).
///
/// Conventions, shared with the byte-per-bit `BitWriter`/`BitReader` in
/// `ais/sixbit.h` so the two representations are bit-for-bit convertible:
///  * bit 0 is the MSB of word 0 (big-endian bit order within each word),
///  * unsigned fields are big-endian, signed fields two's-complement,
///  * strings are the AIS 6-bit alphabet, 6 bits per character.
///
/// Invariant: bits at positions >= size_bits() in the last word are zero,
/// which makes `operator==` a plain word compare and keeps armoring of a
/// fill-padded tail deterministic. `Clear()` retains word capacity, so a
/// pooled `PackedBits` scratch keeps the steady state allocation-free.

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace marlin {

/// \brief Maps a 6-bit value (0..63) to the AIS string alphabet character.
inline char SixBitToChar(uint32_t v) {
  v &= 0x3F;
  // 0..31 -> '@','A'..'Z','[','\',']','^','_' ; 32..63 -> ' '..'?'
  return v < 32 ? static_cast<char>(v + 64) : static_cast<char>(v);
}

/// \brief Maps an AIS text character to its 6-bit value; returns 0 ('@') for
/// characters outside the alphabet.
inline uint32_t CharToSixBit(char c) {
  const unsigned char u =
      static_cast<unsigned char>(std::toupper(static_cast<unsigned char>(c)));
  if (u >= 64 && u < 96) return u - 64;  // '@'..'_'
  if (u >= 32 && u < 64) return u;       // ' '..'?'
  return 0;                              // outside alphabet -> '@'
}

/// \brief Append-only bit buffer packed MSB-first into 64-bit words.
class PackedBits {
 public:
  /// \brief Drops all bits but keeps word capacity (pooled-scratch reuse).
  void Clear() {
    words_.clear();
    size_bits_ = 0;
  }

  /// \brief Ensures capacity for `bits` total bits without changing size.
  void ReserveBits(size_t bits) { words_.reserve((bits + 63) / 64); }

  /// \brief Appends the low `width` bits of `value`, MSB first. Width 1..64.
  void AppendBits(uint64_t value, int width) {
    if (width < 64) value &= (uint64_t{1} << width) - 1;
    const int offset = size_bits_ & 63;
    if (offset == 0) {
      // Fresh word: the field starts at the word's MSB.
      words_.push_back(width == 64 ? value : value << (64 - width));
    } else {
      const int space = 64 - offset;
      if (width <= space) {
        words_.back() |= value << (space - width);
      } else {
        const int rem = width - space;  // 1..63
        words_.back() |= value >> rem;
        words_.push_back(value << (64 - rem));
      }
    }
    size_bits_ += width;
  }

  /// \brief Shortens the stream to `new_size_bits`, zeroing the freed tail
  /// (fill-bit truncation). Precondition: 0 <= new_size_bits <= size_bits().
  void Truncate(int new_size_bits) {
    size_bits_ = new_size_bits;
    words_.resize((static_cast<size_t>(new_size_bits) + 63) / 64);
    const int tail = new_size_bits & 63;
    if (tail != 0) {
      words_.back() &= ~uint64_t{0} << (64 - tail);
    }
  }

  int size_bits() const { return size_bits_; }
  bool empty() const { return size_bits_ == 0; }

  /// \brief Bit at `index` (0 = MSB of word 0). Precondition: in range.
  bool GetBit(int index) const {
    return (words_[static_cast<size_t>(index) >> 6] >>
            (63 - (index & 63))) & 1u;
  }

  size_t word_count() const { return words_.size(); }
  uint64_t word(size_t i) const { return words_[i]; }

  friend bool operator==(const PackedBits& a, const PackedBits& b) {
    return a.size_bits_ == b.size_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const PackedBits& a, const PackedBits& b) {
    return !(a == b);
  }

 private:
  std::vector<uint64_t> words_;
  int size_bits_ = 0;
};

/// \brief Field-level writer over an owned `PackedBits`.
class PackedBitWriter {
 public:
  /// \brief Appends the low `width` bits of `value`, MSB first. Width 1..64.
  void WriteUnsigned(uint64_t value, int width) {
    bits_.AppendBits(value, width);
  }

  /// \brief Appends a two's-complement signed field of `width` bits.
  void WriteSigned(int64_t value, int width) {
    bits_.AppendBits(static_cast<uint64_t>(value), width);
  }

  /// \brief Appends a string in the AIS 6-bit alphabet, padded/truncated to
  /// exactly `chars` characters ('@' = 0 pads the tail).
  void WriteString(std::string_view text, int chars) {
    for (int i = 0; i < chars; ++i) {
      if (i < static_cast<int>(text.size())) {
        bits_.AppendBits(CharToSixBit(text[i]), 6);
      } else {
        bits_.AppendBits(0, 6);  // '@' padding
      }
    }
  }

  int size_bits() const { return bits_.size_bits(); }
  const PackedBits& bits() const { return bits_; }
  PackedBits TakeBits() && { return std::move(bits_); }

 private:
  PackedBits bits_;
};

/// \brief Sequential bounds-checked field reader over a `PackedBits`.
///
/// Every read crosses at most one word boundary, so extraction is one or
/// two shift/mask operations regardless of width.
class PackedBitReader {
 public:
  explicit PackedBitReader(const PackedBits& bits) : bits_(&bits) {}

  /// \brief Reads `width` bits as an unsigned value. Width 1..64.
  Result<uint64_t> ReadUnsigned(int width) {
    if (width < 1 || width > 64) {
      return Status::Invalid("bit field width out of range");
    }
    if (remaining() < width) {
      return Status::OutOfRange("bit stream exhausted");
    }
    const size_t word_i = static_cast<size_t>(pos_) >> 6;
    const int offset = pos_ & 63;
    const int avail = 64 - offset;
    uint64_t v;
    if (width <= avail) {
      v = bits_->word(word_i) >> (avail - width);
      if (width < 64) v &= (uint64_t{1} << width) - 1;
    } else {
      // Straddles the word boundary: avail < 64 here, so both shifts are
      // in range.
      const int rem = width - avail;  // 1..63
      const uint64_t hi = bits_->word(word_i) & ((uint64_t{1} << avail) - 1);
      v = (hi << rem) | (bits_->word(word_i + 1) >> (64 - rem));
    }
    pos_ += width;
    return v;
  }

  /// \brief Reads `width` bits as a two's-complement signed value.
  Result<int64_t> ReadSigned(int width) {
    MARLIN_ASSIGN_OR_RETURN(uint64_t raw, ReadUnsigned(width));
    // Sign-extend from `width` bits.
    if (width < 64 && (raw & (uint64_t{1} << (width - 1)))) {
      raw |= ~((uint64_t{1} << width) - 1);
    }
    return static_cast<int64_t>(raw);
  }

  /// \brief Reads `chars` characters of AIS 6-bit text; trailing '@' padding
  /// and trailing spaces are stripped.
  Result<std::string> ReadString(int chars) {
    std::string out;
    out.reserve(chars);
    for (int i = 0; i < chars; ++i) {
      MARLIN_ASSIGN_OR_RETURN(uint64_t v, ReadUnsigned(6));
      out.push_back(SixBitToChar(static_cast<uint32_t>(v)));
    }
    // Strip '@' padding and trailing spaces.
    size_t end = out.find('@');
    if (end != std::string::npos) out.resize(end);
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return out;
  }

  /// \brief Skips `width` bits (spare fields).
  Status Skip(int width) {
    if (remaining() < width) return Status::OutOfRange("bit stream exhausted");
    pos_ += width;
    return Status::OK();
  }

  int remaining() const { return bits_->size_bits() - pos_; }
  int position() const { return pos_; }

 private:
  const PackedBits* bits_;
  int pos_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_COMMON_PACKED_BITS_H_
