#ifndef MARLIN_COMMON_RNG_H_
#define MARLIN_COMMON_RNG_H_

/// \file rng.h
/// \brief Deterministic random number generation for simulations and tests.
///
/// MARLIN never uses `std::random_device` or global RNG state: every
/// stochastic component takes an explicit `Rng` (or a seed) so that
/// experiments are exactly reproducible. The core generator is
/// xoshiro256**, seeded via SplitMix64.

#include <cstdint>
#include <cmath>

namespace marlin {

/// \brief Fast, high-quality deterministic PRNG (xoshiro256**).
class Rng {
 public:
  /// \brief Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// \brief Re-seeds in place (SplitMix64 expansion of `seed`).
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : s_) {
      // SplitMix64 step
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// \brief Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// \brief Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextBounded(uint64_t n) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      const uint64_t threshold = (0 - n) % n;
      while (l < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// \brief Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// \brief Standard normal variate (Box–Muller, caching the spare).
  double Gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// \brief Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// \brief Exponential variate with the given rate (λ > 0).
  double Exponential(double rate) {
    return -std::log(1.0 - NextDouble()) / rate;
  }

  /// \brief Derives an independent child generator (for per-entity streams).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace marlin

#endif  // MARLIN_COMMON_RNG_H_
