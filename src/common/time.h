#ifndef MARLIN_COMMON_TIME_H_
#define MARLIN_COMMON_TIME_H_

/// \file time.h
/// \brief Event-time primitives shared by every streaming component.
///
/// All timestamps in MARLIN are milliseconds since the Unix epoch (UTC),
/// carried as a strong-ish typedef `Timestamp`. Durations are millisecond
/// counts. Wall-clock access is isolated in `Clock` so simulations and tests
/// can substitute deterministic time.

#include <cstdint>
#include <string>

namespace marlin {

/// Milliseconds since 1970-01-01T00:00:00Z.
using Timestamp = int64_t;

/// Millisecond span between two timestamps.
using DurationMs = int64_t;

/// \brief Sentinel for "no timestamp".
inline constexpr Timestamp kInvalidTimestamp = INT64_MIN;

/// \brief Smallest / largest representable event times used as query bounds.
inline constexpr Timestamp kMinTimestamp = INT64_MIN + 1;
inline constexpr Timestamp kMaxTimestamp = INT64_MAX;

inline constexpr DurationMs kMillisPerSecond = 1000;
inline constexpr DurationMs kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr DurationMs kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr DurationMs kMillisPerDay = 24 * kMillisPerHour;

/// \brief Converts fractional seconds to a millisecond duration.
constexpr DurationMs Seconds(double s) {
  return static_cast<DurationMs>(s * kMillisPerSecond);
}
/// \brief Converts fractional minutes to a millisecond duration.
constexpr DurationMs Minutes(double m) {
  return static_cast<DurationMs>(m * kMillisPerMinute);
}
/// \brief Converts fractional hours to a millisecond duration.
constexpr DurationMs Hours(double h) {
  return static_cast<DurationMs>(h * kMillisPerHour);
}

/// \brief Formats a timestamp as ISO-8601 "YYYY-MM-DDTHH:MM:SS.mmmZ".
std::string FormatTimestamp(Timestamp ts);

/// \brief Parses "YYYY-MM-DDTHH:MM:SS[.mmm][Z]". Returns kInvalidTimestamp on
/// malformed input.
Timestamp ParseTimestamp(const std::string& iso8601);

/// \brief Time source abstraction; production uses the system clock, tests
/// and simulations use ManualClock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// \brief Current time in epoch milliseconds.
  virtual Timestamp Now() const = 0;
};

/// \brief Clock backed by the real system clock.
class SystemClock : public Clock {
 public:
  Timestamp Now() const override;
  /// \brief Shared process-wide instance.
  static const SystemClock& Instance();
};

/// \brief Deterministic clock advanced explicitly by the owner.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Timestamp start = 0) : now_(start) {}
  Timestamp Now() const override { return now_; }
  /// \brief Moves time forward by `delta` (may be zero, never negative).
  void Advance(DurationMs delta) { now_ += delta; }
  void Set(Timestamp t) { now_ = t; }

 private:
  Timestamp now_;
};

}  // namespace marlin

#endif  // MARLIN_COMMON_TIME_H_
