#include "common/time.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace marlin {

std::string FormatTimestamp(Timestamp ts) {
  if (ts == kInvalidTimestamp) return "invalid";
  const time_t secs = static_cast<time_t>(ts / kMillisPerSecond);
  int ms = static_cast<int>(ts % kMillisPerSecond);
  time_t adjusted = secs;
  if (ms < 0) {  // keep the millisecond component in [0, 999]
    ms += 1000;
    adjusted -= 1;
  }
  struct tm tm_utc;
  gmtime_r(&adjusted, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, ms);
  return buf;
}

Timestamp ParseTimestamp(const std::string& iso8601) {
  int year = 0, month = 0, day = 0, hour = 0, min = 0, sec = 0, ms = 0;
  int n = std::sscanf(iso8601.c_str(), "%d-%d-%dT%d:%d:%d.%3d", &year, &month,
                      &day, &hour, &min, &sec, &ms);
  if (n < 6) return kInvalidTimestamp;
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      min > 59 || sec > 60) {
    return kInvalidTimestamp;
  }
  struct tm tm_utc = {};
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = month - 1;
  tm_utc.tm_mday = day;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = min;
  tm_utc.tm_sec = sec;
  const time_t secs = timegm(&tm_utc);
  return static_cast<Timestamp>(secs) * kMillisPerSecond + ms;
}

Timestamp SystemClock::Now() const {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

const SystemClock& SystemClock::Instance() {
  static const SystemClock clock;
  return clock;
}

}  // namespace marlin
