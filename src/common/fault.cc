#include "common/fault.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace marlin {

namespace {

/// Plan + hit counters behind one mutex. A fault site is, by definition, on
/// a path about to do IO or fail — the lock is irrelevant next to that, and
/// only ever taken when a plan is armed.
struct InjectorState {
  std::mutex mutex;
  std::vector<FaultRule> rules;
  std::unordered_map<std::string, uint64_t> hits;
  uint64_t fired = 0;
};

InjectorState& State() {
  static InjectorState* state = new InjectorState();  // leaked: outlives exit
  return *state;
}

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counts the hit and returns the action of a rule firing on it, if any.
std::optional<FaultAction> Fire(std::string_view site, uint32_t* delay_ms) {
  InjectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto [it, inserted] = state.hits.try_emplace(std::string(site), 0);
  const uint64_t hit = ++it->second;
  for (const FaultRule& rule : state.rules) {
    if (rule.site != site) continue;
    if (hit == rule.hit || (rule.repeat && hit > rule.hit)) {
      ++state.fired;
      *delay_ms = rule.delay_ms;
      return rule.action;
    }
  }
  return std::nullopt;
}

}  // namespace

std::atomic<bool> FaultInjector::armed_{false};

void FaultInjector::Arm(FaultPlan plan) {
  InjectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.rules = plan.rules();
  state.hits.clear();
  state.fired = 0;
  armed_.store(!state.rules.empty(), std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  InjectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.rules.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::Hit(std::string_view site) {
  uint32_t delay_ms = 0;
  const std::optional<FaultAction> action = Fire(site, &delay_ms);
  if (!action.has_value()) return;
  if (*action == FaultAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return;
  }
  // kThrow — and kIoError/kShortWrite at a site with no IO result to fake:
  // the crash simulation is a throw either way.
  throw FaultInjectedError(std::string(site));
}

std::optional<FaultAction> FaultInjector::HitIo(std::string_view site) {
  uint32_t delay_ms = 0;
  const std::optional<FaultAction> action = Fire(site, &delay_ms);
  if (!action.has_value()) return std::nullopt;
  switch (*action) {
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return std::nullopt;
    case FaultAction::kThrow:
      throw FaultInjectedError(std::string(site));
    case FaultAction::kIoError:
    case FaultAction::kShortWrite:
      return action;
  }
  return std::nullopt;
}

uint64_t FaultInjector::HitCount(std::string_view site) {
  InjectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.hits.find(std::string(site));
  return it == state.hits.end() ? 0 : it->second;
}

uint64_t FaultInjector::FiredCount() {
  InjectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.fired;
}

FaultPlan FaultPlan::Seeded(uint64_t seed, const std::vector<std::string>& sites,
                            FaultAction action, uint64_t max_hit) {
  FaultPlan plan;
  if (sites.empty()) return plan;
  uint64_t x = seed;
  const std::string& site = sites[SplitMix64(x) % sites.size()];
  const uint64_t hit = max_hit == 0 ? 1 : 1 + SplitMix64(x) % max_hit;
  plan.Fail(site, hit, action);
  return plan;
}

}  // namespace marlin
