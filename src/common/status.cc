#include "common/status.h"

namespace marlin {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace marlin
