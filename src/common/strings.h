#ifndef MARLIN_COMMON_STRINGS_H_
#define MARLIN_COMMON_STRINGS_H_

/// \file strings.h
/// \brief Small string utilities (split/trim/join/case) used by parsers.

#include <string>
#include <string_view>
#include <vector>

namespace marlin {

/// \brief Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// \brief Allocation-free split: calls `fn(field)` for each
/// `delim`-separated field of `s` (empty fields kept, same field boundaries
/// as `Split`). The views alias `s`'s buffer.
template <typename Fn>
void ForEachField(std::string_view s, char delim, Fn&& fn) {
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    fn(s.substr(start, pos - start));  // substr clamps npos counts
    if (pos == std::string_view::npos) return;
    start = pos + 1;
  }
}

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// \brief True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Parses a decimal integer; returns false on any malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// \brief Parses a one- or two-digit hex byte after optional leading ASCII
/// whitespace — the exact acceptance of `sscanf("%2X")`, which the NMEA
/// checksum fields were historically parsed with (minus sscanf's buffer
/// copy). Characters after the parsed digits are ignored. Returns false
/// when no hex digit is found.
bool ParseHexByte(std::string_view s, unsigned int* out);

/// \brief Parses a floating point number; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// \brief Normalized Levenshtein similarity in [0,1] (1 = identical).
/// Used by link discovery (§2.2 of the paper).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// \brief Jaccard similarity of the whitespace-token sets of two strings.
double TokenJaccard(std::string_view a, std::string_view b);

}  // namespace marlin

#endif  // MARLIN_COMMON_STRINGS_H_
