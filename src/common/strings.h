#ifndef MARLIN_COMMON_STRINGS_H_
#define MARLIN_COMMON_STRINGS_H_

/// \file strings.h
/// \brief Small string utilities (split/trim/join/case) used by parsers.

#include <string>
#include <string_view>
#include <vector>

namespace marlin {

/// \brief Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// \brief True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Parses a decimal integer; returns false on any malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// \brief Parses a floating point number; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// \brief Normalized Levenshtein similarity in [0,1] (1 = identical).
/// Used by link discovery (§2.2 of the paper).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// \brief Jaccard similarity of the whitespace-token sets of two strings.
double TokenJaccard(std::string_view a, std::string_view b);

}  // namespace marlin

#endif  // MARLIN_COMMON_STRINGS_H_
