#ifndef MARLIN_COMMON_LOGGING_H_
#define MARLIN_COMMON_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logger. Off by default above WARN in benchmarks.

#include <sstream>
#include <string>

namespace marlin {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide log configuration.
class Logging {
 public:
  /// \brief Sets the minimum level that is emitted (default: kWarn).
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  /// \brief Emits one line to stderr if `level` is enabled.
  static void Emit(LogLevel level, const std::string& msg);
};

namespace internal {

/// \brief Stream-style log line builder; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logging::Emit(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace marlin

#define MARLIN_LOG(level) \
  ::marlin::internal::LogMessage(::marlin::LogLevel::level)

#define MARLIN_LOG_DEBUG MARLIN_LOG(kDebug)
#define MARLIN_LOG_INFO MARLIN_LOG(kInfo)
#define MARLIN_LOG_WARN MARLIN_LOG(kWarn)
#define MARLIN_LOG_ERROR MARLIN_LOG(kError)

#endif  // MARLIN_COMMON_LOGGING_H_
