#ifndef MARLIN_COMMON_CACHE_LINE_H_
#define MARLIN_COMMON_CACHE_LINE_H_

/// \file cache_line.h
/// \brief Cache-line geometry for the mechanical-sympathy passes.
///
/// Two independent shard workers mutating fields that happen to share a
/// 64-byte line serialize on the coherence protocol even though they never
/// touch the same byte (false sharing). Hot per-thread control blocks —
/// queue producer/consumer halves, per-shard stats, per-shard flat tables —
/// align and pad to this boundary so one thread's writes never invalidate
/// another thread's line.

#include <cstddef>

namespace marlin {

/// \brief Destructive-interference granularity. 64 bytes covers x86-64 and
/// most AArch64 parts; `std::hardware_destructive_interference_size` is not
/// used because GCC warns that its value is ABI-unstable across -mtune
/// flags, and a constant keeps struct layouts identical across TUs.
inline constexpr size_t kCacheLineBytes = 64;

/// \brief Wrapper that gives `T` a cache line of its own: aligned to the
/// line boundary and padded to a whole number of lines, so adjacent array
/// elements (one per thread) can never false-share.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace marlin

#endif  // MARLIN_COMMON_CACHE_LINE_H_
