#ifndef MARLIN_GEO_GEODESY_H_
#define MARLIN_GEO_GEODESY_H_

/// \file geodesy.h
/// \brief Great-circle geodesy on the mean-radius sphere.
///
/// Spherical formulas (haversine et al.) keep errors below ~0.5 % of
/// distance, far below AIS GPS accuracy (~10 m) at the ranges MARLIN handles;
/// see DESIGN.md §5 for the justification of the spherical substitution.

#include "geo/point.h"

namespace marlin {

/// \brief Great-circle distance between two positions, metres (haversine).
double HaversineDistance(const GeoPoint& a, const GeoPoint& b);

/// \brief Initial bearing from `a` to `b`, degrees true in [0, 360).
double InitialBearing(const GeoPoint& a, const GeoPoint& b);

/// \brief Position reached from `origin` travelling `distance_m` metres on
/// constant initial bearing `bearing_deg` (great circle).
GeoPoint Destination(const GeoPoint& origin, double bearing_deg,
                     double distance_m);

/// \brief Point `fraction` (0..1) of the way along the great circle a→b.
GeoPoint Interpolate(const GeoPoint& a, const GeoPoint& b, double fraction);

/// \brief Signed cross-track distance (metres) of `p` from the great-circle
/// path start→end. Negative = left of path.
double CrossTrackDistance(const GeoPoint& p, const GeoPoint& start,
                          const GeoPoint& end);

/// \brief Along-track distance (metres) of the closest point of the path
/// start→end to `p`, measured from `start`.
double AlongTrackDistance(const GeoPoint& p, const GeoPoint& start,
                          const GeoPoint& end);

/// \brief Distance (metres) from `p` to the great-circle *segment* a→b
/// (clamped to the segment, not the full circle).
double DistanceToSegment(const GeoPoint& p, const GeoPoint& a,
                         const GeoPoint& b);

/// \brief Loxodrome (rhumb-line) distance between two positions, metres.
double RhumbDistance(const GeoPoint& a, const GeoPoint& b);

/// \brief Constant rhumb-line bearing from `a` to `b`, degrees in [0, 360).
double RhumbBearing(const GeoPoint& a, const GeoPoint& b);

/// \brief Equirectangular local-tangent-plane projection around an origin.
///
/// Accurate to well under 0.1 % for extents below ~100 km, which covers every
/// tracking/fusion use in MARLIN. Follows the pattern of a fixed projection
/// per tracking area: construct once, then project/unproject many points.
class LocalProjection {
 public:
  /// \brief Creates a projection centred on `origin`.
  explicit LocalProjection(const GeoPoint& origin);

  /// \brief Geographic → local ENU metres.
  EnuPoint Project(const GeoPoint& p) const;

  /// \brief Local ENU metres → geographic.
  GeoPoint Unproject(const EnuPoint& p) const;

  const GeoPoint& origin() const { return origin_; }

 private:
  GeoPoint origin_;
  double cos_lat_;
  double metres_per_deg_lat_;
  double metres_per_deg_lon_;
};

}  // namespace marlin

#endif  // MARLIN_GEO_GEODESY_H_
