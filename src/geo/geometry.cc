#include "geo/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/geodesy.h"

namespace marlin {

void BoundingBox::Extend(const GeoPoint& p) {
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
  min_lon = std::min(min_lon, p.lon);
  max_lon = std::max(max_lon, p.lon);
}

void BoundingBox::Extend(const BoundingBox& other) {
  if (other.IsEmpty()) return;
  min_lat = std::min(min_lat, other.min_lat);
  max_lat = std::max(max_lat, other.max_lat);
  min_lon = std::min(min_lon, other.min_lon);
  max_lon = std::max(max_lon, other.max_lon);
}

Polygon::Polygon(std::vector<GeoPoint> vertices)
    : vertices_(std::move(vertices)) {
  for (const auto& v : vertices_) bounds_.Extend(v);
}

bool Polygon::Contains(const GeoPoint& p) const {
  if (IsEmpty() || !bounds_.Contains(p)) return false;
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const GeoPoint& vi = vertices_[i];
    const GeoPoint& vj = vertices_[j];
    // Boundary vertices / horizontal edges handled by the strict/non-strict
    // comparison asymmetry of the classic even-odd ray cast.
    if ((vi.lat > p.lat) != (vj.lat > p.lat)) {
      const double t = (p.lat - vi.lat) / (vj.lat - vi.lat);
      const double x = vi.lon + t * (vj.lon - vi.lon);
      if (p.lon < x) inside = !inside;
    }
  }
  return inside;
}

double Polygon::DistanceToBoundary(const GeoPoint& p) const {
  double best = std::numeric_limits<double>::infinity();
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    best = std::min(best, DistanceToSegment(p, vertices_[j], vertices_[i]));
  }
  return best;
}

Polygon Polygon::FromBox(const BoundingBox& box) {
  return Polygon({GeoPoint(box.min_lat, box.min_lon),
                  GeoPoint(box.min_lat, box.max_lon),
                  GeoPoint(box.max_lat, box.max_lon),
                  GeoPoint(box.max_lat, box.min_lon)});
}

Polygon Polygon::Circle(const GeoPoint& centre, double radius_m, int segments) {
  std::vector<GeoPoint> verts;
  verts.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    const double bearing = 360.0 * i / segments;
    verts.push_back(Destination(centre, bearing, radius_m));
  }
  return Polygon(std::move(verts));
}

std::vector<GeoPoint> ConvexHull(std::vector<GeoPoint> pts) {
  if (pts.size() < 3) return pts;
  std::sort(pts.begin(), pts.end(), [](const GeoPoint& a, const GeoPoint& b) {
    return a.lon < b.lon || (a.lon == b.lon && a.lat < b.lat);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 3) return pts;
  auto cross = [](const GeoPoint& o, const GeoPoint& a, const GeoPoint& b) {
    return (a.lon - o.lon) * (b.lat - o.lat) -
           (a.lat - o.lat) * (b.lon - o.lon);
  };
  std::vector<GeoPoint> hull(2 * pts.size());
  size_t k = 0;
  for (size_t i = 0; i < pts.size(); ++i) {  // lower hull
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  const size_t lower = k + 1;
  for (size_t i = pts.size() - 1; i-- > 0;) {  // upper hull
    while (k >= lower && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

double PolylineLength(const std::vector<GeoPoint>& line) {
  double total = 0.0;
  for (size_t i = 1; i < line.size(); ++i) {
    total += HaversineDistance(line[i - 1], line[i]);
  }
  return total;
}

namespace {

void DouglasPeuckerRecurse(const std::vector<GeoPoint>& line, size_t first,
                           size_t last, double tolerance_m,
                           std::vector<bool>* keep) {
  if (last <= first + 1) return;
  double max_dist = -1.0;
  size_t max_idx = first;
  for (size_t i = first + 1; i < last; ++i) {
    const double d = DistanceToSegment(line[i], line[first], line[last]);
    if (d > max_dist) {
      max_dist = d;
      max_idx = i;
    }
  }
  if (max_dist > tolerance_m) {
    (*keep)[max_idx] = true;
    DouglasPeuckerRecurse(line, first, max_idx, tolerance_m, keep);
    DouglasPeuckerRecurse(line, max_idx, last, tolerance_m, keep);
  }
}

}  // namespace

std::vector<GeoPoint> SimplifyDouglasPeucker(const std::vector<GeoPoint>& line,
                                             double tolerance_m) {
  if (line.size() <= 2) return line;
  std::vector<bool> keep(line.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeuckerRecurse(line, 0, line.size() - 1, tolerance_m, &keep);
  std::vector<GeoPoint> out;
  for (size_t i = 0; i < line.size(); ++i) {
    if (keep[i]) out.push_back(line[i]);
  }
  return out;
}

std::vector<GeoPoint> ResamplePolyline(const std::vector<GeoPoint>& line,
                                       int n) {
  if (line.empty() || n < 2) return line;
  const double total = PolylineLength(line);
  std::vector<GeoPoint> out;
  out.reserve(n);
  out.push_back(line.front());
  if (total <= 0.0) {
    for (int i = 1; i < n; ++i) out.push_back(line.front());
    return out;
  }
  const double step = total / (n - 1);
  double target = step;
  double walked = 0.0;
  size_t seg = 1;
  while (static_cast<int>(out.size()) < n - 1 && seg < line.size()) {
    const double seg_len = HaversineDistance(line[seg - 1], line[seg]);
    if (walked + seg_len >= target && seg_len > 0.0) {
      const double f = (target - walked) / seg_len;
      out.push_back(Interpolate(line[seg - 1], line[seg], f));
      target += step;
    } else {
      walked += seg_len;
      ++seg;
    }
  }
  while (static_cast<int>(out.size()) < n) out.push_back(line.back());
  return out;
}

double DistanceToPolyline(const GeoPoint& p,
                          const std::vector<GeoPoint>& line) {
  if (line.empty()) return std::numeric_limits<double>::infinity();
  if (line.size() == 1) return HaversineDistance(p, line[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < line.size(); ++i) {
    best = std::min(best, DistanceToSegment(p, line[i - 1], line[i]));
  }
  return best;
}

}  // namespace marlin
