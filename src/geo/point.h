#ifndef MARLIN_GEO_POINT_H_
#define MARLIN_GEO_POINT_H_

/// \file point.h
/// \brief Basic WGS-84 position type shared by every module.

#include <cmath>
#include <string>

namespace marlin {

/// \brief A geographic position: latitude/longitude in decimal degrees.
///
/// Latitude in [-90, 90], longitude in [-180, 180). The AIS "not available"
/// encodings (lat 91, lon 181) map to `IsValid() == false`.
struct GeoPoint {
  double lat = 91.0;   ///< degrees north; 91 = not available (AIS convention)
  double lon = 181.0;  ///< degrees east; 181 = not available (AIS convention)

  constexpr GeoPoint() = default;
  constexpr GeoPoint(double latitude, double longitude)
      : lat(latitude), lon(longitude) {}

  /// \brief True iff this is a usable coordinate.
  bool IsValid() const {
    return std::isfinite(lat) && std::isfinite(lon) && lat >= -90.0 &&
           lat <= 90.0 && lon >= -180.0 && lon <= 180.0;
  }

  bool operator==(const GeoPoint& o) const {
    return lat == o.lat && lon == o.lon;
  }
  bool operator!=(const GeoPoint& o) const { return !(*this == o); }

  /// \brief "lat,lon" with 6 decimal places (~0.1 m resolution).
  std::string ToString() const;
};

/// \brief A point in a local tangent (east-north) plane, metres.
struct EnuPoint {
  double east = 0.0;   ///< metres east of the projection origin
  double north = 0.0;  ///< metres north of the projection origin

  constexpr EnuPoint() = default;
  constexpr EnuPoint(double e, double n) : east(e), north(n) {}

  double NormSq() const { return east * east + north * north; }
  double Norm() const { return std::sqrt(NormSq()); }

  EnuPoint operator-(const EnuPoint& o) const {
    return {east - o.east, north - o.north};
  }
  EnuPoint operator+(const EnuPoint& o) const {
    return {east + o.east, north + o.north};
  }
  EnuPoint operator*(double k) const { return {east * k, north * k}; }
};

}  // namespace marlin

#endif  // MARLIN_GEO_POINT_H_
