#include "geo/kinematics.h"

#include <cmath>

#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

CpaResult ComputeCpa(const MotionState& a, const MotionState& b) {
  const GeoPoint mid = Interpolate(a.position, b.position, 0.5);
  const LocalProjection proj(mid);
  const EnuPoint pa = proj.Project(a.position);
  const EnuPoint pb = proj.Project(b.position);
  // Velocity components: course is degrees true (0=N, clockwise), so
  // east = v*sin(theta), north = v*cos(theta).
  const double vax = a.speed_mps * std::sin(DegToRad(a.course_deg));
  const double vay = a.speed_mps * std::cos(DegToRad(a.course_deg));
  const double vbx = b.speed_mps * std::sin(DegToRad(b.course_deg));
  const double vby = b.speed_mps * std::cos(DegToRad(b.course_deg));

  const double dx = pb.east - pa.east;
  const double dy = pb.north - pa.north;
  const double dvx = vbx - vax;
  const double dvy = vby - vay;

  const double dv2 = dvx * dvx + dvy * dvy;
  CpaResult result;
  if (dv2 < 1e-9) {
    result.tcpa_s = 0.0;
    result.distance_m = std::sqrt(dx * dx + dy * dy);
    result.converging = false;
    return result;
  }
  const double tcpa = -(dx * dvx + dy * dvy) / dv2;
  if (tcpa <= 0.0) {
    result.tcpa_s = 0.0;
    result.distance_m = std::sqrt(dx * dx + dy * dy);
    result.converging = false;
    return result;
  }
  const double cx = dx + dvx * tcpa;
  const double cy = dy + dvy * tcpa;
  result.tcpa_s = tcpa;
  result.distance_m = std::sqrt(cx * cx + cy * cy);
  result.converging = true;
  return result;
}

GeoPoint DeadReckon(const MotionState& s, double dt_s) {
  return Destination(s.position, s.course_deg, s.speed_mps * dt_s);
}

}  // namespace marlin
