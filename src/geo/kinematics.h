#ifndef MARLIN_GEO_KINEMATICS_H_
#define MARLIN_GEO_KINEMATICS_H_

/// \file kinematics.h
/// \brief Relative-motion computations: CPA/TCPA for collision-risk events.

#include "geo/point.h"

namespace marlin {

/// \brief A moving target in geographic space.
struct MotionState {
  GeoPoint position;
  double speed_mps = 0.0;    ///< speed over ground, metres/second
  double course_deg = 0.0;   ///< course over ground, degrees true
};

/// \brief Result of a closest-point-of-approach computation.
struct CpaResult {
  double tcpa_s = 0.0;      ///< time to CPA in seconds (0 if diverging now)
  double distance_m = 0.0;  ///< separation at CPA, metres
  bool converging = false;  ///< true iff TCPA > 0 (closing geometry)
};

/// \brief Closest point of approach between two targets under constant
/// velocity, computed in a local tangent plane around the midpoint.
///
/// When the relative speed is ~0 the current separation is returned with
/// `tcpa_s == 0`. Negative analytic TCPA (already past CPA) is clamped to 0
/// with `converging == false`, matching watch-keeping practice.
CpaResult ComputeCpa(const MotionState& a, const MotionState& b);

/// \brief Dead-reckoned position after `dt_s` seconds of constant speed and
/// course (great-circle advance).
GeoPoint DeadReckon(const MotionState& s, double dt_s);

}  // namespace marlin

#endif  // MARLIN_GEO_KINEMATICS_H_
