#ifndef MARLIN_GEO_GEOMETRY_H_
#define MARLIN_GEO_GEOMETRY_H_

/// \file geometry.h
/// \brief Planar-on-degrees geometry: boxes, polygons, polyline operations.
///
/// Polygon containment and simplification operate directly in degree space
/// (lat/lon treated as planar). That is the standard choice for maritime
/// zones, which are small relative to the globe; all distance *measurements*
/// go through geodesy.h instead.

#include <vector>

#include "geo/point.h"

namespace marlin {

/// \brief Axis-aligned geographic bounding box (no antimeridian wrap).
struct BoundingBox {
  double min_lat = 90.0;
  double min_lon = 180.0;
  double max_lat = -90.0;
  double max_lon = -180.0;

  constexpr BoundingBox() = default;
  constexpr BoundingBox(double min_latitude, double min_longitude,
                        double max_latitude, double max_longitude)
      : min_lat(min_latitude),
        min_lon(min_longitude),
        max_lat(max_latitude),
        max_lon(max_longitude) {}

  /// \brief The (initially) empty box: contains nothing, Extend()-able.
  static constexpr BoundingBox Empty() { return BoundingBox(); }

  bool IsEmpty() const { return min_lat > max_lat || min_lon > max_lon; }

  /// \brief Grows the box to cover `p`.
  void Extend(const GeoPoint& p);
  /// \brief Grows the box to cover `other`.
  void Extend(const BoundingBox& other);

  bool Contains(const GeoPoint& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
           p.lon <= max_lon;
  }
  bool Intersects(const BoundingBox& o) const {
    return !(o.min_lat > max_lat || o.max_lat < min_lat ||
             o.min_lon > max_lon || o.max_lon < min_lon);
  }
  /// \brief Box expanded by `margin_deg` on every side.
  BoundingBox Expanded(double margin_deg) const {
    return BoundingBox(min_lat - margin_deg, min_lon - margin_deg,
                       max_lat + margin_deg, max_lon + margin_deg);
  }
  GeoPoint Center() const {
    return GeoPoint((min_lat + max_lat) / 2, (min_lon + max_lon) / 2);
  }
  /// \brief Area in squared degrees (for index packing heuristics only).
  double AreaDeg2() const {
    return IsEmpty() ? 0.0 : (max_lat - min_lat) * (max_lon - min_lon);
  }
};

/// \brief Simple polygon (implicit closure; vertices in any winding order).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<GeoPoint> vertices);

  /// \brief Even–odd point-in-polygon test (boundary counts as inside).
  bool Contains(const GeoPoint& p) const;

  /// \brief Minimum geodesic distance (metres) from `p` to the boundary.
  double DistanceToBoundary(const GeoPoint& p) const;

  const std::vector<GeoPoint>& vertices() const { return vertices_; }
  const BoundingBox& bounds() const { return bounds_; }
  bool IsEmpty() const { return vertices_.size() < 3; }

  /// \brief Convenience: rectangle polygon from a bounding box.
  static Polygon FromBox(const BoundingBox& box);

  /// \brief Approximate circle: `segments`-gon of geodesic radius metres.
  static Polygon Circle(const GeoPoint& centre, double radius_m,
                        int segments = 24);

 private:
  std::vector<GeoPoint> vertices_;
  BoundingBox bounds_;
};

/// \brief Convex hull (Andrew monotone chain) of a point set, in degree space.
std::vector<GeoPoint> ConvexHull(std::vector<GeoPoint> points);

/// \brief Total geodesic length (metres) of a polyline.
double PolylineLength(const std::vector<GeoPoint>& line);

/// \brief Douglas–Peucker simplification with geodesic tolerance (metres).
/// First and last points are always kept.
std::vector<GeoPoint> SimplifyDouglasPeucker(const std::vector<GeoPoint>& line,
                                             double tolerance_m);

/// \brief Resamples a polyline to `n >= 2` points equally spaced by length.
std::vector<GeoPoint> ResamplePolyline(const std::vector<GeoPoint>& line,
                                       int n);

/// \brief Minimum geodesic distance (metres) from `p` to a polyline.
double DistanceToPolyline(const GeoPoint& p, const std::vector<GeoPoint>& line);

}  // namespace marlin

#endif  // MARLIN_GEO_GEOMETRY_H_
