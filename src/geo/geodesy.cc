#include "geo/geodesy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/units.h"

namespace marlin {

std::string GeoPoint::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f,%.6f", lat, lon);
  return buf;
}

double HaversineDistance(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = DegToRad(a.lat);
  const double phi2 = DegToRad(b.lat);
  const double dphi = DegToRad(b.lat - a.lat);
  const double dlam = DegToRad(b.lon - a.lon);
  const double s1 = std::sin(dphi / 2);
  const double s2 = std::sin(dlam / 2);
  const double h = s1 * s1 + std::cos(phi1) * std::cos(phi2) * s2 * s2;
  return 2.0 * kEarthRadiusMetres * std::asin(std::min(1.0, std::sqrt(h)));
}

double InitialBearing(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = DegToRad(a.lat);
  const double phi2 = DegToRad(b.lat);
  const double dlam = DegToRad(b.lon - a.lon);
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  return NormalizeDegrees(RadToDeg(std::atan2(y, x)));
}

GeoPoint Destination(const GeoPoint& origin, double bearing_deg,
                     double distance_m) {
  const double delta = distance_m / kEarthRadiusMetres;
  const double theta = DegToRad(bearing_deg);
  const double phi1 = DegToRad(origin.lat);
  const double lam1 = DegToRad(origin.lon);
  const double sin_phi2 = std::sin(phi1) * std::cos(delta) +
                          std::cos(phi1) * std::sin(delta) * std::cos(theta);
  const double phi2 = std::asin(std::clamp(sin_phi2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(phi1);
  const double x = std::cos(delta) - std::sin(phi1) * sin_phi2;
  const double lam2 = lam1 + std::atan2(y, x);
  return GeoPoint(RadToDeg(phi2), NormalizeLongitude(RadToDeg(lam2)));
}

GeoPoint Interpolate(const GeoPoint& a, const GeoPoint& b, double fraction) {
  if (fraction <= 0.0) return a;
  if (fraction >= 1.0) return b;
  const double d = HaversineDistance(a, b) / kEarthRadiusMetres;
  if (d < 1e-12) return a;
  const double sin_d = std::sin(d);
  const double f1 = std::sin((1.0 - fraction) * d) / sin_d;
  const double f2 = std::sin(fraction * d) / sin_d;
  const double phi1 = DegToRad(a.lat), lam1 = DegToRad(a.lon);
  const double phi2 = DegToRad(b.lat), lam2 = DegToRad(b.lon);
  const double x = f1 * std::cos(phi1) * std::cos(lam1) +
                   f2 * std::cos(phi2) * std::cos(lam2);
  const double y = f1 * std::cos(phi1) * std::sin(lam1) +
                   f2 * std::cos(phi2) * std::sin(lam2);
  const double z = f1 * std::sin(phi1) + f2 * std::sin(phi2);
  const double phi = std::atan2(z, std::sqrt(x * x + y * y));
  const double lam = std::atan2(y, x);
  return GeoPoint(RadToDeg(phi), NormalizeLongitude(RadToDeg(lam)));
}

double CrossTrackDistance(const GeoPoint& p, const GeoPoint& start,
                          const GeoPoint& end) {
  const double d13 = HaversineDistance(start, p) / kEarthRadiusMetres;
  const double theta13 = DegToRad(InitialBearing(start, p));
  const double theta12 = DegToRad(InitialBearing(start, end));
  return std::asin(std::sin(d13) * std::sin(theta13 - theta12)) *
         kEarthRadiusMetres;
}

double AlongTrackDistance(const GeoPoint& p, const GeoPoint& start,
                          const GeoPoint& end) {
  const double d13 = HaversineDistance(start, p) / kEarthRadiusMetres;
  const double dxt = CrossTrackDistance(p, start, end) / kEarthRadiusMetres;
  const double cos_d13 = std::cos(d13);
  const double cos_dxt = std::cos(dxt);
  if (std::abs(cos_dxt) < 1e-15) return 0.0;
  const double dat = std::acos(std::clamp(cos_d13 / cos_dxt, -1.0, 1.0));
  // Sign: negative when the closest point lies behind `start`.
  const double theta13 = DegToRad(InitialBearing(start, p));
  const double theta12 = DegToRad(InitialBearing(start, end));
  const double sign = std::cos(theta13 - theta12) >= 0 ? 1.0 : -1.0;
  return sign * dat * kEarthRadiusMetres;
}

double DistanceToSegment(const GeoPoint& p, const GeoPoint& a,
                         const GeoPoint& b) {
  const double seg_len = HaversineDistance(a, b);
  if (seg_len < 1e-9) return HaversineDistance(p, a);
  const double along = AlongTrackDistance(p, a, b);
  if (along <= 0.0) return HaversineDistance(p, a);
  if (along >= seg_len) return HaversineDistance(p, b);
  return std::abs(CrossTrackDistance(p, a, b));
}

double RhumbDistance(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = DegToRad(a.lat);
  const double phi2 = DegToRad(b.lat);
  const double dphi = phi2 - phi1;
  double dlam = DegToRad(b.lon - a.lon);
  if (std::abs(dlam) > kPi) dlam = dlam > 0 ? dlam - 2 * kPi : dlam + 2 * kPi;
  const double dpsi =
      std::log(std::tan(kPi / 4 + phi2 / 2) / std::tan(kPi / 4 + phi1 / 2));
  const double q = std::abs(dpsi) > 1e-12 ? dphi / dpsi : std::cos(phi1);
  const double d = std::sqrt(dphi * dphi + q * q * dlam * dlam);
  return d * kEarthRadiusMetres;
}

double RhumbBearing(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = DegToRad(a.lat);
  const double phi2 = DegToRad(b.lat);
  double dlam = DegToRad(b.lon - a.lon);
  if (std::abs(dlam) > kPi) dlam = dlam > 0 ? dlam - 2 * kPi : dlam + 2 * kPi;
  const double dpsi =
      std::log(std::tan(kPi / 4 + phi2 / 2) / std::tan(kPi / 4 + phi1 / 2));
  return NormalizeDegrees(RadToDeg(std::atan2(dlam, dpsi)));
}

LocalProjection::LocalProjection(const GeoPoint& origin) : origin_(origin) {
  cos_lat_ = std::cos(DegToRad(origin.lat));
  metres_per_deg_lat_ = DegToRad(1.0) * kEarthRadiusMetres;
  metres_per_deg_lon_ = metres_per_deg_lat_ * cos_lat_;
}

EnuPoint LocalProjection::Project(const GeoPoint& p) const {
  double dlon = p.lon - origin_.lon;
  if (dlon > 180.0) dlon -= 360.0;
  if (dlon < -180.0) dlon += 360.0;
  return EnuPoint(dlon * metres_per_deg_lon_,
                  (p.lat - origin_.lat) * metres_per_deg_lat_);
}

GeoPoint LocalProjection::Unproject(const EnuPoint& p) const {
  const double lat = origin_.lat + p.north / metres_per_deg_lat_;
  const double lon =
      NormalizeLongitude(origin_.lon + p.east / metres_per_deg_lon_);
  return GeoPoint(lat, lon);
}

}  // namespace marlin
