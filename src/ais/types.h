#ifndef MARLIN_AIS_TYPES_H_
#define MARLIN_AIS_TYPES_H_

/// \file types.h
/// \brief Decoded AIS message representations (ITU-R M.1371 subset).
///
/// MARLIN implements the message types that carry the information the paper's
/// pipeline consumes: Class-A position reports (1/2/3), base-station reports
/// (4), static & voyage data (5), Class-B reports (18/19) and Class-B static
/// data (24).

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/time.h"
#include "geo/point.h"

namespace marlin {

/// Maritime Mobile Service Identity (9 decimal digits).
using Mmsi = uint32_t;

/// \brief Navigation status field of Class-A position reports.
enum class NavigationStatus : uint8_t {
  kUnderWayUsingEngine = 0,
  kAtAnchor = 1,
  kNotUnderCommand = 2,
  kRestrictedManoeuvrability = 3,
  kConstrainedByDraught = 4,
  kMoored = 5,
  kAground = 6,
  kEngagedInFishing = 7,
  kUnderWaySailing = 8,
  kReserved9 = 9,
  kReserved10 = 10,
  kPowerDrivenTowingAstern = 11,
  kPowerDrivenPushingAhead = 12,
  kReserved13 = 13,
  kAisSartActive = 14,
  kNotDefined = 15,
};

/// \brief Coarse vessel categories derived from the ITU ship-type code.
enum class ShipCategory : uint8_t {
  kUnknown = 0,
  kFishing,
  kTug,
  kPassenger,
  kCargo,
  kTanker,
  kHighSpeedCraft,
  kPleasureCraft,
  kLawEnforcement,
  kOther,
};

/// \brief Maps the 2-digit ITU ship-type code to a coarse category.
ShipCategory ShipTypeToCategory(int ship_type);

/// \brief Human-readable name of a ship category.
const char* ShipCategoryName(ShipCategory c);

/// \brief Sentinel wire encodings defined by ITU-R M.1371.
struct AisSentinels {
  static constexpr double kSpeedNotAvailable = 102.3;   ///< SOG field 1023
  static constexpr double kCourseNotAvailable = 360.0;  ///< COG field 3600
  static constexpr int kHeadingNotAvailable = 511;
  static constexpr double kLonNotAvailable = 181.0;
  static constexpr double kLatNotAvailable = 91.0;
  static constexpr int kTimestampNotAvailable = 60;
  static constexpr int kRotNotAvailable = -128;
  /// ±127: turning faster than 5°/30 s but no turn indicator available —
  /// the direction is known, the magnitude is not.
  static constexpr int kRotNoTurnInfo = 127;
};

/// \brief Common position-report payload (types 1, 2, 3, 18, 19).
struct PositionReport {
  int message_type = 1;        ///< 1, 2, 3 (Class A) or 18, 19 (Class B)
  int repeat_indicator = 0;
  Mmsi mmsi = 0;
  NavigationStatus nav_status = NavigationStatus::kNotDefined;  ///< A only
  int rate_of_turn = AisSentinels::kRotNotAvailable;  ///< raw ROT_AIS, A only
  double sog_knots = AisSentinels::kSpeedNotAvailable;
  bool position_accurate = false;  ///< true = DGPS-quality (<10 m)
  GeoPoint position;
  double cog_deg = AisSentinels::kCourseNotAvailable;
  int true_heading = AisSentinels::kHeadingNotAvailable;
  int utc_second = AisSentinels::kTimestampNotAvailable;  ///< seconds 0..59
  int maneuver_indicator = 0;                             ///< A only
  bool raim = false;
  uint32_t radio_status = 0;

  /// Receiver-assigned arrival time (not part of the wire format).
  Timestamp received_at = kInvalidTimestamp;

  bool HasPosition() const { return position.IsValid(); }
  bool HasSpeed() const {
    return sog_knots < AisSentinels::kSpeedNotAvailable;
  }
  bool HasCourse() const {
    return cog_deg < AisSentinels::kCourseNotAvailable;
  }
  /// ROT_AIS in −126..126 carries a usable turn rate; −128 means "not
  /// available" and ±127 means "turning >5°/30 s, no turn indicator" —
  /// direction without magnitude, so both sentinels are excluded.
  bool HasTurnRate() const {
    return rate_of_turn > -AisSentinels::kRotNoTurnInfo &&
           rate_of_turn < AisSentinels::kRotNoTurnInfo;
  }
  /// ITU-R M.1371 rate-of-turn decoding: deg/min = sign · (ROT_AIS/4.733)².
  /// Only meaningful when HasTurnRate().
  double TurnRateDegPerMin() const {
    const double scaled = rate_of_turn / 4.733;
    const double magnitude = scaled * scaled;
    return rate_of_turn < 0 ? -magnitude : magnitude;
  }
};

/// \brief Base-station report (type 4): UTC reference + fixed position.
struct BaseStationReport {
  int repeat_indicator = 0;
  Mmsi mmsi = 0;
  int year = 0;    ///< 1..9999, 0 = N/A
  int month = 0;   ///< 1..12, 0 = N/A
  int day = 0;
  int hour = 24;   ///< 24 = N/A
  int minute = 60;
  int second = 60;
  bool position_accurate = false;
  GeoPoint position;
  int epfd_type = 0;
  bool raim = false;
  uint32_t radio_status = 0;
  Timestamp received_at = kInvalidTimestamp;
};

/// \brief Static and voyage-related data (type 5, Class A).
struct StaticVoyageData {
  int repeat_indicator = 0;
  Mmsi mmsi = 0;
  int ais_version = 0;
  uint32_t imo_number = 0;  ///< 0 = not available
  std::string call_sign;
  std::string name;
  int ship_type = 0;        ///< ITU 2-digit code
  int dim_to_bow_m = 0;
  int dim_to_stern_m = 0;
  int dim_to_port_m = 0;
  int dim_to_starboard_m = 0;
  int epfd_type = 0;
  int eta_month = 0;        ///< 0 = N/A
  int eta_day = 0;
  int eta_hour = 24;
  int eta_minute = 60;
  double draught_m = 0.0;
  std::string destination;
  bool dte = true;
  Timestamp received_at = kInvalidTimestamp;

  int LengthMetres() const { return dim_to_bow_m + dim_to_stern_m; }
  int BeamMetres() const { return dim_to_port_m + dim_to_starboard_m; }
};

/// \brief Extended Class-B report (type 19) adds static info to a position.
struct ExtendedClassBReport {
  PositionReport position_report;  ///< message_type == 19
  std::string name;
  int ship_type = 0;
  int dim_to_bow_m = 0;
  int dim_to_stern_m = 0;
  int dim_to_port_m = 0;
  int dim_to_starboard_m = 0;
  int epfd_type = 0;
  bool dte = true;
};

/// \brief Class-B static data (type 24), part A (name) or B (details).
struct StaticDataReport {
  int repeat_indicator = 0;
  Mmsi mmsi = 0;
  int part_number = 0;  ///< 0 = part A, 1 = part B
  // Part A
  std::string name;
  // Part B
  int ship_type = 0;
  std::string vendor_id;
  std::string call_sign;
  int dim_to_bow_m = 0;
  int dim_to_stern_m = 0;
  int dim_to_port_m = 0;
  int dim_to_starboard_m = 0;
  Timestamp received_at = kInvalidTimestamp;
};

/// \brief Any decoded AIS message.
using AisMessage =
    std::variant<PositionReport, BaseStationReport, StaticVoyageData,
                 ExtendedClassBReport, StaticDataReport>;

/// \brief The numeric message type of a decoded message.
int MessageTypeOf(const AisMessage& msg);

/// \brief The sender MMSI of a decoded message.
Mmsi MmsiOf(const AisMessage& msg);

}  // namespace marlin

#endif  // MARLIN_AIS_TYPES_H_
