#include "ais/types.h"

namespace marlin {

ShipCategory ShipTypeToCategory(int ship_type) {
  if (ship_type == 30) return ShipCategory::kFishing;
  if (ship_type == 31 || ship_type == 32 || ship_type == 52) {
    return ShipCategory::kTug;
  }
  if (ship_type == 35 || ship_type == 55) return ShipCategory::kLawEnforcement;
  if (ship_type == 36 || ship_type == 37) return ShipCategory::kPleasureCraft;
  const int decade = ship_type / 10;
  switch (decade) {
    case 4:
      return ShipCategory::kHighSpeedCraft;
    case 6:
      return ShipCategory::kPassenger;
    case 7:
      return ShipCategory::kCargo;
    case 8:
      return ShipCategory::kTanker;
    default:
      break;
  }
  if (ship_type == 0) return ShipCategory::kUnknown;
  return ShipCategory::kOther;
}

const char* ShipCategoryName(ShipCategory c) {
  switch (c) {
    case ShipCategory::kUnknown:
      return "unknown";
    case ShipCategory::kFishing:
      return "fishing";
    case ShipCategory::kTug:
      return "tug";
    case ShipCategory::kPassenger:
      return "passenger";
    case ShipCategory::kCargo:
      return "cargo";
    case ShipCategory::kTanker:
      return "tanker";
    case ShipCategory::kHighSpeedCraft:
      return "high-speed-craft";
    case ShipCategory::kPleasureCraft:
      return "pleasure-craft";
    case ShipCategory::kLawEnforcement:
      return "law-enforcement";
    case ShipCategory::kOther:
      return "other";
  }
  return "unknown";
}

int MessageTypeOf(const AisMessage& msg) {
  struct Visitor {
    int operator()(const PositionReport& m) const { return m.message_type; }
    int operator()(const BaseStationReport&) const { return 4; }
    int operator()(const StaticVoyageData&) const { return 5; }
    int operator()(const ExtendedClassBReport&) const { return 19; }
    int operator()(const StaticDataReport&) const { return 24; }
  };
  return std::visit(Visitor{}, msg);
}

Mmsi MmsiOf(const AisMessage& msg) {
  struct Visitor {
    Mmsi operator()(const PositionReport& m) const { return m.mmsi; }
    Mmsi operator()(const BaseStationReport& m) const { return m.mmsi; }
    Mmsi operator()(const StaticVoyageData& m) const { return m.mmsi; }
    Mmsi operator()(const ExtendedClassBReport& m) const {
      return m.position_report.mmsi;
    }
    Mmsi operator()(const StaticDataReport& m) const { return m.mmsi; }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace marlin
