#ifndef MARLIN_AIS_SIXBIT_H_
#define MARLIN_AIS_SIXBIT_H_

/// \file sixbit.h
/// \brief Bit-level packing for ITU-R M.1371 AIS payloads.
///
/// AIS messages are dense bitfields transported as 6-bit-armored ASCII in
/// NMEA AIVDM sentences. Two bit representations exist side by side:
///
///  * the **packed** form (`PackedBits` in `common/packed_bits.h`, 64-bit
///    words, MSB-first) used by the decode/encode hot path — de-armoring
///    lands six bits at a time directly into words and field extraction is
///    shift/mask;
///  * the **byte-per-bit** form (`BitWriter`/`BitReader` over a
///    `std::vector<uint8_t>` of 0/1) — the pre-packing implementation, kept
///    verbatim as the frozen reference the differential suites
///    (tests/packed_bits_test.cc, tests/decode_equivalence_test.cc) decode
///    against. New call sites should use the packed form.
///
/// Both `UnarmorPayloadInto` overloads share one error contract:
/// **untouched-or-complete** — on any failure (bad fill-bit count, illegal
/// armor character, payload shorter than its fill bits) the output buffer is
/// left exactly as the caller passed it; on success it holds exactly the
/// de-armored bits. Callers may therefore keep a pooled scratch buffer and
/// never observe a partially overwritten state.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/packed_bits.h"
#include "common/result.h"
#include "common/status.h"

namespace marlin {

/// \brief Append-only big-endian bit stream builder (byte-per-bit frozen
/// reference; hot paths use `PackedBitWriter`).
class BitWriter {
 public:
  /// \brief Appends the low `width` bits of `value`, MSB first. Width 1..32.
  void WriteUnsigned(uint32_t value, int width);

  /// \brief Appends a two's-complement signed field of `width` bits.
  void WriteSigned(int32_t value, int width);

  /// \brief Appends a string in the AIS 6-bit alphabet, padded/truncated to
  /// exactly `chars` characters ('@' = 0 pads the tail).
  void WriteString(std::string_view text, int chars);

  /// \brief Number of bits written so far.
  int size_bits() const { return static_cast<int>(bits_.size()); }

  /// \brief The accumulated bits (each element 0/1).
  const std::vector<uint8_t>& bits() const { return bits_; }

 private:
  std::vector<uint8_t> bits_;
};

/// \brief Sequential big-endian bit stream reader with bounds checking
/// (byte-per-bit frozen reference; hot paths use `PackedBitReader`).
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& bits) : bits_(bits) {}

  /// \brief Reads `width` bits as an unsigned value. Width 1..32.
  Result<uint32_t> ReadUnsigned(int width);

  /// \brief Reads `width` bits as a two's-complement signed value.
  Result<int32_t> ReadSigned(int width);

  /// \brief Reads `chars` characters of AIS 6-bit text; trailing '@' padding
  /// and trailing spaces are stripped.
  Result<std::string> ReadString(int chars);

  /// \brief Skips `width` bits (spare fields).
  Status Skip(int width);

  int remaining() const { return static_cast<int>(bits_.size()) - pos_; }
  int position() const { return pos_; }

 private:
  const std::vector<uint8_t>& bits_;
  int pos_ = 0;
};

/// \brief Converts raw bits to the ASCII payload alphabet used in AIVDM
/// sentences. `fill_bits` receives the number of zero bits appended to reach
/// a 6-bit boundary.
std::string ArmorBits(const std::vector<uint8_t>& bits, int* fill_bits);

/// \brief Packed-word armoring; produces the identical payload string and
/// fill count as the byte-per-bit overload for the same bit stream.
std::string ArmorBits(const PackedBits& bits, int* fill_bits);

/// \brief Converts an AIVDM payload back to raw bits; `fill_bits` trailing
/// bits are dropped. Fails on characters outside the armoring alphabet.
Result<std::vector<uint8_t>> UnarmorPayload(std::string_view payload,
                                            int fill_bits);

/// \brief Allocation-free de-armoring for the decode hot path (byte-per-bit
/// form): refills `*bits` (capacity is retained across calls, so a
/// caller-owned scratch vector makes the steady state heap-silent).
/// Untouched-or-complete: on any error `*bits` is left exactly as passed.
Status UnarmorPayloadInto(std::string_view payload, int fill_bits,
                          std::vector<uint8_t>* bits);

/// \brief Packed-word de-armoring for the decode hot path: lands six bits
/// per payload character directly into 64-bit words. Produces the identical
/// bit stream (and identical error statuses) as the byte-per-bit overload.
/// Untouched-or-complete: on any error `*bits` is left exactly as passed;
/// on success `*bits` is cleared and refilled (word capacity retained, so a
/// pooled scratch keeps the steady state allocation-free).
Status UnarmorPayloadInto(std::string_view payload, int fill_bits,
                          PackedBits* bits);

}  // namespace marlin

#endif  // MARLIN_AIS_SIXBIT_H_
