#ifndef MARLIN_AIS_SIXBIT_H_
#define MARLIN_AIS_SIXBIT_H_

/// \file sixbit.h
/// \brief Bit-level packing for ITU-R M.1371 AIS payloads.
///
/// AIS messages are dense bitfields transported as 6-bit-armored ASCII in
/// NMEA AIVDM sentences. `BitWriter`/`BitReader` handle arbitrary-width
/// big-endian fields, two's-complement signed fields, and the AIS 6-bit
/// string alphabet; the armoring functions convert between raw bits and the
/// ASCII payload characters.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace marlin {

/// \brief Append-only big-endian bit stream builder.
class BitWriter {
 public:
  /// \brief Appends the low `width` bits of `value`, MSB first. Width 1..32.
  void WriteUnsigned(uint32_t value, int width);

  /// \brief Appends a two's-complement signed field of `width` bits.
  void WriteSigned(int32_t value, int width);

  /// \brief Appends a string in the AIS 6-bit alphabet, padded/truncated to
  /// exactly `chars` characters ('@' = 0 pads the tail).
  void WriteString(std::string_view text, int chars);

  /// \brief Number of bits written so far.
  int size_bits() const { return static_cast<int>(bits_.size()); }

  /// \brief The accumulated bits (each element 0/1).
  const std::vector<uint8_t>& bits() const { return bits_; }

 private:
  std::vector<uint8_t> bits_;
};

/// \brief Sequential big-endian bit stream reader with bounds checking.
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& bits) : bits_(bits) {}

  /// \brief Reads `width` bits as an unsigned value. Width 1..32.
  Result<uint32_t> ReadUnsigned(int width);

  /// \brief Reads `width` bits as a two's-complement signed value.
  Result<int32_t> ReadSigned(int width);

  /// \brief Reads `chars` characters of AIS 6-bit text; trailing '@' padding
  /// and trailing spaces are stripped.
  Result<std::string> ReadString(int chars);

  /// \brief Skips `width` bits (spare fields).
  Status Skip(int width);

  int remaining() const { return static_cast<int>(bits_.size()) - pos_; }
  int position() const { return pos_; }

 private:
  const std::vector<uint8_t>& bits_;
  int pos_ = 0;
};

/// \brief Converts raw bits to the ASCII payload alphabet used in AIVDM
/// sentences. `fill_bits` receives the number of zero bits appended to reach
/// a 6-bit boundary.
std::string ArmorBits(const std::vector<uint8_t>& bits, int* fill_bits);

/// \brief Converts an AIVDM payload back to raw bits; `fill_bits` trailing
/// bits are dropped. Fails on characters outside the armoring alphabet.
Result<std::vector<uint8_t>> UnarmorPayload(std::string_view payload,
                                            int fill_bits);

/// \brief Allocation-free de-armoring for the decode hot path: clears and
/// refills `*bits` (capacity is retained across calls, so a caller-owned
/// scratch vector makes the steady state heap-silent).
Status UnarmorPayloadInto(std::string_view payload, int fill_bits,
                          std::vector<uint8_t>* bits);

/// \brief Maps a 6-bit value (0..63) to the AIS string alphabet character.
char SixBitToChar(uint32_t v);

/// \brief Maps an AIS text character to its 6-bit value; returns 0 ('@') for
/// characters outside the alphabet.
uint32_t CharToSixBit(char c);

}  // namespace marlin

#endif  // MARLIN_AIS_SIXBIT_H_
