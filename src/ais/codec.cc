#include "ais/codec.h"

#include "ais/messages.h"
#include "ais/sixbit.h"

namespace marlin {

std::optional<AisMessage> AisDecoder::Decode(std::string_view line,
                                             Timestamp received_at) {
  return Assemble(Parse(line, received_at));
}

ParsedLine AisDecoder::Parse(std::string_view line, Timestamp received_at,
                             uint64_t group_salt) {
  ParsedLine out;
  out.received_at = received_at;
  out.group_salt = group_salt;
  // Optional NMEA 4.0 TAG block: the remote receiver's timestamp is the
  // authoritative reception time (satellite feeds arrive minutes after the
  // remote receiver heard them).
  TagBlock tag;
  Result<std::string_view> stripped = StripTagBlockView(line, &tag);
  if (!stripped.ok()) return out;
  if (tag.receiver_time != kInvalidTimestamp) {
    out.received_at = tag.receiver_time;
  }
  Result<NmeaSentenceView> sentence = ParseSentenceView(*stripped);
  if (!sentence.ok()) return out;
  out.ok = true;
  out.sentence = *sentence;
  return out;
}

std::optional<AisMessage> AisDecoder::Assemble(const ParsedLine& parsed) {
  ++stats_.lines_in;
  if (!parsed.ok) {
    ++stats_.bad_sentences;
    return std::nullopt;
  }
  const Timestamp received_at = parsed.received_at;
  Result<std::optional<AivdmAssembler::CompletePayload>> assembled =
      assembler_.Add(parsed.sentence, received_at, parsed.group_salt);
  if (!assembled.ok()) {
    ++stats_.bad_sentences;
    return std::nullopt;
  }
  if (!assembled->has_value()) {
    ++stats_.pending_fragments;
    return std::nullopt;
  }
  const AivdmAssembler::CompletePayload& payload = **assembled;
  const Status unarmored =
      UnarmorPayloadInto(payload.payload, payload.fill_bits, &bits_scratch_);
  if (!unarmored.ok()) {
    ++stats_.bad_payloads;
    return std::nullopt;
  }
  return DecodeBitsAndStamp(bits_scratch_, received_at);
}

std::optional<AisMessage> AisDecoder::DecodePacked(const PackedBits& bits,
                                                   Timestamp received_at) {
  ++stats_.lines_in;
  return DecodeBitsAndStamp(bits, received_at);
}

std::optional<AisMessage> AisDecoder::DecodeBitsAndStamp(
    const PackedBits& bits, Timestamp received_at) {
  Result<AisMessage> msg = DecodeMessageBits(bits);
  if (!msg.ok()) {
    if (msg.status().IsNotImplemented()) {
      ++stats_.unsupported_types;
    } else {
      ++stats_.bad_payloads;
    }
    return std::nullopt;
  }
  AisMessage out = std::move(*msg);
  // Stamp receiver time on the payload types that carry it.
  std::visit(
      [received_at](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ExtendedClassBReport>) {
          m.position_report.received_at = received_at;
        } else {
          m.received_at = received_at;
        }
      },
      out);
  ++stats_.messages_out;
  return out;
}

Result<std::vector<std::string>> AisEncoder::Encode(const AisMessage& msg) {
  MARLIN_ASSIGN_OR_RETURN(PackedBits bits, EncodeMessagePacked(msg));
  int fill_bits = 0;
  const std::string payload = ArmorBits(bits, &fill_bits);

  std::vector<std::string> lines;
  const int n = static_cast<int>(payload.size());
  const int per_fragment = options_.max_payload_chars;
  const int fragments = (n + per_fragment - 1) / per_fragment;
  const int seq = fragments > 1 ? next_seq_id_ : -1;
  if (fragments > 1) next_seq_id_ = (next_seq_id_ + 1) % 10;

  for (int f = 0; f < fragments; ++f) {
    NmeaSentence s;
    s.talker = "AIVDM";
    s.fragment_count = fragments;
    s.fragment_number = f + 1;
    s.sequential_id = seq;
    s.channel = options_.channel;
    s.payload = payload.substr(static_cast<size_t>(f) * per_fragment,
                               per_fragment);
    s.fill_bits = (f == fragments - 1) ? fill_bits : 0;
    lines.push_back(FormatSentence(s));
  }
  return lines;
}

}  // namespace marlin
