#ifndef MARLIN_AIS_MESSAGES_H_
#define MARLIN_AIS_MESSAGES_H_

/// \file messages.h
/// \brief Bit-exact encoders/decoders for the supported ITU-R M.1371
/// message types. Encoding then decoding any supported message is lossless
/// up to the wire quantisation (0.1 kt SOG, 1/10000 min positions, ...).
///
/// The field layout logic is shared between two bit representations:
/// the packed-word form (`PackedBits`, the hot path — `AisDecoder` and
/// `AisEncoder` use only this) and the byte-per-bit form
/// (`std::vector<uint8_t>` of 0/1), whose extraction layer
/// (`BitReader`/`BitWriter`) is the frozen pre-packing implementation. The
/// differential suites decode every corpus payload through both and require
/// byte-identical messages, statuses, and counters.

#include <vector>

#include "ais/types.h"
#include "common/packed_bits.h"
#include "common/result.h"

namespace marlin {

/// \brief Decodes a packed-word payload into a typed AIS message (hot path).
///
/// Fails with Corruption for undersized payloads and NotImplemented for
/// message types outside the supported set.
Result<AisMessage> DecodeMessageBits(const PackedBits& bits);

/// \brief Byte-per-bit overload: identical results via the frozen
/// `BitReader` extraction layer (the differential suites' reference path).
Result<AisMessage> DecodeMessageBits(const std::vector<uint8_t>& bits);

/// \brief Encodes any supported message into packed words (hot path).
Result<PackedBits> EncodeMessagePacked(const AisMessage& msg);

/// \brief Encodes a position report (types 1/2/3 or 18) to bits.
Result<std::vector<uint8_t>> EncodePositionReport(const PositionReport& m);

/// \brief Encodes a base-station report (type 4) to bits.
Result<std::vector<uint8_t>> EncodeBaseStationReport(const BaseStationReport& m);

/// \brief Encodes static & voyage data (type 5) to bits.
Result<std::vector<uint8_t>> EncodeStaticVoyageData(const StaticVoyageData& m);

/// \brief Encodes an extended Class-B report (type 19) to bits.
Result<std::vector<uint8_t>> EncodeExtendedClassB(const ExtendedClassBReport& m);

/// \brief Encodes Class-B static data (type 24, part A or B) to bits.
Result<std::vector<uint8_t>> EncodeStaticDataReport(const StaticDataReport& m);

/// \brief Encodes any supported message to byte-per-bit form (the frozen
/// `BitWriter` layer; tests and tools — hot paths use `EncodeMessagePacked`).
Result<std::vector<uint8_t>> EncodeMessageBits(const AisMessage& msg);

}  // namespace marlin

#endif  // MARLIN_AIS_MESSAGES_H_
