#ifndef MARLIN_AIS_VALIDATION_H_
#define MARLIN_AIS_VALIDATION_H_

/// \file validation.h
/// \brief AIS data-quality assessment.
///
/// The paper (§1, citing Winkler [44]) reports that ~0.5 % of AIS static
/// data transmissions carry errors of some kind, and §4 motivates quality-
/// aware processing. This module implements the deterministic validity rules
/// (MMSI structure, IMO check digit, dimension plausibility, field
/// consistency) used by experiment E10.

#include <string>
#include <vector>

#include "ais/types.h"

namespace marlin {

/// \brief Kinds of static-data defects the assessor can flag.
enum class StaticDataDefect : uint8_t {
  kInvalidMmsi,        ///< not a 9-digit vessel MMSI (MID 201..775)
  kInvalidImoChecksum, ///< IMO number fails the weighted check digit
  kMissingName,        ///< empty or all-'@' name
  kDefaultDimensions,  ///< all dimension fields zero
  kImplausibleSize,    ///< length > 460 m or beam > 70 m
  kBadShipType,        ///< reserved/unused ITU code
  kBadEta,             ///< impossible ETA month/day/hour/minute combination
  kCallSignFormat,     ///< characters outside [A-Z0-9]
};

/// \brief Name of a defect kind for reports.
const char* StaticDataDefectName(StaticDataDefect d);

/// \brief True iff `mmsi` has 9 digits and a vessel-range MID prefix.
bool IsValidVesselMmsi(Mmsi mmsi);

/// \brief True iff `imo` passes the IMO check-digit rule
/// (sum of first 6 digits × weights 7..2, last digit of sum = digit 7).
bool IsValidImoNumber(uint32_t imo);

/// \brief Computes a valid IMO number from a 6-digit stem (test data helper).
uint32_t MakeImoNumber(uint32_t six_digit_stem);

/// \brief Checks a static & voyage report against all deterministic rules.
std::vector<StaticDataDefect> ValidateStaticData(const StaticVoyageData& m);

/// \brief Aggregated quality statistics over a message stream.
class QualityAssessor {
 public:
  struct Report {
    uint64_t static_messages = 0;
    uint64_t static_with_defects = 0;
    uint64_t defect_counts[8] = {0};
    uint64_t position_messages = 0;
    uint64_t invalid_positions = 0;   ///< lat/lon out of range or N/A
    uint64_t speed_not_available = 0;

    /// \brief Accumulates another assessor's counters (per-shard merge).
    void Merge(const Report& other) {
      static_messages += other.static_messages;
      static_with_defects += other.static_with_defects;
      for (int i = 0; i < 8; ++i) defect_counts[i] += other.defect_counts[i];
      position_messages += other.position_messages;
      invalid_positions += other.invalid_positions;
      speed_not_available += other.speed_not_available;
    }

    /// Fraction of static transmissions with at least one defect
    /// (paper benchmark: ~0.005).
    double StaticErrorRate() const {
      return static_messages == 0
                 ? 0.0
                 : static_cast<double>(static_with_defects) / static_messages;
    }
  };

  /// \brief Feeds one decoded message into the running assessment.
  void Observe(const AisMessage& msg);

  const Report& report() const { return report_; }

 private:
  Report report_;
};

}  // namespace marlin

#endif  // MARLIN_AIS_VALIDATION_H_
