#include "ais/messages.h"

#include <algorithm>
#include <cmath>

#include "ais/sixbit.h"

namespace marlin {
namespace {

// --- Wire quantisation helpers -------------------------------------------

// Longitude/latitude are signed fields in 1/10000 arc-minute.
int32_t QuantizeLon(double lon) {
  return static_cast<int32_t>(std::lround(lon * 600000.0));
}
int32_t QuantizeLat(double lat) {
  return static_cast<int32_t>(std::lround(lat * 600000.0));
}
double DequantizeLonLat(int32_t v) { return static_cast<double>(v) / 600000.0; }

// SOG in 0.1 knot, capped at 102.2; 1023 = not available.
uint32_t QuantizeSog(double knots) {
  if (knots >= AisSentinels::kSpeedNotAvailable) return 1023;
  return static_cast<uint32_t>(
      std::clamp(std::lround(knots * 10.0), 0l, 1022l));
}
double DequantizeSog(uint32_t v) {
  return v == 1023 ? AisSentinels::kSpeedNotAvailable : v / 10.0;
}

// COG in 0.1 degree; 3600 = not available.
uint32_t QuantizeCog(double deg) {
  if (deg >= AisSentinels::kCourseNotAvailable) return 3600;
  return static_cast<uint32_t>(std::clamp(std::lround(deg * 10.0), 0l, 3599l));
}
double DequantizeCog(uint32_t v) {
  return v >= 3600 ? AisSentinels::kCourseNotAvailable : v / 10.0;
}

struct CommonHeader {
  int type = 0;
  int repeat = 0;
  Mmsi mmsi = 0;
};

// The field layout below is templated over the reader/writer so the packed
// (`PackedBitReader`/`PackedBitWriter`) and frozen byte-per-bit
// (`BitReader`/`BitWriter`) paths decode and encode the exact same field
// sequence — the differential suites then pin the two *extraction layers*
// against each other over the full corpus.

template <typename Reader>
Result<CommonHeader> ReadHeader(Reader* r) {
  CommonHeader h;
  MARLIN_ASSIGN_OR_RETURN(uint32_t type, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t repeat, r->ReadUnsigned(2));
  MARLIN_ASSIGN_OR_RETURN(uint32_t mmsi, r->ReadUnsigned(30));
  h.type = static_cast<int>(type);
  h.repeat = static_cast<int>(repeat);
  h.mmsi = mmsi;
  return h;
}

// Packed fast path: the 38-bit common header in one word read. The split is
// bit-identical to the three field reads the generic template performs, and
// `DecodeMessageBits` has already guaranteed at least 38 bits.
Result<CommonHeader> ReadHeader(PackedBitReader* r) {
  MARLIN_ASSIGN_OR_RETURN(uint64_t v, r->ReadUnsigned(38));
  CommonHeader h;
  h.type = static_cast<int>(v >> 32);
  h.repeat = static_cast<int>((v >> 30) & 0x3u);
  h.mmsi = static_cast<Mmsi>(v & 0x3FFFFFFFu);
  return h;
}

template <typename Writer>
void WriteHeader(Writer* w, int type, int repeat, Mmsi mmsi) {
  w->WriteUnsigned(static_cast<uint32_t>(type), 6);
  w->WriteUnsigned(static_cast<uint32_t>(repeat), 2);
  w->WriteUnsigned(mmsi, 30);
}

// --- Decoders --------------------------------------------------------------

template <typename Reader>
Result<AisMessage> DecodeClassAPosition(const CommonHeader& h, Reader* r) {
  PositionReport m;
  m.message_type = h.type;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t status, r->ReadUnsigned(4));
  m.nav_status = static_cast<NavigationStatus>(status);
  MARLIN_ASSIGN_OR_RETURN(int32_t rot, r->ReadSigned(8));
  m.rate_of_turn = rot;
  MARLIN_ASSIGN_OR_RETURN(uint32_t sog, r->ReadUnsigned(10));
  m.sog_knots = DequantizeSog(sog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  m.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t cog, r->ReadUnsigned(12));
  m.cog_deg = DequantizeCog(cog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t hdg, r->ReadUnsigned(9));
  m.true_heading = static_cast<int>(hdg);
  MARLIN_ASSIGN_OR_RETURN(uint32_t ts, r->ReadUnsigned(6));
  m.utc_second = static_cast<int>(ts);
  MARLIN_ASSIGN_OR_RETURN(uint32_t man, r->ReadUnsigned(2));
  m.maneuver_indicator = static_cast<int>(man);
  MARLIN_RETURN_NOT_OK(r->Skip(3));  // spare
  MARLIN_ASSIGN_OR_RETURN(uint32_t raim, r->ReadUnsigned(1));
  m.raim = raim != 0;
  MARLIN_ASSIGN_OR_RETURN(uint32_t radio, r->ReadUnsigned(19));
  m.radio_status = radio;
  return AisMessage(m);
}

/// Sign-extends the low `width` bits of a wide-read field (identical to
/// `ReadSigned` on a reader positioned at the field).
inline int32_t SignExtendField(uint64_t raw, int width) {
  const uint64_t sign = uint64_t{1} << (width - 1);
  raw &= (uint64_t{1} << width) - 1;
  return static_cast<int32_t>(static_cast<int64_t>(raw ^ sign) -
                              static_cast<int64_t>(sign));
}

// Packed fast path for the dominant steady-state shape: the 130-bit
// position-report body in three wide word reads instead of thirteen field
// reads. Field boundaries and values are bit-identical to the generic
// template above (the corpus differential sweeps every truncation point of
// every type to prove it); any mid-body truncation fails with the same
// "bit stream exhausted" status the field-by-field path produces.
Result<AisMessage> DecodeClassAPosition(const CommonHeader& h,
                                        PackedBitReader* r) {
  PositionReport m;
  m.message_type = h.type;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  // status(4) rot(8) sog(10) acc(1) lon(28) = 51 bits
  MARLIN_ASSIGN_OR_RETURN(uint64_t a, r->ReadUnsigned(51));
  m.nav_status = static_cast<NavigationStatus>((a >> 47) & 0xF);
  m.rate_of_turn = SignExtendField(a >> 39, 8);
  m.sog_knots = DequantizeSog(static_cast<uint32_t>((a >> 29) & 0x3FF));
  m.position_accurate = ((a >> 28) & 1) != 0;
  const int32_t lon = SignExtendField(a, 28);
  // lat(27) cog(12) hdg(9) = 48 bits
  MARLIN_ASSIGN_OR_RETURN(uint64_t b, r->ReadUnsigned(48));
  const int32_t lat = SignExtendField(b >> 21, 27);
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  m.cog_deg = DequantizeCog(static_cast<uint32_t>((b >> 9) & 0xFFF));
  m.true_heading = static_cast<int>(b & 0x1FF);
  // ts(6) man(2) spare(3) raim(1) radio(19) = 31 bits
  MARLIN_ASSIGN_OR_RETURN(uint64_t c, r->ReadUnsigned(31));
  m.utc_second = static_cast<int>((c >> 25) & 0x3F);
  m.maneuver_indicator = static_cast<int>((c >> 23) & 0x3);
  m.raim = ((c >> 19) & 1) != 0;
  m.radio_status = static_cast<uint32_t>(c & 0x7FFFF);
  return AisMessage(m);
}

template <typename Reader>
Result<AisMessage> DecodeBaseStation(const CommonHeader& h, Reader* r) {
  BaseStationReport m;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t year, r->ReadUnsigned(14));
  MARLIN_ASSIGN_OR_RETURN(uint32_t month, r->ReadUnsigned(4));
  MARLIN_ASSIGN_OR_RETURN(uint32_t day, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t hour, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t minute, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t second, r->ReadUnsigned(6));
  m.year = static_cast<int>(year);
  m.month = static_cast<int>(month);
  m.day = static_cast<int>(day);
  m.hour = static_cast<int>(hour);
  m.minute = static_cast<int>(minute);
  m.second = static_cast<int>(second);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  m.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t epfd, r->ReadUnsigned(4));
  m.epfd_type = static_cast<int>(epfd);
  MARLIN_RETURN_NOT_OK(r->Skip(10));  // spare
  MARLIN_ASSIGN_OR_RETURN(uint32_t raim, r->ReadUnsigned(1));
  m.raim = raim != 0;
  MARLIN_ASSIGN_OR_RETURN(uint32_t radio, r->ReadUnsigned(19));
  m.radio_status = radio;
  return AisMessage(m);
}

template <typename Reader>
Result<AisMessage> DecodeStaticVoyage(const CommonHeader& h, Reader* r) {
  StaticVoyageData m;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t version, r->ReadUnsigned(2));
  m.ais_version = static_cast<int>(version);
  MARLIN_ASSIGN_OR_RETURN(uint32_t imo, r->ReadUnsigned(30));
  m.imo_number = imo;
  MARLIN_ASSIGN_OR_RETURN(m.call_sign, r->ReadString(7));
  MARLIN_ASSIGN_OR_RETURN(m.name, r->ReadString(20));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stype, r->ReadUnsigned(8));
  m.ship_type = static_cast<int>(stype);
  MARLIN_ASSIGN_OR_RETURN(uint32_t bow, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stern, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t port, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stbd, r->ReadUnsigned(6));
  m.dim_to_bow_m = static_cast<int>(bow);
  m.dim_to_stern_m = static_cast<int>(stern);
  m.dim_to_port_m = static_cast<int>(port);
  m.dim_to_starboard_m = static_cast<int>(stbd);
  MARLIN_ASSIGN_OR_RETURN(uint32_t epfd, r->ReadUnsigned(4));
  m.epfd_type = static_cast<int>(epfd);
  MARLIN_ASSIGN_OR_RETURN(uint32_t emonth, r->ReadUnsigned(4));
  MARLIN_ASSIGN_OR_RETURN(uint32_t eday, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t ehour, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t eminute, r->ReadUnsigned(6));
  m.eta_month = static_cast<int>(emonth);
  m.eta_day = static_cast<int>(eday);
  m.eta_hour = static_cast<int>(ehour);
  m.eta_minute = static_cast<int>(eminute);
  MARLIN_ASSIGN_OR_RETURN(uint32_t draught, r->ReadUnsigned(8));
  m.draught_m = draught / 10.0;
  MARLIN_ASSIGN_OR_RETURN(m.destination, r->ReadString(20));
  MARLIN_ASSIGN_OR_RETURN(uint32_t dte, r->ReadUnsigned(1));
  m.dte = dte == 0;  // wire: 0 = DTE available
  return AisMessage(m);
}

template <typename Reader>
Result<AisMessage> DecodeClassBPosition(const CommonHeader& h, Reader* r) {
  PositionReport m;
  m.message_type = 18;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_RETURN_NOT_OK(r->Skip(8));  // regional reserved
  MARLIN_ASSIGN_OR_RETURN(uint32_t sog, r->ReadUnsigned(10));
  m.sog_knots = DequantizeSog(sog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  m.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t cog, r->ReadUnsigned(12));
  m.cog_deg = DequantizeCog(cog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t hdg, r->ReadUnsigned(9));
  m.true_heading = static_cast<int>(hdg);
  MARLIN_ASSIGN_OR_RETURN(uint32_t ts, r->ReadUnsigned(6));
  m.utc_second = static_cast<int>(ts);
  MARLIN_RETURN_NOT_OK(r->Skip(2));  // regional reserved
  MARLIN_RETURN_NOT_OK(r->Skip(5));  // CS/display/DSC/band/msg22 flags
  MARLIN_RETURN_NOT_OK(r->Skip(1));  // assigned
  MARLIN_ASSIGN_OR_RETURN(uint32_t raim, r->ReadUnsigned(1));
  m.raim = raim != 0;
  MARLIN_ASSIGN_OR_RETURN(uint32_t radio, r->ReadUnsigned(20));
  m.radio_status = radio;
  return AisMessage(m);
}

// Packed fast path for the Class-B body (type 18), mirroring the Class-A
// wide-read layout above.
Result<AisMessage> DecodeClassBPosition(const CommonHeader& h,
                                        PackedBitReader* r) {
  PositionReport m;
  m.message_type = 18;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  // reserved(8) sog(10) acc(1) lon(28) = 47 bits
  MARLIN_ASSIGN_OR_RETURN(uint64_t a, r->ReadUnsigned(47));
  m.sog_knots = DequantizeSog(static_cast<uint32_t>((a >> 29) & 0x3FF));
  m.position_accurate = ((a >> 28) & 1) != 0;
  const int32_t lon = SignExtendField(a, 28);
  // lat(27) cog(12) hdg(9) = 48 bits
  MARLIN_ASSIGN_OR_RETURN(uint64_t b, r->ReadUnsigned(48));
  const int32_t lat = SignExtendField(b >> 21, 27);
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  m.cog_deg = DequantizeCog(static_cast<uint32_t>((b >> 9) & 0xFFF));
  m.true_heading = static_cast<int>(b & 0x1FF);
  // ts(6) reserved(2) flags(5) assigned(1) raim(1) radio(20) = 35 bits
  MARLIN_ASSIGN_OR_RETURN(uint64_t c, r->ReadUnsigned(35));
  m.utc_second = static_cast<int>((c >> 29) & 0x3F);
  m.raim = ((c >> 20) & 1) != 0;
  m.radio_status = static_cast<uint32_t>(c & 0xFFFFF);
  return AisMessage(m);
}

template <typename Reader>
Result<AisMessage> DecodeExtendedClassBMsg(const CommonHeader& h, Reader* r) {
  ExtendedClassBReport m;
  PositionReport& p = m.position_report;
  p.message_type = 19;
  p.repeat_indicator = h.repeat;
  p.mmsi = h.mmsi;
  MARLIN_RETURN_NOT_OK(r->Skip(8));  // regional reserved
  MARLIN_ASSIGN_OR_RETURN(uint32_t sog, r->ReadUnsigned(10));
  p.sog_knots = DequantizeSog(sog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  p.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  p.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t cog, r->ReadUnsigned(12));
  p.cog_deg = DequantizeCog(cog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t hdg, r->ReadUnsigned(9));
  p.true_heading = static_cast<int>(hdg);
  MARLIN_ASSIGN_OR_RETURN(uint32_t ts, r->ReadUnsigned(6));
  p.utc_second = static_cast<int>(ts);
  MARLIN_RETURN_NOT_OK(r->Skip(4));  // regional reserved
  MARLIN_ASSIGN_OR_RETURN(m.name, r->ReadString(20));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stype, r->ReadUnsigned(8));
  m.ship_type = static_cast<int>(stype);
  MARLIN_ASSIGN_OR_RETURN(uint32_t bow, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stern, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t port, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stbd, r->ReadUnsigned(6));
  m.dim_to_bow_m = static_cast<int>(bow);
  m.dim_to_stern_m = static_cast<int>(stern);
  m.dim_to_port_m = static_cast<int>(port);
  m.dim_to_starboard_m = static_cast<int>(stbd);
  MARLIN_ASSIGN_OR_RETURN(uint32_t epfd, r->ReadUnsigned(4));
  m.epfd_type = static_cast<int>(epfd);
  MARLIN_RETURN_NOT_OK(r->Skip(1));  // raim
  MARLIN_ASSIGN_OR_RETURN(uint32_t dte, r->ReadUnsigned(1));
  m.dte = dte == 0;
  return AisMessage(m);
}

template <typename Reader>
Result<AisMessage> DecodeStaticData(const CommonHeader& h, Reader* r) {
  StaticDataReport m;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t part, r->ReadUnsigned(2));
  m.part_number = static_cast<int>(part);
  if (m.part_number == 0) {
    MARLIN_ASSIGN_OR_RETURN(m.name, r->ReadString(20));
    return AisMessage(m);
  }
  if (m.part_number != 1) {
    return Status::Corruption("type 24 part number must be 0 or 1");
  }
  MARLIN_ASSIGN_OR_RETURN(uint32_t stype, r->ReadUnsigned(8));
  m.ship_type = static_cast<int>(stype);
  MARLIN_ASSIGN_OR_RETURN(m.vendor_id, r->ReadString(3));
  MARLIN_RETURN_NOT_OK(r->Skip(4));   // unit model code
  MARLIN_RETURN_NOT_OK(r->Skip(20));  // serial number
  MARLIN_ASSIGN_OR_RETURN(m.call_sign, r->ReadString(7));
  MARLIN_ASSIGN_OR_RETURN(uint32_t bow, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stern, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t port, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stbd, r->ReadUnsigned(6));
  m.dim_to_bow_m = static_cast<int>(bow);
  m.dim_to_stern_m = static_cast<int>(stern);
  m.dim_to_port_m = static_cast<int>(port);
  m.dim_to_starboard_m = static_cast<int>(stbd);
  return AisMessage(m);
}

template <typename Reader>
Result<AisMessage> DecodeWithReader(Reader* r) {
  MARLIN_ASSIGN_OR_RETURN(CommonHeader h, ReadHeader(r));
  switch (h.type) {
    case 1:
    case 2:
    case 3:
      return DecodeClassAPosition(h, r);
    case 4:
      return DecodeBaseStation(h, r);
    case 5:
      return DecodeStaticVoyage(h, r);
    case 18:
      return DecodeClassBPosition(h, r);
    case 19:
      return DecodeExtendedClassBMsg(h, r);
    case 24:
      return DecodeStaticData(h, r);
    default:
      return Status::NotImplemented("unsupported AIS message type " +
                                    std::to_string(h.type));
  }
}

// --- Encoders --------------------------------------------------------------

template <typename Writer>
Status EncodePositionReportInto(const PositionReport& m, Writer* w) {
  if (m.message_type == 18) {
    WriteHeader(w, 18, m.repeat_indicator, m.mmsi);
    w->WriteUnsigned(0, 8);  // regional reserved
    w->WriteUnsigned(QuantizeSog(m.sog_knots), 10);
    w->WriteUnsigned(m.position_accurate ? 1 : 0, 1);
    w->WriteSigned(QuantizeLon(m.position.lon), 28);
    w->WriteSigned(QuantizeLat(m.position.lat), 27);
    w->WriteUnsigned(QuantizeCog(m.cog_deg), 12);
    w->WriteUnsigned(static_cast<uint32_t>(m.true_heading), 9);
    w->WriteUnsigned(static_cast<uint32_t>(m.utc_second), 6);
    w->WriteUnsigned(0, 2);  // regional reserved
    w->WriteUnsigned(0b11000, 5);  // CS unit, no display, no DSC
    w->WriteUnsigned(0, 1);  // not assigned
    w->WriteUnsigned(m.raim ? 1 : 0, 1);
    w->WriteUnsigned(m.radio_status & 0xFFFFF, 20);
    return Status::OK();
  }
  if (m.message_type < 1 || m.message_type > 3) {
    return Status::Invalid("position report type must be 1, 2, 3, or 18");
  }
  WriteHeader(w, m.message_type, m.repeat_indicator, m.mmsi);
  w->WriteUnsigned(static_cast<uint32_t>(m.nav_status), 4);
  w->WriteSigned(m.rate_of_turn, 8);
  w->WriteUnsigned(QuantizeSog(m.sog_knots), 10);
  w->WriteUnsigned(m.position_accurate ? 1 : 0, 1);
  w->WriteSigned(QuantizeLon(m.position.lon), 28);
  w->WriteSigned(QuantizeLat(m.position.lat), 27);
  w->WriteUnsigned(QuantizeCog(m.cog_deg), 12);
  w->WriteUnsigned(static_cast<uint32_t>(m.true_heading), 9);
  w->WriteUnsigned(static_cast<uint32_t>(m.utc_second), 6);
  w->WriteUnsigned(static_cast<uint32_t>(m.maneuver_indicator), 2);
  w->WriteUnsigned(0, 3);  // spare
  w->WriteUnsigned(m.raim ? 1 : 0, 1);
  w->WriteUnsigned(m.radio_status & 0x7FFFF, 19);
  return Status::OK();
}

template <typename Writer>
Status EncodeBaseStationReportInto(const BaseStationReport& m, Writer* w) {
  WriteHeader(w, 4, m.repeat_indicator, m.mmsi);
  w->WriteUnsigned(static_cast<uint32_t>(m.year), 14);
  w->WriteUnsigned(static_cast<uint32_t>(m.month), 4);
  w->WriteUnsigned(static_cast<uint32_t>(m.day), 5);
  w->WriteUnsigned(static_cast<uint32_t>(m.hour), 5);
  w->WriteUnsigned(static_cast<uint32_t>(m.minute), 6);
  w->WriteUnsigned(static_cast<uint32_t>(m.second), 6);
  w->WriteUnsigned(m.position_accurate ? 1 : 0, 1);
  w->WriteSigned(QuantizeLon(m.position.lon), 28);
  w->WriteSigned(QuantizeLat(m.position.lat), 27);
  w->WriteUnsigned(static_cast<uint32_t>(m.epfd_type), 4);
  w->WriteUnsigned(0, 10);  // spare
  w->WriteUnsigned(m.raim ? 1 : 0, 1);
  w->WriteUnsigned(m.radio_status & 0x7FFFF, 19);
  return Status::OK();
}

template <typename Writer>
Status EncodeStaticVoyageDataInto(const StaticVoyageData& m, Writer* w) {
  WriteHeader(w, 5, m.repeat_indicator, m.mmsi);
  w->WriteUnsigned(static_cast<uint32_t>(m.ais_version), 2);
  w->WriteUnsigned(m.imo_number, 30);
  w->WriteString(m.call_sign, 7);
  w->WriteString(m.name, 20);
  w->WriteUnsigned(static_cast<uint32_t>(m.ship_type), 8);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_bow_m), 9);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_stern_m), 9);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_port_m), 6);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_starboard_m), 6);
  w->WriteUnsigned(static_cast<uint32_t>(m.epfd_type), 4);
  w->WriteUnsigned(static_cast<uint32_t>(m.eta_month), 4);
  w->WriteUnsigned(static_cast<uint32_t>(m.eta_day), 5);
  w->WriteUnsigned(static_cast<uint32_t>(m.eta_hour), 5);
  w->WriteUnsigned(static_cast<uint32_t>(m.eta_minute), 6);
  w->WriteUnsigned(
      static_cast<uint32_t>(std::clamp(std::lround(m.draught_m * 10), 0l, 255l)),
      8);
  w->WriteString(m.destination, 20);
  w->WriteUnsigned(m.dte ? 0 : 1, 1);  // wire: 0 = DTE available
  w->WriteUnsigned(0, 1);              // spare
  return Status::OK();
}

template <typename Writer>
Status EncodeExtendedClassBInto(const ExtendedClassBReport& m, Writer* w) {
  const PositionReport& p = m.position_report;
  WriteHeader(w, 19, p.repeat_indicator, p.mmsi);
  w->WriteUnsigned(0, 8);  // regional reserved
  w->WriteUnsigned(QuantizeSog(p.sog_knots), 10);
  w->WriteUnsigned(p.position_accurate ? 1 : 0, 1);
  w->WriteSigned(QuantizeLon(p.position.lon), 28);
  w->WriteSigned(QuantizeLat(p.position.lat), 27);
  w->WriteUnsigned(QuantizeCog(p.cog_deg), 12);
  w->WriteUnsigned(static_cast<uint32_t>(p.true_heading), 9);
  w->WriteUnsigned(static_cast<uint32_t>(p.utc_second), 6);
  w->WriteUnsigned(0, 4);  // regional reserved
  w->WriteString(m.name, 20);
  w->WriteUnsigned(static_cast<uint32_t>(m.ship_type), 8);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_bow_m), 9);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_stern_m), 9);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_port_m), 6);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_starboard_m), 6);
  w->WriteUnsigned(static_cast<uint32_t>(m.epfd_type), 4);
  w->WriteUnsigned(0, 1);  // raim
  w->WriteUnsigned(m.dte ? 0 : 1, 1);
  w->WriteUnsigned(0, 1);  // assigned-mode flag
  w->WriteUnsigned(0, 4);  // spare
  return Status::OK();
}

template <typename Writer>
Status EncodeStaticDataReportInto(const StaticDataReport& m, Writer* w) {
  WriteHeader(w, 24, m.repeat_indicator, m.mmsi);
  w->WriteUnsigned(static_cast<uint32_t>(m.part_number), 2);
  if (m.part_number == 0) {
    w->WriteString(m.name, 20);
    return Status::OK();
  }
  if (m.part_number != 1) {
    return Status::Invalid("type 24 part number must be 0 or 1");
  }
  w->WriteUnsigned(static_cast<uint32_t>(m.ship_type), 8);
  w->WriteString(m.vendor_id, 3);
  w->WriteUnsigned(0, 4);   // unit model code
  w->WriteUnsigned(0, 20);  // serial number
  w->WriteString(m.call_sign, 7);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_bow_m), 9);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_stern_m), 9);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_port_m), 6);
  w->WriteUnsigned(static_cast<uint32_t>(m.dim_to_starboard_m), 6);
  w->WriteUnsigned(0, 6);  // spare
  return Status::OK();
}

template <typename Writer>
Status EncodeMessageInto(const AisMessage& msg, Writer* w) {
  return std::visit(
      [w](const auto& m) -> Status {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, PositionReport>) {
          return EncodePositionReportInto(m, w);
        } else if constexpr (std::is_same_v<T, BaseStationReport>) {
          return EncodeBaseStationReportInto(m, w);
        } else if constexpr (std::is_same_v<T, StaticVoyageData>) {
          return EncodeStaticVoyageDataInto(m, w);
        } else if constexpr (std::is_same_v<T, ExtendedClassBReport>) {
          return EncodeExtendedClassBInto(m, w);
        } else {
          return EncodeStaticDataReportInto(m, w);
        }
      },
      msg);
}

}  // namespace

Result<AisMessage> DecodeMessageBits(const PackedBits& bits) {
  if (bits.size_bits() < 38) {
    return Status::Corruption("AIS payload shorter than common header");
  }
  PackedBitReader r(bits);
  return DecodeWithReader(&r);
}

Result<AisMessage> DecodeMessageBits(const std::vector<uint8_t>& bits) {
  if (bits.size() < 38) {
    return Status::Corruption("AIS payload shorter than common header");
  }
  BitReader r(bits);
  return DecodeWithReader(&r);
}

Result<PackedBits> EncodeMessagePacked(const AisMessage& msg) {
  PackedBitWriter w;
  MARLIN_RETURN_NOT_OK(EncodeMessageInto(msg, &w));
  return std::move(w).TakeBits();
}

Result<std::vector<uint8_t>> EncodePositionReport(const PositionReport& m) {
  BitWriter w;
  MARLIN_RETURN_NOT_OK(EncodePositionReportInto(m, &w));
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeBaseStationReport(
    const BaseStationReport& m) {
  BitWriter w;
  MARLIN_RETURN_NOT_OK(EncodeBaseStationReportInto(m, &w));
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeStaticVoyageData(const StaticVoyageData& m) {
  BitWriter w;
  MARLIN_RETURN_NOT_OK(EncodeStaticVoyageDataInto(m, &w));
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeExtendedClassB(
    const ExtendedClassBReport& m) {
  BitWriter w;
  MARLIN_RETURN_NOT_OK(EncodeExtendedClassBInto(m, &w));
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeStaticDataReport(const StaticDataReport& m) {
  BitWriter w;
  MARLIN_RETURN_NOT_OK(EncodeStaticDataReportInto(m, &w));
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeMessageBits(const AisMessage& msg) {
  BitWriter w;
  MARLIN_RETURN_NOT_OK(EncodeMessageInto(msg, &w));
  return w.bits();
}

}  // namespace marlin
