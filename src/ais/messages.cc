#include "ais/messages.h"

#include <algorithm>
#include <cmath>

#include "ais/sixbit.h"

namespace marlin {
namespace {

// --- Wire quantisation helpers -------------------------------------------

// Longitude/latitude are signed fields in 1/10000 arc-minute.
int32_t QuantizeLon(double lon) {
  return static_cast<int32_t>(std::lround(lon * 600000.0));
}
int32_t QuantizeLat(double lat) {
  return static_cast<int32_t>(std::lround(lat * 600000.0));
}
double DequantizeLonLat(int32_t v) { return static_cast<double>(v) / 600000.0; }

// SOG in 0.1 knot, capped at 102.2; 1023 = not available.
uint32_t QuantizeSog(double knots) {
  if (knots >= AisSentinels::kSpeedNotAvailable) return 1023;
  return static_cast<uint32_t>(
      std::clamp(std::lround(knots * 10.0), 0l, 1022l));
}
double DequantizeSog(uint32_t v) {
  return v == 1023 ? AisSentinels::kSpeedNotAvailable : v / 10.0;
}

// COG in 0.1 degree; 3600 = not available.
uint32_t QuantizeCog(double deg) {
  if (deg >= AisSentinels::kCourseNotAvailable) return 3600;
  return static_cast<uint32_t>(std::clamp(std::lround(deg * 10.0), 0l, 3599l));
}
double DequantizeCog(uint32_t v) {
  return v >= 3600 ? AisSentinels::kCourseNotAvailable : v / 10.0;
}

struct CommonHeader {
  int type = 0;
  int repeat = 0;
  Mmsi mmsi = 0;
};

Result<CommonHeader> ReadHeader(BitReader* r) {
  CommonHeader h;
  MARLIN_ASSIGN_OR_RETURN(uint32_t type, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t repeat, r->ReadUnsigned(2));
  MARLIN_ASSIGN_OR_RETURN(uint32_t mmsi, r->ReadUnsigned(30));
  h.type = static_cast<int>(type);
  h.repeat = static_cast<int>(repeat);
  h.mmsi = mmsi;
  return h;
}

void WriteHeader(BitWriter* w, int type, int repeat, Mmsi mmsi) {
  w->WriteUnsigned(static_cast<uint32_t>(type), 6);
  w->WriteUnsigned(static_cast<uint32_t>(repeat), 2);
  w->WriteUnsigned(mmsi, 30);
}

// --- Decoders --------------------------------------------------------------

Result<AisMessage> DecodeClassAPosition(const CommonHeader& h, BitReader* r) {
  PositionReport m;
  m.message_type = h.type;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t status, r->ReadUnsigned(4));
  m.nav_status = static_cast<NavigationStatus>(status);
  MARLIN_ASSIGN_OR_RETURN(int32_t rot, r->ReadSigned(8));
  m.rate_of_turn = rot;
  MARLIN_ASSIGN_OR_RETURN(uint32_t sog, r->ReadUnsigned(10));
  m.sog_knots = DequantizeSog(sog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  m.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t cog, r->ReadUnsigned(12));
  m.cog_deg = DequantizeCog(cog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t hdg, r->ReadUnsigned(9));
  m.true_heading = static_cast<int>(hdg);
  MARLIN_ASSIGN_OR_RETURN(uint32_t ts, r->ReadUnsigned(6));
  m.utc_second = static_cast<int>(ts);
  MARLIN_ASSIGN_OR_RETURN(uint32_t man, r->ReadUnsigned(2));
  m.maneuver_indicator = static_cast<int>(man);
  MARLIN_RETURN_NOT_OK(r->Skip(3));  // spare
  MARLIN_ASSIGN_OR_RETURN(uint32_t raim, r->ReadUnsigned(1));
  m.raim = raim != 0;
  MARLIN_ASSIGN_OR_RETURN(uint32_t radio, r->ReadUnsigned(19));
  m.radio_status = radio;
  return AisMessage(m);
}

Result<AisMessage> DecodeBaseStation(const CommonHeader& h, BitReader* r) {
  BaseStationReport m;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t year, r->ReadUnsigned(14));
  MARLIN_ASSIGN_OR_RETURN(uint32_t month, r->ReadUnsigned(4));
  MARLIN_ASSIGN_OR_RETURN(uint32_t day, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t hour, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t minute, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t second, r->ReadUnsigned(6));
  m.year = static_cast<int>(year);
  m.month = static_cast<int>(month);
  m.day = static_cast<int>(day);
  m.hour = static_cast<int>(hour);
  m.minute = static_cast<int>(minute);
  m.second = static_cast<int>(second);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  m.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t epfd, r->ReadUnsigned(4));
  m.epfd_type = static_cast<int>(epfd);
  MARLIN_RETURN_NOT_OK(r->Skip(10));  // spare
  MARLIN_ASSIGN_OR_RETURN(uint32_t raim, r->ReadUnsigned(1));
  m.raim = raim != 0;
  MARLIN_ASSIGN_OR_RETURN(uint32_t radio, r->ReadUnsigned(19));
  m.radio_status = radio;
  return AisMessage(m);
}

Result<AisMessage> DecodeStaticVoyage(const CommonHeader& h, BitReader* r) {
  StaticVoyageData m;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t version, r->ReadUnsigned(2));
  m.ais_version = static_cast<int>(version);
  MARLIN_ASSIGN_OR_RETURN(uint32_t imo, r->ReadUnsigned(30));
  m.imo_number = imo;
  MARLIN_ASSIGN_OR_RETURN(m.call_sign, r->ReadString(7));
  MARLIN_ASSIGN_OR_RETURN(m.name, r->ReadString(20));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stype, r->ReadUnsigned(8));
  m.ship_type = static_cast<int>(stype);
  MARLIN_ASSIGN_OR_RETURN(uint32_t bow, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stern, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t port, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stbd, r->ReadUnsigned(6));
  m.dim_to_bow_m = static_cast<int>(bow);
  m.dim_to_stern_m = static_cast<int>(stern);
  m.dim_to_port_m = static_cast<int>(port);
  m.dim_to_starboard_m = static_cast<int>(stbd);
  MARLIN_ASSIGN_OR_RETURN(uint32_t epfd, r->ReadUnsigned(4));
  m.epfd_type = static_cast<int>(epfd);
  MARLIN_ASSIGN_OR_RETURN(uint32_t emonth, r->ReadUnsigned(4));
  MARLIN_ASSIGN_OR_RETURN(uint32_t eday, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t ehour, r->ReadUnsigned(5));
  MARLIN_ASSIGN_OR_RETURN(uint32_t eminute, r->ReadUnsigned(6));
  m.eta_month = static_cast<int>(emonth);
  m.eta_day = static_cast<int>(eday);
  m.eta_hour = static_cast<int>(ehour);
  m.eta_minute = static_cast<int>(eminute);
  MARLIN_ASSIGN_OR_RETURN(uint32_t draught, r->ReadUnsigned(8));
  m.draught_m = draught / 10.0;
  MARLIN_ASSIGN_OR_RETURN(m.destination, r->ReadString(20));
  MARLIN_ASSIGN_OR_RETURN(uint32_t dte, r->ReadUnsigned(1));
  m.dte = dte == 0;  // wire: 0 = DTE available
  return AisMessage(m);
}

Result<AisMessage> DecodeClassBPosition(const CommonHeader& h, BitReader* r) {
  PositionReport m;
  m.message_type = 18;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_RETURN_NOT_OK(r->Skip(8));  // regional reserved
  MARLIN_ASSIGN_OR_RETURN(uint32_t sog, r->ReadUnsigned(10));
  m.sog_knots = DequantizeSog(sog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  m.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  m.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t cog, r->ReadUnsigned(12));
  m.cog_deg = DequantizeCog(cog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t hdg, r->ReadUnsigned(9));
  m.true_heading = static_cast<int>(hdg);
  MARLIN_ASSIGN_OR_RETURN(uint32_t ts, r->ReadUnsigned(6));
  m.utc_second = static_cast<int>(ts);
  MARLIN_RETURN_NOT_OK(r->Skip(2));  // regional reserved
  MARLIN_RETURN_NOT_OK(r->Skip(5));  // CS/display/DSC/band/msg22 flags
  MARLIN_RETURN_NOT_OK(r->Skip(1));  // assigned
  MARLIN_ASSIGN_OR_RETURN(uint32_t raim, r->ReadUnsigned(1));
  m.raim = raim != 0;
  MARLIN_ASSIGN_OR_RETURN(uint32_t radio, r->ReadUnsigned(20));
  m.radio_status = radio;
  return AisMessage(m);
}

Result<AisMessage> DecodeExtendedClassBMsg(const CommonHeader& h,
                                           BitReader* r) {
  ExtendedClassBReport m;
  PositionReport& p = m.position_report;
  p.message_type = 19;
  p.repeat_indicator = h.repeat;
  p.mmsi = h.mmsi;
  MARLIN_RETURN_NOT_OK(r->Skip(8));  // regional reserved
  MARLIN_ASSIGN_OR_RETURN(uint32_t sog, r->ReadUnsigned(10));
  p.sog_knots = DequantizeSog(sog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t acc, r->ReadUnsigned(1));
  p.position_accurate = acc != 0;
  MARLIN_ASSIGN_OR_RETURN(int32_t lon, r->ReadSigned(28));
  MARLIN_ASSIGN_OR_RETURN(int32_t lat, r->ReadSigned(27));
  p.position = GeoPoint(DequantizeLonLat(lat), DequantizeLonLat(lon));
  MARLIN_ASSIGN_OR_RETURN(uint32_t cog, r->ReadUnsigned(12));
  p.cog_deg = DequantizeCog(cog);
  MARLIN_ASSIGN_OR_RETURN(uint32_t hdg, r->ReadUnsigned(9));
  p.true_heading = static_cast<int>(hdg);
  MARLIN_ASSIGN_OR_RETURN(uint32_t ts, r->ReadUnsigned(6));
  p.utc_second = static_cast<int>(ts);
  MARLIN_RETURN_NOT_OK(r->Skip(4));  // regional reserved
  MARLIN_ASSIGN_OR_RETURN(m.name, r->ReadString(20));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stype, r->ReadUnsigned(8));
  m.ship_type = static_cast<int>(stype);
  MARLIN_ASSIGN_OR_RETURN(uint32_t bow, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stern, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t port, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stbd, r->ReadUnsigned(6));
  m.dim_to_bow_m = static_cast<int>(bow);
  m.dim_to_stern_m = static_cast<int>(stern);
  m.dim_to_port_m = static_cast<int>(port);
  m.dim_to_starboard_m = static_cast<int>(stbd);
  MARLIN_ASSIGN_OR_RETURN(uint32_t epfd, r->ReadUnsigned(4));
  m.epfd_type = static_cast<int>(epfd);
  MARLIN_RETURN_NOT_OK(r->Skip(1));  // raim
  MARLIN_ASSIGN_OR_RETURN(uint32_t dte, r->ReadUnsigned(1));
  m.dte = dte == 0;
  return AisMessage(m);
}

Result<AisMessage> DecodeStaticData(const CommonHeader& h, BitReader* r) {
  StaticDataReport m;
  m.repeat_indicator = h.repeat;
  m.mmsi = h.mmsi;
  MARLIN_ASSIGN_OR_RETURN(uint32_t part, r->ReadUnsigned(2));
  m.part_number = static_cast<int>(part);
  if (m.part_number == 0) {
    MARLIN_ASSIGN_OR_RETURN(m.name, r->ReadString(20));
    return AisMessage(m);
  }
  if (m.part_number != 1) {
    return Status::Corruption("type 24 part number must be 0 or 1");
  }
  MARLIN_ASSIGN_OR_RETURN(uint32_t stype, r->ReadUnsigned(8));
  m.ship_type = static_cast<int>(stype);
  MARLIN_ASSIGN_OR_RETURN(m.vendor_id, r->ReadString(3));
  MARLIN_RETURN_NOT_OK(r->Skip(4));   // unit model code
  MARLIN_RETURN_NOT_OK(r->Skip(20));  // serial number
  MARLIN_ASSIGN_OR_RETURN(m.call_sign, r->ReadString(7));
  MARLIN_ASSIGN_OR_RETURN(uint32_t bow, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stern, r->ReadUnsigned(9));
  MARLIN_ASSIGN_OR_RETURN(uint32_t port, r->ReadUnsigned(6));
  MARLIN_ASSIGN_OR_RETURN(uint32_t stbd, r->ReadUnsigned(6));
  m.dim_to_bow_m = static_cast<int>(bow);
  m.dim_to_stern_m = static_cast<int>(stern);
  m.dim_to_port_m = static_cast<int>(port);
  m.dim_to_starboard_m = static_cast<int>(stbd);
  return AisMessage(m);
}

}  // namespace

Result<AisMessage> DecodeMessageBits(const std::vector<uint8_t>& bits) {
  if (bits.size() < 38) {
    return Status::Corruption("AIS payload shorter than common header");
  }
  BitReader r(bits);
  MARLIN_ASSIGN_OR_RETURN(CommonHeader h, ReadHeader(&r));
  switch (h.type) {
    case 1:
    case 2:
    case 3:
      return DecodeClassAPosition(h, &r);
    case 4:
      return DecodeBaseStation(h, &r);
    case 5:
      return DecodeStaticVoyage(h, &r);
    case 18:
      return DecodeClassBPosition(h, &r);
    case 19:
      return DecodeExtendedClassBMsg(h, &r);
    case 24:
      return DecodeStaticData(h, &r);
    default:
      return Status::NotImplemented("unsupported AIS message type " +
                                    std::to_string(h.type));
  }
}

Result<std::vector<uint8_t>> EncodePositionReport(const PositionReport& m) {
  BitWriter w;
  if (m.message_type == 18) {
    WriteHeader(&w, 18, m.repeat_indicator, m.mmsi);
    w.WriteUnsigned(0, 8);  // regional reserved
    w.WriteUnsigned(QuantizeSog(m.sog_knots), 10);
    w.WriteUnsigned(m.position_accurate ? 1 : 0, 1);
    w.WriteSigned(QuantizeLon(m.position.lon), 28);
    w.WriteSigned(QuantizeLat(m.position.lat), 27);
    w.WriteUnsigned(QuantizeCog(m.cog_deg), 12);
    w.WriteUnsigned(static_cast<uint32_t>(m.true_heading), 9);
    w.WriteUnsigned(static_cast<uint32_t>(m.utc_second), 6);
    w.WriteUnsigned(0, 2);  // regional reserved
    w.WriteUnsigned(0b11000, 5);  // CS unit, no display, no DSC
    w.WriteUnsigned(0, 1);  // not assigned
    w.WriteUnsigned(m.raim ? 1 : 0, 1);
    w.WriteUnsigned(m.radio_status & 0xFFFFF, 20);
    return w.bits();
  }
  if (m.message_type < 1 || m.message_type > 3) {
    return Status::Invalid("position report type must be 1, 2, 3, or 18");
  }
  WriteHeader(&w, m.message_type, m.repeat_indicator, m.mmsi);
  w.WriteUnsigned(static_cast<uint32_t>(m.nav_status), 4);
  w.WriteSigned(m.rate_of_turn, 8);
  w.WriteUnsigned(QuantizeSog(m.sog_knots), 10);
  w.WriteUnsigned(m.position_accurate ? 1 : 0, 1);
  w.WriteSigned(QuantizeLon(m.position.lon), 28);
  w.WriteSigned(QuantizeLat(m.position.lat), 27);
  w.WriteUnsigned(QuantizeCog(m.cog_deg), 12);
  w.WriteUnsigned(static_cast<uint32_t>(m.true_heading), 9);
  w.WriteUnsigned(static_cast<uint32_t>(m.utc_second), 6);
  w.WriteUnsigned(static_cast<uint32_t>(m.maneuver_indicator), 2);
  w.WriteUnsigned(0, 3);  // spare
  w.WriteUnsigned(m.raim ? 1 : 0, 1);
  w.WriteUnsigned(m.radio_status & 0x7FFFF, 19);
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeBaseStationReport(
    const BaseStationReport& m) {
  BitWriter w;
  WriteHeader(&w, 4, m.repeat_indicator, m.mmsi);
  w.WriteUnsigned(static_cast<uint32_t>(m.year), 14);
  w.WriteUnsigned(static_cast<uint32_t>(m.month), 4);
  w.WriteUnsigned(static_cast<uint32_t>(m.day), 5);
  w.WriteUnsigned(static_cast<uint32_t>(m.hour), 5);
  w.WriteUnsigned(static_cast<uint32_t>(m.minute), 6);
  w.WriteUnsigned(static_cast<uint32_t>(m.second), 6);
  w.WriteUnsigned(m.position_accurate ? 1 : 0, 1);
  w.WriteSigned(QuantizeLon(m.position.lon), 28);
  w.WriteSigned(QuantizeLat(m.position.lat), 27);
  w.WriteUnsigned(static_cast<uint32_t>(m.epfd_type), 4);
  w.WriteUnsigned(0, 10);  // spare
  w.WriteUnsigned(m.raim ? 1 : 0, 1);
  w.WriteUnsigned(m.radio_status & 0x7FFFF, 19);
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeStaticVoyageData(const StaticVoyageData& m) {
  BitWriter w;
  WriteHeader(&w, 5, m.repeat_indicator, m.mmsi);
  w.WriteUnsigned(static_cast<uint32_t>(m.ais_version), 2);
  w.WriteUnsigned(m.imo_number, 30);
  w.WriteString(m.call_sign, 7);
  w.WriteString(m.name, 20);
  w.WriteUnsigned(static_cast<uint32_t>(m.ship_type), 8);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_bow_m), 9);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_stern_m), 9);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_port_m), 6);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_starboard_m), 6);
  w.WriteUnsigned(static_cast<uint32_t>(m.epfd_type), 4);
  w.WriteUnsigned(static_cast<uint32_t>(m.eta_month), 4);
  w.WriteUnsigned(static_cast<uint32_t>(m.eta_day), 5);
  w.WriteUnsigned(static_cast<uint32_t>(m.eta_hour), 5);
  w.WriteUnsigned(static_cast<uint32_t>(m.eta_minute), 6);
  w.WriteUnsigned(
      static_cast<uint32_t>(std::clamp(std::lround(m.draught_m * 10), 0l, 255l)),
      8);
  w.WriteString(m.destination, 20);
  w.WriteUnsigned(m.dte ? 0 : 1, 1);  // wire: 0 = DTE available
  w.WriteUnsigned(0, 1);              // spare
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeExtendedClassB(
    const ExtendedClassBReport& m) {
  const PositionReport& p = m.position_report;
  BitWriter w;
  WriteHeader(&w, 19, p.repeat_indicator, p.mmsi);
  w.WriteUnsigned(0, 8);  // regional reserved
  w.WriteUnsigned(QuantizeSog(p.sog_knots), 10);
  w.WriteUnsigned(p.position_accurate ? 1 : 0, 1);
  w.WriteSigned(QuantizeLon(p.position.lon), 28);
  w.WriteSigned(QuantizeLat(p.position.lat), 27);
  w.WriteUnsigned(QuantizeCog(p.cog_deg), 12);
  w.WriteUnsigned(static_cast<uint32_t>(p.true_heading), 9);
  w.WriteUnsigned(static_cast<uint32_t>(p.utc_second), 6);
  w.WriteUnsigned(0, 4);  // regional reserved
  w.WriteString(m.name, 20);
  w.WriteUnsigned(static_cast<uint32_t>(m.ship_type), 8);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_bow_m), 9);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_stern_m), 9);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_port_m), 6);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_starboard_m), 6);
  w.WriteUnsigned(static_cast<uint32_t>(m.epfd_type), 4);
  w.WriteUnsigned(0, 1);  // raim
  w.WriteUnsigned(m.dte ? 0 : 1, 1);
  w.WriteUnsigned(0, 1);  // assigned-mode flag
  w.WriteUnsigned(0, 4);  // spare
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeStaticDataReport(const StaticDataReport& m) {
  BitWriter w;
  WriteHeader(&w, 24, m.repeat_indicator, m.mmsi);
  w.WriteUnsigned(static_cast<uint32_t>(m.part_number), 2);
  if (m.part_number == 0) {
    w.WriteString(m.name, 20);
    return w.bits();
  }
  if (m.part_number != 1) {
    return Status::Invalid("type 24 part number must be 0 or 1");
  }
  w.WriteUnsigned(static_cast<uint32_t>(m.ship_type), 8);
  w.WriteString(m.vendor_id, 3);
  w.WriteUnsigned(0, 4);   // unit model code
  w.WriteUnsigned(0, 20);  // serial number
  w.WriteString(m.call_sign, 7);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_bow_m), 9);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_stern_m), 9);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_port_m), 6);
  w.WriteUnsigned(static_cast<uint32_t>(m.dim_to_starboard_m), 6);
  w.WriteUnsigned(0, 6);  // spare
  return w.bits();
}

Result<std::vector<uint8_t>> EncodeMessageBits(const AisMessage& msg) {
  struct Visitor {
    Result<std::vector<uint8_t>> operator()(const PositionReport& m) const {
      return EncodePositionReport(m);
    }
    Result<std::vector<uint8_t>> operator()(const BaseStationReport& m) const {
      return EncodeBaseStationReport(m);
    }
    Result<std::vector<uint8_t>> operator()(const StaticVoyageData& m) const {
      return EncodeStaticVoyageData(m);
    }
    Result<std::vector<uint8_t>> operator()(
        const ExtendedClassBReport& m) const {
      return EncodeExtendedClassB(m);
    }
    Result<std::vector<uint8_t>> operator()(const StaticDataReport& m) const {
      return EncodeStaticDataReport(m);
    }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace marlin
