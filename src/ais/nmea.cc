#include "ais/nmea.h"

#include <cstdio>

#include "common/strings.h"

namespace marlin {

uint8_t NmeaChecksum(const std::string& body) {
  uint8_t sum = 0;
  for (char c : body) sum ^= static_cast<uint8_t>(c);
  return sum;
}

std::string FormatTagBlock(Timestamp receiver_time) {
  // The `c:` parameter carries integer seconds per NMEA 4.0.
  std::string body = "c:" + std::to_string(receiver_time / kMillisPerSecond);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "*%02X", NmeaChecksum(body));
  return "\\" + body + buf + "\\";
}

Result<std::string> StripTagBlock(const std::string& line, TagBlock* tag) {
  if (line.empty() || line[0] != '\\') return line;
  const size_t end = line.find('\\', 1);
  if (end == std::string::npos) {
    return Status::Corruption("unterminated TAG block");
  }
  const std::string block = line.substr(1, end - 1);
  const size_t star = block.rfind('*');
  if (star == std::string::npos || star + 3 > block.size()) {
    return Status::Corruption("TAG block missing checksum");
  }
  const std::string body = block.substr(0, star);
  unsigned int expected = 0;
  if (std::sscanf(block.c_str() + star + 1, "%2X", &expected) != 1 ||
      NmeaChecksum(body) != static_cast<uint8_t>(expected)) {
    return Status::Corruption("TAG block checksum mismatch");
  }
  if (tag != nullptr) {
    for (const std::string& field : Split(body, ',')) {
      if (StartsWith(field, "c:")) {
        int64_t seconds = 0;
        if (ParseInt64(field.substr(2), &seconds)) {
          // Values above 1e12 are already milliseconds (providers vary).
          tag->receiver_time = seconds > 1000000000000ll
                                   ? seconds
                                   : seconds * kMillisPerSecond;
        }
      } else if (StartsWith(field, "s:")) {
        tag->source = field.substr(2);
      }
    }
  }
  return line.substr(end + 1);
}

std::string FormatSentence(const NmeaSentence& s) {
  std::string body = s.talker;
  body += ',';
  body += std::to_string(s.fragment_count);
  body += ',';
  body += std::to_string(s.fragment_number);
  body += ',';
  if (s.sequential_id >= 0) body += std::to_string(s.sequential_id);
  body += ',';
  if (s.channel != '\0') body += s.channel;
  body += ',';
  body += s.payload;
  body += ',';
  body += std::to_string(s.fill_bits);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "*%02X", NmeaChecksum(body));
  return "!" + body + buf;
}

Result<NmeaSentence> ParseSentence(const std::string& raw) {
  std::string line(Trim(raw));
  if (line.size() < 10 || line[0] != '!') {
    return Status::Corruption("not an NMEA sentence: missing '!'");
  }
  const size_t star = line.rfind('*');
  if (star == std::string::npos || star + 3 > line.size()) {
    return Status::Corruption("missing NMEA checksum");
  }
  const std::string body = line.substr(1, star - 1);
  const std::string cksum_hex = line.substr(star + 1, 2);
  unsigned int expected = 0;
  if (std::sscanf(cksum_hex.c_str(), "%2X", &expected) != 1) {
    return Status::Corruption("malformed NMEA checksum field");
  }
  if (NmeaChecksum(body) != static_cast<uint8_t>(expected)) {
    return Status::Corruption("NMEA checksum mismatch");
  }

  const std::vector<std::string> fields = Split(body, ',');
  if (fields.size() != 7) {
    return Status::Corruption("AIVDM sentence must have 7 fields");
  }
  NmeaSentence s;
  s.talker = fields[0];
  if (s.talker != "AIVDM" && s.talker != "AIVDO") {
    return Status::Corruption("unsupported talker: " + s.talker);
  }
  int64_t v = 0;
  if (!ParseInt64(fields[1], &v) || v < 1 || v > 9) {
    return Status::Corruption("bad fragment count");
  }
  s.fragment_count = static_cast<int>(v);
  if (!ParseInt64(fields[2], &v) || v < 1 || v > s.fragment_count) {
    return Status::Corruption("bad fragment number");
  }
  s.fragment_number = static_cast<int>(v);
  if (fields[3].empty()) {
    s.sequential_id = -1;
  } else if (ParseInt64(fields[3], &v) && v >= 0 && v <= 9) {
    s.sequential_id = static_cast<int>(v);
  } else {
    return Status::Corruption("bad sequential message id");
  }
  s.channel = fields[4].empty() ? '\0' : fields[4][0];
  s.payload = fields[5];
  if (s.payload.empty()) return Status::Corruption("empty payload");
  if (!ParseInt64(fields[6], &v) || v < 0 || v > 5) {
    return Status::Corruption("bad fill bits");
  }
  s.fill_bits = static_cast<int>(v);
  if (s.fragment_count > 1 && s.sequential_id < 0) {
    return Status::Corruption("multi-fragment sentence without sequential id");
  }
  return s;
}

Result<std::optional<AivdmAssembler::CompletePayload>> AivdmAssembler::Add(
    const NmeaSentence& s, Timestamp now) {
  if (s.fragment_count == 1) {
    CompletePayload done;
    done.payload = s.payload;
    done.fill_bits = s.fill_bits;
    done.channel = s.channel;
    return std::optional<CompletePayload>(std::move(done));
  }

  EvictExpired(now);
  const GroupKey key{s.sequential_id, s.channel, s.fragment_count};
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (pending_.size() >= options_.max_pending_groups) {
      // Drop the oldest group to bound memory under loss.
      auto oldest = pending_.begin();
      for (auto g = pending_.begin(); g != pending_.end(); ++g) {
        if (g->second.first_seen < oldest->second.first_seen) oldest = g;
      }
      pending_.erase(oldest);
    }
    Group group;
    group.fragments.resize(s.fragment_count);
    group.first_seen = now;
    group.channel = s.channel;
    it = pending_.emplace(key, std::move(group)).first;
  }
  Group& group = it->second;
  std::string& slot = group.fragments[s.fragment_number - 1];
  if (!slot.empty()) {
    // Duplicate fragment (VHF repeats); restart the group with this one.
    slot = s.payload;
  } else {
    slot = s.payload;
    ++group.received;
  }
  if (s.fragment_number == s.fragment_count) group.fill_bits = s.fill_bits;

  if (group.received == s.fragment_count) {
    CompletePayload done;
    for (const auto& f : group.fragments) done.payload += f;
    done.fill_bits = group.fill_bits;
    done.channel = group.channel;
    pending_.erase(it);
    return std::optional<CompletePayload>(std::move(done));
  }
  return std::optional<CompletePayload>(std::nullopt);
}

size_t AivdmAssembler::EvictExpired(Timestamp now) {
  size_t evicted = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.first_seen > options_.timeout_ms) {
      it = pending_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace marlin
