#include "ais/nmea.h"

#include <charconv>
#include <cstdio>
#include <limits>

#include "common/strings.h"

namespace marlin {

namespace {

/// Appends a decimal integer without the temporary `std::to_string` makes.
void AppendInt(std::string* out, int64_t value) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, res.ptr);
}

}  // namespace

uint8_t NmeaChecksum(std::string_view body) {
  uint8_t sum = 0;
  for (char c : body) sum ^= static_cast<uint8_t>(c);
  return sum;
}

std::string FormatTagBlock(Timestamp receiver_time) {
  // The `c:` parameter carries integer seconds per NMEA 4.0.
  std::string body = "c:";
  AppendInt(&body, receiver_time / kMillisPerSecond);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "*%02X", NmeaChecksum(body));
  std::string out;
  out.reserve(body.size() + 5);
  out += '\\';
  out += body;
  out += buf;
  out += '\\';
  return out;
}

Result<std::string_view> StripTagBlockView(std::string_view line,
                                           TagBlock* tag) {
  if (line.empty() || line[0] != '\\') return line;
  const size_t end = line.find('\\', 1);
  if (end == std::string_view::npos) {
    return Status::Corruption("unterminated TAG block");
  }
  const std::string_view block = line.substr(1, end - 1);
  const size_t star = block.rfind('*');
  if (star == std::string_view::npos || star + 3 > block.size()) {
    return Status::Corruption("TAG block missing checksum");
  }
  const std::string_view body = block.substr(0, star);
  unsigned int expected = 0;
  if (!ParseHexByte(block.substr(star + 1), &expected) ||
      NmeaChecksum(body) != static_cast<uint8_t>(expected)) {
    return Status::Corruption("TAG block checksum mismatch");
  }
  if (tag != nullptr) {
    ForEachField(body, ',', [tag](std::string_view field) {
      if (StartsWith(field, "c:")) {
        int64_t seconds = 0;
        if (ParseInt64(field.substr(2), &seconds)) {
          // Values above 1e12 are already milliseconds (providers vary).
          tag->receiver_time = seconds > 1000000000000ll
                                   ? seconds
                                   : seconds * kMillisPerSecond;
        }
      } else if (StartsWith(field, "s:")) {
        tag->source = field.substr(2);
      }
    });
  }
  return line.substr(end + 1);
}

Result<std::string> StripTagBlock(const std::string& line, TagBlock* tag) {
  MARLIN_ASSIGN_OR_RETURN(std::string_view rest, StripTagBlockView(line, tag));
  return std::string(rest);
}

std::string FormatSentence(const NmeaSentence& s) {
  std::string out;
  // talker + 6 commas + 4 small ints + channel + "!...*hh" trimmings.
  out.reserve(s.talker.size() + s.payload.size() + 20);
  out += '!';
  out += s.talker;
  out += ',';
  AppendInt(&out, s.fragment_count);
  out += ',';
  AppendInt(&out, s.fragment_number);
  out += ',';
  if (s.sequential_id >= 0) AppendInt(&out, s.sequential_id);
  out += ',';
  if (s.channel != '\0') out += s.channel;
  out += ',';
  out += s.payload;
  out += ',';
  AppendInt(&out, s.fill_bits);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "*%02X",
                NmeaChecksum(std::string_view(out).substr(1)));
  out += buf;
  return out;
}

Result<NmeaSentenceView> ParseSentenceView(std::string_view raw) {
  const std::string_view line = Trim(raw);
  if (line.size() < 10 || line[0] != '!') {
    return Status::Corruption("not an NMEA sentence: missing '!'");
  }
  const size_t star = line.rfind('*');
  if (star == std::string_view::npos || star + 3 > line.size()) {
    return Status::Corruption("missing NMEA checksum");
  }
  const std::string_view body = line.substr(1, star - 1);
  unsigned int expected = 0;
  if (!ParseHexByte(line.substr(star + 1, 2), &expected)) {
    return Status::Corruption("malformed NMEA checksum field");
  }
  if (NmeaChecksum(body) != static_cast<uint8_t>(expected)) {
    return Status::Corruption("NMEA checksum mismatch");
  }

  // Tokenize in place: an AIVDM sentence has exactly 7 comma-separated
  // fields (empty fields kept).
  std::array<std::string_view, 7> fields;
  size_t count = 0;
  ForEachField(body, ',', [&fields, &count](std::string_view field) {
    if (count < fields.size()) fields[count] = field;
    ++count;
  });
  if (count != 7) {
    return Status::Corruption("AIVDM sentence must have 7 fields");
  }
  NmeaSentenceView s;
  s.talker = fields[0];
  if (s.talker != "AIVDM" && s.talker != "AIVDO") {
    return Status::Corruption("unsupported talker: " + std::string(s.talker));
  }
  int64_t v = 0;
  if (!ParseInt64(fields[1], &v) || v < 1 || v > 9) {
    return Status::Corruption("bad fragment count");
  }
  s.fragment_count = static_cast<int>(v);
  if (!ParseInt64(fields[2], &v) || v < 1 || v > s.fragment_count) {
    return Status::Corruption("bad fragment number");
  }
  s.fragment_number = static_cast<int>(v);
  if (fields[3].empty()) {
    s.sequential_id = -1;
  } else if (ParseInt64(fields[3], &v) && v >= 0 && v <= 9) {
    s.sequential_id = static_cast<int>(v);
  } else {
    return Status::Corruption("bad sequential message id");
  }
  s.channel = fields[4].empty() ? '\0' : fields[4][0];
  s.payload = fields[5];
  if (s.payload.empty()) return Status::Corruption("empty payload");
  if (!ParseInt64(fields[6], &v) || v < 0 || v > 5) {
    return Status::Corruption("bad fill bits");
  }
  s.fill_bits = static_cast<int>(v);
  if (s.fragment_count > 1 && s.sequential_id < 0) {
    return Status::Corruption("multi-fragment sentence without sequential id");
  }
  return s;
}

Result<NmeaSentence> ParseSentence(std::string_view line) {
  MARLIN_ASSIGN_OR_RETURN(NmeaSentenceView view, ParseSentenceView(line));
  NmeaSentence s;
  s.talker.assign(view.talker);
  s.fragment_count = view.fragment_count;
  s.fragment_number = view.fragment_number;
  s.sequential_id = view.sequential_id;
  s.channel = view.channel;
  s.payload.assign(view.payload);
  s.fill_bits = view.fill_bits;
  return s;
}

Result<std::optional<AivdmAssembler::CompletePayload>> AivdmAssembler::Add(
    const NmeaSentenceView& s, Timestamp now, uint64_t group_salt) {
  if (s.fragment_count == 1) {
    return std::optional<CompletePayload>(
        CompletePayload{s.payload, s.fill_bits, s.channel});
  }
  constexpr int kMaxFragments =
      static_cast<int>(std::tuple_size<decltype(Group::frag_off)>::value);
  if (s.fragment_count > kMaxFragments || s.fragment_number < 1 ||
      s.fragment_number > s.fragment_count) {
    return Status::Corruption("inconsistent fragment numbering");
  }

  EvictExpired(now);
  const uint64_t key = GroupKeyOf(s, group_salt);
  Group* group = pending_.Find(key);
  if (group == nullptr) {
    if (pending_.size() >= options_.max_pending_groups) {
      // Drop the oldest group to bound memory under loss (ties broken by
      // smallest key, the deterministic choice regardless of table layout).
      uint64_t oldest_key = 0;
      Timestamp oldest_seen = std::numeric_limits<Timestamp>::max();
      pending_.ForEach([&](uint64_t k, const Group& g) {
        if (g.first_seen < oldest_seen ||
            (g.first_seen == oldest_seen && k < oldest_key)) {
          oldest_seen = g.first_seen;
          oldest_key = k;
        }
      });
      pending_.Erase(oldest_key);
    }
    // Recycle the slot's arena capacity (TryEmplaceWith clear, not V{}):
    // a steady multi-fragment rate reuses warmed group buffers.
    group = pending_
                .TryEmplaceWith(key,
                                [](Group& g) {
                                  g.buf.clear();
                                  g.frag_off.fill(0);
                                  g.frag_len.fill(0);
                                  g.received_mask = 0;
                                  g.received = 0;
                                  g.fill_bits = 0;
                                  g.channel = 'A';
                                  g.first_seen = 0;
                                })
                .first;
    group->first_seen = now;
    group->channel = s.channel;
  }
  const int idx = s.fragment_number - 1;
  const uint16_t bit = static_cast<uint16_t>(1u << idx);
  if ((group->received_mask & bit) != 0) {
    // Duplicate fragment (VHF repeats): replace the existing span without
    // leaking the old bytes, so a repeat flood cannot grow the arena.
    // Equal-or-shorter repeats overwrite in place; a longer repeat (rare)
    // compacts the arena, dropping the stale span.
    if (s.payload.size() <= group->frag_len[idx]) {
      group->buf.replace(group->frag_off[idx], s.payload.size(), s.payload);
      group->frag_len[idx] = static_cast<uint32_t>(s.payload.size());
    } else {
      assembly_buf_.clear();  // scratch; any prior returned view is dead
      for (int f = 0; f < kMaxFragments; ++f) {
        if (f == idx || (group->received_mask & (1u << f)) == 0) continue;
        const uint32_t off = group->frag_off[f];
        const uint32_t len = group->frag_len[f];
        group->frag_off[f] = static_cast<uint32_t>(assembly_buf_.size());
        assembly_buf_.append(group->buf, off, len);
      }
      group->frag_off[idx] = static_cast<uint32_t>(assembly_buf_.size());
      group->frag_len[idx] = static_cast<uint32_t>(s.payload.size());
      assembly_buf_.append(s.payload);
      group->buf.swap(assembly_buf_);
    }
  } else {
    group->frag_off[idx] = static_cast<uint32_t>(group->buf.size());
    group->frag_len[idx] = static_cast<uint32_t>(s.payload.size());
    group->buf.append(s.payload);
    group->received_mask |= bit;
    ++group->received;
  }
  if (s.fragment_number == s.fragment_count) group->fill_bits = s.fill_bits;

  if (group->received == s.fragment_count) {
    assembly_buf_.clear();
    for (int f = 0; f < s.fragment_count; ++f) {
      assembly_buf_.append(group->buf, group->frag_off[f], group->frag_len[f]);
    }
    CompletePayload done{std::string_view(assembly_buf_), group->fill_bits,
                         group->channel};
    pending_.Erase(key);
    return std::optional<CompletePayload>(done);
  }
  return std::optional<CompletePayload>(std::nullopt);
}

Result<std::optional<AivdmAssembler::CompletePayload>> AivdmAssembler::Add(
    const NmeaSentence& s, Timestamp now, uint64_t group_salt) {
  NmeaSentenceView view;
  view.talker = s.talker;
  view.fragment_count = s.fragment_count;
  view.fragment_number = s.fragment_number;
  view.sequential_id = s.sequential_id;
  view.channel = s.channel;
  view.payload = s.payload;
  view.fill_bits = s.fill_bits;
  return Add(view, now, group_salt);
}

size_t AivdmAssembler::EvictExpired(Timestamp now) {
  evict_scratch_.clear();
  pending_.ForEach([this, now](uint64_t key, const Group& group) {
    if (now - group.first_seen > options_.timeout_ms) {
      evict_scratch_.push_back(key);
    }
  });
  for (uint64_t key : evict_scratch_) pending_.Erase(key);
  return evict_scratch_.size();
}

}  // namespace marlin
