#ifndef MARLIN_AIS_NMEA_H_
#define MARLIN_AIS_NMEA_H_

/// \file nmea.h
/// \brief NMEA 0183 transport layer for AIS: AIVDM sentence parsing,
/// checksum verification, and multi-fragment message assembly.
///
/// The parse layer is the per-line inner loop of every ingest worker, so it
/// comes in two forms:
///  * a zero-copy form (`NmeaSentenceView`, `ParseSentenceView`,
///    `StripTagBlockView`) whose outputs are `std::string_view`s into the
///    caller's line buffer — no heap allocation per line — used by
///    `AisDecoder` and the pipelines;
///  * an owning form (`NmeaSentence`, `ParseSentence`, `StripTagBlock`)
///    for callers that keep sentences around (encoder, tests), implemented
///    as a thin materializing wrapper over the view form.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/time.h"

namespace marlin {

/// \brief One parsed !AIVDM / !AIVDO sentence (owning form).
struct NmeaSentence {
  std::string talker = "AIVDM";  ///< "AIVDM" (received) or "AIVDO" (own ship)
  int fragment_count = 1;
  int fragment_number = 1;
  int sequential_id = -1;        ///< -1 when the field is empty
  char channel = 'A';            ///< 'A', 'B', or '\0' when empty
  std::string payload;           ///< armored 6-bit payload
  int fill_bits = 0;
};

/// \brief Zero-copy view of one parsed sentence. `talker` and `payload`
/// point into the line buffer handed to `ParseSentenceView`; the view is
/// valid only while that buffer is.
struct NmeaSentenceView {
  std::string_view talker = "AIVDM";
  int fragment_count = 1;
  int fragment_number = 1;
  int sequential_id = -1;
  char channel = 'A';
  std::string_view payload;
  int fill_bits = 0;
};

/// \brief Computes the NMEA checksum (XOR of bytes between '!'/'$' and '*').
uint8_t NmeaChecksum(std::string_view body);

/// \brief NMEA 4.0 TAG block data relevant to AIS feeds.
///
/// Satellite and networked AIS providers prepend `\c:unixtime*hh\` blocks
/// carrying the time of reception at the *remote* receiver — without it the
/// shore system cannot recover event time for multi-minute-delayed messages
/// (paper §1/§2.5 latency challenge).
struct TagBlock {
  /// Remote reception time (epoch ms); kInvalidTimestamp when absent.
  Timestamp receiver_time = kInvalidTimestamp;
  /// Source identifier (`s:` field), empty when absent.
  std::string source;
};

/// \brief Renders a TAG block prefix `\c:<seconds>*hh\` for a sentence.
std::string FormatTagBlock(Timestamp receiver_time);

/// \brief Zero-copy TAG block strip: returns a view of the remainder (the
/// sentence proper) into `line`'s buffer and fills `tag` when a valid block
/// is present. Malformed blocks yield Corruption. Allocation-free except
/// for a rare `s:` source-id copy into `tag`.
Result<std::string_view> StripTagBlockView(std::string_view line,
                                           TagBlock* tag);

/// \brief Owning wrapper over `StripTagBlockView`.
Result<std::string> StripTagBlock(const std::string& line, TagBlock* tag);

/// \brief Renders a sentence as a full "!AIVDM,...*hh" line.
std::string FormatSentence(const NmeaSentence& s);

/// \brief Zero-copy parse + validation of one NMEA line (checksum, field
/// count, ranges). The returned views alias `line`'s buffer.
Result<NmeaSentenceView> ParseSentenceView(std::string_view line);

/// \brief Owning wrapper over `ParseSentenceView`.
Result<NmeaSentence> ParseSentence(std::string_view line);

/// \brief Reassembles multi-fragment AIVDM messages.
///
/// Feed sentences in arrival order; when a message is complete the combined
/// payload is returned. Incomplete groups are evicted after
/// `Options::timeout_ms` of arrival time to bound memory (matching receiver
/// practice for lossy VHF links).
class AivdmAssembler {
 public:
  struct Options {
    DurationMs timeout_ms = 30 * kMillisPerSecond;
    size_t max_pending_groups = 1024;
  };

  /// \brief A fully reassembled payload ready for bit-level decoding.
  /// `payload` aliases either the sentence handed to the completing `Add`
  /// (single-fragment case) or the assembler's internal scratch
  /// (multi-fragment case); it is valid until the next `Add` call or until
  /// the source sentence's buffer dies, whichever comes first.
  struct CompletePayload {
    std::string_view payload;  ///< concatenated armored payload
    int fill_bits = 0;         ///< fill bits of the *last* fragment
    char channel = 'A';
  };

  AivdmAssembler() : AivdmAssembler(Options()) {}
  explicit AivdmAssembler(const Options& options) : options_(options) {}

  /// \brief Adds one sentence. Returns a payload when it completes a
  /// message, an empty optional while a group is pending, or an error for
  /// inconsistent fragments. Single-fragment sentences (the steady-state
  /// bulk of an AIS feed) pass through without touching the heap.
  ///
  /// `group_salt` isolates reassembly namespaces: fragments only join a
  /// group when their salts match. The network path salts with the
  /// connection id so two TCP feeds interleaving fragments with colliding
  /// (sequential-id, channel, count) keys cannot cross-contaminate; the
  /// default 0 keeps all callers in one namespace (the historical
  /// behaviour, and the right one for a single merged feed).
  Result<std::optional<CompletePayload>> Add(const NmeaSentenceView& sentence,
                                             Timestamp now,
                                             uint64_t group_salt = 0);

  /// \brief Owning-sentence convenience overload (same lifetime contract:
  /// the returned view may alias `sentence.payload`).
  Result<std::optional<CompletePayload>> Add(const NmeaSentence& sentence,
                                             Timestamp now,
                                             uint64_t group_salt = 0);

  /// \brief Number of partially assembled groups currently buffered.
  size_t pending_groups() const { return pending_.size(); }

  /// \brief Drops pending groups older than the timeout. Returns the number
  /// evicted.
  size_t EvictExpired(Timestamp now);

 private:
  /// One in-flight fragment group. Fragment characters live in a per-group
  /// append-only arena (`buf`) instead of one string per fragment.
  struct Group {
    std::string buf;
    std::array<uint32_t, 9> frag_off{};
    std::array<uint32_t, 9> frag_len{};
    uint16_t received_mask = 0;
    int received = 0;
    int fill_bits = 0;
    char channel = 'A';
    Timestamp first_seen = 0;
  };

  // Key: (salt, sequential_id, channel, fragment_count) — the practical
  // uniqueness key for interleaved VHF groups — packed into one integer.
  // The salt (connection/source namespace) occupies the high bits so a
  // salt of 0 reproduces the historical un-namespaced key exactly.
  static uint64_t GroupKeyOf(const NmeaSentenceView& s, uint64_t salt) {
    return ((salt & ((uint64_t{1} << 40) - 1)) << 24) |
           (static_cast<uint64_t>(static_cast<uint8_t>(s.sequential_id))
            << 16) |
           (static_cast<uint64_t>(static_cast<uint8_t>(s.channel)) << 8) |
           static_cast<uint64_t>(static_cast<uint8_t>(s.fragment_count));
  }

  Options options_;
  FlatHashMap<uint64_t, Group> pending_;
  std::string assembly_buf_;            ///< completed-payload scratch
  std::vector<uint64_t> evict_scratch_; ///< keys collected for eviction
};

}  // namespace marlin

#endif  // MARLIN_AIS_NMEA_H_
