#ifndef MARLIN_AIS_NMEA_H_
#define MARLIN_AIS_NMEA_H_

/// \file nmea.h
/// \brief NMEA 0183 transport layer for AIS: AIVDM sentence parsing,
/// checksum verification, and multi-fragment message assembly.

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"

namespace marlin {

/// \brief One parsed !AIVDM / !AIVDO sentence.
struct NmeaSentence {
  std::string talker = "AIVDM";  ///< "AIVDM" (received) or "AIVDO" (own ship)
  int fragment_count = 1;
  int fragment_number = 1;
  int sequential_id = -1;        ///< -1 when the field is empty
  char channel = 'A';            ///< 'A', 'B', or '\0' when empty
  std::string payload;           ///< armored 6-bit payload
  int fill_bits = 0;
};

/// \brief Computes the NMEA checksum (XOR of bytes between '!'/'$' and '*').
uint8_t NmeaChecksum(const std::string& body);

/// \brief NMEA 4.0 TAG block data relevant to AIS feeds.
///
/// Satellite and networked AIS providers prepend `\c:unixtime*hh\` blocks
/// carrying the time of reception at the *remote* receiver — without it the
/// shore system cannot recover event time for multi-minute-delayed messages
/// (paper §1/§2.5 latency challenge).
struct TagBlock {
  /// Remote reception time (epoch ms); kInvalidTimestamp when absent.
  Timestamp receiver_time = kInvalidTimestamp;
  /// Source identifier (`s:` field), empty when absent.
  std::string source;
};

/// \brief Renders a TAG block prefix `\c:<seconds>*hh\` for a sentence.
std::string FormatTagBlock(Timestamp receiver_time);

/// \brief Splits an optional leading TAG block from a line. Returns the
/// remainder (the sentence proper) and fills `tag` when a valid block is
/// present. Malformed blocks yield Corruption.
Result<std::string> StripTagBlock(const std::string& line, TagBlock* tag);

/// \brief Renders a sentence as a full "!AIVDM,...*hh" line.
std::string FormatSentence(const NmeaSentence& s);

/// \brief Parses and validates one NMEA line (checksum, field count, ranges).
Result<NmeaSentence> ParseSentence(const std::string& line);

/// \brief Reassembles multi-fragment AIVDM messages.
///
/// Feed sentences in arrival order; when a message is complete the combined
/// payload is returned. Incomplete groups are evicted after
/// `Options::timeout_ms` of arrival time to bound memory (matching receiver
/// practice for lossy VHF links).
class AivdmAssembler {
 public:
  struct Options {
    DurationMs timeout_ms = 30 * kMillisPerSecond;
    size_t max_pending_groups = 1024;
  };

  /// \brief A fully reassembled payload ready for bit-level decoding.
  struct CompletePayload {
    std::string payload;  ///< concatenated armored payload
    int fill_bits = 0;    ///< fill bits of the *last* fragment
    char channel = 'A';
  };

  AivdmAssembler() : AivdmAssembler(Options()) {}
  explicit AivdmAssembler(const Options& options) : options_(options) {}

  /// \brief Adds one sentence. Returns a payload when it completes a message,
  /// an empty optional while a group is pending, or an error for
  /// inconsistent fragments.
  Result<std::optional<CompletePayload>> Add(const NmeaSentence& sentence,
                                             Timestamp now);

  /// \brief Number of partially assembled groups currently buffered.
  size_t pending_groups() const { return pending_.size(); }

  /// \brief Drops pending groups older than the timeout. Returns the number
  /// evicted.
  size_t EvictExpired(Timestamp now);

 private:
  struct Group {
    std::vector<std::string> fragments;  // indexed by fragment_number-1
    int received = 0;
    int fill_bits = 0;
    char channel = 'A';
    Timestamp first_seen = 0;
  };

  // Key: (sequential_id, channel, fragment_count) — the practical uniqueness
  // key for interleaved VHF groups.
  using GroupKey = std::tuple<int, char, int>;

  Options options_;
  std::map<GroupKey, Group> pending_;
};

}  // namespace marlin

#endif  // MARLIN_AIS_NMEA_H_
