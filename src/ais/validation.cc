#include "ais/validation.h"

#include <cctype>

namespace marlin {

const char* StaticDataDefectName(StaticDataDefect d) {
  switch (d) {
    case StaticDataDefect::kInvalidMmsi:
      return "invalid-mmsi";
    case StaticDataDefect::kInvalidImoChecksum:
      return "invalid-imo-checksum";
    case StaticDataDefect::kMissingName:
      return "missing-name";
    case StaticDataDefect::kDefaultDimensions:
      return "default-dimensions";
    case StaticDataDefect::kImplausibleSize:
      return "implausible-size";
    case StaticDataDefect::kBadShipType:
      return "bad-ship-type";
    case StaticDataDefect::kBadEta:
      return "bad-eta";
    case StaticDataDefect::kCallSignFormat:
      return "call-sign-format";
  }
  return "unknown";
}

bool IsValidVesselMmsi(Mmsi mmsi) {
  if (mmsi < 100000000u || mmsi > 999999999u) return false;
  const int mid = static_cast<int>(mmsi / 1000000u);
  // ITU Maritime Identification Digits allocated to ship stations run from
  // 201 (Albania) to 775 (Venezuela); 8xx/9xx prefixes are special services.
  return mid >= 201 && mid <= 775;
}

bool IsValidImoNumber(uint32_t imo) {
  if (imo < 1000000u || imo > 9999999u) return false;
  uint32_t rest = imo / 10;
  const uint32_t check = imo % 10;
  uint32_t sum = 0;
  for (int weight = 2; weight <= 7; ++weight) {
    sum += (rest % 10) * weight;
    rest /= 10;
  }
  return sum % 10 == check;
}

uint32_t MakeImoNumber(uint32_t six_digit_stem) {
  uint32_t rest = six_digit_stem % 1000000u;
  uint32_t sum = 0;
  uint32_t digits = rest;
  for (int weight = 2; weight <= 7; ++weight) {
    sum += (digits % 10) * weight;
    digits /= 10;
  }
  return rest * 10 + sum % 10;
}

namespace {

bool IsReservedShipType(int t) {
  if (t == 0) return false;  // "not available" is allowed, not a defect
  if (t < 20 && t >= 1) return true;  // 1..19 reserved
  if (t > 99) return true;
  return false;
}

bool IsBadEta(const StaticVoyageData& m) {
  // 0 month / day and 24:60 encode "not available" and are fine.
  if (m.eta_month < 0 || m.eta_month > 12) return true;
  if (m.eta_day < 0 || m.eta_day > 31) return true;
  if (m.eta_hour < 0 || m.eta_hour > 24) return true;
  if (m.eta_minute < 0 || m.eta_minute > 60) return true;
  return false;
}

bool IsBadCallSign(const std::string& cs) {
  for (char c : cs) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != ' ') return true;
  }
  return false;
}

}  // namespace

std::vector<StaticDataDefect> ValidateStaticData(const StaticVoyageData& m) {
  std::vector<StaticDataDefect> defects;
  if (!IsValidVesselMmsi(m.mmsi)) {
    defects.push_back(StaticDataDefect::kInvalidMmsi);
  }
  if (m.imo_number != 0 && !IsValidImoNumber(m.imo_number)) {
    defects.push_back(StaticDataDefect::kInvalidImoChecksum);
  }
  if (m.name.empty()) {
    defects.push_back(StaticDataDefect::kMissingName);
  }
  if (m.LengthMetres() == 0 && m.BeamMetres() == 0) {
    defects.push_back(StaticDataDefect::kDefaultDimensions);
  } else if (m.LengthMetres() > 460 || m.BeamMetres() > 70) {
    defects.push_back(StaticDataDefect::kImplausibleSize);
  }
  if (IsReservedShipType(m.ship_type)) {
    defects.push_back(StaticDataDefect::kBadShipType);
  }
  if (IsBadEta(m)) {
    defects.push_back(StaticDataDefect::kBadEta);
  }
  if (IsBadCallSign(m.call_sign)) {
    defects.push_back(StaticDataDefect::kCallSignFormat);
  }
  return defects;
}

void QualityAssessor::Observe(const AisMessage& msg) {
  if (const auto* s = std::get_if<StaticVoyageData>(&msg)) {
    ++report_.static_messages;
    const auto defects = ValidateStaticData(*s);
    if (!defects.empty()) ++report_.static_with_defects;
    for (auto d : defects) {
      ++report_.defect_counts[static_cast<int>(d)];
    }
    return;
  }
  if (const auto* p = std::get_if<PositionReport>(&msg)) {
    ++report_.position_messages;
    if (!p->HasPosition()) ++report_.invalid_positions;
    if (!p->HasSpeed()) ++report_.speed_not_available;
    return;
  }
  if (const auto* e = std::get_if<ExtendedClassBReport>(&msg)) {
    ++report_.position_messages;
    if (!e->position_report.HasPosition()) ++report_.invalid_positions;
    if (!e->position_report.HasSpeed()) ++report_.speed_not_available;
    return;
  }
}

}  // namespace marlin
