#include "ais/sixbit.h"

#include <bit>
#include <cstring>

namespace marlin {
namespace {

/// Shared armor-character validation for the untouched-or-complete contract:
/// both de-armor representations validate the whole payload *before* the
/// first write, so a corrupt payload can never leave a partially overwritten
/// buffer. Valid armor characters are exactly the range 48..119 under the
/// lenient (+48 / skip-8) rule the armoring uses.
Status ValidateArmor(std::string_view payload, int fill_bits) {
  if (fill_bits < 0 || fill_bits > 5) {
    return Status::Invalid("fill bits must be 0..5");
  }
  // Branchless accumulate (auto-vectorizes): one test after the scan instead
  // of a conditional per character.
  unsigned bad = 0;
  for (const char c : payload) {
    bad |= (static_cast<unsigned char>(c) - 48u) > 71u;
  }
  if (bad != 0) {
    return Status::Corruption("invalid armoring character in AIS payload");
  }
  if (static_cast<int>(payload.size()) * 6 < fill_bits) {
    return Status::Corruption("payload shorter than fill bits");
  }
  return Status::OK();
}

/// De-armors one payload character to its 6-bit value. Precondition: `c`
/// passed `ValidateArmor`.
inline uint32_t ArmorCharToSixBits(char c) {
  uint32_t v = static_cast<unsigned char>(c) - 48u;
  if (v > 40u) v -= 8u;
  return v;
}

}  // namespace

void BitWriter::WriteUnsigned(uint32_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    bits_.push_back(static_cast<uint8_t>((value >> i) & 1u));
  }
}

void BitWriter::WriteSigned(int32_t value, int width) {
  WriteUnsigned(static_cast<uint32_t>(value) & ((width == 32)
                                                    ? 0xFFFFFFFFu
                                                    : ((1u << width) - 1u)),
                width);
}

void BitWriter::WriteString(std::string_view text, int chars) {
  for (int i = 0; i < chars; ++i) {
    if (i < static_cast<int>(text.size())) {
      WriteUnsigned(CharToSixBit(text[i]), 6);
    } else {
      WriteUnsigned(0, 6);  // '@' padding
    }
  }
}

Result<uint32_t> BitReader::ReadUnsigned(int width) {
  if (width < 1 || width > 32) {
    return Status::Invalid("bit field width out of range");
  }
  if (remaining() < width) {
    return Status::OutOfRange("bit stream exhausted");
  }
  uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    v = (v << 1) | bits_[pos_++];
  }
  return v;
}

Result<int32_t> BitReader::ReadSigned(int width) {
  MARLIN_ASSIGN_OR_RETURN(uint32_t raw, ReadUnsigned(width));
  // Sign-extend from `width` bits.
  if (width < 32 && (raw & (1u << (width - 1)))) {
    raw |= ~((1u << width) - 1u);
  }
  return static_cast<int32_t>(raw);
}

Result<std::string> BitReader::ReadString(int chars) {
  std::string out;
  out.reserve(chars);
  for (int i = 0; i < chars; ++i) {
    MARLIN_ASSIGN_OR_RETURN(uint32_t v, ReadUnsigned(6));
    out.push_back(SixBitToChar(v));
  }
  // Strip '@' padding and trailing spaces.
  size_t end = out.find('@');
  if (end != std::string::npos) out.resize(end);
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

Status BitReader::Skip(int width) {
  if (remaining() < width) return Status::OutOfRange("bit stream exhausted");
  pos_ += width;
  return Status::OK();
}

std::string ArmorBits(const std::vector<uint8_t>& bits, int* fill_bits) {
  std::string payload;
  const int n = static_cast<int>(bits.size());
  const int groups = (n + 5) / 6;
  payload.reserve(groups);
  int fill = groups * 6 - n;
  for (int g = 0; g < groups; ++g) {
    uint32_t v = 0;
    for (int b = 0; b < 6; ++b) {
      const int idx = g * 6 + b;
      v = (v << 1) | (idx < n ? bits[idx] : 0);
    }
    // ITU armoring: add 48; values above 39 skip the 8 chars 'X'..'_'.
    char c = static_cast<char>(v + 48);
    if (v > 39) c = static_cast<char>(v + 56);
    payload.push_back(c);
  }
  if (fill_bits != nullptr) *fill_bits = fill;
  return payload;
}

std::string ArmorBits(const PackedBits& bits, int* fill_bits) {
  std::string payload;
  const int n = bits.size_bits();
  const int groups = (n + 5) / 6;
  payload.reserve(groups);
  for (int g = 0; g < groups; ++g) {
    uint32_t v = 0;
    for (int b = 0; b < 6; ++b) {
      const int idx = g * 6 + b;
      // Bits past size are the zero fill (tail-zero invariant would also
      // allow reading the word directly, but `idx < n` keeps this safe when
      // the last group starts beyond the final word).
      v = (v << 1) | (idx < n && bits.GetBit(idx) ? 1u : 0u);
    }
    char c = static_cast<char>(v + 48);
    if (v > 39) c = static_cast<char>(v + 56);
    payload.push_back(c);
  }
  if (fill_bits != nullptr) *fill_bits = groups * 6 - n;
  return payload;
}

Status UnarmorPayloadInto(std::string_view payload, int fill_bits,
                          std::vector<uint8_t>* bits) {
  MARLIN_RETURN_NOT_OK(ValidateArmor(payload, fill_bits));
  // resize() alone (no clear()) avoids re-zeroing the whole buffer per
  // line — every slot up to the new size is overwritten below.
  bits->resize(payload.size() * 6);
  uint8_t* out = bits->data();
  for (const char c : payload) {
    const uint32_t v = ArmorCharToSixBits(c);
    out[0] = static_cast<uint8_t>((v >> 5) & 1);
    out[1] = static_cast<uint8_t>((v >> 4) & 1);
    out[2] = static_cast<uint8_t>((v >> 3) & 1);
    out[3] = static_cast<uint8_t>((v >> 2) & 1);
    out[4] = static_cast<uint8_t>((v >> 1) & 1);
    out[5] = static_cast<uint8_t>(v & 1);
    out += 6;
  }
  bits->resize(bits->size() - fill_bits);
  return Status::OK();
}

Status UnarmorPayloadInto(std::string_view payload, int fill_bits,
                          PackedBits* bits) {
  MARLIN_RETURN_NOT_OK(ValidateArmor(payload, fill_bits));
  bits->Clear();
  bits->ReserveBits(payload.size() * 6);
  size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    // SWAR block: de-armor eight characters per step. Each byte is already
    // validated to be in 48..119, so per-byte arithmetic cannot borrow or
    // carry across lanes.
    for (; i + 8 <= payload.size(); i += 8) {
      uint64_t x;
      std::memcpy(&x, payload.data() + i, 8);
      // Armor -> 6-bit value per byte: subtract 48, and 8 more where the
      // byte is >= 89 (the post-'W' armor range).
      const uint64_t ge89 =
          ((x + 0x2727272727272727ull) & 0x8080808080808080ull) >> 7;
      x = x - 0x3030303030303030ull - (ge89 << 3);
      // Gather the eight 6-bit values MSB-first into 48 bits (pair, quad,
      // then halves — the classic base64 bit-merge).
      const uint64_t m6 = 0x003F003F003F003Full;
      const uint64_t pairs = ((x & m6) << 6) | ((x >> 8) & m6);
      const uint64_t m12 = 0x00000FFF00000FFFull;
      const uint64_t quads = ((pairs & m12) << 12) | ((pairs >> 16) & m12);
      const uint64_t v =
          ((quads & 0xFFFFFFull) << 24) | ((quads >> 32) & 0xFFFFFFull);
      bits->AppendBits(v, 48);
    }
  }
  // Tail (and the full payload on big-endian hosts): batch characters into
  // a 60-bit accumulator so appends stay word-granular.
  uint64_t acc = 0;
  int acc_bits = 0;
  for (; i < payload.size(); ++i) {
    acc = (acc << 6) | ArmorCharToSixBits(payload[i]);
    acc_bits += 6;
    if (acc_bits == 60) {
      bits->AppendBits(acc, 60);
      acc = 0;
      acc_bits = 0;
    }
  }
  if (acc_bits != 0) bits->AppendBits(acc, acc_bits);
  bits->Truncate(bits->size_bits() - fill_bits);
  return Status::OK();
}

Result<std::vector<uint8_t>> UnarmorPayload(std::string_view payload,
                                            int fill_bits) {
  std::vector<uint8_t> bits;
  Status st = UnarmorPayloadInto(payload, fill_bits, &bits);
  if (!st.ok()) return st;
  return bits;
}

}  // namespace marlin
