#include "ais/sixbit.h"

#include <cctype>

namespace marlin {

void BitWriter::WriteUnsigned(uint32_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    bits_.push_back(static_cast<uint8_t>((value >> i) & 1u));
  }
}

void BitWriter::WriteSigned(int32_t value, int width) {
  WriteUnsigned(static_cast<uint32_t>(value) & ((width == 32)
                                                    ? 0xFFFFFFFFu
                                                    : ((1u << width) - 1u)),
                width);
}

void BitWriter::WriteString(std::string_view text, int chars) {
  for (int i = 0; i < chars; ++i) {
    if (i < static_cast<int>(text.size())) {
      WriteUnsigned(CharToSixBit(text[i]), 6);
    } else {
      WriteUnsigned(0, 6);  // '@' padding
    }
  }
}

Result<uint32_t> BitReader::ReadUnsigned(int width) {
  if (width < 1 || width > 32) {
    return Status::Invalid("bit field width out of range");
  }
  if (remaining() < width) {
    return Status::OutOfRange("bit stream exhausted");
  }
  uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    v = (v << 1) | bits_[pos_++];
  }
  return v;
}

Result<int32_t> BitReader::ReadSigned(int width) {
  MARLIN_ASSIGN_OR_RETURN(uint32_t raw, ReadUnsigned(width));
  // Sign-extend from `width` bits.
  if (width < 32 && (raw & (1u << (width - 1)))) {
    raw |= ~((1u << width) - 1u);
  }
  return static_cast<int32_t>(raw);
}

Result<std::string> BitReader::ReadString(int chars) {
  std::string out;
  out.reserve(chars);
  for (int i = 0; i < chars; ++i) {
    MARLIN_ASSIGN_OR_RETURN(uint32_t v, ReadUnsigned(6));
    out.push_back(SixBitToChar(v));
  }
  // Strip '@' padding and trailing spaces.
  size_t end = out.find('@');
  if (end != std::string::npos) out.resize(end);
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

Status BitReader::Skip(int width) {
  if (remaining() < width) return Status::OutOfRange("bit stream exhausted");
  pos_ += width;
  return Status::OK();
}

std::string ArmorBits(const std::vector<uint8_t>& bits, int* fill_bits) {
  std::string payload;
  const int n = static_cast<int>(bits.size());
  const int groups = (n + 5) / 6;
  payload.reserve(groups);
  int fill = groups * 6 - n;
  for (int g = 0; g < groups; ++g) {
    uint32_t v = 0;
    for (int b = 0; b < 6; ++b) {
      const int idx = g * 6 + b;
      v = (v << 1) | (idx < n ? bits[idx] : 0);
    }
    // ITU armoring: add 48; values above 39 skip the 8 chars 'X'..'_'.
    char c = static_cast<char>(v + 48);
    if (v > 39) c = static_cast<char>(v + 56);
    payload.push_back(c);
  }
  if (fill_bits != nullptr) *fill_bits = fill;
  return payload;
}

Status UnarmorPayloadInto(std::string_view payload, int fill_bits,
                          std::vector<uint8_t>* bits) {
  if (fill_bits < 0 || fill_bits > 5) {
    return Status::Invalid("fill bits must be 0..5");
  }
  // resize() alone (no clear()) avoids re-zeroing the whole buffer per
  // line — every slot up to the new size is overwritten below.
  bits->resize(payload.size() * 6);
  uint8_t* out = bits->data();
  for (char c : payload) {
    int v = static_cast<unsigned char>(c) - 48;
    if (v > 40) v -= 8;
    if (v < 0 || v > 63) {
      bits->clear();
      return Status::Corruption("invalid armoring character in AIS payload");
    }
    out[0] = static_cast<uint8_t>((v >> 5) & 1);
    out[1] = static_cast<uint8_t>((v >> 4) & 1);
    out[2] = static_cast<uint8_t>((v >> 3) & 1);
    out[3] = static_cast<uint8_t>((v >> 2) & 1);
    out[4] = static_cast<uint8_t>((v >> 1) & 1);
    out[5] = static_cast<uint8_t>(v & 1);
    out += 6;
  }
  if (static_cast<int>(bits->size()) < fill_bits) {
    bits->clear();
    return Status::Corruption("payload shorter than fill bits");
  }
  bits->resize(bits->size() - fill_bits);
  return Status::OK();
}

Result<std::vector<uint8_t>> UnarmorPayload(std::string_view payload,
                                            int fill_bits) {
  std::vector<uint8_t> bits;
  Status st = UnarmorPayloadInto(payload, fill_bits, &bits);
  if (!st.ok()) return st;
  return bits;
}

char SixBitToChar(uint32_t v) {
  v &= 0x3F;
  // 0..31 -> '@','A'..'Z','[','\',']','^','_' ; 32..63 -> ' '..'?'
  return v < 32 ? static_cast<char>(v + 64) : static_cast<char>(v);
}

uint32_t CharToSixBit(char c) {
  const unsigned char u =
      static_cast<unsigned char>(std::toupper(static_cast<unsigned char>(c)));
  if (u >= 64 && u < 96) return u - 64;  // '@'..'_'
  if (u >= 32 && u < 64) return u;       // ' '..'?'
  return 0;                              // outside alphabet -> '@'
}

}  // namespace marlin
