#ifndef MARLIN_AIS_CODEC_H_
#define MARLIN_AIS_CODEC_H_

/// \file codec.h
/// \brief Top-level AIS codec: NMEA lines ⇄ typed messages.

#include <string>
#include <string_view>
#include <vector>

#include "ais/nmea.h"
#include "ais/types.h"
#include "common/packed_bits.h"
#include "common/result.h"

namespace marlin {

/// \brief A pre-parsed NMEA line: the output of the stateless (and therefore
/// embarrassingly parallel) front half of decoding, ready to be fed to the
/// stateful reassembly half in arrival order.
///
/// Zero-copy: `sentence` holds `string_view`s into the line buffer handed to
/// `AisDecoder::Parse`, so parsing allocates nothing — the contract is that
/// the source line outlives the `ParsedLine` (the pipelines keep each
/// window's lines alive until the window's parsed slots are assembled).
struct ParsedLine {
  /// Receiver timestamp after TAG-block override.
  Timestamp received_at = kInvalidTimestamp;
  /// Fragment-reassembly namespace (AivdmAssembler group salt): 0 for a
  /// single merged feed; the network path keys it by connection so two TCP
  /// feeds cannot cross-contaminate interleaved fragment groups.
  uint64_t group_salt = 0;
  bool ok = false;  ///< false: checksum / format / TAG-block failure
  NmeaSentenceView sentence;
};

/// \brief Stream decoder: feed NMEA lines, receive decoded messages.
///
/// Handles checksum validation, multi-fragment reassembly, and bit-level
/// decoding. Malformed input is counted, never fatal — a real feed contains
/// garbage and the decoder must keep going (paper §1: veracity).
///
/// Decoding is split in two halves so a sharded pipeline can parallelise the
/// string-heavy part while keeping fragment reassembly exact:
///  * `Parse` is stateless (safe to run concurrently on line chunks),
///  * `Assemble` owns the fragment-assembly state and all statistics and
///    must see parsed lines in arrival order.
/// `Decode` == `Assemble(Parse(...))`, so a sequential caller and a
/// parse-parallel caller produce bit-identical message streams and stats.
class AisDecoder {
 public:
  struct Stats {
    uint64_t lines_in = 0;
    uint64_t messages_out = 0;
    uint64_t bad_sentences = 0;     ///< checksum/format failures
    uint64_t bad_payloads = 0;      ///< bit-level decode failures
    uint64_t unsupported_types = 0; ///< valid but unimplemented types
    uint64_t pending_fragments = 0; ///< sentences absorbed into groups

    /// \brief Accumulates another decoder's counters (per-shard merge).
    void Merge(const Stats& other) {
      lines_in += other.lines_in;
      messages_out += other.messages_out;
      bad_sentences += other.bad_sentences;
      bad_payloads += other.bad_payloads;
      unsupported_types += other.unsupported_types;
      pending_fragments += other.pending_fragments;
    }
  };

  AisDecoder() = default;

  /// \brief Decodes one NMEA line. Returns a message when one completes,
  /// std::nullopt when the line was a fragment / unusable.
  /// `received_at` stamps the decoded message. Steady-state (single-fragment
  /// lines, warmed scratch) this performs no heap allocation.
  std::optional<AisMessage> Decode(std::string_view line,
                                   Timestamp received_at);

  /// \brief Stateless front half: TAG-block strip + sentence parse +
  /// checksum. Thread-safe; does not touch decoder state or stats. The
  /// returned `ParsedLine` aliases `line`'s buffer (see ParsedLine).
  /// `group_salt` is carried through to reassembly (see ParsedLine).
  static ParsedLine Parse(std::string_view line, Timestamp received_at,
                          uint64_t group_salt = 0);

  /// \brief Stateful back half: fragment reassembly + bit-level decode +
  /// stats. Must be called in arrival order on one thread, while the
  /// buffer `parsed` aliases is still alive.
  std::optional<AisMessage> Assemble(const ParsedLine& parsed);

  /// \brief Decodes an already de-armored payload (the `kPacked` wire-frame
  /// path: assembly and six-bit unarmoring happened sender-side, so this is
  /// pure bit-level decode + stamp). Counts into the same stats as the line
  /// path: one packed record is one line_in.
  std::optional<AisMessage> DecodePacked(const PackedBits& bits,
                                         Timestamp received_at);

  const Stats& stats() const { return stats_; }

 private:
  /// Shared back end of `Assemble` and `DecodePacked`: bit-level decode,
  /// receiver-time stamp, stats.
  std::optional<AisMessage> DecodeBitsAndStamp(const PackedBits& bits,
                                               Timestamp received_at);

  AivdmAssembler assembler_;
  Stats stats_;
  /// De-armored payload words, reused per line: `UnarmorPayloadInto` refills
  /// it in place and `Clear()` retains word capacity, so the steady state
  /// never touches the heap (the packed-words successor to PR 4's pooled
  /// byte-per-bit scratch).
  PackedBits bits_scratch_;
};

/// \brief Encodes a message as one or more NMEA AIVDM sentences.
///
/// Payloads longer than `max_payload_chars` (default 60, the radio limit
/// imposed by the 82-character NMEA sentence) are fragmented; `sequential_id`
/// cycles 0..9 per encoder.
class AisEncoder {
 public:
  struct Options {
    int max_payload_chars = 60;
    char channel = 'A';
  };

  AisEncoder() : AisEncoder(Options()) {}
  explicit AisEncoder(const Options& options) : options_(options) {}

  /// \brief Encodes `msg` into ready-to-transmit NMEA lines.
  Result<std::vector<std::string>> Encode(const AisMessage& msg);

 private:
  Options options_;
  int next_seq_id_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_AIS_CODEC_H_
