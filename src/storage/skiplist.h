#ifndef MARLIN_STORAGE_SKIPLIST_H_
#define MARLIN_STORAGE_SKIPLIST_H_

/// \file skiplist.h
/// \brief Ordered in-memory map used as the LSM memtable core.
///
/// A classic probabilistic skip list (p = 1/4, max height 12) keyed by
/// `std::string`, following the LevelDB/RocksDB memtable design. Duplicate
/// inserts overwrite (the memtable semantic — newest write wins).

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace marlin {

/// \brief Single-writer ordered map with O(log n) insert/seek.
class SkipList {
 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    std::string key;
    std::string value;
    std::vector<Node*> next;  // one pointer per level
  };

 public:
  SkipList() : rng_(0xA15C0FFEEull), head_(NewNode("", "", kMaxHeight)) {}

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// \brief Inserts or overwrites `key`.
  void Insert(std::string_view key, std::string_view value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) {
      approx_bytes_ += value.size() - node->value.size();
      node->value.assign(value.data(), value.size());
      return;
    }
    const int height = RandomHeight();
    if (height > height_) {
      for (int i = height_; i < height; ++i) prev[i] = head_;
      height_ = height;
    }
    Node* fresh = NewNode(key, value, height);
    for (int i = 0; i < height; ++i) {
      fresh->next[i] = prev[i]->next[i];
      prev[i]->next[i] = fresh;
    }
    ++size_;
    approx_bytes_ += key.size() + value.size() + sizeof(Node);
  }

  /// \brief Looks up `key`; returns nullptr when absent.
  const std::string* Find(std::string_view key) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) return &node->value;
    return nullptr;
  }

  size_t size() const { return size_; }
  size_t ApproximateMemoryUsage() const { return approx_bytes_; }

  /// \brief Forward iterator over (key, value) in key order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    void SeekToFirst() { node_ = list_->head_->next[0]; }
    /// \brief Positions at the first entry with key >= target.
    void Seek(std::string_view target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }
    const std::string& key() const {
      assert(Valid());
      return node_->key;
    }
    const std::string& value() const {
      assert(Valid());
      return node_->value;
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  Node* NewNode(std::string_view key, std::string_view value, int height) {
    auto node = std::make_unique<Node>();
    node->key.assign(key.data(), key.size());
    node->value.assign(value.data(), value.size());
    node->next.assign(height, nullptr);
    Node* raw = node.get();
    arena_.push_back(std::move(node));
    return raw;
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && (rng_.NextU64() & 3) == 0) ++height;
    return height;
  }

  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const {
    Node* node = head_;
    int level = height_ - 1;
    while (true) {
      Node* next = node->next[level];
      if (next != nullptr && next->key < key) {
        node = next;
      } else {
        if (prev != nullptr) prev[level] = node;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Rng rng_;
  std::vector<std::unique_ptr<Node>> arena_;
  Node* head_;
  int height_ = 1;
  size_t size_ = 0;
  size_t approx_bytes_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_SKIPLIST_H_
