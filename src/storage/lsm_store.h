#ifndef MARLIN_STORAGE_LSM_STORE_H_
#define MARLIN_STORAGE_LSM_STORE_H_

/// \file lsm_store.h
/// \brief Log-structured archival store for maritime history (paper §2.3).
///
/// A compact LSM engine in the LevelDB/RocksDB lineage: writes land in a
/// write-ahead log and a skip-list memtable; full memtables flush to
/// immutable sorted runs with Bloom filters; reads merge memtable and runs
/// newest-first; compaction merges runs to bound read amplification.
///
/// The archival key schema for AIS history is `[mmsi:8][timestamp:8]`
/// big-endian (see trajectory_store.h), so per-vessel time scans are
/// contiguous range scans.
///
/// Concurrency: single writer, external synchronization required (the
/// pipeline owns one writer thread); this matches the paper's single-ingest
/// architecture and keeps recovery semantics simple.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/bloom.h"
#include "storage/iterator.h"
#include "storage/skiplist.h"

namespace marlin {

/// \brief An immutable sorted run (in-memory representation of one SST).
class SortedRun {
 public:
  /// \brief Builds a run from sorted, deduplicated entries.
  /// `entries` must be sorted ascending by key. Each value is the *internal*
  /// encoding (1-byte type tag + user value).
  static SortedRun Build(std::vector<std::pair<std::string, std::string>> entries,
                         int bloom_bits_per_key);

  /// \brief Point lookup of the internal value. Returns nullptr when absent.
  const std::string* Get(std::string_view key) const;

  /// \brief True iff the Bloom filter / key range admits `key`.
  bool MayContain(std::string_view key) const;

  /// \brief Serializes to the MRLNSST1 format (whole-run CRC-32C).
  std::string Serialize() const;

  /// \brief Parses a serialized run, validating magic and checksum.
  static Result<SortedRun> Deserialize(std::string_view data);

  size_t size() const { return entries_.size(); }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  SortedRun() : bloom_(1) {}

  std::vector<std::pair<std::string, std::string>> entries_;
  BloomFilter bloom_;
  std::string min_key_;
  std::string max_key_;
};

/// \brief The LSM key-value store.
class LsmStore {
 public:
  struct Options {
    /// Flush the memtable to a run once it holds this many bytes.
    size_t memtable_bytes_limit = 4 * 1024 * 1024;
    /// Compact all runs into one when the run count exceeds this.
    int max_runs = 8;
    int bloom_bits_per_key = 10;
    /// Directory for WAL + run files; empty = volatile in-memory store.
    std::string directory;
  };

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t gets_found = 0;
    uint64_t bloom_negative = 0;  ///< run probes skipped by the filter
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t wal_records_replayed = 0;
  };

  /// \brief Opens (and recovers, if `options.directory` is set) a store.
  static Result<std::unique_ptr<LsmStore>> Open(const Options& options);

  ~LsmStore();

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// \brief Point lookup. NotFound when absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  /// \brief Snapshot iterator over live entries in key order (tombstones
  /// resolved). The iterator is independent of subsequent writes.
  std::unique_ptr<KvIterator> NewIterator() const;

  /// \brief Collects all live entries in [start, end) — the archival range
  /// scan used by trajectory retrieval.
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view start, std::string_view end, size_t limit = SIZE_MAX) const;

  /// \brief Forces a memtable flush (also triggered automatically).
  Status Flush();

  /// \brief Merges every run (and the memtable) into a single run.
  Status CompactAll();

  size_t NumRuns() const { return runs_.size(); }
  size_t MemtableEntries() const { return memtable_->size(); }
  const Stats& stats() const { return stats_; }

 private:
  explicit LsmStore(const Options& options);

  Status AppendWal(char type, std::string_view key, std::string_view value);
  Status ReplayWal();
  Status LoadRuns();
  Status PersistRun(const SortedRun& run, uint64_t file_number);
  Status WriteMemtableToRun();

  Options options_;
  std::unique_ptr<SkipList> memtable_;
  std::vector<std::shared_ptr<SortedRun>> runs_;  // oldest first
  Stats stats_;
  uint64_t next_file_number_ = 1;
  int wal_fd_ = -1;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_LSM_STORE_H_
