#ifndef MARLIN_STORAGE_LSM_STORE_H_
#define MARLIN_STORAGE_LSM_STORE_H_

/// \file lsm_store.h
/// \brief Log-structured archival store for maritime history (paper §2.3).
///
/// A compact LSM engine in the LevelDB/RocksDB lineage: writes land in a
/// write-ahead log and a skip-list memtable; full memtables flush to
/// immutable sorted runs with Bloom filters; reads merge memtable and runs
/// newest-first; compaction merges runs to bound read amplification.
///
/// The archival key schema for AIS history is `[mmsi:4][timestamp:8]`
/// big-endian (see trajectory_store.h), so per-vessel time scans are
/// contiguous range scans. Each run additionally carries a *prefix* Bloom
/// filter over the leading 4 key bytes (the MMSI), so a vessel-set scan
/// skips whole runs that cannot contain the vessel — counted in
/// `Stats::prefix_bloom_skipped`.
///
/// Concurrency: single writer, external synchronization required (the
/// pipeline owns one writer thread per store — in sharded mode each shard
/// core owns its own store instance). With
/// `Options::background_compaction`, compaction runs on an internal worker
/// thread instead of inline in `Flush`, keeping the ingest hot path free of
/// O(total-data) merges; the run list is then guarded by a mutex shared
/// between the writer and the compactor.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/bloom.h"
#include "storage/iterator.h"
#include "storage/skiplist.h"

namespace marlin {

/// \brief An immutable sorted run (in-memory representation of one SST).
class SortedRun {
 public:
  /// Length of the key prefix covered by the prefix Bloom filter — the
  /// 4-byte big-endian MMSI of the archival key schema.
  static constexpr size_t kPrefixLen = 4;

  /// \brief Builds a run from sorted, deduplicated entries.
  /// `entries` must be sorted ascending by key. Each value is the *internal*
  /// encoding (1-byte type tag + user value).
  static SortedRun Build(std::vector<std::pair<std::string, std::string>> entries,
                         int bloom_bits_per_key);

  /// \brief Point lookup of the internal value. Returns nullptr when absent.
  const std::string* Get(std::string_view key) const;

  /// \brief True iff the Bloom filter / key range admits `key`.
  bool MayContain(std::string_view key) const;

  /// \brief True iff some key in the run may start with `prefix` (the
  /// 4-byte MMSI). Keys shorter than `kPrefixLen` make the filter
  /// conservative (always true), as do runs deserialized from the legacy
  /// MRLNSST1 format, which predates the prefix filter.
  bool MayContainPrefix(std::string_view prefix) const;

  /// \brief Serializes to the MRLNSST2 format (whole-run CRC-32C; key and
  /// key-prefix Bloom filters).
  std::string Serialize() const;

  /// \brief Parses a serialized run, validating magic and checksum. Accepts
  /// both MRLNSST2 and the legacy MRLNSST1 format (no prefix filter:
  /// `MayContainPrefix` is then always true).
  static Result<SortedRun> Deserialize(std::string_view data);

  size_t size() const { return entries_.size(); }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  SortedRun() : bloom_(1), prefix_bloom_(1) {}

  std::vector<std::pair<std::string, std::string>> entries_;
  BloomFilter bloom_;
  BloomFilter prefix_bloom_;  ///< over the leading kPrefixLen key bytes
  bool has_prefix_bloom_ = false;
  std::string min_key_;
  std::string max_key_;
};

/// \brief The LSM key-value store.
class LsmStore {
 public:
  struct Options {
    /// Flush the memtable to a run once it holds this many bytes.
    size_t memtable_bytes_limit = 4 * 1024 * 1024;
    /// Compact all runs into one when the run count exceeds this.
    int max_runs = 8;
    int bloom_bits_per_key = 10;
    /// Directory for WAL + run files; empty = volatile in-memory store.
    std::string directory;
    /// Run compaction on a dedicated worker thread instead of inline in
    /// `Flush`. The flush itself (memtable → run) stays on the writer — it
    /// is bounded by the memtable limit — but the O(total-data) merge moves
    /// off the ingest hot path. Reads remain correct during a concurrent
    /// compaction: the run list is swapped atomically under the list mutex,
    /// and runs themselves are immutable shared_ptrs.
    bool background_compaction = false;
    /// fdatasync the WAL after every append. Off by default: the archive
    /// tier tolerates losing the tail of the current epoch on power loss
    /// (recovery truncates at the first torn frame either way), and per-put
    /// syncs are ruinous for ingest throughput.
    bool wal_sync = false;
  };

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t gets_found = 0;
    uint64_t bloom_negative = 0;  ///< run probes skipped by the key filter
    /// Whole runs skipped by the key-prefix (MMSI) filter during
    /// single-vessel range scans.
    uint64_t prefix_bloom_skipped = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t wal_records_replayed = 0;
    uint64_t wal_syncs = 0;
    // Recovery ledger (counted-not-silent: every byte not recovered is
    // accounted for here or preserved under quarantine/).
    uint64_t wal_torn_truncated = 0;  ///< torn tail bytes cut at open
    uint64_t runs_quarantined = 0;    ///< corrupt runs moved to quarantine/
    uint64_t temps_removed = 0;       ///< orphaned .tmp files deleted at open
  };

  /// \brief Opens (and recovers, if `options.directory` is set) a store.
  static Result<std::unique_ptr<LsmStore>> Open(const Options& options);

  ~LsmStore();

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// \brief Point lookup. NotFound when absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  /// \brief Snapshot iterator over live entries in key order (tombstones
  /// resolved). The iterator is independent of subsequent writes.
  std::unique_ptr<KvIterator> NewIterator() const;

  /// \brief Collects all live entries in [start, end) — the archival range
  /// scan used by trajectory retrieval. When start and end share the same
  /// `SortedRun::kPrefixLen`-byte prefix (a single-vessel scan under the
  /// archival key schema), runs whose prefix filter excludes that MMSI are
  /// skipped without a binary search (counted in
  /// `Stats::prefix_bloom_skipped`).
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view start, std::string_view end, size_t limit = SIZE_MAX) const;

  /// \brief Forces a memtable flush (also triggered automatically).
  Status Flush();

  /// \brief Merges every run (and the memtable) into a single run,
  /// synchronously on the caller. With background compaction enabled this
  /// waits for any in-flight background merge first.
  Status CompactAll();

  /// \brief Blocks until no background compaction is running or queued.
  void WaitForCompaction();

  size_t NumRuns() const;
  size_t MemtableEntries() const { return memtable_->size(); }
  Stats stats() const;

 private:
  /// A run plus the durable file backing it (0 = volatile / none). Needed so
  /// a background compaction deletes exactly the files it merged, never a
  /// run flushed while it was working.
  struct RunHandle {
    std::shared_ptr<SortedRun> run;
    uint64_t file_number = 0;
  };

  explicit LsmStore(const Options& options);

  Status AppendWal(char type, std::string_view key, std::string_view value);
  Status ReplayWal();
  Status LoadRuns();
  Status PersistRun(const SortedRun& run, uint64_t file_number);
  Status WriteMemtableToRun();
  Status MaybeScheduleCompaction();  ///< called by Flush (writer thread)
  /// Merges `inputs` (the oldest-prefix snapshot) into one run and swaps it
  /// into the run list. Runs on the writer (inline mode) or the compactor.
  Status CompactRuns(std::vector<RunHandle> inputs);
  void CompactorLoop();
  /// Copies the current run list (shared_ptrs) under the list mutex.
  std::vector<std::shared_ptr<SortedRun>> SnapshotRuns() const;

  Options options_;
  std::unique_ptr<SkipList> memtable_;
  /// Guards runs_, next_file_number_, and the run-related stats counters
  /// (flushes / compactions) once the compactor thread exists. All other
  /// state is writer-thread-only.
  mutable std::mutex runs_mutex_;
  std::vector<RunHandle> runs_;  // oldest first
  mutable Stats stats_;
  uint64_t next_file_number_ = 1;
  int wal_fd_ = -1;
  /// Bytes of valid (fully appended) WAL content. A failed append truncates
  /// back to this offset so the log never carries a half frame forward.
  size_t wal_size_ = 0;

  // Background compactor (only started when options_.background_compaction).
  std::thread compactor_;
  std::condition_variable compactor_cv_;
  bool compact_requested_ = false;
  bool compact_running_ = false;
  bool stop_compactor_ = false;
  Status compactor_status_;  ///< first background failure, surfaced on Flush
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_LSM_STORE_H_
