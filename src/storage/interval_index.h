#ifndef MARLIN_STORAGE_INTERVAL_INDEX_H_
#define MARLIN_STORAGE_INTERVAL_INDEX_H_

/// \file interval_index.h
/// \brief Static centered interval tree for temporal-extent queries.
///
/// Used to answer "which trajectory segments / events / dark periods overlap
/// [t0, t1]" — the temporal half of the paper's spatio-temporal querying
/// challenge (§2.6).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"

namespace marlin {

/// \brief One indexed interval: [start, end] inclusive, with a payload id.
struct IntervalEntry {
  Timestamp start = 0;
  Timestamp end = 0;
  uint64_t id = 0;
};

/// \brief Centered interval tree (static, bulk built).
class IntervalIndex {
 public:
  IntervalIndex() = default;

  /// \brief Builds the tree; O(n log n).
  explicit IntervalIndex(std::vector<IntervalEntry> entries) {
    root_ = Build(std::move(entries));
  }

  /// \brief Ids of intervals containing time `t`.
  std::vector<uint64_t> Stab(Timestamp t) const {
    std::vector<uint64_t> out;
    StabRecurse(root_.get(), t, &out);
    return out;
  }

  /// \brief Ids of intervals overlapping [t0, t1] (inclusive ends).
  std::vector<uint64_t> Overlapping(Timestamp t0, Timestamp t1) const {
    std::vector<uint64_t> out;
    OverlapRecurse(root_.get(), t0, t1, &out);
    return out;
  }

  size_t size() const { return size_; }

 private:
  struct Node {
    Timestamp centre = 0;
    // Intervals crossing the centre, sorted two ways for early exit.
    std::vector<IntervalEntry> by_start;  // ascending start
    std::vector<IntervalEntry> by_end;    // descending end
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  std::unique_ptr<Node> Build(std::vector<IntervalEntry> entries) {
    if (entries.empty()) return nullptr;
    size_ += entries.size();
    // Median of endpoints as the centre.
    std::vector<Timestamp> points;
    points.reserve(entries.size() * 2);
    for (const auto& e : entries) {
      points.push_back(e.start);
      points.push_back(e.end);
    }
    std::nth_element(points.begin(), points.begin() + points.size() / 2,
                     points.end());
    const Timestamp centre = points[points.size() / 2];

    auto node = std::make_unique<Node>();
    node->centre = centre;
    std::vector<IntervalEntry> left_set, right_set;
    for (auto& e : entries) {
      if (e.end < centre) {
        left_set.push_back(e);
      } else if (e.start > centre) {
        right_set.push_back(e);
      } else {
        node->by_start.push_back(e);
      }
    }
    size_ -= left_set.size() + right_set.size();  // counted again in children
    node->by_end = node->by_start;
    std::sort(node->by_start.begin(), node->by_start.end(),
              [](const IntervalEntry& a, const IntervalEntry& b) {
                return a.start < b.start;
              });
    std::sort(node->by_end.begin(), node->by_end.end(),
              [](const IntervalEntry& a, const IntervalEntry& b) {
                return a.end > b.end;
              });
    node->left = Build(std::move(left_set));
    node->right = Build(std::move(right_set));
    return node;
  }

  static void StabRecurse(const Node* node, Timestamp t,
                          std::vector<uint64_t>* out) {
    if (node == nullptr) return;
    if (t < node->centre) {
      for (const auto& e : node->by_start) {
        if (e.start > t) break;
        out->push_back(e.id);
      }
      StabRecurse(node->left.get(), t, out);
    } else if (t > node->centre) {
      for (const auto& e : node->by_end) {
        if (e.end < t) break;
        out->push_back(e.id);
      }
      StabRecurse(node->right.get(), t, out);
    } else {
      for (const auto& e : node->by_start) out->push_back(e.id);
    }
  }

  static void OverlapRecurse(const Node* node, Timestamp t0, Timestamp t1,
                             std::vector<uint64_t>* out) {
    if (node == nullptr) return;
    if (t1 < node->centre) {
      for (const auto& e : node->by_start) {
        if (e.start > t1) break;
        out->push_back(e.id);
      }
      OverlapRecurse(node->left.get(), t0, t1, out);
    } else if (t0 > node->centre) {
      for (const auto& e : node->by_end) {
        if (e.end < t0) break;
        out->push_back(e.id);
      }
      OverlapRecurse(node->right.get(), t0, t1, out);
    } else {
      // Query straddles the centre: all crossing intervals overlap.
      for (const auto& e : node->by_start) out->push_back(e.id);
      OverlapRecurse(node->left.get(), t0, t1, out);
      OverlapRecurse(node->right.get(), t0, t1, out);
    }
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_INTERVAL_INDEX_H_
