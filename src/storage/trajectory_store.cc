#include "storage/trajectory_store.h"

#include <algorithm>

namespace marlin {

TrajectoryStore::TrajectoryStore(const Options& options)
    : options_(options), live_index_(options.grid_cell_deg) {}

Status TrajectoryStore::Append(uint32_t mmsi, const TrajectoryPoint& point) {
  if (point.t == kInvalidTimestamp || !point.position.IsValid()) {
    return Status::Invalid("trajectory point needs valid time and position");
  }
  VesselData& data = trajectories_[mmsi];
  if (!data.trajectory.points.empty() &&
      point.t < data.trajectory.points.back().t) {
    return Status::Invalid(
        "out-of-order append; reconstruction must order samples");
  }
  data.trajectory.mmsi = mmsi;
  data.trajectory.points.push_back(point);
  data.bounds.Extend(point.position);
  live_index_.Upsert(mmsi, point.position);
  ++point_count_;
  if (options_.archive != nullptr) {
    MARLIN_RETURN_NOT_OK(options_.archive->Put(
        EncodeTrajectoryKey(mmsi, point.t), EncodeTrajectoryValue(point)));
  }
  return Status::OK();
}

Result<const Trajectory*> TrajectoryStore::GetTrajectory(uint32_t mmsi) const {
  auto it = trajectories_.find(mmsi);
  if (it == trajectories_.end()) {
    return Status::NotFound("no trajectory for mmsi " + std::to_string(mmsi));
  }
  return &it->second.trajectory;
}

Result<Trajectory> TrajectoryStore::GetTrajectorySlice(uint32_t mmsi,
                                                       Timestamp t0,
                                                       Timestamp t1) const {
  MARLIN_ASSIGN_OR_RETURN(const Trajectory* full, GetTrajectory(mmsi));
  return full->Slice(t0, t1);
}

std::optional<TrajectoryPoint> TrajectoryStore::Latest(uint32_t mmsi) const {
  auto it = trajectories_.find(mmsi);
  if (it == trajectories_.end() || it->second.trajectory.points.empty()) {
    return std::nullopt;
  }
  return it->second.trajectory.points.back();
}

std::vector<uint32_t> TrajectoryStore::QueryLive(const BoundingBox& box) const {
  std::vector<uint32_t> out;
  for (uint64_t id : live_index_.Query(box)) {
    out.push_back(static_cast<uint32_t>(id));
  }
  return out;
}

std::vector<std::pair<uint32_t, double>> TrajectoryStore::NearestLive(
    const GeoPoint& p, size_t k) const {
  std::vector<std::pair<uint32_t, double>> out;
  for (const auto& [id, dist] : live_index_.Nearest(p, k)) {
    out.emplace_back(static_cast<uint32_t>(id), dist);
  }
  return out;
}

std::vector<Trajectory> TrajectoryStore::QueryWindow(const BoundingBox& box,
                                                     Timestamp t0,
                                                     Timestamp t1) const {
  std::vector<Trajectory> out;
  for (const auto& [mmsi, data] : trajectories_) {
    if (!data.bounds.Intersects(box)) continue;
    const auto& points = data.trajectory.points;
    auto first = std::lower_bound(
        points.begin(), points.end(), t0,
        [](const TrajectoryPoint& p, Timestamp t) { return p.t < t; });
    Trajectory hit;
    hit.mmsi = mmsi;
    for (auto it = first; it != points.end() && it->t <= t1; ++it) {
      if (box.Contains(it->position)) hit.points.push_back(*it);
    }
    if (!hit.points.empty()) out.push_back(std::move(hit));
  }
  std::sort(out.begin(), out.end(),
            [](const Trajectory& a, const Trajectory& b) {
              return a.mmsi < b.mmsi;
            });
  return out;
}

std::vector<std::pair<uint32_t, TrajectoryPoint>> TrajectoryStore::TimeSlice(
    Timestamp t) const {
  std::vector<std::pair<uint32_t, TrajectoryPoint>> out;
  for (const auto& [mmsi, data] : trajectories_) {
    const Trajectory& traj = data.trajectory;
    if (traj.points.empty() || t < traj.StartTime() || t > traj.EndTime()) {
      continue;
    }
    out.emplace_back(mmsi, traj.At(t));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<uint32_t> TrajectoryStore::Vessels() const {
  std::vector<uint32_t> out;
  out.reserve(trajectories_.size());
  for (const auto& [mmsi, _] : trajectories_) out.push_back(mmsi);
  std::sort(out.begin(), out.end());
  return out;
}

Result<Trajectory> TrajectoryStore::LoadFromArchive(uint32_t mmsi,
                                                    Timestamp t0,
                                                    Timestamp t1) const {
  if (options_.archive == nullptr) {
    return Status::Invalid("trajectory store has no archive attached");
  }
  Trajectory out;
  out.mmsi = mmsi;
  const std::string start = EncodeTrajectoryKey(mmsi, t0);
  // End key: t1 + 1 keeps the scan end-exclusive while the API is inclusive;
  // saturate at the maximum to avoid signed overflow for open-ended scans.
  const std::string end =
      t1 >= kMaxTimestamp
          ? EncodeTrajectoryKey(mmsi, kMaxTimestamp)
          : EncodeTrajectoryKey(mmsi, t1 + 1);
  for (const auto& [key, value] : options_.archive->Scan(start, end)) {
    uint32_t k_mmsi = 0;
    TrajectoryPoint p;
    if (!DecodeTrajectoryKey(key, &k_mmsi, &p.t) || k_mmsi != mmsi) continue;
    TrajectoryPoint decoded;
    if (!DecodeTrajectoryValue(value, &decoded)) {
      return Status::Corruption("bad archived trajectory value");
    }
    decoded.t = p.t;
    out.points.push_back(decoded);
  }
  return out;
}

// --- PartitionedTrajectoryView ----------------------------------------------

size_t PartitionedTrajectoryView::VesselCount() const {
  size_t n = 0;
  for (const TrajectoryStore* p : partitions_) n += p->VesselCount();
  return n;
}

size_t PartitionedTrajectoryView::PointCount() const {
  size_t n = 0;
  for (const TrajectoryStore* p : partitions_) n += p->PointCount();
  return n;
}

Result<const Trajectory*> PartitionedTrajectoryView::GetTrajectory(
    uint32_t mmsi) const {
  for (const TrajectoryStore* p : partitions_) {
    auto traj = p->GetTrajectory(mmsi);
    if (traj.ok()) return traj;
  }
  return Status::NotFound("vessel not in any partition");
}

Result<Trajectory> PartitionedTrajectoryView::GetTrajectorySlice(
    uint32_t mmsi, Timestamp t0, Timestamp t1) const {
  for (const TrajectoryStore* p : partitions_) {
    auto slice = p->GetTrajectorySlice(mmsi, t0, t1);
    if (slice.ok()) return slice;
  }
  return Status::NotFound("vessel not in any partition");
}

std::optional<TrajectoryPoint> PartitionedTrajectoryView::Latest(
    uint32_t mmsi) const {
  for (const TrajectoryStore* p : partitions_) {
    auto latest = p->Latest(mmsi);
    if (latest.has_value()) return latest;
  }
  return std::nullopt;
}

std::vector<uint32_t> PartitionedTrajectoryView::QueryLive(
    const BoundingBox& box) const {
  std::vector<uint32_t> out;
  for (const TrajectoryStore* p : partitions_) {
    const auto part = p->QueryLive(box);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<uint32_t, double>> PartitionedTrajectoryView::NearestLive(
    const GeoPoint& p, size_t k) const {
  std::vector<std::pair<uint32_t, double>> all;
  for (const TrajectoryStore* part : partitions_) {
    const auto nearest = part->NearestLive(p, k);
    all.insert(all.end(), nearest.begin(), nearest.end());
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<Trajectory> PartitionedTrajectoryView::QueryWindow(
    const BoundingBox& box, Timestamp t0, Timestamp t1) const {
  std::vector<Trajectory> out;
  for (const TrajectoryStore* p : partitions_) {
    auto part = p->QueryWindow(box, t0, t1);
    for (auto& traj : part) out.push_back(std::move(traj));
  }
  std::sort(out.begin(), out.end(),
            [](const Trajectory& a, const Trajectory& b) {
              return a.mmsi < b.mmsi;
            });
  return out;
}

std::vector<std::pair<uint32_t, TrajectoryPoint>>
PartitionedTrajectoryView::TimeSlice(Timestamp t) const {
  std::vector<std::pair<uint32_t, TrajectoryPoint>> out;
  for (const TrajectoryStore* p : partitions_) {
    auto part = p->TimeSlice(t);
    for (auto& entry : part) out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<uint32_t> PartitionedTrajectoryView::Vessels() const {
  std::vector<uint32_t> out;
  for (const TrajectoryStore* p : partitions_) {
    const auto part = p->Vessels();
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace marlin
