#include "storage/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/units.h"

namespace marlin {

RTree::RTree(std::vector<RTreeEntry> entries, int fanout)
    : entries_(std::move(entries)), fanout_(std::max(2, fanout)) {
  num_entries_ = entries_.size();
  if (entries_.empty()) return;

  // --- Sort-Tile-Recursive packing of the leaf level ---
  // Sort by centre longitude, slice into vertical strips of S = ceil(sqrt(P))
  // tiles, then sort each strip by centre latitude.
  const size_t n = entries_.size();
  const size_t leaves = (n + fanout_ - 1) / fanout_;
  const size_t strips =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(leaves))));
  const size_t per_strip = strips == 0 ? n : (n + strips - 1) / strips;

  std::sort(entries_.begin(), entries_.end(),
            [](const RTreeEntry& a, const RTreeEntry& b) {
              return a.box.Center().lon < b.box.Center().lon;
            });
  for (size_t s = 0; s * per_strip < n; ++s) {
    const size_t begin = s * per_strip;
    const size_t end = std::min(n, begin + per_strip);
    std::sort(entries_.begin() + begin, entries_.begin() + end,
              [](const RTreeEntry& a, const RTreeEntry& b) {
                return a.box.Center().lat < b.box.Center().lat;
              });
  }

  // --- Build leaf nodes over packed entries ---
  std::vector<int32_t> level;
  for (size_t i = 0; i < n; i += fanout_) {
    Node node;
    node.leaf = true;
    node.first_child = static_cast<int32_t>(i);
    node.child_count = static_cast<int32_t>(std::min<size_t>(fanout_, n - i));
    node.box = BoundingBox::Empty();
    for (int32_t c = 0; c < node.child_count; ++c) {
      node.box.Extend(entries_[i + c].box);
    }
    level.push_back(static_cast<int32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  height_ = 1;

  // --- Pack upper levels until a single root remains ---
  while (level.size() > 1) {
    std::vector<int32_t> next;
    for (size_t i = 0; i < level.size(); i += fanout_) {
      Node node;
      node.leaf = false;
      node.first_child = level[i];
      node.child_count =
          static_cast<int32_t>(std::min<size_t>(fanout_, level.size() - i));
      node.box = BoundingBox::Empty();
      for (int32_t c = 0; c < node.child_count; ++c) {
        node.box.Extend(nodes_[level[i] + c].box);
      }
      next.push_back(static_cast<int32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
}

std::vector<uint64_t> RTree::Query(const BoundingBox& query) const {
  std::vector<uint64_t> out;
  Visit(query, [&out](const RTreeEntry& e) {
    out.push_back(e.id);
    return true;
  });
  return out;
}

double RTree::MinDistanceMetres(const BoundingBox& box, const GeoPoint& p,
                                double cos_lat) const {
  const double dlat =
      p.lat < box.min_lat ? box.min_lat - p.lat
      : p.lat > box.max_lat ? p.lat - box.max_lat
                            : 0.0;
  const double dlon =
      p.lon < box.min_lon ? box.min_lon - p.lon
      : p.lon > box.max_lon ? p.lon - box.max_lon
                            : 0.0;
  const double metres_per_deg = DegToRad(1.0) * kEarthRadiusMetres;
  const double dy = dlat * metres_per_deg;
  const double dx = dlon * metres_per_deg * cos_lat;
  return std::sqrt(dx * dx + dy * dy);
}

std::vector<std::pair<uint64_t, double>> RTree::Nearest(const GeoPoint& query,
                                                        size_t k) const {
  std::vector<std::pair<uint64_t, double>> out;
  if (nodes_.empty() || k == 0) return out;
  const double cos_lat = std::cos(DegToRad(query.lat));

  // Best-first search over (distance, is_entry, index).
  struct Item {
    double dist;
    bool is_entry;
    int32_t index;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> frontier;
  frontier.push({MinDistanceMetres(nodes_[root_].box, query, cos_lat), false,
                 root_});
  while (!frontier.empty() && out.size() < k) {
    const Item item = frontier.top();
    frontier.pop();
    if (item.is_entry) {
      out.emplace_back(entries_[item.index].id, item.dist);
      continue;
    }
    const Node& node = nodes_[item.index];
    if (node.leaf) {
      for (int32_t c = 0; c < node.child_count; ++c) {
        const int32_t idx = node.first_child + c;
        frontier.push(
            {MinDistanceMetres(entries_[idx].box, query, cos_lat), true, idx});
      }
    } else {
      for (int32_t c = 0; c < node.child_count; ++c) {
        const int32_t idx = node.first_child + c;
        frontier.push(
            {MinDistanceMetres(nodes_[idx].box, query, cos_lat), false, idx});
      }
    }
  }
  return out;
}

}  // namespace marlin
