#include "storage/coding.h"

namespace marlin {

void PutFixed64BE(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  dst->append(buf, 8);
}

void PutFixed32BE(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 3; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  dst->append(buf, 4);
}

uint64_t GetFixed64BE(std::string_view src, size_t offset) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(src[offset + i]);
  }
  return v;
}

uint32_t GetFixed32BE(std::string_view src, size_t offset) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<uint8_t>(src[offset + i]);
  }
  return v;
}

void PutFixed64LE(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  dst->append(buf, 8);
}

uint64_t GetFixed64LE(std::string_view src, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(src[offset + i]);
  }
  return v;
}

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

size_t GetVarint32(std::string_view src, size_t offset, uint32_t* out) {
  uint32_t v = 0;
  int shift = 0;
  size_t i = offset;
  while (i < src.size() && shift <= 28) {
    const uint8_t byte = static_cast<uint8_t>(src[i++]);
    v |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return i - offset;
    }
    shift += 7;
  }
  return 0;
}

void PutDoubleLE(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64LE(dst, bits);
}

double GetDoubleLE(std::string_view src, size_t offset) {
  const uint64_t bits = GetFixed64LE(src, offset);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void PutOrderedInt64(std::string* dst, int64_t v) {
  PutFixed64BE(dst, static_cast<uint64_t>(v) ^ (1ull << 63));
}

int64_t GetOrderedInt64(std::string_view src, size_t offset) {
  return static_cast<int64_t>(GetFixed64BE(src, offset) ^ (1ull << 63));
}

namespace {

struct Crc32cTable {
  uint32_t table[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      table[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  static const Crc32cTable t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = t.table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace marlin
