#include "storage/grid_index.h"

#include <algorithm>
#include <optional>

#include "common/units.h"

namespace marlin {

void GridIndex::Upsert(uint64_t id, const GeoPoint& p) {
  GeoPoint* current = positions_.Find(id);
  if (current != nullptr) {
    const CellKey old_key = KeyFor(*current);
    const CellKey new_key = KeyFor(p);
    if (old_key != new_key) {
      std::vector<uint64_t>& bucket = cells_[old_key];
      bucket.erase(std::remove(bucket.begin(), bucket.end(), id),
                   bucket.end());
      if (bucket.empty()) cells_.Erase(old_key);
      BucketInsert(new_key, id);
    }
    // `current` stays valid: the bucket moves above only touch `cells_`.
    *current = p;
    return;
  }
  positions_[id] = p;
  BucketInsert(KeyFor(p), id);
}

void GridIndex::Remove(uint64_t id) {
  GeoPoint* current = positions_.Find(id);
  if (current == nullptr) return;
  const CellKey key = KeyFor(*current);
  std::vector<uint64_t>& bucket = cells_[key];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  if (bucket.empty()) cells_.Erase(key);
  positions_.Erase(id);
}

std::optional<GeoPoint> GridIndex::Get(uint64_t id) const {
  const GeoPoint* p = positions_.Find(id);
  if (p == nullptr) return std::nullopt;
  return *p;
}

std::vector<uint64_t> GridIndex::Query(const BoundingBox& box) const {
  std::vector<uint64_t> out;
  VisitBox(box, [&out](uint64_t id, const GeoPoint&) { out.push_back(id); });
  return out;
}

double GridIndex::ApproxDistanceMetres(const GeoPoint& a,
                                       const GeoPoint& b) const {
  const double metres_per_deg = DegToRad(1.0) * kEarthRadiusMetres;
  const double dy = (a.lat - b.lat) * metres_per_deg;
  const double dx = (a.lon - b.lon) * metres_per_deg *
                    std::cos(DegToRad((a.lat + b.lat) / 2));
  return std::sqrt(dx * dx + dy * dy);
}

void GridIndex::RadiusMargins(double radius_m, double centre_lat,
                              double* lat_margin_deg, double* lon_margin_deg) {
  const double metres_per_deg = DegToRad(1.0) * kEarthRadiusMetres;
  *lat_margin_deg = radius_m / metres_per_deg;
  const double cos_lat = std::max(0.01, std::cos(DegToRad(centre_lat)));
  *lon_margin_deg = radius_m / (metres_per_deg * cos_lat);
}

void GridIndex::QueryRadiusInto(
    const GeoPoint& centre, double radius_m,
    std::vector<std::pair<uint64_t, double>>* out) const {
  out->clear();
  double lat_margin = 0.0;
  double lon_margin = 0.0;
  RadiusMargins(radius_m, centre.lat, &lat_margin, &lon_margin);
  const BoundingBox box(centre.lat - lat_margin, centre.lon - lon_margin,
                        centre.lat + lat_margin, centre.lon + lon_margin);
  VisitBox(box, [this, &centre, radius_m, out](uint64_t id,
                                               const GeoPoint& p) {
    const double d = ApproxDistanceMetres(centre, p);
    if (d <= radius_m) out->emplace_back(id, d);
  });
}

std::vector<std::pair<uint64_t, double>> GridIndex::QueryRadius(
    const GeoPoint& centre, double radius_m) const {
  std::vector<std::pair<uint64_t, double>> out;
  QueryRadiusInto(centre, radius_m, &out);
  return out;
}

std::vector<std::pair<uint64_t, double>> GridIndex::Nearest(
    const GeoPoint& query, size_t k) const {
  std::vector<std::pair<uint64_t, double>> out;
  if (positions_.empty() || k == 0) return out;
  // Expanding ring: double the radius until k hits are inside a radius that
  // is fully covered by the searched ring.
  const double metres_per_deg = DegToRad(1.0) * kEarthRadiusMetres;
  double radius = cell_deg_ * metres_per_deg;  // one cell pitch
  const double max_radius = 180.0 * metres_per_deg;
  while (radius <= max_radius) {
    auto hits = QueryRadius(query, radius);
    if (hits.size() >= k) {
      std::sort(hits.begin(), hits.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      hits.resize(k);
      return hits;
    }
    radius *= 2.0;
  }
  auto hits = QueryRadius(query, max_radius);
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace marlin
