#include "storage/grid_index.h"

#include <algorithm>
#include <optional>

#include "common/units.h"

namespace marlin {

void GridIndex::Upsert(uint64_t id, const GeoPoint& p) {
  auto it = positions_.find(id);
  if (it != positions_.end()) {
    const CellKey old_key = KeyFor(it->second);
    const CellKey new_key = KeyFor(p);
    if (old_key != new_key) {
      auto& bucket = cells_[old_key];
      bucket.erase(std::remove(bucket.begin(), bucket.end(), id),
                   bucket.end());
      if (bucket.empty()) cells_.erase(old_key);
      cells_[new_key].push_back(id);
    }
    it->second = p;
    return;
  }
  positions_.emplace(id, p);
  cells_[KeyFor(p)].push_back(id);
}

void GridIndex::Remove(uint64_t id) {
  auto it = positions_.find(id);
  if (it == positions_.end()) return;
  const CellKey key = KeyFor(it->second);
  auto& bucket = cells_[key];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  if (bucket.empty()) cells_.erase(key);
  positions_.erase(it);
}

std::optional<GeoPoint> GridIndex::Get(uint64_t id) const {
  auto it = positions_.find(id);
  if (it == positions_.end()) return std::nullopt;
  return it->second;
}

std::vector<uint64_t> GridIndex::Query(const BoundingBox& box) const {
  std::vector<uint64_t> out;
  const int32_t row0 =
      static_cast<int32_t>(std::floor((box.min_lat + 90.0) / cell_deg_));
  const int32_t row1 =
      static_cast<int32_t>(std::floor((box.max_lat + 90.0) / cell_deg_));
  const int32_t col0 =
      static_cast<int32_t>(std::floor((box.min_lon + 180.0) / cell_deg_));
  const int32_t col1 =
      static_cast<int32_t>(std::floor((box.max_lon + 180.0) / cell_deg_));
  for (int32_t r = row0; r <= row1; ++r) {
    for (int32_t c = col0; c <= col1; ++c) {
      auto it = cells_.find(PackCell(r, c));
      if (it == cells_.end()) continue;
      for (uint64_t id : it->second) {
        if (box.Contains(positions_.at(id))) out.push_back(id);
      }
    }
  }
  return out;
}

double GridIndex::ApproxDistanceMetres(const GeoPoint& a,
                                       const GeoPoint& b) const {
  const double metres_per_deg = DegToRad(1.0) * kEarthRadiusMetres;
  const double dy = (a.lat - b.lat) * metres_per_deg;
  const double dx = (a.lon - b.lon) * metres_per_deg *
                    std::cos(DegToRad((a.lat + b.lat) / 2));
  return std::sqrt(dx * dx + dy * dy);
}

void GridIndex::RadiusMargins(double radius_m, double centre_lat,
                              double* lat_margin_deg, double* lon_margin_deg) {
  const double metres_per_deg = DegToRad(1.0) * kEarthRadiusMetres;
  *lat_margin_deg = radius_m / metres_per_deg;
  const double cos_lat = std::max(0.01, std::cos(DegToRad(centre_lat)));
  *lon_margin_deg = radius_m / (metres_per_deg * cos_lat);
}

std::vector<std::pair<uint64_t, double>> GridIndex::QueryRadius(
    const GeoPoint& centre, double radius_m) const {
  double lat_margin = 0.0;
  double lon_margin = 0.0;
  RadiusMargins(radius_m, centre.lat, &lat_margin, &lon_margin);
  const BoundingBox box(centre.lat - lat_margin, centre.lon - lon_margin,
                        centre.lat + lat_margin, centre.lon + lon_margin);
  std::vector<std::pair<uint64_t, double>> out;
  for (uint64_t id : Query(box)) {
    const double d = ApproxDistanceMetres(centre, positions_.at(id));
    if (d <= radius_m) out.emplace_back(id, d);
  }
  return out;
}

std::vector<std::pair<uint64_t, double>> GridIndex::Nearest(
    const GeoPoint& query, size_t k) const {
  std::vector<std::pair<uint64_t, double>> out;
  if (positions_.empty() || k == 0) return out;
  // Expanding ring: double the radius until k hits are inside a radius that
  // is fully covered by the searched ring.
  const double metres_per_deg = DegToRad(1.0) * kEarthRadiusMetres;
  double radius = cell_deg_ * metres_per_deg;  // one cell pitch
  const double max_radius = 180.0 * metres_per_deg;
  while (radius <= max_radius) {
    auto hits = QueryRadius(query, radius);
    if (hits.size() >= k) {
      std::sort(hits.begin(), hits.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      hits.resize(k);
      return hits;
    }
    radius *= 2.0;
  }
  auto hits = QueryRadius(query, max_radius);
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace marlin
