#include "storage/trajectory.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.h"
#include "storage/coding.h"

namespace marlin {

double Trajectory::LengthMetres() const {
  double total = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += HaversineDistance(points[i - 1].position, points[i].position);
  }
  return total;
}

BoundingBox Trajectory::Bounds() const {
  BoundingBox box = BoundingBox::Empty();
  for (const auto& p : points) box.Extend(p.position);
  return box;
}

TrajectoryPoint Trajectory::At(Timestamp t) const {
  if (points.empty()) return TrajectoryPoint{};
  if (t <= points.front().t) return points.front();
  if (t >= points.back().t) return points.back();
  // Binary search for the bracketing pair.
  const auto it = std::lower_bound(
      points.begin(), points.end(), t,
      [](const TrajectoryPoint& p, Timestamp ts) { return p.t < ts; });
  const TrajectoryPoint& hi = *it;
  const TrajectoryPoint& lo = *(it - 1);
  if (hi.t == lo.t) return lo;
  const double f = static_cast<double>(t - lo.t) / static_cast<double>(hi.t - lo.t);
  TrajectoryPoint out;
  out.t = t;
  out.position = Interpolate(lo.position, hi.position, f);
  out.sog_mps = static_cast<float>(lo.sog_mps + f * (hi.sog_mps - lo.sog_mps));
  out.cog_deg = lo.cog_deg;  // course is piecewise constant between fixes
  return out;
}

Trajectory Trajectory::Slice(Timestamp t0, Timestamp t1) const {
  Trajectory out;
  out.mmsi = mmsi;
  for (const auto& p : points) {
    if (p.t >= t0 && p.t <= t1) out.points.push_back(p);
  }
  return out;
}

TrajectoryError ComputeSedError(const Trajectory& original,
                                const Trajectory& compressed) {
  TrajectoryError err;
  if (original.points.empty() || compressed.points.empty()) return err;
  double sum = 0.0;
  for (const auto& p : original.points) {
    const TrajectoryPoint q = compressed.At(p.t);
    const double d = HaversineDistance(p.position, q.position);
    sum += d;
    err.max_m = std::max(err.max_m, d);
  }
  err.mean_m = sum / static_cast<double>(original.points.size());
  return err;
}

std::string EncodeTrajectoryKey(uint32_t mmsi, Timestamp t) {
  std::string key;
  key.reserve(12);
  PutFixed32BE(&key, mmsi);
  PutOrderedInt64(&key, t);
  return key;
}

bool DecodeTrajectoryKey(std::string_view key, uint32_t* mmsi, Timestamp* t) {
  if (key.size() != 12) return false;
  *mmsi = GetFixed32BE(key, 0);
  *t = GetOrderedInt64(key, 4);
  return true;
}

std::string EncodeTrajectoryValue(const TrajectoryPoint& p) {
  std::string v;
  v.reserve(24);
  PutDoubleLE(&v, p.position.lat);
  PutDoubleLE(&v, p.position.lon);
  uint32_t sog_bits, cog_bits;
  static_assert(sizeof(float) == 4);
  std::memcpy(&sog_bits, &p.sog_mps, 4);
  std::memcpy(&cog_bits, &p.cog_deg, 4);
  PutFixed32BE(&v, sog_bits);
  PutFixed32BE(&v, cog_bits);
  return v;
}

bool DecodeTrajectoryValue(std::string_view value, TrajectoryPoint* out) {
  if (value.size() != 24) return false;
  out->position.lat = GetDoubleLE(value, 0);
  out->position.lon = GetDoubleLE(value, 8);
  const uint32_t sog_bits = GetFixed32BE(value, 16);
  const uint32_t cog_bits = GetFixed32BE(value, 20);
  std::memcpy(&out->sog_mps, &sog_bits, 4);
  std::memcpy(&out->cog_deg, &cog_bits, 4);
  return true;
}

}  // namespace marlin
