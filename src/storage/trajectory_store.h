#ifndef MARLIN_STORAGE_TRAJECTORY_STORE_H_
#define MARLIN_STORAGE_TRAJECTORY_STORE_H_

/// \file trajectory_store.h
/// \brief Trajectory-native store: the moving-object data manager the paper
/// says generic (RDF / relational) stores fail to provide (§2.3, §2.5).
///
/// Combines three access paths:
///  * per-vessel time-ordered history (vector per MMSI, archival via LSM key
///    schema on request),
///  * live spatial picture (GridIndex of latest positions),
///  * spatio-temporal window queries (per-vessel binary search pruned by a
///    per-vessel bounding box).

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/grid_index.h"
#include "storage/lsm_store.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief In-memory trajectory manager with optional LSM archival backing.
class TrajectoryStore {
 public:
  struct Options {
    /// Grid pitch for the live-position index.
    double grid_cell_deg = 0.25;
    /// When set, every appended point is also written to this LSM store
    /// using the `[mmsi][timestamp]` key schema.
    LsmStore* archive = nullptr;
  };

  TrajectoryStore() : TrajectoryStore(Options()) {}
  explicit TrajectoryStore(const Options& options);

  /// \brief Appends a sample (must be newer than the vessel's last sample;
  /// out-of-order input belongs in the reconstruction layer, which fixes
  /// ordering before storage).
  Status Append(uint32_t mmsi, const TrajectoryPoint& point);

  /// \brief Number of vessels with at least one sample.
  size_t VesselCount() const { return trajectories_.size(); }
  /// \brief Total stored samples.
  size_t PointCount() const { return point_count_; }

  /// \brief Full history of one vessel.
  Result<const Trajectory*> GetTrajectory(uint32_t mmsi) const;

  /// \brief History of one vessel restricted to [t0, t1].
  Result<Trajectory> GetTrajectorySlice(uint32_t mmsi, Timestamp t0,
                                        Timestamp t1) const;

  /// \brief Latest known sample per vessel.
  std::optional<TrajectoryPoint> Latest(uint32_t mmsi) const;

  /// \brief Vessels whose *latest* position lies in `box`.
  std::vector<uint32_t> QueryLive(const BoundingBox& box) const;

  /// \brief k vessels nearest to `p` by latest position, nearest first.
  std::vector<std::pair<uint32_t, double>> NearestLive(const GeoPoint& p,
                                                       size_t k) const;

  /// \brief Spatio-temporal range query: all samples in `box` × [t0, t1],
  /// grouped per vessel. Uses per-vessel bounds + time binary search.
  std::vector<Trajectory> QueryWindow(const BoundingBox& box, Timestamp t0,
                                      Timestamp t1) const;

  /// \brief Interpolated position of every vessel active at time `t`
  /// (vessels whose observed span covers `t`).
  std::vector<std::pair<uint32_t, TrajectoryPoint>> TimeSlice(
      Timestamp t) const;

  /// \brief All MMSIs in the store.
  std::vector<uint32_t> Vessels() const;

  /// \brief Loads a vessel's history back from the archive LSM (round-trip
  /// path used by recovery tests and the posteriori-analysis benchmark).
  Result<Trajectory> LoadFromArchive(uint32_t mmsi, Timestamp t0,
                                     Timestamp t1) const;

 private:
  struct VesselData {
    Trajectory trajectory;
    BoundingBox bounds = BoundingBox::Empty();
  };

  Options options_;
  std::unordered_map<uint32_t, VesselData> trajectories_;
  GridIndex live_index_;
  size_t point_count_ = 0;
};

/// \brief Read-only fan-out over MMSI-partitioned trajectory stores.
///
/// A `ShardedPipeline` gives each shard its own `TrajectoryStore`; this view
/// answers the store's query API across all partitions — routing per-vessel
/// lookups to the owning partition (by probing: partitions are disjoint) and
/// merging the results of spatial/temporal scans. The view does not own the
/// partitions and must not outlive them; queries require the partitions to
/// be quiescent (no shard thread appending).
class PartitionedTrajectoryView {
 public:
  explicit PartitionedTrajectoryView(
      std::vector<const TrajectoryStore*> partitions)
      : partitions_(std::move(partitions)) {}

  size_t partition_count() const { return partitions_.size(); }
  const TrajectoryStore& partition(size_t i) const { return *partitions_[i]; }

  /// \brief Vessels with at least one sample, across all partitions.
  size_t VesselCount() const;
  /// \brief Total stored samples across all partitions.
  size_t PointCount() const;

  /// \brief Full history of one vessel (routed to its partition).
  Result<const Trajectory*> GetTrajectory(uint32_t mmsi) const;

  /// \brief History of one vessel restricted to [t0, t1].
  Result<Trajectory> GetTrajectorySlice(uint32_t mmsi, Timestamp t0,
                                        Timestamp t1) const;

  /// \brief Latest known sample of one vessel.
  std::optional<TrajectoryPoint> Latest(uint32_t mmsi) const;

  /// \brief Vessels whose latest position lies in `box` (merged, sorted).
  std::vector<uint32_t> QueryLive(const BoundingBox& box) const;

  /// \brief k vessels nearest to `p` by latest position, nearest first
  /// (k-way merge of per-partition results).
  std::vector<std::pair<uint32_t, double>> NearestLive(const GeoPoint& p,
                                                       size_t k) const;

  /// \brief Spatio-temporal range query, grouped per vessel (merged,
  /// ordered by MMSI).
  std::vector<Trajectory> QueryWindow(const BoundingBox& box, Timestamp t0,
                                      Timestamp t1) const;

  /// \brief Interpolated position of every vessel active at `t` (merged,
  /// ordered by MMSI).
  std::vector<std::pair<uint32_t, TrajectoryPoint>> TimeSlice(
      Timestamp t) const;

  /// \brief All MMSIs, sorted ascending.
  std::vector<uint32_t> Vessels() const;

 private:
  std::vector<const TrajectoryStore*> partitions_;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_TRAJECTORY_STORE_H_
