#ifndef MARLIN_STORAGE_BLOOM_H_
#define MARLIN_STORAGE_BLOOM_H_

/// \file bloom.h
/// \brief Double-hashed Bloom filter for sorted-run point-lookup skipping.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/coding.h"

namespace marlin {

/// \brief Classic Bloom filter with k probes derived from one 64-bit hash
/// (Kirsch–Mitzenmacher double hashing), ~1 % false positives at 10
/// bits/key.
class BloomFilter {
 public:
  /// \brief Sizes the filter for `expected_keys` at `bits_per_key`.
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  /// \brief Reconstructs a filter from its serialized form.
  static BloomFilter Deserialize(std::string_view data);

  void Add(std::string_view key);

  /// \brief False means definitely absent; true means probably present.
  bool MayContain(std::string_view key) const;

  /// \brief Serialized form: [k:1][bits little-endian bytes].
  std::string Serialize() const;

  size_t SizeBytes() const { return bits_.size(); }

 private:
  BloomFilter() = default;

  int num_probes_ = 6;
  std::vector<uint8_t> bits_;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_BLOOM_H_
