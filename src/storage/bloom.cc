#include "storage/bloom.h"

#include <algorithm>
#include <cmath>

namespace marlin {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  const size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
  // k = ln2 * bits/key, clamped to a practical range.
  num_probes_ = std::clamp(
      static_cast<int>(std::round(bits_per_key * 0.69)), 1, 30);
}

BloomFilter BloomFilter::Deserialize(std::string_view data) {
  BloomFilter f;
  if (data.empty()) {
    f.bits_.assign(8, 0);
    f.num_probes_ = 1;
    return f;
  }
  f.num_probes_ = std::clamp<int>(static_cast<uint8_t>(data[0]), 1, 30);
  f.bits_.assign(data.begin() + 1, data.end());
  if (f.bits_.empty()) f.bits_.assign(8, 0);
  return f;
}

void BloomFilter::Add(std::string_view key) {
  const uint64_t h = Fnv1a64(key);
  const uint64_t h1 = h;
  const uint64_t h2 = (h >> 33) | (h << 31);
  const uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  const uint64_t h = Fnv1a64(key);
  const uint64_t h1 = h;
  const uint64_t h2 = (h >> 33) | (h << 31);
  const uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(num_probes_));
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  return out;
}

}  // namespace marlin
