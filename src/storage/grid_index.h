#ifndef MARLIN_STORAGE_GRID_INDEX_H_
#define MARLIN_STORAGE_GRID_INDEX_H_

/// \file grid_index.h
/// \brief Dynamic uniform-grid point index for the live picture (§2.3).
///
/// The streaming side needs insert/update/remove at message rate; a uniform
/// lat/lon grid with per-cell vectors is the classic moving-objects answer
/// (cheap updates, predictable scans). Complements the static RTree used for
/// archival analytics.

#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/geometry.h"
#include "geo/point.h"

namespace marlin {

/// \brief Uniform grid over lat/lon with movable point payloads.
class GridIndex {
 public:
  /// \brief `cell_deg` is the grid pitch in degrees (0.1° ≈ 6 NM N-S).
  explicit GridIndex(double cell_deg = 0.1) : cell_deg_(cell_deg) {}

  /// \brief Inserts or moves `id` to `p`.
  void Upsert(uint64_t id, const GeoPoint& p);

  /// \brief Removes `id`; no-op when absent.
  void Remove(uint64_t id);

  /// \brief Current position of `id`, if present.
  std::optional<GeoPoint> Get(uint64_t id) const;

  /// \brief All ids inside `box`.
  std::vector<uint64_t> Query(const BoundingBox& box) const;

  /// \brief Ids within `radius_m` metres of `centre` (equirectangular test),
  /// with their distances, unsorted.
  std::vector<std::pair<uint64_t, double>> QueryRadius(const GeoPoint& centre,
                                                       double radius_m) const;

  /// \brief k nearest ids to `query` (expanding ring search), nearest first.
  std::vector<std::pair<uint64_t, double>> Nearest(const GeoPoint& query,
                                                   size_t k) const;

  size_t size() const { return positions_.size(); }
  double cell_deg() const { return cell_deg_; }

 private:
  using CellKey = int64_t;

  CellKey KeyFor(const GeoPoint& p) const {
    const int32_t row = static_cast<int32_t>(
        std::floor((p.lat + 90.0) / cell_deg_));
    const int32_t col = static_cast<int32_t>(
        std::floor((p.lon + 180.0) / cell_deg_));
    return (static_cast<int64_t>(row) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(col));
  }

  double ApproxDistanceMetres(const GeoPoint& a, const GeoPoint& b) const;

  double cell_deg_;
  std::unordered_map<CellKey, std::vector<uint64_t>> cells_;
  std::unordered_map<uint64_t, GeoPoint> positions_;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_GRID_INDEX_H_
