#ifndef MARLIN_STORAGE_GRID_INDEX_H_
#define MARLIN_STORAGE_GRID_INDEX_H_

/// \file grid_index.h
/// \brief Dynamic uniform-grid point index for the live picture (§2.3).
///
/// The streaming side needs insert/update/remove at message rate; a uniform
/// lat/lon grid with per-cell vectors is the classic moving-objects answer
/// (cheap updates, predictable scans). Complements the static RTree used for
/// archival analytics.

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_hash.h"
#include "geo/geometry.h"
#include "geo/point.h"

namespace marlin {

/// \brief Uniform grid over lat/lon with movable point payloads.
class GridIndex {
 public:
  /// Packed cell coordinate: (lat row << 32) | lon column.
  using CellKey = int64_t;

  /// \brief `cell_deg` is the grid pitch in degrees (0.1° ≈ 6 NM N-S).
  explicit GridIndex(double cell_deg = 0.1) : cell_deg_(cell_deg) {}

  // --- Shared grid math -----------------------------------------------------
  // Every uniform-grid consumer (this live index, the pair stage's
  // GridPairPartitioner) must bucket and scan with *identical* geometry, or
  // the pair stage's halo could silently under-cover what QueryRadius
  // scans. These statics are the single source of truth: row-major packed
  // keys on a (lat+90)/(lon+180) floor grid — unwrapped at the
  // antimeridian — and the radius → degree margins QueryRadius prefilters
  // with.

  static CellKey PackCell(int32_t row, int32_t col) {
    return (static_cast<int64_t>(row) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(col));
  }
  static int32_t CellRow(CellKey key) {
    return static_cast<int32_t>(key >> 32);
  }
  static int32_t CellCol(CellKey key) {
    return static_cast<int32_t>(static_cast<uint32_t>(key));
  }

  /// \brief Cell key of `p` on a uniform grid of `cell_deg` pitch.
  static CellKey KeyOnPitch(const GeoPoint& p, double cell_deg) {
    const int32_t row =
        static_cast<int32_t>(std::floor((p.lat + 90.0) / cell_deg));
    const int32_t col =
        static_cast<int32_t>(std::floor((p.lon + 180.0) / cell_deg));
    return PackCell(row, col);
  }

  /// \brief The bounding-box margins (degrees) a radius scan centred at
  /// `centre_lat` covers: QueryRadius prefilters with exactly these, so any
  /// partner it can return lies within them of the scan centre.
  static void RadiusMargins(double radius_m, double centre_lat,
                            double* lat_margin_deg, double* lon_margin_deg);

  /// \brief Inserts or moves `id` to `p`.
  void Upsert(uint64_t id, const GeoPoint& p);

  /// \brief Removes `id`; no-op when absent.
  void Remove(uint64_t id);

  /// \brief Current position of `id`, if present.
  std::optional<GeoPoint> Get(uint64_t id) const;

  /// \brief All ids inside `box`.
  std::vector<uint64_t> Query(const BoundingBox& box) const;

  /// \brief Ids within `radius_m` metres of `centre` (equirectangular test),
  /// with their distances, unsorted.
  std::vector<std::pair<uint64_t, double>> QueryRadius(const GeoPoint& centre,
                                                       double radius_m) const;

  /// \brief Allocation-free radius scan for per-message callers: clears and
  /// refills `*out` (deterministic cell-row/column, bucket-insertion order —
  /// identical to `QueryRadius`'s), retaining its capacity across calls.
  void QueryRadiusInto(const GeoPoint& centre, double radius_m,
                       std::vector<std::pair<uint64_t, double>>* out) const;

  /// \brief k nearest ids to `query` (expanding ring search), nearest first.
  std::vector<std::pair<uint64_t, double>> Nearest(const GeoPoint& query,
                                                   size_t k) const;

  size_t size() const { return positions_.size(); }
  double cell_deg() const { return cell_deg_; }

  /// \brief Drops every point; table capacity is retained (the pooled
  /// pair-stage replicas clear and refill their live picture per window).
  void Clear() {
    cells_.Clear();
    positions_.Clear();
  }

 private:
  CellKey KeyFor(const GeoPoint& p) const { return KeyOnPitch(p, cell_deg_); }

  /// \brief Appends `id` to the bucket of `key`, recycling a pooled
  /// slot's vector capacity when the cell is re-materialized.
  void BucketInsert(CellKey key, uint64_t id) {
    cells_
        .TryEmplaceWith(key,
                        [](std::vector<uint64_t>& bucket) { bucket.clear(); })
        .first->push_back(id);
  }

  /// \brief Applies `fn(id, position)` to every point whose cell
  /// intersects `box` and whose position lies inside it — the single
  /// cell-range walk both `Query` and `QueryRadiusInto` share.
  template <typename Fn>
  void VisitBox(const BoundingBox& box, Fn&& fn) const {
    const int32_t row0 =
        static_cast<int32_t>(std::floor((box.min_lat + 90.0) / cell_deg_));
    const int32_t row1 =
        static_cast<int32_t>(std::floor((box.max_lat + 90.0) / cell_deg_));
    const int32_t col0 =
        static_cast<int32_t>(std::floor((box.min_lon + 180.0) / cell_deg_));
    const int32_t col1 =
        static_cast<int32_t>(std::floor((box.max_lon + 180.0) / cell_deg_));
    for (int32_t r = row0; r <= row1; ++r) {
      for (int32_t c = col0; c <= col1; ++c) {
        const std::vector<uint64_t>* bucket = cells_.Find(PackCell(r, c));
        if (bucket == nullptr) continue;
        for (uint64_t id : *bucket) {
          const GeoPoint& p = *positions_.Find(id);
          if (box.Contains(p)) fn(id, p);
        }
      }
    }
  }

  double ApproxDistanceMetres(const GeoPoint& a, const GeoPoint& b) const;

  double cell_deg_;
  FlatHashMap<CellKey, std::vector<uint64_t>> cells_;
  FlatHashMap<uint64_t, GeoPoint> positions_;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_GRID_INDEX_H_
