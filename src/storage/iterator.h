#ifndef MARLIN_STORAGE_ITERATOR_H_
#define MARLIN_STORAGE_ITERATOR_H_

/// \file iterator.h
/// \brief RocksDB-style iteration contract for ordered key-value data.

#include <string>
#include <string_view>

namespace marlin {

/// \brief Forward iterator over an ordered key-value source.
///
/// Usage: `for (it->SeekToFirst(); it->Valid(); it->Next()) ...`.
/// Accessors are only legal while `Valid()`.
class KvIterator {
 public:
  virtual ~KvIterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// \brief Positions at the first entry with key >= target.
  virtual void Seek(std::string_view target) = 0;
  virtual void Next() = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_ITERATOR_H_
