#ifndef MARLIN_STORAGE_ARCHIVE_H_
#define MARLIN_STORAGE_ARCHIVE_H_

/// \file archive.h
/// \brief Per-shard historical archive: PackedBits position blocks, LSM
/// durability, secondary indexes, and epoch-published read snapshots.
///
/// This is the storage half of the historical serving tier (ROADMAP
/// direction 3). Each `PipelineShardCore` owns one `ShardArchive` for its
/// vessel partition; the coordinator-side `QueryEngine`
/// (core/query_engine.h) fans out over the per-shard snapshots and merges.
///
/// Write path (shard worker thread only):
///   * `Stage(mmsi, point)` runs per clean reconstructed point. It is a
///     pooled vector push — no allocation in steady state — so the ingest
///     hot path pays nothing for archival beyond the copy.
///   * `CloseEpoch()` runs at every pipeline window close. The staged
///     points are cut into one *position block* per (vessel, window) —
///     count, base time, then delta-time / scaled-int coordinate / float
///     kinematics columns packed MSB-first into `PackedBits` words (the
///     PR 5 follow-on: ≤ 2 shift/mask ops per field on decode) — appended
///     to the block log, written to the shard's `LsmStore` under the
///     archival `[mmsi:4][first_t:8]` key, and published to readers.
///
/// Window boundaries are fixed by the input stream (`WindowMustClose`), so
/// every pipeline arrangement cuts byte-identical blocks — the equivalence
/// proof leans on this.
///
/// Index maintenance is incremental at window close: the published snapshot
/// carries a static STR `RTree` + centered `IntervalIndex` over the first
/// `indexed` blocks plus a linear tail of newer blocks; when the tail
/// outgrows `ArchiveOptions::index_rebuild_blocks`, the indexes are rebuilt
/// to cover everything. Readers therefore always see index + tail = all
/// blocks, and the write-side cost per window is O(tail) except for the
/// occasional rebuild.
///
/// Read path (any thread): `snapshot()` hands out a shared_ptr to an
/// immutable `PartitionSnapshot` — epoch-style handoff, so N concurrent
/// readers never observe a half-built epoch and never hold a lock while
/// scanning. The handoff itself is a mutex-guarded pointer copy (a refcount
/// increment; `std::atomic<shared_ptr>` would be lock-free but libstdc++'s
/// implementation is not TSan-clean), so the only writer/reader contention
/// is that single copy — readers cannot stall ingest staging, and an epoch
/// publish waits at most one refcount bump. Block payloads are shared
/// between consecutive snapshots (shared_ptr), so publishing costs
/// O(blocks) pointer copies, not a data copy.

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/packed_bits.h"
#include "common/result.h"
#include "common/status.h"
#include "common/time.h"
#include "geo/geometry.h"
#include "storage/interval_index.h"
#include "storage/lsm_store.h"
#include "storage/rtree.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief Serving-tier configuration, embedded in `PipelineConfig`.
struct ArchiveOptions {
  /// Master switch; off keeps the pipelines byte-for-byte on their
  /// pre-serving-tier behavior (no staging, no snapshots).
  bool enabled = false;
  /// Root directory for the per-shard LSM stores (shard i appends
  /// "/shard_<i>"); empty = volatile in-memory archives.
  std::string directory;
  /// Per-shard LSM memtable flush threshold.
  size_t memtable_bytes_limit = 4 * 1024 * 1024;
  /// Per-shard LSM run-count compaction trigger.
  int max_runs = 8;
  /// Compact on the store's background thread (default) instead of inline
  /// on the shard worker.
  bool background_compaction = true;
  /// Rebuild the static R-tree / interval tree once this many blocks sit in
  /// the unindexed tail. Smaller = more rebuild work per window; larger =
  /// more linear tail scanning per query.
  size_t index_rebuild_blocks = 64;
  /// On open, scan the LSM store and rebuild the in-memory block list /
  /// indexes / snapshot from the durable blocks, so a restarted shard serves
  /// its persisted history immediately. Off for the supervised-restart
  /// rebuild path, which replays the raw batches instead (replaying into an
  /// archive that already re-served its LSM contents would double-publish).
  bool recover_on_open = true;
  /// fdatasync the archive WAL on every block append (LsmStore::wal_sync).
  bool wal_sync = false;
};

/// \brief One (vessel, window) column block: metadata plus the packed
/// payload. Immutable after `CloseEpoch` publishes it.
struct PositionBlock {
  uint32_t mmsi = 0;
  Timestamp t0 = 0;          ///< first point's time
  Timestamp t1 = 0;          ///< last point's time
  uint32_t count = 0;
  BoundingBox bounds;        ///< spatial extent of the block's points
  PackedBits data;           ///< column-encoded points (see EncodePositionBlock)
};

/// \brief Column-encodes `points` (ascending time, same vessel) into `out`
/// (cleared first). Columnar layout — all values of one field, then the
/// next: delta times from the previous point (40-bit unsigned, first delta
/// 0 against `points[0].t`), latitudes then longitudes as signed 32-bit
/// 1e-7-degree fixed point (~1 cm quantum — the equivalence proofs compare
/// archive to archive, so the quantization is invisible to them), SOG then
/// COG as raw float bits.
void EncodePositionBlock(const std::vector<TrajectoryPoint>& points,
                         PackedBits* out);

/// \brief Decodes `count` points from a block payload, appending to `out`.
Status DecodePositionBlock(const PackedBits& data, uint32_t count, uint32_t mmsi,
                           Timestamp t0, std::vector<TrajectoryPoint>* out);

/// \brief LSM value form of a block: [count:4 BE][size_bits:4 BE][words BE].
std::string SerializeBlockValue(const PositionBlock& block);

/// \brief Parses a serialized block value back into count/data (metadata
/// t0/mmsi come from the key; t1/bounds are recomputed on decode).
Status ParseBlockValue(std::string_view value, uint32_t* count,
                       PackedBits* data);

/// \brief Mergeable serving-tier counters (surfaced in PipelineMetrics).
struct ArchiveStats {
  uint64_t points_staged = 0;
  uint64_t blocks = 0;
  uint64_t epochs = 0;
  uint64_t index_rebuilds = 0;
  uint64_t encoded_bytes = 0;   ///< packed payload bytes across all blocks
  uint64_t lsm_flushes = 0;
  uint64_t lsm_compactions = 0;
  uint64_t prefix_bloom_skipped = 0;  ///< runs skipped on vessel scans
  // Fault-tolerance ledger (counted-not-silent).
  uint64_t recovered_blocks = 0;     ///< blocks rebuilt from the LSM at open
  uint64_t blocks_quarantined = 0;   ///< undecodable block values skipped
  uint64_t put_failures = 0;         ///< blocks whose LSM put failed
  uint64_t points_at_risk = 0;       ///< points inside failed-put blocks
  uint64_t wal_torn_truncated = 0;   ///< LSM: torn WAL bytes cut at open
  uint64_t runs_quarantined = 0;     ///< LSM: corrupt runs quarantined
  uint64_t temps_removed = 0;        ///< LSM: orphaned temps reaped

  void Merge(const ArchiveStats& o) {
    points_staged += o.points_staged;
    blocks += o.blocks;
    epochs += o.epochs;
    index_rebuilds += o.index_rebuilds;
    encoded_bytes += o.encoded_bytes;
    lsm_flushes += o.lsm_flushes;
    lsm_compactions += o.lsm_compactions;
    prefix_bloom_skipped += o.prefix_bloom_skipped;
    recovered_blocks += o.recovered_blocks;
    blocks_quarantined += o.blocks_quarantined;
    put_failures += o.put_failures;
    points_at_risk += o.points_at_risk;
    wal_torn_truncated += o.wal_torn_truncated;
    runs_quarantined += o.runs_quarantined;
    temps_removed += o.temps_removed;
  }
};

/// \brief One shard partition of the historical archive.
class ShardArchive {
 public:
  /// \brief Immutable read snapshot, published at epoch close.
  struct PartitionSnapshot {
    uint64_t epoch = 0;
    /// All published blocks, epoch order (within an epoch: ascending MMSI).
    std::vector<std::shared_ptr<const PositionBlock>> blocks;
    /// Static secondary indexes over blocks[0 .. indexed): entry id = block
    /// index. Blocks [indexed, size) are the unindexed tail, scanned
    /// linearly by the query layer against their own metadata.
    std::shared_ptr<const RTree> rtree;
    std::shared_ptr<const IntervalIndex> intervals;
    size_t indexed = 0;
  };

  /// \brief `directory` is this shard's own LSM directory (already
  /// suffixed); empty = volatile.
  ShardArchive(const ArchiveOptions& options, std::string directory);

  ShardArchive(const ShardArchive&) = delete;
  ShardArchive& operator=(const ShardArchive&) = delete;

  /// \brief Stages one clean point (writer thread). Steady state is
  /// allocation-free: the per-vessel staging vectors and the vessel slot
  /// map are pooled across epochs.
  void Stage(uint32_t mmsi, const TrajectoryPoint& point);

  /// \brief Cuts the staged points into blocks, persists them, maintains
  /// the indexes, and publishes a new snapshot (writer thread; called at
  /// pipeline window close). A close with nothing staged publishes nothing
  /// and costs O(1).
  Status CloseEpoch();

  /// \brief Current read snapshot (any thread; the critical section is one
  /// shared_ptr copy). Never null — an empty snapshot precedes the first
  /// epoch.
  std::shared_ptr<const PartitionSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_;
  }

  /// \brief Re-reads one vessel's blocks overlapping [t0, t1] from the LSM
  /// store (durability path, exercises the prefix Bloom filters). Decoded
  /// points are appended in ascending time order.
  Status LoadVesselRange(uint32_t mmsi, Timestamp t0, Timestamp t1,
                         std::vector<TrajectoryPoint>* out) const;

  /// \brief Serving-tier counters including the LSM store's (writer thread,
  /// or any thread while the writer is quiescent).
  ArchiveStats stats() const;

  LsmStore* lsm() { return lsm_.get(); }
  const std::string& directory() const { return directory_; }

 private:
  /// Rebuilds blocks_/indexes/snapshot from the durable LSM contents
  /// (crash-consistent recovery; see ArchiveOptions::recover_on_open).
  void RecoverFromLsm();

  ArchiveOptions options_;
  std::string directory_;
  std::unique_ptr<LsmStore> lsm_;  ///< null only if Open failed (volatile fallback)

  // Staging pool (writer thread only). `slots_` maps a vessel to its pool
  // index for the current epoch; `staged_` lists occupied pool slots in
  // first-touch order. Clearing keeps every vector's capacity.
  FlatHashMap<uint32_t, uint32_t> slots_;
  std::vector<std::vector<TrajectoryPoint>> pool_;
  std::vector<uint32_t> staged_;

  // Writer-side master copy of the published state.
  std::vector<std::shared_ptr<const PositionBlock>> blocks_;
  std::shared_ptr<const RTree> rtree_;
  std::shared_ptr<const IntervalIndex> intervals_;
  size_t indexed_ = 0;
  uint64_t epoch_ = 0;
  ArchiveStats stats_;

  /// Guards only the published pointer below — never held while scanning
  /// or while the writer builds an epoch.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const PartitionSnapshot> snapshot_;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_ARCHIVE_H_
