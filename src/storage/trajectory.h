#ifndef MARLIN_STORAGE_TRAJECTORY_H_
#define MARLIN_STORAGE_TRAJECTORY_H_

/// \file trajectory.h
/// \brief Vessel trajectory representation and key encodings for archival.

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "geo/geometry.h"
#include "geo/point.h"

namespace marlin {

/// \brief One cleaned trajectory sample.
///
/// The kinematics fields carry availability: a report whose SOG/COG arrived
/// as the ITU "not available" sentinel is stored as `kUnavailable` (one
/// fixed quiet-NaN bit pattern) rather than being collapsed to 0.0 — a
/// vessel with missing kinematics is *not* a vessel that is stopped and
/// heading due north. Consumers test `HasSpeed()`/`HasCourse()` before
/// using the fields. The single canonical bit pattern is what lets
/// availability survive the archive's raw-float-bit encodings
/// byte-identically.
struct TrajectoryPoint {
  static constexpr uint32_t kUnavailableBits = 0x7FC00000u;  ///< quiet NaN
  static constexpr float Unavailable() {
    return std::bit_cast<float>(kUnavailableBits);
  }

  Timestamp t = kInvalidTimestamp;
  GeoPoint position;
  float sog_mps = 0.0f;   ///< speed over ground, m/s; NaN = not available
  float cog_deg = 0.0f;   ///< course over ground, deg true; NaN = not available

  bool HasSpeed() const { return !std::isnan(sog_mps); }
  bool HasCourse() const { return !std::isnan(cog_deg); }

  bool operator<(const TrajectoryPoint& o) const { return t < o.t; }
};

/// \brief A time-ordered sequence of samples for one vessel.
struct Trajectory {
  uint32_t mmsi = 0;
  std::vector<TrajectoryPoint> points;

  bool Empty() const { return points.empty(); }
  Timestamp StartTime() const {
    return points.empty() ? kInvalidTimestamp : points.front().t;
  }
  Timestamp EndTime() const {
    return points.empty() ? kInvalidTimestamp : points.back().t;
  }

  /// \brief Total geodesic path length in metres.
  double LengthMetres() const;

  /// \brief Spatial bounds of the whole path.
  BoundingBox Bounds() const;

  /// \brief Linear position interpolation at time `t`; clamps outside the
  /// observed span. Returns invalid point for empty trajectories.
  TrajectoryPoint At(Timestamp t) const;

  /// \brief Sub-trajectory covering [t0, t1] (points inside the range).
  Trajectory Slice(Timestamp t0, Timestamp t1) const;
};

/// \brief Mean / max synchronized Euclidean distance between an original
/// trajectory and its compressed version — the standard error measure for
/// trajectory synopses (experiment E2).
struct TrajectoryError {
  double mean_m = 0.0;
  double max_m = 0.0;
};

/// \brief Computes SED error of `compressed` against every sample of
/// `original` (positions of `compressed` interpolated at original times).
TrajectoryError ComputeSedError(const Trajectory& original,
                                const Trajectory& compressed);

// --- Archival key/value encoding (LsmStore schema) -------------------------

/// \brief Archival key `[mmsi:4 BE][timestamp:8 ordered]` — per-vessel time
/// ranges are contiguous byte ranges.
std::string EncodeTrajectoryKey(uint32_t mmsi, Timestamp t);

/// \brief Inverse of EncodeTrajectoryKey. Returns false on malformed keys.
bool DecodeTrajectoryKey(std::string_view key, uint32_t* mmsi, Timestamp* t);

/// \brief Fixed binary encoding of a TrajectoryPoint value (position, speed,
/// course; 24 bytes).
std::string EncodeTrajectoryValue(const TrajectoryPoint& p);

/// \brief Inverse of EncodeTrajectoryValue; returns false on size mismatch.
bool DecodeTrajectoryValue(std::string_view value, TrajectoryPoint* out);

}  // namespace marlin

#endif  // MARLIN_STORAGE_TRAJECTORY_H_
