#ifndef MARLIN_STORAGE_CODING_H_
#define MARLIN_STORAGE_CODING_H_

/// \file coding.h
/// \brief Byte-order-stable encodings and checksums for storage formats.
///
/// Keys use big-endian fixed-width encodings so that lexicographic byte order
/// equals numeric order — the property every LSM key schema relies on.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace marlin {

/// \brief Appends a big-endian fixed 64-bit value.
void PutFixed64BE(std::string* dst, uint64_t v);

/// \brief Appends a big-endian fixed 32-bit value.
void PutFixed32BE(std::string* dst, uint32_t v);

/// \brief Reads a big-endian fixed 64-bit value at `offset`.
uint64_t GetFixed64BE(std::string_view src, size_t offset);

/// \brief Reads a big-endian fixed 32-bit value at `offset`.
uint32_t GetFixed32BE(std::string_view src, size_t offset);

/// \brief Appends a little-endian fixed 64-bit value (internal payloads).
void PutFixed64LE(std::string* dst, uint64_t v);
uint64_t GetFixed64LE(std::string_view src, size_t offset);

/// \brief Appends a LEB128 varint32.
void PutVarint32(std::string* dst, uint32_t v);

/// \brief Parses a varint32; returns bytes consumed, 0 on truncation.
size_t GetVarint32(std::string_view src, size_t offset, uint32_t* out);

/// \brief Encodes a double bit-preserving (little endian).
void PutDoubleLE(std::string* dst, double v);
double GetDoubleLE(std::string_view src, size_t offset);

/// \brief Encodes a signed 64-bit so byte order matches numeric order
/// (offset-binary: flips the sign bit). Used for timestamps in keys.
void PutOrderedInt64(std::string* dst, int64_t v);
int64_t GetOrderedInt64(std::string_view src, size_t offset);

/// \brief CRC-32C (Castagnoli), software table implementation.
uint32_t Crc32c(const void* data, size_t n);

/// \brief 64-bit FNV-1a hash (bloom filters, partitioning).
uint64_t Fnv1a64(const void* data, size_t n);
inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

}  // namespace marlin

#endif  // MARLIN_STORAGE_CODING_H_
