#include "storage/lsm_store.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/fault.h"
#include "storage/coding.h"

namespace marlin {

namespace {

constexpr char kTypePut = 0;
constexpr char kTypeDelete = 1;
constexpr std::string_view kRunMagic = "MRLNSST2";
constexpr std::string_view kRunMagicV1 = "MRLNSST1";  // no prefix filter

std::string InternalValue(char type, std::string_view user_value) {
  std::string v;
  v.reserve(user_value.size() + 1);
  v.push_back(type);
  v.append(user_value.data(), user_value.size());
  return v;
}

bool IsTombstone(std::string_view internal) {
  return !internal.empty() && internal[0] == kTypeDelete;
}

std::string_view UserValue(std::string_view internal) {
  return internal.substr(1);
}

std::string_view KeyPrefix(std::string_view key) {
  return key.substr(0, std::min(key.size(), SortedRun::kPrefixLen));
}

/// Writes all of `data` to `fd`, resuming across EINTR / partial writes.
/// Returns the number of bytes that actually reached the file (== size on
/// success), so a failed caller knows what to truncate away.
size_t WriteFully(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  return done;
}

/// Fsyncs the directory itself so a just-renamed file's directory entry is
/// durable (rename alone only orders data, not metadata, on most filesystems).
void SyncDirectory(const std::string& directory) {
  const int dfd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SortedRun
// ---------------------------------------------------------------------------

SortedRun SortedRun::Build(
    std::vector<std::pair<std::string, std::string>> entries,
    int bloom_bits_per_key) {
  SortedRun run;
  run.bloom_ = BloomFilter(entries.size(), bloom_bits_per_key);
  // Sized for the worst case (every key a distinct prefix); with the
  // archival schema one vessel contributes many keys, so the filter is
  // usually far under capacity and its false-positive rate only improves.
  run.prefix_bloom_ = BloomFilter(entries.size(), bloom_bits_per_key);
  run.has_prefix_bloom_ = true;
  run.entries_ = std::move(entries);
  for (const auto& [k, v] : run.entries_) {
    run.bloom_.Add(k);
    run.prefix_bloom_.Add(KeyPrefix(k));
  }
  if (!run.entries_.empty()) {
    run.min_key_ = run.entries_.front().first;
    run.max_key_ = run.entries_.back().first;
  }
  return run;
}

const std::string* SortedRun::Get(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

bool SortedRun::MayContain(std::string_view key) const {
  if (entries_.empty()) return false;
  if (key < std::string_view(min_key_) || key > std::string_view(max_key_)) {
    return false;
  }
  return bloom_.MayContain(key);
}

bool SortedRun::MayContainPrefix(std::string_view prefix) const {
  if (entries_.empty()) return false;
  if (!has_prefix_bloom_ || prefix.size() < kPrefixLen) return true;
  // Key-range check on the prefix alone: the run's keys are sorted, so a
  // prefix outside [min_key_ prefix, max_key_ prefix] cannot appear.
  if (prefix < KeyPrefix(min_key_) || prefix > KeyPrefix(max_key_)) {
    return false;
  }
  return prefix_bloom_.MayContain(prefix);
}

std::string SortedRun::Serialize() const {
  std::string body;
  body.append(kRunMagic);
  PutFixed32BE(&body, static_cast<uint32_t>(entries_.size()));
  for (const auto& [k, v] : entries_) {
    PutVarint32(&body, static_cast<uint32_t>(k.size()));
    body.append(k);
    PutVarint32(&body, static_cast<uint32_t>(v.size()));
    body.append(v);
  }
  const std::string bloom = bloom_.Serialize();
  PutFixed32BE(&body, static_cast<uint32_t>(bloom.size()));
  body.append(bloom);
  const std::string prefix_bloom = prefix_bloom_.Serialize();
  PutFixed32BE(&body, static_cast<uint32_t>(prefix_bloom.size()));
  body.append(prefix_bloom);
  PutFixed32BE(&body, Crc32c(body.data(), body.size()));
  return body;
}

Result<SortedRun> SortedRun::Deserialize(std::string_view data) {
  if (data.size() < kRunMagic.size() + 8) {
    return Status::Corruption("run file truncated");
  }
  const uint32_t stored_crc = GetFixed32BE(data, data.size() - 4);
  if (Crc32c(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corruption("run file checksum mismatch");
  }
  const std::string_view magic = data.substr(0, kRunMagic.size());
  const bool v1 = magic == kRunMagicV1;
  if (!v1 && magic != kRunMagic) {
    return Status::Corruption("bad run file magic");
  }
  size_t pos = kRunMagic.size();
  const uint32_t count = GetFixed32BE(data, pos);
  pos += 4;
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t klen = 0, vlen = 0;
    size_t n = GetVarint32(data, pos, &klen);
    if (n == 0 || pos + n + klen > data.size()) {
      return Status::Corruption("run entry key truncated");
    }
    pos += n;
    std::string key(data.substr(pos, klen));
    pos += klen;
    n = GetVarint32(data, pos, &vlen);
    if (n == 0 || pos + n + vlen > data.size()) {
      return Status::Corruption("run entry value truncated");
    }
    pos += n;
    std::string value(data.substr(pos, vlen));
    pos += vlen;
    entries.emplace_back(std::move(key), std::move(value));
  }
  if (pos + 8 > data.size()) return Status::Corruption("run footer truncated");
  const uint32_t bloom_len = GetFixed32BE(data, pos);
  pos += 4;
  if (pos + bloom_len + 4 > data.size()) {
    return Status::Corruption("bloom filter truncated");
  }
  SortedRun run;
  run.bloom_ = BloomFilter::Deserialize(data.substr(pos, bloom_len));
  pos += bloom_len;
  if (!v1) {
    if (pos + 8 > data.size()) {
      return Status::Corruption("prefix bloom header truncated");
    }
    const uint32_t prefix_len = GetFixed32BE(data, pos);
    pos += 4;
    if (pos + prefix_len + 4 > data.size()) {
      return Status::Corruption("prefix bloom filter truncated");
    }
    run.prefix_bloom_ = BloomFilter::Deserialize(data.substr(pos, prefix_len));
    run.has_prefix_bloom_ = true;
  }
  run.entries_ = std::move(entries);
  if (!run.entries_.empty()) {
    run.min_key_ = run.entries_.front().first;
    run.max_key_ = run.entries_.back().first;
  }
  return run;
}

// ---------------------------------------------------------------------------
// LsmStore
// ---------------------------------------------------------------------------

LsmStore::LsmStore(const Options& options)
    : options_(options), memtable_(std::make_unique<SkipList>()) {}

LsmStore::~LsmStore() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(runs_mutex_);
      stop_compactor_ = true;
    }
    compactor_cv_.notify_all();
    compactor_.join();
  }
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

Result<std::unique_ptr<LsmStore>> LsmStore::Open(const Options& options) {
  std::unique_ptr<LsmStore> store(new LsmStore(options));
  if (!options.directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.directory, ec);
    if (ec) {
      return Status::IOError("cannot create store directory: " + ec.message());
    }
    MARLIN_RETURN_NOT_OK(store->LoadRuns());
    MARLIN_RETURN_NOT_OK(store->ReplayWal());
    const std::string wal_path = options.directory + "/wal.log";
    store->wal_fd_ =
        ::open(wal_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (store->wal_fd_ < 0) {
      return Status::IOError("cannot open WAL for append: " + wal_path);
    }
  }
  if (options.background_compaction) {
    store->compactor_ = std::thread([s = store.get()] { s->CompactorLoop(); });
  }
  return store;
}

Status LsmStore::AppendWal(char type, std::string_view key,
                           std::string_view value) {
  if (wal_fd_ < 0) return Status::OK();
  std::string record;
  record.push_back(type);
  PutVarint32(&record, static_cast<uint32_t>(key.size()));
  record.append(key.data(), key.size());
  PutVarint32(&record, static_cast<uint32_t>(value.size()));
  record.append(value.data(), value.size());
  std::string framed;
  PutFixed32BE(&framed, Crc32c(record.data(), record.size()));
  PutFixed32BE(&framed, static_cast<uint32_t>(record.size()));
  framed.append(record);
  if (FaultInjector::armed()) {
    if (auto action = FaultInjector::HitIo("lsm.wal.append")) {
      if (*action == FaultAction::kShortWrite) {
        // Simulated power loss mid-append: torn bytes really land on disk.
        // The caller must treat this as a crash and reopen; recovery then
        // truncates the tail at the bad CRC frame.
        WriteFully(wal_fd_, framed.data(), framed.size() / 2 + 1);
      }
      return Status::IOError("injected fault: lsm.wal.append");
    }
  }
  const size_t written = WriteFully(wal_fd_, framed.data(), framed.size());
  if (written != framed.size()) {
    // All-or-nothing: cut the partial frame back off so the live log (and
    // any later successful append) never sits behind garbage bytes.
    (void)::ftruncate(wal_fd_, static_cast<off_t>(wal_size_));
    return Status::IOError("short WAL write");
  }
  wal_size_ += framed.size();
  if (options_.wal_sync) {
    if (::fdatasync(wal_fd_) != 0) {
      return Status::IOError("WAL fdatasync failed");
    }
    ++stats_.wal_syncs;
  }
  return Status::OK();
}

Status LsmStore::ReplayWal() {
  const std::string wal_path = options_.directory + "/wal.log";
  std::ifstream in(wal_path, std::ios::binary);
  if (!in.good()) return Status::OK();  // no WAL yet
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  size_t pos = 0;
  while (pos + 8 <= data.size()) {
    const uint32_t crc = GetFixed32BE(data, pos);
    const uint32_t len = GetFixed32BE(data, pos + 4);
    if (pos + 8 + len > data.size()) break;  // torn tail record
    const std::string_view record(data.data() + pos + 8, len);
    if (Crc32c(record.data(), record.size()) != crc) break;  // torn write
    if (len < 1) break;
    const char type = record[0];
    uint32_t klen = 0, vlen = 0;
    size_t off = 1;
    size_t n = GetVarint32(record, off, &klen);
    if (n == 0) break;
    off += n;
    if (off + klen > record.size()) break;
    const std::string_view key = record.substr(off, klen);
    off += klen;
    n = GetVarint32(record, off, &vlen);
    if (n == 0) break;
    off += n;
    if (off + vlen > record.size()) break;
    const std::string_view value = record.substr(off, vlen);
    memtable_->Insert(key, InternalValue(type, value));
    ++stats_.wal_records_replayed;
    pos += 8 + len;
  }
  if (pos < data.size()) {
    // Torn tail (crash mid-append): truncate it away so the reopened log —
    // which appends from here — never buries new frames behind garbage.
    std::error_code ec;
    std::filesystem::resize_file(wal_path, pos, ec);
    if (ec) {
      return Status::IOError("cannot truncate torn WAL tail: " + ec.message());
    }
    stats_.wal_torn_truncated += data.size() - pos;
  }
  wal_size_ = pos;
  return Status::OK();
}

Status LsmStore::LoadRuns() {
  std::vector<std::pair<uint64_t, std::string>> files;
  std::vector<std::string> temps;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Orphaned staging file from a flush/compaction killed before its
      // rename. Its contents are still covered by the WAL (flush) or by the
      // input runs it was merging (compaction), so deleting it loses nothing.
      temps.push_back(entry.path().string());
      continue;
    }
    uint64_t num = 0;
    // Exact-shape match: "run_<8 digits>.sst" is 16 chars; sscanf alone also
    // matches any prefix of a longer name.
    if (name.size() == 16 &&
        std::sscanf(name.c_str(), "run_%08lu.sst", &num) == 1) {
      files.emplace_back(num, entry.path().string());
    }
  }
  for (const std::string& tmp : temps) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    if (!ec) ++stats_.temps_removed;
  }
  std::sort(files.begin(), files.end());
  for (const auto& [num, path] : files) {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    Result<SortedRun> run = SortedRun::Deserialize(data);
    // Every numbered file still counts against the namespace even when
    // quarantined, so a fresh flush can never reuse (and overwrite) it.
    next_file_number_ = std::max(next_file_number_, num + 1);
    if (!run.ok()) {
      // Corrupt run: preserve the bytes under quarantine/ for forensics and
      // keep the store openable. Counted, never silent.
      const std::string qdir = options_.directory + "/quarantine";
      std::error_code ec;
      std::filesystem::create_directories(qdir, ec);
      if (!ec) {
        std::filesystem::rename(
            path, qdir + "/" + std::filesystem::path(path).filename().string(),
            ec);
      }
      if (ec) {
        return Status::IOError("cannot quarantine corrupt run " + path + ": " +
                               ec.message());
      }
      ++stats_.runs_quarantined;
      continue;
    }
    runs_.push_back(RunHandle{
        std::make_shared<SortedRun>(std::move(run).ValueOrDie()), num});
  }
  return Status::OK();
}

Status LsmStore::PersistRun(const SortedRun& run, uint64_t file_number) {
  if (options_.directory.empty()) return Status::OK();
  char name[32];
  std::snprintf(name, sizeof(name), "run_%08lu.sst",
                static_cast<unsigned long>(file_number));
  const std::string path = options_.directory + "/" + name;
  const std::string tmp = path + ".tmp";
  const std::string data = run.Serialize();
  if (FaultInjector::armed()) {
    if (auto action = FaultInjector::HitIo("lsm.run.write")) {
      if (*action == FaultAction::kShortWrite) {
        // Torn staging file: harmless by construction (LoadRuns deletes
        // orphaned temps) but must exist for the torture test to prove it.
        const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (tfd >= 0) {
          WriteFully(tfd, data.data(), data.size() / 2 + 1);
          ::close(tfd);
        }
      }
      return Status::IOError("injected fault: lsm.run.write");
    }
  }
  // Atomic publication: stage under a .tmp name, fsync the bytes, rename
  // into place, fsync the directory. A crash at any point leaves either no
  // run (plus maybe a temp that open-time recovery deletes) or the complete
  // run — never a half-written file under the live name.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot create run file " + tmp);
  const size_t written = WriteFully(fd, data.data(), data.size());
  if (written != data.size()) {
    ::close(fd);
    return Status::IOError("failed writing run file " + tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("fsync failed for run file " + tmp);
  }
  ::close(fd);
  if (FaultInjector::armed()) {
    // Crash window between a durable temp and its rename: the torture test
    // kills here to prove the orphan is reaped and nothing double-counts.
    if (FaultInjector::HitIo("lsm.run.rename")) {
      return Status::IOError("injected fault: lsm.run.rename");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IOError("failed renaming run file: " + ec.message());
  SyncDirectory(options_.directory);
  return Status::OK();
}

Status LsmStore::Put(std::string_view key, std::string_view value) {
  MARLIN_RETURN_NOT_OK(AppendWal(kTypePut, key, value));
  memtable_->Insert(key, InternalValue(kTypePut, value));
  ++stats_.puts;
  if (memtable_->ApproximateMemoryUsage() >= options_.memtable_bytes_limit) {
    MARLIN_RETURN_NOT_OK(Flush());
  }
  return Status::OK();
}

Status LsmStore::Delete(std::string_view key) {
  MARLIN_RETURN_NOT_OK(AppendWal(kTypeDelete, key, ""));
  memtable_->Insert(key, InternalValue(kTypeDelete, ""));
  ++stats_.deletes;
  if (memtable_->ApproximateMemoryUsage() >= options_.memtable_bytes_limit) {
    MARLIN_RETURN_NOT_OK(Flush());
  }
  return Status::OK();
}

std::vector<std::shared_ptr<SortedRun>> LsmStore::SnapshotRuns() const {
  std::lock_guard<std::mutex> lock(runs_mutex_);
  std::vector<std::shared_ptr<SortedRun>> out;
  out.reserve(runs_.size());
  for (const RunHandle& h : runs_) out.push_back(h.run);
  return out;
}

size_t LsmStore::NumRuns() const {
  std::lock_guard<std::mutex> lock(runs_mutex_);
  return runs_.size();
}

LsmStore::Stats LsmStore::stats() const {
  std::lock_guard<std::mutex> lock(runs_mutex_);
  return stats_;
}

Result<std::string> LsmStore::Get(std::string_view key) const {
  auto* self = const_cast<LsmStore*>(this);
  ++self->stats_.gets;
  if (const std::string* v = memtable_->Find(key)) {
    if (IsTombstone(*v)) return Status::NotFound("deleted");
    ++self->stats_.gets_found;
    return std::string(UserValue(*v));
  }
  const auto runs = SnapshotRuns();
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {  // newest first
    if (!(*it)->MayContain(key)) {
      ++self->stats_.bloom_negative;
      continue;
    }
    if (const std::string* v = (*it)->Get(key)) {
      if (IsTombstone(*v)) return Status::NotFound("deleted");
      ++self->stats_.gets_found;
      return std::string(UserValue(*v));
    }
  }
  return Status::NotFound("key absent");
}

Status LsmStore::WriteMemtableToRun() {
  if (memtable_->size() == 0) return Status::OK();
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(memtable_->size());
  SkipList::Iterator it(memtable_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    entries.emplace_back(it.key(), it.value());
  }
  SortedRun run = SortedRun::Build(std::move(entries),
                                   options_.bloom_bits_per_key);
  uint64_t file_number = 0;
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    file_number = next_file_number_++;
  }
  MARLIN_RETURN_NOT_OK(PersistRun(run, file_number));
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    runs_.push_back(RunHandle{std::make_shared<SortedRun>(std::move(run)),
                              options_.directory.empty() ? 0 : file_number});
    ++stats_.flushes;
  }
  memtable_ = std::make_unique<SkipList>();
  return Status::OK();
}

Status LsmStore::Flush() {
  MARLIN_RETURN_NOT_OK(WriteMemtableToRun());
  // Truncate the WAL: its contents are now durable in a run file.
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    const std::string wal_path = options_.directory + "/wal.log";
    wal_fd_ = ::open(wal_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (wal_fd_ < 0) return Status::IOError("cannot truncate WAL");
    wal_size_ = 0;
  }
  return MaybeScheduleCompaction();
}

Status LsmStore::MaybeScheduleCompaction() {
  bool over_limit = false;
  Status background_failure = Status::OK();
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    over_limit = static_cast<int>(runs_.size()) > options_.max_runs;
    if (!compactor_status_.ok()) {
      background_failure = compactor_status_;
      compactor_status_ = Status::OK();
    }
  }
  MARLIN_RETURN_NOT_OK(background_failure);
  if (!over_limit) return Status::OK();
  if (options_.background_compaction && compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(runs_mutex_);
      compact_requested_ = true;
    }
    compactor_cv_.notify_all();
    return Status::OK();
  }
  std::vector<RunHandle> inputs;
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    inputs = runs_;
  }
  return CompactRuns(std::move(inputs));
}

Status LsmStore::CompactRuns(std::vector<RunHandle> inputs) {
  if (inputs.size() <= 1) return Status::OK();
  if (FaultInjector::armed()) {
    if (FaultInjector::HitIo("lsm.compact")) {
      return Status::IOError("injected fault: lsm.compact");
    }
  }
  // Newest-wins merge of the input runs; drop tombstones (the inputs are the
  // oldest prefix of the run list — flushes only ever append newer runs — so
  // nothing below them can resurrect).
  std::map<std::string, std::string> merged;
  for (const RunHandle& h : inputs) {  // oldest → newest so later wins
    for (const auto& [k, v] : h.run->entries()) merged[k] = v;
  }
  std::vector<std::pair<std::string, std::string>> live;
  live.reserve(merged.size());
  for (auto& [k, v] : merged) {
    if (!IsTombstone(v)) live.emplace_back(k, std::move(v));
  }
  SortedRun compacted =
      SortedRun::Build(std::move(live), options_.bloom_bits_per_key);
  uint64_t file_number = 0;
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    file_number = next_file_number_++;
  }
  // Persist the new run before dropping the old files (crash safety:
  // duplicate data is recoverable, missing data is not).
  MARLIN_RETURN_NOT_OK(PersistRun(compacted, file_number));
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    // The inputs are still the oldest prefix of runs_ (only compaction
    // removes runs and compactions are serialized); anything beyond them
    // was flushed while merging and stays, preserving newest-last order.
    runs_.erase(runs_.begin(), runs_.begin() + inputs.size());
    runs_.insert(runs_.begin(),
                 RunHandle{std::make_shared<SortedRun>(std::move(compacted)),
                           options_.directory.empty() ? 0 : file_number});
    ++stats_.compactions;
  }
  if (!options_.directory.empty()) {
    for (const RunHandle& h : inputs) {
      if (h.file_number == 0) continue;
      char name[32];
      std::snprintf(name, sizeof(name), "run_%08lu.sst",
                    static_cast<unsigned long>(h.file_number));
      std::error_code ec;
      std::filesystem::remove(options_.directory + "/" + name, ec);
    }
  }
  return Status::OK();
}

void LsmStore::CompactorLoop() {
  std::unique_lock<std::mutex> lock(runs_mutex_);
  while (true) {
    compactor_cv_.wait(lock,
                       [this] { return compact_requested_ || stop_compactor_; });
    if (stop_compactor_ && !compact_requested_) return;
    compact_requested_ = false;
    compact_running_ = true;
    std::vector<RunHandle> inputs = runs_;
    lock.unlock();
    Status s;
    try {
      s = CompactRuns(std::move(inputs));
    } catch (const std::exception& e) {
      // An injected kThrow (or any escaping exception) must not take the
      // process down with the compactor thread; surface it like an IO error.
      s = Status::Unknown(std::string("compaction crashed: ") + e.what());
    }
    lock.lock();
    if (!s.ok() && compactor_status_.ok()) compactor_status_ = s;
    compact_running_ = false;
    compactor_cv_.notify_all();
  }
}

void LsmStore::WaitForCompaction() {
  if (!compactor_.joinable()) return;
  std::unique_lock<std::mutex> lock(runs_mutex_);
  compactor_cv_.wait(
      lock, [this] { return !compact_requested_ && !compact_running_; });
}

Status LsmStore::CompactAll() {
  MARLIN_RETURN_NOT_OK(WriteMemtableToRun());
  WaitForCompaction();
  std::vector<RunHandle> inputs;
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    inputs = runs_;
  }
  return CompactRuns(std::move(inputs));
}

namespace {

/// Snapshot iterator: materializes the merged view once. Simple and correct;
/// the archival access pattern is dominated by range scans over the result.
class SnapshotIterator : public KvIterator {
 public:
  explicit SnapshotIterator(
      std::vector<std::pair<std::string, std::string>> entries)
      : entries_(std::move(entries)) {}

  bool Valid() const override { return pos_ < entries_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void Seek(std::string_view target) override {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), target,
        [](const auto& e, std::string_view t) { return e.first < t; });
    pos_ = static_cast<size_t>(it - entries_.begin());
  }
  void Next() override { ++pos_; }
  std::string_view key() const override { return entries_[pos_].first; }
  std::string_view value() const override { return entries_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<KvIterator> LsmStore::NewIterator() const {
  std::map<std::string, std::string> merged;
  for (const auto& run : SnapshotRuns()) {
    for (const auto& [k, v] : run->entries()) merged[k] = v;
  }
  SkipList::Iterator it(memtable_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    merged[it.key()] = it.value();
  }
  std::vector<std::pair<std::string, std::string>> live;
  live.reserve(merged.size());
  for (auto& [k, v] : merged) {
    if (!IsTombstone(v)) live.emplace_back(k, std::string(UserValue(v)));
  }
  return std::make_unique<SnapshotIterator>(std::move(live));
}

std::vector<std::pair<std::string, std::string>> LsmStore::Scan(
    std::string_view start, std::string_view end, size_t limit) const {
  auto* self = const_cast<LsmStore*>(this);
  // A single-vessel scan under the archival key schema: both bounds carry
  // the same MMSI prefix, so the per-run prefix filter can exclude whole
  // runs without touching their entries.
  const bool single_prefix = start.size() >= SortedRun::kPrefixLen &&
                             end.size() >= SortedRun::kPrefixLen &&
                             start.substr(0, SortedRun::kPrefixLen) ==
                                 end.substr(0, SortedRun::kPrefixLen);
  const std::string_view prefix = start.substr(0, SortedRun::kPrefixLen);
  // Merge only the overlapping key range from each source.
  std::map<std::string, std::string> merged;
  for (const auto& run : SnapshotRuns()) {
    if (single_prefix && !run->MayContainPrefix(prefix)) {
      ++self->stats_.prefix_bloom_skipped;
      continue;
    }
    const auto& entries = run->entries();
    auto it = std::lower_bound(
        entries.begin(), entries.end(), start,
        [](const auto& e, std::string_view t) { return e.first < t; });
    for (; it != entries.end() && std::string_view(it->first) < end; ++it) {
      merged[it->first] = it->second;
    }
  }
  SkipList::Iterator it(memtable_.get());
  for (it.Seek(start); it.Valid() && std::string_view(it.key()) < end;
       it.Next()) {
    merged[it.key()] = it.value();
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [k, v] : merged) {
    if (IsTombstone(v)) continue;
    out.emplace_back(k, std::string(UserValue(v)));
    if (out.size() >= limit) break;
  }
  return out;
}

}  // namespace marlin
