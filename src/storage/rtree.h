#ifndef MARLIN_STORAGE_RTREE_H_
#define MARLIN_STORAGE_RTREE_H_

/// \file rtree.h
/// \brief STR bulk-loaded R-tree for spatial range and kNN queries (§2.3).
///
/// The archival analytics path queries *static* snapshots (a day of
/// trajectories, a zone set), so the Sort-Tile-Recursive packed R-tree is
/// the right engineering point: optimal packing, no insert path, simple
/// invariants.

#include <cstdint>
#include <vector>

#include "geo/geometry.h"
#include "geo/point.h"

namespace marlin {

/// \brief One indexed entry: a rectangle (possibly degenerate = point) and an
/// opaque 64-bit payload id.
struct RTreeEntry {
  BoundingBox box;
  uint64_t id = 0;
};

/// \brief Static packed R-tree.
class RTree {
 public:
  /// \brief Bulk loads the tree; `fanout` children per node (default 16).
  explicit RTree(std::vector<RTreeEntry> entries, int fanout = 16);

  RTree() = default;

  /// \brief Ids of all entries whose box intersects `query`.
  std::vector<uint64_t> Query(const BoundingBox& query) const;

  /// \brief Visits entries intersecting `query`; stops early when the
  /// visitor returns false.
  template <typename Visitor>
  void Visit(const BoundingBox& query, Visitor&& visit) const {
    if (nodes_.empty()) return;
    VisitRecurse(root_, query, visit);
  }

  /// \brief The `k` entries nearest to `query` by approximate metric
  /// distance (equirectangular, metres), nearest first.
  std::vector<std::pair<uint64_t, double>> Nearest(const GeoPoint& query,
                                                   size_t k) const;

  size_t size() const { return num_entries_; }
  int height() const { return height_; }

 private:
  struct Node {
    BoundingBox box;
    int32_t first_child = -1;  ///< index into nodes_ (internal) or entries_
    int32_t child_count = 0;
    bool leaf = false;
  };

  template <typename Visitor>
  bool VisitRecurse(int32_t node_idx, const BoundingBox& query,
                    Visitor& visit) const {
    const Node& node = nodes_[node_idx];
    if (!node.box.Intersects(query)) return true;
    if (node.leaf) {
      for (int32_t i = 0; i < node.child_count; ++i) {
        const RTreeEntry& e = entries_[node.first_child + i];
        if (e.box.Intersects(query)) {
          if (!visit(e)) return false;
        }
      }
      return true;
    }
    for (int32_t i = 0; i < node.child_count; ++i) {
      if (!VisitRecurse(node.first_child + i, query, visit)) return false;
    }
    return true;
  }

  double MinDistanceMetres(const BoundingBox& box, const GeoPoint& p,
                           double cos_lat) const;

  std::vector<RTreeEntry> entries_;  // leaf order after STR packing
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  int height_ = 0;
  size_t num_entries_ = 0;
  int fanout_ = 16;
};

}  // namespace marlin

#endif  // MARLIN_STORAGE_RTREE_H_
