#include "storage/archive.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/fault.h"
#include "storage/coding.h"

namespace marlin {

namespace {

// Field widths of the block column encoding. 40-bit deltas cover ~34 years
// between consecutive points of one vessel; coordinates are 1e-7-degree
// fixed point (int32 covers ±214°, so the AIS not-available sentinels 91/181
// encode losslessly too).
constexpr int kDtBits = 40;
constexpr int kCoordBits = 32;
constexpr int kFloatBits = 32;
constexpr double kCoordScale = 1e7;

int64_t QuantizeCoord(double degrees) {
  return std::llround(degrees * kCoordScale);
}

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

float BitsFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace

void EncodePositionBlock(const std::vector<TrajectoryPoint>& points,
                         PackedBits* out) {
  out->Clear();
  out->ReserveBits(points.size() *
                   (kDtBits + 2 * kCoordBits + 2 * kFloatBits));
  Timestamp prev = points.empty() ? 0 : points.front().t;
  for (const TrajectoryPoint& p : points) {
    out->AppendBits(static_cast<uint64_t>(p.t - prev), kDtBits);
    prev = p.t;
  }
  for (const TrajectoryPoint& p : points) {
    out->AppendBits(static_cast<uint64_t>(QuantizeCoord(p.position.lat)),
                    kCoordBits);
  }
  for (const TrajectoryPoint& p : points) {
    out->AppendBits(static_cast<uint64_t>(QuantizeCoord(p.position.lon)),
                    kCoordBits);
  }
  for (const TrajectoryPoint& p : points) {
    out->AppendBits(FloatBits(p.sog_mps), kFloatBits);
  }
  for (const TrajectoryPoint& p : points) {
    out->AppendBits(FloatBits(p.cog_deg), kFloatBits);
  }
}

Status DecodePositionBlock(const PackedBits& data, uint32_t count, uint32_t mmsi,
                           Timestamp t0, std::vector<TrajectoryPoint>* out) {
  (void)mmsi;
  const size_t base = out->size();
  out->resize(base + count);
  PackedBitReader reader(data);
  Timestamp t = t0;
  for (uint32_t i = 0; i < count; ++i) {
    MARLIN_ASSIGN_OR_RETURN(uint64_t dt, reader.ReadUnsigned(kDtBits));
    t += static_cast<Timestamp>(dt);
    (*out)[base + i].t = t;
  }
  for (uint32_t i = 0; i < count; ++i) {
    MARLIN_ASSIGN_OR_RETURN(int64_t lat, reader.ReadSigned(kCoordBits));
    (*out)[base + i].position.lat = static_cast<double>(lat) / kCoordScale;
  }
  for (uint32_t i = 0; i < count; ++i) {
    MARLIN_ASSIGN_OR_RETURN(int64_t lon, reader.ReadSigned(kCoordBits));
    (*out)[base + i].position.lon = static_cast<double>(lon) / kCoordScale;
  }
  for (uint32_t i = 0; i < count; ++i) {
    MARLIN_ASSIGN_OR_RETURN(uint64_t sog, reader.ReadUnsigned(kFloatBits));
    (*out)[base + i].sog_mps = BitsFloat(static_cast<uint32_t>(sog));
  }
  for (uint32_t i = 0; i < count; ++i) {
    MARLIN_ASSIGN_OR_RETURN(uint64_t cog, reader.ReadUnsigned(kFloatBits));
    (*out)[base + i].cog_deg = BitsFloat(static_cast<uint32_t>(cog));
  }
  return Status::OK();
}

std::string SerializeBlockValue(const PositionBlock& block) {
  std::string v;
  v.reserve(8 + block.data.word_count() * 8);
  PutFixed32BE(&v, block.count);
  PutFixed32BE(&v, static_cast<uint32_t>(block.data.size_bits()));
  for (size_t i = 0; i < block.data.word_count(); ++i) {
    PutFixed64BE(&v, block.data.word(i));
  }
  return v;
}

Status ParseBlockValue(std::string_view value, uint32_t* count,
                       PackedBits* data) {
  if (value.size() < 8) return Status::Corruption("block value truncated");
  *count = GetFixed32BE(value, 0);
  const uint32_t size_bits = GetFixed32BE(value, 4);
  const size_t words = (static_cast<size_t>(size_bits) + 63) / 64;
  if (value.size() != 8 + words * 8) {
    return Status::Corruption("block value word count mismatch");
  }
  data->Clear();
  data->ReserveBits(size_bits);
  size_t remaining = size_bits;
  for (size_t i = 0; i < words; ++i) {
    const int width = static_cast<int>(std::min<size_t>(64, remaining));
    data->AppendBits(GetFixed64BE(value, 8 + i * 8) >> (64 - width), width);
    remaining -= static_cast<size_t>(width);
  }
  return Status::OK();
}

ShardArchive::ShardArchive(const ArchiveOptions& options, std::string directory)
    : options_(options), directory_(std::move(directory)) {
  LsmStore::Options lsm_options;
  lsm_options.memtable_bytes_limit = options_.memtable_bytes_limit;
  lsm_options.max_runs = options_.max_runs;
  lsm_options.background_compaction = options_.background_compaction;
  lsm_options.wal_sync = options_.wal_sync;
  lsm_options.directory = directory_;
  auto opened = LsmStore::Open(lsm_options);
  if (!opened.ok()) {
    // Unwritable directory: degrade to a volatile archive rather than
    // poisoning the ingest path. Durability is lost, serving still works.
    lsm_options.directory.clear();
    opened = LsmStore::Open(lsm_options);
  }
  lsm_ = std::move(opened).ValueOrDie();
  snapshot_ = std::make_shared<const PartitionSnapshot>();
  if (options_.recover_on_open && !directory_.empty()) RecoverFromLsm();
}

void ShardArchive::RecoverFromLsm() {
  // The durable prefix lives in the LSM (WAL replay + surviving runs, torn
  // tails and corrupt runs already cut/quarantined by LsmStore::Open).
  // Rebuild the served state from it: one PositionBlock per key, in key
  // order — mmsi-major, time-ascending. That is not the original epoch
  // order, but the query layer canonically re-sorts rows per partition
  // (see QueryEngine::ScanPartition), so served results are byte-identical
  // to an archive that never crashed, for the durable rows.
  std::unique_ptr<KvIterator> it = lsm_->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    uint32_t mmsi = 0;
    Timestamp t0 = 0;
    uint32_t count = 0;
    PackedBits data;
    std::vector<TrajectoryPoint> points;
    if (!DecodeTrajectoryKey(it->key(), &mmsi, &t0) ||
        !ParseBlockValue(it->value(), &count, &data).ok() ||
        !DecodePositionBlock(data, count, mmsi, t0, &points).ok() ||
        points.empty()) {
      // Undecodable block value: counted, skipped, never served.
      ++stats_.blocks_quarantined;
      continue;
    }
    auto block = std::make_shared<PositionBlock>();
    block->mmsi = mmsi;
    block->t0 = points.front().t;
    block->t1 = points.back().t;
    block->count = count;
    for (const TrajectoryPoint& p : points) block->bounds.Extend(p.position);
    block->data = std::move(data);
    blocks_.push_back(std::move(block));
    ++stats_.recovered_blocks;
  }
  if (blocks_.empty() && stats_.blocks_quarantined == 0) return;

  // Full index rebuild: recovery is rare and O(blocks log blocks) here buys
  // indexed_ == blocks_.size(), i.e. no linear tail for the query layer.
  std::vector<RTreeEntry> boxes;
  std::vector<IntervalEntry> spans;
  boxes.reserve(blocks_.size());
  spans.reserve(blocks_.size());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    boxes.push_back(RTreeEntry{blocks_[i]->bounds, i});
    spans.push_back(IntervalEntry{blocks_[i]->t0, blocks_[i]->t1, i});
  }
  rtree_ = std::make_shared<const RTree>(std::move(boxes));
  intervals_ = std::make_shared<const IntervalIndex>(std::move(spans));
  indexed_ = blocks_.size();
  ++epoch_;

  auto snapshot = std::make_shared<PartitionSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->blocks = blocks_;
  snapshot->rtree = rtree_;
  snapshot->intervals = intervals_;
  snapshot->indexed = indexed_;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
}

void ShardArchive::Stage(uint32_t mmsi, const TrajectoryPoint& point) {
  MARLIN_FAULT_POINT("archive.stage");
  auto [slot, inserted] = slots_.TryEmplace(mmsi);
  if (inserted) {
    *slot = static_cast<uint32_t>(staged_.size());
    if (pool_.size() <= *slot) pool_.emplace_back();
    staged_.push_back(mmsi);
  }
  pool_[*slot].push_back(point);
  ++stats_.points_staged;
}

Status ShardArchive::CloseEpoch() {
  MARLIN_FAULT_POINT("archive.close_epoch");
  ++epoch_;
  ++stats_.epochs;
  if (staged_.empty()) return Status::OK();

  // Ascending MMSI gives a deterministic block order within the epoch
  // regardless of arrival order (the slot map's iteration order is not
  // canonical).
  std::sort(staged_.begin(), staged_.end());
  Status status = Status::OK();
  for (const uint32_t mmsi : staged_) {
    std::vector<TrajectoryPoint>& points = pool_[*slots_.Find(mmsi)];
    auto block = std::make_shared<PositionBlock>();
    block->mmsi = mmsi;
    block->t0 = points.front().t;
    block->t1 = points.back().t;
    block->count = static_cast<uint32_t>(points.size());
    for (const TrajectoryPoint& p : points) block->bounds.Extend(p.position);
    EncodePositionBlock(points, &block->data);
    points.clear();  // keep capacity for the next epoch

    ++stats_.blocks;
    stats_.encoded_bytes += block->data.word_count() * 8;
    if (lsm_ != nullptr) {
      Status put = Status::OK();
      if (FaultInjector::armed()) {
        if (FaultInjector::HitIo("archive.close_epoch.write")) {
          put = Status::IOError("injected fault: archive.close_epoch.write");
        }
      }
      if (put.ok()) {
        put = lsm_->Put(EncodeTrajectoryKey(mmsi, block->t0),
                        SerializeBlockValue(*block));
      }
      if (!put.ok()) {
        // The block still serves from memory this run, but its durability
        // failed: count it (and its points) as data at risk.
        ++stats_.put_failures;
        stats_.points_at_risk += block->count;
        if (status.ok()) status = put;
      }
    }
    blocks_.push_back(std::move(block));
  }
  slots_.Clear();
  staged_.clear();

  // Incremental index maintenance: rebuild the static indexes once the
  // unindexed tail outgrows its budget, else let the tail ride.
  if (blocks_.size() - indexed_ > options_.index_rebuild_blocks) {
    std::vector<RTreeEntry> boxes;
    std::vector<IntervalEntry> spans;
    boxes.reserve(blocks_.size());
    spans.reserve(blocks_.size());
    for (size_t i = 0; i < blocks_.size(); ++i) {
      boxes.push_back(RTreeEntry{blocks_[i]->bounds, i});
      spans.push_back(IntervalEntry{blocks_[i]->t0, blocks_[i]->t1, i});
    }
    rtree_ = std::make_shared<const RTree>(std::move(boxes));
    intervals_ = std::make_shared<const IntervalIndex>(std::move(spans));
    indexed_ = blocks_.size();
    ++stats_.index_rebuilds;
  }

  MARLIN_FAULT_POINT("archive.snapshot.publish");
  auto snapshot = std::make_shared<PartitionSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->blocks = blocks_;  // shared_ptr copies, payloads shared
  snapshot->rtree = rtree_;
  snapshot->intervals = intervals_;
  snapshot->indexed = indexed_;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  return status;
}

Status ShardArchive::LoadVesselRange(uint32_t mmsi, Timestamp t0, Timestamp t1,
                                     std::vector<TrajectoryPoint>* out) const {
  if (lsm_ == nullptr) return Status::OK();
  // Scan the vessel's full key range (a block starting before t0 can still
  // overlap it) — both bounds share the MMSI prefix, so the per-run prefix
  // Bloom filter prunes runs without this vessel.
  const auto entries = lsm_->Scan(EncodeTrajectoryKey(mmsi, kInvalidTimestamp),
                                  EncodeTrajectoryKey(mmsi, kMaxTimestamp));
  std::vector<TrajectoryPoint> scratch;
  for (const auto& [key, value] : entries) {
    uint32_t key_mmsi = 0;
    Timestamp block_t0 = 0;
    if (!DecodeTrajectoryKey(key, &key_mmsi, &block_t0)) {
      return Status::Corruption("bad archive block key");
    }
    if (block_t0 > t1) break;  // keys ascend in time within the vessel
    uint32_t count = 0;
    PackedBits data;
    MARLIN_RETURN_NOT_OK(ParseBlockValue(value, &count, &data));
    scratch.clear();
    MARLIN_RETURN_NOT_OK(
        DecodePositionBlock(data, count, key_mmsi, block_t0, &scratch));
    for (const TrajectoryPoint& p : scratch) {
      if (p.t >= t0 && p.t <= t1) out->push_back(p);
    }
  }
  return Status::OK();
}

ArchiveStats ShardArchive::stats() const {
  ArchiveStats out = stats_;
  if (lsm_ != nullptr) {
    const LsmStore::Stats lsm_stats = lsm_->stats();
    out.lsm_flushes = lsm_stats.flushes;
    out.lsm_compactions = lsm_stats.compactions;
    out.prefix_bloom_skipped = lsm_stats.prefix_bloom_skipped;
    out.wal_torn_truncated = lsm_stats.wal_torn_truncated;
    out.runs_quarantined = lsm_stats.runs_quarantined;
    out.temps_removed = lsm_stats.temps_removed;
  }
  return out;
}

}  // namespace marlin
