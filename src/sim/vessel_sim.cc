#include "sim/vessel_sim.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

const char* BehaviourName(Behaviour b) {
  switch (b) {
    case Behaviour::kTransit:
      return "transit";
    case Behaviour::kFishing:
      return "fishing";
    case Behaviour::kLoiter:
      return "loiter";
    case Behaviour::kRendezvousA:
      return "rendezvous-a";
    case Behaviour::kRendezvousB:
      return "rendezvous-b";
    case Behaviour::kGoDark:
      return "go-dark";
    case Behaviour::kSpoofIdentity:
      return "spoof-identity";
    case Behaviour::kSpoofTeleport:
      return "spoof-teleport";
  }
  return "unknown";
}

namespace {

/// A timed movement order: head to `target` at `speed_mps`; when reached,
/// hold until `hold_until` (0 = no hold).
struct Order {
  GeoPoint target;
  double speed_mps = 0.0;
  Timestamp hold_until = 0;
};

/// Builds the waypoint schedule for a spec.
std::vector<Order> BuildOrders(const VesselSpec& spec, const World& world,
                               Timestamp t0, Timestamp t1, Rng* rng) {
  std::vector<Order> orders;
  const double cruise = KnotsToMps(spec.speed_knots);

  auto lane_waypoints = [&](int lane_idx, bool reverse) {
    std::vector<GeoPoint> wps = world.lanes()[lane_idx].waypoints;
    if (reverse) std::reverse(wps.begin(), wps.end());
    return wps;
  };

  switch (spec.behaviour) {
    case Behaviour::kTransit:
    case Behaviour::kGoDark:
    case Behaviour::kSpoofIdentity:
    case Behaviour::kSpoofTeleport: {
      // Ping-pong along the lane for the whole window.
      auto wps = lane_waypoints(spec.lane, spec.reverse_lane);
      const double lane_len = PolylineLength(wps);
      const double leg_s = lane_len / std::max(0.1, cruise);
      int legs = static_cast<int>(
          std::ceil(static_cast<double>(t1 - t0) / kMillisPerSecond / leg_s)) + 1;
      bool forward = true;
      for (int leg = 0; leg < legs; ++leg) {
        const auto& seq = forward ? wps : std::vector<GeoPoint>(wps.rbegin(), wps.rend());
        for (size_t i = 1; i < seq.size(); ++i) {
          orders.push_back(Order{seq[i], cruise, 0});
        }
        // Moor at the far port for 20–60 minutes before returning.
        if (!orders.empty()) {
          orders.back().hold_until = -1;  // placeholder resolved at runtime
        }
        forward = !forward;
      }
      break;
    }
    case Behaviour::kFishing: {
      const FishingGround& ground =
          world.fishing_grounds()[spec.fishing_ground];
      // Out from the lane start port, zigzag, return.
      const GeoPoint home = world.lanes()[spec.lane].waypoints.front();
      orders.push_back(Order{ground.centre, cruise, 0});
      // Zigzag legs at trawling speed (~4 kn) inside the ground.
      const double trawl = KnotsToMps(4.0);
      const int legs = std::max(
          2, static_cast<int>(spec.fishing_duration / Minutes(12)));
      for (int i = 0; i < legs; ++i) {
        const double bearing = rng->Uniform(0.0, 360.0);
        const double dist = rng->Uniform(0.3, 0.9) * ground.radius_m;
        orders.push_back(
            Order{Destination(ground.centre, bearing, dist), trawl, 0});
      }
      orders.push_back(Order{home, cruise, 0});
      break;
    }
    case Behaviour::kLoiter: {
      const GeoPoint centre = spec.loiter_centre;
      const double drift = KnotsToMps(0.8);
      for (int i = 0; i < 200; ++i) {
        const double bearing = rng->Uniform(0.0, 360.0);
        const double dist = rng->Uniform(100.0, 1500.0);
        orders.push_back(Order{Destination(centre, bearing, dist), drift, 0});
      }
      break;
    }
    case Behaviour::kRendezvousA:
    case Behaviour::kRendezvousB: {
      // Approach the meet point from the lane start, arrive by meet_time,
      // hold through meet_duration, then continue to the lane end.
      auto wps = lane_waypoints(spec.lane, spec.reverse_lane);
      orders.push_back(Order{spec.meet_point, cruise,
                             spec.meet_time + spec.meet_duration});
      orders.push_back(Order{wps.back(), cruise, 0});
      break;
    }
  }
  return orders;
}

}  // namespace

std::vector<TruthState> SimulateVessel(const VesselSpec& spec,
                                       const World& world, Timestamp t0,
                                       Timestamp t1, DurationMs tick_ms,
                                       Rng* rng) {
  std::vector<TruthState> out;
  std::vector<Order> orders = BuildOrders(spec, world, t0, t1, rng);

  // Starting position: explicit override, loiter centre, or lane origin.
  GeoPoint pos;
  if (spec.start_override.IsValid()) {
    pos = spec.start_override;
  } else {
    switch (spec.behaviour) {
      case Behaviour::kLoiter:
        pos = spec.loiter_centre;
        break;
      case Behaviour::kFishing:
        pos = world.lanes()[spec.lane].waypoints.front();
        break;
      default: {
        auto wps = world.lanes()[spec.lane].waypoints;
        pos = spec.reverse_lane ? wps.back() : wps.front();
        break;
      }
    }
  }

  size_t order_idx = 0;
  double course = 0.0;
  Timestamp hold_until = 0;
  const double dt_s = static_cast<double>(tick_ms) / kMillisPerSecond;

  for (Timestamp t = t0; t <= t1; t += tick_ms) {
    TruthState state;
    state.t = t;

    const bool departed = t >= spec.depart_time;
    double speed = 0.0;

    if (departed && t >= hold_until && order_idx < orders.size()) {
      Order& order = orders[order_idx];
      const double dist = HaversineDistance(pos, order.target);
      // Speed jitter: ±5 % per tick, smoothed by being memoryless and small.
      speed = order.speed_mps * (1.0 + 0.05 * rng->Gaussian());
      speed = std::max(0.0, speed);
      const double step = speed * dt_s;
      if (dist <= step || dist < 1.0) {
        pos = order.target;
        if (order.hold_until == -1) {
          // Port call: 20–60 minutes.
          hold_until = t + Minutes(20) + static_cast<DurationMs>(
                                             rng->Uniform(0, Minutes(40)));
        } else if (order.hold_until > 0) {
          hold_until = order.hold_until;
        }
        ++order_idx;
        speed = 0.0;
      } else {
        course = InitialBearing(pos, order.target);
        // Cross-track wander: small heading perturbation.
        const double wander = rng->Gaussian() * 1.5;
        pos = Destination(pos, course + wander, step);
      }
    }

    state.position = pos;
    state.sog_mps = speed;
    state.cog_deg = course;
    state.transmitting = true;
    for (const auto& [ds, de] : spec.dark_windows) {
      if (t >= ds && t < de) {
        state.transmitting = false;
        break;
      }
    }
    out.push_back(state);
  }
  return out;
}

Trajectory TruthToTrajectory(Mmsi mmsi, const std::vector<TruthState>& states) {
  Trajectory traj;
  traj.mmsi = mmsi;
  traj.points.reserve(states.size());
  for (const auto& s : states) {
    TrajectoryPoint p;
    p.t = s.t;
    p.position = s.position;
    p.sog_mps = static_cast<float>(s.sog_mps);
    p.cog_deg = static_cast<float>(s.cog_deg);
    traj.points.push_back(p);
  }
  return traj;
}

}  // namespace marlin
