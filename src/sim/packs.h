#ifndef MARLIN_SIM_PACKS_H_
#define MARLIN_SIM_PACKS_H_

/// \file packs.h
/// \brief Adversarial scenario packs for the anomaly & integrity stage.
///
/// Each pack is a small, fast-to-generate fleet with perfect reception (no
/// coverage-gap noise) and exactly ONE attack class enabled, so a test can
/// assert that the targeted detector fires on its pack and that the clean
/// pack produces zero integrity or anomaly flags. All packs share the same
/// honest-traffic baseline; they differ only in the attack knob.

#include <cstdint>

#include "sim/scenario.h"

namespace marlin {

/// \brief Honest traffic only: transit vessels, no attacks, no sensor
/// dropouts. The zero-false-positive reference world.
ScenarioConfig MakeCleanPack(uint64_t seed);

/// \brief Clean pack + vessels transmitting under a stolen MMSI of an
/// in-fleet transit vessel: two transmitters share one identity, producing
/// irreconcilable position conflicts (→ kMmsiConflict).
ScenarioConfig MakeSpoofedMmsiPack(uint64_t seed);

/// \brief Clean pack + vessels with scripted transmitter-off windows of
/// 20–90 minutes (→ kDarkPeriod from the reporting-gap detector).
ScenarioConfig MakeDarkVoyagePack(uint64_t seed);

/// \brief Clean pack + a pair of vessels with contrasting speed classes
/// that exchange MMSIs mid-voyage: each identity's stream jumps hulls
/// (→ impossible implied speed, conflict evidence, behaviour change).
ScenarioConfig MakeIdentitySwapPack(uint64_t seed);

/// \brief Clean pack with EVERY report carrying the ITU "not available"
/// sentinels for SOG and COG: the regression world proving that missing
/// kinematics produce no speed- or course-derived detections.
ScenarioConfig MakeSentinelStormPack(uint64_t seed);

}  // namespace marlin

#endif  // MARLIN_SIM_PACKS_H_
