#ifndef MARLIN_SIM_RECEIVER_H_
#define MARLIN_SIM_RECEIVER_H_

/// \file receiver.h
/// \brief AIS reception model: terrestrial + satellite coverage, loss,
/// latency, duplication.
///
/// Reproduces the data-quality regime of §1/§2.5: terrestrial receptions
/// are near-real-time but range-limited; satellite receptions cover open
/// sea with minutes of latency and a duty cycle ("AIS data at open seas …
/// may be sparse, or delayed due to either low coverage or to multi-level
/// processing issues").

#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "geo/point.h"

namespace marlin {

/// \brief One delivery of a transmitted message.
struct Delivery {
  Timestamp ingest_time = 0;  ///< when the shore system receives it
  uint64_t source_id = 0;     ///< 1 = terrestrial, 2 = satellite
};

/// \brief Coverage/degradation model.
class ReceiverModel {
 public:
  struct Options {
    /// Terrestrial stations: (position, range metres).
    std::vector<std::pair<GeoPoint, double>> stations;
    double terrestrial_loss = 0.02;
    double terrestrial_latency_mean_s = 2.0;
    double terrestrial_latency_sigma_s = 1.0;
    /// Satellite pass model: a window of visibility every period.
    DurationMs satellite_period_ms = 90 * kMillisPerMinute;
    DurationMs satellite_window_ms = 12 * kMillisPerMinute;
    double satellite_loss = 0.10;
    double satellite_latency_min_s = 30.0;
    double satellite_latency_max_s = 900.0;
    /// Probability a received message is delivered twice (processing dupes).
    double duplicate_prob = 0.01;
  };

  ReceiverModel(const Options& options, uint64_t seed)
      : options_(options), rng_(seed) {}

  /// \brief Default coverage for a world: stations at every port with
  /// 60 NM range.
  static Options CoastalCoverage(const std::vector<GeoPoint>& station_sites,
                                 double range_m = 111000.0);

  /// \brief Deliveries (possibly none, possibly duplicated) for a message
  /// transmitted at `t` from `pos`.
  std::vector<Delivery> Deliver(Timestamp t, const GeoPoint& pos);

  /// \brief True iff a satellite is listening at time `t`.
  bool SatelliteVisible(Timestamp t) const;

 private:
  Options options_;
  Rng rng_;
};

}  // namespace marlin

#endif  // MARLIN_SIM_RECEIVER_H_
