#include "sim/packs.h"

namespace marlin {
namespace {

/// Shared honest-traffic baseline: a small all-transit fleet, perfect
/// reception, two hours of traffic. Every attack pack is this plus exactly
/// one attack knob, so detection differences are attributable to the attack.
ScenarioConfig BasePack(uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.duration = 2 * kMillisPerHour;
  config.transit_vessels = 6;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.identity_swap_pairs = 0;
  config.perfect_reception = true;
  return config;
}

}  // namespace

ScenarioConfig MakeCleanPack(uint64_t seed) { return BasePack(seed); }

ScenarioConfig MakeSpoofedMmsiPack(uint64_t seed) {
  ScenarioConfig config = BasePack(seed);
  config.spoof_identity_vessels = 2;
  return config;
}

ScenarioConfig MakeDarkVoyagePack(uint64_t seed) {
  ScenarioConfig config = BasePack(seed);
  config.dark_vessels = 2;
  return config;
}

ScenarioConfig MakeIdentitySwapPack(uint64_t seed) {
  ScenarioConfig config = BasePack(seed);
  config.identity_swap_pairs = 1;
  return config;
}

ScenarioConfig MakeSentinelStormPack(uint64_t seed) {
  ScenarioConfig config = BasePack(seed);
  config.missing_speed_rate = 1.0;
  config.missing_course_rate = 1.0;
  return config;
}

}  // namespace marlin
