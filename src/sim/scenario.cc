#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

#include "ais/codec.h"
#include "ais/validation.h"
#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {

const char* TrueEventTypeName(TrueEventType t) {
  switch (t) {
    case TrueEventType::kRendezvous:
      return "rendezvous";
    case TrueEventType::kDarkPeriod:
      return "dark-period";
    case TrueEventType::kSpoofIdentity:
      return "spoof-identity";
    case TrueEventType::kSpoofTeleport:
      return "spoof-teleport";
    case TrueEventType::kLoitering:
      return "loitering";
    case TrueEventType::kProtectedZoneFishing:
      return "protected-zone-fishing";
    case TrueEventType::kIdentitySwap:
      return "identity-swap";
  }
  return "unknown";
}

DurationMs ReportingInterval(double sog_knots, bool at_anchor) {
  // ITU-R M.1371 Class-A autonomous mode.
  if (at_anchor || sog_knots < 0.2) return 3 * kMillisPerMinute;
  if (sog_knots <= 14.0) return 10 * kMillisPerSecond;
  if (sog_knots <= 23.0) return 6 * kMillisPerSecond;
  return 2 * kMillisPerSecond;
}

namespace {

/// MID prefixes for plausible vessel MMSIs.
constexpr int kMids[] = {228, 247, 224, 255, 210, 636, 370, 538};

Mmsi MakeMmsi(Rng* rng, int index) {
  const int mid = kMids[index % (sizeof(kMids) / sizeof(kMids[0]))];
  return static_cast<Mmsi>(mid) * 1000000u +
         static_cast<Mmsi>(rng->UniformInt(100000, 999999));
}

std::string MakeName(Rng* rng, int index) {
  static const char* kFirst[] = {"SEA",   "OCEAN", "STAR", "NORD",
                                 "PACIFIC", "AURORA", "DELTA", "ALTAIR"};
  static const char* kSecond[] = {"SPIRIT", "TRADER", "QUEEN", "PIONEER",
                                  "HARMONY", "GLORY",  "WIND",  "CREST"};
  return std::string(kFirst[rng->NextBounded(8)]) + " " +
         kSecond[rng->NextBounded(8)] + " " + std::to_string(index);
}

std::string MakeCallSign(Rng* rng) {
  std::string cs = "3";
  for (int i = 0; i < 4; ++i) {
    cs.push_back(static_cast<char>('A' + rng->NextBounded(26)));
  }
  return cs;
}

/// Builds the vessel fleet per the config.
std::vector<VesselSpec> BuildFleet(const World& world,
                                   const ScenarioConfig& cfg, Rng* rng,
                                   std::vector<TrueEvent>* events) {
  std::vector<VesselSpec> fleet;
  const Timestamp t0 = cfg.start_time;
  const Timestamp t1 = cfg.start_time + cfg.duration;
  const int num_lanes = static_cast<int>(world.lanes().size());
  int index = 0;

  auto base_spec = [&](Behaviour behaviour) {
    VesselSpec spec;
    spec.mmsi = MakeMmsi(rng, index);
    spec.name = MakeName(rng, index);
    spec.call_sign = MakeCallSign(rng);
    spec.imo = MakeImoNumber(
        static_cast<uint32_t>(rng->UniformInt(900000, 999999)));
    spec.behaviour = behaviour;
    spec.lane = static_cast<int>(rng->NextBounded(num_lanes));
    spec.reverse_lane = rng->Bernoulli(0.5);
    spec.depart_time = t0 + static_cast<DurationMs>(
                                rng->Uniform(0, cfg.duration * 0.25));
    ++index;
    return spec;
  };

  for (int i = 0; i < cfg.transit_vessels; ++i) {
    VesselSpec spec = base_spec(Behaviour::kTransit);
    const double roll = rng->NextDouble();
    if (roll < 0.45) {
      spec.ship_type = 70 + static_cast<int>(rng->NextBounded(5));  // cargo
      spec.speed_knots = rng->Uniform(10.0, 16.0);
      spec.length_m = static_cast<int>(rng->UniformInt(90, 300));
    } else if (roll < 0.75) {
      spec.ship_type = 80 + static_cast<int>(rng->NextBounded(5));  // tanker
      spec.speed_knots = rng->Uniform(9.0, 14.0);
      spec.length_m = static_cast<int>(rng->UniformInt(120, 330));
    } else {
      spec.ship_type = 60 + static_cast<int>(rng->NextBounded(5));  // pax
      spec.speed_knots = rng->Uniform(15.0, 24.0);
      spec.length_m = static_cast<int>(rng->UniformInt(60, 200));
    }
    spec.beam_m = std::max(8, spec.length_m / 7);
    fleet.push_back(spec);
  }

  const int num_grounds = static_cast<int>(world.fishing_grounds().size());
  for (int i = 0; i < cfg.fishing_vessels; ++i) {
    VesselSpec spec = base_spec(Behaviour::kFishing);
    spec.ship_type = 30;
    spec.speed_knots = rng->Uniform(8.0, 11.0);
    spec.length_m = static_cast<int>(rng->UniformInt(18, 45));
    spec.beam_m = std::max(5, spec.length_m / 4);
    spec.fishing_ground = static_cast<int>(rng->NextBounded(num_grounds));
    spec.fishing_duration = static_cast<DurationMs>(
        rng->Uniform(0.3, 0.6) * cfg.duration);
    fleet.push_back(spec);
    const FishingGround& ground = world.fishing_grounds()[spec.fishing_ground];
    if (ground.protected_area) {
      TrueEvent ev;
      ev.type = TrueEventType::kProtectedZoneFishing;
      ev.vessel_a = spec.mmsi;
      ev.start = spec.depart_time;
      ev.end = t1;
      ev.where = ground.centre;
      events->push_back(ev);
    }
  }

  const BoundingBox bounds = world.Bounds();
  for (int i = 0; i < cfg.loiter_vessels; ++i) {
    VesselSpec spec = base_spec(Behaviour::kLoiter);
    spec.ship_type = 36 + static_cast<int>(rng->NextBounded(2));
    spec.speed_knots = 0.8;
    spec.length_m = static_cast<int>(rng->UniformInt(10, 30));
    spec.beam_m = 6;
    spec.loiter_centre =
        GeoPoint(rng->Uniform(bounds.min_lat + 0.5, bounds.max_lat - 0.5),
                 rng->Uniform(bounds.min_lon + 0.5, bounds.max_lon - 0.5));
    spec.depart_time = t0;
    fleet.push_back(spec);
    TrueEvent ev;
    ev.type = TrueEventType::kLoitering;
    ev.vessel_a = spec.mmsi;
    ev.start = t0;
    ev.end = t1;
    ev.where = spec.loiter_centre;
    events->push_back(ev);
  }

  for (int i = 0; i < cfg.rendezvous_pairs; ++i) {
    VesselSpec a = base_spec(Behaviour::kRendezvousA);
    VesselSpec b = base_spec(Behaviour::kRendezvousB);
    a.ship_type = 70;
    b.ship_type = 30;
    a.speed_knots = rng->Uniform(10.0, 14.0);
    b.speed_knots = rng->Uniform(9.0, 12.0);
    a.length_m = 140;
    b.length_m = 30;
    const Timestamp meet_time =
        t0 + static_cast<DurationMs>(rng->Uniform(0.4, 0.6) * cfg.duration);
    const DurationMs meet_duration =
        Minutes(20) + static_cast<DurationMs>(rng->Uniform(0, Minutes(25)));
    // Anchor the meeting within A's reach: A departs its lane origin at t0
    // and sails toward a point it can reach ~10 minutes early.
    const GeoPoint origin_a =
        a.reverse_lane ? world.lanes()[a.lane].waypoints.back()
                       : world.lanes()[a.lane].waypoints.front();
    const double budget_a_s =
        static_cast<double>(meet_time - t0 - Minutes(10)) / kMillisPerSecond;
    const double reach_a =
        std::max(5000.0, KnotsToMps(a.speed_knots) * budget_a_s * 0.8);
    GeoPoint meet =
        Destination(origin_a, rng->Uniform(0.0, 360.0), reach_a);
    // Keep the meeting inside the basin.
    meet.lat = std::clamp(meet.lat, bounds.min_lat + 0.3, bounds.max_lat - 0.3);
    meet.lon = std::clamp(meet.lon, bounds.min_lon + 0.3, bounds.max_lon - 0.3);
    // B approaches from a different bearing, also within reach.
    const double budget_b_s =
        static_cast<double>(meet_time - t0 - Minutes(10)) / kMillisPerSecond;
    const double reach_b = KnotsToMps(b.speed_knots) * budget_b_s * 0.8;
    b.start_override =
        Destination(meet, rng->Uniform(0.0, 360.0), reach_b);
    for (VesselSpec* spec : {&a, &b}) {
      spec->meet_point = meet;
      spec->meet_time = meet_time;
      spec->meet_duration = meet_duration;
      const GeoPoint origin = spec == &b ? b.start_override : origin_a;
      const double dist = HaversineDistance(origin, meet);
      const double travel_s = dist / KnotsToMps(spec->speed_knots);
      spec->depart_time =
          std::max(t0, meet_time - Seconds(travel_s) - Minutes(8));
    }
    // Offset B's meet point slightly so they hold ~80 m apart, not on top
    // of each other.
    b.meet_point = Destination(meet, rng->Uniform(0.0, 360.0), 80.0);
    fleet.push_back(a);
    fleet.push_back(b);
    TrueEvent ev;
    ev.type = TrueEventType::kRendezvous;
    ev.vessel_a = a.mmsi;
    ev.vessel_b = b.mmsi;
    ev.start = meet_time;
    ev.end = meet_time + meet_duration;
    ev.where = meet;
    events->push_back(ev);
  }

  for (int i = 0; i < cfg.dark_vessels; ++i) {
    VesselSpec spec = base_spec(Behaviour::kGoDark);
    spec.ship_type = rng->Bernoulli(0.5) ? 30 : 70;
    spec.speed_knots = rng->Uniform(9.0, 14.0);
    spec.length_m = 60;
    spec.beam_m = 12;
    // Transmit from the start so a pre-window baseline exists (a gap is
    // only observable between two reports).
    spec.depart_time = t0 + static_cast<DurationMs>(
                                rng->Uniform(0, Minutes(5)));
    // One to three dark windows, each 20–90 minutes, ending early enough
    // that the vessel re-appears before the scenario closes.
    const int windows = 1 + static_cast<int>(rng->NextBounded(3));
    for (int wnd = 0; wnd < windows; ++wnd) {
      const Timestamp ds =
          t0 + static_cast<DurationMs>(
                   rng->Uniform(0.15 + 0.25 * wnd, 0.15 + 0.25 * wnd + 0.15) *
                   cfg.duration);
      const DurationMs len =
          Minutes(20) + static_cast<DurationMs>(rng->Uniform(0, Minutes(70)));
      const Timestamp de = std::min(t1 - Minutes(10), ds + len);
      if (ds < de) {
        spec.dark_windows.emplace_back(ds, de);
        TrueEvent ev;
        ev.type = TrueEventType::kDarkPeriod;
        ev.vessel_a = spec.mmsi;
        ev.start = ds;
        ev.end = de;
        events->push_back(ev);
      }
    }
    fleet.push_back(spec);
  }

  for (int i = 0; i < cfg.spoof_identity_vessels; ++i) {
    VesselSpec spec = base_spec(Behaviour::kSpoofIdentity);
    spec.ship_type = 70;
    spec.speed_knots = rng->Uniform(10.0, 14.0);
    // Steal the identity of an existing transit vessel when available.
    spec.spoofed_mmsi =
        fleet.empty() ? MakeMmsi(rng, index) : fleet[rng->NextBounded(
                                                   std::min<size_t>(
                                                       fleet.size(), 8))]
                                                   .mmsi;
    fleet.push_back(spec);
    TrueEvent ev;
    ev.type = TrueEventType::kSpoofIdentity;
    ev.vessel_a = spec.mmsi;          // true identity
    ev.vessel_b = spec.spoofed_mmsi;  // claimed identity
    ev.start = spec.depart_time;
    ev.end = t1;
    events->push_back(ev);
  }

  for (int i = 0; i < cfg.identity_swap_pairs; ++i) {
    // Two honest-looking transit vessels with contrasting speed classes
    // that exchange MMSIs mid-voyage: each identity's report stream jumps
    // to the partner's position and its kinematic regime flips.
    VesselSpec a = base_spec(Behaviour::kTransit);
    VesselSpec b = base_spec(Behaviour::kTransit);
    a.ship_type = 70;  // slow cargo hull
    b.ship_type = 60;  // fast passenger hull
    a.speed_knots = rng->Uniform(8.0, 10.0);
    b.speed_knots = rng->Uniform(18.0, 22.0);
    a.length_m = 180;
    b.length_m = 90;
    a.beam_m = 26;
    b.beam_m = 14;
    // Both transmit from the start so each identity has a pre-swap
    // baseline, and swap mid-voyage while both are still under way.
    a.depart_time = t0;
    b.depart_time = t0;
    const Timestamp swap_time =
        t0 + static_cast<DurationMs>(rng->Uniform(0.4, 0.6) * cfg.duration);
    a.swap_mmsi = b.mmsi;
    a.swap_time = swap_time;
    b.swap_mmsi = a.mmsi;
    b.swap_time = swap_time;
    fleet.push_back(a);
    fleet.push_back(b);
    TrueEvent ev;
    ev.type = TrueEventType::kIdentitySwap;
    ev.vessel_a = a.mmsi;
    ev.vessel_b = b.mmsi;
    ev.start = swap_time;
    ev.end = t1;
    events->push_back(ev);
  }

  for (int i = 0; i < cfg.spoof_teleport_vessels; ++i) {
    VesselSpec spec = base_spec(Behaviour::kSpoofTeleport);
    spec.ship_type = 80;
    spec.speed_knots = rng->Uniform(10.0, 14.0);
    spec.teleport_period = Minutes(25);
    spec.teleport_offset_m = rng->Uniform(40000.0, 90000.0);
    fleet.push_back(spec);
    TrueEvent ev;
    ev.type = TrueEventType::kSpoofTeleport;
    ev.vessel_a = spec.mmsi;
    ev.start = spec.depart_time;
    ev.end = t1;
    events->push_back(ev);
  }

  return fleet;
}

StaticVoyageData MakeStatic(const VesselSpec& spec, Mmsi reported_mmsi) {
  StaticVoyageData sv;
  sv.mmsi = reported_mmsi;
  sv.imo_number = spec.imo;
  sv.call_sign = spec.call_sign;
  sv.name = spec.name;
  sv.ship_type = spec.ship_type;
  sv.dim_to_bow_m = spec.length_m / 2;
  sv.dim_to_stern_m = spec.length_m - spec.length_m / 2;
  sv.dim_to_port_m = spec.beam_m / 2;
  sv.dim_to_starboard_m = spec.beam_m - spec.beam_m / 2;
  sv.draught_m = 6.5;
  sv.destination = "NEXT PORT";
  sv.eta_month = 6;
  sv.eta_day = 15;
  sv.eta_hour = 12;
  sv.eta_minute = 0;
  return sv;
}

/// Seeds one of the E10 static-data defects into a type-5 message.
void CorruptStatic(StaticVoyageData* sv, Rng* rng) {
  switch (rng->NextBounded(5)) {
    case 0:
      sv->imo_number += 1;  // breaks the IMO check digit
      break;
    case 1:
      sv->name.clear();
      break;
    case 2:
      sv->dim_to_bow_m = 400;
      sv->dim_to_stern_m = 200;  // implausible 600 m vessel
      break;
    case 3:
      sv->ship_type = 13;  // reserved code
      break;
    case 4:
      sv->call_sign = "A?B*C";  // illegal characters
      break;
  }
}

}  // namespace

ScenarioOutput GenerateScenario(const World& world,
                                const ScenarioConfig& config) {
  ScenarioOutput out;
  Rng rng(config.seed);
  const Timestamp t0 = config.start_time;
  const Timestamp t1 = config.start_time + config.duration;

  out.fleet = BuildFleet(world, config, &rng, &out.events);

  ReceiverModel::Options receiver_opts = config.receiver;
  if (receiver_opts.stations.empty() && config.use_coastal_coverage_default) {
    std::vector<GeoPoint> sites;
    for (const Port& p : world.ports()) sites.push_back(p.position);
    receiver_opts = ReceiverModel::CoastalCoverage(sites);
  }
  ReceiverModel receiver(receiver_opts, rng.NextU64());
  AisEncoder encoder;

  for (const VesselSpec& spec : out.fleet) {
    Rng vessel_rng = rng.Fork();
    const std::vector<TruthState> states =
        SimulateVessel(spec, world, t0, t1, config.tick, &vessel_rng);
    out.truth.emplace(spec.mmsi, TruthToTrajectory(spec.mmsi, states));

    const Mmsi base_mmsi = spec.behaviour == Behaviour::kSpoofIdentity &&
                                   spec.spoofed_mmsi != 0
                               ? spec.spoofed_mmsi
                               : spec.mmsi;
    // Identity swap at sea: from swap_time on, transmit under the partner's
    // MMSI (the partner's spec carries the mirror-image script).
    const auto wire_mmsi = [&spec, base_mmsi](Timestamp t) {
      return spec.swap_mmsi != 0 && t >= spec.swap_time ? spec.swap_mmsi
                                                        : base_mmsi;
    };

    // --- Position reports at ITU cadence -------------------------------
    Timestamp next_report = spec.depart_time;
    Timestamp next_static = spec.depart_time + static_cast<DurationMs>(
                                                   vessel_rng.Uniform(
                                                       0, config.static_interval));
    Timestamp next_teleport =
        spec.teleport_period > 0 ? spec.depart_time + spec.teleport_period
                                 : kMaxTimestamp;

    for (const TruthState& state : states) {
      if (state.t < next_report && state.t < next_static) continue;

      // Transmit position report.
      if (state.t >= next_report) {
        const double sog_knots = MpsToKnots(state.sog_mps);
        next_report =
            state.t + static_cast<DurationMs>(
                          ReportingInterval(sog_knots, sog_knots < 0.2) *
                          config.report_interval_scale);
        if (!state.transmitting) continue;

        PositionReport pr;
        pr.message_type = 1;
        pr.mmsi = wire_mmsi(state.t);
        pr.nav_status = sog_knots < 0.2 ? NavigationStatus::kAtAnchor
                                        : NavigationStatus::kUnderWayUsingEngine;
        pr.sog_knots = sog_knots;
        pr.position = state.position;
        // GPS noise ~10 m 1-σ.
        pr.position = Destination(pr.position,
                                  vessel_rng.Uniform(0.0, 360.0),
                                  std::abs(vessel_rng.Gaussian(0.0, 10.0)));
        pr.position_accurate = true;
        pr.cog_deg = state.cog_deg;
        pr.true_heading = static_cast<int>(state.cog_deg) % 360;
        pr.utc_second = static_cast<int>((state.t / 1000) % 60);

        // Teleport spoofing: displace the *reported* position.
        if (state.t >= next_teleport) {
          next_teleport += spec.teleport_period;
          pr.position = Destination(state.position,
                                    vessel_rng.Uniform(0.0, 360.0),
                                    spec.teleport_offset_m);
        }

        // Sensor dropouts: the SOG/COG field goes out as the ITU "not
        // available" sentinel. The `rate > 0` short-circuit keeps the RNG
        // stream of pre-existing scenario configs byte-identical.
        if (config.missing_speed_rate > 0.0 &&
            vessel_rng.Bernoulli(config.missing_speed_rate)) {
          pr.sog_knots = AisSentinels::kSpeedNotAvailable;
        }
        if (config.missing_course_rate > 0.0 &&
            vessel_rng.Bernoulli(config.missing_course_rate)) {
          pr.cog_deg = AisSentinels::kCourseNotAvailable;
          pr.true_heading = AisSentinels::kHeadingNotAvailable;
        }

        ++out.transmissions;
        auto lines = encoder.Encode(AisMessage(pr));
        if (lines.ok()) {
          // Receivers prepend a TAG block with their reception time — the
          // mechanism that lets the shore side recover event time for
          // satellite-delayed deliveries.
          const std::string tag = FormatTagBlock(state.t);
          if (config.perfect_reception) {
            for (const auto& line : *lines) {
              out.nmea.emplace_back(state.t, state.t, 1, tag + line);
            }
          } else {
            for (const Delivery& d : receiver.Deliver(state.t, state.position)) {
              for (const auto& line : *lines) {
                out.nmea.emplace_back(state.t, d.ingest_time, d.source_id,
                                      tag + line);
              }
            }
          }
        }
      }

      // Transmit static & voyage data.
      if (state.t >= next_static) {
        next_static = state.t + config.static_interval;
        if (!state.transmitting) continue;
        StaticVoyageData sv = MakeStatic(spec, wire_mmsi(state.t));
        if (config.static_error_rate > 0.0 &&
            vessel_rng.Bernoulli(config.static_error_rate)) {
          CorruptStatic(&sv, &vessel_rng);
        }
        ++out.transmissions;
        auto lines = encoder.Encode(AisMessage(sv));
        if (lines.ok()) {
          const std::string tag = FormatTagBlock(state.t);
          if (config.perfect_reception) {
            for (const auto& line : *lines) {
              out.nmea.emplace_back(state.t, state.t, 1, tag + line);
            }
          } else {
            for (const Delivery& d : receiver.Deliver(state.t, state.position)) {
              for (const auto& line : *lines) {
                out.nmea.emplace_back(state.t, d.ingest_time, d.source_id,
                                      tag + line);
              }
            }
          }
        }
      }
    }
  }

  // Arrival order = ingest time (the stream a shore centre actually sees).
  std::sort(out.nmea.begin(), out.nmea.end(),
            [](const Event<std::string>& a, const Event<std::string>& b) {
              if (a.ingest_time != b.ingest_time) {
                return a.ingest_time < b.ingest_time;
              }
              return a.event_time < b.event_time;
            });
  return out;
}

}  // namespace marlin
