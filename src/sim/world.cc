#include "sim/world.h"

#include "geo/geodesy.h"

namespace marlin {

namespace {

Lane MakeLane(int from, int to, const std::vector<GeoPoint>& via,
              const std::vector<Port>& ports) {
  Lane lane;
  lane.from_port = from;
  lane.to_port = to;
  lane.waypoints.push_back(ports[from].position);
  for (const auto& p : via) lane.waypoints.push_back(p);
  lane.waypoints.push_back(ports[to].position);
  return lane;
}

}  // namespace

World World::Basin() {
  World w;
  // A synthetic basin spanning roughly 36–44 N, 6 W – 9 E.
  w.ports_ = {
      {"Westhaven", GeoPoint(36.9, -5.2), 3000.0},
      {"Porto Sole", GeoPoint(43.2, 8.1), 3000.0},
      {"Cap Azur", GeoPoint(43.0, 5.4), 2500.0},
      {"Isla Verde", GeoPoint(39.5, 2.6), 2500.0},
      {"Puerto Rocas", GeoPoint(38.3, -0.5), 2500.0},
      {"Cala Bruna", GeoPoint(41.3, 9.1), 2000.0},
      {"Port Vell", GeoPoint(41.35, 2.15), 3000.0},
      {"Bahia Norte", GeoPoint(36.7, -3.0), 2000.0},
  };
  w.lanes_ = {
      MakeLane(0, 6, {GeoPoint(36.8, -2.0), GeoPoint(38.6, 0.6),
                      GeoPoint(40.0, 1.5)}, w.ports_),
      MakeLane(6, 1, {GeoPoint(42.0, 4.0), GeoPoint(42.8, 6.5)}, w.ports_),
      MakeLane(0, 4, {GeoPoint(36.9, -2.5)}, w.ports_),
      MakeLane(4, 3, {GeoPoint(38.9, 1.2)}, w.ports_),
      MakeLane(3, 2, {GeoPoint(41.0, 4.2)}, w.ports_),
      MakeLane(2, 1, {GeoPoint(43.0, 7.0)}, w.ports_),
      MakeLane(3, 5, {GeoPoint(40.2, 6.0)}, w.ports_),
      MakeLane(5, 1, {GeoPoint(42.3, 8.9)}, w.ports_),
      MakeLane(7, 3, {GeoPoint(37.5, 0.0)}, w.ports_),
      MakeLane(7, 0, {}, w.ports_),
      MakeLane(6, 2, {GeoPoint(42.2, 3.8)}, w.ports_),
      MakeLane(4, 6, {GeoPoint(39.8, 0.9)}, w.ports_),
  };
  w.fishing_grounds_ = {
      {"North Banks", GeoPoint(42.3, 5.8), 25000.0, false},
      {"Verde Shallows", GeoPoint(39.0, 3.8), 20000.0, false},
      {"Coral Reserve", GeoPoint(37.8, 1.8), 15000.0, true},
  };
  w.BuildZones();
  return w;
}

World World::Global() {
  World w;
  w.ports_ = {
      {"Rotterdam", GeoPoint(51.95, 4.1), 5000.0},
      {"Algeciras", GeoPoint(36.13, -5.43), 4000.0},
      {"Piraeus", GeoPoint(37.94, 23.62), 4000.0},
      {"Suez", GeoPoint(29.93, 32.55), 4000.0},
      {"Singapore", GeoPoint(1.26, 103.82), 6000.0},
      {"Shanghai", GeoPoint(30.63, 122.06), 6000.0},
      {"Santos", GeoPoint(-23.98, -46.29), 4000.0},
      {"New York", GeoPoint(40.5, -73.8), 5000.0},
      {"Houston", GeoPoint(29.3, -94.7), 4000.0},
      {"Lagos", GeoPoint(6.38, 3.4), 4000.0},
      {"Durban", GeoPoint(-29.87, 31.05), 4000.0},
      {"Mumbai", GeoPoint(18.92, 72.84), 4000.0},
      {"Yokohama", GeoPoint(35.41, 139.68), 4000.0},
      {"Los Angeles", GeoPoint(33.71, -118.27), 5000.0},
      {"Panama", GeoPoint(8.88, -79.52), 4000.0},
      {"Valparaiso", GeoPoint(-33.03, -71.63), 3000.0},
  };
  auto lane = [&](int a, int b, std::vector<GeoPoint> via = {}) {
    w.lanes_.push_back(MakeLane(a, b, via, w.ports_));
  };
  lane(0, 1, {GeoPoint(49.2, -5.5), GeoPoint(43.5, -9.8)});
  lane(1, 2, {GeoPoint(37.0, 5.0), GeoPoint(37.3, 11.3)});
  lane(2, 3, {GeoPoint(34.0, 27.0)});
  lane(3, 11, {GeoPoint(12.5, 45.0), GeoPoint(13.0, 55.0)});
  lane(11, 4, {GeoPoint(6.0, 80.5)});
  lane(4, 5, {GeoPoint(10.5, 109.5), GeoPoint(22.0, 116.0)});
  lane(5, 12, {GeoPoint(31.0, 127.5)});
  lane(12, 13, {GeoPoint(40.0, 180.0 - 0.01), GeoPoint(42.0, -160.0)});
  lane(13, 14, {GeoPoint(20.0, -106.0)});
  lane(14, 8, {GeoPoint(22.0, -86.0)});
  lane(14, 6, {GeoPoint(-5.0, -40.0)});
  lane(6, 15, {GeoPoint(-35.0, -55.0)});
  lane(7, 0, {GeoPoint(45.0, -40.0), GeoPoint(49.5, -15.0)});
  lane(7, 14, {GeoPoint(25.0, -75.0)});
  lane(1, 9, {GeoPoint(25.0, -16.0), GeoPoint(10.0, -8.0)});
  lane(9, 10, {GeoPoint(-15.0, 8.0), GeoPoint(-32.0, 20.0)});
  lane(10, 11, {GeoPoint(-18.0, 45.0), GeoPoint(2.0, 60.0)});
  w.fishing_grounds_ = {
      {"Grand Banks", GeoPoint(45.0, -51.0), 120000.0, false},
      {"North Sea", GeoPoint(56.5, 3.0), 100000.0, false},
      {"Benguela", GeoPoint(-20.0, 11.0), 110000.0, false},
  };
  w.BuildZones();
  return w;
}

void World::BuildZones() {
  for (const Port& p : ports_) {
    GeoZone z;
    z.name = p.name;
    z.type = ZoneType::kPort;
    z.polygon = Polygon::Circle(p.position, p.radius_m, 20);
    zones_.Add(std::move(z));

    GeoZone anchorage;
    anchorage.name = p.name + " anchorage";
    anchorage.type = ZoneType::kAnchorage;
    anchorage.polygon = Polygon::Circle(p.position, p.radius_m * 3.0, 20);
    anchorage.speed_limit_knots = 8.0;
    zones_.Add(std::move(anchorage));
  }
  for (const FishingGround& g : fishing_grounds_) {
    GeoZone z;
    z.name = g.name;
    z.type = g.protected_area ? ZoneType::kProtectedArea
                              : ZoneType::kFishingGround;
    z.fishing_prohibited = g.protected_area;
    z.polygon = Polygon::Circle(g.centre, g.radius_m, 24);
    zones_.Add(std::move(z));
  }
  // Two synthetic EEZ rectangles split the basin between coastal states.
  const BoundingBox bounds = Bounds().Expanded(1.0);
  const double mid_lon = (bounds.min_lon + bounds.max_lon) / 2;
  GeoZone eez_west;
  eez_west.name = "EEZ West";
  eez_west.type = ZoneType::kEez;
  eez_west.polygon = Polygon::FromBox(
      BoundingBox(bounds.min_lat, bounds.min_lon, bounds.max_lat, mid_lon));
  zones_.Add(std::move(eez_west));
  GeoZone eez_east;
  eez_east.name = "EEZ East";
  eez_east.type = ZoneType::kEez;
  eez_east.polygon = Polygon::FromBox(
      BoundingBox(bounds.min_lat, mid_lon, bounds.max_lat, bounds.max_lon));
  zones_.Add(std::move(eez_east));
}

std::vector<int> World::LanesFrom(int port) const {
  std::vector<int> out;
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].from_port == port) out.push_back(static_cast<int>(i));
  }
  return out;
}

BoundingBox World::Bounds() const {
  BoundingBox box = BoundingBox::Empty();
  for (const Port& p : ports_) box.Extend(p.position);
  for (const Lane& l : lanes_) {
    for (const GeoPoint& wp : l.waypoints) box.Extend(wp);
  }
  for (const FishingGround& g : fishing_grounds_) box.Extend(g.centre);
  return box;
}

}  // namespace marlin
