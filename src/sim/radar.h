#ifndef MARLIN_SIM_RADAR_H_
#define MARLIN_SIM_RADAR_H_

/// \file radar.h
/// \brief Coastal radar simulator: the non-cooperative second sensor of the
/// fusion experiments (paper §2.4, substituting for real radar/SAR feeds).
///
/// Emits anonymous position contacts at a fixed scan period with detection
/// probability, range-dependent noise and uniform false alarms — the
/// properties that drive association/fusion behaviour.

#include <map>
#include <vector>

#include "ais/types.h"
#include "common/rng.h"
#include "common/time.h"
#include "fusion/tracker.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief One radar site and its performance model.
struct RadarSite {
  GeoPoint position;
  double range_m = 55000.0;        ///< instrumented range (~30 NM)
  DurationMs scan_period = 6 * kMillisPerSecond;  ///< antenna rotation
  double sigma_m = 80.0;           ///< 1-σ position noise at mid-range
  double detection_prob = 0.9;
  double false_alarms_per_scan = 0.2;
};

/// \brief Generates contacts from ground-truth trajectories.
class RadarSimulator {
 public:
  RadarSimulator(RadarSite site, uint64_t seed) : site_(site), rng_(seed) {}

  /// \brief Contacts for one scan at time `t`: detections of every truth
  /// position in range (with Pd and noise) plus false alarms.
  std::vector<Contact> Scan(const std::map<Mmsi, Trajectory>& truth,
                            Timestamp t);

  /// \brief All scans over [t0, t1], keyed by scan time.
  std::vector<std::pair<Timestamp, std::vector<Contact>>> ScanRange(
      const std::map<Mmsi, Trajectory>& truth, Timestamp t0, Timestamp t1);

  const RadarSite& site() const { return site_; }

 private:
  RadarSite site_;
  Rng rng_;
};

}  // namespace marlin

#endif  // MARLIN_SIM_RADAR_H_
