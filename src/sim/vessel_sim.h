#ifndef MARLIN_SIM_VESSEL_SIM_H_
#define MARLIN_SIM_VESSEL_SIM_H_

/// \file vessel_sim.h
/// \brief Per-vessel behaviour simulation producing ground-truth kinematics.
///
/// Behaviours cover the event classes the paper's detection section (§3.1)
/// targets: normal transits, fishing patterns, loitering, rendezvous pairs,
/// go-dark vessels, and AIS spoofers. Motion is deterministic given the
/// seed; the receiver model (receiver.h) separately degrades what is *seen*.

#include <string>
#include <vector>

#include "ais/types.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/world.h"
#include "storage/trajectory.h"

namespace marlin {

/// \brief Scripted vessel behaviours.
enum class Behaviour : uint8_t {
  kTransit = 0,       ///< port-to-port lane following
  kFishing,           ///< transit to ground, zigzag trawl, return
  kLoiter,            ///< near-stationary drift in one area
  kRendezvousA,       ///< meets partner at meet_point/meet_time (initiator)
  kRendezvousB,       ///< the partner side
  kGoDark,            ///< transit with transmitter-off windows
  kSpoofIdentity,     ///< transmits under a stolen MMSI
  kSpoofTeleport,     ///< reports occasionally displaced positions
};

const char* BehaviourName(Behaviour b);

/// \brief Full specification of one simulated vessel.
struct VesselSpec {
  Mmsi mmsi = 0;
  std::string name;
  std::string call_sign;
  uint32_t imo = 0;
  int ship_type = 70;  ///< ITU code (70 = cargo)
  int length_m = 120;
  int beam_m = 20;
  Behaviour behaviour = Behaviour::kTransit;
  int lane = 0;                   ///< lane index in the world
  bool reverse_lane = false;      ///< traverse the lane backwards
  double speed_knots = 12.0;
  Timestamp depart_time = 0;      ///< when the vessel starts moving
  int fishing_ground = 0;
  DurationMs fishing_duration = 4 * kMillisPerHour;
  GeoPoint loiter_centre;
  // Rendezvous script
  GeoPoint meet_point;
  Timestamp meet_time = 0;
  DurationMs meet_duration = 30 * kMillisPerMinute;
  /// Optional starting position overriding the lane origin (used to place
  /// rendezvous partners within reach of the meet point).
  GeoPoint start_override;  ///< invalid (default) = use the lane origin
  // Go-dark script: transmitter off inside these windows
  std::vector<std::pair<Timestamp, Timestamp>> dark_windows;
  // Spoofing scripts
  Mmsi spoofed_mmsi = 0;              ///< identity transmitted when spoofing
  DurationMs teleport_period = 0;     ///< 0 = never
  double teleport_offset_m = 60000.0;
  // Identity swap at sea: from `swap_time` on, transmit under `swap_mmsi`
  // (the partner vessel carries the mirror-image script).
  Mmsi swap_mmsi = 0;                 ///< 0 = never swap
  Timestamp swap_time = 0;
};

/// \brief Ground-truth kinematic state at one tick.
struct TruthState {
  Timestamp t = 0;
  GeoPoint position;
  double sog_mps = 0.0;
  double cog_deg = 0.0;
  bool transmitting = true;  ///< false inside dark windows
};

/// \brief Simulates one vessel's true motion over [t0, t1] at `tick_ms`.
///
/// Deterministic given `rng` state. The trajectory respects the behaviour
/// script; speeds carry small per-tick jitter; lane following applies a
/// bounded cross-track wander.
std::vector<TruthState> SimulateVessel(const VesselSpec& spec,
                                       const World& world, Timestamp t0,
                                       Timestamp t1, DurationMs tick_ms,
                                       Rng* rng);

/// \brief Converts truth states to a Trajectory (all ticks, regardless of
/// transmission state).
Trajectory TruthToTrajectory(Mmsi mmsi, const std::vector<TruthState>& states);

}  // namespace marlin

#endif  // MARLIN_SIM_VESSEL_SIM_H_
