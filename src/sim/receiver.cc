#include "sim/receiver.h"

#include <algorithm>

#include "geo/geodesy.h"

namespace marlin {

ReceiverModel::Options ReceiverModel::CoastalCoverage(
    const std::vector<GeoPoint>& station_sites, double range_m) {
  Options opts;
  opts.stations.reserve(station_sites.size());
  for (const GeoPoint& site : station_sites) {
    opts.stations.emplace_back(site, range_m);
  }
  return opts;
}

bool ReceiverModel::SatelliteVisible(Timestamp t) const {
  if (options_.satellite_period_ms <= 0) return false;
  const Timestamp phase =
      ((t % options_.satellite_period_ms) + options_.satellite_period_ms) %
      options_.satellite_period_ms;
  return phase < options_.satellite_window_ms;
}

std::vector<Delivery> ReceiverModel::Deliver(Timestamp t, const GeoPoint& pos) {
  std::vector<Delivery> out;

  // Terrestrial path: any station in range.
  bool in_terrestrial = false;
  for (const auto& [site, range] : options_.stations) {
    if (HaversineDistance(site, pos) <= range) {
      in_terrestrial = true;
      break;
    }
  }
  if (in_terrestrial && !rng_.Bernoulli(options_.terrestrial_loss)) {
    const double latency_s =
        std::max(0.1, rng_.Gaussian(options_.terrestrial_latency_mean_s,
                                    options_.terrestrial_latency_sigma_s));
    out.push_back(Delivery{t + Seconds(latency_s), 1});
  }

  // Satellite path: only during a pass window, long-tail latency.
  if (SatelliteVisible(t) && !rng_.Bernoulli(options_.satellite_loss)) {
    const double latency_s = rng_.Uniform(options_.satellite_latency_min_s,
                                          options_.satellite_latency_max_s);
    out.push_back(Delivery{t + Seconds(latency_s), 2});
  }

  // Processing duplicates.
  if (!out.empty() && rng_.Bernoulli(options_.duplicate_prob)) {
    Delivery dupe = out.front();
    dupe.ingest_time += Seconds(rng_.Uniform(0.5, 5.0));
    out.push_back(dupe);
  }
  return out;
}

}  // namespace marlin
