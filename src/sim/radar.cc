#include "sim/radar.h"

#include "geo/geodesy.h"

namespace marlin {

std::vector<Contact> RadarSimulator::Scan(
    const std::map<Mmsi, Trajectory>& truth, Timestamp t) {
  std::vector<Contact> contacts;
  for (const auto& [mmsi, traj] : truth) {
    if (traj.points.empty() || t < traj.StartTime() || t > traj.EndTime()) {
      continue;
    }
    const TrajectoryPoint p = traj.At(t);
    const double range = HaversineDistance(site_.position, p.position);
    if (range > site_.range_m) continue;
    if (!rng_.Bernoulli(site_.detection_prob)) continue;
    Contact c;
    c.t = t;
    // Noise grows mildly with range (beam spreading).
    const double sigma = site_.sigma_m * (0.5 + range / site_.range_m);
    c.position = Destination(p.position, rng_.Uniform(0.0, 360.0),
                             std::abs(rng_.Gaussian(0.0, sigma)));
    c.sigma_m = sigma;
    c.sensor = SensorKind::kRadar;
    c.mmsi = 0;  // radar has no identity
    contacts.push_back(c);
  }
  // Poisson-ish false alarms: Bernoulli per expected count.
  double fa = site_.false_alarms_per_scan;
  while (fa > 0.0) {
    if (rng_.Bernoulli(std::min(1.0, fa))) {
      Contact c;
      c.t = t;
      c.position = Destination(site_.position, rng_.Uniform(0.0, 360.0),
                               rng_.Uniform(0.0, site_.range_m));
      c.sigma_m = site_.sigma_m;
      c.sensor = SensorKind::kRadar;
      contacts.push_back(c);
    }
    fa -= 1.0;
  }
  return contacts;
}

std::vector<std::pair<Timestamp, std::vector<Contact>>>
RadarSimulator::ScanRange(const std::map<Mmsi, Trajectory>& truth,
                          Timestamp t0, Timestamp t1) {
  std::vector<std::pair<Timestamp, std::vector<Contact>>> out;
  for (Timestamp t = t0; t <= t1; t += site_.scan_period) {
    out.emplace_back(t, Scan(truth, t));
  }
  return out;
}

}  // namespace marlin
