#ifndef MARLIN_SIM_SCENARIO_H_
#define MARLIN_SIM_SCENARIO_H_

/// \file scenario.h
/// \brief End-to-end scenario generation: fleet → ground truth → AIS wire
/// stream (+ ground-truth event log for precision/recall scoring).
///
/// This is the experiment harness substrate: every benchmark seeds a
/// scenario, runs the system under test on the NMEA stream, and scores
/// against the ground truth this module emits.

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/receiver.h"
#include "sim/vessel_sim.h"
#include "sim/world.h"
#include "storage/trajectory.h"
#include "stream/event.h"

namespace marlin {

/// \brief Ground-truth event classes seeded by the scenario.
enum class TrueEventType : uint8_t {
  kRendezvous = 0,
  kDarkPeriod,
  kSpoofIdentity,
  kSpoofTeleport,
  kLoitering,
  kProtectedZoneFishing,
  kIdentitySwap,  ///< two vessels exchange MMSIs mid-voyage
};

const char* TrueEventTypeName(TrueEventType t);

/// \brief One seeded event with its true extent.
struct TrueEvent {
  TrueEventType type = TrueEventType::kRendezvous;
  Timestamp start = 0;
  Timestamp end = 0;
  Mmsi vessel_a = 0;
  Mmsi vessel_b = 0;  ///< 0 when single-vessel
  GeoPoint where;
};

/// \brief Scenario composition knobs.
struct ScenarioConfig {
  uint64_t seed = 42;
  Timestamp start_time = 1700000000000;  ///< arbitrary epoch anchor
  DurationMs duration = 6 * kMillisPerHour;
  DurationMs tick = 10 * kMillisPerSecond;

  int transit_vessels = 30;
  int fishing_vessels = 8;
  int loiter_vessels = 3;
  int rendezvous_pairs = 2;
  int dark_vessels = 5;
  int spoof_identity_vessels = 2;
  int spoof_teleport_vessels = 2;
  /// Vessel pairs that exchange MMSIs mid-voyage (identity swap at sea) —
  /// contrasting speed classes so the swap is kinematically visible.
  int identity_swap_pairs = 0;

  /// Per-report probability of the SOG/COG field carrying the ITU "not
  /// available" sentinel (transponder sensor dropouts). 0 keeps the RNG
  /// stream of pre-existing scenarios untouched.
  double missing_speed_rate = 0.0;
  double missing_course_rate = 0.0;

  /// Scale factor on ITU reporting rates (1.0 = spec; larger = sparser).
  double report_interval_scale = 1.0;
  /// Emit type-5 static & voyage data every this often per vessel.
  DurationMs static_interval = 6 * kMillisPerMinute;
  /// Fraction of type-5 messages seeded with static-data defects (E10).
  double static_error_rate = 0.0;

  /// Receiver model; when `perfect_reception` is set every transmission is
  /// delivered instantly (for decoding-throughput benchmarks).
  ReceiverModel::Options receiver;
  bool perfect_reception = false;
  bool use_coastal_coverage_default = true;
};

/// \brief Everything a scenario produces.
struct ScenarioOutput {
  std::vector<VesselSpec> fleet;
  std::map<Mmsi, Trajectory> truth;           ///< ground-truth trajectories
  std::vector<Event<std::string>> nmea;       ///< wire stream, arrival order
  std::vector<TrueEvent> events;              ///< seeded ground truth events
  uint64_t transmissions = 0;                 ///< messages sent (pre-loss)
};

/// \brief Generates a complete scenario (deterministic per config).
ScenarioOutput GenerateScenario(const World& world, const ScenarioConfig& config);

/// \brief ITU-R M.1371 Class-A reporting interval for a given speed.
DurationMs ReportingInterval(double sog_knots, bool at_anchor);

}  // namespace marlin

#endif  // MARLIN_SIM_SCENARIO_H_
