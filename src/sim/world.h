#ifndef MARLIN_SIM_WORLD_H_
#define MARLIN_SIM_WORLD_H_

/// \file world.h
/// \brief Synthetic maritime world: ports, shipping lanes, fishing grounds,
/// and the derived zone database.
///
/// Substitutes for the real-world geography behind Figure 1 / the datAcron
/// scenarios: what matters downstream is that vessels move on realistic
/// lane networks between ports, with regulated areas to violate and
/// fishing grounds to work — all of which this world provides
/// deterministically.

#include <string>
#include <vector>

#include "context/zones.h"
#include "geo/point.h"

namespace marlin {

/// \brief A named port.
struct Port {
  std::string name;
  GeoPoint position;
  double radius_m = 3000.0;  ///< harbour approach radius
};

/// \brief A shipping lane: waypoint polyline between two ports.
struct Lane {
  int from_port = 0;
  int to_port = 0;
  std::vector<GeoPoint> waypoints;  ///< includes both port positions
};

/// \brief A fishing ground with its regulatory status.
struct FishingGround {
  std::string name;
  GeoPoint centre;
  double radius_m = 20000.0;
  bool protected_area = false;  ///< true = fishing prohibited
};

/// \brief The static world shared by all simulations.
class World {
 public:
  /// \brief The default basin: a synthetic western-Mediterranean-like sea
  /// with 8 ports, a lane network, 3 fishing grounds (one protected), and
  /// EEZ boundaries. Deterministic — no RNG involved.
  static World Basin();

  /// \brief A coarse global world (major ports on real-ish coordinates,
  /// great-circle trunk lanes) used by the Figure-1 world map experiment.
  static World Global();

  const std::vector<Port>& ports() const { return ports_; }
  const std::vector<Lane>& lanes() const { return lanes_; }
  const std::vector<FishingGround>& fishing_grounds() const {
    return fishing_grounds_;
  }

  /// \brief Zone database derived from the world (ports, protected areas,
  /// EEZ rectangles, lanes).
  const ZoneDatabase& zones() const { return zones_; }

  /// \brief Lanes departing a given port.
  std::vector<int> LanesFrom(int port) const;

  /// \brief Overall bounding box of the world geometry.
  BoundingBox Bounds() const;

 private:
  void BuildZones();

  std::vector<Port> ports_;
  std::vector<Lane> lanes_;
  std::vector<FishingGround> fishing_grounds_;
  ZoneDatabase zones_;
};

}  // namespace marlin

#endif  // MARLIN_SIM_WORLD_H_
