#include "uncertainty/dempster_shafer.h"

#include <bit>
#include <cmath>

namespace marlin {

Frame::Frame(std::vector<std::string> hypotheses)
    : names_(std::move(hypotheses)) {
  // 16 hypotheses bounds focal enumeration at 2^16; maritime classification
  // frames (ship classes, behaviour labels) are far smaller.
  if (names_.size() > 16) names_.resize(16);
}

int Frame::Index(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Frame::SetToString(FocalSet set) const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < size(); ++i) {
    if (set & (1u << i)) {
      if (!first) out += ",";
      out += names_[i];
      first = false;
    }
  }
  out += "}";
  return out;
}

void MassFunction::Assign(FocalSet set, double mass) {
  if (mass == 0.0) return;
  masses_[set & frame_->Theta()] += mass;
}

MassFunction MassFunction::Vacuous(const Frame* frame) {
  MassFunction m(frame);
  m.Assign(frame->Theta(), 1.0);
  return m;
}

void MassFunction::Normalize() {
  double total = 0.0;
  for (const auto& [set, mass] : masses_) {
    if (set != 0) total += mass;
  }
  masses_.erase(0);
  if (total <= 0.0) return;
  for (auto& [set, mass] : masses_) mass /= total;
}

double MassFunction::Belief(FocalSet set) const {
  double total = 0.0;
  for (const auto& [focal, mass] : masses_) {
    if (focal != 0 && (focal & ~set) == 0) total += mass;
  }
  return total;
}

double MassFunction::Plausibility(FocalSet set) const {
  double total = 0.0;
  for (const auto& [focal, mass] : masses_) {
    if ((focal & set) != 0) total += mass;
  }
  return total;
}

double MassFunction::Pignistic(int hypothesis) const {
  const FocalSet h = 1u << hypothesis;
  double total = 0.0;
  double empty_mass = Conflict();
  const double norm = 1.0 - empty_mass;
  if (norm <= 0.0) return 0.0;
  for (const auto& [focal, mass] : masses_) {
    if (focal == 0) continue;
    if (focal & h) {
      total += mass / static_cast<double>(std::popcount(focal));
    }
  }
  return total / norm;
}

int MassFunction::Decide() const {
  int best = -1;
  double best_p = -1.0;
  for (int i = 0; i < frame_->size(); ++i) {
    const double p = Pignistic(i);
    if (p > best_p) {
      best_p = p;
      best = i;
    }
  }
  return best;
}

double MassFunction::Conflict() const {
  auto it = masses_.find(0);
  return it == masses_.end() ? 0.0 : it->second;
}

MassFunction MassFunction::Discount(double reliability) const {
  MassFunction out(frame_);
  const double alpha = std::min(1.0, std::max(0.0, reliability));
  for (const auto& [set, mass] : masses_) {
    out.Assign(set, alpha * mass);
  }
  out.Assign(frame_->Theta(), 1.0 - alpha);
  return out;
}

Result<MassFunction> Combine(const MassFunction& a, const MassFunction& b,
                             CombinationRule rule) {
  if (a.frame() != b.frame()) {
    return Status::Invalid("mass functions on different frames");
  }
  MassFunction out(a.frame());
  const FocalSet theta = a.frame()->Theta();

  if (rule == CombinationRule::kDisjunctive) {
    for (const auto& [sa, ma] : a.masses()) {
      for (const auto& [sb, mb] : b.masses()) {
        out.Assign(sa | sb, ma * mb);
      }
    }
    return out;
  }

  double conflict = 0.0;
  for (const auto& [sa, ma] : a.masses()) {
    for (const auto& [sb, mb] : b.masses()) {
      const FocalSet inter = sa & sb;
      const double product = ma * mb;
      if (inter == 0) {
        conflict += product;
      } else {
        out.Assign(inter, product);
      }
    }
  }
  switch (rule) {
    case CombinationRule::kDempster: {
      if (conflict >= 1.0 - 1e-12) {
        return Status::Invalid("total conflict: Dempster rule undefined");
      }
      const double k = 1.0 / (1.0 - conflict);
      MassFunction normalized(a.frame());
      for (const auto& [set, mass] : out.masses()) {
        normalized.Assign(set, mass * k);
      }
      return normalized;
    }
    case CombinationRule::kConjunctive:
      out.Assign(0, conflict);
      return out;
    case CombinationRule::kYager:
      out.Assign(theta, conflict);
      return out;
    case CombinationRule::kDisjunctive:
      break;  // handled above
  }
  return out;
}

Result<MassFunction> CombineAll(const std::vector<MassFunction>& sources,
                                CombinationRule rule) {
  if (sources.empty()) return Status::Invalid("no sources to combine");
  MassFunction acc = sources[0];
  for (size_t i = 1; i < sources.size(); ++i) {
    MARLIN_ASSIGN_OR_RETURN(acc, Combine(acc, sources[i], rule));
  }
  return acc;
}

}  // namespace marlin
