#ifndef MARLIN_UNCERTAINTY_DEMPSTER_SHAFER_H_
#define MARLIN_UNCERTAINTY_DEMPSTER_SHAFER_H_

/// \file dempster_shafer.h
/// \brief Dempster–Shafer evidence theory (paper §4: "extension to other
/// uncertainty representations such as evidence or possibility theories is
/// certainly desirable", citing Dubois et al. [13]).
///
/// A frame of discernment is a set of at most 16 mutually exclusive
/// hypotheses; focal elements are subsets encoded as bitmasks. Supports the
/// combination rules the fusion literature compares (Dempster, conjunctive,
/// disjunctive, Yager) plus reliability discounting — the mechanism §4
/// proposes for handling source quality.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace marlin {

/// Subset of the frame encoded as a bitmask (bit i = hypothesis i).
using FocalSet = uint32_t;

/// \brief Named frame of discernment (≤ 16 hypotheses).
class Frame {
 public:
  explicit Frame(std::vector<std::string> hypotheses);

  int size() const { return static_cast<int>(names_.size()); }
  FocalSet Theta() const { return (1u << names_.size()) - 1u; }
  const std::string& Name(int i) const { return names_[i]; }

  /// \brief Singleton set for hypothesis i.
  FocalSet Singleton(int i) const { return 1u << i; }

  /// \brief Index of a hypothesis by name (-1 when unknown).
  int Index(const std::string& name) const;

  /// \brief Human-readable set description, e.g. "{cargo,tanker}".
  std::string SetToString(FocalSet set) const;

 private:
  std::vector<std::string> names_;
};

/// \brief A basic belief assignment (mass function) over a frame.
class MassFunction {
 public:
  explicit MassFunction(const Frame* frame) : frame_(frame) {}

  /// \brief Sets m(set) = mass (accumulates on repeated calls).
  void Assign(FocalSet set, double mass);

  /// \brief Convenience: vacuous belief m(Θ) = 1.
  static MassFunction Vacuous(const Frame* frame);

  /// \brief Renormalizes masses to sum to 1 (no-op if already normal).
  void Normalize();

  /// \brief Belief: sum of masses of subsets of `set`.
  double Belief(FocalSet set) const;

  /// \brief Plausibility: sum of masses of sets intersecting `set`.
  double Plausibility(FocalSet set) const;

  /// \brief Pignistic probability of a single hypothesis (Smets transform).
  double Pignistic(int hypothesis) const;

  /// \brief The hypothesis with maximum pignistic probability.
  int Decide() const;

  /// \brief Mass on the empty set (only nonzero for unnormalized
  /// conjunctive combination).
  double Conflict() const;

  /// \brief Shafer discounting: m'(A) = α·m(A), m'(Θ) += 1-α.
  /// `reliability` is α in [0,1] (1 = fully reliable source).
  MassFunction Discount(double reliability) const;

  const std::map<FocalSet, double>& masses() const { return masses_; }
  const Frame* frame() const { return frame_; }

 private:
  const Frame* frame_;
  std::map<FocalSet, double> masses_;
};

/// \brief Combination rules compared in experiment E11.
enum class CombinationRule : uint8_t {
  kDempster,     ///< normalized conjunctive (classic)
  kConjunctive,  ///< unnormalized (keeps conflict on ∅, Smets TBM)
  kDisjunctive,  ///< cautious union rule
  kYager,        ///< conflict transferred to Θ
};

/// \brief Combines two mass functions on the same frame.
/// Fails for kDempster under total conflict (normalizer = 0).
Result<MassFunction> Combine(const MassFunction& a, const MassFunction& b,
                             CombinationRule rule);

/// \brief Left-fold combination over several sources.
Result<MassFunction> CombineAll(const std::vector<MassFunction>& sources,
                                CombinationRule rule);

}  // namespace marlin

#endif  // MARLIN_UNCERTAINTY_DEMPSTER_SHAFER_H_
