#include "uncertainty/openworld.h"

#include <algorithm>

namespace marlin {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kNo:
      return "no";
    case Verdict::kYes:
      return "yes";
    case Verdict::kPossible:
      return "possible";
  }
  return "?";
}

void CoverageModel::Observe(uint32_t vessel, Timestamp t) {
  VesselCoverage& c = coverage_[vessel];
  if (c.first == kInvalidTimestamp) {
    c.first = c.last = c.prev_report = t;
    return;
  }
  if (t <= c.prev_report) return;  // duplicates / out-of-order ignored
  const DurationMs gap = t - c.prev_report;
  if (gap > options_.max_report_interval_ms) {
    c.gaps.emplace_back(c.prev_report, t);
    c.dark_total += gap;
  }
  c.prev_report = t;
  c.last = t;
}

void CoverageModel::Merge(const CoverageModel& other) {
  for (const auto& [vessel, theirs] : other.coverage_) {
    auto [it, inserted] = coverage_.emplace(vessel, theirs);
    if (inserted) continue;
    VesselCoverage& ours = it->second;
    ours.first = std::min(ours.first, theirs.first);
    ours.last = std::max(ours.last, theirs.last);
    ours.prev_report = std::max(ours.prev_report, theirs.prev_report);
    ours.gaps.insert(ours.gaps.end(), theirs.gaps.begin(), theirs.gaps.end());
    std::sort(ours.gaps.begin(), ours.gaps.end());
    ours.dark_total += theirs.dark_total;
  }
}

std::vector<std::pair<Timestamp, Timestamp>> CoverageModel::DarkPeriods(
    uint32_t vessel, Timestamp t0, Timestamp t1) const {
  std::vector<std::pair<Timestamp, Timestamp>> out;
  auto it = coverage_.find(vessel);
  if (it == coverage_.end()) {
    out.emplace_back(t0, t1);  // never observed: everything is dark
    return out;
  }
  const VesselCoverage& c = it->second;
  if (t0 < c.first) out.emplace_back(t0, std::min(t1, c.first));
  for (const auto& [gs, ge] : c.gaps) {
    const Timestamp s = std::max(gs, t0);
    const Timestamp e = std::min(ge, t1);
    if (s < e) out.emplace_back(s, e);
  }
  if (t1 > c.last) out.emplace_back(std::max(t0, c.last), t1);
  std::sort(out.begin(), out.end());
  return out;
}

double CoverageModel::Coverage(uint32_t vessel, Timestamp t0,
                               Timestamp t1) const {
  if (t1 <= t0) return 1.0;
  DurationMs dark = 0;
  for (const auto& [s, e] : DarkPeriods(vessel, t0, t1)) dark += e - s;
  return 1.0 - static_cast<double>(dark) / static_cast<double>(t1 - t0);
}

bool CoverageModel::IsDark(uint32_t vessel, Timestamp t) const {
  auto it = coverage_.find(vessel);
  if (it == coverage_.end()) return true;
  const VesselCoverage& c = it->second;
  if (t < c.first || t > c.last) return true;
  for (const auto& [gs, ge] : c.gaps) {
    if (t > gs && t < ge) return true;
  }
  return false;
}

Verdict CoverageModel::CouldHaveActedAt(uint32_t vessel, Timestamp t) const {
  return IsDark(vessel, t) ? Verdict::kPossible : Verdict::kNo;
}

std::vector<uint32_t> CoverageModel::Vessels() const {
  std::vector<uint32_t> out;
  out.reserve(coverage_.size());
  for (const auto& [mmsi, _] : coverage_) out.push_back(mmsi);
  return out;
}

double CoverageModel::DarkFraction(uint32_t vessel) const {
  auto it = coverage_.find(vessel);
  if (it == coverage_.end()) return 1.0;
  const VesselCoverage& c = it->second;
  const DurationMs span = c.last - c.first;
  if (span <= 0) return 0.0;
  return static_cast<double>(c.dark_total) / static_cast<double>(span);
}

}  // namespace marlin
