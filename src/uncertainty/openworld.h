#ifndef MARLIN_UNCERTAINTY_OPENWORLD_H_
#define MARLIN_UNCERTAINTY_OPENWORLD_H_

/// \file openworld.h
/// \brief Open-world query semantics over incompletely observed timelines.
///
/// Paper §4: "the AIS database clearly violates the closed-world assumption
/// since … 27 % of ships do not transmit data at least 10 % of the time
/// ('go dark'). Querying … rendez-vous events from an AIS database will
/// return only those events reflected by the AIS data. Considering that
/// anything which is not in the AIS database remains possible is thus
/// crucial to maritime anomaly detection."
///
/// This module gives a query three-valued semantics: a predicate over a time
/// interval evaluates to Yes / No / Possible depending on whether the data
/// *covers* the interval. Coverage is tracked per vessel as observed
/// reporting intervals; gaps longer than the expected reporting cadence are
/// dark periods, inside which any unobserved behaviour "remains possible".

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.h"

namespace marlin {

/// \brief Three-valued query verdict.
enum class Verdict : uint8_t {
  kNo = 0,        ///< provably false given coverage
  kYes = 1,       ///< observed
  kPossible = 2,  ///< unobservable: a dark period covers the hypothesis
};

const char* VerdictName(Verdict v);

/// \brief Per-vessel observation coverage model.
class CoverageModel {
 public:
  struct Options {
    /// A silence longer than this is a dark period (not mere cadence slack).
    DurationMs max_report_interval_ms = 3 * kMillisPerMinute;
  };

  CoverageModel() : CoverageModel(Options()) {}
  explicit CoverageModel(const Options& options) : options_(options) {}

  /// \brief Registers one observation of `vessel` at `t`.
  void Observe(uint32_t vessel, Timestamp t);

  /// \brief Folds another model into this one. Intended for per-shard
  /// coverage maps whose vessel sets are disjoint (MMSI-partitioned); when a
  /// vessel appears in both, spans are unioned and gap lists merged.
  void Merge(const CoverageModel& other);

  /// \brief Dark periods of `vessel` within [t0, t1]: maximal sub-intervals
  /// not covered by observations (boundary-clipped).
  std::vector<std::pair<Timestamp, Timestamp>> DarkPeriods(uint32_t vessel,
                                                           Timestamp t0,
                                                           Timestamp t1) const;

  /// \brief Fraction of [t0, t1] covered by observation for `vessel`
  /// (0 when never seen).
  double Coverage(uint32_t vessel, Timestamp t0, Timestamp t1) const;

  /// \brief True iff `vessel` is dark at time `t` (inside a gap or outside
  /// its observed span).
  bool IsDark(uint32_t vessel, Timestamp t) const;

  /// \brief Evaluates "vessel could have been at an (unobserved) event at
  /// time t": kYes is never returned here (that is the detector's job);
  /// kPossible when t falls in a dark period, kNo when covered.
  Verdict CouldHaveActedAt(uint32_t vessel, Timestamp t) const;

  /// \brief Vessels seen at least once.
  std::vector<uint32_t> Vessels() const;

  /// \brief Fraction of observed time each vessel spent dark — the Windward
  /// statistic ("ships that do not transmit ≥ X% of the time").
  double DarkFraction(uint32_t vessel) const;

 private:
  struct VesselCoverage {
    Timestamp first = kInvalidTimestamp;
    Timestamp last = kInvalidTimestamp;
    // Maximal observed gaps (start, end) longer than the cadence bound.
    std::vector<std::pair<Timestamp, Timestamp>> gaps;
    Timestamp prev_report = kInvalidTimestamp;
    DurationMs dark_total = 0;
  };

  Options options_;
  std::map<uint32_t, VesselCoverage> coverage_;
};

}  // namespace marlin

#endif  // MARLIN_UNCERTAINTY_OPENWORLD_H_
