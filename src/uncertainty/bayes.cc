#include "uncertainty/bayes.h"

#include <cmath>

namespace marlin {

void DiscreteBayes::Normalize() {
  double total = 0.0;
  for (double v : p_) total += v;
  if (total <= 0.0) return;
  for (double& v : p_) v /= total;
}

bool DiscreteBayes::Update(const std::vector<double>& likelihood) {
  assert(likelihood.size() == p_.size());
  std::vector<double> next(p_.size());
  double total = 0.0;
  for (size_t i = 0; i < p_.size(); ++i) {
    next[i] = p_[i] * std::max(0.0, likelihood[i]);
    total += next[i];
  }
  if (total <= 0.0) return false;
  for (double& v : next) v /= total;
  p_ = std::move(next);
  return true;
}

int DiscreteBayes::Decide() const {
  int best = 0;
  for (int i = 1; i < size(); ++i) {
    if (p_[i] > p_[best]) best = i;
  }
  return best;
}

double DiscreteBayes::EntropyBits() const {
  double h = 0.0;
  for (double v : p_) {
    if (v > 0.0) h -= v * std::log2(v);
  }
  return h;
}

bool IntervalProbability::IntersectWith(const IntervalProbability& other) {
  bool consistent = true;
  for (int i = 0; i < size(); ++i) {
    const double lo = std::max(lo_[i], other.lo_[i]);
    const double hi = std::min(hi_[i], other.hi_[i]);
    if (lo <= hi) {
      lo_[i] = lo;
      hi_[i] = hi;
    } else {
      // Conflict: fall back to the union (cautious widening).
      lo_[i] = std::min(lo_[i], other.lo_[i]);
      hi_[i] = std::max(hi_[i], other.hi_[i]);
      consistent = false;
    }
  }
  return consistent;
}

std::vector<int> IntervalProbability::NonDominated() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    bool dominated = false;
    for (int j = 0; j < size(); ++j) {
      if (j != i && lo_[j] > hi_[i]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

}  // namespace marlin
