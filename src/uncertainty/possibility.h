#ifndef MARLIN_UNCERTAINTY_POSSIBILITY_H_
#define MARLIN_UNCERTAINTY_POSSIBILITY_H_

/// \file possibility.h
/// \brief Possibility theory over discrete hypothesis sets (paper §4).
///
/// A possibility distribution π assigns each hypothesis a degree in [0,1]
/// with max π = 1 (normalized). Possibility Π(A) = max over A; necessity
/// N(A) = 1 − Π(Aᶜ). Suited to the "vague / ambiguous" uncertainty kinds
/// the paper distinguishes from probabilistic ones.

#include <string>
#include <vector>

namespace marlin {

/// \brief Discrete possibility distribution.
class PossibilityDistribution {
 public:
  explicit PossibilityDistribution(int num_hypotheses)
      : pi_(num_hypotheses, 1.0) {}

  int size() const { return static_cast<int>(pi_.size()); }

  void Set(int hypothesis, double possibility);
  double Get(int hypothesis) const { return pi_[hypothesis]; }

  /// \brief True iff max π = 1.
  bool IsNormalized() const;

  /// \brief Rescales so the max equals 1 (undefined when all zero — left
  /// unchanged, signalling total inconsistency).
  void Normalize();

  /// \brief Possibility of a set of hypotheses.
  double Possibility(const std::vector<int>& set) const;

  /// \brief Necessity of a set of hypotheses.
  double Necessity(const std::vector<int>& set) const;

  /// \brief Degree of inconsistency after conjunctive combination:
  /// 1 − max π.
  double Inconsistency() const;

  /// \brief The most possible hypothesis (lowest index on ties).
  int Decide() const;

  /// \brief Conjunctive (min) combination — sources considered reliable.
  static PossibilityDistribution CombineMin(const PossibilityDistribution& a,
                                            const PossibilityDistribution& b);

  /// \brief Disjunctive (max) combination — at least one source reliable.
  static PossibilityDistribution CombineMax(const PossibilityDistribution& a,
                                            const PossibilityDistribution& b);

  /// \brief Discounting for an unreliable source: π' = max(π, 1−α).
  PossibilityDistribution Discount(double reliability) const;

 private:
  std::vector<double> pi_;
};

}  // namespace marlin

#endif  // MARLIN_UNCERTAINTY_POSSIBILITY_H_
