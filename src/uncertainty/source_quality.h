#ifndef MARLIN_UNCERTAINTY_SOURCE_QUALITY_H_
#define MARLIN_UNCERTAINTY_SOURCE_QUALITY_H_

/// \file source_quality.h
/// \brief Source reliability estimation from agreement history (paper §4:
/// "additional knowledge on sources' quality may help solving the issue",
/// citing Ceolin et al. [8]).
///
/// Reliability is estimated as a Beta-posterior mean over agree/disagree
/// outcomes against corroborated ground: Beta(agreements+1, conflicts+1).
/// The estimate feeds Dempster–Shafer discounting and registry conflict
/// resolution.

#include <cstdint>
#include <map>
#include <string>

namespace marlin {

/// \brief Tracks per-source reliability.
class SourceQualityModel {
 public:
  /// \brief Records one assessed report from `source`.
  void Record(const std::string& source, bool agreed) {
    auto& s = stats_[source];
    if (agreed) {
      ++s.agreements;
    } else {
      ++s.conflicts;
    }
  }

  /// \brief Posterior-mean reliability in (0,1); 0.5 for unseen sources.
  double Reliability(const std::string& source) const {
    auto it = stats_.find(source);
    if (it == stats_.end()) return 0.5;
    const auto& s = it->second;
    return (s.agreements + 1.0) / (s.agreements + s.conflicts + 2.0);
  }

  /// \brief Number of assessed reports for `source`.
  uint64_t Observations(const std::string& source) const {
    auto it = stats_.find(source);
    return it == stats_.end() ? 0 : it->second.agreements + it->second.conflicts;
  }

 private:
  struct Stats {
    uint64_t agreements = 0;
    uint64_t conflicts = 0;
  };
  std::map<std::string, Stats> stats_;
};

}  // namespace marlin

#endif  // MARLIN_UNCERTAINTY_SOURCE_QUALITY_H_
