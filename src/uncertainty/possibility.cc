#include "uncertainty/possibility.h"

#include <algorithm>

namespace marlin {

void PossibilityDistribution::Set(int hypothesis, double possibility) {
  pi_[hypothesis] = std::clamp(possibility, 0.0, 1.0);
}

bool PossibilityDistribution::IsNormalized() const {
  return !pi_.empty() && *std::max_element(pi_.begin(), pi_.end()) >= 1.0 - 1e-12;
}

void PossibilityDistribution::Normalize() {
  const double max = pi_.empty() ? 0.0 : *std::max_element(pi_.begin(), pi_.end());
  if (max <= 0.0) return;
  for (double& v : pi_) v /= max;
}

double PossibilityDistribution::Possibility(const std::vector<int>& set) const {
  double max = 0.0;
  for (int h : set) max = std::max(max, pi_[h]);
  return max;
}

double PossibilityDistribution::Necessity(const std::vector<int>& set) const {
  // N(A) = 1 - Π(complement).
  std::vector<bool> in_set(pi_.size(), false);
  for (int h : set) in_set[h] = true;
  double max_comp = 0.0;
  for (size_t i = 0; i < pi_.size(); ++i) {
    if (!in_set[i]) max_comp = std::max(max_comp, pi_[i]);
  }
  return 1.0 - max_comp;
}

double PossibilityDistribution::Inconsistency() const {
  const double max =
      pi_.empty() ? 0.0 : *std::max_element(pi_.begin(), pi_.end());
  return 1.0 - max;
}

int PossibilityDistribution::Decide() const {
  int best = 0;
  for (int i = 1; i < size(); ++i) {
    if (pi_[i] > pi_[best]) best = i;
  }
  return best;
}

PossibilityDistribution PossibilityDistribution::CombineMin(
    const PossibilityDistribution& a, const PossibilityDistribution& b) {
  PossibilityDistribution out(a.size());
  for (int i = 0; i < a.size(); ++i) {
    out.pi_[i] = std::min(a.pi_[i], b.pi_[i]);
  }
  return out;
}

PossibilityDistribution PossibilityDistribution::CombineMax(
    const PossibilityDistribution& a, const PossibilityDistribution& b) {
  PossibilityDistribution out(a.size());
  for (int i = 0; i < a.size(); ++i) {
    out.pi_[i] = std::max(a.pi_[i], b.pi_[i]);
  }
  return out;
}

PossibilityDistribution PossibilityDistribution::Discount(
    double reliability) const {
  PossibilityDistribution out(size());
  const double floor = 1.0 - std::clamp(reliability, 0.0, 1.0);
  for (int i = 0; i < size(); ++i) {
    out.pi_[i] = std::max(pi_[i], floor);
  }
  return out;
}

}  // namespace marlin
