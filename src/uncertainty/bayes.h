#ifndef MARLIN_UNCERTAINTY_BAYES_H_
#define MARLIN_UNCERTAINTY_BAYES_H_

/// \file bayes.h
/// \brief Discrete Bayesian updating and interval (second-order)
/// probabilities (paper §4: "considering second-order uncertainty seems
/// also unavoidable").

#include <algorithm>
#include <cassert>
#include <vector>

namespace marlin {

/// \brief Discrete probability distribution with Bayesian updates.
class DiscreteBayes {
 public:
  /// \brief Uniform prior over `n` hypotheses.
  explicit DiscreteBayes(int n)
      : p_(n, n > 0 ? 1.0 / n : 0.0) {}

  explicit DiscreteBayes(std::vector<double> prior) : p_(std::move(prior)) {
    Normalize();
  }

  int size() const { return static_cast<int>(p_.size()); }
  double Get(int i) const { return p_[i]; }

  /// \brief Multiplies by a likelihood vector and renormalizes. Returns
  /// false (leaving the distribution unchanged) when the evidence has zero
  /// likelihood under every hypothesis.
  bool Update(const std::vector<double>& likelihood);

  /// \brief Maximum a-posteriori hypothesis.
  int Decide() const;

  /// \brief Shannon entropy in bits (decisiveness measure for E11).
  double EntropyBits() const;

  const std::vector<double>& probabilities() const { return p_; }

 private:
  void Normalize();
  std::vector<double> p_;
};

/// \brief Interval-valued probability: [lower, upper] per hypothesis.
///
/// A minimal credal representation: enough to carry "the probability is
/// between 0.2 and 0.6" through fusion and to report when a decision is not
/// determined by the available evidence.
class IntervalProbability {
 public:
  explicit IntervalProbability(int n) : lo_(n, 0.0), hi_(n, 1.0) {}

  int size() const { return static_cast<int>(lo_.size()); }

  void Set(int i, double lower, double upper) {
    lo_[i] = std::clamp(lower, 0.0, 1.0);
    hi_[i] = std::clamp(upper, lo_[i], 1.0);
  }
  double Lower(int i) const { return lo_[i]; }
  double Upper(int i) const { return hi_[i]; }

  /// \brief Width of the interval — the second-order uncertainty itself.
  double Imprecision(int i) const { return hi_[i] - lo_[i]; }

  /// \brief Intersection fusion of two interval estimates; empty
  /// intersections (conflict) widen to the union instead, flagged via the
  /// return value (false = at least one conflict encountered).
  bool IntersectWith(const IntervalProbability& other);

  /// \brief Interval dominance: hypothesis i dominates j iff lo(i) > hi(j).
  /// Returns the set of non-dominated hypotheses (decision candidates).
  std::vector<int> NonDominated() const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace marlin

#endif  // MARLIN_UNCERTAINTY_BAYES_H_
