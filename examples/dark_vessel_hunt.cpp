// Dark-vessel hunt: open-world reasoning + radar fusion over AIS gaps.
//
// The paper's §4 argument made executable: 27 % of ships "go dark" at least
// 10 % of the time (Windward), so a closed-world query over AIS data alone
// misses anything that happens inside a gap. This example
//  1. seeds a fleet where a fraction of vessels silence their transponders,
//  2. shows the closed-world / open-world difference for a rendezvous query,
//  3. tasks a coastal radar and fuses its anonymous contacts to maintain
//     tracks straight through the AIS gaps (§2.4 "compensating for the lack
//     of coverage").
//
// Run: ./build/examples/dark_vessel_hunt

#include <cstdio>

#include "core/sharded_pipeline.h"
#include "fusion/tracker.h"
#include "geo/geodesy.h"
#include "sim/radar.h"
#include "sim/scenario.h"
#include "sim/world.h"

using namespace marlin;

int main() {
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 31337;
  config.duration = Hours(3);
  config.transit_vessels = 10;
  config.dark_vessels = 4;
  config.rendezvous_pairs = 0;
  config.fishing_vessels = 2;
  config.loiter_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  const ScenarioOutput scenario = GenerateScenario(world, config);

  ShardedPipeline::Options shard_options;
  shard_options.num_shards = 4;
  ShardedPipeline pipeline(PipelineConfig{}, shard_options, &world.zones(),
                           nullptr, nullptr, nullptr);
  const auto events = pipeline.Run(scenario.nmea);
  // Per-shard coverage maps, folded into one open-world model.
  const CoverageModel coverage = pipeline.MergedCoverage();

  // --- Closed world vs open world ----------------------------------------
  std::printf("=== dark periods detected from the AIS stream ===\n");
  int dark_events = 0;
  for (const auto& ev : events) {
    if (ev.type != EventType::kDarkPeriod) continue;
    ++dark_events;
    std::printf("  vessel %u dark %s -> %s (%.0f min)\n", ev.vessel_a,
                FormatTimestamp(ev.start).c_str(),
                FormatTimestamp(ev.end).c_str(),
                static_cast<double>(ev.end - ev.start) / kMillisPerMinute);
  }
  std::printf("  (%d dark periods)\n\n", dark_events);

  std::printf("=== rendezvous query: closed vs open world ===\n");
  int observed_rendezvous = 0;
  for (const auto& ev : events) {
    if (ev.type == EventType::kRendezvous) ++observed_rendezvous;
  }
  std::printf("closed-world answer: %d rendezvous observed\n",
              observed_rendezvous);
  // Open world: for each dark vessel, could it have met someone unseen?
  int possible = 0;
  for (const auto& ev : events) {
    if (ev.type != EventType::kDarkPeriod) continue;
    const Timestamp mid = (ev.start + ev.end) / 2;
    if (coverage.CouldHaveActedAt(ev.vessel_a, mid) == Verdict::kPossible) {
      ++possible;
      std::printf(
          "open-world: vessel %u COULD have held a rendezvous around %s "
          "(unobservable)\n",
          ev.vessel_a, FormatTimestamp(mid).c_str());
    }
  }
  if (possible == 0) std::printf("open-world: nothing hidden\n");

  // --- Radar fusion across the gaps ---------------------------------------
  std::printf("\n=== radar keeps tracking through AIS gaps ===\n");
  RadarSite site;
  site.position = world.Bounds().Center();
  site.range_m = 500000.0;  // wide-area surveillance for the demo
  site.scan_period = Minutes(1);
  RadarSimulator radar(site, 99);
  MultiTargetTracker tracker(site.position);

  // Gap midpoints to probe while the tracker is live.
  std::vector<std::pair<Mmsi, Timestamp>> probes;
  for (const auto& truth : scenario.events) {
    if (truth.type == TrueEventType::kDarkPeriod) {
      probes.emplace_back(truth.vessel_a, (truth.start + truth.end) / 2);
    }
  }

  const Timestamp t0 = config.start_time;
  const Timestamp t1 = t0 + config.duration;
  std::vector<std::pair<Mmsi, double>> coverage_at_midgap;
  for (Timestamp t = t0; t <= t1; t += site.scan_period) {
    tracker.ProcessScan(radar.Scan(scenario.truth, t), t);
    for (const auto& [mmsi, mid] : probes) {
      if (mid < t || mid >= t + site.scan_period) continue;
      // The vessel is silent on AIS right now — what does radar know?
      const TrajectoryPoint true_pos = scenario.truth.at(mmsi).At(t);
      double best = 1e12;
      for (const Track* track : tracker.ConfirmedTracks()) {
        best = std::min(best, HaversineDistance(
                                  tracker.TrackPosition(*track),
                                  true_pos.position));
      }
      coverage_at_midgap.emplace_back(mmsi, best);
    }
  }
  std::printf("confirmed radar tracks at end: %zu (fleet size %zu)\n",
              tracker.ConfirmedTracks().size(), scenario.fleet.size());
  for (const auto& [mmsi, best] : coverage_at_midgap) {
    std::printf(
        "  vessel %u mid-gap: nearest live radar track %.0f m from truth%s\n",
        mmsi, best, best < 2000.0 ? "  [covered]" : "");
  }
  return 0;
}
