// Registry reconciliation: linking & resolving conflicting vessel databases.
//
// §4 of the paper: "ship information from the MarineTraffic database may
// conflict with that from Lloyd's: the length may differ slightly, or the
// flag may be different due to a lack of update in one source. In this
// regard, additional knowledge on sources' quality may help solving the
// issue." This example builds two synthetic registries describing the same
// fleet with injected disagreements, links records across them with the
// Silk-style engine (§2.2), and resolves conflicts with the Beta-posterior
// source-quality model.
//
// Run: ./build/examples/registry_reconciliation

#include <cstdio>

#include "common/rng.h"
#include "context/registry.h"
#include "rdf/link_discovery.h"
#include "sim/scenario.h"
#include "sim/world.h"

using namespace marlin;

int main() {
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 606;
  config.duration = Hours(1);
  config.transit_vessels = 60;
  const ScenarioOutput scenario = GenerateScenario(world, config);

  // Build the two registries from the fleet, with injected discrepancies in
  // the "marinetraffic" copy (stale flags, slightly wrong lengths, name
  // typos) at realistic rates.
  Rng rng(1234);
  VesselRegistry marinetraffic("marinetraffic");
  VesselRegistry lloyds("lloyds");
  int seeded_conflicts = 0;
  for (const auto& spec : scenario.fleet) {
    RegistryRecord truth;
    truth.mmsi = spec.mmsi;
    truth.imo = spec.imo;
    truth.name = spec.name;
    truth.flag = "FR";
    truth.call_sign = spec.call_sign;
    truth.length_m = spec.length_m;
    truth.beam_m = spec.beam_m;
    truth.ship_type = spec.ship_type;
    lloyds.Upsert(truth);

    RegistryRecord copy = truth;
    if (rng.Bernoulli(0.15)) {
      copy.flag = "MT";  // stale flag
      ++seeded_conflicts;
    }
    if (rng.Bernoulli(0.20)) {
      copy.length_m += static_cast<int>(rng.UniformInt(1, 4));
      ++seeded_conflicts;
    }
    if (rng.Bernoulli(0.05)) {
      copy.name.back() = 'X';  // typo
      ++seeded_conflicts;
    }
    marinetraffic.Upsert(copy);
  }
  std::printf("two registries of %zu vessels, %d seeded field conflicts\n\n",
              scenario.fleet.size(), seeded_conflicts);

  // --- Link discovery: which records describe the same vessel? ------------
  // (Pretend MMSIs are unreliable keys; match on name/length/callsign.)
  std::vector<LinkEntity> side_a, side_b;
  for (const auto& [mmsi, rec] : marinetraffic.records()) {
    LinkEntity e;
    e.id = "mt:" + std::to_string(mmsi);
    e.strings["name"] = rec.name;
    e.strings["callsign"] = rec.call_sign;
    e.numbers["length"] = rec.length_m;
    side_a.push_back(std::move(e));
  }
  for (const auto& [mmsi, rec] : lloyds.records()) {
    LinkEntity e;
    e.id = "ll:" + std::to_string(mmsi);
    e.strings["name"] = rec.name;
    e.strings["callsign"] = rec.call_sign;
    e.numbers["length"] = rec.length_m;
    side_b.push_back(std::move(e));
  }
  LinkSpec spec;
  spec.comparisons = {
      {"name", "name", LinkMetric::kLevenshtein, 0.5, 0.0},
      {"callsign", "callsign", LinkMetric::kExact, 0.3, 0.0},
      {"length", "length", LinkMetric::kNumericAbs, 0.2, 10.0},
  };
  spec.threshold = 0.8;
  spec.blocking_property = "name";
  LinkStats stats;
  const auto links = DiscoverLinks(side_a, side_b, spec, &stats);
  int correct = 0;
  for (const auto& link : links) {
    if (link.source_id.substr(3) == link.target_id.substr(3)) ++correct;
  }
  std::printf("link discovery: %zu links (%d correct) — compared %llu of "
              "%llu possible pairs (blocking saved %.1f%%)\n\n",
              links.size(), correct,
              static_cast<unsigned long long>(stats.candidate_pairs),
              static_cast<unsigned long long>(stats.total_pairs),
              100.0 * (1.0 - static_cast<double>(stats.candidate_pairs) /
                                 static_cast<double>(stats.total_pairs)));

  // --- Quality-aware conflict resolution ---------------------------------
  // Calibrate source quality on a handful of vessels whose truth is known
  // (e.g. verified by inspection), then resolve the whole fleet.
  SourceQualityModel quality;
  int calibrated = 0;
  for (const auto& spec_v : scenario.fleet) {
    if (calibrated >= 10) break;
    const auto mt = marinetraffic.Lookup(spec_v.mmsi);
    const auto ll = lloyds.Lookup(spec_v.mmsi);
    if (!mt.has_value() || !ll.has_value()) continue;
    quality.Record("marinetraffic", mt->flag == "FR" &&
                                        mt->length_m == spec_v.length_m);
    quality.Record("lloyds", ll->flag == "FR" &&
                                 ll->length_m == spec_v.length_m);
    ++calibrated;
  }
  std::printf("source quality after calibration: marinetraffic=%.2f "
              "lloyds=%.2f\n",
              quality.Reliability("marinetraffic"),
              quality.Reliability("lloyds"));

  RegistryResolver resolver(&quality);
  int conflicts = 0, resolved_right = 0;
  for (const auto& spec_v : scenario.fleet) {
    const auto resolved =
        resolver.Resolve(marinetraffic, lloyds, spec_v.mmsi);
    if (!resolved.has_value() || resolved->conflicting_fields.empty()) {
      continue;
    }
    conflicts += static_cast<int>(resolved->conflicting_fields.size());
    if (resolved->record.flag == "FR" &&
        resolved->record.length_m == spec_v.length_m) {
      resolved_right += static_cast<int>(resolved->conflicting_fields.size());
    }
  }
  std::printf("conflict resolution: %d conflicting fields, %d resolved to "
              "the true value (%.0f%%)\n",
              conflicts, resolved_right,
              conflicts == 0 ? 0.0 : 100.0 * resolved_right / conflicts);
  return 0;
}
