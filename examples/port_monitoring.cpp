// Port monitoring: the operator's situation picture around a harbour.
//
// Exercises the visual-analytics layer of §3.2: zone-aware event detection
// (entries, speed violations), multi-resolution traffic density with
// drill-down, port-to-port flows, and a rendered situation overview with
// data-quality (coverage) context.
//
// Run: ./build/examples/port_monitoring

#include <cstdio>

#include "core/pipeline.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "va/density.h"
#include "va/flows.h"
#include "va/situation.h"

using namespace marlin;

int main() {
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 8080;
  config.duration = Hours(4);
  config.transit_vessels = 25;
  config.fishing_vessels = 6;
  config.loiter_vessels = 2;
  config.rendezvous_pairs = 1;
  config.dark_vessels = 2;
  const ScenarioOutput scenario = GenerateScenario(world, config);

  // The sequential reference pipeline, driven through the batched API.
  MaritimePipeline pipeline(PipelineConfig{}, &world.zones(), nullptr,
                            nullptr, nullptr);
  std::vector<DetectedEvent> events = pipeline.IngestBatch(scenario.nmea);
  const std::vector<DetectedEvent> tail = pipeline.Finish();
  events.insert(events.end(), tail.begin(), tail.end());

  // --- Zone activity around the busiest port -----------------------------
  std::printf("=== zone events ===\n");
  int entries = 0, exits = 0, speedings = 0;
  for (const auto& ev : events) {
    switch (ev.type) {
      case EventType::kZoneEntry:
        ++entries;
        break;
      case EventType::kZoneExit:
        ++exits;
        break;
      case EventType::kSpeedViolation: {
        ++speedings;
        const GeoZone* z = world.zones().Find(ev.zone_id);
        std::printf("  speed violation by %u in %s\n", ev.vessel_a,
                    z != nullptr ? z->name.c_str() : "?");
        break;
      }
      default:
        break;
    }
  }
  std::printf("  %d entries, %d exits, %d speed violations\n\n", entries,
              exits, speedings);

  // --- Traffic density: overview then drill-down -------------------------
  DensityGrid overview(world.Bounds().Expanded(0.2), 0.2);
  for (const auto& [mmsi, traj] : scenario.truth) {
    overview.AddTrajectory(traj);
  }
  std::printf("=== basin traffic density (%.1f deg cells) ===\n%s\n",
              overview.cell_deg(), overview.ToAscii(72).c_str());

  // Drill into the first port's approaches at 10x finer resolution.
  const Port& port = world.ports()[6];  // Port Vell: lane hub
  const BoundingBox approach(port.position.lat - 0.5, port.position.lon - 0.5,
                             port.position.lat + 0.5, port.position.lon + 0.5);
  DensityGrid detail = DensityGrid::DrillDown(approach, 0.02);
  for (const auto& [mmsi, traj] : scenario.truth) {
    detail.AddTrajectory(traj);
  }
  std::printf("=== drill-down: %s approaches (0.02 deg cells) ===\n%s\n",
              port.name.c_str(), detail.ToAscii(50).c_str());

  // --- Port-to-port flows ----------------------------------------------
  FlowMatrix flows(&world.zones(), ZoneType::kPort);
  for (const auto& [mmsi, traj] : scenario.truth) {
    flows.AddTrajectory(traj);
  }
  std::printf("=== port-to-port flows ===\n");
  int shown = 0;
  for (const FlowEdge& edge : flows.Edges()) {
    const GeoZone* from = world.zones().Find(edge.from_zone);
    const GeoZone* to = world.zones().Find(edge.to_zone);
    std::printf("  %-22s -> %-22s %llu voyages\n",
                from != nullptr ? from->name.c_str() : "?",
                to != nullptr ? to->name.c_str() : "?",
                static_cast<unsigned long long>(edge.count));
    if (++shown >= 8) break;
  }

  // --- Situation overview -------------------------------------------------
  SituationOverview situation(&pipeline.store(), &world.zones(),
                              &pipeline.coverage());
  situation.RecordEvents(events);
  const Timestamp now = config.start_time + config.duration;
  std::printf("\n%s", SituationOverview::Render(situation.Snapshot(now),
                                                &world.zones())
                          .c_str());
  return 0;
}
