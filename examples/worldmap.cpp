// World map: regenerates the paper's Figure 1 as a data product.
//
// Figure 1 of the paper shows "worldwide AIS positions acquired by
// satellites (ORBCOMM)". This example simulates a day of global trunk-route
// traffic, aggregates received positions into a density grid, and writes
// both an ASCII rendering and a PPM heat map (examples output directory).
//
// Run: ./build/examples/worldmap

#include <cstdio>

#include "ais/codec.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "va/density.h"

using namespace marlin;

int main() {
  const World world = World::Global();
  ScenarioConfig config;
  config.seed = 196;  // ORBCOMM's first launch year suffix, why not
  config.duration = Hours(12);
  config.transit_vessels = 120;
  config.fishing_vessels = 20;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 10;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.report_interval_scale = 6.0;  // keep the stream tractable
  // Satellite-heavy reception: sparse coastal stations, wide passes.
  config.use_coastal_coverage_default = false;
  config.receiver.satellite_period_ms = Minutes(45);
  config.receiver.satellite_window_ms = Minutes(18);
  config.receiver.satellite_loss = 0.15;
  const ScenarioOutput scenario = GenerateScenario(world, config);
  std::printf("global scenario: %zu vessels, %llu transmissions, %zu received\n",
              scenario.fleet.size(),
              static_cast<unsigned long long>(scenario.transmissions),
              scenario.nmea.size());

  // Decode received messages and bin the positions — exactly what the
  // ORBCOMM ground segment does to draw Figure 1.
  AisDecoder decoder;
  DensityGrid grid(BoundingBox(-65.0, -180.0, 70.0, 180.0), 1.0);
  for (const auto& ev : scenario.nmea) {
    const auto msg = decoder.Decode(ev.payload, ev.ingest_time);
    if (!msg.has_value()) continue;
    if (const auto* pr = std::get_if<PositionReport>(&*msg)) {
      if (pr->HasPosition()) grid.Add(pr->position);
    }
  }
  std::printf("received positions: %.0f in %llu cells\n\n",
              grid.TotalWeight(),
              static_cast<unsigned long long>(grid.NonEmptyCells()));

  std::printf("=== worldwide received AIS positions (Figure 1 analogue) ===\n");
  std::printf("%s\n", grid.ToAscii(120).c_str());

  const std::string ppm = "worldmap.ppm";
  const Status st = grid.WritePpm(ppm);
  if (st.ok()) {
    std::printf("heat map written to ./%s (open with any image viewer)\n",
                ppm.c_str());
  } else {
    std::printf("could not write %s: %s\n", ppm.c_str(),
                st.ToString().c_str());
  }
  return 0;
}
