// Route forecasting: anticipated trajectories at multiple time scales.
//
// §3.1 of the paper calls for "prediction of anticipated vessel trajectories
// at different time scale … fundamental to achieve early warning". This
// example learns a motion flow field from a day of historical traffic, then
// compares three predictors (dead reckoning, constant turn, flow field) at
// 5/15/30/60-minute horizons on unseen vessels.
//
// Run: ./build/examples/route_forecasting

#include <cstdio>
#include <map>

#include "core/forecast.h"
#include "sim/scenario.h"
#include "sim/world.h"

using namespace marlin;

int main() {
  const World world = World::Basin();

  // Historical traffic to learn from.
  ScenarioConfig history_cfg;
  history_cfg.seed = 1001;
  history_cfg.duration = Hours(8);
  history_cfg.transit_vessels = 40;
  history_cfg.fishing_vessels = 0;
  history_cfg.loiter_vessels = 0;
  history_cfg.rendezvous_pairs = 0;
  history_cfg.dark_vessels = 0;
  history_cfg.spoof_identity_vessels = 0;
  history_cfg.spoof_teleport_vessels = 0;
  const ScenarioOutput history = GenerateScenario(world, history_cfg);

  FlowFieldForecaster flow;
  for (const auto& [mmsi, traj] : history.truth) {
    flow.Train(traj);
  }
  std::printf("flow field learned from %zu vessels (%zu cells)\n\n",
              history.truth.size(), flow.CellsUsed());

  // Fresh, unseen traffic to forecast.
  ScenarioConfig eval_cfg = history_cfg;
  eval_cfg.seed = 2002;
  eval_cfg.transit_vessels = 10;
  const ScenarioOutput eval = GenerateScenario(world, eval_cfg);

  DeadReckoningForecaster dr;
  ConstantTurnForecaster ct;
  const std::vector<double> horizons = {300, 900, 1800, 3600};

  std::map<std::string, std::map<double, std::pair<double, int>>> table;
  for (const auto& [mmsi, traj] : eval.truth) {
    for (const Forecaster* forecaster :
         std::initializer_list<const Forecaster*>{&dr, &ct, &flow}) {
      for (const auto& sample :
           EvaluateForecaster(*forecaster, traj, horizons, 30, 60)) {
        auto& cell = table[forecaster->name()][sample.horizon_s];
        cell.first += sample.error_m;
        cell.second += 1;
      }
    }
  }

  std::printf("%-16s", "mean error (m)");
  for (double h : horizons) std::printf("  %6.0f s", h);
  std::printf("\n");
  for (const auto& [name, row] : table) {
    std::printf("%-16s", name.c_str());
    for (double h : horizons) {
      const auto it = row.find(h);
      if (it == row.end() || it->second.second == 0) {
        std::printf("  %8s", "-");
      } else {
        std::printf("  %8.0f", it->second.first / it->second.second);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper §3.1): at short horizons dead reckoning is\n"
      "hard to beat; as the horizon grows the route-aware predictor wins\n"
      "because lanes curve and vessels turn at waypoints.\n");
  return 0;
}
