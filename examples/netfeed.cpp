// Netfeed: the network front door end to end.
//
// A sender thread streams a scenario's AIS corpus over loopback TCP as
// CRC-framed, envelope-carrying records; the epoll ingest server
// reassembles them; the driver drains the server into the sharded
// pipeline while bytes are still arriving. Because the frames carry the
// sender's event/ingest timestamps and source ids verbatim, the detected
// events are byte-identical to in-process ingestion — the wire is just a
// transport (tests/net_equivalence_test.cc proves it).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/netfeed

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_pipeline.h"
#include "net/tcp_ingest_server.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "stream/frame.h"

using namespace marlin;

int main() {
  // 1. A world and a scenario corpus: real AIVDM sentences through a
  //    coastal receiver network (loss, latency, duplicates included).
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 2017;
  config.duration = Hours(1);
  config.transit_vessels = 15;
  config.fishing_vessels = 4;
  config.rendezvous_pairs = 1;
  config.dark_vessels = 2;
  config.perfect_reception = false;
  const ScenarioOutput scenario = GenerateScenario(world, config);
  std::printf("scenario: %zu vessels, %zu NMEA sentences\n",
              scenario.fleet.size(), scenario.nmea.size());

  // 2. The front door: an epoll TCP server in framed mode on an ephemeral
  //    loopback port. The server only buffers; this driver thread drains.
  TcpIngestOptions net_options;
  net_options.mode = WireMode::kFrames;
  TcpIngestServer server(net_options);
  if (Status s = server.Start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("front door: listening on 127.0.0.1:%u (framed mode)\n",
              server.port());

  // 3. A sender: frames every corpus event (envelope + line + CRC) and
  //    streams the wire image, standing in for a remote feed source.
  std::thread sender([&server, &scenario] {
    std::string wire;
    for (const Event<std::string>& ev : scenario.nmea) {
      AppendLineFrame(ev, &wire);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      size_t off = 0;
      while (off < wire.size()) {
        const ssize_t w = ::send(fd, wire.data() + off,
                                 std::min<size_t>(8192, wire.size() - off),
                                 0);
        if (w <= 0) break;
        off += static_cast<size_t>(w);
      }
    }
    ::close(fd);
  });

  // 4. The pipeline, fed from the wire while the transfer runs.
  ShardedPipeline::Options shard_options;
  shard_options.num_shards = 2;
  ShardedPipeline pipeline(PipelineConfig{}, shard_options, &world.zones(),
                           nullptr, nullptr, nullptr);
  std::vector<Event<std::string>> batch;
  std::vector<DetectedEvent> events;
  size_t delivered = 0;
  while (delivered < scenario.nmea.size()) {
    if (server.DrainLines(&batch) == 0) {
      std::this_thread::yield();
      continue;
    }
    delivered += batch.size();
    const auto out = pipeline.IngestBatch(batch);
    events.insert(events.end(), out.begin(), out.end());
    batch.clear();
  }
  sender.join();
  server.WaitForConnectionsClosed(1, 10'000);
  server.Stop();
  const auto tail = pipeline.Finish();
  events.insert(events.end(), tail.begin(), tail.end());
  pipeline.RecordNetIngest(server.stats());

  // 5. Feed health next to pipeline output: the per-connection counters
  //    the server kept, then what the pipeline computed from the stream.
  const NetIngestStats& net = pipeline.metrics().net_ingest;
  std::printf("\nfront door: %llu connection(s), %llu bytes, "
              "%llu frames (%llu bad)\n",
              static_cast<unsigned long long>(net.connections_accepted),
              static_cast<unsigned long long>(net.bytes_in),
              static_cast<unsigned long long>(net.frames),
              static_cast<unsigned long long>(net.bad_frames));
  for (const ConnectionIngestStats& conn : net.connections) {
    std::printf("  conn %llu %-21s %8llu bytes %6llu lines "
                "%4llu bad\n",
                static_cast<unsigned long long>(conn.connection_id),
                conn.peer.c_str(),
                static_cast<unsigned long long>(conn.bytes_in),
                static_cast<unsigned long long>(conn.lines),
                static_cast<unsigned long long>(conn.bad_lines));
  }

  std::vector<DeadLetter> ledger;
  pipeline.DrainDeadLetters(&ledger);
  std::printf("pipeline: %llu messages decoded, %zu rejected lines, "
              "%zu events detected\n",
              static_cast<unsigned long long>(
                  pipeline.metrics().decoder.messages_out),
              ledger.size(), events.size());
  for (const DetectedEvent& ev : events) {
    if (ev.severity < 0.5) continue;
    std::printf("  EVENT %-16s vessel %u (severity %.2f)\n",
                EventTypeName(ev.type), ev.vessel_a, ev.severity);
  }
  return 0;
}
