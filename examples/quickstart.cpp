// Quickstart: decode AIS, reconstruct trajectories, detect events.
//
// This is the smallest useful MARLIN program: generate an hour of synthetic
// maritime traffic (standing in for a live AIS feed), run the integrated
// pipeline of the paper's Figure 2, and print what it found.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <thread>

#include "context/weather.h"
#include "core/sharded_pipeline.h"
#include "sim/scenario.h"
#include "sim/world.h"

using namespace marlin;

int main() {
  // 1. A world: ports, shipping lanes, fishing grounds, regulated zones.
  const World world = World::Basin();

  // 2. A scenario: synthetic fleet transmitting real AIVDM sentences through
  //    a coastal receiver network (loss, latency, duplicates included).
  ScenarioConfig config;
  config.seed = 2017;
  config.duration = Hours(1);
  config.transit_vessels = 15;
  config.fishing_vessels = 4;
  config.rendezvous_pairs = 1;
  config.dark_vessels = 2;
  const ScenarioOutput scenario = GenerateScenario(world, config);
  std::printf("scenario: %zu vessels, %zu NMEA sentences, %llu transmissions\n",
              scenario.fleet.size(), scenario.nmea.size(),
              static_cast<unsigned long long>(scenario.transmissions));

  // 3. The integrated pipeline: decode -> reconstruct -> synopses ->
  //    enrichment -> events -> live picture, sharded by MMSI across the
  //    machine's cores. Enrichment (zones + weather join) runs as an async
  //    side-stage per shard and never stalls ingest.
  WeatherProvider weather(7);
  PipelineConfig pipeline_config;
  pipeline_config.enriched_output_capacity = 1u << 17;  // drain at the end
  // The vessel-pair rules (rendezvous, collision risk) also run in
  // parallel, sharded across grid cells — same event stream, byte for byte.
  // 0 = size the pool to the host topology; floor of 2 so the grid engages
  // even on single-core demo hosts.
  pipeline_config.pair_threads =
      std::max<size_t>(2, ResolveTopologyCount(0));
  ShardedPipeline::Options shard_options;
  shard_options.num_shards = 0;  // 0 = one shard per hardware thread
  ShardedPipeline pipeline(pipeline_config, shard_options, &world.zones(),
                           &weather, /*registry_a=*/nullptr,
                           /*registry_b=*/nullptr);
  std::printf("pipeline: %zu shards\n", pipeline.num_shards());
  pipeline.OnAlert([](const DetectedEvent& ev) {
    std::printf("  ALERT %-16s vessel %u%s%s at %s (severity %.2f)\n",
                EventTypeName(ev.type), ev.vessel_a,
                ev.vessel_b != 0 ? " & " : "",
                ev.vessel_b != 0 ? std::to_string(ev.vessel_b).c_str() : "",
                ev.where.ToString().c_str(), ev.severity);
  });

  // Batched ingest: one call per feed chunk instead of one per line.
  std::vector<DetectedEvent> events = pipeline.IngestBatch(scenario.nmea);
  const std::vector<DetectedEvent> tail = pipeline.Finish();
  events.insert(events.end(), tail.begin(), tail.end());

  // 4. What happened?
  const PipelineMetrics& m = pipeline.metrics();
  std::printf("\npipeline metrics\n");
  std::printf("  decoded messages     : %llu (bad sentences: %llu)\n",
              static_cast<unsigned long long>(m.decoder.messages_out),
              static_cast<unsigned long long>(m.decoder.bad_sentences));
  std::printf("  clean positions      : %llu (duplicates: %llu, outliers: %llu)\n",
              static_cast<unsigned long long>(m.reconstruction.points_out),
              static_cast<unsigned long long>(m.reconstruction.duplicates),
              static_cast<unsigned long long>(m.reconstruction.outliers));
  std::printf("  synopsis compression : %.1f %%\n",
              100.0 * m.synopses.CompressionRatio());
  const PartitionedTrajectoryView store = pipeline.store_view();
  std::printf("  events detected      : %zu (alerts: %llu)\n", events.size(),
              static_cast<unsigned long long>(m.alerts));
  std::printf("  vessels tracked      : %zu (across %zu store partitions)\n",
              store.VesselCount(), store.partition_count());
  std::printf("  pair stage           : %llu/%llu windows grid-parallel "
              "(%.1f cells/window, heaviest cell %.0f %%)\n",
              static_cast<unsigned long long>(m.pair_stage.parallel_windows),
              static_cast<unsigned long long>(m.pair_stage.windows),
              m.pair_stage.MeanCellsPerWindow(),
              100.0 * m.pair_stage.max_cell_share);

  // Per-hop hand-off health: how deep each stage's channel backed up, how
  // often a side had to wait, and how many items each consumer wake-up
  // carried (the lock-free fabric moves work in batches, not item-by-item).
  const auto print_hop = [](const char* name, const QueueHopStats& hop) {
    std::printf("  %-20s : %llu items, depth high-water %zu, "
                "waits %llu/%llu, %.1f items/batch\n",
                name, static_cast<unsigned long long>(hop.popped),
                hop.depth_high_water,
                static_cast<unsigned long long>(hop.push_waits),
                static_cast<unsigned long long>(hop.pop_waits),
                hop.MeanBatch());
  };
  std::printf("\nqueue hops (lock-free SPSC fabric)\n");
  print_hop("coord -> shard", m.shard_hop);
  print_hop("pair -> cell worker", m.pair_hop);
  print_hop("shard -> enrichment", m.enrichment_stage.hop);

  // Fault-tolerance health: every record that left the healthy path is on
  // this ledger (rejected frames, degraded drops, worker failures). In a
  // clean run like this one every counter reads zero — anything else means
  // data left the pipeline, counted rather than silently dropped.
  const PipelineHealth& health = m.health;
  std::printf("\npipeline health (fault tolerance)\n");
  std::printf("  worker failures      : %llu (restarts: %llu, degraded: %llu)\n",
              static_cast<unsigned long long>(health.supervisor.failures),
              static_cast<unsigned long long>(health.supervisor.restarts),
              static_cast<unsigned long long>(
                  health.supervisor.degraded_workers));
  std::printf("  dead letters         : %llu",
              static_cast<unsigned long long>(health.dead_letter.total()));
  for (size_t r = 0; r < kDeadLetterReasonCount; ++r) {
    std::printf("%s%s %llu", r == 0 ? " (" : ", ",
                DeadLetterReasonName(static_cast<DeadLetterReason>(r)),
                static_cast<unsigned long long>(health.dead_letter.by_reason[r]));
  }
  std::printf(")\n");
  std::printf("  data at risk         : %llu records\n",
              static_cast<unsigned long long>(health.DataAtRisk()));

  // 5. The enriched output stream (paper §2.2): each clean point joined
  //    with the zones it crosses and the weather at its position/time.
  //    Finish() flushed the side-stages, so the stream is complete.
  std::vector<EnrichedPoint> enriched;
  pipeline.DrainEnriched(&enriched);
  const SideStageStats& stage = m.enrichment_stage;
  std::printf("\nenriched output stream\n");
  std::printf("  points delivered     : %zu (queue drops: %llu, "
              "p99 delivery %lld ms)\n",
              enriched.size(),
              static_cast<unsigned long long>(stage.queue_dropped),
              static_cast<long long>(stage.latency.Quantile(0.99)));
  for (size_t i = 0; i < enriched.size() && i < 3; ++i) {
    const EnrichedPoint& p = enriched[i];
    std::printf("  vessel %u at %s | zones: %zu | wind %.1f m/s, "
                "waves %.1f m\n",
                p.base.mmsi, p.base.point.position.ToString().c_str(),
                p.zone_ids.size(), p.weather.wind_speed_mps,
                p.weather.wave_height_m);
  }

  // 6. Query the live picture: who is near the first port right now?
  const Port& port = world.ports()[0];
  const auto nearby = store.NearestLive(port.position, 3);
  std::printf("\nclosest vessels to %s:\n", port.name.c_str());
  for (const auto& [mmsi, dist_m] : nearby) {
    std::printf("  vessel %u at %.1f km\n", mmsi, dist_m / 1000.0);
  }
  return 0;
}
