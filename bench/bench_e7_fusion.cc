// E7 — Multi-sensor fusion accuracy and continuity (§2.4).
//
// Paper: "The integration and fusion of maritime data and information from
// various sources can overcome some of the single source processing issues
// (e.g., compensating for the lack of coverage and increasing accuracy)."
//
// One vessel transits while transmitting AIS (with a mid-run dark window)
// and being painted by a coastal radar. Three trackers run: AIS-only,
// radar-only, and fused. Reported: position RMSE per tracker across a radar
// noise sweep, and track continuity (fraction of time a confirmed track
// exists) across the AIS gap.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/units.h"
#include "fusion/tracker.h"
#include "geo/geodesy.h"
#include "sim/radar.h"
#include "sim/vessel_sim.h"

namespace marlin {
namespace {

struct E7Row {
  double radar_sigma = 0.0;
  double rmse_ais = 0.0;
  double rmse_radar = 0.0;
  double rmse_fused = 0.0;
  double continuity_ais = 0.0;
  double continuity_fused = 0.0;
};

E7Row RunScene(double radar_sigma, uint64_t seed) {
  const World& world = bench::SharedWorld();
  // Ground truth: one transit vessel with a 40-minute dark window.
  VesselSpec spec;
  spec.mmsi = 228000077;
  spec.behaviour = Behaviour::kGoDark;
  spec.lane = 0;
  spec.speed_knots = 12.0;
  spec.depart_time = 0;
  spec.dark_windows = {{Minutes(60), Minutes(100)}};
  Rng rng(seed);
  const auto states =
      SimulateVessel(spec, world, 0, Hours(3), Seconds(10), &rng);
  const Trajectory truth = TruthToTrajectory(spec.mmsi, states);
  std::map<Mmsi, Trajectory> truth_map{{spec.mmsi, truth}};

  // Radar site near the lane midpoint.
  RadarSite site;
  site.position = truth.At(Minutes(80)).position;
  site.range_m = 300000.0;
  site.scan_period = Seconds(30);
  site.sigma_m = radar_sigma;
  site.detection_prob = 0.85;
  site.false_alarms_per_scan = 0.3;
  RadarSimulator radar(site, seed + 1);

  // AIS contacts from truth states at ITU cadence (10 m noise) when
  // transmitting.
  std::vector<Contact> ais_contacts;
  Rng ais_rng(seed + 2);
  Timestamp next_report = 0;
  for (const auto& s : states) {
    if (s.t < next_report) continue;
    next_report = s.t + Seconds(10);
    if (!s.transmitting) continue;
    Contact c;
    c.t = s.t;
    c.position = Destination(s.position, ais_rng.Uniform(0, 360),
                             std::abs(ais_rng.Gaussian(0, 10)));
    c.sigma_m = 10.0;
    c.sensor = SensorKind::kAis;
    c.mmsi = spec.mmsi;
    ais_contacts.push_back(c);
  }

  // Three trackers.
  const GeoPoint origin = truth.At(Minutes(90)).position;
  MultiTargetTracker ais_only(origin), radar_only(origin), fused(origin);

  auto evaluate = [&truth](MultiTargetTracker& tracker, Timestamp t,
                           double* err_sq, int* err_n, int* covered) {
    const TrajectoryPoint ref = truth.At(t);
    double best = -1.0;
    for (const Track* track : tracker.ConfirmedTracks()) {
      const double d =
          HaversineDistance(tracker.TrackPosition(*track), ref.position);
      if (best < 0 || d < best) best = d;
    }
    if (best >= 0 && best < 5000.0) {
      *err_sq += best * best;
      ++*err_n;
      ++*covered;
    }
  };

  double sq_ais = 0, sq_radar = 0, sq_fused = 0;
  int n_ais = 0, n_radar = 0, n_fused = 0;
  int cov_ais = 0, cov_fused = 0, slots = 0;

  size_t ais_idx = 0;
  for (Timestamp t = 0; t <= Hours(3); t += site.scan_period) {
    // Deliver AIS contacts due this interval.
    std::vector<Contact> ais_batch;
    while (ais_idx < ais_contacts.size() &&
           ais_contacts[ais_idx].t <= t) {
      ais_batch.push_back(ais_contacts[ais_idx++]);
    }
    const std::vector<Contact> radar_batch = radar.Scan(truth_map, t);
    std::vector<Contact> both = ais_batch;
    both.insert(both.end(), radar_batch.begin(), radar_batch.end());

    if (!ais_batch.empty()) ais_only.ProcessScan(ais_batch, t);
    radar_only.ProcessScan(radar_batch, t);
    fused.ProcessScan(both, t);

    if (t >= Minutes(10)) {  // after track initiation
      ++slots;
      evaluate(ais_only, t, &sq_ais, &n_ais, &cov_ais);
      int dummy = 0;
      evaluate(radar_only, t, &sq_radar, &n_radar, &dummy);
      evaluate(fused, t, &sq_fused, &n_fused, &cov_fused);
    }
  }

  E7Row row;
  row.radar_sigma = radar_sigma;
  row.rmse_ais = n_ais == 0 ? -1 : std::sqrt(sq_ais / n_ais);
  row.rmse_radar = n_radar == 0 ? -1 : std::sqrt(sq_radar / n_radar);
  row.rmse_fused = n_fused == 0 ? -1 : std::sqrt(sq_fused / n_fused);
  row.continuity_ais = static_cast<double>(cov_ais) / slots;
  row.continuity_fused = static_cast<double>(cov_fused) / slots;
  return row;
}

void PrintTable() {
  std::printf("%12s %10s %12s %12s %14s %14s\n", "radar σ (m)", "RMSE AIS",
              "RMSE radar", "RMSE fused", "contin. AIS", "contin. fused");
  for (double sigma : {40.0, 80.0, 160.0}) {
    const E7Row row = RunScene(sigma, 700 + static_cast<uint64_t>(sigma));
    std::printf("%12.0f %10.1f %12.1f %12.1f %14.2f %14.2f\n", row.radar_sigma,
                row.rmse_ais, row.rmse_radar, row.rmse_fused,
                row.continuity_ais, row.continuity_fused);
  }
  std::printf(
      "\nexpected shape: fused RMSE <= radar-only RMSE; fused continuity\n"
      "stays near 1.0 through the 40-minute AIS gap while AIS-only drops.\n");
}

void BM_FusedScene(benchmark::State& state) {
  E7Row row{};
  for (auto _ : state) {
    row = RunScene(80.0, 701);
    benchmark::DoNotOptimize(row);
  }
  state.counters["rmse_fused_m"] = row.rmse_fused;
  state.counters["continuity_fused"] = row.continuity_fused;
  state.counters["continuity_ais_only"] = row.continuity_ais;
}
BENCHMARK(BM_FusedScene)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E7: AIS+radar fusion accuracy & continuity (§2.4)",
      "fusion \"compensating for the lack of coverage and increasing "
      "accuracy\"");
  marlin::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
